// Command sesemi-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	sesemi-bench -list
//	sesemi-bench -exp fig9
//	sesemi-bench -exp all [-o results.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sesemi/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	out := flag.String("o", "", "write output to this file instead of stdout")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			if err := e.Run(w); err != nil {
				fatal(fmt.Errorf("%s: %w", e.ID, err))
			}
		}
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (use -list)", *exp))
	}
	if err := e.Run(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sesemi-bench:", err)
	os.Exit(1)
}
