// Command sesemi-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	sesemi-bench -list
//	sesemi-bench -exp fig9
//	sesemi-bench -exp all [-o results.txt]
//	sesemi-bench -exp gateway -json BENCH_gateway.json
//	sesemi-bench -exp routing -json BENCH_routing.json
//	sesemi-bench -exp fairness -json BENCH_fairness.json
//	sesemi-bench -exp keylocality -json BENCH_keylocality.json
//	sesemi-bench -exp autoscale -json BENCH_autoscale.json
//	sesemi-bench -exp hol -json BENCH_hol.json
//	sesemi-bench -exp chaos -json BENCH_chaos.json
//	sesemi-bench -exp frontier -json BENCH_frontier.json
//	sesemi-bench -exp rollout -json BENCH_rollout.json
//	sesemi-bench -exp obstax -json BENCH_obstax.json
//	sesemi-bench -exp routing -smoke    (tiny CI configuration)
//	sesemi-bench -exp fairness -smoke   (tiny CI configuration)
//	sesemi-bench -exp keylocality -smoke (tiny CI configuration)
//	sesemi-bench -exp autoscale -smoke  (tiny CI configuration)
//	sesemi-bench -exp hol -smoke        (tiny CI configuration)
//	sesemi-bench -exp chaos -smoke      (tiny CI configuration; exits non-zero
//	                                     if any request is lost with recovery on)
//	sesemi-bench -exp frontier -smoke   (2-shard world; exits non-zero unless
//	                                     sharded throughput ≥ single-shard)
//	sesemi-bench -exp rollout -smoke    (slow canary ramp; exits non-zero unless
//	                                     it auto-rolls back with zero lost
//	                                     requests and a revoked measurement)
//	sesemi-bench -exp obstax -smoke     (tiny CI configuration; exits non-zero
//	                                     if the tracing overhead gate trips or
//	                                     /metrics fails the parse check)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sesemi/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	out := flag.String("o", "", "write output to this file instead of stdout")
	list := flag.Bool("list", false, "list available experiments")
	jsonOut := flag.String("json", "", "with -exp gateway, routing, fairness, keylocality, autoscale, hol, chaos, frontier, rollout or obstax: also write the machine-readable snapshot here")
	smoke := flag.Bool("smoke", false, "with -exp routing, fairness, keylocality, autoscale, hol, chaos, frontier, rollout or obstax: run the tiny CI configuration instead of the full comparison")
	flag.Parse()

	if *smoke && *exp != "routing" && *exp != "fairness" && *exp != "keylocality" && *exp != "autoscale" && *exp != "hol" && *exp != "chaos" && *exp != "frontier" && *exp != "rollout" && *exp != "obstax" {
		fatal(fmt.Errorf("-smoke is only meaningful with -exp routing, fairness, keylocality, autoscale, hol, chaos, frontier, rollout or obstax"))
	}
	if *jsonOut != "" {
		if *list {
			fatal(fmt.Errorf("-json and -list are mutually exclusive"))
		}
		if *out != "" {
			fatal(fmt.Errorf("-json and -o are mutually exclusive (the snapshot is already a file)"))
		}
		switch *exp {
		case "gateway":
			snap, err := bench.WriteGatewaySnapshot(*jsonOut, bench.GatewayBenchConfig{})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("gateway snapshot → %s (unbatched %.0f req/s, gateway %.0f req/s, %.2fx)\n",
				*jsonOut, snap.Unbatched.RPS, snap.Batched.RPS, snap.Speedup)
		case "routing":
			cfg := bench.RoutingBenchConfig{}
			if *smoke {
				cfg = bench.RoutingSmokeConfig()
			}
			snap, err := bench.WriteRoutingSnapshot(*jsonOut, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("routing snapshot → %s (gateway %.0f req/s, +affinity %.0f req/s, %.2fx, warm-hit %.1f%%)\n",
				*jsonOut, snap.Gateway.RPS, snap.Affinity.RPS, snap.AffinitySpeedup, 100*snap.Affinity.HotRate)
		case "fairness":
			cfg := bench.FairnessBenchConfig{}
			if *smoke {
				cfg = bench.FairnessSmokeConfig()
			}
			snap, err := bench.WriteFairnessSnapshot(*jsonOut, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("fairness snapshot → %s (light p99 vs solo: fifo %.1fx, drr %.1fx; throughput drr/fifo %.2f)\n",
				*jsonOut, snap.LightP99RatioFIFO, snap.LightP99RatioDRR, snap.ThroughputRatio)
		case "keylocality":
			cfg := bench.KeyLocalityBenchConfig{SweepUsers: []int{4, 16}, SweepCaches: []int{1, 4, 64}}
			if *smoke {
				cfg = bench.KeyLocalitySmokeConfig()
			}
			snap, err := bench.WriteKeyLocalitySnapshot(*jsonOut, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("keylocality snapshot → %s (single-pair %.1fms mean, lru+group %.1fms, %.2fx; key fetches %.0fx fewer; solo ratio %.2f)\n",
				*jsonOut, snap.SinglePair.MeanMs, snap.LRUGrouped.MeanMs, snap.MeanSpeedup, snap.KeyFetchReduction, snap.SoloThroughputRatio)
		case "autoscale":
			cfg := bench.AutoscaleBenchConfig{}
			if *smoke {
				cfg = bench.AutoscaleSmokeConfig()
			}
			snap, err := bench.WriteAutoscaleSnapshot(*jsonOut, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("autoscale snapshot → %s (demand cold starts %.1fx fewer, ramp p99 %.2fx lower, idle ratio %.2f, steady throughput %.2f)\n",
				*jsonOut, snap.DemandStartReduction, snap.RampP99Ratio, snap.IdleRatio, snap.SteadyThroughputRatio)
		case "hol":
			cfg := bench.HOLBenchConfig{}
			if *smoke {
				cfg = bench.HOLSmokeConfig()
			}
			snap, err := bench.WriteHOLSnapshot(*jsonOut, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("hol snapshot → %s (short p99 continuous/fire %.2fx, throughput ratio %.2f, sched %.1fms + preempt %.1fms overhead)\n",
				*jsonOut, snap.ShortP99Ratio, snap.ThroughputRatio, snap.SchedulingOverheadMs, snap.PreemptionOverheadMs)
		case "chaos":
			cfg := bench.ChaosBenchConfig{}
			if *smoke {
				cfg = bench.ChaosSmokeConfig()
			}
			snap, err := bench.WriteChaosSnapshot(*jsonOut, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("chaos snapshot → %s (lost with recovery %d, goodput ratio %.2f, lost without recovery %d)\n",
				*jsonOut, snap.LostWithRecovery, snap.GoodputRatio, snap.LostNoRecovery)
			if snap.LostWithRecovery > 0 {
				fatal(fmt.Errorf("chaos: %d requests lost with recovery enabled (want 0)", snap.LostWithRecovery))
			}
		case "frontier":
			cfg := bench.FrontierBenchConfig{}
			if *smoke {
				cfg = bench.FrontierSmokeConfig()
			}
			snap, err := bench.WriteFrontierSnapshot(*jsonOut, cfg)
			if err != nil {
				fatal(err)
			}
			first, last := snap.Runs[0], snap.Runs[len(snap.Runs)-1]
			fmt.Printf("frontier snapshot → %s (%d shard %.0f req/s → %d shards %.0f req/s, %.2fx)\n",
				*jsonOut, first.Shards, first.RPS, last.Shards, last.RPS, last.Speedup)
		case "rollout":
			cfg := bench.RolloutBenchConfig{}
			if *smoke {
				cfg = bench.RolloutSmokeConfig()
			}
			snap, err := bench.WriteRolloutSnapshot(*jsonOut, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("rollout snapshot → %s (splitter ratio %.3f, live %s in %d windows, rollback %.0fms, %d affected, lost %d)\n",
				*jsonOut, snap.SplitterThroughputRatio, snap.Live.Phase, snap.Live.Windows,
				snap.Live.TimeToRollbackMs, snap.Live.RequestsAffected, snap.Live.Errors)
			if err := rolloutGate(snap); err != nil {
				fatal(err)
			}
		case "obstax":
			cfg := bench.ObstaxBenchConfig{}
			if *smoke {
				cfg = bench.ObstaxSmokeConfig()
			}
			snap, err := bench.WriteObstaxSnapshot(*jsonOut, cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("obstax snapshot → %s (sampled %.3fx of disabled, full %.3fx, coverage %.3f, exposition ok=%v)\n",
				*jsonOut, snap.SampledRatio, snap.FullRatio, snap.Full.Coverage, snap.ExpositionOK)
			if err := bench.ObstaxGate(snap, 0.97); err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("-json is only meaningful with -exp gateway, routing, fairness, keylocality, autoscale, hol, chaos, frontier, rollout or obstax"))
		}
		return
	}
	if *smoke {
		switch *exp {
		case "routing":
			snap, err := bench.RunRoutingBench(bench.RoutingSmokeConfig())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("routing smoke ok: gateway %.0f req/s, +affinity %.0f req/s (%.2fx, warm-hit %.1f%%)\n",
				snap.Gateway.RPS, snap.Affinity.RPS, snap.AffinitySpeedup, 100*snap.Affinity.HotRate)
		case "fairness":
			snap, err := bench.RunFairnessBench(bench.FairnessSmokeConfig())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("fairness smoke ok: light p99 solo %.1fms, fifo %.1fms, drr %.1fms (throughput drr/fifo %.2f)\n",
				snap.LightSolo.LightP99Ms, snap.FIFO.LightP99Ms, snap.DRR.LightP99Ms, snap.ThroughputRatio)
		case "keylocality":
			snap, err := bench.RunKeyLocalityBench(bench.KeyLocalitySmokeConfig())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("keylocality smoke ok: single-pair %.1fms mean / %d fetches, lru+group %.1fms / %d fetches (%.2fx)\n",
				snap.SinglePair.MeanMs, snap.SinglePair.KeyFetches, snap.LRUGrouped.MeanMs, snap.LRUGrouped.KeyFetches, snap.MeanSpeedup)
		case "autoscale":
			snap, err := bench.RunAutoscaleBench(bench.AutoscaleSmokeConfig())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("autoscale smoke ok: diurnal p99 reactive %.1fms / predictive %.1fms, %d prewarmed, steady throughput %.2f\n",
				snap.DiurnalReactive.P99Ms, snap.DiurnalPredictive.P99Ms,
				snap.BurstPredictive.Prewarmed+snap.DiurnalPredictive.Prewarmed, snap.SteadyThroughputRatio)
		case "hol":
			snap, err := bench.RunHOLBench(bench.HOLSmokeConfig())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("hol smoke ok: short p99 fire %.1fms / continuous %.1fms (%.2fx), throughput ratio %.2f, %d preemptions\n",
				snap.FormThenFire.ShortP99Ms, snap.Continuous.ShortP99Ms, snap.ShortP99Ratio,
				snap.ThroughputRatio, snap.Continuous.Preemptions)
		case "chaos":
			snap, err := bench.RunChaosBench(bench.ChaosSmokeConfig())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("chaos smoke: lost with recovery %d (want 0), goodput ratio %.2f, lost without recovery %d, %d retries\n",
				snap.LostWithRecovery, snap.GoodputRatio, snap.LostNoRecovery, snap.Recovery.Retries)
			// The smoke is a gate, not a report: seeded faults with the
			// recovery plane armed must lose nothing.
			if snap.LostWithRecovery > 0 {
				fatal(fmt.Errorf("chaos: %d requests lost with recovery enabled (want 0)", snap.LostWithRecovery))
			}
		case "frontier":
			snap, err := bench.RunFrontierBench(bench.FrontierSmokeConfig())
			if err != nil {
				fatal(err)
			}
			single, sharded := snap.Runs[0], snap.Runs[len(snap.Runs)-1]
			fmt.Printf("frontier smoke: %d shard %.0f req/s, %d shards %.0f req/s (%.2fx), admit %.0f → %.0f ops/s\n",
				single.Shards, single.RPS, sharded.Shards, sharded.RPS, sharded.Speedup,
				snap.Contention[0].OpsPerSec, snap.Contention[len(snap.Contention)-1].OpsPerSec)
			// The smoke is a gate: a sharded frontier that serves a hot
			// stream SLOWER than one gateway means routing or stealing broke.
			if sharded.RPS < single.RPS {
				fatal(fmt.Errorf("frontier: %d-shard throughput %.0f req/s below single-shard %.0f req/s",
					sharded.Shards, sharded.RPS, single.RPS))
			}
			if sharded.Errors > 0 || single.Errors > 0 {
				fatal(fmt.Errorf("frontier: smoke run had errors (%d/%d)", single.Errors, sharded.Errors))
			}
		case "rollout":
			snap, err := bench.RunRolloutBench(bench.RolloutSmokeConfig())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("rollout smoke: live %s after %d windows (weight at breach %d%%), rollback %.0fms, %d canary requests affected, %d lost, revoked=%v\n",
				snap.Live.Phase, snap.Live.Windows, snap.Live.WeightAtBreach,
				snap.Live.TimeToRollbackMs, snap.Live.RequestsAffected, snap.Live.Errors, snap.Live.Revoked)
			// The smoke is a gate: the deliberately slow canary must be
			// auto-rolled back — drained, measurement revoked — and no
			// request may be lost along the way.
			if err := rolloutGate(snap); err != nil {
				fatal(err)
			}
		case "obstax":
			snap, err := bench.RunObstaxBench(bench.ObstaxSmokeConfig())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("obstax smoke: sampled %.3fx of disabled (full %.3fx), coverage %.3f, %d traces kept, exposition ok=%v (%d bytes)\n",
				snap.SampledRatio, snap.FullRatio, snap.Full.Coverage,
				snap.Sampled.Kept+snap.Full.Kept, snap.ExpositionOK, snap.ExpositionBytes)
			// The smoke is a gate: tracing that taxes the serving path or a
			// /metrics page that doesn't parse fails CI. The overhead bar is
			// looser than the snapshot's 0.97 claim — CI machines are noisy
			// and the smoke workload is tiny.
			if err := bench.ObstaxGate(snap, 0.90); err != nil {
				fatal(err)
			}
		}
		return
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			if err := e.Run(w); err != nil {
				fatal(fmt.Errorf("%s: %w", e.ID, err))
			}
		}
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (use -list)", *exp))
	}
	if err := e.Run(w); err != nil {
		fatal(err)
	}
}

// rolloutGate enforces the rollout experiment's hard claims: the slow
// canary rolled back with its measurement revoked, nothing was lost on any
// plane, and the deterministic mirror agrees.
func rolloutGate(snap *bench.RolloutSnapshot) error {
	if snap.Live.Phase != "rolledback" {
		return fmt.Errorf("rollout: slow canary was not rolled back (phase %q)", snap.Live.Phase)
	}
	if !snap.Live.Revoked {
		return fmt.Errorf("rollout: rollback did not revoke the canary measurement")
	}
	if snap.Live.Errors > 0 {
		return fmt.Errorf("rollout: %d requests lost during the live rollback (want 0)", snap.Live.Errors)
	}
	if !snap.SimRollback.RolledBack || snap.SimRollback.Lost > 0 || snap.SimRollback.Dropped > 0 {
		return fmt.Errorf("rollout: sim mirror disagrees (rolled_back=%v lost=%d dropped=%d)",
			snap.SimRollback.RolledBack, snap.SimRollback.Lost, snap.SimRollback.Dropped)
	}
	if !snap.SimHealthy.Promoted {
		return fmt.Errorf("rollout: healthy sim canary failed to promote")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sesemi-bench:", err)
	os.Exit(1)
}
