// Command keyservice runs SeSeMI's always-on trust-establishment service
// (§IV-A) inside a software enclave on a TCP listener.
//
// It also bootstraps the deployment directory: on first run it creates the
// simulated attestation root (the "Intel" CA) and records its own address
// and enclave identity E_K for clients and SeMIRT instances to pin.
//
// Usage:
//
//	keyservice -addr 127.0.0.1:7100 -state ./deploy
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"sesemi/internal/cli"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/keyservice"
	"sesemi/internal/vclock"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "listen address")
	stateDir := flag.String("state", "./deploy", "deployment state directory")
	tcs := flag.Int("tcs", keyservice.DefaultTCS, "enclave TCS count (max concurrent connections)")
	hw := flag.String("hw", "sgx2", "hardware generation: sgx1 or sgx2")
	timeScale := flag.Float64("timescale", 0, "scale modeled TEE latencies (0 = off, 1 = real time)")
	connTimeout := flag.Duration("conn-timeout", 5*time.Minute,
		"drop connections idle longer than this, freeing their TCS (0 = never)")
	flag.Parse()

	state := cli.State{Dir: *stateDir}
	ca, err := state.EnsureCA()
	if err != nil {
		log.Fatalf("keyservice: %v", err)
	}
	platKey, err := ca.Provision("keyservice-node")
	if err != nil {
		log.Fatalf("keyservice: %v", err)
	}
	gen := costmodel.SGX2
	if *hw == "sgx1" {
		gen = costmodel.SGX1
	}
	platform := enclave.NewPlatform(gen, vclock.Real{Scale: *timeScale}, platKey)

	svc := keyservice.NewService()
	enc, err := platform.Launch(keyservice.ManifestFor(*tcs), svc)
	if err != nil {
		log.Fatalf("keyservice: launch enclave: %v", err)
	}
	defer enc.Destroy()

	srv, err := keyservice.NewServer(svc, ca.PublicKey())
	if err != nil {
		log.Fatalf("keyservice: %v", err)
	}
	srv.SetIdleTimeout(*connTimeout)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("keyservice: listen: %v", err)
	}
	if err := state.SaveKeyService(cli.KSInfo{
		Addr:           ln.Addr().String(),
		MeasurementHex: enc.Measurement().Hex(),
	}); err != nil {
		log.Fatalf("keyservice: %v", err)
	}
	fmt.Printf("keyservice: listening on %s\n", ln.Addr())
	fmt.Printf("keyservice: enclave identity E_K = %s\n", enc.Measurement().Hex())
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("keyservice: %v", err)
	}
}
