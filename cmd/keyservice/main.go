// Command keyservice runs SeSeMI's always-on trust-establishment service
// (§IV-A) inside a software enclave on a TCP listener.
//
// It also bootstraps the deployment directory: on first run it creates the
// simulated attestation root (the "Intel" CA) and records its own address
// and enclave identity E_K for clients and SeMIRT instances to pin.
//
// A plaintext HTTP stats endpoint (-stats-addr) exposes store sizes and the
// per-measurement admit/reject counters of the provisioning allowlist at
// /stats, so a rollout controller's revocations are observable from outside
// the enclave. The same listener serves the unified metrics plane: Prometheus
// text exposition at /metrics and net/http/pprof under /debug/pprof/.
//
// Usage:
//
//	keyservice -addr 127.0.0.1:7100 -state ./deploy -stats-addr 127.0.0.1:7101
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"sesemi/internal/cli"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/keyservice"
	"sesemi/internal/obs"
	"sesemi/internal/vclock"
)

// statsPayload is the /stats JSON document.
type statsPayload struct {
	Identities   int                                   `json:"identities"`
	Models       int                                   `json:"models"`
	ReqKeys      int                                   `json:"req_keys"`
	Grants       int                                   `json:"grants"`
	Enforcing    bool                                  `json:"enforcing"`
	Measurements map[string]keyservice.MeasurementStat `json:"measurements"`
}

// serveStats exposes the service counters over plaintext HTTP — /stats JSON,
// /metrics Prometheus exposition and pprof. Only counts and measurement
// hashes leave the enclave — never key material.
func serveStats(addr string, svc *keyservice.Service) (net.Addr, error) {
	reg := obs.NewRegistry()
	svc.RegisterMetrics(reg, nil)
	mux := http.NewServeMux()
	obs.Mount(mux, reg)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		ids, models, reqKeys, grants := svc.Counts()
		payload := statsPayload{
			Identities:   ids,
			Models:       models,
			ReqKeys:      reqKeys,
			Grants:       grants,
			Enforcing:    svc.Enforcing(),
			Measurements: svc.MeasurementStats(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr(), nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7100", "listen address")
	statsAddr := flag.String("stats-addr", "", "plaintext HTTP /stats listen address (\"\" = disabled)")
	stateDir := flag.String("state", "./deploy", "deployment state directory")
	tcs := flag.Int("tcs", keyservice.DefaultTCS, "enclave TCS count (max concurrent connections)")
	hw := flag.String("hw", "sgx2", "hardware generation: sgx1 or sgx2")
	timeScale := flag.Float64("timescale", 0, "scale modeled TEE latencies (0 = off, 1 = real time)")
	connTimeout := flag.Duration("conn-timeout", 5*time.Minute,
		"drop connections idle longer than this, freeing their TCS (0 = never)")
	flag.Parse()

	state := cli.State{Dir: *stateDir}
	ca, err := state.EnsureCA()
	if err != nil {
		log.Fatalf("keyservice: %v", err)
	}
	platKey, err := ca.Provision("keyservice-node")
	if err != nil {
		log.Fatalf("keyservice: %v", err)
	}
	gen := costmodel.SGX2
	if *hw == "sgx1" {
		gen = costmodel.SGX1
	}
	platform := enclave.NewPlatform(gen, vclock.Real{Scale: *timeScale}, platKey)

	svc := keyservice.NewService()
	enc, err := platform.Launch(keyservice.ManifestFor(*tcs), svc)
	if err != nil {
		log.Fatalf("keyservice: launch enclave: %v", err)
	}
	defer enc.Destroy()

	srv, err := keyservice.NewServer(svc, ca.PublicKey())
	if err != nil {
		log.Fatalf("keyservice: %v", err)
	}
	srv.SetIdleTimeout(*connTimeout)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("keyservice: listen: %v", err)
	}
	if err := state.SaveKeyService(cli.KSInfo{
		Addr:           ln.Addr().String(),
		MeasurementHex: enc.Measurement().Hex(),
	}); err != nil {
		log.Fatalf("keyservice: %v", err)
	}
	fmt.Printf("keyservice: listening on %s\n", ln.Addr())
	fmt.Printf("keyservice: enclave identity E_K = %s\n", enc.Measurement().Hex())
	if *statsAddr != "" {
		sa, err := serveStats(*statsAddr, svc)
		if err != nil {
			log.Fatalf("keyservice: stats listener: %v", err)
		}
		fmt.Printf("keyservice: stats on http://%s/stats\n", sa)
	}
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("keyservice: %v", err)
	}
}
