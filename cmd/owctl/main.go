// Command owctl is the model owner's and model user's client: it performs
// the key-setup and service-deployment workflow of §III against a running
// KeyService, and issues encrypted inference requests to SeMIRT endpoints.
//
// Principals are derived from seed strings so the demo is reproducible; in a
// real deployment the long-term keys would come from a keystore.
//
// Subcommands:
//
//	owctl deploy -state ./deploy -models ./blobs -model mbnet -framework tvm \
//	      -concurrency 2 -enclave-mb 64 -owner-seed hospital -user-seed alice
//	    Builds the functional model, encrypts and uploads it, registers both
//	    principals, deposits K_M and K_R, and grants access for the SeMIRT
//	    enclave identity implied by the flags.
//
//	owctl invoke -state ./deploy -model mbnet -user-seed alice \
//	      -url http://127.0.0.1:7200/run [-via-packer http://.../invoke]
//	    Encrypts a request, sends it, decrypts the result, prints the
//	    predicted class distribution.
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"sesemi/internal/cli"
	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/keyservice"
	"sesemi/internal/model"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/storage"
	"sesemi/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		log.Fatal("owctl: subcommand required: deploy | invoke")
	}
	switch os.Args[1] {
	case "deploy":
		deploy(os.Args[2:])
	case "invoke":
		invoke(os.Args[2:])
	default:
		log.Fatalf("owctl: unknown subcommand %q", os.Args[1])
	}
}

// keys derives the demo key material for a model/user pair.
func modelKey(modelID string) secure.Key { return secure.KeyFromSeed("km:" + modelID) }
func requestKey(userSeed, modelID string) secure.Key {
	return secure.KeyFromSeed("kr:" + userSeed + ":" + modelID)
}

func mustClients(state cli.State, ownerSeed, userSeed string) (owner, user *keyservice.Client) {
	ca, err := state.LoadCA()
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	ks, err := state.LoadKeyService()
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	meas, err := ks.Measurement()
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	dial := keyservice.TCPDialer(ks.Addr)
	if ownerSeed != "" {
		owner = keyservice.NewClient(dial, ca.PublicKey(), meas, secure.KeyFromSeed("owner:"+ownerSeed))
	}
	if userSeed != "" {
		user = keyservice.NewClient(dial, ca.PublicKey(), meas, secure.KeyFromSeed("user:"+userSeed))
	}
	return owner, user
}

func deploy(args []string) {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	stateDir := fs.String("state", "./deploy", "deployment state directory")
	modelsDir := fs.String("models", "./blobs", "encrypted model blob directory")
	modelID := fs.String("model", "mbnet", "zoo model id: mbnet, rsnet, dsnet")
	framework := fs.String("framework", "tvm", "target framework (part of ES)")
	concurrency := fs.Int("concurrency", 2, "SeMIRT TCS count (part of ES)")
	memMB := fs.Int64("enclave-mb", 64, "SeMIRT enclave MiB (part of ES)")
	ownerSeed := fs.String("owner-seed", "hospital", "owner principal seed")
	userSeed := fs.String("user-seed", "alice", "user principal seed")
	_ = fs.Parse(args)

	state := cli.State{Dir: *stateDir}
	owner, user := mustClients(state, *ownerSeed, *userSeed)
	defer owner.Close()
	defer user.Close()

	// Derive the SeMIRT enclave identity ES offline from its configuration,
	// exactly as the paper's owners and users do.
	cfg := semirt.Config{
		Framework:          *framework,
		Concurrency:        *concurrency,
		EnclaveMemoryBytes: *memMB << 20,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("owctl: %v", err)
	}
	es := cfg.Manifest().Measure()

	// Build, encrypt and upload the model.
	m, err := model.NewFunctional(*modelID)
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	data, err := model.Marshal(m)
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	km := modelKey(*modelID)
	ct, err := semirt.EncryptModel(km, *modelID, data)
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	store, err := storage.NewDir(*modelsDir, nil, nil)
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	if err := store.Put(semirt.ModelBlobName(*modelID), ct); err != nil {
		log.Fatalf("owctl: %v", err)
	}

	// Key setup (workflow step 1) and access control.
	if err := owner.Register(); err != nil {
		log.Fatalf("owctl: owner register: %v", err)
	}
	if err := user.Register(); err != nil {
		log.Fatalf("owctl: user register: %v", err)
	}
	if err := owner.AddModelKey(*modelID, km); err != nil {
		log.Fatalf("owctl: add model key: %v", err)
	}
	if err := owner.GrantAccess(*modelID, es, user.ID()); err != nil {
		log.Fatalf("owctl: grant access: %v", err)
	}
	kr := requestKey(*userSeed, *modelID)
	if err := user.AddReqKey(*modelID, es, kr); err != nil {
		log.Fatalf("owctl: add request key: %v", err)
	}
	fmt.Printf("deployed %s (%d bytes encrypted) for enclave ES=%s…\n", *modelID, len(ct), es.Hex()[:16])
	fmt.Printf("owner %s…  user %s…\n", owner.ID()[:16], user.ID()[:16])
}

func invoke(args []string) {
	fs := flag.NewFlagSet("invoke", flag.ExitOnError)
	stateDir := fs.String("state", "./deploy", "deployment state directory")
	modelID := fs.String("model", "mbnet", "model id")
	userSeed := fs.String("user-seed", "alice", "user principal seed")
	url := fs.String("url", "http://127.0.0.1:7200/run", "SeMIRT action /run URL")
	packer := fs.String("via-packer", "", "FnPacker base URL (overrides -url)")
	seed := fs.Int("input-seed", 1, "deterministic input seed")
	_ = fs.Parse(args)

	_ = stateDir // state not needed for invocation; keys derive from seeds

	base, err := model.NewFunctional(*modelID)
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	in := tensor.New(base.InputShape...)
	for i := range in.Data() {
		in.Data()[i] = float32((i**seed)%17) * 0.05
	}
	kr := requestKey(*userSeed, *modelID)
	payload, err := semirt.EncryptRequest(kr, *modelID, inference.EncodeTensor(in))
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	uid := secure.IdentityOf(secure.KeyFromSeed("user:" + *userSeed))
	body, err := json.Marshal(map[string]any{"value": map[string]any{
		"user_id":  string(uid),
		"model_id": *modelID,
		"payload":  base64.StdEncoding.EncodeToString(payload),
	}})
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	target := *url
	if *packer != "" {
		target = *packer + "/" + *modelID
	}
	start := time.Now()
	resp, err := (&http.Client{Timeout: 2 * time.Minute}).Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("owctl: %s: %s", resp.Status, raw)
	}
	var rr struct {
		Payload string `json:"payload"`
		Kind    string `json:"kind"`
		Error   string `json:"error"`
	}
	if err := json.Unmarshal(raw, &rr); err != nil {
		log.Fatalf("owctl: %v", err)
	}
	if rr.Error != "" {
		log.Fatalf("owctl: server: %s", rr.Error)
	}
	sealed, err := base64.StdEncoding.DecodeString(rr.Payload)
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	plain, err := semirt.DecryptResponse(kr, *modelID, sealed)
	if err != nil {
		log.Fatalf("owctl: decrypt result: %v", err)
	}
	out, err := inference.DecodeTensor(plain)
	if err != nil {
		log.Fatalf("owctl: %v", err)
	}
	fmt.Printf("invocation: %s path, %.1f ms round trip\n", rr.Kind, float64(time.Since(start).Microseconds())/1000)
	fmt.Printf("predicted class %d; distribution:", tensor.ArgMax(out))
	for _, v := range out.Data() {
		fmt.Printf(" %.3f", v)
	}
	fmt.Println()
}
