// Command semirt runs one SeMIRT serverless instance as an HTTP action
// server conforming to an OpenWhisk-style action interface:
//
//	POST /init  — launch the enclave (pre-warm)
//	POST /run   — {"value": {"user_id", "model_id", "payload"(base64)}}
//	              or a gateway batch envelope:
//	              {"value": {"batch": [{"user_id", "model_id", "payload"}, …]}}
//	GET  /stats — invocation counters (JSON; ?format=prom redirects to /metrics)
//	GET  /metrics — Prometheus text exposition (plus pprof under /debug/pprof/)
//
// A batch envelope is served in ONE enclave entry (semirt.HandleBatch) and
// answered with one result per request, so remote deployments fronted by a
// batching gateway get the same ECall amortization as the in-process stack.
//
// Encrypted models are read from a directory store ("cloud storage"); keys
// are provisioned from the deployment's KeyService over mutual attestation.
//
// Usage:
//
//	semirt -addr 127.0.0.1:7200 -state ./deploy -models ./blobs -framework tvm
package main

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"sesemi/internal/cli"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/keyservice"
	"sesemi/internal/obs"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/storage"
	"sesemi/internal/vclock"
)

type runItem struct {
	UserID  string `json:"user_id"`
	ModelID string `json:"model_id"`
	Payload string `json:"payload"` // base64
	// Serving API v2 envelope fields. Tenant attributes the request in the
	// per-tenant served counters (GET /stats); a gateway fronting several
	// remote action servers forwards it so accounting survives the hop.
	Tenant string `json:"tenant,omitempty"`
	// Priority is carried for forward compatibility with gateway-side
	// scheduling; the action server itself serves in arrival order.
	Priority int `json:"priority,omitempty"`
	// Deadline (RFC 3339) fails the request fast with a per-item error when
	// it has already passed on arrival — the backend-side mirror of the
	// gateway's deadline shedding, for deployments without a gateway in
	// front. Items admitted before their deadline carry it into the enclave
	// request, so HandleBatch also sheds a member whose deadline lapses
	// mid-batch, while earlier members execute.
	Deadline string `json:"deadline,omitempty"`
}

// errDeadline is the per-item error for requests that arrived already past
// their envelope deadline.
const errDeadline = "deadline exceeded"

// parseDeadline returns the item's parsed deadline (zero when absent) and
// whether it has already passed — the single place the wire format lives.
func (it runItem) parseDeadline(now time.Time) (deadline time.Time, expired bool, err error) {
	if it.Deadline == "" {
		return time.Time{}, false, nil
	}
	d, err := time.Parse(time.RFC3339Nano, it.Deadline)
	if err != nil {
		return time.Time{}, false, fmt.Errorf("deadline: %v", err)
	}
	return d, !now.Before(d), nil
}

// maxTallyKeys bounds each tally map so caller-supplied tenant and user ids
// cannot grow server state without bound; past it, new keys aggregate under
// "(other)".
const maxTallyKeys = 8192

// tenantTally counts served/shed requests per tenant and served requests
// per user id for GET /stats. The per-user counts are the backend-side view
// of key locality: many users served by one replica is exactly the mix the
// enclave's key-pair LRU exists for.
type tenantTally struct {
	mu     sync.Mutex
	served map[string]int
	shed   map[string]int
	users  map[string]int
}

func newTenantTally() *tenantTally {
	return &tenantTally{served: map[string]int{}, shed: map[string]int{}, users: map[string]int{}}
}

func bump(m map[string]int, key string, n int) {
	if n == 0 {
		return
	}
	if _, ok := m[key]; !ok && len(m) >= maxTallyKeys {
		key = "(other)"
	}
	m[key] += n
}

func (t *tenantTally) note(tenant string, served, shed int) {
	if tenant == "" {
		tenant = "default"
	}
	t.mu.Lock()
	bump(t.served, tenant, served)
	bump(t.shed, tenant, shed)
	t.mu.Unlock()
}

// noteUser attributes one served request to its enclave-level user id.
func (t *tenantTally) noteUser(userID string) {
	t.mu.Lock()
	bump(t.users, userID, 1)
	t.mu.Unlock()
}

func (t *tenantTally) snapshot() (served, shed, users map[string]int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	served, shed, users = map[string]int{}, map[string]int{}, map[string]int{}
	for k, v := range t.served {
		served[k] = v
	}
	for k, v := range t.shed {
		shed[k] = v
	}
	for k, v := range t.users {
		users[k] = v
	}
	return served, shed, users
}

type runRequest struct {
	Value struct {
		runItem
		// Batch, when non-empty, is a gateway batch envelope: every item is
		// served in one enclave entry and answered positionally.
		Batch []runItem `json:"batch,omitempty"`
	} `json:"value"`
}

type runResponse struct {
	Payload string `json:"payload,omitempty"` // base64
	Kind    string `json:"kind,omitempty"`
	Error   string `json:"error,omitempty"`
	// Batch carries per-request results for a batch envelope, in request
	// order.
	Batch []runResponse `json:"batch,omitempty"`
}

// runner is the slice of *semirt.Runtime the /run handler needs; tests
// substitute fakes.
type runner interface {
	Handle(semirt.Request) (semirt.Response, error)
	HandleBatch([]semirt.Request) ([]semirt.BatchResult, error)
}

// decodeItem builds the enclave request; deadline is the already-parsed
// envelope deadline (threaded through so HandleBatch sheds a member whose
// deadline lapses mid-batch).
func decodeItem(it runItem, deadline time.Time) (semirt.Request, error) {
	payload, err := base64.StdEncoding.DecodeString(it.Payload)
	if err != nil {
		return semirt.Request{}, fmt.Errorf("payload is not base64")
	}
	return semirt.Request{
		UserID:   secure.ID(it.UserID),
		ModelID:  it.ModelID,
		Payload:  payload,
		Deadline: deadline,
	}, nil
}

// handleRun serves POST /run: one request, or a batch envelope through one
// HandleBatch call (one ECall for the whole batch). Requests inside a batch
// fail individually; only instance-level failures fail the call. Items whose
// envelope deadline has passed on arrival are answered errDeadline without
// entering the enclave — no batch slot, no ECall share — and each served or
// shed item is attributed to its envelope tenant in tally.
func handleRun(rt runner, tally *tenantTally, w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, runResponse{Error: err.Error()})
		return
	}
	now := time.Now()
	if len(req.Value.Batch) > 0 {
		// Validate the whole envelope before serving OR tallying anything:
		// a malformed later item rejects the batch as one 400, and a
		// rejected batch must leave no shed/served accounting behind (the
		// client will retry it wholesale).
		out := runResponse{Batch: make([]runResponse, len(req.Value.Batch))}
		var reqs []semirt.Request
		var live []int // positions in out.Batch the served results map to
		var shedIdx []int
		for i, it := range req.Value.Batch {
			dl, exp, err := it.parseDeadline(now)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, runResponse{Error: fmt.Sprintf("batch[%d]: %v", i, err)})
				return
			}
			if exp {
				shedIdx = append(shedIdx, i)
				continue
			}
			sr, err := decodeItem(it, dl)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, runResponse{Error: fmt.Sprintf("batch[%d]: %v", i, err)})
				return
			}
			reqs = append(reqs, sr)
			live = append(live, i)
		}
		if len(reqs) > 0 {
			results, err := rt.HandleBatch(reqs)
			if err != nil {
				// Instance-level failure rejects the batch wholesale with
				// nothing tallied (shed included): the client retries the
				// whole envelope and must not double-count.
				writeJSON(w, http.StatusForbidden, runResponse{Error: err.Error()})
				return
			}
			for j, res := range results {
				i := live[j]
				if errors.Is(res.Err, semirt.ErrDeadline) {
					// Lapsed mid-batch, inside the enclave loop: shed, not
					// served — same accounting as a pre-enclave expiry.
					out.Batch[i] = runResponse{Error: errDeadline}
					tally.note(req.Value.Batch[i].Tenant, 0, 1)
					continue
				}
				// Served = answered by the enclave, per-item errors included,
				// so tenant_served and user_served stay mutually consistent.
				tally.note(req.Value.Batch[i].Tenant, 1, 0)
				tally.noteUser(req.Value.Batch[i].UserID)
				if res.Err != nil {
					out.Batch[i] = runResponse{Error: res.Err.Error()}
					continue
				}
				out.Batch[i] = runResponse{
					Payload: base64.StdEncoding.EncodeToString(res.Response.Payload),
					Kind:    res.Response.Kind.String(),
				}
			}
		}
		for _, i := range shedIdx {
			out.Batch[i] = runResponse{Error: errDeadline}
			tally.note(req.Value.Batch[i].Tenant, 0, 1)
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	it := req.Value.runItem
	dl, exp, err := it.parseDeadline(now)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, runResponse{Error: err.Error()})
		return
	}
	if exp {
		tally.note(it.Tenant, 0, 1)
		writeJSON(w, http.StatusGatewayTimeout, runResponse{Error: errDeadline})
		return
	}
	sr, err := decodeItem(it, dl)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, runResponse{Error: err.Error()})
		return
	}
	resp, err := rt.Handle(sr)
	if err != nil {
		writeJSON(w, http.StatusForbidden, runResponse{Error: err.Error()})
		return
	}
	tally.note(it.Tenant, 1, 0)
	tally.noteUser(it.UserID)
	writeJSON(w, http.StatusOK, runResponse{
		Payload: base64.StdEncoding.EncodeToString(resp.Payload),
		Kind:    resp.Kind.String(),
	})
}

// registerTallyMetrics exports the action server's envelope-level accounting
// on the unified registry. Tally entries only ever increment, so scrape-time
// sums over the maps are monotone — valid Prometheus counters. Per-tenant
// breakdowns stay on GET /stats (tenant ids are caller-supplied and unbounded;
// they must not mint metric series).
func registerTallyMetrics(reg *obs.Registry, tally *tenantTally, node string) {
	labels := obs.Labels{}.With("node", node)
	sum := func(m map[string]int) float64 {
		n := 0
		for _, v := range m {
			n += v
		}
		return float64(n)
	}
	reg.CounterFunc("sesemi_semirt_envelope_served_total", "Requests answered by the enclave (per-item errors included).", labels,
		func() float64 { served, _, _ := tally.snapshot(); return sum(served) })
	reg.CounterFunc("sesemi_semirt_envelope_shed_total", "Requests shed at the envelope for lapsed deadlines.", labels,
		func() float64 { _, shed, _ := tally.snapshot(); return sum(shed) })
	reg.GaugeFunc("sesemi_semirt_users_seen", "Distinct enclave user ids served (tally-bounded).", labels,
		func() float64 { _, _, users := tally.snapshot(); return float64(len(users)) })
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7200", "listen address")
	stateDir := flag.String("state", "./deploy", "deployment state directory")
	modelsDir := flag.String("models", "./blobs", "encrypted model blob directory")
	framework := flag.String("framework", "tvm", "inference framework: tvm or tflm")
	concurrency := flag.Int("concurrency", 2, "enclave TCS count")
	memMB := flag.Int64("enclave-mb", 64, "configured enclave size in MiB")
	nodeName := flag.String("node", "semirt-node", "platform (machine) name")
	timeScale := flag.Float64("timescale", 0, "scale modeled TEE latencies (0 = off)")
	flag.Parse()

	state := cli.State{Dir: *stateDir}
	ca, err := state.LoadCA()
	if err != nil {
		log.Fatalf("semirt: %v", err)
	}
	ksInfo, err := state.LoadKeyService()
	if err != nil {
		log.Fatalf("semirt: %v", err)
	}
	ksMeas, err := ksInfo.Measurement()
	if err != nil {
		log.Fatalf("semirt: %v", err)
	}
	platKey, err := ca.Provision(*nodeName)
	if err != nil {
		log.Fatalf("semirt: %v", err)
	}
	clock := vclock.Real{Scale: *timeScale}
	platform := enclave.NewPlatform(costmodel.SGX2, clock, platKey)
	store, err := storage.NewDir(*modelsDir, clock, nil)
	if err != nil {
		log.Fatalf("semirt: %v", err)
	}

	cfg := semirt.Config{
		Framework:          *framework,
		Concurrency:        *concurrency,
		EnclaveMemoryBytes: *memMB << 20,
	}
	rt, err := semirt.New(cfg, semirt.Deps{
		Platform:    platform,
		Store:       store,
		KSDialer:    keyservice.TCPDialer(ksInfo.Addr),
		CAPublicKey: ca.PublicKey(),
		ExpectEK:    ksMeas,
	})
	if err != nil {
		log.Fatalf("semirt: %v", err)
	}
	defer rt.Stop()
	fmt.Printf("semirt: enclave identity ES = %s\n", rt.Measurement().Hex())

	tally := newTenantTally()
	mux := http.NewServeMux()
	reg := obs.NewRegistry()
	rt.RegisterMetrics(reg, obs.Labels{}.With("node", *nodeName))
	registerTallyMetrics(reg, tally, *nodeName)
	obs.Mount(mux, reg)
	mux.HandleFunc("POST /init", func(w http.ResponseWriter, r *http.Request) {
		if err := rt.Start(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		handleRun(rt, tally, w, r)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			// Alias for scrapers configured against /stats: the canonical
			// Prometheus exposition lives at /metrics.
			http.Redirect(w, r, "/metrics", http.StatusSeeOther)
			return
		}
		st := rt.Stats()
		served, shed, users := tally.snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"cold": st.Cold, "warm": st.Warm, "hot": st.Hot,
			"key_fetches":   st.KeyFetches,
			"loaded_model":  rt.LoadedModel(),
			"tenant_served": served, "tenant_shed": shed,
			"user_served": users,
		})
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("semirt: listen: %v", err)
	}
	fmt.Printf("semirt: serving %s actions on %s\n", *framework, ln.Addr())
	srv := &http.Server{
		Handler: mux,
		// A stalled client must not pin a handler goroutine (and through
		// /run, enclave time) forever. Reads are small JSON envelopes;
		// writes cover the slowest cold path with margin.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Fatal(srv.Serve(ln))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
