package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sesemi/internal/semirt"
)

// fakeRunner echoes payloads and records how requests arrived: single Handle
// calls vs HandleBatch calls (the amortization contract under test — a batch
// envelope must reach the runtime as ONE batch, not N singles).
type fakeRunner struct {
	singles int
	batches [][]semirt.Request
}

func (f *fakeRunner) Handle(req semirt.Request) (semirt.Response, error) {
	f.singles++
	if req.ModelID == "missing" {
		return semirt.Response{}, errors.New("unknown model")
	}
	return semirt.Response{Payload: append([]byte("echo:"), req.Payload...), Kind: semirt.Hot}, nil
}

func (f *fakeRunner) HandleBatch(reqs []semirt.Request) ([]semirt.BatchResult, error) {
	f.batches = append(f.batches, reqs)
	out := make([]semirt.BatchResult, len(reqs))
	for i, r := range reqs {
		if r.ModelID == "missing" {
			out[i].Err = errors.New("unknown model")
			continue
		}
		out[i].Response = semirt.Response{Payload: append([]byte("echo:"), r.Payload...), Kind: semirt.Hot}
	}
	return out, nil
}

func postRun(t *testing.T, srv *httptest.Server, body any) (int, runResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr runResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, rr
}

func b64(s string) string { return base64.StdEncoding.EncodeToString([]byte(s)) }

// TestRunEndpointRoundTrip drives both envelope shapes through the real HTTP
// handler: a single request stays on Handle, a batch envelope rides one
// HandleBatch call and fans per-request results (including per-request
// failures) back positionally.
func TestRunEndpointRoundTrip(t *testing.T) {
	f := &fakeRunner{}
	tally := newTenantTally()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		handleRun(f, tally, w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Single request.
	single := map[string]any{"value": map[string]any{
		"user_id": "alice", "model_id": "mbnet", "payload": b64("in-0"),
	}}
	code, rr := postRun(t, srv, single)
	if code != http.StatusOK || rr.Error != "" {
		t.Fatalf("single: code %d resp %+v", code, rr)
	}
	if got, _ := base64.StdEncoding.DecodeString(rr.Payload); string(got) != "echo:in-0" {
		t.Fatalf("single payload %q", got)
	}
	if rr.Kind != "hot" || len(rr.Batch) != 0 {
		t.Fatalf("single resp shape %+v", rr)
	}

	// Batch envelope: three requests, the middle one failing individually.
	batch := map[string]any{"value": map[string]any{"batch": []map[string]any{
		{"user_id": "alice", "model_id": "mbnet", "payload": b64("in-1")},
		{"user_id": "alice", "model_id": "missing", "payload": b64("in-2")},
		{"user_id": "bob", "model_id": "mbnet", "payload": b64("in-3")},
	}}}
	code, rr = postRun(t, srv, batch)
	if code != http.StatusOK || rr.Error != "" {
		t.Fatalf("batch: code %d resp %+v", code, rr)
	}
	if len(rr.Batch) != 3 {
		t.Fatalf("batch results %d, want 3", len(rr.Batch))
	}
	for i, want := range []string{"echo:in-1", "", "echo:in-3"} {
		got, _ := base64.StdEncoding.DecodeString(rr.Batch[i].Payload)
		if string(got) != want {
			t.Fatalf("batch[%d] payload %q, want %q", i, got, want)
		}
	}
	if rr.Batch[1].Error == "" || rr.Batch[0].Error != "" || rr.Batch[2].Error != "" {
		t.Fatalf("per-request errors misplaced: %+v", rr.Batch)
	}

	// Amortization contract: one HandleBatch call for the whole batch, one
	// Handle call for the single.
	if f.singles != 1 || len(f.batches) != 1 || len(f.batches[0]) != 3 {
		t.Fatalf("runtime saw %d singles, %d batches (first len %d)", f.singles, len(f.batches), len(f.batches[0]))
	}
	if f.batches[0][2].UserID != "bob" || f.batches[0][0].ModelID != "mbnet" {
		t.Fatalf("batch decoded wrong: %+v", f.batches[0])
	}

	// Malformed payloads reject with 400 before touching the runtime.
	bad := map[string]any{"value": map[string]any{"batch": []map[string]any{
		{"user_id": "alice", "model_id": "mbnet", "payload": "not-base64!"},
	}}}
	if code, rr = postRun(t, srv, bad); code != http.StatusBadRequest || rr.Error == "" {
		t.Fatalf("bad base64: code %d resp %+v", code, rr)
	}
	if code, _ := postRun(t, srv, "not-json-object"); code != http.StatusBadRequest {
		t.Fatalf("bad body: code %d", code)
	}
}

// TestRunEnvelopeV2Fields drives the tenant/priority/deadline fields of the
// serving API v2 batch envelope: expired items are answered errDeadline
// positionally without reaching the runtime, live items still ride ONE
// HandleBatch call, and served/shed counts land on the right tenants.
func TestRunEnvelopeV2Fields(t *testing.T) {
	f := &fakeRunner{}
	tally := newTenantTally()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		handleRun(f, tally, w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	past := time.Now().Add(-time.Second).Format(time.RFC3339Nano)
	future := time.Now().Add(time.Hour).Format(time.RFC3339Nano)
	batch := map[string]any{"value": map[string]any{"batch": []map[string]any{
		{"user_id": "alice", "model_id": "mbnet", "payload": b64("in-0"),
			"tenant": "acme", "priority": 2, "deadline": future},
		{"user_id": "alice", "model_id": "mbnet", "payload": b64("in-1"),
			"tenant": "acme", "deadline": past},
		{"user_id": "bob", "model_id": "mbnet", "payload": b64("in-2"),
			"tenant": "globex"},
	}}}
	code, rr := postRun(t, srv, batch)
	if code != http.StatusOK || rr.Error != "" {
		t.Fatalf("batch: code %d resp %+v", code, rr)
	}
	if len(rr.Batch) != 3 {
		t.Fatalf("batch results %d, want 3", len(rr.Batch))
	}
	if rr.Batch[1].Error != errDeadline {
		t.Fatalf("expired item error %q, want %q", rr.Batch[1].Error, errDeadline)
	}
	for _, i := range []int{0, 2} {
		if rr.Batch[i].Error != "" {
			t.Fatalf("live item %d failed: %q", i, rr.Batch[i].Error)
		}
	}
	// The expired item must not have burned a slot in the enclave entry.
	if len(f.batches) != 1 || len(f.batches[0]) != 2 {
		t.Fatalf("runtime saw %d batches (first len %d), want 1 of 2", len(f.batches), len(f.batches[0]))
	}
	served, shed, users := tally.snapshot()
	if served["acme"] != 1 || served["globex"] != 1 || shed["acme"] != 1 || shed["globex"] != 0 {
		t.Fatalf("tally served=%v shed=%v", served, shed)
	}
	// Per-user served counts attribute the two live items to their enclave
	// user ids; the shed item is not served and must not appear.
	if users["alice"] != 1 || users["bob"] != 1 {
		t.Fatalf("user tally %v", users)
	}

	// A single request past its deadline is a fast 504, runtime untouched.
	single := map[string]any{"value": map[string]any{
		"user_id": "alice", "model_id": "mbnet", "payload": b64("in-9"),
		"tenant": "acme", "deadline": past,
	}}
	if code, rr := postRun(t, srv, single); code != http.StatusGatewayTimeout || rr.Error != errDeadline {
		t.Fatalf("expired single: code %d resp %+v", code, rr)
	}
	if f.singles != 0 {
		t.Fatalf("expired single reached the runtime")
	}
	// Malformed deadlines reject with 400.
	badDl := map[string]any{"value": map[string]any{
		"user_id": "alice", "model_id": "mbnet", "payload": b64("in-9"),
		"deadline": "yesterday-ish",
	}}
	if code, _ := postRun(t, srv, badDl); code != http.StatusBadRequest {
		t.Fatalf("bad deadline: code %d", code)
	}
}
