// Command loadgen replays a workload trace against a live SeMIRT action (or
// a FnPacker router) and reports latency statistics — the open-loop load
// driver used for ad-hoc measurements against the multi-process deployment.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:7200/run -model mbnet -pattern poisson \
//	        -rate 5 -duration 30s -user-seed alice
//	loadgen -via-packer http://127.0.0.1:7300/invoke -models m0,m1 \
//	        -pattern mmpp -rate 5 -rate2 10 -duration 60s
//
// With -local, loadgen instead spins up a complete in-process deployment
// (KeyService, cluster, SeMIRT action) fronted by the batching gateway and
// drives it directly — open loop from the trace flags, or closed loop with
// -closed N concurrent clients:
//
//	loadgen -local -pattern poisson -rate 200 -duration 10s -max-batch 8
//	loadgen -local -closed 64 -requests 32 -max-batch 8
//	loadgen -local -closed 32 -exec-tail 10 -exec-steps 20 -continuous
//	loadgen -local -closed 256 -shards 4
//	loadgen -local -closed 32 -nodes 2 -chaos -retries 3 -crash-at 500ms -restore-at 1s
//	loadgen -local -closed 32 -revisions 2 -canary-weight 25
//
// The request keys derive from the same seeds cmd/owctl uses, so a
// deployment set up with `owctl deploy` is directly loadable.
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sesemi/internal/autoscale"
	"sesemi/internal/bench"
	"sesemi/internal/costmodel"
	"sesemi/internal/faults"
	"sesemi/internal/gateway"
	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/metrics"
	"sesemi/internal/model"
	"sesemi/internal/obs"
	"sesemi/internal/rollout"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/tensor"
	"sesemi/internal/workload"
)

func main() {
	url := flag.String("url", "", "SeMIRT action /run URL (single model)")
	packer := flag.String("via-packer", "", "FnPacker /invoke base URL (multi-model)")
	modelsFlag := flag.String("models", "mbnet", "comma-separated model ids")
	baseModel := flag.String("zoo", "mbnet", "zoo architecture for input shape")
	userSeed := flag.String("user-seed", "alice", "user principal seed")
	pattern := flag.String("pattern", "poisson", "arrival pattern: fixed, poisson, mmpp, diurnal")
	shape := flag.String("shape", "", "workload shape shorthand: steady (FixedRate), burst (MMPP), diurnal (sinusoidal); overrides -pattern")
	rate := flag.Float64("rate", 2, "request rate (rps); MMPP/diurnal low state")
	rate2 := flag.Float64("rate2", 0, "MMPP/diurnal high-state rate (default 2x rate)")
	period := flag.Duration("period", 0, "diurnal period (default duration/4)")
	duration := flag.Duration("duration", 30*time.Second, "trace duration")
	seed := flag.Int64("seed", 1, "trace seed")
	conc := flag.Int("concurrency", 16, "max in-flight requests")
	local := flag.Bool("local", false, "drive an in-process gateway-fronted deployment instead of HTTP")
	closed := flag.Int("closed", 0, "with -local: closed-loop client count (0 = open loop from the trace flags)")
	requests := flag.Int("requests", 32, "with -local -closed: requests per client")
	maxBatch := flag.Int("max-batch", 8, "with -local: gateway batch bound")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "with -local: gateway batch formation deadline")
	affinity := flag.Bool("affinity", false, "with -local: locality-aware batch routing (sticky per-model home nodes)")
	localNodes := flag.Int("nodes", 1, "with -local: invoker node count")
	shards := flag.Int("shards", 0, "with -local -closed: front the deployment with a sharded frontier of this many gateway shards (one tenant per client; 0/1 = the single gateway)")
	localModels := flag.Int("local-models", 1, "with -local: model ids deployed on the action")
	revisions := flag.Int("revisions", 1, "with -local -closed: deployed revisions of the model (revision k is mbnet@v<k>); the highest is the canary")
	canaryWeight := flag.Int("canary-weight", 0, "with -local -revisions >= 2: percent of traffic sticky-split to the canary revision (per closed-loop client)")
	tenants := flag.Int("tenants", 0, "with -local: tenants drawing Zipf-skewed load through the v2 Submit surface (0 = single default tenant via Do)")
	tenantSkew := flag.Float64("tenant-skew", 1.2, "with -local -tenants: Zipf skew s (>1; larger = hotter hottest tenant)")
	tenantQuota := flag.Int("tenant-quota", 0, "with -local -tenants: per-tenant admission quota (0 = gateway default)")
	users := flag.Int("users", 0, "with -local: distinct user principals drawing Zipf-skewed load (0/1 = the single default user)")
	userSkew := flag.Float64("user-skew", 1.2, "with -local -users: Zipf skew s (>1; larger = hotter hottest user)")
	groupUsers := flag.Bool("group-users", false, "with -local: user-affinity batch grouping in the gateway")
	keyCache := flag.Int("key-cache", 0, "with -local: enclave key-cache size (0 = default, 1 = historical single pair)")
	autoscaleOn := flag.Bool("autoscale", false, "with -local: predictive autoscaler (forecast-driven prewarm + adaptive keep-warm) instead of depth-triggered prewarm")
	sandboxStart := flag.Duration("sandbox-start", 0, "with -local: modeled container start latency (what prewarming hides; 0 = free starts)")
	keepWarm := flag.Duration("keep-warm", 0, "with -local: idle-sandbox deadline (0 = the 3-minute default); the adaptive ceiling under -autoscale")
	execTail := flag.Int("exec-tail", 0, "with -local: every Nth request is long, running -exec-steps execution steps (0 = homogeneous single-step mix)")
	execSteps := flag.Int("exec-steps", 20, "with -local -exec-tail: execution step count for the long requests")
	execCost := flag.Duration("exec-cost", 2*time.Millisecond, "with -local -exec-tail: modeled per-step execution latency")
	continuous := flag.Bool("continuous", false, "with -local: continuous batching (session step loop with mid-batch admission and step-boundary preemption)")
	preemptAfter := flag.Int("preempt-after", 0, "with -local -continuous: per-session step budget before an over-budget member is preempted (0 = gateway default)")
	retries := flag.Int("retries", 0, "with -local: gateway retry budget for failed dispatches (0 = fail fast; also arms the runtime's key-service retries under -chaos)")
	retryBackoff := flag.Duration("retry-backoff", time.Millisecond, "with -local -retries: base exponential backoff between retries")
	chaos := flag.Bool("chaos", false, "with -local: arm the seeded fault injector (sandbox-crash coin, plus -crash-at/-restore-at node crash and key-service flap)")
	crashProb := flag.Float64("crash-prob", 0.05, "with -local -chaos: per-activation sandbox crash probability")
	crashAt := flag.Duration("crash-at", 0, "with -local -chaos: crash node-0 and flap the key service this long into the run (0 = never)")
	restoreAt := flag.Duration("restore-at", 0, "with -local -chaos: restore node-0 this long into the run (0 = never)")
	ksOutage := flag.Duration("ks-outage", 100*time.Millisecond, "with -local -chaos: key-service outage window opened at -crash-at")
	obsAddr := flag.String("obs-addr", "", "serve the unified metrics plane (/metrics + pprof) for this run on the given address (\"\" = disabled)")
	traceSample := flag.Float64("trace-sample", 0, "with -local: head-sample this fraction of requests for lifecycle tracing and report the per-stage decomposition (0 = off; anomalous requests are always kept)")
	flag.Parse()

	// -shape is the autoscale experiment's shorthand over -pattern.
	switch *shape {
	case "":
	case "steady":
		*pattern = "fixed"
	case "burst":
		*pattern = "mmpp"
	case "diurnal":
		*pattern = "diurnal"
	default:
		log.Fatalf("loadgen: unknown -shape %q (steady, burst, diurnal)", *shape)
	}

	if *traceSample < 0 || *traceSample > 1 {
		log.Fatal("loadgen: -trace-sample must be in [0, 1]")
	}
	if *traceSample > 0 && !*local {
		log.Fatal("loadgen: -trace-sample requires -local (HTTP mode has no in-process trace plane)")
	}
	if *local {
		if *url != "" || *packer != "" {
			log.Fatal("loadgen: -local is mutually exclusive with -url/-via-packer")
		}
		if *modelsFlag != "mbnet" || *conc != 16 {
			log.Print("loadgen: note: -models and -concurrency apply to HTTP mode only; -local drives one model through the gateway's own bounds")
		}
		if *tenants < 0 || (*tenants > 0 && *tenantSkew <= 1) {
			log.Fatal("loadgen: -tenant-skew must be > 1 (rand.Zipf) and -tenants >= 0")
		}
		if *users < 0 || (*users > 1 && *userSkew <= 1) {
			log.Fatal("loadgen: -user-skew must be > 1 (rand.Zipf) and -users >= 0")
		}
		if *users > 1 && *tenants > 0 {
			log.Fatal("loadgen: -users and -tenants are mutually exclusive")
		}
		if *shards > 1 && (*tenants > 0 || *users > 1) {
			log.Fatal("loadgen: -shards drives its own tenant-per-client mix; it is mutually exclusive with -tenants/-users")
		}
		if *shards > 1 && *closed <= 0 {
			log.Fatal("loadgen: -shards requires -closed (the frontier sweep is a closed-loop measurement)")
		}
		if *revisions < 1 || *canaryWeight < 0 || *canaryWeight > 100 {
			log.Fatal("loadgen: -revisions must be >= 1 and -canary-weight in [0, 100]")
		}
		if *canaryWeight > 0 && *revisions < 2 {
			log.Fatal("loadgen: -canary-weight needs a canary revision; deploy one with -revisions 2")
		}
		if *revisions > 1 {
			if *closed <= 0 {
				log.Fatal("loadgen: -revisions requires -closed (the sticky split is keyed per closed-loop client)")
			}
			if *shards > 1 || *tenants > 0 || *users > 1 || *localModels > 1 {
				log.Fatal("loadgen: -revisions splits one model's traffic; it is mutually exclusive with -shards/-tenants/-users/-local-models")
			}
		}
		if *execTail < 0 || (*execTail > 0 && *execSteps < 2) {
			log.Fatal("loadgen: -exec-tail must be >= 0 and -exec-steps >= 2 when a tail is requested")
		}
		if !*chaos && (*crashAt > 0 || *restoreAt > 0) {
			log.Fatal("loadgen: -crash-at/-restore-at require -chaos")
		}
		if *chaos && *crashAt > 0 && *localNodes < 2 {
			log.Fatal("loadgen: crashing node-0 on a single-node deployment loses everything; use -nodes 2")
		}
		runLocal(localCfg{
			closed: *closed, requests: *requests, maxBatch: *maxBatch, maxWait: *maxWait,
			pattern: *pattern, rate: *rate, rate2: *rate2, duration: *duration,
			seed: *seed, user: *userSeed,
			affinity: *affinity, nodes: *localNodes, models: *localModels, shards: *shards,
			tenants: *tenants, skew: *tenantSkew, quota: *tenantQuota,
			revisions: *revisions, canaryWeight: *canaryWeight,
			users: *users, userSkew: *userSkew, groupUsers: *groupUsers, keyCache: *keyCache,
			period: *period, autoscale: *autoscaleOn, sandboxStart: *sandboxStart, keepWarm: *keepWarm,
			execTail: *execTail, execSteps: *execSteps, execCost: *execCost,
			continuous: *continuous, preemptAfter: *preemptAfter,
			retries: *retries, retryBackoff: *retryBackoff,
			chaos: *chaos, crashProb: *crashProb,
			crashAt: *crashAt, restoreAt: *restoreAt, ksOutage: *ksOutage,
			obsAddr: *obsAddr, traceSample: *traceSample,
		})
		return
	}
	if *url == "" && *packer == "" {
		log.Fatal("loadgen: one of -url or -via-packer is required")
	}
	modelIDs := strings.Split(*modelsFlag, ",")

	// Build the trace: one stream per model.
	var traces []workload.Trace
	for i, m := range modelIDs {
		traces = append(traces, buildTrace(*pattern, *seed+int64(i), *rate, *rate2, *period, *duration, m, *userSeed))
	}
	trace := workload.Merge(traces...)
	fmt.Printf("loadgen: %d requests over %v (avg %.1f rps)\n", len(trace), *duration, trace.Rate())

	// Prepare one encrypted payload per model.
	base, err := model.NewFunctional(*baseModel)
	if err != nil {
		log.Fatal(err)
	}
	in := tensor.New(base.InputShape...)
	for i := range in.Data() {
		in.Data()[i] = float32(i%17) * 0.05
	}
	uid := secure.IdentityOf(secure.KeyFromSeed("user:" + *userSeed))
	bodies := map[string][]byte{}
	for _, m := range modelIDs {
		kr := secure.KeyFromSeed("kr:" + *userSeed + ":" + m)
		payload, err := semirt.EncryptRequest(kr, m, inference.EncodeTensor(in))
		if err != nil {
			log.Fatal(err)
		}
		body, err := json.Marshal(map[string]any{"value": map[string]any{
			"user_id":  string(uid),
			"model_id": m,
			"payload":  base64.StdEncoding.EncodeToString(payload),
		}})
		if err != nil {
			log.Fatal(err)
		}
		bodies[m] = body
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	var lat metrics.Latency
	perKind := map[string]int{}
	var mu sync.Mutex
	var failures int
	if *obsAddr != "" {
		// HTTP mode has no in-process serving stack; the metrics plane serves
		// the driver's own view — client-observed latency and failure count.
		reg := obs.NewRegistry()
		reg.SummaryFunc("sesemi_loadgen_latency_seconds", "Client-observed request latency.", nil, 1e-9, lat.Snapshot)
		reg.CounterFunc("sesemi_loadgen_failures_total", "Requests failed (transport or application error).", nil,
			func() float64 { mu.Lock(); defer mu.Unlock(); return float64(failures) })
		serveObs(*obsAddr, reg)
	}
	sem := make(chan struct{}, *conc)
	var wg sync.WaitGroup
	start := time.Now()
	for _, ev := range trace {
		time.Sleep(time.Until(start.Add(ev.At)))
		wg.Add(1)
		sem <- struct{}{}
		go func(ev workload.Event) {
			defer wg.Done()
			defer func() { <-sem }()
			target := *url
			if *packer != "" {
				target = strings.TrimSuffix(*packer, "/") + "/" + ev.ModelID
			}
			t0 := time.Now()
			resp, err := client.Post(target, "application/json", bytes.NewReader(bodies[ev.ModelID]))
			if err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			d := time.Since(t0)
			var rr struct {
				Kind  string `json:"kind"`
				Error string `json:"error"`
			}
			_ = json.Unmarshal(raw, &rr)
			mu.Lock()
			if resp.StatusCode != http.StatusOK || rr.Error != "" {
				failures++
			} else {
				lat.Add(d)
				perKind[rr.Kind]++
			}
			mu.Unlock()
		}(ev)
	}
	wg.Wait()

	s := lat.Snapshot()
	fmt.Printf("completed %d ok, %d failed\n", s.Count, failures)
	if s.Count > 0 {
		fmt.Printf("latency: mean %v  p50 %v  p95 %v  p99 %v  max %v\n",
			s.Mean.Round(time.Millisecond), s.P50.Round(time.Millisecond),
			s.P95.Round(time.Millisecond), s.P99.Round(time.Millisecond),
			s.Max.Round(time.Millisecond))
	}
	for _, k := range []string{"cold", "warm", "hot"} {
		if perKind[k] > 0 {
			fmt.Printf("%-5s %d\n", k+":", perKind[k])
		}
	}
}

// serveObs starts the unified metrics plane (GET /metrics + pprof) on addr
// for the lifetime of the run.
func serveObs(addr string, reg *obs.Registry) {
	mux := http.NewServeMux()
	obs.Mount(mux, reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("loadgen: obs listener: %v", err)
	}
	go func() { _ = http.Serve(ln, mux) }()
	fmt.Printf("loadgen: metrics on http://%s/metrics\n", ln.Addr())
}

// buildTrace constructs one model's arrival stream from the pattern flags
// (shared by the HTTP and -local drivers). rate2 <= 0 defaults to 2*rate
// for the MMPP/diurnal high state; period <= 0 to duration/4.
func buildTrace(pattern string, seed int64, rate, rate2 float64, period, duration time.Duration, modelID, user string) workload.Trace {
	if rate2 <= 0 {
		rate2 = 2 * rate
	}
	if period <= 0 {
		period = duration / 4
	}
	switch pattern {
	case "fixed":
		return workload.FixedRate(rate, duration, modelID, user)
	case "poisson":
		return workload.Poisson(seed, rate, duration, modelID, user)
	case "mmpp":
		return workload.MMPP(seed, []float64{rate, rate2}, duration/6, duration, modelID, user)
	case "diurnal":
		return workload.Diurnal(seed, rate2, rate, period, duration, modelID, user)
	}
	log.Fatalf("loadgen: unknown pattern %q", pattern)
	return nil
}

// localCfg carries the -local mode knobs.
type localCfg struct {
	closed, requests, maxBatch int
	maxWait                    time.Duration
	pattern                    string
	rate, rate2                float64
	period, duration           time.Duration
	seed                       int64
	user                       string
	affinity                   bool
	nodes, models, shards      int
	tenants                    int
	skew                       float64
	quota                      int

	// revisions > 1 deploys canary revisions mbnet@v2..mbnet@v<revisions>
	// alongside the stable model; canaryWeight percent of closed-loop
	// traffic is sticky-split (per client) to the highest revision through
	// the same splitter the rollout controller ramps.
	revisions    int
	canaryWeight int

	// users > 1 drives a Zipf-skewed multi-user mix against the enclave's
	// key cache; groupUsers turns on gateway user-affinity grouping and
	// keyCache sets the enclave LRU capacity.
	users      int
	userSkew   float64
	groupUsers bool
	keyCache   int

	// autoscale swaps the depth-triggered prewarm for the predictive
	// controller; sandboxStart and keepWarm make its effects visible
	// (cold-start cost, idle squatting).
	autoscale    bool
	sandboxStart time.Duration
	keepWarm     time.Duration

	// execTail > 0 marks every execTail-th request long (execSteps steps at
	// execCost each) — the heavy-tailed mix that exposes head-of-line
	// blocking; continuous swaps dispatch for the session step loop.
	execTail, execSteps int
	execCost            time.Duration
	continuous          bool
	preemptAfter        int

	// chaos arms a seeded fault injector (sandbox-crash coin at crashProb,
	// node-0 crash + KS flap at crashAt, restore at restoreAt); retries is
	// the gateway budget that decides whether those faults become latency or
	// loss.
	retries            int
	retryBackoff       time.Duration
	chaos              bool
	crashProb          float64
	crashAt, restoreAt time.Duration
	ksOutage           time.Duration

	// obsAddr serves the world's unified registry over HTTP for the run;
	// traceSample > 0 arms lifecycle tracing and the stage decomposition
	// report.
	obsAddr     string
	traceSample float64
}

// runLocal drives the in-process gateway deployment (bench.LiveWorld):
// closed loop with N concurrent clients, or open loop from the trace flags.
func runLocal(c localCfg) {
	closed, requests, maxBatch, maxWait := c.closed, c.requests, c.maxBatch, c.maxWait
	wc := bench.LiveWorldConfig{
		Nodes:        c.nodes,
		Models:       c.models,
		Users:        c.users,
		KeyCacheSize: c.keyCache,
		SandboxStart: c.sandboxStart,
		KeepWarm:     c.keepWarm,
		Shards:       c.shards,
		TraceSample:  c.traceSample,
		Gateway: gateway.Config{
			MaxBatch:     maxBatch,
			MaxWait:      maxWait,
			MaxInFlight:  8,
			PrewarmDepth: 32,
			Affinity:     c.affinity,
			TenantQuota:  c.quota,
			GroupUsers:   c.groupUsers,
			Continuous:   c.continuous,
			PreemptAfter: c.preemptAfter,
		},
	}
	if c.execTail > 0 {
		// A heavy tail needs a modeled execution stage so the long requests
		// actually occupy their slot for execSteps × execCost.
		wc.ExecCost = c.execCost
	}
	wc.Gateway.MaxRetries = c.retries
	wc.Gateway.RetryBackoff = c.retryBackoff
	// -revisions deploys canary revisions next to the stable model. Traffic
	// still arrives addressed to "mbnet"; the splitter re-targets the
	// configured share BEFORE the request is built, so the revision choice
	// binds the encryption key and the routed id together — a fixed-weight
	// snapshot of the rollout controller's ramp.
	var split *rollout.Splitter
	if c.revisions > 1 {
		for r := 2; r <= c.revisions; r++ {
			wc.ExtraModels = append(wc.ExtraModels, fmt.Sprintf("mbnet@v%d", r))
		}
		split = rollout.NewSplitter("mbnet")
		split.SetCanary(fmt.Sprintf("mbnet@v%d", c.revisions), c.canaryWeight)
	}
	var inj *faults.Injector
	if c.chaos {
		inj = faults.New(c.seed, nil)
		inj.SetSandboxCrashProb(c.crashProb)
		wc.Faults = inj
		if c.retries > 0 {
			// -retries arms the whole recovery plane; with it at 0 the chaos
			// run shows raw loss, like the bench's no-recovery mode.
			wc.KSRetries = 3
			wc.KSRetryBackoff = 50 * time.Millisecond
			wc.KSBrownout = 250 * time.Millisecond
		}
	}
	kw := c.keepWarm
	if kw <= 0 {
		kw = 3 * time.Minute // the cluster default
	}
	if c.sandboxStart > 0 || c.keepWarm > 0 || c.autoscale {
		// Reaping and boot-time enclave launch make keep-warm (fixed or
		// adaptive) and prewarming observable, like the autoscale bench.
		wc.ReaperInterval = kw / 8
		wc.StartEnclave = true
	}
	if c.autoscale {
		wc.Autoscale = &autoscale.Config{
			Window:          250 * time.Millisecond,
			Horizon:         3,
			Headroom:        1,
			MaxWarm:         8,
			SlotsPerSandbox: 4, // the live world's per-enclave concurrency
			MinKeepWarm:     kw / 4,
			MaxKeepWarm:     kw,
		}
	}
	w, err := bench.NewLiveWorld(wc)
	if err != nil {
		log.Fatalf("loadgen: local world: %v", err)
	}
	defer w.Close()
	if c.obsAddr != "" {
		serveObs(c.obsAddr, w.Registry)
	}
	defer reportTrace(w)
	if inj != nil {
		// The fault schedule is armed once serving starts, not at world
		// construction, so -crash-at offsets mean what they say.
		if c.crashAt > 0 {
			time.AfterFunc(c.crashAt, func() {
				inj.CrashNode("node-0")
				inj.KeyServiceOutage(c.ksOutage)
			})
		}
		if c.restoreAt > 0 {
			time.AfterFunc(c.restoreAt, func() { inj.RestoreNode("node-0") })
		}
	}

	if c.tenants > 0 {
		tenantLoop(w, c)
		return
	}
	if c.users > 1 {
		userLoop(w, c)
		return
	}
	if closed > 0 {
		fmt.Printf("loadgen: closed loop, %d clients x %d requests, MaxBatch=%d affinity=%v\n", closed, requests, maxBatch, c.affinity)
		if c.shards > 1 {
			fmt.Printf("loadgen: sharded frontier, %d gateway shards, one tenant per client\n", c.shards)
		}
		if c.execTail > 0 {
			fmt.Printf("loadgen: heavy tail: every %d-th request runs %d steps x %v, continuous=%v\n",
				c.execTail, c.execSteps, c.execCost, c.continuous)
		}
		do := func(ctx context.Context, seed int) (semirt.Response, error) {
			model := w.Models[seed%len(w.Models)]
			if c.execTail > 0 && seed%c.execTail == c.execTail-1 {
				req, err := w.RequestFor(model, seed)
				if err != nil {
					return semirt.Response{}, err
				}
				req.ExecSteps = c.execSteps
				return w.Gateway.Do(ctx, w.Action, req)
			}
			return w.DoGatewayFor(ctx, model, seed)
		}
		mode := "gateway"
		if split != nil {
			// Sticky per client: a client never flaps between revisions, and
			// Splitter.Do keeps the per-revision served/error ledgers.
			mode = "split"
			fmt.Printf("loadgen: revisions: %d deployed, canary %s at %d%% weight\n",
				c.revisions, split.Canary(), split.Weight())
			do = func(ctx context.Context, seed int) (semirt.Response, error) {
				client := "c" + strconv.Itoa(seed/requests)
				return split.Do(ctx, w.Gateway, "", client, func(modelID string) (gateway.Request, error) {
					req, err := w.RequestFor(modelID, seed)
					if err != nil {
						return gateway.Request{}, err
					}
					return gateway.Request{Action: w.Action, Body: req}, nil
				})
			}
		}
		if c.shards > 1 {
			// Route through the frontier, one tenant per client, so the ring
			// spreads the closed-loop mix across shards by (model, tenant).
			mode = "frontier"
			do = func(ctx context.Context, seed int) (semirt.Response, error) {
				tenant := fmt.Sprintf("t%d", seed/requests)
				return w.DoFrontierAs(ctx, tenant, w.Models[seed%len(w.Models)], seed)
			}
		}
		r := bench.ClosedLoop(mode, closed, requests, do)
		fmt.Printf("completed %d ok, %d failed in %.2fs (%.0f req/s)\n",
			r.Requests-r.Errors, r.Errors, r.Seconds, r.RPS)
		fmt.Printf("latency: mean %.1fms  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
			r.MeanMs, r.P50Ms, r.P95Ms, r.P99Ms)
		if split != nil {
			canary := split.Canary()
			fmt.Printf("split: %-10s %d served (%d errors)\n", "mbnet", split.Served("mbnet"), split.Errored("mbnet"))
			fmt.Printf("split: %-10s %d served (%d errors)\n", canary, split.Served(canary), split.Errored(canary))
		}
	} else {
		// One arrival stream per deployed model, merged — so -local-models
		// exercises a real multi-model mix, as HTTP mode's -models does.
		var streams []workload.Trace
		for i, m := range w.Models {
			streams = append(streams, buildTrace(c.pattern, c.seed+int64(i), c.rate, c.rate2, c.period, c.duration, m, c.user))
		}
		tr := workload.Merge(streams...)
		if c.execTail > 0 {
			for i := range tr {
				if i%c.execTail == c.execTail-1 {
					tr[i].ExecSteps = c.execSteps
				}
			}
		}
		fmt.Printf("loadgen: open loop, %d requests over %v (avg %.1f rps, %d models), MaxBatch=%d\n",
			len(tr), c.duration, tr.Rate(), len(w.Models), maxBatch)
		lat, perKind, fails := bench.OpenLoopGateway(w, tr)
		s := lat.Snapshot()
		fmt.Printf("completed %d ok, %d failed\n", s.Count, fails)
		if s.Count > 0 {
			fmt.Printf("latency: mean %v  p50 %v  p95 %v  p99 %v\n",
				s.Mean.Round(time.Millisecond), s.P50.Round(time.Millisecond),
				s.P95.Round(time.Millisecond), s.P99.Round(time.Millisecond))
		}
		for _, k := range []string{"cold", "warm", "hot"} {
			if perKind[k] > 0 {
				fmt.Printf("%-5s %d\n", k+":", perKind[k])
			}
		}
	}
	gs := w.Gateway.Stats()
	gm := w.Gateway.Metrics()
	if c.shards > 1 {
		// The frontier carried the traffic: report its merged view (the plain
		// gateway only served the world's warm-up request).
		fs := w.Frontier.Stats()
		fm := w.Frontier.Metrics()
		gs, gm = fs.Stats, &fm
		perShard := make([]float64, len(fs.PerShard))
		for i, s := range fs.PerShard {
			perShard[i] = float64(s.Accepted)
		}
		fmt.Printf("frontier: %d shards, %d spills, %d steals moving %d requests, imbalance %.2f\n",
			c.shards, fs.Spills, fs.Steals, fs.Stolen, costmodel.ShardImbalance(perShard))
	}
	fmt.Printf("gateway: %d batches (mean %.1f, p95 %.0f), %d rejected, %d prewarmed\n",
		gs.Batches, gm.BatchSizes.Mean(), gm.BatchSizes.Quantile(0.95), gs.Rejected, gs.Prewarmed)
	if c.continuous {
		steps, pre := w.SessionStats()
		fmt.Printf("continuous: %d session frames, %d enclave preemptions, %d gateway requeues\n",
			steps, pre, gs.Preemptions)
	}
	st := w.Cluster.Stats()
	// Amortization is served requests per gateway batch; cluster Invocations
	// additionally counts the world's warm-up activation.
	fmt.Printf("cluster: %d activations (%d gateway batches for %d served requests, %.1fx amortized), %d cold starts\n",
		st.Invocations, gs.Batches, gs.Served, float64(gs.Served)/float64(max(gs.Batches, 1)), st.ColdStarts)
	if ast, err := w.Cluster.ActionStats(w.Action); err == nil {
		fmt.Printf("warm pool: %d cold starts, %d warm hits, %.1f idle sandbox-seconds, keep-warm %v\n",
			ast.ColdStarts, ast.WarmHits, ast.IdleSeconds, ast.KeepWarm)
	}
	if inj != nil {
		is := inj.Stats()
		fmt.Printf("chaos: %d node-down hits, %d sandbox crashes, %d ks rejects; gateway: %d retries, %d node failures\n",
			is.NodeDownHits, is.SandboxCrashes, is.KSRejects, gs.Retries, st.NodeFailures)
	}
	if w.Autoscaler != nil {
		as := w.Autoscaler.Stats()
		fmt.Printf("autoscaler: %d prewarmed over %d steps, forecast MAE %.2f rps (mean rate %.2f rps)\n",
			as.Prewarmed, as.Steps, as.ForecastMAE, as.MeanRate)
	}
}

// reportTrace prints the request-lifecycle decomposition when tracing was
// armed: per-stage span counts and means over every finished trace, plus the
// top-level span coverage of end-to-end time (1.0 = the stage partition is
// gapless; the stitched-trace bar is a sum within 5% of e2e).
func reportTrace(w *bench.LiveWorld) {
	tr := w.Tracer
	if tr == nil {
		return
	}
	ts := tr.Stats()
	fmt.Printf("trace: %d traces (%d kept, %d anomalous), top-level coverage %.3f of e2e\n",
		ts.Started, ts.Kept, ts.Anomalous, tr.Coverage())
	for _, st := range tr.Decomposition() {
		fmt.Printf("  %-10s %8d spans  mean %8.3fms  total %10.1fms\n",
			st.Stage, st.Count, float64(st.Mean)/1e6, float64(st.Total)/1e6)
	}
}

// tenantLoop drives Zipf-skewed multi-tenant load through the serving API
// v2 Submit surface — closed loop with -closed clients, open loop from the
// trace flags otherwise — and reports latency per tenant, so the fairness
// claim (hot tenant cannot starve the rest) is reproducible from the CLI.
func tenantLoop(w *bench.LiveWorld, c localCfg) {
	perTenant := map[string]*metrics.Latency{}
	fails := 0
	var mu sync.Mutex
	do := func(tenant, model string, seed int) {
		req, err := w.RequestFor(model, seed)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		t0 := time.Now()
		var resp semirt.Response
		tk, err := w.Gateway.Submit(context.Background(), gateway.Request{
			Action: w.Action, Tenant: tenant, Body: req,
		})
		if err == nil {
			resp, err = tk.Wait(context.Background())
		}
		_ = resp
		d := time.Since(t0)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			fails++
			return
		}
		lat := perTenant[tenant]
		if lat == nil {
			lat = &metrics.Latency{}
			perTenant[tenant] = lat
		}
		lat.Add(d)
	}

	start := time.Now()
	total := 0
	if c.closed > 0 {
		fmt.Printf("loadgen: closed loop, %d clients x %d requests over %d tenants (Zipf s=%.2f), MaxBatch=%d\n",
			c.closed, c.requests, c.tenants, c.skew, c.maxBatch)
		total = c.closed * c.requests
		var wg sync.WaitGroup
		for cl := 0; cl < c.closed; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(c.seed + int64(cl)))
				zipf := rand.NewZipf(rng, c.skew, 1, uint64(c.tenants-1))
				for i := 0; i < c.requests; i++ {
					seed := cl*c.requests + i
					do(fmt.Sprintf("t%d", zipf.Uint64()), w.Models[seed%len(w.Models)], seed)
				}
			}(cl)
		}
		wg.Wait()
	} else {
		var streams []workload.Trace
		for i, m := range w.Models {
			streams = append(streams, buildTrace(c.pattern, c.seed+int64(i), c.rate, c.rate2, c.period, c.duration, m, c.user))
		}
		tr := workload.Merge(streams...)
		total = len(tr)
		fmt.Printf("loadgen: open loop, %d requests over %v across %d tenants (Zipf s=%.2f), MaxBatch=%d\n",
			len(tr), c.duration, c.tenants, c.skew, c.maxBatch)
		rng := rand.New(rand.NewSource(c.seed))
		zipf := rand.NewZipf(rng, c.skew, 1, uint64(c.tenants-1))
		var wg sync.WaitGroup
		for i := range tr {
			ev := tr[i]
			tenant := fmt.Sprintf("t%d", zipf.Uint64())
			time.Sleep(time.Until(start.Add(ev.At)))
			wg.Add(1)
			go func(tenant, model string, seed int) {
				defer wg.Done()
				do(tenant, model, seed)
			}(tenant, ev.ModelID, i)
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	ok := total - fails
	fmt.Printf("completed %d ok, %d failed in %.2fs (%.0f req/s)\n",
		ok, fails, elapsed.Seconds(), float64(ok)/elapsed.Seconds())
	names := make([]string, 0, len(perTenant))
	for name := range perTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := perTenant[name].Snapshot()
		fmt.Printf("  %-8s %6d req  mean %7.1fms  p50 %7.1fms  p99 %7.1fms\n",
			name, s.Count, float64(s.Mean)/1e6, float64(s.P50)/1e6, float64(s.P99)/1e6)
	}
	gs := w.Gateway.Stats()
	fmt.Printf("gateway: %d batches, %d overload-rejected, %d tenant-quota-rejected, %d deadline-shed\n",
		gs.Batches, gs.Rejected, gs.TenantRejected, gs.Shed)
}

// userLoop drives a Zipf-skewed multi-user mix against the enclave's key
// cache — closed loop with -closed clients (default 16), each drawing its
// user per request — and reports latency per user plus the enclave-level
// key-fetch count, so the key-locality claim (an LRU keeps a user-diverse
// stream hot) is reproducible from the CLI:
//
//	loadgen -local -users 16 -closed 64 -key-cache 1           # the old single pair
//	loadgen -local -users 16 -closed 64 -group-users           # LRU + grouping
func userLoop(w *bench.LiveWorld, c localCfg) {
	closed := c.closed
	if closed <= 0 {
		closed = 16
	}
	fmt.Printf("loadgen: closed loop, %d clients x %d requests over %d users (Zipf s=%.2f), MaxBatch=%d key-cache=%d group=%v\n",
		closed, c.requests, c.users, c.userSkew, c.maxBatch, c.keyCache, c.groupUsers)
	perUser := map[int]*metrics.Latency{}
	perKind := map[string]int{}
	fails := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for cl := 0; cl < closed; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(c.seed + int64(cl)))
			zipf := rand.NewZipf(rng, c.userSkew, 1, uint64(c.users-1))
			for i := 0; i < c.requests; i++ {
				u := int(zipf.Uint64())
				t0 := time.Now()
				resp, err := w.DoGatewayUser(context.Background(), u, cl*c.requests+i)
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					fails++
				} else {
					lat := perUser[u]
					if lat == nil {
						lat = &metrics.Latency{}
						perUser[u] = lat
					}
					lat.Add(d)
					perKind[resp.Kind.String()]++
				}
				mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := closed * c.requests
	fmt.Printf("completed %d ok, %d failed in %.2fs (%.0f req/s)\n",
		total-fails, fails, elapsed.Seconds(), float64(total-fails)/elapsed.Seconds())
	us := make([]int, 0, len(perUser))
	for u := range perUser {
		us = append(us, u)
	}
	sort.Ints(us)
	for _, u := range us {
		s := perUser[u].Snapshot()
		fmt.Printf("  u%-7d %6d req  mean %7.1fms  p50 %7.1fms  p99 %7.1fms\n",
			u, s.Count, float64(s.Mean)/1e6, float64(s.P50)/1e6, float64(s.P99)/1e6)
	}
	for _, k := range []string{"cold", "warm", "hot"} {
		if perKind[k] > 0 {
			fmt.Printf("%-5s %d\n", k+":", perKind[k])
		}
	}
	gs := w.Gateway.Stats()
	gm := w.Gateway.Metrics()
	fmt.Printf("gateway: %d batches (mean %.1f); enclave: %d key fetches across %d users\n",
		gs.Batches, gm.BatchSizes.Mean(), w.KeyFetches(), c.users)
}
