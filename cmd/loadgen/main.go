// Command loadgen replays a workload trace against a live SeMIRT action (or
// a FnPacker router) and reports latency statistics — the open-loop load
// driver used for ad-hoc measurements against the multi-process deployment.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:7200/run -model mbnet -pattern poisson \
//	        -rate 5 -duration 30s -user-seed alice
//	loadgen -via-packer http://127.0.0.1:7300/invoke -models m0,m1 \
//	        -pattern mmpp -rate 5 -rate2 10 -duration 60s
//
// The request keys derive from the same seeds cmd/owctl uses, so a
// deployment set up with `owctl deploy` is directly loadable.
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/metrics"
	"sesemi/internal/model"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/tensor"
	"sesemi/internal/workload"
)

func main() {
	url := flag.String("url", "", "SeMIRT action /run URL (single model)")
	packer := flag.String("via-packer", "", "FnPacker /invoke base URL (multi-model)")
	modelsFlag := flag.String("models", "mbnet", "comma-separated model ids")
	baseModel := flag.String("zoo", "mbnet", "zoo architecture for input shape")
	userSeed := flag.String("user-seed", "alice", "user principal seed")
	pattern := flag.String("pattern", "poisson", "arrival pattern: fixed, poisson, mmpp")
	rate := flag.Float64("rate", 2, "request rate (rps); MMPP low state")
	rate2 := flag.Float64("rate2", 0, "MMPP high-state rate (default 2x rate)")
	duration := flag.Duration("duration", 30*time.Second, "trace duration")
	seed := flag.Int64("seed", 1, "trace seed")
	conc := flag.Int("concurrency", 16, "max in-flight requests")
	flag.Parse()

	if *url == "" && *packer == "" {
		log.Fatal("loadgen: one of -url or -via-packer is required")
	}
	modelIDs := strings.Split(*modelsFlag, ",")
	if *rate2 <= 0 {
		*rate2 = 2 * *rate
	}

	// Build the trace: one stream per model.
	var traces []workload.Trace
	for i, m := range modelIDs {
		s := *seed + int64(i)
		var tr workload.Trace
		switch *pattern {
		case "fixed":
			tr = workload.FixedRate(*rate, *duration, m, *userSeed)
		case "poisson":
			tr = workload.Poisson(s, *rate, *duration, m, *userSeed)
		case "mmpp":
			tr = workload.MMPP(s, []float64{*rate, *rate2}, *duration/6, *duration, m, *userSeed)
		default:
			log.Fatalf("loadgen: unknown pattern %q", *pattern)
		}
		traces = append(traces, tr)
	}
	trace := workload.Merge(traces...)
	fmt.Printf("loadgen: %d requests over %v (avg %.1f rps)\n", len(trace), *duration, trace.Rate())

	// Prepare one encrypted payload per model.
	base, err := model.NewFunctional(*baseModel)
	if err != nil {
		log.Fatal(err)
	}
	in := tensor.New(base.InputShape...)
	for i := range in.Data() {
		in.Data()[i] = float32(i%17) * 0.05
	}
	uid := secure.IdentityOf(secure.KeyFromSeed("user:" + *userSeed))
	bodies := map[string][]byte{}
	for _, m := range modelIDs {
		kr := secure.KeyFromSeed("kr:" + *userSeed + ":" + m)
		payload, err := semirt.EncryptRequest(kr, m, inference.EncodeTensor(in))
		if err != nil {
			log.Fatal(err)
		}
		body, err := json.Marshal(map[string]any{"value": map[string]any{
			"user_id":  string(uid),
			"model_id": m,
			"payload":  base64.StdEncoding.EncodeToString(payload),
		}})
		if err != nil {
			log.Fatal(err)
		}
		bodies[m] = body
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	var lat metrics.Latency
	perKind := map[string]int{}
	var mu sync.Mutex
	var failures int
	sem := make(chan struct{}, *conc)
	var wg sync.WaitGroup
	start := time.Now()
	for _, ev := range trace {
		time.Sleep(time.Until(start.Add(ev.At)))
		wg.Add(1)
		sem <- struct{}{}
		go func(ev workload.Event) {
			defer wg.Done()
			defer func() { <-sem }()
			target := *url
			if *packer != "" {
				target = strings.TrimSuffix(*packer, "/") + "/" + ev.ModelID
			}
			t0 := time.Now()
			resp, err := client.Post(target, "application/json", bytes.NewReader(bodies[ev.ModelID]))
			if err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			d := time.Since(t0)
			var rr struct {
				Kind  string `json:"kind"`
				Error string `json:"error"`
			}
			_ = json.Unmarshal(raw, &rr)
			mu.Lock()
			if resp.StatusCode != http.StatusOK || rr.Error != "" {
				failures++
			} else {
				lat.Add(d)
				perKind[rr.Kind]++
			}
			mu.Unlock()
		}(ev)
	}
	wg.Wait()

	fmt.Printf("completed %d ok, %d failed\n", lat.Count(), failures)
	if lat.Count() > 0 {
		fmt.Printf("latency: mean %v  p50 %v  p95 %v  p99 %v  max %v\n",
			lat.Mean().Round(time.Millisecond), lat.Percentile(50).Round(time.Millisecond),
			lat.Percentile(95).Round(time.Millisecond), lat.Percentile(99).Round(time.Millisecond),
			lat.Max().Round(time.Millisecond))
	}
	for _, k := range []string{"cold", "warm", "hot"} {
		if perKind[k] > 0 {
			fmt.Printf("%-5s %d\n", k+":", perKind[k])
		}
	}
}
