// Command fnpacker runs the FnPacker request router (§IV-C) in front of a
// pool of SeMIRT action endpoints.
//
// Clients POST the same body as a SeMIRT /run call to
// /invoke/{model}; FnPacker picks the endpoint per its packing policy and
// forwards the request.
//
// Usage:
//
//	fnpacker -addr 127.0.0.1:7300 \
//	  -pool pool-0=http://127.0.0.1:7200,pool-1=http://127.0.0.1:7201
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"sesemi/internal/fnpacker"
	"sesemi/internal/vclock"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7300", "listen address")
	pool := flag.String("pool", "", "comma-separated name=url endpoint pool")
	interval := flag.Duration("exclusive-interval", fnpacker.DefaultExclusiveInterval,
		"idle interval after which an exclusive endpoint is reclaimable")
	flag.Parse()

	endpoints := map[string]string{}
	var names []string
	for _, kv := range strings.Split(*pool, ",") {
		if kv == "" {
			continue
		}
		name, url, ok := strings.Cut(kv, "=")
		if !ok {
			log.Fatalf("fnpacker: bad -pool entry %q (want name=url)", kv)
		}
		endpoints[name] = strings.TrimSuffix(url, "/")
		names = append(names, name)
	}
	if len(names) == 0 {
		log.Fatal("fnpacker: -pool is required")
	}

	sched, err := fnpacker.NewScheduler(vclock.System, *interval, names...)
	if err != nil {
		log.Fatalf("fnpacker: %v", err)
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	invoker := fnpacker.InvokerFunc(func(ctx context.Context, endpoint string, payload []byte) ([]byte, error) {
		url, ok := endpoints[endpoint]
		if !ok {
			return nil, fmt.Errorf("fnpacker: unknown endpoint %q", endpoint)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/run", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("fnpacker: endpoint %s: %s: %s", endpoint, resp.Status, body)
		}
		return body, nil
	})
	router := fnpacker.NewRouter(sched, invoker)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke/{model}", func(w http.ResponseWriter, r *http.Request) {
		modelID := r.PathValue("model")
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out, err := router.Handle(r.Context(), modelID, body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(out)
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		for _, ep := range sched.Snapshot().Endpoints {
			fmt.Fprintf(w, "%s pending=%d exclusive=%q last=%q\n", ep.Name, ep.Pending, ep.Exclusive, ep.LastModel)
		}
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("fnpacker: listen: %v", err)
	}
	fmt.Printf("fnpacker: routing %d endpoints on %s\n", len(names), ln.Addr())
	log.Fatal(http.Serve(ln, mux))
}
