GO ?= go

.PHONY: all build vet test race bench gateway-snapshot clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The gateway is lock-heavy; the race detector gates merges.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=Gateway -benchtime=1x -run=NONE ./internal/bench/

# Regenerate the committed serving-path snapshot.
gateway-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp gateway -json BENCH_gateway.json

clean:
	$(GO) clean ./...
