GO ?= go

.PHONY: all build vet test race bench gateway-snapshot routing-snapshot routing-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The gateway is lock-heavy; the race detector gates merges.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=Gateway -benchtime=1x -run=NONE ./internal/bench/

# Regenerate the committed serving-path snapshots.
gateway-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp gateway -json BENCH_gateway.json

routing-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp routing -json BENCH_routing.json

# Tiny-scale routing run + 1-iteration contention benchmark: keeps the
# experiment binaries from rotting without paying for the full runs (CI).
routing-smoke:
	$(GO) run ./cmd/sesemi-bench -exp routing -smoke
	$(GO) test -run=NONE -bench=BenchmarkRoutingContention -benchtime=1x ./internal/bench/

clean:
	$(GO) clean ./...
