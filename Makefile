GO ?= go

.PHONY: all build vet test race bench gateway-snapshot routing-snapshot routing-smoke fairness-snapshot fairness-smoke keylocality-snapshot keylocality-smoke autoscale-snapshot autoscale-smoke hol-snapshot hol-smoke chaos-snapshot chaos-smoke frontier-snapshot frontier-smoke rollout-snapshot rollout-smoke obstax-snapshot obstax-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The gateway is lock-heavy; the race detector gates merges.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=Gateway -benchtime=1x -run=NONE ./internal/bench/

# Regenerate the committed serving-path snapshots.
gateway-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp gateway -json BENCH_gateway.json

routing-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp routing -json BENCH_routing.json

fairness-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp fairness -json BENCH_fairness.json

keylocality-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp keylocality -json BENCH_keylocality.json

autoscale-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp autoscale -json BENCH_autoscale.json

hol-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp hol -json BENCH_hol.json

chaos-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp chaos -json BENCH_chaos.json

frontier-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp frontier -json BENCH_frontier.json

rollout-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp rollout -json BENCH_rollout.json

obstax-snapshot:
	$(GO) run ./cmd/sesemi-bench -exp obstax -json BENCH_obstax.json

# Tiny-scale routing run + 1-iteration contention benchmark: keeps the
# experiment binaries from rotting without paying for the full runs (CI).
routing-smoke:
	$(GO) run ./cmd/sesemi-bench -exp routing -smoke
	$(GO) test -run=NONE -bench=BenchmarkRoutingContention -benchtime=1x ./internal/bench/

# Tiny-scale fairness run (all four modes), so the experiment behind
# BENCH_fairness.json cannot rot.
fairness-smoke:
	$(GO) run ./cmd/sesemi-bench -exp fairness -smoke

# Tiny-scale key-locality run (single-pair vs LRU vs LRU+grouping), so the
# experiment behind BENCH_keylocality.json cannot rot.
keylocality-smoke:
	$(GO) run ./cmd/sesemi-bench -exp keylocality -smoke

# Tiny-scale autoscale run (reactive vs predictive on all three traces), so
# the experiment behind BENCH_autoscale.json cannot rot.
autoscale-smoke:
	$(GO) run ./cmd/sesemi-bench -exp autoscale -smoke

# Tiny-scale head-of-line run (form-then-fire vs continuous batching on a
# heavy-tailed mix), so the experiment behind BENCH_hol.json cannot rot.
hol-smoke:
	$(GO) run ./cmd/sesemi-bench -exp hol -smoke

# Tiny-scale chaos run: seeded node crash + KS flap + sandbox-crash coin with
# the recovery plane armed. Exits non-zero if any request is lost — the CI
# gate on the fault-tolerance claim behind BENCH_chaos.json.
chaos-smoke:
	$(GO) run ./cmd/sesemi-bench -exp chaos -smoke

# Tiny 2-shard frontier sweep: exits non-zero unless sharded throughput is at
# least the single-shard baseline — the CI gate on the scaling claim behind
# BENCH_frontier.json.
frontier-smoke:
	$(GO) run ./cmd/sesemi-bench -exp frontier -smoke

# Tiny canary-rollout ramp against a deliberately slow revision: exits
# non-zero unless the controller auto-rolls it back — drained, measurement
# revoked — with zero lost requests. The CI gate on the rollback claim behind
# BENCH_rollout.json.
rollout-smoke:
	$(GO) run ./cmd/sesemi-bench -exp rollout -smoke

# Tiny observability-tax run: sampled tracing vs disabled on the same closed
# loop. Exits non-zero if the sampled throughput falls below the overhead bar,
# stitched coverage drifts, or the /metrics exposition fails to parse — the CI
# gate on the "tracing is cheap" claim behind BENCH_obstax.json.
obstax-smoke:
	$(GO) run ./cmd/sesemi-bench -exp obstax -smoke

clean:
	$(GO) clean ./...
