// Hospital reproduces the paper's motivating scenario (Figure 1): a
// hospital trains a disease-prediction model on electronic health records
// and serves it to authorized patients through SeSeMI, so that neither the
// cloud nor unauthorized users ever see the model or the patients' data in
// the clear.
//
// The example shows:
//   - two authorized patients with independent request keys,
//   - an unauthorized user being refused keys by KeyService,
//   - the cloud's view: only ciphertext in storage and on the wire,
//   - a second model (a DenseNet screening model) served by the same
//     runtime with per-model access control.
//
// Run with: go run ./examples/hospital
package main

import (
	"fmt"
	"log"
	"net"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/keyservice"
	"sesemi/internal/model"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/storage"
	"sesemi/internal/tensor"
	"sesemi/internal/vclock"
)

func main() {
	// Cloud setup.
	ca, err := attest.NewCA()
	check(err)
	clock := vclock.Real{Scale: 0}
	ksKey, err := ca.Provision("cloud-ks")
	check(err)
	svc := keyservice.NewService()
	ksEnc, err := enclave.NewPlatform(costmodel.SGX2, clock, ksKey).
		Launch(keyservice.ManifestFor(keyservice.DefaultTCS), svc)
	check(err)
	defer ksEnc.Destroy()
	srv, err := keyservice.NewServer(svc, ca.PublicKey())
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	dial := keyservice.TCPDialer(ln.Addr().String())

	nodeKey, err := ca.Provision("cloud-worker")
	check(err)
	node := enclave.NewPlatform(costmodel.SGX2, clock, nodeKey)
	store := storage.NewMemory(clock, nil)

	// The hospital deploys two models behind one SeMIRT configuration.
	cfg, err := semirt.DefaultConfig("tflm", "dsnet", 2)
	check(err)
	es := cfg.Manifest().Measure()

	hospital := keyservice.NewClient(dial, ca.PublicKey(), ksEnc.Measurement(), secure.KeyFromSeed("st-olaf-hospital"))
	defer hospital.Close()
	check(hospital.Register())

	deploy := func(modelID string) secure.Key {
		m, err := model.NewFunctional(modelID)
		check(err)
		data, err := model.Marshal(m)
		check(err)
		km := secure.KeyFromSeed("km:" + modelID)
		ct, err := semirt.EncryptModel(km, modelID, data)
		check(err)
		check(store.Put(semirt.ModelBlobName(modelID), ct))
		check(hospital.AddModelKey(modelID, km))
		fmt.Printf("hospital uploaded %-5s: %6d encrypted bytes (cloud sees only ciphertext)\n", modelID, len(ct))
		return km
	}
	deploy("dsnet") // disease-prediction model
	deploy("mbnet") // screening model

	// Patients: alice may use both models, bob only the screening model.
	type patient struct {
		name   string
		client *keyservice.Client
		reqKey secure.Key
	}
	newPatient := func(name string) *patient {
		p := &patient{
			name:   name,
			client: keyservice.NewClient(dial, ca.PublicKey(), ksEnc.Measurement(), secure.KeyFromSeed("patient-"+name)),
			reqKey: secure.KeyFromSeed("kr-" + name),
		}
		check(p.client.Register())
		return p
	}
	alice := newPatient("alice")
	bob := newPatient("bob")
	defer alice.client.Close()
	defer bob.client.Close()

	grant := func(p *patient, modelID string) {
		check(hospital.GrantAccess(modelID, es, p.client.ID()))
		check(p.client.AddReqKey(modelID, es, p.reqKey))
		fmt.Printf("hospital granted %-5s access to %s\n", p.name, modelID)
	}
	grant(alice, "dsnet")
	grant(alice, "mbnet")
	grant(bob, "mbnet")

	// A serverless instance appears on demand.
	rt, err := semirt.New(cfg, semirt.Deps{
		Platform: node, Store: store, KSDialer: dial,
		CAPublicKey: ca.PublicKey(), ExpectEK: ksEnc.Measurement(),
	})
	check(err)
	defer rt.Stop()

	infer := func(p *patient, modelID string, ehr []float32) {
		m, err := model.NewFunctional(modelID)
		check(err)
		in := tensor.New(m.InputShape...)
		copy(in.Data(), ehr)
		payload, err := semirt.EncryptRequest(p.reqKey, modelID, inference.EncodeTensor(in))
		check(err)
		resp, err := rt.Handle(semirt.Request{UserID: p.client.ID(), ModelID: modelID, Payload: payload})
		if err != nil {
			fmt.Printf("%s → %-5s: DENIED (%v)\n", p.name, modelID, err)
			return
		}
		plain, err := semirt.DecryptResponse(p.reqKey, modelID, resp.Payload)
		check(err)
		out, err := inference.DecodeTensor(plain)
		check(err)
		fmt.Printf("%s → %-5s: %-4s path, diagnosis class %d (p=%.2f)\n",
			p.name, modelID, resp.Kind, tensor.ArgMax(out), out.Data()[tensor.ArgMax(out)])
	}

	// Alice's EHR-derived features, then Bob's.
	ehrAlice := make([]float32, 16*16*3)
	for i := range ehrAlice {
		ehrAlice[i] = float32((i*7)%13) * 0.07
	}
	ehrBob := make([]float32, 16*16*3)
	for i := range ehrBob {
		ehrBob[i] = float32((i*3)%11) * 0.09
	}

	infer(alice, "dsnet", ehrAlice) // cold: enclave + keys + model
	infer(alice, "dsnet", ehrAlice) // hot: everything cached
	infer(bob, "mbnet", ehrBob)     // warm: model switch + bob's keys
	infer(bob, "dsnet", ehrBob)     // denied: no grant for bob on dsnet

	// Mallory never registered a request key; the enclave gets no keys.
	mallory := newPatient("mallory")
	defer mallory.client.Close()
	infer(mallory, "dsnet", ehrBob) // denied

	st := rt.Stats()
	fmt.Printf("\nruntime served %d cold / %d warm / %d hot invocations\n", st.Cold, st.Warm, st.Hot)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
