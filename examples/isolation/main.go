// Isolation demonstrates SeMIRT's strong-isolation configuration (§V,
// Table II): sequential request processing, key cache disabled, and the
// runtime cleared after every request, returning the enclave to a
// model-only state between invocations.
//
// Because these settings are part of the enclave code, they change the
// enclave identity ES — an owner who granted access to the relaxed build
// has NOT authorized the isolated build, and vice versa. The example
// verifies both that property and the latency cost, using the calibrated
// stage model on a virtual clock so the Table II numbers are visible
// without waiting in real time.
//
// Run with: go run ./examples/isolation
package main

import (
	"fmt"
	"log"
	"net"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/keyservice"
	"sesemi/internal/model"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/storage"
	"sesemi/internal/tensor"
	"sesemi/internal/vclock"
)

func main() {
	ca, err := attest.NewCA()
	check(err)
	clock := vclock.NewManual() // virtual time: modeled costs, instant runs
	ksKey, err := ca.Provision("ks")
	check(err)
	svc := keyservice.NewService()
	ksEnc, err := enclave.NewPlatform(costmodel.SGX2, vclock.Real{Scale: 0}, ksKey).
		Launch(keyservice.ManifestFor(keyservice.DefaultTCS), svc)
	check(err)
	defer ksEnc.Destroy()
	srv, err := keyservice.NewServer(svc, ca.PublicKey())
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	dial := keyservice.TCPDialer(ln.Addr().String())

	nodeKey, err := ca.Provision("node")
	check(err)
	node := enclave.NewPlatform(costmodel.SGX2, clock, nodeKey)
	store := storage.NewMemory(vclock.Real{Scale: 0}, nil)

	// Two SeMIRT builds: relaxed and strongly isolated. Note the distinct
	// identities.
	stages, err := costmodel.Stages(costmodel.SGX2, "tvm", "mbnet")
	check(err)
	relaxed, err := semirt.DefaultConfig("tvm", "mbnet", 1)
	check(err)
	relaxed.ModeledStages = &stages
	isolated := relaxed
	isolated.Sequential = true
	isolated.DisableKeyCache = true
	fmt.Printf("relaxed  ES = %s…\n", relaxed.Manifest().Measure().Hex()[:16])
	fmt.Printf("isolated ES = %s…\n", isolated.Manifest().Measure().Hex()[:16])

	// Owner/user authorize ONLY the isolated build.
	owner := keyservice.NewClient(dial, ca.PublicKey(), ksEnc.Measurement(), secure.KeyFromSeed("owner"))
	user := keyservice.NewClient(dial, ca.PublicKey(), ksEnc.Measurement(), secure.KeyFromSeed("user"))
	defer owner.Close()
	defer user.Close()
	check(owner.Register())
	check(user.Register())
	m, err := model.NewFunctional("mbnet")
	check(err)
	data, err := model.Marshal(m)
	check(err)
	km := secure.KeyFromSeed("km")
	kr := secure.KeyFromSeed("kr")
	ct, err := semirt.EncryptModel(km, "mbnet", data)
	check(err)
	check(store.Put(semirt.ModelBlobName("mbnet"), ct))
	check(owner.AddModelKey("mbnet", km))
	isoES := isolated.Manifest().Measure()
	check(owner.GrantAccess("mbnet", isoES, user.ID()))
	check(user.AddReqKey("mbnet", isoES, kr))

	deps := semirt.Deps{
		Platform: node, Store: store, KSDialer: dial,
		CAPublicKey: ca.PublicKey(), ExpectEK: ksEnc.Measurement(),
	}
	in := tensor.New(m.InputShape...)
	payload, err := semirt.EncryptRequest(kr, "mbnet", inference.EncodeTensor(in))
	check(err)
	req := semirt.Request{UserID: user.ID(), ModelID: "mbnet", Payload: payload}

	// The relaxed build is refused keys: its measurement is not granted.
	rtRelaxed, err := semirt.New(relaxed, deps)
	check(err)
	if _, err := rtRelaxed.Handle(req); err != nil {
		fmt.Printf("relaxed build denied as expected: %v\n", err)
	} else {
		log.Fatal("relaxed build unexpectedly obtained keys")
	}
	rtRelaxed.Stop()

	// The isolated build serves, paying the Table II overhead on every
	// "hot" request (virtual time shows the modeled cost).
	rtIso, err := semirt.New(isolated, deps)
	check(err)
	defer rtIso.Stop()
	if _, err := rtIso.Handle(req); err != nil { // cold
		log.Fatal(err)
	}
	before := clock.TotalSlept()
	resp, err := rtIso.Handle(req)
	check(err)
	isoHot := clock.TotalSlept() - before
	fmt.Printf("isolated steady-state request: %s path, modeled %.0f ms (Table II 'with': 268 ms)\n",
		resp.Kind, float64(isoHot.Milliseconds()))
	fmt.Printf("relaxed hot path would be %.0f ms (Table II 'without': 66 ms) → %.1fx overhead\n",
		float64(stages.HotPath().Milliseconds()),
		float64(isoHot)/float64(stages.HotPath()))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
