// Multitenant demonstrates the serving API v2: the tenant-aware request
// envelope (gateway.Request), the async Submit/Ticket surface, weighted
// fair queueing across tenants, per-tenant admission quotas, and deadline
// shedding.
//
// A "free"-tier tenant floods the gateway while a "gold" tenant (weight 4)
// sends sparse requests: deficit round robin keeps gold's latency near its
// undisturbed baseline instead of queueing it behind the flood, and the
// free tenant's own quota — not the shared queue — is what pushes back.
//
// Run with: go run ./examples/multitenant
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"sesemi/internal/bench"
	"sesemi/internal/gateway"
)

func main() {
	// A complete in-process deployment (KeyService, SGX2 cluster, one SeMIRT
	// action) fronted by the batching gateway.
	w, err := bench.NewLiveWorld(bench.LiveWorldConfig{
		InvokeOverhead: 2 * time.Millisecond,
		Gateway: gateway.Config{
			MaxBatch:      8,
			MaxWait:       2 * time.Millisecond,
			MaxQueue:      1024,
			TenantQuota:   32, // a tenant's backlog beyond this is ITS problem
			TenantWeights: map[string]int{"gold": 4},
		},
	})
	check(err)
	defer w.Close()
	ctx := context.Background()

	// --- Submit/Ticket: the async surface ---------------------------------
	req, err := w.Request(1)
	check(err)
	tk, err := w.Gateway.Submit(ctx, gateway.Request{
		Action:   w.Action,
		Tenant:   "gold",
		Priority: 1, // ahead of gold's own priority-0 traffic, never of other tenants
		Body:     req,
	})
	check(err)
	// ... the caller is free to do other work here ...
	resp, err := tk.Wait(ctx)
	check(err)
	fmt.Printf("async submit: served %s (%d bytes)\n", resp.Kind, len(resp.Payload))

	// --- Deadlines: a request that cannot make it is shed, not served -----
	req, err = w.Request(2)
	check(err)
	_, err = w.Gateway.Submit(ctx, gateway.Request{
		Action:   w.Action,
		Tenant:   "gold",
		Deadline: time.Now().Add(-time.Millisecond), // already stale
		Body:     req,
	})
	fmt.Printf("stale deadline: %v (no batch slot burned)\n", err)

	// --- Fairness under a flood ------------------------------------------
	// The free tenant saturates the queue with closed-loop clients; gold
	// sends one request at a time. Weighted DRR gives gold its share of
	// every batch, so its latency stays flat.
	stop := make(chan struct{})
	var flooders sync.WaitGroup
	for c := 0; c < 64; c++ {
		flooders.Add(1)
		go func(c int) {
			defer flooders.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fr, err := w.Request(1000 + c*1000 + i)
				if err != nil {
					return
				}
				ftk, err := w.Gateway.Submit(ctx, gateway.Request{
					Action: w.Action, Tenant: "free", Body: fr,
				})
				if errors.Is(err, gateway.ErrTenantOverloaded) {
					time.Sleep(time.Millisecond) // the quota says back off
					continue
				}
				if err != nil {
					return
				}
				ftk.Wait(ctx)
			}
		}(c)
	}
	time.Sleep(50 * time.Millisecond) // let the flood establish its backlog

	var worst time.Duration
	for i := 0; i < 16; i++ {
		gr, err := w.Request(3000 + i)
		check(err)
		t0 := time.Now()
		gtk, err := w.Gateway.Submit(ctx, gateway.Request{Action: w.Action, Tenant: "gold", Body: gr})
		check(err)
		_, err = gtk.Wait(ctx)
		check(err)
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	close(stop)
	flooders.Wait()
	fmt.Printf("gold worst latency under the free-tier flood: %v\n", worst.Round(100*time.Microsecond))

	// --- Ticket.Cancel ----------------------------------------------------
	req, err = w.Request(4)
	check(err)
	tk, err = w.Gateway.Submit(ctx, gateway.Request{Action: w.Action, Tenant: "gold", Body: req})
	check(err)
	if tk.Cancel() {
		fmt.Println("cancel: withdrawn while still queued")
	} else {
		fmt.Println("cancel: already riding a batch; response is accounted")
	}

	// --- Per-tenant accounting -------------------------------------------
	for _, tenant := range []string{"gold", "free"} {
		tc := w.Gateway.TenantSnapshot()[tenant]
		fmt.Printf("%-5s accepted %5d  served %5d  quota-rejected %5d  shed %d\n",
			tenant, tc.Accepted, tc.Served, tc.Rejected, tc.Shed)
	}
	st := w.Gateway.Stats()
	fmt.Printf("gateway: %d batches, %d tenant-quota rejections, %d deadline-shed\n",
		st.Batches, st.TenantRejected, st.Shed)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
