// Multimodel demonstrates FnPacker (§IV-C) routing five models over a
// shared pool of serverless endpoints on the OpenWhisk-like platform
// substrate.
//
// Two models (m0, m1) receive steady traffic and get exclusive endpoints;
// three models (m2-m4) are queried sporadically and are packed onto shared
// endpoints, avoiding three separate cold starts. Compare the cold-start
// counters against the one-endpoint-per-model deployment printed at the end.
//
// Run with: go run ./examples/multimodel
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/fnpacker"
	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/keyservice"
	"sesemi/internal/model"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/serverless"
	"sesemi/internal/storage"
	"sesemi/internal/tensor"
	"sesemi/internal/vclock"
)

const nModels = 5

func main() {
	// Shared cloud: CA, KeyService, storage.
	ca, err := attest.NewCA()
	check(err)
	clock := vclock.Real{Scale: 0}
	ksKey, err := ca.Provision("ks")
	check(err)
	svc := keyservice.NewService()
	ksEnc, err := enclave.NewPlatform(costmodel.SGX2, clock, ksKey).
		Launch(keyservice.ManifestFor(32), svc)
	check(err)
	defer ksEnc.Destroy()
	srv, err := keyservice.NewServer(svc, ca.PublicKey())
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	dial := keyservice.TCPDialer(ln.Addr().String())
	store := storage.NewMemory(clock, nil)

	// One SeMIRT configuration serves all pool models; its identity ES is
	// what the owner authorizes.
	cfg, err := semirt.DefaultConfig("tvm", "mbnet", 2)
	check(err)
	es := cfg.Manifest().Measure()

	// Owner deploys five MobileNet-style models m0..m4 and one user.
	owner := keyservice.NewClient(dial, ca.PublicKey(), ksEnc.Measurement(), secure.KeyFromSeed("owner"))
	user := keyservice.NewClient(dial, ca.PublicKey(), ksEnc.Measurement(), secure.KeyFromSeed("user"))
	defer owner.Close()
	defer user.Close()
	check(owner.Register())
	check(user.Register())
	reqKeys := map[string]secure.Key{}
	var inputShape []int
	for i := 0; i < nModels; i++ {
		modelID := fmt.Sprintf("m%d", i)
		m, err := model.NewFunctional("mbnet")
		check(err)
		m.Name = modelID
		inputShape = m.InputShape
		data, err := model.Marshal(m)
		check(err)
		km := secure.KeyFromSeed("km:" + modelID)
		ct, err := semirt.EncryptModel(km, modelID, data)
		check(err)
		check(store.Put(semirt.ModelBlobName(modelID), ct))
		check(owner.AddModelKey(modelID, km))
		check(owner.GrantAccess(modelID, es, user.ID()))
		kr := secure.KeyFromSeed("kr:" + modelID)
		reqKeys[modelID] = kr
		check(user.AddReqKey(modelID, es, kr))
	}
	fmt.Printf("deployed %d models behind ES=%s…\n", nModels, es.Hex()[:16])

	// Serverless cluster: 2 nodes, and an Fnpool of 3 generic endpoints.
	nodeA, err := ca.Provision("node-a")
	check(err)
	nodeB, err := ca.Provision("node-b")
	check(err)
	nodes := []*serverless.Node{
		{Name: "node-a", MemoryBytes: 4 << 30, Extra: enclave.NewPlatform(costmodel.SGX2, clock, nodeA)},
		{Name: "node-b", MemoryBytes: 4 << 30, Extra: enclave.NewPlatform(costmodel.SGX2, clock, nodeB)},
	}
	clusterCfg := serverless.DefaultConfig()
	clusterCfg.Clock = clock
	clusterCfg.SandboxStart = 0
	cluster := serverless.NewCluster(clusterCfg, nodes...)
	defer cluster.Close()

	deps := func(n *serverless.Node) semirt.Deps {
		return semirt.Deps{
			Platform:    n.Extra.(*enclave.Platform),
			Store:       store,
			KSDialer:    dial,
			CAPublicKey: ca.PublicKey(),
			ExpectEK:    ksEnc.Measurement(),
		}
	}
	endpoints := []string{"pool-0", "pool-1", "pool-2"}
	for _, ep := range endpoints {
		check(cluster.Deploy(&serverless.Action{
			Name:         ep,
			MemoryBudget: 256 << 20,
			Concurrency:  cfg.Concurrency,
			New: func(n *serverless.Node) (serverless.Instance, error) {
				rt, err := semirt.New(cfg, deps(n))
				if err != nil {
					return nil, err
				}
				return &semirtInstance{rt: rt}, nil
			},
		}))
	}

	// FnPacker routes models onto the pool.
	sched, err := fnpacker.NewScheduler(clock, fnpacker.DefaultExclusiveInterval, endpoints...)
	check(err)
	router := fnpacker.NewRouter(sched, clusterInvoker{cluster})

	invoke := func(modelID string) string {
		in := tensor.New(inputShape...)
		payload, err := semirt.EncryptRequest(reqKeys[modelID], modelID, inference.EncodeTensor(in))
		check(err)
		req := semirtPayload{UserID: user.ID(), ModelID: modelID, Payload: payload}
		out, err := router.Handle(context.Background(), modelID, req.marshal())
		check(err)
		resp := unmarshalResp(out)
		_, err = semirt.DecryptResponse(reqKeys[modelID], modelID, resp.Payload)
		check(err)
		return resp.Kind
	}

	// Steady streams on m0 and m1 claim exclusive endpoints...
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, modelID := range []string{"m0", "m1"} {
			wg.Add(1)
			go func(m string) {
				defer wg.Done()
				invoke(m)
			}(modelID)
		}
	}
	wg.Wait()
	// ...and the sporadic models pack onto what is left.
	for _, modelID := range []string{"m2", "m3", "m4", "m2", "m3", "m4"} {
		kind := invoke(modelID)
		fmt.Printf("sporadic %s served via %s path\n", modelID, kind)
	}

	for _, ep := range sched.Snapshot().Endpoints {
		fmt.Printf("endpoint %s: exclusive=%q lastModel=%q\n", ep.Name, ep.Exclusive, ep.LastModel)
	}
	st := cluster.Stats()
	fmt.Printf("cluster: %d invocations, %d sandbox cold starts (one-to-one would need >= %d)\n",
		st.Invocations, st.ColdStarts, nModels)
}

// semirtInstance adapts a SeMIRT runtime to the serverless Instance
// interface using a compact JSON payload.
type semirtInstance struct{ rt *semirt.Runtime }

func (s *semirtInstance) Invoke(payload []byte) ([]byte, error) {
	req := unmarshalReq(payload)
	resp, err := s.rt.Handle(semirt.Request{UserID: req.UserID, ModelID: req.ModelID, Payload: req.Payload})
	if err != nil {
		return nil, err
	}
	return (&semirtResp{Payload: resp.Payload, Kind: resp.Kind.String()}).marshal(), nil
}

func (s *semirtInstance) Stop() { s.rt.Stop() }

type clusterInvoker struct{ c *serverless.Cluster }

func (ci clusterInvoker) Invoke(ctx context.Context, endpoint string, payload []byte) ([]byte, error) {
	return ci.c.Invoke(ctx, endpoint, payload)
}

// Minimal framed payloads (length-prefixed fields) keep the example free of
// reflection-heavy encoding in the hot path.
type semirtPayload struct {
	UserID  secure.ID
	ModelID string
	Payload []byte
}

func (p semirtPayload) marshal() []byte {
	out := append(u32(len(p.UserID)), []byte(p.UserID)...)
	out = append(out, u32(len(p.ModelID))...)
	out = append(out, []byte(p.ModelID)...)
	return append(out, p.Payload...)
}

func unmarshalReq(b []byte) semirtPayload {
	ul := gi(b)
	uid := string(b[4 : 4+ul])
	rest := b[4+ul:]
	ml := gi(rest)
	return semirtPayload{
		UserID:  secure.ID(uid),
		ModelID: string(rest[4 : 4+ml]),
		Payload: rest[4+ml:],
	}
}

type semirtResp struct {
	Payload []byte
	Kind    string
}

func (r *semirtResp) marshal() []byte {
	out := append(u32(len(r.Kind)), []byte(r.Kind)...)
	return append(out, r.Payload...)
}

func unmarshalResp(b []byte) semirtResp {
	kl := gi(b)
	return semirtResp{Kind: string(b[4 : 4+kl]), Payload: b[4+kl:]}
}

func u32(n int) []byte {
	return []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

func gi(b []byte) int {
	return int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
