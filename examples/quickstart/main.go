// Quickstart runs the complete SeSeMI workflow (§III) in one process:
//
//  1. Key setup: owner and user attest KeyService and register keys.
//  2. Service deployment: the owner encrypts a model, uploads it, and
//     grants the user access through a pinned SeMIRT enclave identity.
//  3. Request serving: the user sends an encrypted request; SeMIRT
//     attests to KeyService, obtains the keys, decrypts, runs inference
//     and returns an encrypted result only the user can read.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/keyservice"
	"sesemi/internal/model"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/storage"
	"sesemi/internal/tensor"
	"sesemi/internal/vclock"
)

func main() {
	// --- Cloud infrastructure: attestation root, one SGX2 node, storage ---
	ca, err := attest.NewCA()
	check(err)
	clock := vclock.Real{Scale: 0} // modeled TEE latencies off for the demo

	ksKey, err := ca.Provision("ks-node")
	check(err)
	ksPlatform := enclave.NewPlatform(costmodel.SGX2, clock, ksKey)
	svc := keyservice.NewService()
	ksEnclave, err := ksPlatform.Launch(keyservice.ManifestFor(keyservice.DefaultTCS), svc)
	check(err)
	defer ksEnclave.Destroy()
	srv, err := keyservice.NewServer(svc, ca.PublicKey())
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	fmt.Printf("KeyService up, E_K = %s…\n", ksEnclave.Measurement().Hex()[:16])

	workerKey, err := ca.Provision("worker-node")
	check(err)
	worker := enclave.NewPlatform(costmodel.SGX2, clock, workerKey)
	store := storage.NewMemory(clock, nil)

	// --- The SeMIRT build both sides agree on (its config defines ES) ---
	cfg, err := semirt.DefaultConfig("tvm", "mbnet", 2)
	check(err)
	es := cfg.Manifest().Measure()
	fmt.Printf("SeMIRT identity ES = %s… (derived offline by owner and user)\n", es.Hex()[:16])

	// --- Model owner: encrypt + upload model, deposit K_M, grant access ---
	dial := keyservice.TCPDialer(ln.Addr().String())
	owner := keyservice.NewClient(dial, ca.PublicKey(), ksEnclave.Measurement(), secure.KeyFromSeed("owner"))
	user := keyservice.NewClient(dial, ca.PublicKey(), ksEnclave.Measurement(), secure.KeyFromSeed("user"))
	defer owner.Close()
	defer user.Close()
	check(owner.Register())
	check(user.Register())

	m, err := model.NewFunctional("mbnet")
	check(err)
	plaintext, err := model.Marshal(m)
	check(err)
	km := secure.KeyFromSeed("model-key")
	ciphertext, err := semirt.EncryptModel(km, "mbnet", plaintext)
	check(err)
	check(store.Put(semirt.ModelBlobName("mbnet"), ciphertext))
	check(owner.AddModelKey("mbnet", km))
	check(owner.GrantAccess("mbnet", es, user.ID()))
	fmt.Printf("owner uploaded %d encrypted bytes and granted %s…\n", len(ciphertext), user.ID()[:16])

	// --- Model user: deposit request key K_R ---
	kr := secure.KeyFromSeed("request-key")
	check(user.AddReqKey("mbnet", es, kr))

	// --- Serverless instance: SeMIRT runtime in a sandbox ---
	rt, err := semirt.New(cfg, semirt.Deps{
		Platform:    worker,
		Store:       store,
		KSDialer:    dial,
		CAPublicKey: ca.PublicKey(),
		ExpectEK:    ksEnclave.Measurement(),
	})
	check(err)
	defer rt.Stop()

	// --- Request serving: encrypted in, encrypted out ---
	in := tensor.New(m.InputShape...)
	for i := range in.Data() {
		in.Data()[i] = float32(i%17) * 0.05
	}
	payload, err := semirt.EncryptRequest(kr, "mbnet", inference.EncodeTensor(in))
	check(err)
	for i := 0; i < 3; i++ {
		resp, err := rt.Handle(semirt.Request{UserID: user.ID(), ModelID: "mbnet", Payload: payload})
		check(err)
		plain, err := semirt.DecryptResponse(kr, "mbnet", resp.Payload)
		check(err)
		out, err := inference.DecodeTensor(plain)
		check(err)
		fmt.Printf("request %d: %-4s path → predicted class %d (p=%.3f)\n",
			i+1, resp.Kind, tensor.ArgMax(out), out.Data()[tensor.ArgMax(out)])
	}
	st := rt.Stats()
	fmt.Printf("invocations: %d cold, %d warm, %d hot\n", st.Cold, st.Warm, st.Hot)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
