// Package main_test exposes every experiment of the paper's evaluation as a
// Go benchmark, per the DESIGN.md experiment index. Each benchmark executes
// the corresponding harness in internal/bench; run a single artifact with
// e.g.
//
//	go test -bench=Figure9 -benchtime=1x .
//
// The harnesses print the paper-style rows when run via cmd/sesemi-bench;
// here they are executed for timing and as a regression gate.
package main_test

import (
	"io"
	"testing"

	"sesemi/internal/bench"
)

func runExp(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1ModelSizes regenerates Table I (model & buffer sizes).
func BenchmarkTable1ModelSizes(b *testing.B) { runExp(b, "table1") }

// BenchmarkFigure8StageRatio regenerates Figure 8 (cold-path stage shares).
func BenchmarkFigure8StageRatio(b *testing.B) { runExp(b, "fig8") }

// BenchmarkFigure9InvocationPaths regenerates Figure 9 (hot/warm/cold/
// untrusted execution times).
func BenchmarkFigure9InvocationPaths(b *testing.B) { runExp(b, "fig9") }

// BenchmarkFigure10MemorySaving regenerates Figure 10 (enclave memory
// saving under concurrent execution).
func BenchmarkFigure10MemorySaving(b *testing.B) { runExp(b, "fig10") }

// BenchmarkFigure11Concurrency regenerates Figure 11 (latency vs concurrent
// requests on SGX2 and SGX1).
func BenchmarkFigure11Concurrency(b *testing.B) { runExp(b, "fig11") }

// BenchmarkFigure12Throughput regenerates Figure 12 (p95 latency vs request
// rate for SeSeMI / Iso-reuse / Native).
func BenchmarkFigure12Throughput(b *testing.B) { runExp(b, "fig12") }

// BenchmarkTable2Isolation regenerates Table II (strong-isolation overhead).
func BenchmarkTable2Isolation(b *testing.B) { runExp(b, "table2") }

// BenchmarkFigure13MMPP regenerates Figure 13 (8-node MMPP latency).
func BenchmarkFigure13MMPP(b *testing.B) { runExp(b, "fig13") }

// BenchmarkFigure14MemoryCost regenerates Figure 14 (sandbox memory and
// GB-second cost).
func BenchmarkFigure14MemoryCost(b *testing.B) { runExp(b, "fig14") }

// BenchmarkTable3FnPackerPoisson regenerates Table III (Poisson traffic
// under the three deployment strategies).
func BenchmarkTable3FnPackerPoisson(b *testing.B) { runExp(b, "table3") }

// BenchmarkTable4Interactive regenerates Table IV (interactive session
// latencies).
func BenchmarkTable4Interactive(b *testing.B) { runExp(b, "table4") }

// BenchmarkFigure15EnclaveInit regenerates Figure 15 (enclave creation
// overhead vs concurrency).
func BenchmarkFigure15EnclaveInit(b *testing.B) { runExp(b, "fig15") }

// BenchmarkFigure16Attestation regenerates Figure 16 (remote attestation
// overhead, ECDSA vs EPID).
func BenchmarkFigure16Attestation(b *testing.B) { runExp(b, "fig16") }

// BenchmarkFigure17BreakdownSGX regenerates Figure 17 (SGX2 stage
// breakdown).
func BenchmarkFigure17BreakdownSGX(b *testing.B) { runExp(b, "fig17") }

// BenchmarkFigure18BreakdownNative regenerates Figure 18 (no-TEE stage
// breakdown).
func BenchmarkFigure18BreakdownNative(b *testing.B) { runExp(b, "fig18") }

// BenchmarkAblationKeyCache measures the key-cache design choice
// (DESIGN.md §6).
func BenchmarkAblationKeyCache(b *testing.B) { runExp(b, "ablation-keycache") }

// BenchmarkAblationExclusiveInterval sweeps FnPacker's exclusivity interval
// (DESIGN.md §6).
func BenchmarkAblationExclusiveInterval(b *testing.B) { runExp(b, "ablation-interval") }
