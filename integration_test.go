// Package main_test's integration tests exercise the complete live stack —
// KeyService, SeMIRT runtimes inside sandboxes on the serverless platform,
// and FnPacker routing — over real TCP and real goroutines, asserting the
// end-to-end security and caching behaviour the paper claims.
package main_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/fnpacker"
	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/keyservice"
	"sesemi/internal/model"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/serverless"
	"sesemi/internal/storage"
	"sesemi/internal/tensor"
	"sesemi/internal/vclock"
)

// world is a complete live deployment.
type world struct {
	t       *testing.T
	ca      *attest.CA
	ksMeas  attest.Measurement
	ksAddr  string
	store   *storage.Memory
	cluster *serverless.Cluster
	owner   *keyservice.Client
	user    *keyservice.Client
	reqKeys map[string]secure.Key
	cfg     semirt.Config
	shape   []int
}

func newIntegrationWorld(t *testing.T, nodes int) *world {
	t.Helper()
	w := &world{t: t, reqKeys: map[string]secure.Key{}}
	var err error
	w.ca, err = attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.Real{Scale: 0}

	ksKey, err := w.ca.Provision("ks")
	if err != nil {
		t.Fatal(err)
	}
	svc := keyservice.NewService()
	ksEnc, err := enclave.NewPlatform(costmodel.SGX2, clock, ksKey).
		Launch(keyservice.ManifestFor(64), svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ksEnc.Destroy)
	w.ksMeas = ksEnc.Measurement()
	srv, err := keyservice.NewServer(svc, w.ca.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	w.ksAddr = ln.Addr().String()

	w.store = storage.NewMemory(clock, nil)
	var ns []*serverless.Node
	for i := 0; i < nodes; i++ {
		key, err := w.ca.Provision(fmt.Sprintf("node-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, &serverless.Node{
			Name:        fmt.Sprintf("node-%d", i),
			MemoryBytes: 8 << 30,
			Extra:       enclave.NewPlatform(costmodel.SGX2, clock, key),
		})
	}
	ccfg := serverless.DefaultConfig()
	ccfg.Clock = clock
	ccfg.SandboxStart = 0
	w.cluster = serverless.NewCluster(ccfg, ns...)
	t.Cleanup(w.cluster.Close)

	dial := keyservice.TCPDialer(w.ksAddr)
	w.owner = keyservice.NewClient(dial, w.ca.PublicKey(), w.ksMeas, secure.KeyFromSeed("it-owner"))
	w.user = keyservice.NewClient(dial, w.ca.PublicKey(), w.ksMeas, secure.KeyFromSeed("it-user"))
	t.Cleanup(func() { w.owner.Close(); w.user.Close() })
	if err := w.owner.Register(); err != nil {
		t.Fatal(err)
	}
	if err := w.user.Register(); err != nil {
		t.Fatal(err)
	}

	w.cfg, err = semirt.DefaultConfig("tvm", "mbnet", 4)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *world) deployModel(modelID string) {
	w.t.Helper()
	m, err := model.NewFunctional("mbnet")
	if err != nil {
		w.t.Fatal(err)
	}
	m.Name = modelID
	w.shape = m.InputShape
	data, err := model.Marshal(m)
	if err != nil {
		w.t.Fatal(err)
	}
	km := secure.KeyFromSeed("it-km-" + modelID)
	ct, err := semirt.EncryptModel(km, modelID, data)
	if err != nil {
		w.t.Fatal(err)
	}
	if err := w.store.Put(semirt.ModelBlobName(modelID), ct); err != nil {
		w.t.Fatal(err)
	}
	es := w.cfg.Manifest().Measure()
	if err := w.owner.AddModelKey(modelID, km); err != nil {
		w.t.Fatal(err)
	}
	if err := w.owner.GrantAccess(modelID, es, w.user.ID()); err != nil {
		w.t.Fatal(err)
	}
	kr := secure.KeyFromSeed("it-kr-" + modelID)
	w.reqKeys[modelID] = kr
	if err := w.user.AddReqKey(modelID, es, kr); err != nil {
		w.t.Fatal(err)
	}
}

// deployAction registers a serverless action running SeMIRT instances.
func (w *world) deployAction(name string) {
	w.t.Helper()
	err := w.cluster.Deploy(&serverless.Action{
		Name:         name,
		MemoryBudget: 256 << 20,
		Concurrency:  w.cfg.Concurrency,
		New: func(n *serverless.Node) (serverless.Instance, error) {
			rt, err := semirt.New(w.cfg, semirt.Deps{
				Platform:    n.Extra.(*enclave.Platform),
				Store:       w.store,
				KSDialer:    keyservice.TCPDialer(w.ksAddr),
				CAPublicKey: w.ca.PublicKey(),
				ExpectEK:    w.ksMeas,
			})
			if err != nil {
				return nil, err
			}
			return jsonInstance{rt}, nil
		},
	})
	if err != nil {
		w.t.Fatal(err)
	}
}

// jsonInstance adapts semirt.Runtime to serverless.Instance with JSON
// payloads.
type jsonInstance struct{ rt *semirt.Runtime }

func (j jsonInstance) Invoke(payload []byte) ([]byte, error) {
	var req semirt.Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	resp, err := j.rt.Handle(req)
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

func (j jsonInstance) Stop() { j.rt.Stop() }

// invoke sends one encrypted request through the cluster (optionally via a
// FnPacker router) and decrypts the response.
func (w *world) invoke(router *fnpacker.Router, action, modelID string, seed int) (semirt.Response, *tensor.Tensor) {
	w.t.Helper()
	in := tensor.New(w.shape...)
	for i := range in.Data() {
		in.Data()[i] = float32((i+seed)%13) * 0.06
	}
	payload, err := semirt.EncryptRequest(w.reqKeys[modelID], modelID, inference.EncodeTensor(in))
	if err != nil {
		w.t.Fatal(err)
	}
	body, err := json.Marshal(semirt.Request{UserID: w.user.ID(), ModelID: modelID, Payload: payload})
	if err != nil {
		w.t.Fatal(err)
	}
	var raw []byte
	if router != nil {
		raw, err = router.Handle(context.Background(), modelID, body)
	} else {
		raw, err = w.cluster.Invoke(context.Background(), action, body)
	}
	if err != nil {
		w.t.Fatal(err)
	}
	var resp semirt.Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		w.t.Fatal(err)
	}
	plain, err := semirt.DecryptResponse(w.reqKeys[modelID], modelID, resp.Payload)
	if err != nil {
		w.t.Fatal(err)
	}
	out, err := inference.DecodeTensor(plain)
	if err != nil {
		w.t.Fatal(err)
	}
	return resp, out
}

func TestIntegrationSingleActionLifecycle(t *testing.T) {
	w := newIntegrationWorld(t, 1)
	w.deployModel("mbnet")
	w.deployAction("fn-mbnet")

	r1, out1 := w.invoke(nil, "fn-mbnet", "mbnet", 1)
	if r1.Kind != semirt.Cold {
		t.Fatalf("first invocation %v, want cold", r1.Kind)
	}
	r2, out2 := w.invoke(nil, "fn-mbnet", "mbnet", 1)
	if r2.Kind != semirt.Hot {
		t.Fatalf("second invocation %v, want hot", r2.Kind)
	}
	for i := range out1.Data() {
		if out1.Data()[i] != out2.Data()[i] {
			t.Fatal("same input gave different outputs")
		}
	}
	st := w.cluster.Stats()
	if st.ColdStarts != 1 || st.Invocations != 2 {
		t.Fatalf("cluster stats %+v", st)
	}
}

func TestIntegrationConcurrentLoad(t *testing.T) {
	w := newIntegrationWorld(t, 2)
	w.deployModel("mbnet")
	w.deployAction("fn-mbnet")
	// Warm one sandbox.
	w.invoke(nil, "fn-mbnet", "mbnet", 0)
	var wg sync.WaitGroup
	sums := make(chan float64, 48)
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, out := w.invoke(nil, "fn-mbnet", "mbnet", i)
			var s float64
			for _, v := range out.Data() {
				s += float64(v)
			}
			sums <- s
		}(i)
	}
	wg.Wait()
	close(sums)
	for s := range sums {
		if s < 0.99 || s > 1.01 {
			t.Fatalf("softmax sum %v", s)
		}
	}
	if st := w.cluster.Stats(); st.Invocations != 49 {
		t.Fatalf("stats %+v", st)
	}
}

func TestIntegrationFnPackerOverCluster(t *testing.T) {
	w := newIntegrationWorld(t, 2)
	for _, m := range []string{"m0", "m1", "m2"} {
		w.deployModel(m)
	}
	pool := []string{"pool-0", "pool-1"}
	for _, ep := range pool {
		w.deployAction(ep)
	}
	sched, err := fnpacker.NewScheduler(vclock.Real{Scale: 0}, fnpacker.DefaultExclusiveInterval, pool...)
	if err != nil {
		t.Fatal(err)
	}
	router := fnpacker.NewRouter(sched, fnpacker.InvokerFunc(
		func(ctx context.Context, endpoint string, payload []byte) ([]byte, error) {
			return w.cluster.Invoke(ctx, endpoint, payload)
		}))

	// Three models over two endpoints: all requests succeed and decrypt.
	for i, m := range []string{"m0", "m1", "m2", "m0", "m1", "m2"} {
		resp, _ := w.invoke(router, "", m, i)
		_ = resp
	}
	st := w.cluster.Stats()
	if st.Invocations != 6 {
		t.Fatalf("stats %+v", st)
	}
	// Both endpoints were provisioned at most once each per sandbox.
	if st.ColdStarts > 4 {
		t.Fatalf("too many cold starts: %d", st.ColdStarts)
	}
}

func TestIntegrationTamperedPayloadRejectedEndToEnd(t *testing.T) {
	w := newIntegrationWorld(t, 1)
	w.deployModel("mbnet")
	w.deployAction("fn-mbnet")
	in := tensor.New(w.shape...)
	payload, err := semirt.EncryptRequest(w.reqKeys["mbnet"], "mbnet", inference.EncodeTensor(in))
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)/2] ^= 1
	body, err := json.Marshal(semirt.Request{UserID: w.user.ID(), ModelID: "mbnet", Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.cluster.Invoke(context.Background(), "fn-mbnet", body)
	if err == nil || !strings.Contains(err.Error(), "decrypt") {
		t.Fatalf("tampered payload: %v", err)
	}
}
