// Package main_test's integration tests exercise the complete live stack —
// KeyService, SeMIRT runtimes inside sandboxes on the serverless platform,
// and FnPacker routing — over real TCP and real goroutines, asserting the
// end-to-end security and caching behaviour the paper claims.
package main_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/fnpacker"
	"sesemi/internal/gateway"
	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/keyservice"
	"sesemi/internal/model"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/serverless"
	"sesemi/internal/storage"
	"sesemi/internal/tensor"
	"sesemi/internal/vclock"
)

// world is a complete live deployment.
type world struct {
	t       *testing.T
	ca      *attest.CA
	ksMeas  attest.Measurement
	ksAddr  string
	store   *storage.Memory
	cluster *serverless.Cluster
	owner   *keyservice.Client
	user    *keyservice.Client
	reqKeys map[string]secure.Key
	cfg     semirt.Config
	shape   []int
}

func newIntegrationWorld(t *testing.T, nodes int) *world {
	t.Helper()
	w := &world{t: t, reqKeys: map[string]secure.Key{}}
	var err error
	w.ca, err = attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.Real{Scale: 0}

	ksKey, err := w.ca.Provision("ks")
	if err != nil {
		t.Fatal(err)
	}
	svc := keyservice.NewService()
	ksEnc, err := enclave.NewPlatform(costmodel.SGX2, clock, ksKey).
		Launch(keyservice.ManifestFor(64), svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ksEnc.Destroy)
	w.ksMeas = ksEnc.Measurement()
	srv, err := keyservice.NewServer(svc, w.ca.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	w.ksAddr = ln.Addr().String()

	w.store = storage.NewMemory(clock, nil)
	var ns []*serverless.Node
	for i := 0; i < nodes; i++ {
		key, err := w.ca.Provision(fmt.Sprintf("node-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, &serverless.Node{
			Name:        fmt.Sprintf("node-%d", i),
			MemoryBytes: 8 << 30,
			Extra:       enclave.NewPlatform(costmodel.SGX2, clock, key),
		})
	}
	ccfg := serverless.DefaultConfig()
	ccfg.Clock = clock
	ccfg.SandboxStart = 0
	w.cluster = serverless.NewCluster(ccfg, ns...)
	t.Cleanup(w.cluster.Close)

	dial := keyservice.TCPDialer(w.ksAddr)
	w.owner = keyservice.NewClient(dial, w.ca.PublicKey(), w.ksMeas, secure.KeyFromSeed("it-owner"))
	w.user = keyservice.NewClient(dial, w.ca.PublicKey(), w.ksMeas, secure.KeyFromSeed("it-user"))
	t.Cleanup(func() { w.owner.Close(); w.user.Close() })
	if err := w.owner.Register(); err != nil {
		t.Fatal(err)
	}
	if err := w.user.Register(); err != nil {
		t.Fatal(err)
	}

	w.cfg, err = semirt.DefaultConfig("tvm", "mbnet", 4)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *world) deployModel(modelID string) {
	w.t.Helper()
	m, err := model.NewFunctional("mbnet")
	if err != nil {
		w.t.Fatal(err)
	}
	m.Name = modelID
	w.shape = m.InputShape
	data, err := model.Marshal(m)
	if err != nil {
		w.t.Fatal(err)
	}
	km := secure.KeyFromSeed("it-km-" + modelID)
	ct, err := semirt.EncryptModel(km, modelID, data)
	if err != nil {
		w.t.Fatal(err)
	}
	if err := w.store.Put(semirt.ModelBlobName(modelID), ct); err != nil {
		w.t.Fatal(err)
	}
	es := w.cfg.Manifest().Measure()
	if err := w.owner.AddModelKey(modelID, km); err != nil {
		w.t.Fatal(err)
	}
	if err := w.owner.GrantAccess(modelID, es, w.user.ID()); err != nil {
		w.t.Fatal(err)
	}
	kr := secure.KeyFromSeed("it-kr-" + modelID)
	w.reqKeys[modelID] = kr
	if err := w.user.AddReqKey(modelID, es, kr); err != nil {
		w.t.Fatal(err)
	}
}

// deployAction registers a serverless action running SeMIRT instances.
func (w *world) deployAction(name string) {
	w.t.Helper()
	err := w.cluster.Deploy(&serverless.Action{
		Name:         name,
		MemoryBudget: 256 << 20,
		Concurrency:  w.cfg.Concurrency,
		New: func(n *serverless.Node) (serverless.Instance, error) {
			rt, err := semirt.New(w.cfg, semirt.Deps{
				Platform:    n.Extra.(*enclave.Platform),
				Store:       w.store,
				KSDialer:    keyservice.TCPDialer(w.ksAddr),
				CAPublicKey: w.ca.PublicKey(),
				ExpectEK:    w.ksMeas,
			})
			if err != nil {
				return nil, err
			}
			return semirt.Instance{RT: rt}, nil
		},
	})
	if err != nil {
		w.t.Fatal(err)
	}
}

// encryptedInput builds the canonical seed-varied input tensor and seals it
// for the model — the single home of the seed-to-input formula within these
// tests, so the gateway-vs-direct cross-checks cannot drift. (bench.
// LiveWorld.Request uses the same formula independently for its own world.)
func (w *world) encryptedInput(modelID string, seed int) []byte {
	w.t.Helper()
	in := tensor.New(w.shape...)
	for i := range in.Data() {
		in.Data()[i] = float32((i+seed)%13) * 0.06
	}
	payload, err := semirt.EncryptRequest(w.reqKeys[modelID], modelID, inference.EncodeTensor(in))
	if err != nil {
		w.t.Fatal(err)
	}
	return payload
}

// invoke sends one encrypted request through the cluster (optionally via a
// FnPacker router) and decrypts the response.
func (w *world) invoke(router *fnpacker.Router, action, modelID string, seed int) (semirt.Response, *tensor.Tensor) {
	w.t.Helper()
	payload := w.encryptedInput(modelID, seed)
	body, err := json.Marshal(semirt.Request{UserID: w.user.ID(), ModelID: modelID, Payload: payload})
	if err != nil {
		w.t.Fatal(err)
	}
	var raw []byte
	if router != nil {
		raw, err = router.Handle(context.Background(), modelID, body)
	} else {
		raw, err = w.cluster.Invoke(context.Background(), action, body)
	}
	if err != nil {
		w.t.Fatal(err)
	}
	var resp semirt.Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		w.t.Fatal(err)
	}
	plain, err := semirt.DecryptResponse(w.reqKeys[modelID], modelID, resp.Payload)
	if err != nil {
		w.t.Fatal(err)
	}
	out, err := inference.DecodeTensor(plain)
	if err != nil {
		w.t.Fatal(err)
	}
	return resp, out
}

func TestIntegrationSingleActionLifecycle(t *testing.T) {
	w := newIntegrationWorld(t, 1)
	w.deployModel("mbnet")
	w.deployAction("fn-mbnet")

	r1, out1 := w.invoke(nil, "fn-mbnet", "mbnet", 1)
	if r1.Kind != semirt.Cold {
		t.Fatalf("first invocation %v, want cold", r1.Kind)
	}
	r2, out2 := w.invoke(nil, "fn-mbnet", "mbnet", 1)
	if r2.Kind != semirt.Hot {
		t.Fatalf("second invocation %v, want hot", r2.Kind)
	}
	for i := range out1.Data() {
		if out1.Data()[i] != out2.Data()[i] {
			t.Fatal("same input gave different outputs")
		}
	}
	st := w.cluster.Stats()
	if st.ColdStarts != 1 || st.Invocations != 2 {
		t.Fatalf("cluster stats %+v", st)
	}
}

func TestIntegrationConcurrentLoad(t *testing.T) {
	w := newIntegrationWorld(t, 2)
	w.deployModel("mbnet")
	w.deployAction("fn-mbnet")
	// Warm one sandbox.
	w.invoke(nil, "fn-mbnet", "mbnet", 0)
	var wg sync.WaitGroup
	sums := make(chan float64, 48)
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, out := w.invoke(nil, "fn-mbnet", "mbnet", i)
			var s float64
			for _, v := range out.Data() {
				s += float64(v)
			}
			sums <- s
		}(i)
	}
	wg.Wait()
	close(sums)
	for s := range sums {
		if s < 0.99 || s > 1.01 {
			t.Fatalf("softmax sum %v", s)
		}
	}
	if st := w.cluster.Stats(); st.Invocations != 49 {
		t.Fatalf("stats %+v", st)
	}
}

func TestIntegrationFnPackerOverCluster(t *testing.T) {
	w := newIntegrationWorld(t, 2)
	for _, m := range []string{"m0", "m1", "m2"} {
		w.deployModel(m)
	}
	pool := []string{"pool-0", "pool-1"}
	for _, ep := range pool {
		w.deployAction(ep)
	}
	sched, err := fnpacker.NewScheduler(vclock.Real{Scale: 0}, fnpacker.DefaultExclusiveInterval, pool...)
	if err != nil {
		t.Fatal(err)
	}
	router := fnpacker.NewRouter(sched, fnpacker.InvokerFunc(
		func(ctx context.Context, endpoint string, payload []byte) ([]byte, error) {
			return w.cluster.Invoke(ctx, endpoint, payload)
		}))

	// Three models over two endpoints: all requests succeed and decrypt.
	for i, m := range []string{"m0", "m1", "m2", "m0", "m1", "m2"} {
		resp, _ := w.invoke(router, "", m, i)
		_ = resp
	}
	st := w.cluster.Stats()
	if st.Invocations != 6 {
		t.Fatalf("stats %+v", st)
	}
	// Both endpoints were provisioned at most once each per sandbox.
	if st.ColdStarts > 4 {
		t.Fatalf("too many cold starts: %d", st.ColdStarts)
	}
}

func TestIntegrationTamperedPayloadRejectedEndToEnd(t *testing.T) {
	w := newIntegrationWorld(t, 1)
	w.deployModel("mbnet")
	w.deployAction("fn-mbnet")
	in := tensor.New(w.shape...)
	payload, err := semirt.EncryptRequest(w.reqKeys["mbnet"], "mbnet", inference.EncodeTensor(in))
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)/2] ^= 1
	body, err := json.Marshal(semirt.Request{UserID: w.user.ID(), ModelID: "mbnet", Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.cluster.Invoke(context.Background(), "fn-mbnet", body)
	if err == nil || !strings.Contains(err.Error(), "decrypt") {
		t.Fatalf("tampered payload: %v", err)
	}
}

// TestIntegrationGatewayEndToEnd drives N concurrent clients through the
// batching gateway over a multi-node cluster: every request must be answered
// exactly once with its own (correctly decrypting) response, batching must
// actually coalesce activations, and each response must be a valid softmax
// (no cross-request payload mixups).
func TestIntegrationGatewayEndToEnd(t *testing.T) {
	w := newIntegrationWorld(t, 2)
	w.deployModel("mbnet")
	w.deployAction("fn-mbnet")

	gw := gateway.New(gateway.Config{
		MaxBatch:     8,
		MaxWait:      5 * time.Millisecond,
		MaxQueue:     512,
		MaxInFlight:  8,
		PrewarmDepth: 24,
	}, w.cluster)
	defer gw.Close()

	const clients = 12
	const perClient = 8
	type outcome struct {
		client, i int
		sum       float64
		out       []float32
	}
	results := make(chan outcome, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				payload := w.encryptedInput("mbnet", c*perClient+i)
				resp, err := gw.Do(context.Background(), "fn-mbnet",
					semirt.Request{UserID: w.user.ID(), ModelID: "mbnet", Payload: payload})
				if err != nil {
					t.Errorf("client %d request %d: %v", c, i, err)
					return
				}
				plain, err := semirt.DecryptResponse(w.reqKeys["mbnet"], "mbnet", resp.Payload)
				if err != nil {
					t.Errorf("client %d request %d: decrypt: %v", c, i, err)
					return
				}
				out, err := inference.DecodeTensor(plain)
				if err != nil {
					t.Error(err)
					return
				}
				var s float64
				for _, v := range out.Data() {
					s += float64(v)
				}
				results <- outcome{client: c, i: i, sum: s, out: out.Data()}
			}
		}(c)
	}
	wg.Wait()
	close(results)

	// Zero lost, zero duplicated: exactly clients*perClient distinct
	// (client, i) outcomes, each a valid softmax.
	seen := map[[2]int][]float32{}
	for o := range results {
		key := [2]int{o.client, o.i}
		if seen[key] != nil {
			t.Fatalf("duplicate response for client %d request %d", o.client, o.i)
		}
		seen[key] = o.out
		if o.sum < 0.99 || o.sum > 1.01 {
			t.Fatalf("client %d request %d: softmax sum %v", o.client, o.i, o.sum)
		}
	}
	if len(seen) != clients*perClient {
		t.Fatalf("lost responses: %d of %d", len(seen), clients*perClient)
	}
	// No cross-request mixups: a sample of gateway responses must equal the
	// direct (unbatched) invocation of the same input — inference is
	// deterministic, so a swapped fan-out would diverge here.
	for c := 0; c < clients; c += 3 {
		i := (c / 3) % perClient
		_, direct := w.invoke(nil, "fn-mbnet", "mbnet", c*perClient+i)
		got := seen[[2]int{c, i}]
		for j := range direct.Data() {
			if got[j] != direct.Data()[j] {
				t.Fatalf("client %d request %d: gateway response differs from direct inference at %d", c, i, j)
			}
		}
	}

	gs := gw.Stats()
	if gs.Accepted != clients*perClient || gs.Served != clients*perClient {
		t.Fatalf("gateway stats %+v", gs)
	}
	st := w.cluster.Stats()
	// Batching amortization: far fewer activations than requests.
	if st.Invocations >= clients*perClient {
		t.Fatalf("no batching: %d activations for %d requests", st.Invocations, clients*perClient)
	}
	if bm := gw.Metrics().BatchSizes; bm.Max() > 8 {
		t.Fatalf("batch size %v exceeded MaxBatch", bm.Max())
	}
}

// recordingInstance wraps a serverless.Instance and records the order in
// which request payloads reach it (batch envelopes are flattened in batch
// order).
type recordingInstance struct {
	inner serverless.Instance
	mu    *sync.Mutex
	order *[]string
}

func (r recordingInstance) Invoke(payload []byte) ([]byte, error) {
	single, batch, err := semirt.DecodeEnvelope(payload)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if len(batch) > 0 {
		for _, req := range batch {
			*r.order = append(*r.order, string(req.Payload))
		}
	} else {
		*r.order = append(*r.order, string(single.Payload))
	}
	r.mu.Unlock()
	return r.inner.Invoke(payload)
}

func (r recordingInstance) Stop() { r.inner.Stop() }

// TestIntegrationGatewayFIFO asserts per-queue dispatch order over the live
// cluster: requests enqueued in a known order must reach the enclave in that
// order (the gateway's per-(action, model) FIFO guarantee). Arrival order is
// recorded inside the sandbox instance, where it is authoritative.
func TestIntegrationGatewayFIFO(t *testing.T) {
	w := newIntegrationWorld(t, 1)
	w.deployModel("mbnet")

	var mu sync.Mutex
	var arrived []string
	err := w.cluster.Deploy(&serverless.Action{
		Name:         "fn-mbnet",
		MemoryBudget: 256 << 20,
		Concurrency:  w.cfg.Concurrency,
		New: func(n *serverless.Node) (serverless.Instance, error) {
			rt, err := semirt.New(w.cfg, semirt.Deps{
				Platform:    n.Extra.(*enclave.Platform),
				Store:       w.store,
				KSDialer:    keyservice.TCPDialer(w.ksAddr),
				CAPublicKey: w.ca.PublicKey(),
				ExpectEK:    w.ksMeas,
			})
			if err != nil {
				return nil, err
			}
			return recordingInstance{inner: semirt.Instance{RT: rt}, mu: &mu, order: &arrived}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// MaxInFlight 1 serializes batches, so arrival order is total.
	gw := gateway.New(gateway.Config{
		MaxBatch:    2,
		MaxWait:     2 * time.Millisecond,
		MaxQueue:    64,
		MaxInFlight: 1,
	}, w.cluster)
	defer gw.Close()

	const n = 10
	submitted := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		payload := w.encryptedInput("mbnet", i)
		submitted[i] = string(payload)
		wg.Add(1)
		go func(i int, payload []byte) {
			defer wg.Done()
			if _, err := gw.Do(context.Background(), "fn-mbnet",
				semirt.Request{UserID: w.user.ID(), ModelID: "mbnet", Payload: payload}); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i, payload)
		// Serialize enqueue so submission order is well-defined; bounded so
		// an admission regression fails fast instead of hanging the test.
		deadline := time.Now().Add(5 * time.Second)
		for int(gw.Stats().Accepted) != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("request %d was never admitted (stats %+v)", i, gw.Stats())
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(arrived) != n {
		t.Fatalf("arrived %d of %d", len(arrived), n)
	}
	for i := range arrived {
		if arrived[i] != submitted[i] {
			t.Fatalf("dispatch order violated FIFO at position %d", i)
		}
	}
}
