module sesemi

go 1.22
