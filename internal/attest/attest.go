// Package attest simulates SGX remote attestation.
//
// In real SGX, Intel provisions each platform with an attestation key; a
// quoting enclave signs reports that bind the enclave's measurement
// (MRENCLAVE) and 64 bytes of user report data, and relying parties verify
// the signature chain up to Intel (via IAS for EPID on SGX1, or the ECDSA /
// DCAP collateral on SGX2). This package reproduces that chain with real
// ECDSA P-256 keys: a CA stands in for Intel, per-platform keys stand in for
// provisioned attestation keys, and Quote carries measurement + report data
// + platform info under a signature that verifiers check against the CA.
//
// The latency of quote generation and verification is modeled separately in
// internal/costmodel (Figure 16) and charged by internal/enclave.
package attest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"encoding/json"
	"encoding/pem"
	"errors"
	"fmt"
)

// MeasurementSize is the MRENCLAVE size in bytes.
const MeasurementSize = 32

// ReportDataSize is the user report-data size in bytes (as in SGX).
const ReportDataSize = 64

// Measurement is the enclave identity hash (MRENCLAVE).
type Measurement [MeasurementSize]byte

// Hex returns the measurement in printable form.
func (m Measurement) Hex() string { return fmt.Sprintf("%x", m[:]) }

// Quote is a signed attestation statement.
type Quote struct {
	// Measurement identifies the enclave code (MRENCLAVE).
	Measurement Measurement `json:"mrenclave"`
	// ReportData is caller-chosen data bound into the quote; RA-TLS puts a
	// hash of the channel public key here.
	ReportData [ReportDataSize]byte `json:"report_data"`
	// PlatformID names the attesting machine.
	PlatformID string `json:"platform_id"`
	// HW records the hardware generation ("sgx1" or "sgx2").
	HW string `json:"hw"`
	// TCBStatus reports platform patch level; verifiers reject anything but
	// "up-to-date".
	TCBStatus string `json:"tcb_status"`
	// Sig is the platform key's ECDSA signature over the fields above.
	Sig []byte `json:"sig"`
	// PlatformCert chains the platform key to the CA.
	PlatformCert PlatformCert `json:"platform_cert"`
}

// PlatformCert binds a platform's public key to its ID under the CA's
// signature (the stand-in for Intel's provisioning certificates).
type PlatformCert struct {
	PlatformID string `json:"platform_id"`
	PubKey     []byte `json:"pub_key"` // SEC1/X9.62 uncompressed point
	CASig      []byte `json:"ca_sig"`
}

// CA simulates Intel's attestation root of trust.
type CA struct {
	priv *ecdsa.PrivateKey
}

// NewCA generates a fresh attestation root.
func NewCA() (*CA, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: generate CA key: %w", err)
	}
	return &CA{priv: priv}, nil
}

// PublicKey returns the CA verification key in marshaled form; distribute it
// to verifiers out of band (it plays the role of Intel's root certificate).
func (ca *CA) PublicKey() []byte {
	pub, err := x509.MarshalPKIXPublicKey(&ca.priv.PublicKey)
	if err != nil {
		// P-256 public keys always marshal.
		panic("attest: marshal CA key: " + err.Error())
	}
	return pub
}

// PlatformKey is a per-machine attestation key provisioned by the CA.
type PlatformKey struct {
	platformID string
	priv       *ecdsa.PrivateKey
	cert       PlatformCert
}

// Provision creates and certifies an attestation key for a platform.
func (ca *CA) Provision(platformID string) (*PlatformKey, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("attest: generate platform key: %w", err)
	}
	pub, err := x509.MarshalPKIXPublicKey(&priv.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("attest: marshal platform key: %w", err)
	}
	digest := certDigest(platformID, pub)
	sig, err := ecdsa.SignASN1(rand.Reader, ca.priv, digest)
	if err != nil {
		return nil, fmt.Errorf("attest: sign platform cert: %w", err)
	}
	return &PlatformKey{
		platformID: platformID,
		priv:       priv,
		cert:       PlatformCert{PlatformID: platformID, PubKey: pub, CASig: sig},
	}, nil
}

// PlatformID returns the machine name this key was provisioned for.
func (pk *PlatformKey) PlatformID() string { return pk.platformID }

// Sign produces a quote for the given enclave measurement and report data.
func (pk *PlatformKey) Sign(m Measurement, reportData []byte, hw string) (Quote, error) {
	q := Quote{
		Measurement:  m,
		PlatformID:   pk.platformID,
		HW:           hw,
		TCBStatus:    "up-to-date",
		PlatformCert: pk.cert,
	}
	if len(reportData) > ReportDataSize {
		return Quote{}, fmt.Errorf("attest: report data %d bytes, max %d", len(reportData), ReportDataSize)
	}
	copy(q.ReportData[:], reportData)
	sig, err := ecdsa.SignASN1(rand.Reader, pk.priv, q.digest())
	if err != nil {
		return Quote{}, fmt.Errorf("attest: sign quote: %w", err)
	}
	q.Sig = sig
	return q, nil
}

// Verification errors.
var (
	ErrBadSignature  = errors.New("attest: bad quote signature")
	ErrBadCert       = errors.New("attest: platform certificate not signed by CA")
	ErrTCBOutOfDate  = errors.New("attest: platform TCB out of date")
	ErrWrongEnclave  = errors.New("attest: measurement not in allowed set")
	ErrBadReportData = errors.New("attest: report data mismatch")
)

// Verify checks the quote's certificate chain and signature against the CA
// public key (as distributed by CA.PublicKey).
func Verify(q Quote, caPublicKey []byte) error {
	pubAny, err := x509.ParsePKIXPublicKey(caPublicKey)
	if err != nil {
		return fmt.Errorf("attest: parse CA key: %w", err)
	}
	caPub, ok := pubAny.(*ecdsa.PublicKey)
	if !ok {
		return errors.New("attest: CA key is not ECDSA")
	}
	if q.PlatformCert.PlatformID != q.PlatformID {
		return ErrBadCert
	}
	if !ecdsa.VerifyASN1(caPub, certDigest(q.PlatformCert.PlatformID, q.PlatformCert.PubKey), q.PlatformCert.CASig) {
		return ErrBadCert
	}
	platAny, err := x509.ParsePKIXPublicKey(q.PlatformCert.PubKey)
	if err != nil {
		return ErrBadCert
	}
	platPub, ok := platAny.(*ecdsa.PublicKey)
	if !ok {
		return ErrBadCert
	}
	if !ecdsa.VerifyASN1(platPub, q.digest(), q.Sig) {
		return ErrBadSignature
	}
	if q.TCBStatus != "up-to-date" {
		return ErrTCBOutOfDate
	}
	return nil
}

// Policy is a relying party's acceptance policy: the CA root plus the set of
// enclave measurements it trusts.
type Policy struct {
	// CAPublicKey is the attestation root (CA.PublicKey output).
	CAPublicKey []byte
	// Allowed lists trusted measurements. Empty means "any measurement",
	// which only makes sense for logging/testing.
	Allowed []Measurement
}

// Check verifies the quote cryptographically and against the measurement
// allow-list, and confirms the report data matches expectData (if non-nil).
func (p Policy) Check(q Quote, expectData []byte) error {
	if err := Verify(q, p.CAPublicKey); err != nil {
		return err
	}
	if len(p.Allowed) > 0 {
		ok := false
		for _, m := range p.Allowed {
			if m == q.Measurement {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%w: %s", ErrWrongEnclave, q.Measurement.Hex())
		}
	}
	if expectData != nil {
		var want [ReportDataSize]byte
		copy(want[:], expectData)
		if q.ReportData != want {
			return ErrBadReportData
		}
	}
	return nil
}

// digest canonically hashes the signed fields of a quote.
func (q Quote) digest() []byte {
	h := sha256.New()
	h.Write(q.Measurement[:])
	h.Write(q.ReportData[:])
	writeLV(h, []byte(q.PlatformID))
	writeLV(h, []byte(q.HW))
	writeLV(h, []byte(q.TCBStatus))
	return h.Sum(nil)
}

func certDigest(platformID string, pub []byte) []byte {
	h := sha256.New()
	writeLV(h, []byte("sesemi-platform-cert"))
	writeLV(h, []byte(platformID))
	writeLV(h, pub)
	return h.Sum(nil)
}

func writeLV(h interface{ Write([]byte) (int, error) }, b []byte) {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(b)))
	h.Write(l[:])
	h.Write(b)
}

// Marshal encodes a quote for transmission.
func (q Quote) Marshal() ([]byte, error) { return json.Marshal(q) }

// UnmarshalQuote decodes a transmitted quote.
func UnmarshalQuote(data []byte) (Quote, error) {
	var q Quote
	if err := json.Unmarshal(data, &q); err != nil {
		return Quote{}, fmt.Errorf("attest: decode quote: %w", err)
	}
	return q, nil
}

// MarshalPrivateKey serializes the CA's private key in PEM form so a
// deployment can persist its simulated attestation root (the stand-in for
// Intel's provisioning infrastructure shared by every machine).
func (ca *CA) MarshalPrivateKey() ([]byte, error) {
	der, err := x509.MarshalECPrivateKey(ca.priv)
	if err != nil {
		return nil, fmt.Errorf("attest: marshal CA private key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: der}), nil
}

// LoadCA restores a CA from MarshalPrivateKey output.
func LoadCA(pemBytes []byte) (*CA, error) {
	block, _ := pem.Decode(pemBytes)
	if block == nil || block.Type != "EC PRIVATE KEY" {
		return nil, errors.New("attest: no EC private key PEM block")
	}
	priv, err := x509.ParseECPrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("attest: parse CA private key: %w", err)
	}
	return &CA{priv: priv}, nil
}
