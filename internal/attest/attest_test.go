package attest

import (
	"crypto/sha256"
	"testing"
)

func setup(t *testing.T) (*CA, *PlatformKey) {
	t.Helper()
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	pk, err := ca.Provision("node-1")
	if err != nil {
		t.Fatal(err)
	}
	return ca, pk
}

func TestQuoteSignVerify(t *testing.T) {
	ca, pk := setup(t)
	m := Measurement(sha256.Sum256([]byte("enclave-code")))
	q, err := pk.Sign(m, []byte("channel-binding"), "sgx2")
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(q, ca.PublicKey()); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
	if q.PlatformID != "node-1" || q.HW != "sgx2" {
		t.Fatalf("quote metadata %q/%q", q.PlatformID, q.HW)
	}
}

func TestVerifyRejectsWrongCA(t *testing.T) {
	_, pk := setup(t)
	otherCA, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	q, err := pk.Sign(Measurement{1}, nil, "sgx2")
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(q, otherCA.PublicKey()); err == nil {
		t.Fatal("quote chained to wrong CA accepted")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	ca, pk := setup(t)
	q, err := pk.Sign(Measurement{7}, []byte("data"), "sgx2")
	if err != nil {
		t.Fatal(err)
	}
	tamper := q
	tamper.Measurement[0] ^= 1
	if err := Verify(tamper, ca.PublicKey()); err == nil {
		t.Fatal("tampered measurement accepted")
	}
	tamper = q
	tamper.ReportData[5] ^= 1
	if err := Verify(tamper, ca.PublicKey()); err == nil {
		t.Fatal("tampered report data accepted")
	}
	tamper = q
	tamper.TCBStatus = "out-of-date"
	if err := Verify(tamper, ca.PublicKey()); err == nil {
		t.Fatal("stale TCB accepted")
	}
	tamper = q
	tamper.PlatformID = "node-2"
	if err := Verify(tamper, ca.PublicKey()); err == nil {
		t.Fatal("platform spoof accepted")
	}
}

func TestVerifyRejectsForeignPlatformKey(t *testing.T) {
	// An attacker provisions their own platform key (not signed by the CA)
	// and tries to pass its quotes off.
	ca, _ := setup(t)
	rogueCA, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	roguePK, err := rogueCA.Provision("node-1")
	if err != nil {
		t.Fatal(err)
	}
	q, err := roguePK.Sign(Measurement{9}, nil, "sgx2")
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(q, ca.PublicKey()); err == nil {
		t.Fatal("rogue platform key accepted")
	}
}

func TestPolicyMeasurementAllowList(t *testing.T) {
	ca, pk := setup(t)
	good := Measurement(sha256.Sum256([]byte("semirt-v1")))
	bad := Measurement(sha256.Sum256([]byte("evil")))
	pol := Policy{CAPublicKey: ca.PublicKey(), Allowed: []Measurement{good}}
	qGood, err := pk.Sign(good, nil, "sgx2")
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Check(qGood, nil); err != nil {
		t.Fatalf("allowed measurement rejected: %v", err)
	}
	qBad, err := pk.Sign(bad, nil, "sgx2")
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Check(qBad, nil); err == nil {
		t.Fatal("disallowed measurement accepted")
	}
}

func TestPolicyReportDataBinding(t *testing.T) {
	ca, pk := setup(t)
	pol := Policy{CAPublicKey: ca.PublicKey()}
	q, err := pk.Sign(Measurement{3}, []byte("pubkey-hash"), "sgx2")
	if err != nil {
		t.Fatal(err)
	}
	if err := pol.Check(q, []byte("pubkey-hash")); err != nil {
		t.Fatalf("matching report data rejected: %v", err)
	}
	if err := pol.Check(q, []byte("other-key")); err == nil {
		t.Fatal("mismatched report data accepted")
	}
}

func TestSignRejectsOversizedReportData(t *testing.T) {
	_, pk := setup(t)
	if _, err := pk.Sign(Measurement{}, make([]byte, ReportDataSize+1), "sgx2"); err == nil {
		t.Fatal("oversized report data accepted")
	}
}

func TestQuoteMarshalRoundTrip(t *testing.T) {
	ca, pk := setup(t)
	q, err := pk.Sign(Measurement{42}, []byte("rt"), "sgx1")
	if err != nil {
		t.Fatal(err)
	}
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalQuote(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(got, ca.PublicKey()); err != nil {
		t.Fatalf("round-tripped quote rejected: %v", err)
	}
	if _, err := UnmarshalQuote([]byte("{garbage")); err == nil {
		t.Fatal("garbage quote parsed")
	}
}

func TestMeasurementHex(t *testing.T) {
	m := Measurement{0xAB}
	if got := m.Hex(); len(got) != 64 || got[:2] != "ab" {
		t.Fatalf("Hex() = %q", got)
	}
}
