package inference

import (
	"testing"

	"sesemi/internal/model"
	"sesemi/internal/tensor"
)

// TestApplyLayerAllOps exercises the dispatch arm of every supported op
// directly (the frameworks cover them indirectly; this pins the dispatch
// table itself).
func TestApplyLayerAllOps(t *testing.T) {
	in4 := tensor.New(1, 4, 4, 2)
	for i := range in4.Data() {
		in4.Data()[i] = float32(i%5) - 2
	}
	in2 := tensor.New(1, 8)
	for i := range in2.Data() {
		in2.Data()[i] = float32(i) * 0.1
	}

	cases := []struct {
		name  string
		layer model.Layer
		ins   []*tensor.Tensor
		out   *tensor.Tensor
	}{
		{
			name: "conv2d",
			layer: model.Layer{Op: model.OpConv2D, Stride: 1, Pad: tensor.Same,
				Weights: map[string]*tensor.Tensor{model.WeightMain: tensor.New(3, 3, 2, 4)}},
			ins: []*tensor.Tensor{in4},
			out: tensor.New(1, 4, 4, 4),
		},
		{
			name: "dwconv2d",
			layer: model.Layer{Op: model.OpDepthwiseConv2D, Stride: 1, Pad: tensor.Same,
				Weights: map[string]*tensor.Tensor{model.WeightMain: tensor.New(3, 3, 2)}},
			ins: []*tensor.Tensor{in4},
			out: tensor.New(1, 4, 4, 2),
		},
		{
			name: "dense",
			layer: model.Layer{Op: model.OpDense,
				Weights: map[string]*tensor.Tensor{model.WeightMain: tensor.New(8, 3)}},
			ins: []*tensor.Tensor{in2},
			out: tensor.New(1, 3),
		},
		{
			name: "batchnorm",
			layer: model.Layer{Op: model.OpBatchNorm,
				Weights: map[string]*tensor.Tensor{
					model.WeightScale: ones(2), model.WeightShift: tensor.New(2)}},
			ins: []*tensor.Tensor{in4},
			out: tensor.New(1, 4, 4, 2),
		},
		{name: "relu", layer: model.Layer{Op: model.OpReLU}, ins: []*tensor.Tensor{in4}, out: tensor.New(1, 4, 4, 2)},
		{name: "relu6", layer: model.Layer{Op: model.OpReLU6}, ins: []*tensor.Tensor{in4}, out: tensor.New(1, 4, 4, 2)},
		{
			name:  "maxpool",
			layer: model.Layer{Op: model.OpMaxPool, Kernel: 2, Stride: 2, Pad: tensor.Valid},
			ins:   []*tensor.Tensor{in4},
			out:   tensor.New(1, 2, 2, 2),
		},
		{
			name:  "avgpool",
			layer: model.Layer{Op: model.OpAvgPool, Kernel: 2, Stride: 2, Pad: tensor.Valid},
			ins:   []*tensor.Tensor{in4},
			out:   tensor.New(1, 2, 2, 2),
		},
		{name: "gap", layer: model.Layer{Op: model.OpGlobalAvgPool}, ins: []*tensor.Tensor{in4}, out: tensor.New(1, 2)},
		{name: "softmax", layer: model.Layer{Op: model.OpSoftmax}, ins: []*tensor.Tensor{in2}, out: tensor.New(1, 8)},
		{name: "add", layer: model.Layer{Op: model.OpAdd}, ins: []*tensor.Tensor{in4, in4}, out: tensor.New(1, 4, 4, 2)},
		{name: "concat", layer: model.Layer{Op: model.OpConcat}, ins: []*tensor.Tensor{in4, in4}, out: tensor.New(1, 4, 4, 4)},
		{name: "flatten", layer: model.Layer{Op: model.OpFlatten}, ins: []*tensor.Tensor{in4}, out: tensor.New(1, 32)},
	}
	for _, c := range cases {
		l := c.layer
		if err := ApplyLayer(&l, c.out, c.ins); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func ones(n int) *tensor.Tensor {
	o := tensor.New(n)
	o.Fill(1)
	return o
}

func TestApplyLayerShapeErrorPropagates(t *testing.T) {
	l := model.Layer{Op: model.OpDense,
		Weights: map[string]*tensor.Tensor{model.WeightMain: tensor.New(8, 3)}}
	// Wrong output shape.
	if err := ApplyLayer(&l, tensor.New(1, 4), []*tensor.Tensor{tensor.New(1, 8)}); err == nil {
		t.Fatal("shape error swallowed")
	}
}

func TestModelExecAndPrepareOutputErrors(t *testing.T) {
	fw := fakeRuntime{}
	if err := ModelExec(&fw, []byte("garbage")); err == nil {
		t.Fatal("garbage payload accepted")
	}
}

type fakeRuntime struct{}

func (fakeRuntime) ModelName() string                { return "f" }
func (fakeRuntime) MemoryBytes() int                 { return 0 }
func (*fakeRuntime) Exec(*tensor.Tensor) error       { return nil }
func (*fakeRuntime) Output() (*tensor.Tensor, error) { return tensor.New(1), nil }
