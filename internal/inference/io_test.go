package inference

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sesemi/internal/model"
	"sesemi/internal/tensor"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := tensor.New(2, 3, 4)
	for i := range in.Data() {
		in.Data()[i] = float32(i) * 0.5
	}
	got, err := DecodeTensor(EncodeTensor(in))
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(got, in) {
		t.Fatalf("shape %v, want %v", got.Shape(), in.Shape())
	}
	for i := range in.Data() {
		if got.Data()[i] != in.Data()[i] {
			t.Fatalf("data[%d] = %v, want %v", i, got.Data()[i], in.Data()[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0x54, 0x53, 0x01, 0x00},               // wrong magic byte order
		append(EncodeTensor(tensor.New(2)), 0), // trailing byte
		EncodeTensor(tensor.New(2))[:6],        // truncated
	}
	for i, c := range cases {
		if _, err := DecodeTensor(c); err == nil {
			t.Errorf("case %d: accepted malformed payload", i)
		}
	}
}

func TestDecodeRejectsHugeDims(t *testing.T) {
	// Forge a header claiming 2^31 elements; must error, not allocate.
	buf := EncodeTensor(tensor.New(1))
	buf[4], buf[5], buf[6], buf[7] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := DecodeTensor(buf); err == nil {
		t.Fatal("accepted payload with huge dim")
	}
}

// Property: round-trip preserves arbitrary float payloads bit-exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 || len(vals) > 256 {
			return true
		}
		in, err := tensor.FromSlice(vals, len(vals))
		if err != nil {
			return false
		}
		out, err := DecodeTensor(EncodeTensor(in))
		if err != nil {
			return false
		}
		for i := range vals {
			// compare bit patterns; NaN != NaN under ==
			a, b := in.Data()[i], out.Data()[i]
			if a != b && !(a != a && b != b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

type fakeFramework struct{ name string }

func (f fakeFramework) Name() string                           { return f.name }
func (fakeFramework) ModelLoad([]byte) (LoadedModel, error)    { return nil, nil }
func (fakeFramework) RuntimeInit(LoadedModel) (Runtime, error) { return nil, nil }

func TestRegistry(t *testing.T) {
	Register(fakeFramework{name: "fake-xyzzy"})
	f, err := Lookup("fake-xyzzy")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "fake-xyzzy" {
		t.Fatalf("Lookup returned %q", f.Name())
	}
	if _, err := Lookup("no-such"); err == nil {
		t.Fatal("Lookup found unregistered framework")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fakeFramework{name: "fake-xyzzy"})
}

func TestApplyLayerUnknownOp(t *testing.T) {
	l := &model.Layer{Op: "quantum"}
	if err := ApplyLayer(l, tensor.New(1), []*tensor.Tensor{tensor.New(1)}); err == nil {
		t.Fatal("ApplyLayer accepted unknown op")
	}
}
