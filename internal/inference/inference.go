// Package inference defines the framework-facing API of SeMIRT.
//
// The paper integrates two inference frameworks (Apache TVM and TensorFlow
// Lite Micro) behind four functions — MODEL_LOAD, RUNTIME_INIT, MODEL_EXEC
// and PREPARE_OUTPUT (Figure 5). This package defines those four functions as
// Go interfaces, a shared layer-execution dispatcher, and the binary codec
// for request/response payloads. The two framework implementations live in
// the tinytvm and tinytflm subpackages and reproduce the memory/latency
// trade-off the paper measures: tinytvm packs weight copies into its runtime
// buffers (large buffers, λ>1), tinytflm plans a small scratch arena for
// intermediates only (λ≪1).
package inference

import (
	"fmt"
	"sort"
	"sync"

	"sesemi/internal/model"
	"sesemi/internal/tensor"
)

// LoadedModel is the result of MODEL_LOAD: a decrypted, deserialized model
// held in enclave memory.
type LoadedModel interface {
	// Model returns the underlying graph.
	Model() *model.Model
	// MemoryBytes reports the enclave-resident footprint of the loaded model.
	MemoryBytes() int
}

// Runtime is a per-thread execution context created by RUNTIME_INIT
// (the paper keeps one per TCS in thread-local storage).
type Runtime interface {
	// ModelName returns the model this runtime was initialized for.
	ModelName() string
	// MemoryBytes reports the runtime buffer footprint (Table I).
	MemoryBytes() int
	// Exec runs MODEL_EXEC on a decoded input tensor.
	Exec(input *tensor.Tensor) error
	// Output returns the raw output tensor of the last Exec.
	Output() (*tensor.Tensor, error)
}

// Framework is one of the pluggable inference frameworks.
type Framework interface {
	// Name returns the framework identifier: "tvm" or "tflm".
	Name() string
	// ModelLoad implements MODEL_LOAD over plaintext model bytes (SeMIRT
	// performs the decryption before calling it).
	ModelLoad(data []byte) (LoadedModel, error)
	// RuntimeInit implements RUNTIME_INIT.
	RuntimeInit(m LoadedModel) (Runtime, error)
}

// ModelExec decodes a request payload, runs it through the runtime, and is
// the common MODEL_EXEC implementation.
func ModelExec(rt Runtime, payload []byte) error {
	in, err := DecodeTensor(payload)
	if err != nil {
		return fmt.Errorf("inference: decode input: %w", err)
	}
	return rt.Exec(in)
}

// PrepareOutput serializes the runtime's output into a byte buffer, the
// common PREPARE_OUTPUT implementation.
func PrepareOutput(rt Runtime) ([]byte, error) {
	out, err := rt.Output()
	if err != nil {
		return nil, err
	}
	return EncodeTensor(out), nil
}

// registry of frameworks, populated by the tinytvm/tinytflm init functions
// via Register.
var (
	regMu    sync.RWMutex
	registry = map[string]Framework{}
)

// Register makes a framework available by name. It panics on duplicates,
// mirroring database/sql.Register.
func Register(f Framework) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[f.Name()]; dup {
		panic("inference: Register called twice for " + f.Name())
	}
	registry[f.Name()] = f
}

// Lookup returns the framework registered under name.
func Lookup(name string) (Framework, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("inference: unknown framework %q", name)
	}
	return f, nil
}

// Frameworks returns the sorted names of all registered frameworks.
func Frameworks() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ApplyLayer executes a single layer: out is the pre-allocated output tensor
// and ins are the layer's input tensors in graph order. Both frameworks
// dispatch through this function so kernel behaviour is identical; only the
// buffer management differs.
func ApplyLayer(l *model.Layer, out *tensor.Tensor, ins []*tensor.Tensor) error {
	in := ins[0]
	switch l.Op {
	case model.OpConv2D:
		return tensor.Conv2D(out, in, l.Weights[model.WeightMain], l.Weights[model.WeightBias], l.Stride, l.Pad)
	case model.OpDepthwiseConv2D:
		return tensor.DepthwiseConv2D(out, in, l.Weights[model.WeightMain], l.Weights[model.WeightBias], l.Stride, l.Pad)
	case model.OpDense:
		return tensor.Dense(out, in, l.Weights[model.WeightMain], l.Weights[model.WeightBias])
	case model.OpBatchNorm:
		return tensor.BatchNorm(out, in, l.Weights[model.WeightScale], l.Weights[model.WeightShift])
	case model.OpReLU:
		return tensor.ReLU(out, in)
	case model.OpReLU6:
		return tensor.ReLU6(out, in)
	case model.OpMaxPool:
		return tensor.MaxPool2D(out, in, l.Kernel, l.Stride, l.Pad)
	case model.OpAvgPool:
		return tensor.AvgPool2D(out, in, l.Kernel, l.Stride, l.Pad)
	case model.OpGlobalAvgPool:
		return tensor.GlobalAvgPool(out, in)
	case model.OpSoftmax:
		return tensor.Softmax(out, in)
	case model.OpAdd:
		return tensor.Add(out, ins[0], ins[1])
	case model.OpConcat:
		return tensor.ConcatChannels(out, ins...)
	case model.OpFlatten:
		flat, err := in.Reshape(out.Shape()...)
		if err != nil {
			return err
		}
		copy(out.Data(), flat.Data())
		return nil
	}
	return fmt.Errorf("inference: unsupported op %q", l.Op)
}
