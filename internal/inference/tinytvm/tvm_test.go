package tinytvm_test

import (
	"math"
	"testing"

	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/model"
	"sesemi/internal/tensor"
)

func mustLoad(t *testing.T, fwName, id string) (inference.Framework, inference.LoadedModel) {
	t.Helper()
	fw, err := inference.Lookup(fwName)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewFunctional(id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := model.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := fw.ModelLoad(data)
	if err != nil {
		t.Fatal(err)
	}
	return fw, lm
}

func TestBothFrameworksRegistered(t *testing.T) {
	names := inference.Frameworks()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	if !have["tvm"] || !have["tflm"] {
		t.Fatalf("registered frameworks %v, want tvm and tflm", names)
	}
}

func TestTVMExecAllModels(t *testing.T) {
	for _, id := range model.ZooIDs() {
		fw, lm := mustLoad(t, "tvm", id)
		rt, err := fw.RuntimeInit(lm)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		in := tensor.New(lm.Model().InputShape...)
		for i := range in.Data() {
			in.Data()[i] = float32(i%11) * 0.07
		}
		if err := rt.Exec(in); err != nil {
			t.Fatalf("%s: Exec: %v", id, err)
		}
		out, err := rt.Output()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range out.Data() {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("%s: output sums to %v", id, sum)
		}
	}
}

// TestFrameworksAgree cross-validates the two executors: identical models and
// inputs must produce numerically close outputs despite entirely different
// buffer management.
func TestFrameworksAgree(t *testing.T) {
	for _, id := range model.ZooIDs() {
		tvmFw, tvmLM := mustLoad(t, "tvm", id)
		tflmFw, tflmLM := mustLoad(t, "tflm", id)
		tvmRT, err := tvmFw.RuntimeInit(tvmLM)
		if err != nil {
			t.Fatal(err)
		}
		tflmRT, err := tflmFw.RuntimeInit(tflmLM)
		if err != nil {
			t.Fatal(err)
		}
		in := tensor.New(tvmLM.Model().InputShape...)
		for i := range in.Data() {
			in.Data()[i] = float32((i*37)%19) * 0.03
		}
		if err := tvmRT.Exec(in); err != nil {
			t.Fatal(err)
		}
		if err := tflmRT.Exec(in); err != nil {
			t.Fatal(err)
		}
		a, err := tvmRT.Output()
		if err != nil {
			t.Fatal(err)
		}
		b, err := tflmRT.Output()
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data() {
			if diff := math.Abs(float64(a.Data()[i] - b.Data()[i])); diff > 1e-5 {
				t.Fatalf("%s: frameworks disagree at %d: %v vs %v", id, i, a.Data()[i], b.Data()[i])
			}
		}
	}
}

// TestTVMBufferExceedsTFLMArena verifies the Table I memory relationship on
// the functional models: the TVM runtime (weight copies + all slots) must be
// strictly larger than the TFLM arena (reused intermediates only).
func TestTVMBufferExceedsTFLMArena(t *testing.T) {
	for _, id := range model.ZooIDs() {
		tvmFw, tvmLM := mustLoad(t, "tvm", id)
		tflmFw, tflmLM := mustLoad(t, "tflm", id)
		tvmRT, err := tvmFw.RuntimeInit(tvmLM)
		if err != nil {
			t.Fatal(err)
		}
		tflmRT, err := tflmFw.RuntimeInit(tflmLM)
		if err != nil {
			t.Fatal(err)
		}
		if tvmRT.MemoryBytes() <= tflmRT.MemoryBytes() {
			t.Fatalf("%s: TVM buffer %d <= TFLM arena %d", id, tvmRT.MemoryBytes(), tflmRT.MemoryBytes())
		}
		if tvmRT.MemoryBytes() <= tvmLM.Model().WeightBytes() {
			t.Fatalf("%s: TVM buffer %d does not exceed weight bytes %d (missing packed copies)",
				id, tvmRT.MemoryBytes(), tvmLM.Model().WeightBytes())
		}
	}
}

// TestTVMRuntimeIsolation: two runtimes from one loaded model must not share
// mutable state; executing one must not corrupt the other.
func TestTVMRuntimeIsolation(t *testing.T) {
	fw, lm := mustLoad(t, "tvm", "mbnet")
	rt1, err := fw.RuntimeInit(lm)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := fw.RuntimeInit(lm)
	if err != nil {
		t.Fatal(err)
	}
	in1 := tensor.New(lm.Model().InputShape...)
	in2 := tensor.New(lm.Model().InputShape...)
	for i := range in1.Data() {
		in1.Data()[i] = 0.5
		in2.Data()[i] = -0.5
	}
	if err := rt1.Exec(in1); err != nil {
		t.Fatal(err)
	}
	out1, err := rt1.Output()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float32(nil), out1.Data()...)
	if err := rt2.Exec(in2); err != nil {
		t.Fatal(err)
	}
	for i, v := range out1.Data() {
		if v != snapshot[i] {
			t.Fatalf("rt2.Exec mutated rt1 output at %d", i)
		}
	}
}

func TestTVMModelExecAndPrepareOutput(t *testing.T) {
	fw, lm := mustLoad(t, "tvm", "dsnet")
	rt, err := fw.RuntimeInit(lm)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(lm.Model().InputShape...)
	payload := inference.EncodeTensor(in)
	if err := inference.ModelExec(rt, payload); err != nil {
		t.Fatal(err)
	}
	out, err := inference.PrepareOutput(rt)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := inference.DecodeTensor(out)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Dim(dec.Rank()-1) != lm.Model().NumClasses {
		t.Fatalf("output classes %d, want %d", dec.Dim(dec.Rank()-1), lm.Model().NumClasses)
	}
	if err := inference.ModelExec(rt, []byte("junk")); err == nil {
		t.Fatal("ModelExec accepted junk payload")
	}
}

func TestTVMRejectsForeignLoadedModel(t *testing.T) {
	tvmFw, _ := mustLoad(t, "tvm", "mbnet")
	_, tflmLM := mustLoad(t, "tflm", "mbnet")
	if _, err := tvmFw.RuntimeInit(tflmLM); err == nil {
		t.Fatal("tvm RuntimeInit accepted a tflm-loaded model")
	}
}
