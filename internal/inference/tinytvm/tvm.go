// Package tinytvm is a TVM-style graph executor.
//
// Like Apache TVM's ahead-of-time graph runtime, it trades memory for speed:
// RuntimeInit pre-allocates a storage slot for every node in the graph *and
// packs a private copy of every weight tensor* into the runtime buffer, so a
// runtime's footprint exceeds the model size (Table I: λ between 1.2 and
// 1.8). Execution then touches only runtime-owned memory, which is why the
// paper's TVM numbers show fast model execution but expensive RUNTIME_INIT
// (39.6 %, 21.3 % and 15.0 % of execution latency for the three models).
package tinytvm

import (
	"errors"
	"fmt"

	"sesemi/internal/inference"
	"sesemi/internal/model"
	"sesemi/internal/tensor"
)

func init() {
	inference.Register(framework{})
}

type framework struct{}

// Name implements inference.Framework.
func (framework) Name() string { return "tvm" }

// ModelLoad deserializes plaintext model bytes.
func (framework) ModelLoad(data []byte) (inference.LoadedModel, error) {
	m, err := model.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("tinytvm: %w", err)
	}
	return &loaded{m: m, bytes: len(data)}, nil
}

// RuntimeInit builds the executor: it resolves the execution plan, allocates
// one output slot per node, and copies all weights into packed buffers.
func (framework) RuntimeInit(lm inference.LoadedModel) (inference.Runtime, error) {
	l, ok := lm.(*loaded)
	if !ok {
		return nil, errors.New("tinytvm: model was not loaded by this framework")
	}
	m := l.m
	shapes, err := m.InferShapes()
	if err != nil {
		return nil, err
	}
	rt := &runtime{model: m}
	rt.slots = make(map[string]*tensor.Tensor, len(m.Layers)+1)
	rt.slots[model.InputName] = tensor.New(m.InputShape...)
	rt.bytes += rt.slots[model.InputName].SizeBytes()
	// Pack weight copies: this is what makes the TVM buffer contain "copies
	// of the model data" (Table I footnote).
	rt.packed = make([]packedLayer, len(m.Layers))
	for i := range m.Layers {
		src := &m.Layers[i]
		pl := packedLayer{Layer: *src}
		if len(src.Weights) > 0 {
			pl.Weights = make(map[string]*tensor.Tensor, len(src.Weights))
			for role, w := range src.Weights {
				c := w.Clone()
				pl.Weights[role] = c
				rt.bytes += c.SizeBytes()
			}
		}
		rt.packed[i] = pl
		out := tensor.New(shapes[src.Name]...)
		rt.slots[src.Name] = out
		rt.bytes += out.SizeBytes()
	}
	return rt, nil
}

type loaded struct {
	m     *model.Model
	bytes int
}

func (l *loaded) Model() *model.Model { return l.m }

// MemoryBytes reports the serialized size, the footprint of the model held
// in the enclave's plaintext model cache.
func (l *loaded) MemoryBytes() int { return l.bytes }

type packedLayer struct {
	model.Layer
	// Weights shadows Layer.Weights with runtime-owned copies.
}

type runtime struct {
	model  *model.Model
	packed []packedLayer
	slots  map[string]*tensor.Tensor
	bytes  int
	ran    bool
}

func (r *runtime) ModelName() string { return r.model.Name }

// MemoryBytes reports the full runtime buffer: packed weights + every node's
// storage slot.
func (r *runtime) MemoryBytes() int { return r.bytes }

// Exec runs the graph over the pre-allocated slots.
func (r *runtime) Exec(input *tensor.Tensor) error {
	slot := r.slots[model.InputName]
	if !tensor.SameShape(slot, input) {
		return fmt.Errorf("tinytvm: input shape %v, want %v", input.Shape(), slot.Shape())
	}
	copy(slot.Data(), input.Data())
	for i := range r.packed {
		l := &r.packed[i]
		ins := make([]*tensor.Tensor, len(l.Inputs))
		for j, name := range l.Inputs {
			ins[j] = r.slots[name]
		}
		if err := inference.ApplyLayer(&l.Layer, r.slots[l.Name], ins); err != nil {
			return fmt.Errorf("tinytvm: layer %q: %w", l.Name, err)
		}
	}
	r.ran = true
	return nil
}

// Output returns the output slot of the final layer.
func (r *runtime) Output() (*tensor.Tensor, error) {
	if !r.ran {
		return nil, errors.New("tinytvm: Output before Exec")
	}
	return r.slots[r.model.OutputLayer()], nil
}
