package inference

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"sesemi/internal/tensor"
)

// Tensor wire format (little-endian):
//
//	magic  uint16 0x5354 ("ST")
//	rank   uint16
//	dims   [rank]uint32
//	data   [prod(dims)]float32
//
// This is the payload format of user requests (after request-key decryption)
// and of inference results (before request-key encryption).

const tensorMagic = 0x5354

// ErrPayload reports a malformed tensor payload.
var ErrPayload = errors.New("inference: malformed tensor payload")

// maxPayloadElems bounds decoded tensors (64M elements = 256 MB) so a hostile
// payload cannot force an enormous allocation inside the enclave.
const maxPayloadElems = 64 << 20

// EncodeTensor serializes a tensor to the wire format.
func EncodeTensor(t *tensor.Tensor) []byte {
	buf := make([]byte, 4+4*t.Rank()+4*t.Len())
	binary.LittleEndian.PutUint16(buf[0:], tensorMagic)
	binary.LittleEndian.PutUint16(buf[2:], uint16(t.Rank()))
	off := 4
	for _, d := range t.Shape() {
		binary.LittleEndian.PutUint32(buf[off:], uint32(d))
		off += 4
	}
	for _, v := range t.Data() {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	return buf
}

// DecodeTensor parses the wire format produced by EncodeTensor.
func DecodeTensor(data []byte) (*tensor.Tensor, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayload, len(data))
	}
	if binary.LittleEndian.Uint16(data[0:]) != tensorMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrPayload)
	}
	rank := int(binary.LittleEndian.Uint16(data[2:]))
	if rank == 0 || rank > 8 {
		return nil, fmt.Errorf("%w: rank %d", ErrPayload, rank)
	}
	if len(data) < 4+4*rank {
		return nil, fmt.Errorf("%w: truncated dims", ErrPayload)
	}
	shape := make([]int, rank)
	n := 1
	for i := 0; i < rank; i++ {
		d := int(binary.LittleEndian.Uint32(data[4+4*i:]))
		if d <= 0 || n > maxPayloadElems/d {
			return nil, fmt.Errorf("%w: dim %d", ErrPayload, d)
		}
		shape[i] = d
		n *= d
	}
	want := 4 + 4*rank + 4*n
	if len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes for shape %v (want %d)", ErrPayload, len(data), shape, want)
	}
	vals := make([]float32, n)
	off := 4 + 4*rank
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[off+4*i:]))
	}
	return tensor.FromSlice(vals, shape...)
}
