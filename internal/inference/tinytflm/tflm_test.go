package tinytflm

import (
	"math"
	"testing"

	"sesemi/internal/inference"
	"sesemi/internal/model"
	"sesemi/internal/tensor"
)

func loadFunctional(t *testing.T, id string) (inference.Framework, inference.LoadedModel) {
	t.Helper()
	fw, err := inference.Lookup("tflm")
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewFunctional(id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := model.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := fw.ModelLoad(data)
	if err != nil {
		t.Fatal(err)
	}
	return fw, lm
}

func TestExecAllZooModels(t *testing.T) {
	for _, id := range model.ZooIDs() {
		fw, lm := loadFunctional(t, id)
		rt, err := fw.RuntimeInit(lm)
		if err != nil {
			t.Fatalf("%s: RuntimeInit: %v", id, err)
		}
		in := tensor.New(lm.Model().InputShape...)
		for i := range in.Data() {
			in.Data()[i] = float32(i%7) * 0.1
		}
		if err := rt.Exec(in); err != nil {
			t.Fatalf("%s: Exec: %v", id, err)
		}
		out, err := rt.Output()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range out.Data() {
			if math.IsNaN(float64(v)) {
				t.Fatalf("%s: NaN in output", id)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("%s: softmax output sums to %v", id, sum)
		}
	}
}

func TestArenaSmallerThanAllOutputs(t *testing.T) {
	// The planner must reuse memory: the arena has to be smaller than the
	// sum of all tensor sizes for a deep sequential model.
	fw, lm := loadFunctional(t, "mbnet")
	rt, err := fw.RuntimeInit(lm)
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := lm.Model().InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shapes {
		n := 4
		for _, d := range s {
			n *= d
		}
		total += n
	}
	if rt.MemoryBytes() >= total {
		t.Fatalf("arena %d >= naive total %d: no memory reuse", rt.MemoryBytes(), total)
	}
}

func TestRuntimesShareWeights(t *testing.T) {
	// Two runtimes over the same loaded model must not copy weights: their
	// combined footprint is two arenas, not two model copies.
	fw, lm := loadFunctional(t, "dsnet")
	rt1, err := fw.RuntimeInit(lm)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := fw.RuntimeInit(lm)
	if err != nil {
		t.Fatal(err)
	}
	if rt1.MemoryBytes() != rt2.MemoryBytes() {
		t.Fatalf("arena sizes differ: %d vs %d", rt1.MemoryBytes(), rt2.MemoryBytes())
	}
	if rt1.MemoryBytes() >= lm.Model().WeightBytes() {
		t.Logf("note: tiny functional model has arena %d >= weights %d; paper-scale uses costmodel",
			rt1.MemoryBytes(), lm.Model().WeightBytes())
	}
}

func TestOutputBeforeExec(t *testing.T) {
	fw, lm := loadFunctional(t, "mbnet")
	rt, err := fw.RuntimeInit(lm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Output(); err == nil {
		t.Fatal("Output before Exec succeeded")
	}
}

func TestExecWrongInputShape(t *testing.T) {
	fw, lm := loadFunctional(t, "mbnet")
	rt, err := fw.RuntimeInit(lm)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Exec(tensor.New(1, 2, 2, 3)); err == nil {
		t.Fatal("Exec accepted wrong input shape")
	}
}

func TestModelLoadRejectsGarbage(t *testing.T) {
	fw, err := inference.Lookup("tflm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.ModelLoad([]byte("not a model")); err == nil {
		t.Fatal("ModelLoad accepted garbage")
	}
}

// TestPlannerNoLiveOverlap is a white-box property test of the arena
// planner: no two tensors with intersecting lifetimes may share arena bytes.
func TestPlannerNoLiveOverlap(t *testing.T) {
	for _, id := range model.ZooIDs() {
		m, err := model.NewFunctional(id)
		if err != nil {
			t.Fatal(err)
		}
		shapes, err := m.InferShapes()
		if err != nil {
			t.Fatal(err)
		}
		plans := map[string]*tensorPlan{}
		mk := func(name string, start int) {
			s := shapes[name]
			n := 1
			for _, d := range s {
				n *= d
			}
			plans[name] = &tensorPlan{name: name, shape: s, elems: n, start: start, end: start}
		}
		mk(model.InputName, -1)
		for i := range m.Layers {
			for _, in := range m.Layers[i].Inputs {
				if i > plans[in].end {
					plans[in].end = i
				}
			}
			mk(m.Layers[i].Name, i)
		}
		plans[m.OutputLayer()].end = len(m.Layers)
		total, err := planArena(plans)
		if err != nil {
			t.Fatal(err)
		}
		list := make([]*tensorPlan, 0, len(plans))
		for _, p := range plans {
			if p.offset+p.elems > total {
				t.Fatalf("%s: tensor %s overruns arena", id, p.name)
			}
			list = append(list, p)
		}
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				lifeOverlap := a.start <= b.end && b.start <= a.end
				memOverlap := a.offset < b.offset+b.elems && b.offset < a.offset+a.elems
				if lifeOverlap && memOverlap {
					t.Fatalf("%s: %s and %s live simultaneously but share memory", id, a.name, b.name)
				}
			}
		}
	}
}

// TestExecDeterministic: same input twice gives identical outputs (the arena
// is fully overwritten each run).
func TestExecDeterministic(t *testing.T) {
	fw, lm := loadFunctional(t, "rsnet")
	rt, err := fw.RuntimeInit(lm)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(lm.Model().InputShape...)
	for i := range in.Data() {
		in.Data()[i] = float32(i%13) * 0.05
	}
	run := func() []float32 {
		if err := rt.Exec(in); err != nil {
			t.Fatal(err)
		}
		out, err := rt.Output()
		if err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), out.Data()...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic exec at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
