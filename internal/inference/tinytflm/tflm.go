// Package tinytflm is a TensorFlow-Lite-Micro-style interpreter.
//
// Like TFLM, it references weights directly from the loaded model (no
// copies) and executes into a single pre-planned scratch arena that holds
// only intermediate activations. Arena offsets are assigned with a greedy
// interval-packing planner equivalent in spirit to TFLM's
// GreedyMemoryPlanner, so tensors with disjoint lifetimes share memory.
// This is what makes the TFLM runtime buffers in Table I 4-12x smaller than
// the TVM ones, at the price of slower model execution.
package tinytflm

import (
	"errors"
	"fmt"
	"sort"

	"sesemi/internal/inference"
	"sesemi/internal/model"
	"sesemi/internal/tensor"
)

func init() {
	inference.Register(framework{})
}

type framework struct{}

// Name implements inference.Framework.
func (framework) Name() string { return "tflm" }

// ModelLoad deserializes plaintext model bytes.
func (framework) ModelLoad(data []byte) (inference.LoadedModel, error) {
	m, err := model.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("tinytflm: %w", err)
	}
	return &loaded{m: m, bytes: len(data)}, nil
}

type loaded struct {
	m     *model.Model
	bytes int
}

func (l *loaded) Model() *model.Model { return l.m }
func (l *loaded) MemoryBytes() int    { return l.bytes }

// tensorPlan records where a logical tensor lives in the arena.
type tensorPlan struct {
	name   string
	shape  []int
	elems  int // number of float32 elements
	start  int // producing layer index (-1 for graph input)
	end    int // last consuming layer index
	offset int // assigned arena offset, in elements
}

// RuntimeInit plans the arena and builds the interpreter.
func (framework) RuntimeInit(lm inference.LoadedModel) (inference.Runtime, error) {
	l, ok := lm.(*loaded)
	if !ok {
		return nil, errors.New("tinytflm: model was not loaded by this framework")
	}
	m := l.m
	shapes, err := m.InferShapes()
	if err != nil {
		return nil, err
	}
	plans := map[string]*tensorPlan{}
	mkPlan := func(name string, start int) {
		s := shapes[name]
		n := 1
		for _, d := range s {
			n *= d
		}
		plans[name] = &tensorPlan{name: name, shape: s, elems: n, start: start, end: start}
	}
	mkPlan(model.InputName, -1)
	for i := range m.Layers {
		lyr := &m.Layers[i]
		for _, in := range lyr.Inputs {
			p, ok := plans[in]
			if !ok {
				return nil, fmt.Errorf("tinytflm: layer %q consumes unplanned %q", lyr.Name, in)
			}
			if i > p.end {
				p.end = i
			}
		}
		mkPlan(lyr.Name, i)
	}
	// The graph output must survive until PREPARE_OUTPUT.
	plans[m.OutputLayer()].end = len(m.Layers)
	arenaElems, err := planArena(plans)
	if err != nil {
		return nil, err
	}
	rt := &runtime{
		model: m,
		arena: make([]float32, arenaElems),
		views: make(map[string]*tensor.Tensor, len(plans)),
	}
	for name, p := range plans {
		view, err := tensor.FromSlice(rt.arena[p.offset:p.offset+p.elems], p.shape...)
		if err != nil {
			return nil, err
		}
		rt.views[name] = view
	}
	return rt, nil
}

// planArena assigns offsets with a greedy-by-size interval packing and
// returns the arena size in elements.
func planArena(plans map[string]*tensorPlan) (int, error) {
	order := make([]*tensorPlan, 0, len(plans))
	for _, p := range plans {
		order = append(order, p)
	}
	// Largest first, ties broken by earliest start then name for determinism.
	sort.Slice(order, func(i, j int) bool {
		if order[i].elems != order[j].elems {
			return order[i].elems > order[j].elems
		}
		if order[i].start != order[j].start {
			return order[i].start < order[j].start
		}
		return order[i].name < order[j].name
	})
	var placed []*tensorPlan
	total := 0
	for _, p := range order {
		// Collect forbidden intervals from live, already-placed tensors.
		type span struct{ lo, hi int }
		var busy []span
		for _, q := range placed {
			if p.start <= q.end && q.start <= p.end { // lifetimes overlap
				busy = append(busy, span{q.offset, q.offset + q.elems})
			}
		}
		sort.Slice(busy, func(i, j int) bool { return busy[i].lo < busy[j].lo })
		off := 0
		for _, b := range busy {
			if off+p.elems <= b.lo {
				break
			}
			if b.hi > off {
				off = b.hi
			}
		}
		p.offset = off
		if off+p.elems > total {
			total = off + p.elems
		}
		placed = append(placed, p)
	}
	if total == 0 {
		return 0, errors.New("tinytflm: empty arena plan")
	}
	return total, nil
}

type runtime struct {
	model *model.Model
	arena []float32
	views map[string]*tensor.Tensor
	ran   bool
}

func (r *runtime) ModelName() string { return r.model.Name }

// MemoryBytes reports only the scratch arena: weights are shared with the
// loaded model and not counted, exactly like TFLM.
func (r *runtime) MemoryBytes() int { return 4 * len(r.arena) }

// Exec interprets the graph layer by layer over arena views.
func (r *runtime) Exec(input *tensor.Tensor) error {
	in := r.views[model.InputName]
	if !tensor.SameShape(in, input) {
		return fmt.Errorf("tinytflm: input shape %v, want %v", input.Shape(), in.Shape())
	}
	copy(in.Data(), input.Data())
	for i := range r.model.Layers {
		l := &r.model.Layers[i]
		ins := make([]*tensor.Tensor, len(l.Inputs))
		for j, name := range l.Inputs {
			ins[j] = r.views[name]
		}
		if err := inference.ApplyLayer(l, r.views[l.Name], ins); err != nil {
			return fmt.Errorf("tinytflm: layer %q: %w", l.Name, err)
		}
	}
	r.ran = true
	return nil
}

// Output returns the arena view holding the final layer's activations.
func (r *runtime) Output() (*tensor.Tensor, error) {
	if !r.ran {
		return nil, errors.New("tinytflm: Output before Exec")
	}
	return r.views[r.model.OutputLayer()], nil
}
