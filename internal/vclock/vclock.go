// Package vclock abstracts time so that the live SeSeMI stack and the
// discrete-event experiment harness can share components.
//
// Modeled latencies (enclave creation, attestation round trips, model
// downloads — see internal/costmodel) are injected through a Clock. The live
// servers use Real (optionally time-scaled so integration tests don't spend
// seconds in modeled sleeps); unit tests use Manual, which advances
// instantly and records every sleep.
package vclock

import (
	"sync"
	"time"
)

// Clock supplies the current time and modeled delays.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep blocks for the (possibly scaled) duration d.
	Sleep(d time.Duration)
}

// Real is a wall-clock Clock. Scale < 1 compresses modeled sleeps, e.g.
// Scale = 0.01 turns a modeled 1.04 s enclave creation into 10.4 ms of wall
// time; Now still reports wall time. Scale 0 means "do not sleep at all".
type Real struct {
	// Scale multiplies every Sleep duration. Zero disables sleeping.
	Scale float64
}

// System is the pass-through wall clock.
var System = Real{Scale: 1}

// Now implements Clock.
func (r Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (r Real) Sleep(d time.Duration) {
	if r.Scale <= 0 || d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * r.Scale))
}

// Manual is a deterministic clock for tests: Sleep returns immediately,
// advancing virtual time and recording the request. It is safe for
// concurrent use.
type Manual struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
	total time.Duration
}

// NewManual creates a Manual clock starting at a fixed epoch.
func NewManual() *Manual {
	return &Manual{now: time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock: it advances virtual time by d without blocking.
func (m *Manual) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
	m.slept = append(m.slept, d)
	m.total += d
}

// Advance moves virtual time forward without recording a sleep.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
}

// Slept returns a copy of all recorded sleep durations in order.
func (m *Manual) Slept() []time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]time.Duration(nil), m.slept...)
}

// TotalSlept returns the sum of all recorded sleeps.
func (m *Manual) TotalSlept() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}
