// Package vclock abstracts time so that the live SeSeMI stack and the
// discrete-event experiment harness can share components.
//
// Modeled latencies (enclave creation, attestation round trips, model
// downloads — see internal/costmodel) are injected through a Clock. The live
// servers use Real (optionally time-scaled so integration tests don't spend
// seconds in modeled sleeps); unit tests use Manual, which advances
// instantly and records every sleep.
package vclock

import (
	"sync"
	"time"
)

// Clock supplies the current time and modeled delays.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep blocks for the (possibly scaled) duration d.
	Sleep(d time.Duration)
}

// Timer is the optional Clock extension for code that waits in a select
// instead of blocking in Sleep (periodic loops that must also observe a stop
// channel, like the cluster's keep-warm reaper). Manual implements it with
// virtual-time timers, so such loops become deterministically drivable from
// tests.
type Timer interface {
	// After returns a channel that delivers the (possibly virtual) time once
	// d has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// After waits on c's own timebase when the clock implements Timer (Manual's
// virtual timers, Real's scaled wall timers); any other Clock falls back to
// the unscaled wall clock.
func After(c Clock, d time.Duration) <-chan time.Time {
	if t, ok := c.(Timer); ok {
		return t.After(d)
	}
	return time.After(d)
}

// Real is a wall-clock Clock. Scale < 1 compresses modeled sleeps, e.g.
// Scale = 0.01 turns a modeled 1.04 s enclave creation into 10.4 ms of wall
// time; Now still reports wall time. Scale 0 means "do not sleep at all".
type Real struct {
	// Scale multiplies every Sleep duration. Zero disables sleeping.
	Scale float64
}

// System is the pass-through wall clock.
var System = Real{Scale: 1}

// Now implements Clock.
func (r Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (r Real) Sleep(d time.Duration) {
	if r.Scale <= 0 || d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) * r.Scale))
}

// After implements Timer with the same scaling as Sleep — except Scale 0,
// which ticks UNSCALED wall time instead of firing immediately: a muted
// clock skips modeled latencies, but a periodic loop waiting on After (the
// cluster reaper, the autoscale control loop) would busy-spin at 100% CPU
// if its interval collapsed to zero. Operational intervals are not modeled
// latencies.
func (r Real) After(d time.Duration) <-chan time.Time {
	if d <= 0 {
		ch := make(chan time.Time, 1)
		ch <- time.Now()
		return ch
	}
	if r.Scale <= 0 {
		return time.After(d)
	}
	return time.After(time.Duration(float64(d) * r.Scale))
}

// Manual is a deterministic clock for tests: Sleep returns immediately,
// advancing virtual time and recording the request. Timers created with
// After fire when Advance or Sleep moves virtual time past their deadline.
// It is safe for concurrent use.
type Manual struct {
	mu     sync.Mutex
	now    time.Time
	slept  []time.Duration
	total  time.Duration
	timers []manualTimer
}

type manualTimer struct {
	at time.Time
	ch chan time.Time
}

// NewManual creates a Manual clock starting at a fixed epoch.
func NewManual() *Manual {
	return &Manual{now: time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock: it advances virtual time by d without blocking.
func (m *Manual) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
	m.slept = append(m.slept, d)
	m.total += d
	m.fireLocked()
}

// Advance moves virtual time forward without recording a sleep.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
	m.fireLocked()
}

// After implements Timer: the returned channel delivers once virtual time
// reaches now+d. A non-positive d fires immediately.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.timers = append(m.timers, manualTimer{at: m.now.Add(d), ch: ch})
	return ch
}

// fireLocked delivers every timer due at the current virtual time. Caller
// holds m.mu. Channels are buffered, so delivery never blocks.
func (m *Manual) fireLocked() {
	kept := m.timers[:0]
	for _, t := range m.timers {
		if !t.at.After(m.now) {
			t.ch <- m.now
			continue
		}
		kept = append(kept, t)
	}
	m.timers = kept
}

// Slept returns a copy of all recorded sleep durations in order.
func (m *Manual) Slept() []time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]time.Duration(nil), m.slept...)
}

// TotalSlept returns the sum of all recorded sleeps.
func (m *Manual) TotalSlept() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}
