package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestRealScaleZeroDoesNotBlock(t *testing.T) {
	c := Real{Scale: 0}
	start := time.Now()
	c.Sleep(10 * time.Second)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("Scale 0 slept")
	}
}

func TestRealScaleCompresses(t *testing.T) {
	c := Real{Scale: 0.001}
	start := time.Now()
	c.Sleep(2 * time.Second) // scaled to 2ms
	el := time.Since(start)
	if el < 1*time.Millisecond || el > 500*time.Millisecond {
		t.Fatalf("scaled sleep took %v", el)
	}
}

func TestManualAdvances(t *testing.T) {
	m := NewManual()
	t0 := m.Now()
	m.Sleep(3 * time.Second)
	if got := m.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("virtual time advanced %v, want 3s", got)
	}
	m.Advance(time.Second)
	if got := m.Now().Sub(t0); got != 4*time.Second {
		t.Fatalf("after Advance: %v, want 4s", got)
	}
	if m.TotalSlept() != 3*time.Second {
		t.Fatalf("TotalSlept %v, want 3s (Advance must not count)", m.TotalSlept())
	}
	if n := len(m.Slept()); n != 1 {
		t.Fatalf("Slept records %d entries, want 1", n)
	}
}

func TestManualNegativeSleepClamped(t *testing.T) {
	m := NewManual()
	m.Sleep(-time.Second)
	if m.TotalSlept() != 0 {
		t.Fatalf("negative sleep counted: %v", m.TotalSlept())
	}
}

func TestManualAfterFiresOnAdvance(t *testing.T) {
	m := NewManual()
	ch := m.After(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before its deadline")
	default:
	}
	m.Advance(3 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired 2s early")
	default:
	}
	m.Advance(2 * time.Second)
	select {
	case at := <-ch:
		if got := at.Sub(NewManual().Now()); got != 5*time.Second {
			t.Fatalf("fired at +%v, want +5s", got)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestManualAfterFiresOnSleep(t *testing.T) {
	m := NewManual()
	ch := m.After(time.Second)
	m.Sleep(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("Sleep past the deadline did not fire the timer")
	}
}

func TestManualAfterNonPositiveImmediate(t *testing.T) {
	m := NewManual()
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestAfterHelperFallsBackToWallClock(t *testing.T) {
	// A Clock that is not a Timer waits on the wall clock.
	select {
	case <-After(fixedClock{}, time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("fallback timer never fired")
	}
	// Manual routes through its virtual timers: no wall time passes.
	m := NewManual()
	ch := After(m, time.Hour)
	m.Advance(time.Hour)
	select {
	case <-ch:
	default:
		t.Fatal("After(Manual) did not use virtual timers")
	}
}

// fixedClock is a minimal non-Timer Clock for the fallback test.
type fixedClock struct{}

func (fixedClock) Now() time.Time      { return time.Unix(0, 0) }
func (fixedClock) Sleep(time.Duration) {}

func TestRealAfterScaleZeroTicksWallTime(t *testing.T) {
	// A muted clock's After must NOT fire immediately — periodic loops wait
	// on it, and an immediate fire would busy-spin them. It ticks unscaled
	// wall time instead.
	select {
	case <-Real{Scale: 0}.After(time.Hour):
		t.Fatal("Real{Scale: 0}.After fired immediately")
	default:
	}
	select {
	case <-Real{Scale: 0}.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real{Scale: 0}.After never fired on wall time")
	}
	// Non-positive d still fires at once (nothing to wait for).
	select {
	case <-Real{Scale: 0}.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestManualConcurrentSafety(t *testing.T) {
	m := NewManual()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Sleep(time.Millisecond)
			m.Now()
		}()
	}
	wg.Wait()
	if m.TotalSlept() != 50*time.Millisecond {
		t.Fatalf("TotalSlept %v, want 50ms", m.TotalSlept())
	}
}
