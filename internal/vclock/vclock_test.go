package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestRealScaleZeroDoesNotBlock(t *testing.T) {
	c := Real{Scale: 0}
	start := time.Now()
	c.Sleep(10 * time.Second)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("Scale 0 slept")
	}
}

func TestRealScaleCompresses(t *testing.T) {
	c := Real{Scale: 0.001}
	start := time.Now()
	c.Sleep(2 * time.Second) // scaled to 2ms
	el := time.Since(start)
	if el < 1*time.Millisecond || el > 500*time.Millisecond {
		t.Fatalf("scaled sleep took %v", el)
	}
}

func TestManualAdvances(t *testing.T) {
	m := NewManual()
	t0 := m.Now()
	m.Sleep(3 * time.Second)
	if got := m.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("virtual time advanced %v, want 3s", got)
	}
	m.Advance(time.Second)
	if got := m.Now().Sub(t0); got != 4*time.Second {
		t.Fatalf("after Advance: %v, want 4s", got)
	}
	if m.TotalSlept() != 3*time.Second {
		t.Fatalf("TotalSlept %v, want 3s (Advance must not count)", m.TotalSlept())
	}
	if n := len(m.Slept()); n != 1 {
		t.Fatalf("Slept records %d entries, want 1", n)
	}
}

func TestManualNegativeSleepClamped(t *testing.T) {
	m := NewManual()
	m.Sleep(-time.Second)
	if m.TotalSlept() != 0 {
		t.Fatalf("negative sleep counted: %v", m.TotalSlept())
	}
}

func TestManualConcurrentSafety(t *testing.T) {
	m := NewManual()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Sleep(time.Millisecond)
			m.Now()
		}()
	}
	wg.Wait()
	if m.TotalSlept() != 50*time.Millisecond {
		t.Fatalf("TotalSlept %v, want 50ms", m.TotalSlept())
	}
}
