package tensor

import (
	"fmt"
	"math"
)

// Padding selects how convolution and pooling handle borders.
type Padding int

const (
	// Valid applies no padding; the output shrinks by kernel-1.
	Valid Padding = iota
	// Same pads the input so that output spatial size = ceil(in/stride).
	Same
)

func (p Padding) String() string {
	if p == Same {
		return "same"
	}
	return "valid"
}

// convOut computes the output spatial size and the leading pad amount.
func convOut(in, k, stride int, pad Padding) (out, before int) {
	if pad == Same {
		out = (in + stride - 1) / stride
		total := (out-1)*stride + k - in
		if total < 0 {
			total = 0
		}
		return out, total / 2
	}
	return (in-k)/stride + 1, 0
}

// ConvShape returns the NHWC output shape of a Conv2D with the given input
// shape [n,h,w,c], kernel [kh,kw,c,oc], stride and padding.
func ConvShape(in []int, kh, kw, oc, stride int, pad Padding) []int {
	oh, _ := convOut(in[1], kh, stride, pad)
	ow, _ := convOut(in[2], kw, stride, pad)
	return []int{in[0], oh, ow, oc}
}

// Conv2D computes a 2-D convolution.
//
//	in:   [n, h, w, c]
//	w:    [kh, kw, c, oc]
//	bias: [oc] or nil
//	out:  [n, oh, ow, oc]
func Conv2D(out, in, w, bias *Tensor, stride int, pad Padding) error {
	if in.Rank() != 4 || w.Rank() != 4 {
		return fmt.Errorf("%w: Conv2D wants rank-4 tensors, got %v and %v", ErrShape, in.shape, w.shape)
	}
	n, h, wd, c := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	kh, kw, wc, oc := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	if wc != c {
		return fmt.Errorf("%w: Conv2D input channels %d != weight channels %d", ErrShape, c, wc)
	}
	oh, padH := convOut(h, kh, stride, pad)
	ow, padW := convOut(wd, kw, stride, pad)
	want := []int{n, oh, ow, oc}
	if !shapeEq(out.shape, want) {
		return fmt.Errorf("%w: Conv2D output %v, want %v", ErrShape, out.shape, want)
	}
	if bias != nil && bias.Len() != oc {
		return fmt.Errorf("%w: Conv2D bias %v, want [%d]", ErrShape, bias.shape, oc)
	}
	id, wdta, od := in.data, w.data, out.data
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - padH
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - padW
				outBase := ((b*oh+oy)*ow + ox) * oc
				for k := 0; k < oc; k++ {
					var acc float32
					if bias != nil {
						acc = bias.data[k]
					}
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= wd {
								continue
							}
							inBase := ((b*h+iy)*wd + ix) * c
							wBase := ((ky*kw+kx)*c)*oc + k
							for ci := 0; ci < c; ci++ {
								acc += id[inBase+ci] * wdta[wBase+ci*oc]
							}
						}
					}
					od[outBase+k] = acc
				}
			}
		}
	}
	return nil
}

// DepthwiseConv2D computes a depthwise convolution (channel multiplier 1).
//
//	in:  [n, h, w, c]
//	w:   [kh, kw, c]
//	bias:[c] or nil
//	out: [n, oh, ow, c]
func DepthwiseConv2D(out, in, w, bias *Tensor, stride int, pad Padding) error {
	if in.Rank() != 4 || w.Rank() != 3 {
		return fmt.Errorf("%w: DepthwiseConv2D in %v w %v", ErrShape, in.shape, w.shape)
	}
	n, h, wd, c := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	kh, kw, wc := w.Dim(0), w.Dim(1), w.Dim(2)
	if wc != c {
		return fmt.Errorf("%w: DepthwiseConv2D channels %d != %d", ErrShape, c, wc)
	}
	oh, padH := convOut(h, kh, stride, pad)
	ow, padW := convOut(wd, kw, stride, pad)
	want := []int{n, oh, ow, c}
	if !shapeEq(out.shape, want) {
		return fmt.Errorf("%w: DepthwiseConv2D output %v, want %v", ErrShape, out.shape, want)
	}
	if bias != nil && bias.Len() != c {
		return fmt.Errorf("%w: DepthwiseConv2D bias %v, want [%d]", ErrShape, bias.shape, c)
	}
	id, wdta, od := in.data, w.data, out.data
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - padH
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - padW
				outBase := ((b*oh+oy)*ow + ox) * c
				for ci := 0; ci < c; ci++ {
					var acc float32
					if bias != nil {
						acc = bias.data[ci]
					}
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= wd {
								continue
							}
							acc += id[((b*h+iy)*wd+ix)*c+ci] * wdta[(ky*kw+kx)*c+ci]
						}
					}
					od[outBase+ci] = acc
				}
			}
		}
	}
	return nil
}

// Dense computes out = in·w + bias for a batch of row vectors.
//
//	in:   [n, k]
//	w:    [k, m]
//	bias: [m] or nil
//	out:  [n, m]
func Dense(out, in, w, bias *Tensor) error {
	if in.Rank() != 2 || w.Rank() != 2 || out.Rank() != 2 {
		return fmt.Errorf("%w: Dense wants rank-2 tensors", ErrShape)
	}
	n, k := in.Dim(0), in.Dim(1)
	wk, m := w.Dim(0), w.Dim(1)
	if wk != k || out.Dim(0) != n || out.Dim(1) != m {
		return fmt.Errorf("%w: Dense in %v w %v out %v", ErrShape, in.shape, w.shape, out.shape)
	}
	if bias != nil && bias.Len() != m {
		return fmt.Errorf("%w: Dense bias %v, want [%d]", ErrShape, bias.shape, m)
	}
	for b := 0; b < n; b++ {
		inRow := in.data[b*k : (b+1)*k]
		outRow := out.data[b*m : (b+1)*m]
		if bias != nil {
			copy(outRow, bias.data)
		} else {
			for j := range outRow {
				outRow[j] = 0
			}
		}
		for i := 0; i < k; i++ {
			x := inRow[i]
			if x == 0 {
				continue
			}
			wRow := w.data[i*m : (i+1)*m]
			for j, wv := range wRow {
				outRow[j] += x * wv
			}
		}
	}
	return nil
}

// BatchNorm applies a per-channel affine transform y = x*scale + shift over
// the last dimension. scale and shift must have length = last dim of in.
func BatchNorm(out, in, scale, shift *Tensor) error {
	c := in.Dim(in.Rank() - 1)
	if scale.Len() != c || shift.Len() != c || !SameShape(out, in) {
		return fmt.Errorf("%w: BatchNorm in %v scale %v shift %v", ErrShape, in.shape, scale.shape, shift.shape)
	}
	for i, v := range in.data {
		ci := i % c
		out.data[i] = v*scale.data[ci] + shift.data[ci]
	}
	return nil
}

// ReLU computes out = max(in, 0).
func ReLU(out, in *Tensor) error {
	if !SameShape(out, in) {
		return fmt.Errorf("%w: ReLU %v vs %v", ErrShape, out.shape, in.shape)
	}
	for i, v := range in.data {
		if v > 0 {
			out.data[i] = v
		} else {
			out.data[i] = 0
		}
	}
	return nil
}

// ReLU6 computes out = min(max(in, 0), 6), the MobileNet activation.
func ReLU6(out, in *Tensor) error {
	if !SameShape(out, in) {
		return fmt.Errorf("%w: ReLU6 %v vs %v", ErrShape, out.shape, in.shape)
	}
	for i, v := range in.data {
		switch {
		case v <= 0:
			out.data[i] = 0
		case v >= 6:
			out.data[i] = 6
		default:
			out.data[i] = v
		}
	}
	return nil
}

// Add computes out = a + b elementwise (residual connections).
func Add(out, a, b *Tensor) error {
	if !SameShape(a, b) || !SameShape(out, a) {
		return fmt.Errorf("%w: Add %v + %v -> %v", ErrShape, a.shape, b.shape, out.shape)
	}
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return nil
}

// ConcatChannels concatenates NHWC tensors along the channel axis
// (DenseNet-style feature reuse).
func ConcatChannels(out *Tensor, ins ...*Tensor) error {
	if len(ins) == 0 {
		return fmt.Errorf("%w: ConcatChannels with no inputs", ErrShape)
	}
	n, h, w := ins[0].Dim(0), ins[0].Dim(1), ins[0].Dim(2)
	total := 0
	for _, in := range ins {
		if in.Rank() != 4 || in.Dim(0) != n || in.Dim(1) != h || in.Dim(2) != w {
			return fmt.Errorf("%w: ConcatChannels input %v", ErrShape, in.shape)
		}
		total += in.Dim(3)
	}
	want := []int{n, h, w, total}
	if !shapeEq(out.shape, want) {
		return fmt.Errorf("%w: ConcatChannels out %v, want %v", ErrShape, out.shape, want)
	}
	pixels := n * h * w
	for p := 0; p < pixels; p++ {
		off := p * total
		for _, in := range ins {
			c := in.Dim(3)
			copy(out.data[off:off+c], in.data[p*c:(p+1)*c])
			off += c
		}
	}
	return nil
}

// MaxPool2D applies spatial max pooling with a square k×k window.
func MaxPool2D(out, in *Tensor, k, stride int, pad Padding) error {
	return pool2d(out, in, k, stride, pad, true)
}

// AvgPool2D applies spatial average pooling with a square k×k window.
// Border windows average only over valid elements, matching TFLite.
func AvgPool2D(out, in *Tensor, k, stride int, pad Padding) error {
	return pool2d(out, in, k, stride, pad, false)
}

func pool2d(out, in *Tensor, k, stride int, pad Padding, isMax bool) error {
	if in.Rank() != 4 {
		return fmt.Errorf("%w: pool wants rank-4 input", ErrShape)
	}
	n, h, w, c := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	oh, padH := convOut(h, k, stride, pad)
	ow, padW := convOut(w, k, stride, pad)
	want := []int{n, oh, ow, c}
	if !shapeEq(out.shape, want) {
		return fmt.Errorf("%w: pool out %v, want %v", ErrShape, out.shape, want)
	}
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - padH
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - padW
				outBase := ((b*oh+oy)*ow + ox) * c
				for ci := 0; ci < c; ci++ {
					best := float32(math.Inf(-1))
					sum := float32(0)
					count := 0
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := in.data[((b*h+iy)*w+ix)*c+ci]
							if v > best {
								best = v
							}
							sum += v
							count++
						}
					}
					if isMax {
						out.data[outBase+ci] = best
					} else if count > 0 {
						out.data[outBase+ci] = sum / float32(count)
					}
				}
			}
		}
	}
	return nil
}

// GlobalAvgPool reduces [n,h,w,c] to [n,c] by averaging over space.
func GlobalAvgPool(out, in *Tensor) error {
	if in.Rank() != 4 || out.Rank() != 2 || out.Dim(0) != in.Dim(0) || out.Dim(1) != in.Dim(3) {
		return fmt.Errorf("%w: GlobalAvgPool in %v out %v", ErrShape, in.shape, out.shape)
	}
	n, h, w, c := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	area := float32(h * w)
	for b := 0; b < n; b++ {
		outRow := out.data[b*c : (b+1)*c]
		for j := range outRow {
			outRow[j] = 0
		}
		for p := 0; p < h*w; p++ {
			row := in.data[(b*h*w+p)*c : (b*h*w+p+1)*c]
			for j, v := range row {
				outRow[j] += v
			}
		}
		for j := range outRow {
			outRow[j] /= area
		}
	}
	return nil
}

// Softmax computes a numerically stable softmax over the last dimension.
func Softmax(out, in *Tensor) error {
	if !SameShape(out, in) {
		return fmt.Errorf("%w: Softmax %v vs %v", ErrShape, out.shape, in.shape)
	}
	c := in.Dim(in.Rank() - 1)
	rows := in.Len() / c
	for r := 0; r < rows; r++ {
		row := in.data[r*c : (r+1)*c]
		orow := out.data[r*c : (r+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			orow[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range orow {
			orow[j] *= inv
		}
	}
	return nil
}

// ArgMax returns the index of the largest element of the last dimension of
// the first row. It is the conventional "predicted class" helper.
func ArgMax(t *Tensor) int {
	c := t.Dim(t.Rank() - 1)
	best, bi := float32(math.Inf(-1)), 0
	for i := 0; i < c; i++ {
		if t.data[i] > best {
			best, bi = t.data[i], i
		}
	}
	return bi
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
