package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	for i, v := range tt.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if tt.SizeBytes() != 96 {
		t.Fatalf("SizeBytes = %d, want 96", tt.SizeBytes())
	}
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("FromSlice accepted mismatched length")
	}
	tt, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.At(1, 0); got != 3 {
		t.Fatalf("At(1,0) = %v, want 3", got)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3)
	tt.Set(7, 1, 2)
	if got := tt.At(1, 2); got != 7 {
		t.Fatalf("At = %v, want 7", got)
	}
	if got := tt.Data()[5]; got != 7 {
		t.Fatalf("row-major offset wrong: %v", got)
	}
}

func TestReshape(t *testing.T) {
	tt := New(2, 6)
	tt.Set(5, 1, 0)
	r, err := tt.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.At(1, 2) != 5 {
		t.Fatalf("reshaped view lost data")
	}
	if _, err := tt.Reshape(5, 5); err == nil {
		t.Fatal("Reshape accepted size change")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(4)
	a.Fill(1)
	b := a.Clone()
	b.Set(9, 2)
	if a.At(2) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestConvOutSamePadding(t *testing.T) {
	cases := []struct {
		in, k, stride  int
		wantOut, wantP int
	}{
		{8, 3, 1, 8, 1},
		{8, 3, 2, 4, 0},
		{7, 3, 2, 4, 1},
		{8, 1, 1, 8, 0},
	}
	for _, c := range cases {
		out, p := convOut(c.in, c.k, c.stride, Same)
		if out != c.wantOut || p != c.wantP {
			t.Errorf("convOut(%d,%d,%d,Same) = (%d,%d), want (%d,%d)",
				c.in, c.k, c.stride, out, p, c.wantOut, c.wantP)
		}
	}
}

// TestConv2DIdentity checks that a 1x1 identity kernel reproduces its input.
func TestConv2DIdentity(t *testing.T) {
	in := New(1, 3, 3, 2)
	for i := range in.Data() {
		in.Data()[i] = float32(i)
	}
	w := New(1, 1, 2, 2) // identity over channels
	w.Set(1, 0, 0, 0, 0)
	w.Set(1, 0, 0, 1, 1)
	out := New(1, 3, 3, 2)
	if err := Conv2D(out, in, w, nil, 1, Valid); err != nil {
		t.Fatal(err)
	}
	for i := range in.Data() {
		if out.Data()[i] != in.Data()[i] {
			t.Fatalf("identity conv mismatch at %d: %v != %v", i, out.Data()[i], in.Data()[i])
		}
	}
}

// TestConv2DKnown verifies a hand-computed 2x2 valid convolution.
func TestConv2DKnown(t *testing.T) {
	in, _ := FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 2, 2, 1)
	w, _ := FromSlice([]float32{1, 1, 1, 1}, 2, 2, 1, 1)
	bias, _ := FromSlice([]float32{0.5}, 1)
	out := New(1, 1, 1, 1)
	if err := Conv2D(out, in, w, bias, 1, Valid); err != nil {
		t.Fatal(err)
	}
	if got := out.At(0, 0, 0, 0); got != 10.5 {
		t.Fatalf("conv = %v, want 10.5", got)
	}
}

func TestConv2DSamePaddingShape(t *testing.T) {
	in := New(1, 7, 7, 3)
	w := New(3, 3, 3, 8)
	shape := ConvShape(in.Shape(), 3, 3, 8, 2, Same)
	out := New(shape...)
	if err := Conv2D(out, in, w, nil, 2, Same); err != nil {
		t.Fatal(err)
	}
	if out.Dim(1) != 4 || out.Dim(2) != 4 {
		t.Fatalf("same-pad stride-2 output %v, want 4x4", out.Shape())
	}
}

func TestConv2DShapeErrors(t *testing.T) {
	in := New(1, 4, 4, 3)
	w := New(3, 3, 2, 8) // wrong input channels
	out := New(1, 2, 2, 8)
	if err := Conv2D(out, in, w, nil, 1, Valid); err == nil {
		t.Fatal("Conv2D accepted mismatched channels")
	}
}

// TestDepthwiseKnown verifies depthwise conv keeps channels independent.
func TestDepthwiseKnown(t *testing.T) {
	in, _ := FromSlice([]float32{
		1, 10,
		2, 20,
		3, 30,
		4, 40,
	}, 1, 2, 2, 2)
	w, _ := FromSlice([]float32{
		1, 0,
		1, 0,
		1, 0,
		1, 0,
	}, 2, 2, 2)
	out := New(1, 1, 1, 2)
	if err := DepthwiseConv2D(out, in, w, nil, 1, Valid); err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != 10 {
		t.Fatalf("channel 0 = %v, want 10", out.At(0, 0, 0, 0))
	}
	if out.At(0, 0, 0, 1) != 0 {
		t.Fatalf("channel 1 = %v, want 0 (zero kernel)", out.At(0, 0, 0, 1))
	}
}

func TestDenseKnown(t *testing.T) {
	in, _ := FromSlice([]float32{1, 2}, 1, 2)
	w, _ := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3)
	bias, _ := FromSlice([]float32{10, 20, 30}, 3)
	out := New(1, 3)
	if err := Dense(out, in, w, bias); err != nil {
		t.Fatal(err)
	}
	want := []float32{19, 32, 45}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("dense[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestDenseBatch(t *testing.T) {
	in, _ := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	w, _ := FromSlice([]float32{3, 4, 5, 6}, 2, 2)
	out := New(2, 2)
	if err := Dense(out, in, w, nil); err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 3 || out.At(1, 1) != 6 {
		t.Fatalf("batch dense wrong: %v", out.Data())
	}
}

func TestBatchNorm(t *testing.T) {
	in, _ := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	scale, _ := FromSlice([]float32{2, 3}, 2)
	shift, _ := FromSlice([]float32{1, -1}, 2)
	out := New(2, 2)
	if err := BatchNorm(out, in, scale, shift); err != nil {
		t.Fatal(err)
	}
	want := []float32{3, 5, 7, 11}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("bn[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestReLUVariants(t *testing.T) {
	in, _ := FromSlice([]float32{-2, 0, 3, 8}, 4)
	out := New(4)
	if err := ReLU(out, in); err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 0 || out.Data()[3] != 8 {
		t.Fatalf("relu: %v", out.Data())
	}
	if err := ReLU6(out, in); err != nil {
		t.Fatal(err)
	}
	if out.Data()[3] != 6 {
		t.Fatalf("relu6 cap failed: %v", out.Data())
	}
}

func TestAddResidual(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2}, 2)
	b, _ := FromSlice([]float32{10, 20}, 2)
	out := New(2)
	if err := Add(out, a, b); err != nil {
		t.Fatal(err)
	}
	if out.Data()[1] != 22 {
		t.Fatalf("add: %v", out.Data())
	}
}

func TestConcatChannels(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 1, 2)
	b, _ := FromSlice([]float32{9, 10}, 1, 2, 1, 1)
	out := New(1, 2, 1, 3)
	if err := ConcatChannels(out, a, b); err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 9, 3, 4, 10}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("concat[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestMaxPool(t *testing.T) {
	in, _ := FromSlice([]float32{
		1, 5,
		3, 2,
	}, 1, 2, 2, 1)
	out := New(1, 1, 1, 1)
	if err := MaxPool2D(out, in, 2, 2, Valid); err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != 5 {
		t.Fatalf("maxpool = %v, want 5", out.At(0, 0, 0, 0))
	}
}

func TestAvgPoolBorder(t *testing.T) {
	in, _ := FromSlice([]float32{1, 2, 3}, 1, 1, 3, 1)
	out := New(1, 1, 2, 1)
	if err := AvgPool2D(out, in, 2, 2, Same); err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != 1.5 {
		t.Fatalf("avg[0] = %v, want 1.5", out.At(0, 0, 0, 0))
	}
	if out.At(0, 0, 1, 0) != 3 {
		t.Fatalf("avg[1] = %v, want 3 (border averages valid only)", out.At(0, 0, 1, 0))
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 1, 2, 2, 2)
	out := New(1, 2)
	if err := GlobalAvgPool(out, in); err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 4 || out.At(0, 1) != 5 {
		t.Fatalf("gap = %v, want [4 5]", out.Data())
	}
}

func TestSoftmaxProperties(t *testing.T) {
	in, _ := FromSlice([]float32{1, 2, 3, 1000, 1001, 999}, 2, 3)
	out := New(2, 3)
	if err := Softmax(out, in); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		var sum float64
		for c := 0; c < 3; c++ {
			v := out.At(r, c)
			if v < 0 || v > 1 || math.IsNaN(float64(v)) {
				t.Fatalf("softmax out of range / NaN: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestArgMax(t *testing.T) {
	tt, _ := FromSlice([]float32{0.1, 0.7, 0.2}, 1, 3)
	if ArgMax(tt) != 1 {
		t.Fatalf("ArgMax = %d, want 1", ArgMax(tt))
	}
}

// Property: softmax output always sums to 1 and is invariant to shifting the
// logits by a constant.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(raw []float32, shift float32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				raw[i] = 0
			}
			// keep logits in a sane range
			raw[i] = float32(math.Mod(float64(raw[i]), 50))
		}
		shift = float32(math.Mod(float64(shift), 50))
		in, _ := FromSlice(raw, len(raw))
		shifted := New(len(raw))
		for i, v := range raw {
			shifted.Data()[i] = v + shift
		}
		a, b := New(len(raw)), New(len(raw))
		if Softmax(a, in) != nil || Softmax(b, shifted) != nil {
			return false
		}
		var sum float64
		for i := range a.Data() {
			sum += float64(a.Data()[i])
			if math.Abs(float64(a.Data()[i]-b.Data()[i])) > 1e-4 {
				return false
			}
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(xs []float32) bool {
		if len(xs) < 2 {
			return true
		}
		n := len(xs) / 2 * 2
		a, _ := FromSlice(xs[:n/2], n/2)
		b, _ := FromSlice(xs[n/2:n], n/2)
		ab, ba := New(n/2), New(n/2)
		if Add(ab, a, b) != nil || Add(ba, b, a) != nil {
			return false
		}
		for i := range ab.Data() {
			x, y := ab.Data()[i], ba.Data()[i]
			if x != y && !(math.IsNaN(float64(x)) && math.IsNaN(float64(y))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a stride-1 valid Conv2D with an all-ones 1x1 single-output-channel
// kernel computes the channel sum at every pixel.
func TestConvChannelSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		h, w, c := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(4)
		in := New(1, h, w, c)
		for i := range in.Data() {
			in.Data()[i] = rng.Float32()*2 - 1
		}
		k := New(1, 1, c, 1)
		k.Fill(1)
		out := New(1, h, w, 1)
		if err := Conv2D(out, in, k, nil, 1, Valid); err != nil {
			t.Fatal(err)
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var want float32
				for ci := 0; ci < c; ci++ {
					want += in.At(0, y, x, ci)
				}
				got := out.At(0, y, x, 0)
				if math.Abs(float64(got-want)) > 1e-4 {
					t.Fatalf("channel sum at (%d,%d): %v, want %v", y, x, got, want)
				}
			}
		}
	}
}

// Property: MaxPool output never exceeds the global max of the input and the
// global max survives pooling that covers the whole input.
func TestMaxPoolBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		h := 2 + rng.Intn(4)
		in := New(1, h, h, 1)
		var globalMax float32 = -100
		for i := range in.Data() {
			in.Data()[i] = rng.Float32()*10 - 5
			if in.Data()[i] > globalMax {
				globalMax = in.Data()[i]
			}
		}
		out := New(1, 1, 1, 1)
		if err := MaxPool2D(out, in, h, h, Valid); err != nil {
			t.Fatal(err)
		}
		if out.At(0, 0, 0, 0) != globalMax {
			t.Fatalf("full pool = %v, want global max %v", out.At(0, 0, 0, 0), globalMax)
		}
	}
}

func BenchmarkConv2D3x3(b *testing.B) {
	in := New(1, 32, 32, 16)
	w := New(3, 3, 16, 32)
	out := New(ConvShape(in.Shape(), 3, 3, 32, 1, Same)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Conv2D(out, in, w, nil, 1, Same); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDense(b *testing.B) {
	in := New(1, 1024)
	w := New(1024, 1000)
	out := New(1, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Dense(out, in, w, nil); err != nil {
			b.Fatal(err)
		}
	}
}
