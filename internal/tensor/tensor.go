// Package tensor provides a minimal float32 tensor type and the neural
// network kernels shared by the tinytvm and tinytflm inference frameworks.
//
// Layout is NHWC (batch, height, width, channels) for 4-D tensors, matching
// the convention of TFLite Micro. All kernels are pure Go and allocation-free
// when the caller supplies an output tensor of the right shape.
package tensor

import (
	"errors"
	"fmt"
)

// Tensor is a dense float32 tensor. The zero value is an empty tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// ErrShape reports an operation applied to tensors of incompatible shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is not
// copied; it must have exactly as many elements as the shape implies.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d elements for shape %v", ErrShape, len(data), shape)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// Shape returns the dimensions of the tensor. The caller must not modify it.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice in row-major order.
func (t *Tensor) Data() []float32 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// SizeBytes returns the size of the tensor payload in bytes.
func (t *Tensor) SizeBytes() int { return 4 * len(t.data) }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the tensor with a new shape covering the same
// number of elements. The data is shared with the receiver.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: reshape %v to %v", ErrShape, t.shape, shape)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}, nil
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero clears the tensor.
func (t *Tensor) Zero() { t.Fill(0) }

// String renders a compact description, e.g. "Tensor[1 28 28 3]".
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
