package sim

import (
	"time"
)

// Fault mirror: the discrete-event twin of the live fault-injection plane
// (internal/faults) and its recovery machinery (serverless breaker skip,
// gateway retry/failover). The engine is deterministic and the injection
// draws come from a seeded source, so the same (trace, FaultsSpec) replays
// to the identical Result — availability-under-faults curves are exact, not
// sampled. Simplifications vs the live path, by design: a crashed node's
// continuous-session members re-execute from step 0 on retry (the live
// gateway carries StepsDone), and breaker hysteresis collapses to the down
// flag (placement skips a down node outright instead of probing half-open).
type FaultsSpec struct {
	// Enabled turns the fault mirror on; everything below is ignored off.
	Enabled bool
	// Seed pins the injection draws (sandbox-crash coin flips).
	Seed int64
	// CrashNode / CrashAt kill one node at a virtual time: its sandboxes are
	// destroyed, its in-flight activations fail over, and placement skips it
	// (live: faults.Injector.CrashNode + the cluster breaker).
	CrashNode int
	CrashAt   time.Duration
	// RestoreAt brings the crashed node back (0 = never).
	RestoreAt time.Duration
	// SandboxCrashProb kills an activation mid-ECall with this probability
	// per dispatch (live: faults.Injector.SetSandboxCrashProb); the sandbox
	// dies with it.
	SandboxCrashProb float64
	// KSOutageAt / KSOutageUntil refuse key fetches inside the window
	// (live: faults.Injector.KeyServiceOutage).
	KSOutageAt, KSOutageUntil time.Duration
	// Retries is the per-request failover budget (live:
	// gateway.Config.MaxRetries). 0 = recovery off: faulted requests are
	// lost, the availability baseline the chaos experiment measures against.
	Retries int
	// RetryBackoff is the base failover delay, doubling per attempt with the
	// exponent capped like the live gateway's (default 1ms).
	RetryBackoff time.Duration
}

// scheduleFaults arms the spec's node-crash timeline on the engine.
func (s *Simulation) scheduleFaults() {
	f := s.cfg.Faults
	if !f.Enabled {
		return
	}
	if f.CrashAt > 0 && f.CrashNode >= 0 && f.CrashNode < len(s.nodes) {
		n := s.nodes[f.CrashNode]
		s.eng.At(f.CrashAt, func() { s.crashNode(n) })
		if f.RestoreAt > f.CrashAt {
			s.eng.At(f.RestoreAt, func() { s.restoreNode(n) })
		}
	}
}

// crashNode kills a node: every sandbox on it dies, placement skips it, and
// its in-flight activations discover the death at their next phase
// continuation and fail over (advance's dead-sandbox guard).
func (s *Simulation) crashNode(n *node) {
	n.down = true
	for name := range s.boxes {
		for _, sb := range append([]*sandbox(nil), s.boxes[name]...) {
			if sb.node == n {
				s.destroy(sb)
			}
		}
	}
	// Queued entries re-place immediately: affinity streams homed on the
	// dead node walk the re-home ladder, the global path picks live nodes.
	for ep := range s.queues {
		s.dispatch(ep)
	}
}

// restoreNode brings a crashed node back as an empty invoker (its enclave
// state died with it — sandboxes cold-start fresh, like the live restore).
func (s *Simulation) restoreNode(n *node) {
	n.down = false
	for ep := range s.queues {
		s.dispatch(ep)
	}
}

// ksDown reports whether the injected key-service outage covers virtual
// time now.
func (s *Simulation) ksDown(now time.Duration) bool {
	f := s.cfg.Faults
	return f.Enabled && f.KSOutageUntil > f.KSOutageAt &&
		now >= f.KSOutageAt && now < f.KSOutageUntil
}

// crashDraw flips the seeded sandbox-crash coin for one dispatch.
func (s *Simulation) crashDraw() bool {
	f := s.cfg.Faults
	return f.Enabled && f.SandboxCrashProb > 0 && s.frng.Float64() < f.SandboxCrashProb
}

// retryDelay is the failover backoff before attempt (1-based): base doubled
// per prior attempt, exponent capped — the live gateway's retryBackoff shape
// without its jitter (determinism over realism here).
func (s *Simulation) retryDelay(attempt int) time.Duration {
	base := s.cfg.Faults.RetryBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	exp := attempt - 1
	if exp > 6 {
		exp = 6
	}
	return base << uint(exp)
}

// failActivation handles a faulted queue entry (single request or formed
// batch): re-dispatch it within the retry budget — back to the head of its
// endpoint queue with the original arrive intact, the live gateway's
// fairness-neutral requeue — or count every member lost.
func (s *Simulation) failActivation(sb *sandbox, req *request) {
	now := s.eng.Now()
	if sb.state != sbDead {
		// The sandbox survived the fault (key-service outage): its slot
		// frees normally. A dead sandbox's bookkeeping died with it.
		s.releaseBatchSlot(sb, req, now)
	}
	f := s.cfg.Faults
	willRetry := f.Retries > 0 && req.retries < f.Retries
	key := s.streamKey(req)
	if s.cfg.Batch.MaxBatch > 1 && s.cfg.Batch.MaxInFlight > 0 &&
		(!s.cfg.Batch.DRR || !willRetry) {
		// The failed attempt's dispatch slot frees; a retried DRR entry
		// keeps its release slot across the backoff instead (the live
		// gateway holds its dispatch slot through retryBackoff the same
		// way), so the stream cannot over-release while failing over.
		if s.inflight[key]--; s.inflight[key] <= 0 {
			delete(s.inflight, key)
		}
	}
	if willRetry {
		req.retries++
		s.res.Retries++
		s.eng.After(s.retryDelay(req.retries), func() {
			s.queues[req.ep] = append([]*request{req}, s.queues[req.ep]...)
			s.dispatch(req.ep)
		})
		return
	}
	for _, m := range req.batchMembers() {
		s.res.Lost++
		s.rolloutLost(m.ev.ModelID)
		if s.cfg.Route != nil {
			s.cfg.Route.Done(m.ep, m.ev.ModelID)
		}
	}
	if s.cfg.Batch.DRR && s.cfg.Batch.MaxInFlight > 0 {
		// Lost DRR batches return their release slot like dropped ones, or
		// the stream blocks forever (dispatch's drop path, same shape).
		if h := s.holds[key]; h != nil && h.size > 0 {
			s.eng.After(0, func() {
				if h.size > 0 && !s.drrBlocked(key) {
					s.releaseDRR(key, h, s.eng.Now()-h.oldest >= s.cfg.Batch.MaxWait)
					s.armHoldTimer(key, h)
				}
			})
		}
	}
	s.dispatch(req.ep)
}

// failMember handles one continuous-session member stranded by its sandbox
// dying mid-session: re-queue it as its own entry (original arrive intact)
// within the retry budget, or count it lost. The live gateway re-queues
// stranded members individually the same way.
func (s *Simulation) failMember(m *request) {
	f := s.cfg.Faults
	if f.Retries > 0 && m.retries < f.Retries {
		re := &request{ev: m.ev, arrive: m.arrive, ep: m.ep, retries: m.retries + 1}
		s.res.Retries++
		s.eng.After(s.retryDelay(re.retries), func() {
			s.queues[re.ep] = append([]*request{re}, s.queues[re.ep]...)
			s.dispatch(re.ep)
		})
		return
	}
	s.res.Lost++
	s.rolloutLost(m.ev.ModelID)
	if s.cfg.Route != nil {
		s.cfg.Route.Done(m.ep, m.ev.ModelID)
	}
}
