package sim

import (
	"testing"
	"time"

	"sesemi/internal/workload"
)

// autoscaleWorld is the shared deployment both controllers run on: one
// moderately heavy (DSNet-class) two-slot action, so ramps genuinely outgrow
// the warm pool without saturating the node's cores, and a keep-warm short
// enough that troughs reap it — every ramp then exposes the
// reactive/predictive difference.
func autoscaleWorld(predictive bool) Config {
	cfg := Config{
		System:       SeSeMI,
		HW:           0, // SGX2
		Nodes:        1,
		NodeMemory:   16 << 30,
		KeepWarm:     20 * time.Second,
		SandboxStart: 500 * time.Millisecond,
		Actions: []ActionSpec{{
			Name: "fn", Framework: "tvm", Concurrency: 2, DefaultModel: "dsnet",
		}},
		Batch:          BatchSpec{MaxBatch: 4, MaxWait: 5 * time.Millisecond, MaxInFlight: 16},
		InvokeOverhead: 2 * time.Millisecond,
	}
	if predictive {
		cfg.Autoscale = AutoscaleSpec{
			Enabled:     true,
			Window:      time.Second,
			Horizon:     3, // ~one cold-start chain of lead at 1 s windows
			Headroom:    1,
			MaxWarm:     16,
			MinKeepWarm: 5 * time.Second,
		}
	}
	return cfg
}

// burstyTrace is the ramping workload: a diurnal sinusoid swinging
// 0.5↔8 rps every 80 s — gradual ramps a trend follower can anticipate,
// troughs long enough that the keep-warm reaper shrinks the pool between
// them.
func burstyTrace() workload.Trace {
	return workload.Diurnal(7, 8, 0.5, 80*time.Second, 320*time.Second, "dsnet", "u")
}

// TestPredictiveBeatsReactiveOnBurstyTrace is the deterministic mirror of
// the live BENCH_autoscale ranking: on a bursty trace the forecast-driven
// controller pays materially fewer cold-path requests and lower tail
// latency than the reactive start-on-pressure baseline, because warm
// (enclave-built) capacity lands before each ramp's queue forms.
func TestPredictiveBeatsReactiveOnBurstyTrace(t *testing.T) {
	tr := burstyTrace()
	reactive := runTrace(t, autoscaleWorld(false), tr)
	predictive := runTrace(t, autoscaleWorld(true), tr)

	if predictive.Prewarmed == 0 {
		t.Fatal("predictive run never prewarmed")
	}
	if reactive.Prewarmed != 0 {
		t.Fatalf("reactive run prewarmed %d sandboxes", reactive.Prewarmed)
	}
	if len(predictive.Requests) != len(tr) || len(reactive.Requests) != len(tr) {
		t.Fatalf("dropped requests: reactive %d predictive %d of %d",
			len(reactive.Requests), len(predictive.Requests), len(tr))
	}
	if predictive.Cold >= reactive.Cold {
		t.Fatalf("cold-path requests: predictive %d, reactive %d — no improvement",
			predictive.Cold, reactive.Cold)
	}
	p99p := predictive.All.Percentile(99)
	p99r := reactive.All.Percentile(99)
	if p99p >= p99r {
		t.Fatalf("ramp p99: predictive %v, reactive %v — no improvement", p99p, p99r)
	}
	t.Logf("bursty: reactive cold=%d p99=%v idle=%.0fs | predictive cold=%d p99=%v idle=%.0fs (prewarmed %d)",
		reactive.Cold, p99r, reactive.IdleSandboxSeconds,
		predictive.Cold, p99p, predictive.IdleSandboxSeconds, predictive.Prewarmed)
}

// TestPredictiveScaleDownShrinksIdleTime: after a burst dies, the adaptive
// keep-warm reaps the pool within ~MinKeepWarm plus a few adaptation
// windows, where the fixed deadline squats the full KeepWarm — fewer idle
// sandbox-seconds despite the predictive run's larger peak pool.
func TestPredictiveScaleDownShrinksIdleTime(t *testing.T) {
	tr := workload.Poisson(3, 8, 30*time.Second, "dsnet", "u")
	// The paper-style fixed deadline (60 s) on both sides: the reactive pool
	// squats it in full after the burst; the adaptive one reaps early.
	rcfg, pcfg := autoscaleWorld(false), autoscaleWorld(true)
	rcfg.KeepWarm, pcfg.KeepWarm = 60*time.Second, 60*time.Second
	reactive := runTrace(t, rcfg, tr)
	predictive := runTrace(t, pcfg, tr)
	if predictive.IdleSandboxSeconds >= reactive.IdleSandboxSeconds {
		t.Fatalf("idle sandbox-seconds: predictive %.1f, reactive %.1f — scale-down had no effect",
			predictive.IdleSandboxSeconds, reactive.IdleSandboxSeconds)
	}
	t.Logf("burst-then-idle: idle sandbox-seconds reactive %.1f, predictive %.1f",
		reactive.IdleSandboxSeconds, predictive.IdleSandboxSeconds)
}

// TestPredictiveSteadyTraceNoRegression: on a steady trace the controller
// must not cost throughput or tail latency — the no-regression half of the
// acceptance criteria, mirrored.
func TestPredictiveSteadyTraceNoRegression(t *testing.T) {
	tr := workload.Poisson(11, 4, 120*time.Second, "dsnet", "u")
	reactive := runTrace(t, autoscaleWorld(false), tr)
	predictive := runTrace(t, autoscaleWorld(true), tr)
	if len(predictive.Requests) != len(tr) {
		t.Fatalf("predictive dropped %d requests", len(tr)-len(predictive.Requests))
	}
	// Completion horizons within 5% of each other = throughput parity on an
	// open-loop trace where both complete everything.
	re, pe := reactive.End.Seconds(), predictive.End.Seconds()
	if pe > re*1.05 {
		t.Fatalf("steady completion horizon: predictive %.1fs vs reactive %.1fs (>5%% slower)", pe, re)
	}
	p99p, p99r := predictive.All.Percentile(99), reactive.All.Percentile(99)
	if p99p > p99r+p99r/2 {
		t.Fatalf("steady p99 regressed: predictive %v vs reactive %v", p99p, p99r)
	}
}

// TestAutoscaleDisabledIsInert: the zero-value spec must leave the
// simulation byte-for-byte reactive (no streams, no prewarms, no overrides).
func TestAutoscaleDisabledIsInert(t *testing.T) {
	tr := workload.Poisson(5, 10, 30*time.Second, "dsnet", "u")
	s, err := New(autoscaleWorld(false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prewarmed != 0 || len(s.asStreams) != 0 || len(s.asActs) != 0 {
		t.Fatalf("disabled autoscale left state: prewarmed=%d streams=%d acts=%d",
			res.Prewarmed, len(s.asStreams), len(s.asActs))
	}
}
