package sim

import (
	"testing"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/workload"
)

// runKeyLocalitySim serves 40 arrivals alternating between two users (so
// every formed 4-batch is the cache-hostile a,b,a,b interleaving) under one
// key-cache build and returns the run.
func runKeyLocalitySim(t *testing.T, cacheSize int, disable, group bool) *Result {
	t.Helper()
	cfg := Config{
		System: SeSeMI, HW: costmodel.SGX2, Nodes: 1,
		// One 128 MiB container fits: every batch lands on the same sandbox,
		// so the fetch counts measure cache persistence, not sandbox churn.
		NodeMemory:      128 << 20,
		Actions:         []ActionSpec{{Name: "fn", Framework: "tvm", Concurrency: 1, DefaultModel: "mbnet"}},
		KeyCacheSize:    cacheSize,
		DisableKeyCache: disable,
		Batch:           BatchSpec{MaxBatch: 4, MaxWait: 50 * time.Millisecond, GroupUsers: group},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr workload.Trace
	for i := 0; i < 40; i++ {
		user := "alice"
		if i%2 == 1 {
			user = "bob"
		}
		tr = append(tr, workload.Event{At: time.Duration(i) * 10 * time.Millisecond,
			ModelID: "mbnet", UserID: user})
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 || len(res.Requests) != 40 {
		t.Fatalf("served %d, dropped %d", len(res.Requests), res.Dropped)
	}
	return res
}

// TestSimKeyCacheFetchAccounting pins the key-fetch counts of every cache
// build on the alternating stream: the disabled cache and the historical
// single pair refetch on every member, grouping halves the single-pair cost
// (one fetch per user run), and the LRU collapses it to one fetch per
// principal for the whole run.
func TestSimKeyCacheFetchAccounting(t *testing.T) {
	disabled := runKeyLocalitySim(t, 0, true, false)
	if disabled.KeyFetches != 40 {
		t.Fatalf("disabled cache: %d fetches, want 40 (one per request)", disabled.KeyFetches)
	}
	single := runKeyLocalitySim(t, 1, false, false)
	if single.KeyFetches != 40 {
		t.Fatalf("single pair: %d fetches, want 40 (every a,b,a,b flip)", single.KeyFetches)
	}
	grouped := runKeyLocalitySim(t, 1, false, true)
	if grouped.KeyFetches != 20 {
		t.Fatalf("single pair grouped: %d fetches, want 20 (one per user run)", grouped.KeyFetches)
	}
	lru := runKeyLocalitySim(t, 0, false, false)
	if lru.KeyFetches != 2 {
		t.Fatalf("LRU: %d fetches, want 2 (one per principal)", lru.KeyFetches)
	}
	// The fetch savings must show up in latency: each saved fetch is a
	// KeyFetchWarm the batch does not serialize on.
	if !(lru.All.Mean() < grouped.All.Mean() && grouped.All.Mean() < single.All.Mean()) {
		t.Fatalf("mean latency ordering violated: lru %v, grouped %v, single %v",
			lru.All.Mean(), grouped.All.Mean(), single.All.Mean())
	}
}
