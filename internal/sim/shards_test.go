package sim

import (
	"testing"
	"time"

	"sesemi/internal/workload"
)

// traceManyUsers is 32 simultaneous single-request users of one model — a
// stream that forms ONE batch on an unsharded gateway and splits across
// shard-suffixed keys under Config.Shards.
func traceManyUsers() workload.Trace {
	tr := make(workload.Trace, 0, 32)
	for i := 0; i < 32; i++ {
		tr = append(tr, workload.Event{At: 0, ModelID: "mbnet", UserID: "u" + string(rune('a'+i))})
	}
	return tr
}

func TestShardsSplitBatchFormation(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 8)
	cfg.Batch = BatchSpec{MaxBatch: 32, MaxWait: 10 * time.Millisecond}

	base := runTrace(t, cfg, traceManyUsers())
	if base.Batches != 1 {
		t.Fatalf("unsharded run formed %d batches, want 1", base.Batches)
	}
	if base.PerShard != nil {
		t.Fatalf("unsharded run populated PerShard: %v", base.PerShard)
	}

	cfg.Shards = 4
	res := runTrace(t, cfg, traceManyUsers())
	if len(res.Requests) != 32 {
		t.Fatalf("sharded run completed %d requests, want 32", len(res.Requests))
	}
	// Users hash across shards, so the single stream must split into one
	// forming batch per populated shard — strictly more flushes than the
	// unsharded run's one.
	if res.Batches <= 1 {
		t.Fatalf("sharded run formed %d batches, want > 1 (stream should split per shard)", res.Batches)
	}
	if len(res.PerShard) != 4 {
		t.Fatalf("PerShard has %d entries, want 4", len(res.PerShard))
	}
	sum, populated := 0, 0
	for _, n := range res.PerShard {
		sum += n
		if n > 0 {
			populated++
		}
	}
	if sum != len(res.Requests) {
		t.Fatalf("PerShard sums to %d, want %d", sum, len(res.Requests))
	}
	if populated < 2 {
		t.Fatalf("only %d shard(s) saw traffic — 32 users should spread across 4", populated)
	}
}

// TestShardsOneIsUnsharded pins the mirror's zero-cost default: Shards ≤ 1
// leaves every observable result identical to an unsharded run.
func TestShardsOneIsUnsharded(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 8)
	cfg.Batch = BatchSpec{MaxBatch: 8, MaxWait: 5 * time.Millisecond, MaxInFlight: 2}

	unset := runTrace(t, cfg, traceManyUsers())
	cfg.Shards = 1
	one := runTrace(t, cfg, traceManyUsers())

	if unset.Batches != one.Batches || len(unset.Requests) != len(one.Requests) ||
		unset.End != one.End || unset.All.Mean() != one.All.Mean() {
		t.Fatalf("Shards=1 diverged from unsharded: batches %d/%d end %v/%v",
			unset.Batches, one.Batches, unset.End, one.End)
	}
	if one.PerShard != nil {
		t.Fatalf("Shards=1 populated PerShard: %v", one.PerShard)
	}
}

// TestShardsRespectPerShardInFlightBound verifies the MaxInFlight dispatch
// bound is enforced per shard-suffixed stream — the aggregate ceiling grows
// with the shard count, mirroring N gateways each owning their own
// MaxInFlight budget.
func TestShardsRespectPerShardInFlightBound(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 8)
	cfg.Nodes = 4
	cfg.Batch = BatchSpec{MaxBatch: 4, MaxWait: time.Millisecond, MaxInFlight: 1}
	cfg.Shards = 4

	res := runTrace(t, cfg, traceManyUsers())
	if len(res.Requests) != 32 {
		t.Fatalf("completed %d requests, want 32", len(res.Requests))
	}
	sum := 0
	for _, n := range res.PerShard {
		sum += n
	}
	if sum != 32 {
		t.Fatalf("PerShard sums to %d, want 32", sum)
	}
}
