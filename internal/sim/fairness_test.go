package sim

import (
	"testing"
	"time"

	"sesemi/internal/workload"
)

// floodTrace is one flooding user's burst plus a light user's sparse
// requests arriving while the burst is backlogged.
func floodTrace(burst int) workload.Trace {
	tr := workload.Trace{
		// Warm-up well ahead of the burst so everything below is hot-path.
		{At: 0, ModelID: "mbnet", UserID: "hog"},
	}
	for i := 0; i < burst; i++ {
		tr = append(tr, workload.Event{At: 10 * time.Second, ModelID: "mbnet", UserID: "hog"})
	}
	// The light user arrives just after the hog's burst is queued.
	for i := 0; i < 4; i++ {
		tr = append(tr, workload.Event{
			At:      10*time.Second + time.Duration(i+1)*10*time.Millisecond,
			ModelID: "mbnet", UserID: "alice",
		})
	}
	return tr
}

func lightLatency(t *testing.T, res *Result) time.Duration {
	t.Helper()
	var worst time.Duration
	n := 0
	for _, r := range res.Requests {
		if r.User != "alice" {
			continue
		}
		n++
		if lat := r.Latency(); lat > worst {
			worst = lat
		}
	}
	if n != 4 {
		t.Fatalf("light user served %d of 4", n)
	}
	return worst
}

// TestDRRProtectsLightUser mirrors the live fairness experiment in virtual
// time: with one flooding user backlogging the stream, the light user's
// worst-case latency under the DRR discipline must beat the FIFO batcher's
// by a wide margin — under FIFO its requests queue behind the entire burst,
// under DRR they ride one of the next few batches.
func TestDRRProtectsLightUser(t *testing.T) {
	run := func(drr bool) *Result {
		cfg := oneAction(SeSeMI, "tvm", "mbnet", 2)
		// One node with room for one sandbox: the burst must serialize, so a
		// backlog genuinely forms.
		cfg.NodeMemory = 192 << 20
		cfg.Batch = BatchSpec{MaxBatch: 4, MaxWait: 5 * time.Millisecond,
			MaxInFlight: 1, DRR: drr}
		return runTrace(t, cfg, floodTrace(128))
	}
	fifo := run(false)
	drr := run(true)

	fifoWorst := lightLatency(t, fifo)
	drrWorst := lightLatency(t, drr)
	// DRR batches mix users, so each of alice's batches pays per-switch warm
	// key refetches — the margin is 3x, not the raw backlog ratio (that is
	// the multi-user key-locality cost the ROADMAP tracks separately).
	if drrWorst*3 > fifoWorst {
		t.Fatalf("DRR light-user worst %v not well under FIFO's %v", drrWorst, fifoWorst)
	}
	// The discipline reorders service, it does not drop work.
	if len(drr.Requests) != len(fifo.Requests) {
		t.Fatalf("served %d vs %d", len(drr.Requests), len(fifo.Requests))
	}
	if drr.Dropped != 0 || fifo.Dropped != 0 {
		t.Fatalf("dropped %d/%d", drr.Dropped, fifo.Dropped)
	}
}

// TestDRRTimeoutDropReturnsReleaseSlot: a released batch dropped by
// RequestTimeout must hand its MaxInFlight slot back, or the stream's hold
// jams forever and later arrivals are neither served nor dropped.
func TestDRRTimeoutDropReturnsReleaseSlot(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "rsnet", 1)
	cfg.NodeMemory = 1 << 30 // one rsnet sandbox: batches queue behind it
	cfg.RequestTimeout = 500 * time.Millisecond
	cfg.Batch = BatchSpec{MaxBatch: 4, MaxWait: 5 * time.Millisecond,
		MaxInFlight: 2, DRR: true}
	tr := workload.Trace{{At: 0, ModelID: "rsnet", UserID: "hog"}}
	const burst = 40
	for i := 0; i < burst; i++ {
		tr = append(tr, workload.Event{At: 10 * time.Second, ModelID: "rsnet", UserID: "hog"})
	}
	res := runTrace(t, cfg, tr)
	if got := len(res.Requests) + res.Dropped; got != burst+1 {
		t.Fatalf("accounted %d of %d (served %d, dropped %d): a drop leaked a release slot",
			got, burst+1, len(res.Requests), res.Dropped)
	}
	if res.Dropped == 0 {
		t.Fatal("test expected timeout drops; configuration no longer creates any")
	}
}

// TestDRRWeightsShareBatches checks the weighted share: two users flooding
// the same stream with weights 3:1 split each full batch 3:1.
func TestDRRWeightsShareBatches(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 2)
	cfg.NodeMemory = 192 << 20
	cfg.Batch = BatchSpec{MaxBatch: 4, MaxWait: 5 * time.Millisecond,
		MaxInFlight: 1, DRR: true,
		TenantWeights: map[string]int{"big": 3, "small": 1}}
	tr := workload.Trace{{At: 0, ModelID: "mbnet", UserID: "big"}}
	for i := 0; i < 36; i++ {
		tr = append(tr, workload.Event{At: 10 * time.Second, ModelID: "mbnet", UserID: "big"})
	}
	for i := 0; i < 8; i++ {
		tr = append(tr, workload.Event{At: 10 * time.Second, ModelID: "mbnet", UserID: "small"})
	}
	res := runTrace(t, cfg, tr)

	// While both users backlog, full batches split 3 big : 1 small, so
	// small's backlog of 8 drains alongside big's first 24 and strictly
	// before big's remaining 12 — under FIFO small (enqueued last) would
	// finish last.
	var smallLast, bigLast time.Duration
	for _, r := range res.Requests {
		if r.Arrive < 10*time.Second {
			continue // warm-up
		}
		switch r.User {
		case "small":
			if r.Done > smallLast {
				smallLast = r.Done
			}
		case "big":
			if r.Done > bigLast {
				bigLast = r.Done
			}
		}
	}
	if smallLast == 0 || bigLast == 0 {
		t.Fatal("missing completions")
	}
	if smallLast >= bigLast {
		t.Fatalf("small (8 reqs, weight 1) finished at %v, not before big (24 reqs, weight 3) at %v",
			smallLast, bigLast)
	}
}
