package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"sesemi/internal/autoscale"
	"sesemi/internal/costmodel"
	"sesemi/internal/fnpacker"
	"sesemi/internal/metrics"
	"sesemi/internal/model"
	"sesemi/internal/obs"
	"sesemi/internal/semirt"
	"sesemi/internal/workload"
)

// System selects which serving stack the simulation models (§VI baselines).
type System int

const (
	// SeSeMI reuses enclave, keys, model and runtimes (hot path).
	SeSeMI System = iota
	// IsoReuse reuses the enclave and keys but reloads model and runtime
	// per request (S-FaaS / Clemmys style).
	IsoReuse
	// Native launches a fresh enclave for every invocation.
	Native
	// Untrusted runs without any TEE (Figure 18 baseline).
	Untrusted
)

func (s System) String() string {
	switch s {
	case SeSeMI:
		return "SeSeMI"
	case IsoReuse:
		return "Iso-reuse"
	case Native:
		return "Native"
	default:
		return "Untrusted"
	}
}

// StorageKind selects the model-loading latency profile.
type StorageKind int

const (
	// ClusterStorage is the in-cluster NFS share (Figure 17 load times).
	ClusterStorage StorageKind = iota
	// CloudStorage is same-region Azure Blob (§VI-A download times).
	CloudStorage
)

// ActionSpec describes one deployed function endpoint.
type ActionSpec struct {
	// Name is the endpoint name requests are routed to.
	Name string
	// Framework is "tvm" or "tflm".
	Framework string
	// Concurrency is slots (TCSs) per sandbox.
	Concurrency int
	// MemoryBudget is the container memory charged against node memory;
	// zero derives the smallest 128 MiB multiple covering the enclave.
	MemoryBudget int64
	// EnclaveBytes is the configured enclave size; zero derives it from
	// the Appendix D table for DefaultModel.
	EnclaveBytes int64
	// DefaultModel sizes the enclave when EnclaveBytes is zero.
	DefaultModel string
}

// Config parameterizes a simulation run.
type Config struct {
	// System is the serving stack under test.
	System System
	// HW is the hardware generation of all nodes.
	HW costmodel.HW
	// Nodes and CoresPerNode shape the cluster (paper: 8 nodes, 12 cores).
	Nodes        int
	CoresPerNode int
	// NodeMemory is the invoker memory per node.
	NodeMemory int64
	// KeepWarm is the idle-container timeout (3 min in Table V).
	KeepWarm time.Duration
	// SandboxStart is the container start latency.
	SandboxStart time.Duration
	// Storage selects the model-load latency profile.
	Storage StorageKind
	// Actions are the deployed endpoints.
	Actions []ActionSpec
	// Route maps a request to an endpoint; nil routes to the single action.
	Route fnpacker.Strategy
	// ModelCosts aliases workload model ids to cost-model ids (e.g. the
	// FnPacker experiments serve m0..m4, all of which are ResNet101
	// deployments: {"m0": "rsnet", ...}). Unlisted ids map to themselves.
	ModelCosts map[string]string
	// StorageBandwidth is the shared model-storage link capacity in
	// bytes/second (the cluster NFS share; §VI sets up one NFS server over
	// 10 Gbps Ethernet). Concurrent model loads share it. Zero means the
	// 10 Gbps default. This is what makes per-request model reloading
	// (Iso-reuse) collapse under the MMPP workload: 30 rps × 44 MB exceeds
	// the link.
	StorageBandwidth float64
	// OnComplete, when set, observes every completed request before its
	// endpoint queue is re-dispatched; used for closed-loop workloads that
	// inject follow-up requests via Inject.
	OnComplete func(RequestResult)
	// RequestTimeout drops requests that queue longer than this before
	// dispatch (OpenWhisk's action invocation timeout, 60 s by default).
	// Dropped requests are counted, not included in latency stats — this is
	// the "platform becomes unavailable" behaviour of §VI-C.
	RequestTimeout time.Duration
	// SampleEvery is the stats sampling interval (default 5 s).
	SampleEvery time.Duration
	// InvokeOverhead is the modeled per-activation platform overhead
	// (serverless.Config.InvokeOverhead), charged while the request holds
	// its sandbox slot. When batching is enabled the whole batch rides one
	// activation, so the overhead is charged once per batch — the
	// amortization the gateway measures live. Zero disables it.
	InvokeOverhead time.Duration
	// Batch, when MaxBatch > 1, models the serving gateway's batch formation
	// (internal/gateway): arrivals are held per (endpoint, model) until
	// MaxBatch have gathered or MaxWait elapsed, then released to the
	// endpoint queue together. Formation delay is part of E2E latency — and
	// InvokeOverhead is amortized across the batch — so simulated and
	// measured gateway behavior stay comparable.
	Batch BatchSpec
	// Shards mirrors the frontier's sharded gateway tier
	// (internal/frontier): requests hash by (endpoint, model, user) — the
	// frontier's (action, model, tenant) route key — onto Shards logical
	// gateway shards, and every stream-granular structure splits per shard:
	// batch formation, DRR holds, the MaxInFlight dispatch bound and
	// affinity homes all key on the shard-suffixed stream. A multi-tenant
	// stream therefore forms batches — and earns dispatch ceiling —
	// independently per shard, exactly as N frontier shards would split it.
	// ≤ 1 leaves the single-gateway behavior byte-for-byte unchanged.
	Shards int
	// KeyCacheSize mirrors semirt.Config.KeyCacheSize: the per-sandbox LRU
	// of cached ⟨model‖user⟩ key pairs. 0 means the live default (64);
	// 1 reproduces the historical single-pair cache, where every user flip
	// refetches keys over the KeyService session.
	KeyCacheSize int
	// DisableKeyCache mirrors semirt strong isolation: every request
	// refetches keys regardless of KeyCacheSize.
	DisableKeyCache bool
	// Affinity mirrors the gateway's locality-aware batch routing
	// (gateway.Config.Affinity): each (endpoint, model) stream homes on one
	// node — chosen to spread streams across nodes, then by free memory —
	// and its requests are served there: ready sandbox on the home first,
	// then a cold start on the home while it has room, then waiting for home
	// sandboxes already starting; only a completely unable home re-homes the
	// stream. Off it, the platform proxy picks sandboxes indiscriminately
	// (the paper's Figure 7 behaviour), so simulated and measured locality
	// curves stay comparable.
	Affinity bool
	// Autoscale mirrors the predictive autoscaler (internal/autoscale,
	// gateway.Config.Autoscaler) inside the discrete-event harness, running
	// the SAME policy functions (Holt forecast, Little's-law target,
	// adaptive keep-warm) on the simulator's virtual clock — so the ranking
	// the live bench measures (predictive beats reactive on bursty traces)
	// is reproducible deterministically.
	Autoscale AutoscaleSpec
	// Faults mirrors the live fault-injection plane (internal/faults) and
	// the gateway's retry/failover recovery inside the discrete-event
	// harness, so availability-under-faults curves are reproducible
	// deterministically (same seed, same trace → same Result).
	Faults FaultsSpec
	// Rollout mirrors the canary rollout plane (internal/rollout) — sticky
	// weighted revision split, SLO-gated ramp, drain-then-done rollback —
	// on the virtual clock (rollout.go).
	Rollout RolloutSpec
}

// AutoscaleSpec mirrors autoscale.Config for the simulator.
type AutoscaleSpec struct {
	// Enabled turns the predictive control loop on (off = the reactive
	// start-on-pressure baseline).
	Enabled bool
	// Window is the forecast sampling interval (default 1s).
	Window time.Duration
	// Alpha/Beta are the Holt smoothing coefficients (autoscale defaults).
	Alpha, Beta float64
	// Horizon is windows of forecast lead (default 2).
	Horizon float64
	// Headroom is warm spares above the Little's-law target (default 1).
	Headroom int
	// MaxWarm caps the per-action target (default 16).
	MaxWarm int
	// MinKeepWarm floors the adaptive keep-warm deadline (default 5s);
	// Config.KeepWarm is its ceiling.
	MinKeepWarm time.Duration
	// WarmHitTarget / IdleTarget gate scale-down (defaults 0.9 / 0.5).
	WarmHitTarget, IdleTarget float64
}

// BatchSpec mirrors the gateway's batching knobs inside the discrete-event
// harness.
type BatchSpec struct {
	// MaxBatch is the flush size; <= 1 disables batching.
	MaxBatch int
	// MaxWait is the formation deadline after the first held request
	// (default 2 ms, the gateway's default).
	MaxWait time.Duration
	// MaxInFlight mirrors gateway.Config.MaxInFlight: at most this many
	// batches of one (endpoint, model) stream are dispatched into sandboxes
	// at a time; the rest wait in the endpoint queue (other streams pass
	// them). Zero means unbounded. Only meaningful when MaxBatch > 1.
	MaxInFlight int
	// DRR mirrors the gateway's serving API v2 discipline: arrivals backlog
	// in per-tenant (workload UserID) sub-queues and every formed batch is
	// drained by deficit round robin with TenantWeights, so a flooding user
	// cannot starve the rest of its (endpoint, model) stream. Off, the
	// stream is one FIFO: batches form in pure arrival order and queue
	// behind each other (the v1 gateway), which is the starvation baseline
	// the fairness experiment measures against.
	DRR bool
	// TenantWeights mirrors gateway.Config.TenantWeights (user id →
	// deficit-round-robin weight; unlisted users weigh 1). Only meaningful
	// with DRR.
	TenantWeights map[string]int
	// GroupUsers mirrors gateway.Config.GroupUsers: formed batches are
	// stably ordered into same-user runs, so the sandbox's key cache
	// switches at most once per distinct user per batch.
	GroupUsers bool
	// Continuous mirrors gateway.Config.Continuous: a formed batch executes
	// as a continuous session — a round-robin step loop over its members,
	// one execution step per active member per frame — so each member
	// completes at its own final step instead of at the batch's collective
	// end. Admission is modeled at formation (the event engine forms then
	// runs; the live path also admits mid-flight), and a member longer than
	// PreemptAfter models its preempt/resume cycles as deferred completion
	// plus costmodel.PreemptionOverhead rather than a literal re-queue — the
	// fairness consequence, short members never waiting out long ones, is
	// identical.
	Continuous bool
	// PreemptAfter mirrors gateway.Config.PreemptAfter: the per-session step
	// budget beyond which a member pays preempt/resume cycles (default 4).
	PreemptAfter int
	// StepOverhead is the per-frame scheduling cost of a continuous session
	// (the step-frame decode plus enclave re-entry the live path pays once
	// per frame) — Result.SchedSteps × StepOverhead is the run's
	// costmodel.SchedulingOverhead.
	StepOverhead time.Duration
}

func (c *Config) defaults() error {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = costmodel.Cores
	}
	if c.NodeMemory <= 0 {
		c.NodeMemory = 64 << 30
	}
	if c.KeepWarm <= 0 {
		c.KeepWarm = 3 * time.Minute
	}
	if c.SandboxStart <= 0 {
		c.SandboxStart = 500 * time.Millisecond
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5 * time.Second
	}
	if c.StorageBandwidth <= 0 {
		c.StorageBandwidth = 1.6e9 // 10 Gbps wire + NFS server cache assist
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Batch.MaxBatch > 1 && c.Batch.MaxWait <= 0 {
		c.Batch.MaxWait = 2 * time.Millisecond
	}
	if c.Batch.Continuous && c.Batch.PreemptAfter < 1 {
		c.Batch.PreemptAfter = 4
	}
	if c.Autoscale.Enabled {
		if c.Autoscale.Window <= 0 {
			c.Autoscale.Window = time.Second
		}
		if c.Autoscale.Horizon <= 0 {
			c.Autoscale.Horizon = 2
		}
		if c.Autoscale.Headroom <= 0 {
			c.Autoscale.Headroom = 1
		}
		if c.Autoscale.MaxWarm <= 0 {
			c.Autoscale.MaxWarm = 16
		}
		if c.Autoscale.MinKeepWarm <= 0 {
			c.Autoscale.MinKeepWarm = 5 * time.Second
		}
		if c.Autoscale.WarmHitTarget <= 0 || c.Autoscale.WarmHitTarget > 1 {
			c.Autoscale.WarmHitTarget = 0.9
		}
		if c.Autoscale.IdleTarget <= 0 || c.Autoscale.IdleTarget > 1 {
			c.Autoscale.IdleTarget = 0.5
		}
	}
	if len(c.Actions) == 0 {
		return fmt.Errorf("sim: no actions configured")
	}
	for i := range c.Actions {
		a := &c.Actions[i]
		if a.Concurrency < 1 {
			a.Concurrency = 1
		}
		if a.EnclaveBytes == 0 {
			if a.DefaultModel == "" {
				return fmt.Errorf("sim: action %q needs EnclaveBytes or DefaultModel", a.Name)
			}
			b, err := costmodel.EnclaveConfigBytes(a.Framework, a.DefaultModel, a.Concurrency)
			if err != nil {
				return err
			}
			a.EnclaveBytes = b
		}
		if a.MemoryBudget == 0 {
			a.MemoryBudget = costmodel.ContainerMemoryBudget(a.EnclaveBytes)
		}
	}
	return nil
}

// RequestResult records one served request.
type RequestResult struct {
	// Model and User identify the request.
	Model, User string
	// Endpoint is where it was routed.
	Endpoint string
	// Arrive, Start and Done are virtual times (Start = dispatch into a
	// sandbox slot).
	Arrive, Start, Done time.Duration
	// Kind is the invocation path taken.
	Kind semirt.InvocationKind
}

// Latency is the end-to-end request latency (queueing included).
func (r RequestResult) Latency() time.Duration { return r.Done - r.Arrive }

// Result aggregates a run.
type Result struct {
	// Rehomes counts affinity re-homing decisions (0 when Affinity is off).
	Rehomes int
	// Requests holds every completed request in completion order.
	Requests []RequestResult
	// PerModel aggregates latency per model id.
	PerModel map[string]*metrics.Latency
	// All aggregates latency across models.
	All *metrics.Latency
	// LatencySeries buckets request latency (seconds) by completion time.
	LatencySeries *metrics.TimeSeries
	// SandboxSeries and ServingSeries track container counts over time.
	SandboxSeries, ServingSeries *metrics.TimeSeries
	// MemorySeries tracks reserved container memory (bytes) over time.
	MemorySeries *metrics.TimeSeries
	// GBSeconds is the memory-cost integral of §VI-C.
	GBSeconds float64
	// Cold, Warm, Hot count invocation paths.
	Cold, Warm, Hot int
	// ColdStarts counts sandbox creations; Evictions counts LRU kills.
	ColdStarts, Evictions int
	// Prewarmed counts sandboxes the autoscale mirror started proactively
	// (included in ColdStarts, like the live cluster's counter).
	Prewarmed int
	// IdleSandboxSeconds accrues sandbox idle time — ready with nothing in
	// flight, from going idle until the next dispatch or destruction — the
	// enclave-memory squatting a scale-down policy shrinks (live:
	// serverless.ActionStats.IdleSeconds).
	IdleSandboxSeconds float64
	// Dropped counts requests that timed out in the queue.
	Dropped int
	// Batches counts gateway batch flushes (0 when batching is disabled).
	Batches int
	// KeyFetches counts key provisioning round trips over the KeyService
	// session — the volume the key cache amortizes (live: Stats.KeyFetches).
	KeyFetches int
	// SchedSteps counts continuous-session scheduling frames (0 when
	// Batch.Continuous is off) — SchedSteps × Batch.StepOverhead is the
	// run's costmodel.SchedulingOverhead.
	SchedSteps int
	// Preemptions counts the preempt/resume cycles long members would
	// undergo at the live gateway (costmodel.PreemptionOverhead volume).
	Preemptions int
	// BatchSizes is the flushed batch-size distribution.
	BatchSizes *metrics.Histogram
	// Lost counts requests abandoned by a fault with the retry budget
	// exhausted (or recovery off) — the availability gap the chaos
	// experiment measures (live: gateway ErrRetriesExhausted outcomes).
	Lost int
	// Retries counts failover re-dispatches of faulted activations
	// (live: gateway Stats.Retries).
	Retries int
	// KSRejects counts key fetches refused by an injected key-service
	// outage (live: faults.Stats.KSRejects).
	KSRejects int
	// PerShard counts completed requests per logical shard (nil when
	// Shards ≤ 1) — the input to costmodel.ShardImbalance, mirroring the
	// frontier's per-shard Stats breakdown.
	PerShard []int
	// SandboxCrashes counts activations killed by injected sandbox death
	// (live: faults.Stats.SandboxCrashes).
	SandboxCrashes int
	// Promoted / RolledBack report the rollout mirror's terminal phase
	// (both false when Config.Rollout is off or the ramp never concluded).
	Promoted, RolledBack bool
	// TimeToRollback is the virtual time from ramp start (t=0) until the
	// rollback completed — weight zeroed AND every in-flight canary member
	// drained (zero unless RolledBack).
	TimeToRollback time.Duration
	// RequestsAffected counts the requests the canary revision absorbed
	// before the rollback completed (zero unless RolledBack).
	RequestsAffected int
	// Stages is the per-stage virtual-time decomposition of the run, indexed
	// by obs.Stage — the sim-side mirror of the live tracer's Decomposition.
	// Queue wait (arrival→dispatch) lands in queue, per-activation invoke
	// overhead in dispatch, enclave launches in cold_start, KeyService round
	// trips in key_fetch, and in-enclave load/init/exec/crypto in ecall.
	Stages [obs.NumStages]time.Duration
	// End is the virtual completion time of the run.
	End time.Duration
}

// StageBreakdown returns the non-zero rows of Stages keyed by wire name, in
// enum order — directly comparable, stage by stage, to the live tracer's
// Decomposition for sim-vs-live calibration.
func (r *Result) StageBreakdown() map[string]time.Duration {
	out := map[string]time.Duration{}
	for st, d := range r.Stages {
		if d > 0 {
			out[obs.Stage(st).String()] = d
		}
	}
	return out
}

// node is one invoker machine's simulated state.
type node struct {
	id         int
	cores      int
	memory     int64
	reserved   int64
	epcUsed    int64
	activeExec int
	pagers     int
	launching  int
	quoting    int
	// down marks a crashed node (FaultsSpec.CrashAt): placement skips it and
	// its in-flight activations fail over, mirroring the live breaker's view.
	down bool
}

type sandboxState int

const (
	sbStarting sandboxState = iota
	sbReady
	sbDead
)

// sandbox is one container with its SeMIRT enclave state.
type sandbox struct {
	spec  *ActionSpec
	node  *node
	state sandboxState

	inFlight  int
	idleSince time.Duration

	enclaveUp bool
	sessionUp bool
	// cachedPairs is the sandbox's key-pair LRU, most recently used first,
	// capped at the config's effective key-cache size — the discrete-event
	// twin of semirt's keyCache.
	cachedPairs []string
	loaded      string
	slots       []string // model each slot's runtime was built for
	freeSlots   []int    // indices of unoccupied slots
	born        time.Duration

	// target is the model the sandbox's in-flight requests are serving
	// (admits same-model joiners while preparation is in progress).
	target string

	// In-progress stage tracking lets later requests wait for a stage
	// another request already started (the swap-lock/join behaviour of the
	// live runtime) instead of paying it again or spawning a new sandbox.
	enclaveReadyAt time.Duration
	fetchingPair   string
	keysReadyAt    time.Duration
	loadingModel   string
	loadReadyAt    time.Duration
}

// hasPair reports whether the key pair is cached.
func (sb *sandbox) hasPair(pair string) bool {
	for _, p := range sb.cachedPairs {
		if p == pair {
			return true
		}
	}
	return false
}

// notePair records a use of the pair: move-to-front, inserting and evicting
// the least recently used beyond cap. cap <= 0 caches nothing.
func (sb *sandbox) notePair(pair string, cap int) {
	if cap <= 0 {
		return
	}
	for i, p := range sb.cachedPairs {
		if p == pair {
			copy(sb.cachedPairs[1:i+1], sb.cachedPairs[:i])
			sb.cachedPairs[0] = pair
			return
		}
	}
	sb.cachedPairs = append(sb.cachedPairs, "")
	copy(sb.cachedPairs[1:], sb.cachedPairs)
	sb.cachedPairs[0] = pair
	if len(sb.cachedPairs) > cap {
		sb.cachedPairs = sb.cachedPairs[:cap]
	}
}

// servingModel reports the model this sandbox is serving or preparing.
func (sb *sandbox) servingModel() string {
	if sb.loadingModel != "" {
		return sb.loadingModel
	}
	return sb.loaded
}

// takeSlot pops a free slot index, or -1 when the sandbox is full.
func (sb *sandbox) takeSlot() int {
	if len(sb.freeSlots) == 0 {
		return -1
	}
	i := sb.freeSlots[len(sb.freeSlots)-1]
	sb.freeSlots = sb.freeSlots[:len(sb.freeSlots)-1]
	return i
}

func (sb *sandbox) releaseSlot(i int) {
	sb.freeSlots = append(sb.freeSlots, i)
}

// request is an in-simulation request. A formed gateway batch is carried by
// its lead (oldest) request: members holds every batch member including the
// lead, and the whole batch rides ONE activation — one queue entry, one
// sandbox slot, one phase walk — mirroring the live HandleBatch, which
// serves the batch sequentially inside a single ECall.
type request struct {
	ev      workload.Event
	arrive  time.Duration
	ep      string
	started time.Duration
	slot    int
	members []*request // nil for an unbatched request
	// retries counts failed dispatch attempts (FaultsSpec.Retries budget);
	// the re-queued entry keeps its original arrive, like the live gateway's
	// fairness-neutral requeue.
	retries int
}

// batchMembers returns the requests this queue entry carries: its batch
// members, or just itself when unbatched.
func (r *request) batchMembers() []*request {
	if r.members != nil {
		return r.members
	}
	return []*request{r}
}

// costID resolves a workload model id to its cost-model id. Revisioned ids
// (base@rev) resolve through their base, so a canary revision shares the
// stable build's calibration unless aliased explicitly.
func (c *Config) costID(modelID string) string {
	if alias, ok := c.ModelCosts[modelID]; ok {
		return alias
	}
	if base := model.BaseID(modelID); base != modelID {
		if alias, ok := c.ModelCosts[base]; ok {
			return alias
		}
		return base
	}
	return modelID
}

// keyCap resolves the effective per-sandbox key-cache capacity, mirroring
// semirt.Config.EffectiveKeyCacheSize.
func (c *Config) keyCap() int {
	if c.DisableKeyCache {
		return 0
	}
	if c.KeyCacheSize == 0 {
		return semirt.DefaultKeyCacheSize
	}
	return c.KeyCacheSize
}

// orderBatch stably orders a formed batch into same-user runs when
// BatchSpec.GroupUsers is on — the discrete-event mirror of the gateway's
// dispatch-time grouping and HandleBatch's in-enclave tag ordering.
func (s *Simulation) orderBatch(batch []*request) []*request {
	if !s.cfg.Batch.GroupUsers || len(batch) < 2 {
		return batch
	}
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].ev.UserID < batch[j].ev.UserID })
	return batch
}

// Simulation carries the mutable world.
type Simulation struct {
	cfg     Config
	eng     *Engine
	nodes   []*node
	actions map[string]*ActionSpec
	boxes   map[string][]*sandbox // per action
	queues  map[string][]*request
	forming map[string]*forming // gateway batches gathering, per ep+model
	holds   map[string]*drrHold // DRR backlogs, per ep+model (Batch.DRR)

	res     *Result
	gb      metrics.GBSeconds
	lastEnd time.Duration

	// activeLoads counts in-flight model transfers from shared storage.
	activeLoads int

	// Affinity state: sticky home node per (endpoint, model) stream and how
	// many streams are homed per node (for spread). inflight counts each
	// stream's dispatched-but-incomplete queue entries for the MaxInFlight
	// bound.
	homes     map[string]*node
	homeCount map[*node]int
	inflight  map[string]int

	// Autoscale mirror state (Config.Autoscale.Enabled): per-stream
	// forecasters and per-action control state, fed by arrive/complete and
	// stepped once per Autoscale.Window.
	asStreams map[string]*asStream
	asActs    map[string]*asActState

	// frng drives fault-injection draws (Config.Faults.Seed); the engine is
	// otherwise deterministic, so seeding it pins the whole run.
	frng *rand.Rand

	// roll is the rollout mirror's state (nil when Config.Rollout is off).
	roll *rolloutMirror
}

// asStream is one (endpoint, model) stream's forecasting state — the
// discrete-event twin of the live controller's stream record.
type asStream struct {
	ep, model  string
	count      int // arrivals in the current window
	holt       *autoscale.Holt
	svcSeconds float64 // smoothed dispatch→completion time per queue entry
	meanBatch  float64
}

// asActState is the per-action control state of the autoscale mirror.
type asActState struct {
	keepWarm            time.Duration // adaptive override (0: Config.KeepWarm)
	prevCold, prevCompl int           // last window's counter snapshots
	coldStarts, compl   int           // per-action lifetime counters
}

// New builds a simulation for the config.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:       cfg,
		eng:       &Engine{},
		actions:   map[string]*ActionSpec{},
		boxes:     map[string][]*sandbox{},
		queues:    map[string][]*request{},
		forming:   map[string]*forming{},
		holds:     map[string]*drrHold{},
		homes:     map[string]*node{},
		homeCount: map[*node]int{},
		inflight:  map[string]int{},
		asStreams: map[string]*asStream{},
		asActs:    map[string]*asActState{},
		res: &Result{
			PerModel:      map[string]*metrics.Latency{},
			All:           &metrics.Latency{},
			BatchSizes:    metrics.NewHistogram(1),
			LatencySeries: metrics.NewTimeSeries(30 * time.Second),
			SandboxSeries: metrics.NewTimeSeries(cfg.SampleEvery),
			ServingSeries: metrics.NewTimeSeries(cfg.SampleEvery),
			MemorySeries:  metrics.NewTimeSeries(cfg.SampleEvery),
		},
	}
	if cfg.Shards > 1 {
		s.res.PerShard = make([]int, cfg.Shards)
	}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, &node{id: i, cores: cfg.CoresPerNode, memory: cfg.NodeMemory})
	}
	if cfg.Faults.Enabled {
		s.frng = rand.New(rand.NewSource(cfg.Faults.Seed))
	}
	for i := range cfg.Actions {
		a := &cfg.Actions[i]
		if _, dup := s.actions[a.Name]; dup {
			return nil, fmt.Errorf("sim: duplicate action %q", a.Name)
		}
		s.actions[a.Name] = a
	}
	if err := s.initRollout(); err != nil {
		return nil, err
	}
	return s, nil
}

// Clock adapts the engine to vclock.Clock for the shared FnPacker policy.
type engineClock struct{ eng *Engine }

func (c engineClock) Now() time.Time { return time.Unix(0, 0).Add(c.eng.Now()) }
func (c engineClock) Sleep(time.Duration) {
	panic("sim: policies must not sleep inside the discrete-event engine")
}

// EngineClock exposes the simulation's virtual clock (for building a
// fnpacker.Scheduler that shares it).
func (s *Simulation) EngineClock() interface {
	Now() time.Time
	Sleep(time.Duration)
} {
	return engineClock{s.eng}
}

// SetRoute installs a routing strategy after construction (needed when the
// strategy shares the simulation's virtual clock). Call before Run.
func (s *Simulation) SetRoute(r fnpacker.Strategy) error {
	if len(s.res.Requests) > 0 {
		return fmt.Errorf("sim: SetRoute after Run")
	}
	s.cfg.Route = r
	return nil
}

// SetOnComplete installs the completion observer after construction. Call
// before Run.
func (s *Simulation) SetOnComplete(fn func(RequestResult)) {
	s.cfg.OnComplete = fn
}

// Run replays the trace and returns aggregated results.
func (s *Simulation) Run(trace workload.Trace) (*Result, error) {
	trace.Sort()
	for i := range trace {
		ev := trace[i]
		s.eng.At(ev.At, func() { s.arrive(ev) })
	}
	s.scheduleFaults()
	// Periodic maintenance: keep-warm reaping + stats sampling, until a bit
	// past the last arrival (long enough to drain, bounded to avoid
	// infinite reap loops).
	horizon := trace.Duration() + s.cfg.KeepWarm + 10*time.Minute
	s.scheduleRollout(horizon)
	var maintain func()
	maintain = func() {
		s.sample()
		s.reap()
		if s.eng.Now() < horizon {
			s.eng.After(s.cfg.SampleEvery, maintain)
		}
	}
	s.eng.After(s.cfg.SampleEvery, maintain)
	if s.cfg.Autoscale.Enabled {
		var tick func()
		tick = func() {
			s.autoscaleStep()
			if s.eng.Now() < horizon {
				s.eng.After(s.cfg.Autoscale.Window, tick)
			}
		}
		s.eng.After(s.cfg.Autoscale.Window, tick)
	}
	end := s.eng.Run()
	s.res.End = s.lastEnd
	s.res.GBSeconds = s.gb.Finish(end)
	return s.res, nil
}

func (s *Simulation) route(ev workload.Event) (string, error) {
	if s.cfg.Route != nil {
		return s.cfg.Route.Route(ev.ModelID)
	}
	if len(s.cfg.Actions) == 1 {
		return s.cfg.Actions[0].Name, nil
	}
	// Default: action named after the model (one-to-one deployment).
	name := "fn-" + ev.ModelID
	if _, ok := s.actions[name]; !ok {
		return "", fmt.Errorf("sim: no route for model %q", ev.ModelID)
	}
	return name, nil
}

// Inject schedules an additional arrival during the run (closed-loop
// workloads). The event fires at ev.At or now, whichever is later.
func (s *Simulation) Inject(ev workload.Event) {
	s.eng.At(ev.At, func() { s.arrive(ev) })
}

func (s *Simulation) arrive(ev workload.Event) {
	// The rollout mirror re-targets ramped-model arrivals to a revision
	// BEFORE routing and batching, exactly where the live splitter sits
	// (revision choice binds the encrypted request, not just the route).
	ev.ModelID = s.rolloutTarget(ev.ModelID, ev.UserID)
	ep, err := s.route(ev)
	if err != nil {
		// Routing failures surface as panics: traces and configs are
		// researcher-provided and must agree.
		panic(err)
	}
	req := &request{ev: ev, arrive: s.eng.Now(), ep: ep}
	if s.cfg.Autoscale.Enabled {
		s.asStream(ep, ev.ModelID).count++
	}
	if s.cfg.Batch.MaxBatch > 1 {
		if s.cfg.Batch.DRR {
			s.joinDRR(req)
		} else {
			s.joinBatch(req)
		}
		return
	}
	s.queues[ep] = append(s.queues[ep], req)
	s.dispatch(ep)
}

// ---------- DRR hold: the serving API v2 discipline, mirrored ----------

// drrTenant is one user's sub-queue inside a stream's hold.
type drrTenant struct {
	name    string
	weight  int
	items   []*request
	deficit int
	inRing  bool
}

// drrHold is one (endpoint, model) stream's backlog under Batch.DRR:
// per-tenant sub-queues drained by deficit round robin, the discrete-event
// twin of the gateway queue. Unlike the FIFO `forming` path — which
// pre-forms batches in arrival order and queues them behind each other —
// the hold keeps requests unformed until a dispatch slot frees, so batch
// membership is decided at dispatch time, like the live gateway.
type drrHold struct {
	tenants    map[string]*drrTenant
	ring       []*drrTenant
	next       int
	midVisit   bool
	size       int
	oldest     time.Duration // earliest held arrival (virtual time)
	timerArmed bool
}

func (s *Simulation) hold(key string) *drrHold {
	h := s.holds[key]
	if h == nil {
		h = &drrHold{tenants: map[string]*drrTenant{}}
		s.holds[key] = h
	}
	return h
}

func (h *drrHold) add(req *request, weight int) {
	tq := h.tenants[req.ev.UserID]
	if tq == nil {
		tq = &drrTenant{name: req.ev.UserID, weight: weight}
		h.tenants[req.ev.UserID] = tq
	}
	tq.items = append(tq.items, req)
	if !tq.inRing {
		tq.inRing = true
		h.ring = append(h.ring, tq)
	}
	if h.size == 0 || req.arrive < h.oldest {
		h.oldest = req.arrive
	}
	h.size++
}

// drain forms one batch of up to max requests by deficit round robin — the
// same quantum/visit discipline as gateway.drainLocked (without deadline
// shedding, which the sim does not model).
func (h *drrHold) drain(max int) []*request {
	batch := make([]*request, 0, max)
	for h.size > 0 && len(batch) < max && len(h.ring) > 0 {
		if h.next >= len(h.ring) {
			h.next = 0
		}
		tq := h.ring[h.next]
		if !h.midVisit {
			tq.deficit += tq.weight
		}
		h.midVisit = false
		for tq.deficit >= 1 && len(tq.items) > 0 && len(batch) < max {
			batch = append(batch, tq.items[0])
			tq.items = tq.items[1:]
			tq.deficit--
			h.size--
		}
		if len(tq.items) == 0 {
			tq.inRing = false
			tq.deficit = 0
			h.ring = append(h.ring[:h.next], h.ring[h.next+1:]...)
			delete(h.tenants, tq.name)
			continue
		}
		if len(batch) >= max {
			if tq.deficit >= 1 {
				h.midVisit = true
			} else {
				h.next++
			}
			break
		}
		h.next++
	}
	// Recompute the formation deadline anchor for what remains.
	first := true
	for _, tq := range h.tenants {
		for _, r := range tq.items {
			if first || r.arrive < h.oldest {
				h.oldest = r.arrive
				first = false
			}
		}
	}
	return batch
}

func (s *Simulation) tenantWeight(user string) int {
	if w := s.cfg.Batch.TenantWeights[user]; w >= 1 {
		return w
	}
	return 1
}

// drrBlocked reports whether the stream is at its MaxInFlight release bound.
func (s *Simulation) drrBlocked(key string) bool {
	return s.cfg.Batch.MaxInFlight > 0 && s.inflight[key] >= s.cfg.Batch.MaxInFlight
}

func (s *Simulation) joinDRR(req *request) {
	key := s.streamKey(req)
	h := s.hold(key)
	h.add(req, s.tenantWeight(req.ev.UserID))
	s.releaseDRR(key, h, false)
	s.armHoldTimer(key, h)
}

// releaseDRR forms and releases batches to the endpoint queue while the
// stream has a full batch (or force, on the formation deadline) and an
// in-flight slot free — the mirror of gateway.flushLocked.
func (s *Simulation) releaseDRR(key string, h *drrHold, force bool) {
	for h.size > 0 && !s.drrBlocked(key) {
		if h.size < s.cfg.Batch.MaxBatch && !force {
			return
		}
		force = false
		batch := s.orderBatch(h.drain(s.cfg.Batch.MaxBatch))
		if len(batch) == 0 {
			return
		}
		s.res.Batches++
		s.res.BatchSizes.Observe(float64(len(batch)))
		lead := batch[0]
		lead.members = batch
		if s.cfg.Batch.MaxInFlight > 0 {
			// Released batches count against the bound immediately (they are
			// committed to dispatch), so at most MaxInFlight of one stream's
			// batches ever sit in or beyond the endpoint queue.
			s.inflight[key]++
		}
		s.queues[lead.ep] = append(s.queues[lead.ep], lead)
		s.dispatch(lead.ep)
	}
}

// armHoldTimer schedules the formation-deadline release for the hold's
// oldest request. Not armed while the release bound is closed — a batch
// completion reopens it and re-arms (armTimerLocked's skip, mirrored).
func (s *Simulation) armHoldTimer(key string, h *drrHold) {
	if h.timerArmed || h.size == 0 || s.drrBlocked(key) {
		return
	}
	h.timerArmed = true
	wait := s.cfg.Batch.MaxWait - (s.eng.Now() - h.oldest)
	if wait < 0 {
		wait = 0
	}
	s.eng.After(wait, func() {
		h.timerArmed = false
		if h.size == 0 {
			return
		}
		if s.eng.Now()-h.oldest >= s.cfg.Batch.MaxWait {
			s.releaseDRR(key, h, true)
		}
		s.armHoldTimer(key, h)
	})
}

// forming is one gateway batch gathering arrivals.
type forming struct{ reqs []*request }

// joinBatch holds the request in its (endpoint, model) forming batch,
// flushing when the batch fills or when the first member's deadline expires
// — the discrete-event mirror of the gateway's MaxBatch/MaxWait batcher.
func (s *Simulation) joinBatch(req *request) {
	key := s.streamKey(req)
	f := s.forming[key]
	if f == nil {
		f = &forming{}
		s.forming[key] = f
	}
	f.reqs = append(f.reqs, req)
	if len(f.reqs) >= s.cfg.Batch.MaxBatch {
		s.flushBatch(key, f)
		return
	}
	if len(f.reqs) == 1 {
		s.eng.After(s.cfg.Batch.MaxWait, func() {
			// Only flush if this batch is still the one forming: a fill
			// flush may have replaced it in the meantime.
			if s.forming[key] == f {
				s.flushBatch(key, f)
			}
		})
	}
}

// flushBatch releases a formed batch to the endpoint queue as ONE queue
// entry (its lead request carrying the members). Members keep their original
// arrival times, so formation delay lands in E2E latency.
func (s *Simulation) flushBatch(key string, f *forming) {
	delete(s.forming, key)
	s.res.Batches++
	s.res.BatchSizes.Observe(float64(len(f.reqs)))
	reqs := s.orderBatch(f.reqs)
	lead := reqs[0]
	lead.members = reqs
	s.queues[lead.ep] = append(s.queues[lead.ep], lead)
	s.dispatch(lead.ep)
}

// streamKey identifies one (endpoint, model) stream — the granularity of
// batch formation, DRR holds, the MaxInFlight dispatch bound and affinity
// homing. Under sharding (Config.Shards > 1) the key carries the request's
// shard, so each of those structures splits per shard exactly as N frontier
// shards would split them.
func (s *Simulation) streamKey(req *request) string {
	k := req.ep + "\x1f" + req.ev.ModelID
	if s.cfg.Shards > 1 {
		k += "\x1fs" + strconv.Itoa(s.shardOf(req))
	}
	return k
}

// shardOf hashes the request onto a logical shard — FNV-1a over the
// separator-framed (endpoint, model, user) triple, the same route key the
// frontier hashes onto its ring (internal/frontier.routeKey). The simulator
// models shard ASSIGNMENT, not the ring's virtual-node geometry: a modulus
// over the key hash places streams with the ring's uniform-key distribution,
// which is what the mirrored experiments compare.
func (s *Simulation) shardOf(req *request) int {
	const (
		fnvOffset uint64 = 14695981039346656037
		fnvPrime  uint64 = 1099511628211
	)
	h := fnvOffset
	for _, part := range [3]string{req.ep, req.ev.ModelID, req.ev.UserID} {
		for i := 0; i < len(part); i++ {
			h ^= uint64(part[i])
			h *= fnvPrime
		}
		h ^= 0x1f
		h *= fnvPrime
	}
	return int(h % uint64(s.cfg.Shards))
}

// bounded reports whether the request's stream is at its MaxInFlight
// dispatch bound. Under DRR the bound is enforced at release time
// (releaseDRR) — an entry that reached the endpoint queue is already
// committed, so it is never passed over here.
func (s *Simulation) bounded(req *request) bool {
	return s.cfg.Batch.MaxBatch > 1 && !s.cfg.Batch.DRR && s.cfg.Batch.MaxInFlight > 0 &&
		s.inflight[s.streamKey(req)] >= s.cfg.Batch.MaxInFlight
}

// dispatch drains the endpoint queue into eligible sandboxes, starting new
// ones when allowed. Streams at their MaxInFlight bound are passed over —
// their entries wait without blocking other models' batches — while a stream
// blocked on cluster capacity blocks the queue head as before.
func (s *Simulation) dispatch(ep string) {
	spec := s.actions[ep]
	i := 0
	for i < len(s.queues[ep]) {
		req := s.queues[ep][i]
		if s.eng.Now()-req.arrive > s.cfg.RequestTimeout {
			s.queues[ep] = append(s.queues[ep][:i], s.queues[ep][i+1:]...)
			for _, m := range req.batchMembers() {
				s.res.Dropped++
				s.rolloutLost(m.ev.ModelID)
				if s.cfg.Route != nil {
					s.cfg.Route.Done(m.ep, m.ev.ModelID)
				}
			}
			// A dropped DRR batch never reaches complete(), so its release
			// slot must be returned here or the stream blocks forever. The
			// hold's next release runs as a fresh engine event — dispatch
			// must not re-enter itself mid-iteration.
			if s.cfg.Batch.DRR && s.cfg.Batch.MaxInFlight > 0 {
				key := s.streamKey(req)
				if s.inflight[key]--; s.inflight[key] <= 0 {
					delete(s.inflight, key)
				}
				if h := s.holds[key]; h != nil && h.size > 0 {
					s.eng.After(0, func() {
						if h.size > 0 && !s.drrBlocked(key) {
							s.releaseDRR(key, h, s.eng.Now()-h.oldest >= s.cfg.Batch.MaxWait)
							s.armHoldTimer(key, h)
						}
					})
				}
			}
			continue
		}
		if s.bounded(req) {
			i++
			continue
		}
		if s.cfg.Affinity {
			sb, wait := s.placeWithAffinity(spec, req)
			if sb != nil {
				s.takeAndServe(ep, i, sb, req)
				continue
			}
			if wait {
				// Home capacity is starting: this stream's entry waits (the
				// sandbox-ready callback re-dispatches), but other streams on
				// the endpoint must not be blocked behind it — the live
				// gateway dispatches each (action, model) queue independently.
				i++
				continue
			}
		} else if sb := s.pickSandbox(spec, req.ev.ModelID); sb != nil {
			s.takeAndServe(ep, i, sb, req)
			continue
		}
		if !s.maybeStartSandbox(spec) {
			return // saturated; requests wait in queue
		}
	}
}

// takeAndServe removes queue entry i and dispatches it into sb.
func (s *Simulation) takeAndServe(ep string, i int, sb *sandbox, req *request) {
	s.queues[ep] = append(s.queues[ep][:i], s.queues[ep][i+1:]...)
	if s.cfg.Batch.MaxBatch > 1 && s.cfg.Batch.MaxInFlight > 0 && !s.cfg.Batch.DRR {
		s.inflight[s.streamKey(req)]++ // DRR streams counted at release instead
	}
	s.serve(sb, req)
}

// placeWithAffinity mirrors the live hinted-placement ladder: ready slot on
// the stream's home node, then cold starts on the home while it has room and
// unabsorbed demand, then wait for home sandboxes already starting. A home
// that can do none of those re-homes the stream once; after that the
// indiscriminate global path takes over (off-home spill, like the live
// cluster when the hinted node is saturated). Returns (nil, true) when the
// caller should wait for capacity the home is already starting.
func (s *Simulation) placeWithAffinity(spec *ActionSpec, req *request) (*sandbox, bool) {
	key := s.streamKey(req)
	home := s.homeFor(key)
	for attempt := 0; attempt < 2; attempt++ {
		if sb := s.pickSandboxOn(spec, req.ev.ModelID, home); sb != nil {
			return sb, false
		}
		// Start capacity on the home while it has room and the stream's
		// queued entries outnumber the slots already starting there.
		demand := 0
		for _, r := range s.queues[req.ep] {
			if s.streamKey(r) == key {
				demand++
			}
		}
		for s.startingOn(home, spec)*spec.Concurrency < demand && s.startSandboxOn(home, spec) {
		}
		if s.startingOn(home, spec) > 0 {
			return nil, true
		}
		if attempt == 0 && s.hostedOn(home, spec) == 0 && s.someOtherNodeUsable(home, spec) {
			// The home hosts nothing of this action and cannot start, while
			// some other node could: the stream's warm state is gone
			// (evicted) or never existed. Re-home once and retry the ladder.
			// When every other node is equally unusable the home is kept —
			// re-electing among dead nodes would just ping-pong homes and
			// inflate Rehomes on every dispatch, which the live router's
			// RehomeAfter gating never does.
			home = s.rehome(key, home)
			continue
		}
		break
	}
	// Home saturated but alive: spill to any eligible sandbox (the
	// indiscriminate pick), or let the caller's global start/evict path run.
	return s.pickSandbox(spec, req.ev.ModelID), false
}

// homeFor returns the stream's sticky home, electing one on first use:
// fewest streams homed on the node, then most free memory, then node order —
// the gateway router's spread rule.
func (s *Simulation) homeFor(key string) *node {
	if n := s.homes[key]; n != nil {
		return n
	}
	return s.electHome(key, nil)
}

// electHome picks and records a home, skipping avoid (unless it is the only
// node).
func (s *Simulation) electHome(key string, avoid *node) *node {
	var best *node
	for _, n := range s.nodes {
		if n == avoid || n.down {
			continue
		}
		if best == nil || s.homeCount[n] < s.homeCount[best] ||
			(s.homeCount[n] == s.homeCount[best] && n.memory-n.reserved > best.memory-best.reserved) {
			best = n
		}
	}
	if best == nil {
		best = avoid // single-node cluster: nowhere else to go
	}
	if best == nil {
		best = s.nodes[0] // every node down: park the home, retries re-elect
	}
	s.homes[key] = best
	s.homeCount[best]++
	return best
}

// rehome moves the stream off a dead home to the next-best node. The dead
// home is excluded from the election outright: decrementing its count makes
// it the fewest-homed node, and the fewest-homed rule outranks the
// free-memory tie-break, so without the exclusion the stream would re-elect
// the very node it is abandoning (the live router's rehomeLocked excludes
// the current home the same way).
func (s *Simulation) rehome(key string, old *node) *node {
	s.homeCount[old]--
	delete(s.homes, key)
	s.res.Rehomes++
	return s.electHome(key, old)
}

// someOtherNodeUsable reports whether any node besides home could serve the
// action — it hosts live sandboxes of it, or has room to start one.
func (s *Simulation) someOtherNodeUsable(home *node, spec *ActionSpec) bool {
	for _, n := range s.nodes {
		if n == home || n.down {
			continue
		}
		if n.reserved+spec.MemoryBudget <= n.memory || s.hostedOn(n, spec) > 0 {
			return true
		}
	}
	return false
}

// hostedOn counts live (starting or ready) sandboxes of the action on n.
func (s *Simulation) hostedOn(n *node, spec *ActionSpec) int {
	hosted := 0
	for _, sb := range s.boxes[spec.Name] {
		if sb.node == n && sb.state != sbDead {
			hosted++
		}
	}
	return hosted
}

// startingOn counts the action's starting sandboxes on n.
func (s *Simulation) startingOn(n *node, spec *ActionSpec) int {
	starting := 0
	for _, sb := range s.boxes[spec.Name] {
		if sb.node == n && sb.state == sbStarting {
			starting++
		}
	}
	return starting
}

// startSandboxOn starts one sandbox of the action on n if its memory allows;
// it never evicts (the home ladder treats eviction as a global-path measure).
func (s *Simulation) startSandboxOn(n *node, spec *ActionSpec) bool {
	if n.down || n.reserved+spec.MemoryBudget > n.memory {
		return false
	}
	n.reserved += spec.MemoryBudget
	sb := &sandbox{spec: spec, node: n, state: sbStarting, born: s.eng.Now(),
		slots: make([]string, spec.Concurrency)}
	for i := 0; i < spec.Concurrency; i++ {
		sb.freeSlots = append(sb.freeSlots, i)
	}
	s.boxes[spec.Name] = append(s.boxes[spec.Name], sb)
	s.res.ColdStarts++
	if s.cfg.Autoscale.Enabled {
		s.asAct(spec.Name).coldStarts++
	}
	s.eng.After(s.cfg.SandboxStart, func() {
		if sb.state != sbStarting {
			return
		}
		sb.state = sbReady
		sb.idleSince = s.eng.Now()
		s.dispatch(spec.Name)
	})
	return true
}

// pickSandbox returns a ready sandbox with a free slot that can serve the
// request. The platform proxy is model-agnostic ("indiscriminately chooses
// idle sandboxes", Figure 7): it takes the FIRST eligible sandbox in
// creation order, which makes multi-model endpoints thrash exactly as the
// paper's All-in-one baseline does. Eligibility models SeMIRT's swap lock:
// a sandbox serving (or preparing) a different model only accepts the
// request once idle.
func (s *Simulation) pickSandbox(spec *ActionSpec, modelID string) *sandbox {
	return s.pickSandboxOn(spec, modelID, nil)
}

// pickSandboxOn is pickSandbox restricted to one node when only != nil.
func (s *Simulation) pickSandboxOn(spec *ActionSpec, modelID string, only *node) *sandbox {
	for _, sb := range s.boxes[spec.Name] {
		if only != nil && sb.node != only {
			continue
		}
		if sb.state != sbReady || len(sb.freeSlots) == 0 {
			continue
		}
		if sb.inFlight == 0 {
			return sb
		}
		// Busy sandbox: only same-model requests can share it (others would
		// block on the swap lock inside the enclave).
		if s.cfg.System == SeSeMI && (sb.servingModel() == modelID || sb.target == modelID) {
			return sb
		}
		if s.cfg.System != SeSeMI {
			return sb
		}
	}
	return nil
}

// maybeStartSandbox starts a new container when queue pressure warrants and
// memory allows; returns false when nothing was started.
func (s *Simulation) maybeStartSandbox(spec *ActionSpec) bool {
	// Avoid a start storm: containers already starting will absorb queue.
	starting := 0
	for _, sb := range s.boxes[spec.Name] {
		if sb.state == sbStarting {
			starting++
		}
	}
	if starting*spec.Concurrency >= len(s.queues[spec.Name]) {
		return false
	}
	n := s.pickNode(spec)
	if n == nil {
		return false
	}
	return s.startSandboxOn(n, spec)
}

func (s *Simulation) pickNode(spec *ActionSpec) *node {
	hosting := map[*node]bool{}
	for _, sb := range s.boxes[spec.Name] {
		if sb.state != sbDead {
			hosting[sb.node] = true
		}
	}
	for _, n := range s.nodes {
		if hosting[n] && !n.down && n.reserved+spec.MemoryBudget <= n.memory {
			return n
		}
	}
	for _, n := range s.nodes {
		if !n.down && n.reserved+spec.MemoryBudget <= n.memory {
			return n
		}
	}
	for _, n := range s.nodes {
		if !n.down && s.evictFor(n, spec.MemoryBudget) {
			return n
		}
	}
	return nil
}

func (s *Simulation) evictFor(n *node, need int64) bool {
	var idle []*sandbox
	var reclaimable int64
	for _, sbs := range s.boxes {
		for _, sb := range sbs {
			if sb.node == n && sb.state == sbReady && sb.inFlight == 0 {
				idle = append(idle, sb)
				reclaimable += sb.spec.MemoryBudget
			}
		}
	}
	if n.reserved-reclaimable+need > n.memory {
		return false
	}
	// LRU by idleSince.
	for n.reserved+need > n.memory && len(idle) > 0 {
		oldest := 0
		for i, sb := range idle {
			if sb.idleSince < idle[oldest].idleSince {
				oldest = i
			}
		}
		s.destroy(idle[oldest])
		s.res.Evictions++
		idle = append(idle[:oldest], idle[oldest+1:]...)
	}
	return n.reserved+need <= n.memory
}

func (s *Simulation) destroy(sb *sandbox) {
	if sb.state == sbDead {
		return
	}
	if sb.state == sbReady && sb.inFlight == 0 {
		s.res.IdleSandboxSeconds += (s.eng.Now() - sb.idleSince).Seconds()
	}
	if sb.enclaveUp {
		sb.node.epcUsed -= sb.spec.EnclaveBytes
		sb.enclaveUp = false
	}
	sb.node.reserved -= sb.spec.MemoryBudget
	sb.state = sbDead
	list := s.boxes[sb.spec.Name]
	for i, x := range list {
		if x == sb {
			s.boxes[sb.spec.Name] = append(list[:i], list[i+1:]...)
			break
		}
	}
}

func (s *Simulation) reap() {
	now := s.eng.Now()
	for name, sbs := range s.boxes {
		// The autoscale mirror's adaptive per-action deadline, when set —
		// the twin of serverless.Cluster.SetKeepWarm feeding ReapIdle.
		keepWarm := s.cfg.KeepWarm
		if ac := s.asActs[name]; ac != nil && ac.keepWarm > 0 {
			keepWarm = ac.keepWarm
		}
		for _, sb := range append([]*sandbox(nil), sbs...) {
			if sb.state == sbReady && sb.inFlight == 0 && now-sb.idleSince >= keepWarm {
				s.destroy(sb)
			}
		}
	}
}

func (s *Simulation) sample() {
	now := s.eng.Now()
	total, serving := 0, 0
	var mem int64
	for _, sbs := range s.boxes {
		for _, sb := range sbs {
			if sb.state == sbDead {
				continue
			}
			total++
			if sb.inFlight > 0 {
				serving++
			}
			mem += sb.spec.MemoryBudget
		}
	}
	s.res.SandboxSeries.Observe(now, float64(total))
	s.res.ServingSeries.Observe(now, float64(serving))
	s.res.MemorySeries.Observe(now, float64(mem))
	s.gb.Sample(now, mem)
}
