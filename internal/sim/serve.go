package sim

import (
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/metrics"
	"sesemi/internal/model"
	"sesemi/internal/obs"
	"sesemi/internal/semirt"
)

// Serving phases, walked in order. Each phase re-evaluates the sandbox state
// when it is reached, so a request that finds a stage already in progress
// (another request creating the enclave, fetching the same keys, or loading
// the same model) waits for it instead of repeating it — the discrete-event
// equivalent of blocking on the live runtime's swap lock.
const (
	phEnclave = iota
	phKeys
	phLoad
	phRuntime
	phExec
	phCrypto
	phDone
)

type progress struct {
	phase int
	kind  semirt.InvocationKind
	stg   costmodel.StageCosts
}

// serve dispatches a request into a sandbox slot and starts its phase walk.
func (s *Simulation) serve(sb *sandbox, req *request) {
	slot := sb.takeSlot()
	if slot < 0 {
		panic("sim: serve on full sandbox")
	}
	if sb.state == sbReady && sb.inFlight == 0 {
		// This dispatch ends an idle period: close it into the accrual.
		s.res.IdleSandboxSeconds += (s.eng.Now() - sb.idleSince).Seconds()
	}
	sb.inFlight++
	sb.target = req.ev.ModelID
	req.started = s.eng.Now()
	req.slot = slot
	stg, err := costmodel.Stages(s.cfg.HW, sb.spec.Framework, s.cfg.costID(req.ev.ModelID))
	if err != nil {
		panic(err)
	}
	if sc := s.rolloutExecScale(req.ev.ModelID); sc != 1 {
		// The canary revision's injected misbehaviour: a slower build of the
		// same model, visible only in its exec stage (Rollout.CanarySlowdown).
		stg.ModelExec = time.Duration(float64(stg.ModelExec) * sc)
	}
	pr := &progress{phase: phEnclave, kind: semirt.Hot, stg: stg}
	if s.crashDraw() {
		// Injected sandbox death, drawn per dispatch like the live
		// per-ECall coin: the sandbox dies mid-execution — after burning
		// real work — and the activation fails over or is lost.
		s.res.SandboxCrashes++
		s.eng.After(stg.ModelExec, func() {
			s.destroy(sb)
			s.failActivation(sb, req)
		})
		return
	}
	// Per-activation platform overhead, charged while the slot is held. A
	// formed batch is one activation (one queue entry, one slot), so the
	// amortization the gateway measures is structural here.
	if d := s.cfg.InvokeOverhead; d > 0 {
		s.res.Stages[obs.StageDispatch] += d
		s.eng.After(d, func() { s.advance(sb, req, pr) })
		return
	}
	s.advance(sb, req, pr)
}

// advance runs the request's next due phase. Phases that are not needed are
// skipped synchronously; phases with a duration schedule a continuation.
func (s *Simulation) advance(sb *sandbox, req *request, pr *progress) {
	if sb.state == sbDead {
		// The sandbox died under this activation (node crash): the phase
		// continuation discovers the death here and fails over instead of
		// advancing — the discrete-event ErrNodeDown.
		s.failActivation(sb, req)
		return
	}
	n := sb.node
	now := s.eng.Now()
	for {
		switch pr.phase {
		case phEnclave:
			need := (!sb.enclaveUp || s.cfg.System == Native) && s.cfg.System != Untrusted
			if !need {
				pr.phase++
				continue
			}
			if s.cfg.System != Native && sb.enclaveReadyAt > now {
				// Another request is creating this enclave: wait for it and
				// then re-check the phase. Like the live runtime, only the
				// request that performs the launch is classified cold.
				s.eng.At(sb.enclaveReadyAt, func() { s.advance(sb, req, pr) })
				return
			}
			pr.kind = semirt.Cold
			n.launching++
			d := costmodel.EnclaveInit(s.cfg.HW, sb.spec.EnclaveBytes, n.launching)
			s.res.Stages[obs.StageColdStart] += d
			sb.enclaveReadyAt = now + d
			s.eng.After(d, func() {
				n.launching--
				// A sandbox that died while launching must not re-acquire
				// EPC — destroy() already returned its accounting.
				if !sb.enclaveUp && sb.state != sbDead {
					sb.enclaveUp = true
					n.epcUsed += sb.spec.EnclaveBytes
				}
				pr.phase = phKeys
				s.advance(sb, req, pr)
			})
			return

		case phKeys:
			pair := req.ev.ModelID + "\x1f" + req.ev.UserID
			var need, cold bool
			switch s.cfg.System {
			case SeSeMI, IsoReuse:
				need = s.cfg.DisableKeyCache || !sb.hasPair(pair)
				cold = !sb.sessionUp
			case Native:
				need, cold = true, true
			case Untrusted:
				need = false
			}
			if !need {
				sb.notePair(pair, s.cfg.keyCap()) // LRU touch on the hit path
				pr.phase++
				continue
			}
			if s.ksDown(now) {
				// Injected key-service outage: the fetch is refused and the
				// activation fails over — resident (cached) principals above
				// never reach here, the live brownout's finish-resident rule.
				s.res.KSRejects++
				s.failActivation(sb, req)
				return
			}
			// Joining an in-flight fetch of the same pair mirrors the live
			// keyCache singleflight; the disabled cache has none (the live
			// request-local path provisions per request), so every request
			// pays its own fetch there.
			if s.cfg.System != Native && !s.cfg.DisableKeyCache &&
				sb.fetchingPair == pair && sb.keysReadyAt > now {
				// The waiter performed no work: classification unchanged.
				s.eng.At(sb.keysReadyAt, func() { s.advance(sb, req, pr) })
				return
			}
			if pr.kind == semirt.Hot {
				pr.kind = semirt.Warm
			}
			n.quoting++
			s.res.KeyFetches++
			d := pr.stg.KeyFetchWarm
			if cold {
				// The cold fetch includes mutual attestation; its RA portion
				// contends with concurrent quote generation (Figure 16).
				d = pr.stg.KeyFetchCold - costmodel.Attestation(s.cfg.HW, 1) +
					costmodel.Attestation(s.cfg.HW, n.quoting)
			}
			s.res.Stages[obs.StageKeyFetch] += d
			sb.fetchingPair = pair
			sb.keysReadyAt = now + d
			s.eng.After(d, func() {
				n.quoting--
				sb.sessionUp = true
				sb.notePair(pair, s.cfg.keyCap())
				sb.fetchingPair = ""
				pr.phase = phLoad
				s.advance(sb, req, pr)
			})
			return

		case phLoad:
			need := sb.loaded != req.ev.ModelID
			if s.cfg.System == IsoReuse || s.cfg.System == Native {
				need = true
			}
			if !need {
				pr.phase++
				continue
			}
			join := s.cfg.System == SeSeMI || s.cfg.System == Untrusted
			if join && sb.loadingModel == req.ev.ModelID && sb.loadReadyAt > now {
				s.eng.At(sb.loadReadyAt, func() { s.advance(sb, req, pr) })
				return
			}
			if pr.kind == semirt.Hot {
				pr.kind = semirt.Warm
			}
			d := pr.stg.ModelLoad
			if s.cfg.Storage == CloudStorage {
				dl, err := costmodel.CloudDownload(s.cfg.costID(req.ev.ModelID))
				if err != nil {
					panic(err)
				}
				d += dl // download + in-enclave decrypt
			} else {
				// Cluster storage: concurrent loads share the NFS link, so
				// the transfer slows with the number of in-flight loads.
				s.activeLoads++
				if spec, ok := model.Zoo[s.cfg.costID(req.ev.ModelID)]; ok {
					xfer := time.Duration(float64(spec.ModelBytes) * float64(s.activeLoads) /
						s.cfg.StorageBandwidth * float64(time.Second))
					if xfer > d {
						d = xfer
					}
				}
			}
			s.res.Stages[obs.StageECall] += d
			sb.loadingModel = req.ev.ModelID
			sb.loadReadyAt = now + d
			s.eng.After(d, func() {
				if s.cfg.Storage != CloudStorage {
					s.activeLoads--
				}
				sb.loaded = req.ev.ModelID
				sb.loadingModel = ""
				// Swapping the model invalidates every slot's runtime.
				for i := range sb.slots {
					sb.slots[i] = ""
				}
				pr.phase = phRuntime
				s.advance(sb, req, pr)
			})
			return

		case phRuntime:
			need := true
			if s.cfg.System == SeSeMI || s.cfg.System == Untrusted {
				need = sb.slots[req.slot] != req.ev.ModelID
			}
			if !need {
				pr.phase++
				continue
			}
			s.res.Stages[obs.StageECall] += pr.stg.RuntimeInit
			s.eng.After(pr.stg.RuntimeInit, func() {
				sb.slots[req.slot] = req.ev.ModelID
				pr.phase = phExec
				s.advance(sb, req, pr)
			})
			return

		case phExec:
			if s.cfg.Batch.Continuous && len(req.batchMembers()) > 1 {
				s.serveContinuous(sb, req, pr)
				return
			}
			n.activeExec++
			// A batch executes its members sequentially inside the single
			// enclave entry (live: HandleBatch loops modelInf in one ECall);
			// a member whose key pair is not in the sandbox LRU refetches
			// over the established session. With a widened cache, distinct
			// users cost one fetch each; with the single-pair cache (or
			// DisableKeyCache) every flip refetches.
			members := req.batchMembers()
			// Each member runs its full step count to completion before the
			// next starts (Event.ExecSteps; live execLocked charges steps ×
			// ModelExec) — the head-of-line exposure Continuous removes.
			steps := 0
			for _, m := range members {
				st := m.ev.ExecSteps
				if st < 1 {
					st = 1
				}
				steps += st
			}
			d := time.Duration(steps) *
				costmodel.ExecUnderLoad(pr.stg.ModelExec, n.activeExec, n.cores)
			s.res.Stages[obs.StageECall] += d
			for i := 1; i < len(members); i++ {
				pair := members[i].ev.ModelID + "\x1f" + members[i].ev.UserID
				if s.cfg.System != SeSeMI && s.cfg.System != IsoReuse {
					continue
				}
				if s.cfg.DisableKeyCache || !sb.hasPair(pair) {
					d += pr.stg.KeyFetchWarm
					s.res.Stages[obs.StageKeyFetch] += pr.stg.KeyFetchWarm
					s.res.KeyFetches++
				}
				sb.notePair(pair, s.cfg.keyCap())
			}
			// EPC oversubscription (SGX1): the request re-pages its working
			// set through the shared swap path (Figure 11b).
			paging := false
			if s.cfg.System != Untrusted && n.epcUsed > s.cfg.HW.EPCBytes() {
				ws, err := costmodel.ExecWorkingSet(sb.spec.Framework, s.cfg.costID(req.ev.ModelID), sb.spec.Concurrency)
				if err == nil {
					n.pagers++
					paging = true
					pd := costmodel.PagingDelay(ws, n.pagers, n.epcUsed, s.cfg.HW.EPCBytes())
					d += pd
					s.res.Stages[obs.StageECall] += pd
				}
			}
			s.eng.After(d, func() {
				n.activeExec--
				if paging {
					n.pagers--
				}
				pr.phase = phCrypto
				s.advance(sb, req, pr)
			})
			return

		case phCrypto:
			if s.cfg.System == Untrusted {
				pr.phase++
				continue
			}
			// Request decrypt + result encrypt happen per batch member.
			d := time.Duration(len(req.batchMembers())) * pr.stg.RequestCrypto
			s.res.Stages[obs.StageECall] += d
			s.eng.After(d, func() {
				pr.phase = phDone
				s.advance(sb, req, pr)
			})
			return

		case phDone:
			s.complete(sb, req, pr.kind)
			return
		}
	}
}

func (s *Simulation) complete(sb *sandbox, req *request, kind semirt.InvocationKind) {
	now := s.eng.Now()
	s.releaseBatchSlot(sb, req, now)
	// Fan the completion out to every batch member. The lead (which did the
	// batch's shared work) keeps the phase-walk classification; later
	// members reuse everything and are hot — mirroring HandleBatch's
	// attribution.
	for i, m := range req.batchMembers() {
		k := kind
		if i > 0 {
			k = semirt.Hot
		}
		s.finishMember(m, req.started, now, k)
	}
	s.finishBatch(req, now)
}

// releaseBatchSlot returns the activation's sandbox slot and tears down a
// Native per-invocation enclave.
func (s *Simulation) releaseBatchSlot(sb *sandbox, req *request, now time.Duration) {
	sb.inFlight--
	sb.releaseSlot(req.slot)
	if sb.inFlight == 0 {
		sb.idleSince = now
		sb.target = ""
	}
	if s.cfg.System == Native && sb.enclaveUp {
		// Native destroys its per-invocation enclave.
		sb.enclaveUp = false
		sb.sessionUp = false
		sb.cachedPairs = nil
		sb.loaded = ""
		sb.enclaveReadyAt = 0
		sb.node.epcUsed -= sb.spec.EnclaveBytes
	}
}

// finishMember records one member's completion at virtual time done.
func (s *Simulation) finishMember(m *request, started, done time.Duration, k semirt.InvocationKind) {
	rr := RequestResult{
		Model:    m.ev.ModelID,
		User:     m.ev.UserID,
		Endpoint: m.ep,
		Arrive:   m.arrive,
		Start:    started,
		Done:     done,
		Kind:     k,
	}
	s.res.Requests = append(s.res.Requests, rr)
	if w := started - m.arrive; w > 0 {
		s.res.Stages[obs.StageQueue] += w
	}
	lat := rr.Latency()
	s.rolloutComplete(rr.Model, lat)
	s.res.All.Add(lat)
	ml := s.res.PerModel[rr.Model]
	if ml == nil {
		ml = &metrics.Latency{}
		s.res.PerModel[rr.Model] = ml
	}
	ml.Add(lat)
	s.res.LatencySeries.Observe(done, lat.Seconds())
	if s.cfg.Shards > 1 {
		s.res.PerShard[s.shardOf(m)]++
	}
	switch k {
	case semirt.Cold:
		s.res.Cold++
	case semirt.Warm:
		s.res.Warm++
	default:
		s.res.Hot++
	}
	if s.cfg.Route != nil {
		s.cfg.Route.Done(m.ep, m.ev.ModelID)
	}
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete(rr)
	}
}

// finishBatch runs the batch-level completion bookkeeping (autoscale
// telemetry, in-flight release, DRR re-arm, re-dispatch) at virtual time now.
func (s *Simulation) finishBatch(req *request, now time.Duration) {
	if now > s.lastEnd {
		s.lastEnd = now
	}
	if s.cfg.Autoscale.Enabled {
		// Service-time/batch telemetry for the capacity model (the live
		// controller's NoteBatch), and the per-action dispatch count the
		// warm-hit rate is computed against (one per queue entry, like the
		// live claim counter — not per batch member).
		st := s.asStream(req.ep, req.ev.ModelID)
		svc := (now - req.started).Seconds()
		if st.svcSeconds == 0 {
			st.svcSeconds = svc
		} else {
			st.svcSeconds += (svc - st.svcSeconds) / 4
		}
		nb := float64(len(req.batchMembers()))
		if st.meanBatch == 0 {
			st.meanBatch = nb
		} else {
			st.meanBatch += (nb - st.meanBatch) / 4
		}
		s.asAct(req.ep).compl++
	}
	if s.cfg.Batch.MaxBatch > 1 && s.cfg.Batch.MaxInFlight > 0 {
		key := s.streamKey(req)
		if s.inflight[key]--; s.inflight[key] <= 0 {
			delete(s.inflight, key)
		}
	}
	if s.cfg.Batch.DRR {
		// A freed release slot lets the stream's backlog form its next batch
		// (and re-arms the formation timer the closed bound suppressed).
		key := s.streamKey(req)
		if h := s.holds[key]; h != nil && h.size > 0 {
			s.releaseDRR(key, h, s.eng.Now()-h.oldest >= s.cfg.Batch.MaxWait)
			s.armHoldTimer(key, h)
		}
	}
	s.dispatch(req.ep)
}

// serveContinuous is the continuous-batching execution of a formed batch
// (BatchSpec.Continuous), entered from phExec in place of the sequential
// member loop. The members execute in a round-robin step loop — frame f
// advances every member with steps remaining by one execution step — so
// member i completes at the cumulative cost of the frames it participated
// in, not at the batch's collective end: a 1-step member batched with a
// 20-step one finishes after frame 1 instead of after all 21 steps. Frames
// each cost StepOverhead (the re-entry the live path pays per step frame,
// Result.SchedSteps) plus one ExecUnderLoad step per active member; members
// longer than the preemption budget additionally pay
// costmodel.PreemptionOverhead for the preempt/resume cycles the live
// gateway would put them through (Result.Preemptions). Per-member crypto and
// key refetches land on the member's own completion, replacing the batch-
// level phCrypto walk.
func (s *Simulation) serveContinuous(sb *sandbox, req *request, pr *progress) {
	n := sb.node
	n.activeExec++
	members := req.batchMembers()
	stepCost := costmodel.ExecUnderLoad(pr.stg.ModelExec, n.activeExec, n.cores)

	steps := make([]int, len(members))
	for i, m := range members {
		st := m.ev.ExecSteps
		if st < 1 {
			st = 1
		}
		steps[i] = st
	}
	// Key refetches for non-lead members, charged to the member's own
	// completion (the live session pays them on the member's final step).
	extra := make([]time.Duration, len(members))
	for i := 1; i < len(members); i++ {
		pair := members[i].ev.ModelID + "\x1f" + members[i].ev.UserID
		if s.cfg.System != SeSeMI && s.cfg.System != IsoReuse {
			continue
		}
		if s.cfg.DisableKeyCache || !sb.hasPair(pair) {
			extra[i] += pr.stg.KeyFetchWarm
			s.res.Stages[obs.StageKeyFetch] += pr.stg.KeyFetchWarm
			s.res.KeyFetches++
		}
		sb.notePair(pair, s.cfg.keyCap())
	}
	// EPC oversubscription applies to the session like to a batch: each
	// member's final step re-pages the working set through the shared path.
	var pagingDelay time.Duration
	paging := false
	if s.cfg.System != Untrusted && n.epcUsed > s.cfg.HW.EPCBytes() {
		ws, err := costmodel.ExecWorkingSet(sb.spec.Framework, s.cfg.costID(req.ev.ModelID), sb.spec.Concurrency)
		if err == nil {
			n.pagers++
			paging = true
			pagingDelay = costmodel.PagingDelay(ws, n.pagers, n.epcUsed, s.cfg.HW.EPCBytes())
		}
	}

	// Frame-by-frame completion offsets.
	offsets := make([]time.Duration, len(members))
	var cum time.Duration
	frames := 0
	for remaining := len(members); remaining > 0; {
		frames++
		active := 0
		for _, st := range steps {
			if st >= frames {
				active++
			}
		}
		cum += s.cfg.Batch.StepOverhead + time.Duration(active)*stepCost
		for i, st := range steps {
			if st == frames {
				offsets[i] = cum
				remaining--
			}
		}
	}
	s.res.SchedSteps += frames
	// The session's frame loop is one long enclave residency: charge the
	// cumulative frame cost, plus each member's crypto and paging, to ecall.
	s.res.Stages[obs.StageECall] += cum +
		time.Duration(len(members))*(pr.stg.RequestCrypto+pagingDelay)
	budget := s.cfg.Batch.PreemptAfter
	last := time.Duration(0)
	for i := range members {
		offsets[i] += extra[i] + pr.stg.RequestCrypto + pagingDelay
		if budget > 0 && steps[i] > budget {
			// The live gateway preempts this member once per exhausted
			// budget window; each cycle re-queues it and re-admits it into a
			// later frame.
			pre := (steps[i] - 1) / budget
			s.res.Preemptions += pre
			po := costmodel.PreemptionOverhead(pre, s.cfg.Batch.StepOverhead+stepCost)
			s.res.Stages[obs.StagePreempt] += po
			offsets[i] += po
		}
		if offsets[i] > last {
			last = offsets[i]
		}
	}

	// Members fan out at their own offsets; the session's slot, contention
	// and batch bookkeeping release when the last member is done. The lead
	// keeps the phase-walk classification (it did the shared work), later
	// members are hot — complete()'s attribution.
	started := req.started
	for i, m := range members {
		k := pr.kind
		if i > 0 {
			k = semirt.Hot
		}
		m, k := m, k
		s.eng.After(offsets[i], func() {
			if sb.state == sbDead {
				// The session's sandbox died before this member's final
				// step: the member re-queues individually (session
				// recovery) or is lost. Members that completed at earlier
				// frames already landed.
				s.failMember(m)
				return
			}
			s.finishMember(m, started, s.eng.Now(), k)
		})
	}
	s.eng.After(last, func() {
		n.activeExec--
		if paging {
			n.pagers--
		}
		if sb.state != sbDead {
			s.releaseBatchSlot(sb, req, s.eng.Now())
		}
		s.finishBatch(req, s.eng.Now())
	})
}
