// Package sim is the discrete-event cluster simulator that regenerates the
// paper's large-scale experiments (Figures 12-14, Tables III-IV) in
// milliseconds of wall time.
//
// The simulator replays the same policies as the live stack — SeMIRT's
// cold/warm/hot state machine with a single cached key pair and
// swap-when-idle model switching, OpenWhisk-style memory-based scheduling
// with keep-warm and LRU eviction, and the FnPacker routing strategy (shared
// code: fnpacker.Strategy) — driving them with the calibrated stage costs of
// internal/costmodel instead of wall-clock sleeps. Hardware contention
// (concurrent enclave launches, attestation bursts, CPU oversubscription,
// EPC paging) is modeled with the same functions the software enclave
// charges.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a minimal discrete-event executor.
type Engine struct {
	now time.Duration
	pq  eventQueue
	seq uint64
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current time.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() time.Duration {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(*event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with time ≤ limit, leaving later events queued.
func (e *Engine) RunUntil(limit time.Duration) {
	for e.pq.Len() > 0 && e.pq[0].at <= limit {
		ev := heap.Pop(&e.pq).(*event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < limit {
		e.now = limit
	}
}
