package sim

import (
	"strconv"
	"testing"
	"time"

	"sesemi/internal/rollout"
	"sesemi/internal/workload"
)

// rampTrace is a steady open-loop stream against the ramped model: users
// u0..u{n-1} each fire one request per period, for the whole window. Distinct
// users matter — the splitter's sticky hash assigns canary share by caller,
// so a single-user trace would be all-or-nothing.
func rampTrace(users int, period, until time.Duration) workload.Trace {
	var tr workload.Trace
	for at := time.Duration(0); at < until; at += period {
		for u := 0; u < users; u++ {
			// Stagger callers inside the period: a synchronized burst every
			// period would queue behind itself and pollute the latency
			// windows the SLO gate reads.
			off := time.Duration(u) * period / time.Duration(users)
			tr = append(tr, workload.Event{At: at + off, ModelID: "mbnet", UserID: "u" + strconv.Itoa(u)})
		}
	}
	return tr
}

// rolloutConfig keeps the offered load well inside one node's capacity:
// the latency-ratio gate compares the canary to a HEALTHY stable baseline,
// so the stable stream must not be queueing.
func rolloutConfig(conc int) Config {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", conc)
	cfg.Rollout = RolloutSpec{
		Enabled:      true,
		Stable:       "mbnet",
		Canary:       "mbnet@v2",
		Steps:        []int{25, 50, 100},
		StepInterval: 10 * time.Second,
		MinSamples:   3,
		SLO:          rollout.SLO{MaxErrorRate: 0.1, MaxLatencyRatio: 3},
	}
	return cfg
}

// A healthy canary rides the full ramp: every window passes the SLO gate, the
// final step promotes it to stable, and nothing is lost along the way.
func TestRolloutHealthyCanaryPromotes(t *testing.T) {
	cfg := rolloutConfig(4)
	res := runTrace(t, cfg, rampTrace(8, time.Second, 40*time.Second))
	if !res.Promoted || res.RolledBack {
		t.Fatalf("promoted=%v rolledback=%v, want promoted", res.Promoted, res.RolledBack)
	}
	if res.Lost != 0 || res.Dropped != 0 {
		t.Fatalf("lost=%d dropped=%d during a healthy ramp", res.Lost, res.Dropped)
	}
	// Both revisions actually served: the canary got its ramped share.
	if res.PerModel["mbnet@v2"] == nil || res.PerModel["mbnet@v2"].Count() == 0 {
		t.Fatal("canary revision never served")
	}
}

// The headline robustness claim: a canary revision 8x slower than stable is
// caught by the latency-ratio gate at a low ramp weight and rolled back —
// with zero lost requests, bounded time-to-rollback, and blast radius capped
// near the first step's weight.
func TestRolloutSlowCanaryRollsBack(t *testing.T) {
	cfg := rolloutConfig(4)
	cfg.Rollout.CanarySlowdown = 8
	total := 8 * 40 // users × periods
	res := runTrace(t, cfg, rampTrace(8, time.Second, 40*time.Second))
	if !res.RolledBack || res.Promoted {
		t.Fatalf("promoted=%v rolledback=%v, want rollback", res.Promoted, res.RolledBack)
	}
	if res.Lost != 0 || res.Dropped != 0 {
		t.Fatalf("lost=%d dropped=%d: rollback leaked requests", res.Lost, res.Dropped)
	}
	// Bounded detection: the breach is visible in the first or second window
	// (cold starts blur window one), plus the drain.
	if res.TimeToRollback <= 0 || res.TimeToRollback > 3*cfg.Rollout.StepInterval {
		t.Fatalf("TimeToRollback = %v, want (0, %v]", res.TimeToRollback, 3*cfg.Rollout.StepInterval)
	}
	// Bounded blast radius: the breach is caught while the ramp weight is
	// still low, so the canary absorbed only a small share of the trace.
	if res.RequestsAffected <= 0 || res.RequestsAffected > total/4 {
		t.Fatalf("RequestsAffected = %d of %d, want a small share", res.RequestsAffected, total)
	}
}

// A canary that fails requests (rather than slowing down) trips the
// error-rate gate the same way.
func TestRolloutErrorRateRollsBack(t *testing.T) {
	cfg := rolloutConfig(4)
	cfg.Rollout.CanaryErrorRate = 0.5
	cfg.Rollout.Seed = 7
	res := runTrace(t, cfg, rampTrace(8, time.Second, 40*time.Second))
	if !res.RolledBack {
		t.Fatalf("50%% canary error rate not rolled back (promoted=%v)", res.Promoted)
	}
}

// Determinism: the same (trace, spec) pair replays to the identical rollback
// outcome — the property every bench number rests on.
func TestRolloutDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := rolloutConfig(4)
		cfg.Rollout.CanarySlowdown = 8
		return runTrace(t, cfg, rampTrace(8, time.Second, 40*time.Second))
	}
	a, b := run(), run()
	if a.TimeToRollback != b.TimeToRollback || a.RequestsAffected != b.RequestsAffected {
		t.Fatalf("replay diverged: (%v, %d) vs (%v, %d)",
			a.TimeToRollback, a.RequestsAffected, b.TimeToRollback, b.RequestsAffected)
	}
}

// A canary id that is not a revision of the stable id is a config error.
func TestRolloutSpecValidation(t *testing.T) {
	cfg := rolloutConfig(1)
	cfg.Rollout.Canary = "other@v2"
	if _, err := New(cfg); err == nil {
		t.Fatal("mismatched canary base accepted")
	}
}
