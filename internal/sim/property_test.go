package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/semirt"
	"sesemi/internal/workload"
)

// TestConservationProperty: for random workloads, every arrival is either
// completed or dropped — never lost — and per-request times are ordered
// (arrive ≤ start ≤ done).
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, rateByte, durByte uint8) bool {
		rate := 0.5 + float64(rateByte%40)
		dur := time.Duration(5+int(durByte%40)) * time.Second
		models := []string{"mbnet", "dsnet"}
		rng := rand.New(rand.NewSource(seed))
		tr := workload.Merge(
			workload.Poisson(seed, rate, dur, models[rng.Intn(2)], "u1"),
			workload.Poisson(seed+7, rate/2, dur, models[rng.Intn(2)], "u2"),
		)
		cfg := Config{
			System:       System(rng.Intn(3)), // SeSeMI, IsoReuse or Native
			HW:           costmodel.SGX2,
			Nodes:        1 + rng.Intn(3),
			CoresPerNode: costmodel.Cores,
			Actions: []ActionSpec{{
				Name: "fn", Framework: "tvm", Concurrency: 1 + rng.Intn(4), DefaultModel: "rsnet",
			}},
		}
		s, err := New(cfg)
		if err != nil {
			return false
		}
		res, err := s.Run(tr)
		if err != nil {
			return false
		}
		if len(res.Requests)+res.Dropped != len(tr) {
			t.Logf("lost requests: %d completed + %d dropped != %d arrivals",
				len(res.Requests), res.Dropped, len(tr))
			return false
		}
		for _, r := range res.Requests {
			if r.Arrive > r.Start || r.Start > r.Done {
				t.Logf("time ordering violated: %+v", r)
				return false
			}
		}
		// Path accounting adds up.
		if res.Cold+res.Warm+res.Hot != len(res.Requests) {
			t.Logf("path counts %d+%d+%d != %d", res.Cold, res.Warm, res.Hot, len(res.Requests))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHotPathDominanceProperty: under SeSeMI with a single user and model,
// every request after the first on each sandbox that is not itself a cold
// start must be hot — the cache can never "forget" within the keep-warm
// window.
func TestHotPathDominanceProperty(t *testing.T) {
	f := func(seed int64, rateByte uint8) bool {
		rate := 1 + float64(rateByte%10)
		tr := workload.Poisson(seed, rate, 60*time.Second, "mbnet", "u")
		cfg := Config{
			System: SeSeMI, HW: costmodel.SGX2, Nodes: 2,
			Actions: []ActionSpec{{Name: "fn", Framework: "tvm", Concurrency: 2, DefaultModel: "mbnet"}},
		}
		s, err := New(cfg)
		if err != nil {
			return false
		}
		res, err := s.Run(tr)
		if err != nil {
			return false
		}
		// Single user, single model: no request is ever warm (warm would
		// mean a key or model switch, which cannot happen).
		if res.Warm != 0 {
			t.Logf("warm invocations with one user and one model: %d", res.Warm)
			return false
		}
		return res.Cold+res.Hot == len(res.Requests)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestBaselineDominanceProperty: for any single-model workload, mean latency
// obeys SeSeMI ≤ Iso-reuse ≤ Native (each baseline strictly repeats more
// work per request).
func TestBaselineDominanceProperty(t *testing.T) {
	f := func(seed int64, rateByte uint8) bool {
		rate := 0.5 + float64(rateByte%3)
		tr := workload.Poisson(seed, rate, 45*time.Second, "dsnet", "u")
		if len(tr) == 0 {
			return true
		}
		mean := func(sys System) time.Duration {
			cfg := Config{
				System: sys, HW: costmodel.SGX2, Nodes: 2,
				Actions: []ActionSpec{{Name: "fn", Framework: "tvm", Concurrency: 1, DefaultModel: "dsnet"}},
			}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(tr)
			if err != nil {
				t.Fatal(err)
			}
			return res.All.Mean()
		}
		se, iso, nat := mean(SeSeMI), mean(IsoReuse), mean(Native)
		if se > iso || iso > nat {
			t.Logf("dominance violated: SeSeMI %v, Iso %v, Native %v (rate %.1f)", se, iso, nat, rate)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestDispatchKindConsistency: the simulator's invocation classification
// matches the live runtime's semantics — cold implies a new enclave,
// hot implies no stage other than exec/crypto (latency == hot path when the
// node is idle).
func TestDispatchKindConsistency(t *testing.T) {
	cfg := oneAction(SeSeMI, "tflm", "dsnet", 1)
	tr := workload.Trace{
		{At: 0, ModelID: "dsnet", UserID: "u"},
		{At: time.Minute, ModelID: "dsnet", UserID: "u"},
		{At: 2 * time.Minute, ModelID: "dsnet", UserID: "u"},
	}
	res := runTrace(t, cfg, tr)
	stg, _ := costmodel.Stages(costmodel.SGX2, "tflm", "dsnet")
	for _, r := range res.Requests {
		if r.Kind == semirt.Hot && r.Latency() != stg.HotPath() {
			t.Fatalf("hot request latency %v != hot path %v", r.Latency(), stg.HotPath())
		}
	}
}
