package sim

import (
	"testing"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/fnpacker"
	"sesemi/internal/semirt"
	"sesemi/internal/workload"
)

func TestEngineOrdering(t *testing.T) {
	var eng Engine
	var got []int
	eng.At(2*time.Second, func() { got = append(got, 2) })
	eng.At(1*time.Second, func() { got = append(got, 1) })
	eng.At(1*time.Second, func() { got = append(got, 11) }) // FIFO at equal times
	eng.After(3*time.Second, func() { got = append(got, 3) })
	end := eng.Run()
	if end != 3*time.Second {
		t.Fatalf("end %v", end)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var eng Engine
	var times []time.Duration
	eng.At(time.Second, func() {
		times = append(times, eng.Now())
		eng.After(500*time.Millisecond, func() {
			times = append(times, eng.Now())
		})
	})
	eng.Run()
	if len(times) != 2 || times[1] != 1500*time.Millisecond {
		t.Fatalf("times %v", times)
	}
}

func TestEngineRunUntil(t *testing.T) {
	var eng Engine
	fired := 0
	eng.At(time.Second, func() { fired++ })
	eng.At(5*time.Second, func() { fired++ })
	eng.RunUntil(2 * time.Second)
	if fired != 1 || eng.Now() != 2*time.Second {
		t.Fatalf("fired=%d now=%v", fired, eng.Now())
	}
	eng.Run()
	if fired != 2 {
		t.Fatalf("fired=%d", fired)
	}
}

func oneAction(system System, fw, modelID string, conc int) Config {
	return Config{
		System:       system,
		HW:           costmodel.SGX2,
		Nodes:        1,
		CoresPerNode: costmodel.Cores,
		Actions: []ActionSpec{{
			Name: "fn", Framework: fw, Concurrency: conc, DefaultModel: modelID,
		}},
	}
}

func runTrace(t *testing.T, cfg Config, tr workload.Trace) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleRequestColdPath(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 1)
	tr := workload.Trace{{At: 0, ModelID: "mbnet", UserID: "u"}}
	res := runTrace(t, cfg, tr)
	if len(res.Requests) != 1 {
		t.Fatalf("requests %d", len(res.Requests))
	}
	stg, _ := costmodel.Stages(costmodel.SGX2, "tvm", "mbnet")
	lat := res.Requests[0].Latency()
	// Cold = sandbox start (500 ms) + cold path (~1.48 s).
	want := 500*time.Millisecond + stg.ColdPath()
	if lat < want-200*time.Millisecond || lat > want+500*time.Millisecond {
		t.Fatalf("cold latency %v, want ≈%v", lat, want)
	}
	if res.Cold != 1 || res.Requests[0].Kind != semirt.Cold {
		t.Fatalf("kind %v", res.Requests[0].Kind)
	}
}

func TestHotPathAfterWarmup(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 1)
	tr := workload.Trace{
		{At: 0, ModelID: "mbnet", UserID: "u"},
		{At: 10 * time.Second, ModelID: "mbnet", UserID: "u"},
	}
	res := runTrace(t, cfg, tr)
	if res.Hot != 1 || res.Cold != 1 {
		t.Fatalf("cold=%d warm=%d hot=%d", res.Cold, res.Warm, res.Hot)
	}
	stg, _ := costmodel.Stages(costmodel.SGX2, "tvm", "mbnet")
	hotLat := res.Requests[1].Latency()
	if hotLat != stg.HotPath() {
		t.Fatalf("hot latency %v, want %v", hotLat, stg.HotPath())
	}
}

func TestUserSwitchIsWarm(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 1)
	tr := workload.Trace{
		{At: 0, ModelID: "mbnet", UserID: "alice"},
		{At: 10 * time.Second, ModelID: "mbnet", UserID: "bob"},
		{At: 20 * time.Second, ModelID: "mbnet", UserID: "bob"},
	}
	res := runTrace(t, cfg, tr)
	if res.Cold != 1 || res.Warm != 1 || res.Hot != 1 {
		t.Fatalf("cold=%d warm=%d hot=%d", res.Cold, res.Warm, res.Hot)
	}
}

// TestSystemsOrdering reproduces the core of Figure 9/12: for a steady
// single-user stream, SeSeMI ≤ Iso-reuse ≤ Native in mean latency, with
// Native paying the full cold path every time.
func TestSystemsOrdering(t *testing.T) {
	tr := workload.FixedRate(0.5, 40*time.Second, "rsnet", "u") // 20 requests, spaced out
	means := map[System]time.Duration{}
	for _, sys := range []System{SeSeMI, IsoReuse, Native} {
		cfg := oneAction(sys, "tvm", "rsnet", 1)
		res := runTrace(t, cfg, tr)
		means[sys] = res.All.Mean()
	}
	if !(means[SeSeMI] < means[IsoReuse] && means[IsoReuse] < means[Native]) {
		t.Fatalf("ordering violated: SeSeMI=%v IsoReuse=%v Native=%v",
			means[SeSeMI], means[IsoReuse], means[Native])
	}
	// Iso-reuse repeats model load + runtime init per request: its steady
	// state must exceed SeSeMI's by roughly those stages.
	stg, _ := costmodel.Stages(costmodel.SGX2, "tvm", "rsnet")
	gap := means[IsoReuse] - means[SeSeMI]
	wantGap := stg.ModelLoad + stg.RuntimeInit
	if gap < wantGap/2 || gap > wantGap*3 {
		t.Fatalf("Iso-reuse gap %v, want ≈%v", gap, wantGap)
	}
}

func TestConcurrencyScalesOut(t *testing.T) {
	// 4 simultaneous requests, concurrency 4: one sandbox. Concurrency 1:
	// four sandboxes.
	tr := workload.Trace{
		{At: 0, ModelID: "mbnet", UserID: "u"},
		{At: time.Millisecond, ModelID: "mbnet", UserID: "u"},
		{At: 2 * time.Millisecond, ModelID: "mbnet", UserID: "u"},
		{At: 3 * time.Millisecond, ModelID: "mbnet", UserID: "u"},
	}
	res4 := runTrace(t, oneAction(SeSeMI, "tvm", "mbnet", 4), tr)
	if res4.ColdStarts != 1 {
		t.Fatalf("concurrency 4: %d sandboxes, want 1", res4.ColdStarts)
	}
	res1 := runTrace(t, oneAction(SeSeMI, "tvm", "mbnet", 1), tr)
	if res1.ColdStarts != 4 {
		t.Fatalf("concurrency 1: %d sandboxes, want 4", res1.ColdStarts)
	}
}

func TestKeepWarmExpiry(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 1)
	cfg.KeepWarm = time.Minute
	tr := workload.Trace{
		{At: 0, ModelID: "mbnet", UserID: "u"},
		// Well past keep-warm: instance reaped, so this is cold again.
		{At: 5 * time.Minute, ModelID: "mbnet", UserID: "u"},
	}
	res := runTrace(t, cfg, tr)
	if res.Cold != 2 {
		t.Fatalf("cold=%d warm=%d hot=%d, want 2 colds", res.Cold, res.Warm, res.Hot)
	}
}

func TestMemorySchedulingLimitsSandboxes(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "rsnet", 1)
	cfg.NodeMemory = 1 << 30 // fits one 896 MiB rsnet container only
	burst := workload.Trace{}
	for i := 0; i < 3; i++ {
		burst = append(burst, workload.Event{At: time.Duration(i) * time.Millisecond, ModelID: "rsnet", UserID: "u"})
	}
	res := runTrace(t, cfg, burst)
	if res.ColdStarts != 1 {
		t.Fatalf("%d sandboxes on a 1 GiB node, want 1", res.ColdStarts)
	}
	if len(res.Requests) != 3 {
		t.Fatalf("served %d, want 3 (queued)", len(res.Requests))
	}
}

func TestEPCPressureSlowsSGX1(t *testing.T) {
	// Three concurrent mbnet sandboxes hold 192 MiB of enclaves on a
	// 128 MiB SGX1 EPC, so hot executions re-page their working sets; the
	// same workload on SGX2 (64 GiB EPC) pays nothing.
	mk := func(hw costmodel.HW) time.Duration {
		cfg := oneAction(SeSeMI, "tvm", "mbnet", 1)
		cfg.HW = hw
		tr := workload.Trace{
			{At: 0, ModelID: "mbnet", UserID: "u"},
			{At: time.Millisecond, ModelID: "mbnet", UserID: "u"},
			{At: 2 * time.Millisecond, ModelID: "mbnet", UserID: "u"},
			// hot round after warmup
			{At: time.Minute, ModelID: "mbnet", UserID: "u"},
			{At: time.Minute + time.Millisecond, ModelID: "mbnet", UserID: "u"},
			{At: time.Minute + 2*time.Millisecond, ModelID: "mbnet", UserID: "u"},
		}
		res := runTrace(t, cfg, tr)
		var worst time.Duration
		for _, r := range res.Requests[3:] {
			if r.Latency() > worst {
				worst = r.Latency()
			}
		}
		return worst
	}
	sgx2 := mk(costmodel.SGX2)
	sgx1 := mk(costmodel.SGX1)
	if sgx1 <= sgx2 {
		t.Fatalf("EPC pressure invisible: sgx1 %v vs sgx2 %v", sgx1, sgx2)
	}
}

func TestFnPackerStrategyIntegration(t *testing.T) {
	// Two models on a shared 2-endpoint pool: concurrent streams must end
	// on separate endpoints with no model switching after warmup.
	actions := []ActionSpec{
		{Name: "pool-0", Framework: "tvm", Concurrency: 1, DefaultModel: "rsnet"},
		{Name: "pool-1", Framework: "tvm", Concurrency: 1, DefaultModel: "rsnet"},
	}
	s, err := New(Config{
		System: SeSeMI, HW: costmodel.SGX2, Nodes: 2, Actions: actions,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fnpacker.NewScheduler(s.EngineClock(), fnpacker.DefaultExclusiveInterval, "pool-0", "pool-1")
	if err != nil {
		t.Fatal(err)
	}
	s.cfg.Route = sched
	tr := workload.Merge(
		workload.FixedRate(0.2, 50*time.Second, "m0", "u0"),
		workload.FixedRate(0.2, 50*time.Second, "m1", "u1"),
	)
	// Model ids m0/m1 use rsnet costs via the action's framework; the cost
	// table needs a known model id, so map them.
	for i := range tr {
		if tr[i].ModelID == "m0" {
			tr[i].ModelID = "rsnet"
		} else {
			tr[i].ModelID = "dsnet"
		}
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	// After the first request, each model must stay on one endpoint.
	eps := map[string]map[string]bool{}
	for _, r := range res.Requests {
		if eps[r.Model] == nil {
			eps[r.Model] = map[string]bool{}
		}
		eps[r.Model][r.Endpoint] = true
	}
	for m, set := range eps {
		if len(set) != 1 {
			t.Fatalf("model %s wandered endpoints: %v", m, set)
		}
	}
	// And warm/hot dominance: after the two colds, everything is hot.
	if res.Cold != 2 {
		t.Fatalf("colds %d, want 2", res.Cold)
	}
	if res.Warm > 2 {
		t.Fatalf("model switching detected: %d warms", res.Warm)
	}
}

func TestGBSecondsAccounting(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "dsnet", 1)
	cfg.KeepWarm = time.Minute
	tr := workload.FixedRate(1, 60*time.Second, "dsnet", "u")
	res := runTrace(t, cfg, tr)
	if res.GBSeconds <= 0 {
		t.Fatal("no GB-s cost recorded")
	}
	// One 256 MiB sandbox alive ~2 minutes (workload + keep-warm) ≈
	// 0.268 GB × 120-180 s ≈ 32-50 GB-s.
	if res.GBSeconds < 20 || res.GBSeconds > 80 {
		t.Fatalf("GB-s %v out of plausible range", res.GBSeconds)
	}
}

func TestSeriesPopulated(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 1)
	tr := workload.FixedRate(2, 30*time.Second, "mbnet", "u")
	res := runTrace(t, cfg, tr)
	if len(res.SandboxSeries.Buckets()) == 0 || len(res.MemorySeries.Buckets()) == 0 {
		t.Fatal("time series empty")
	}
	if len(res.LatencySeries.Buckets()) == 0 {
		t.Fatal("latency series empty")
	}
	if res.End <= 0 {
		t.Fatal("End not set")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("accepted config without actions")
	}
	if _, err := New(Config{Actions: []ActionSpec{{Name: "x", Framework: "tvm"}}}); err == nil {
		t.Fatal("accepted action without enclave sizing")
	}
	if _, err := New(Config{Actions: []ActionSpec{
		{Name: "x", Framework: "tvm", DefaultModel: "mbnet"},
		{Name: "x", Framework: "tvm", DefaultModel: "mbnet"},
	}}); err == nil {
		t.Fatal("accepted duplicate actions")
	}
}
