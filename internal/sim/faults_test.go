package sim

import (
	"testing"
	"time"

	"sesemi/internal/workload"
)

// steadyTrace is n single-user arrivals evenly spaced by gap.
func steadyTrace(n int, gap time.Duration) workload.Trace {
	tr := make(workload.Trace, 0, n)
	for i := 0; i < n; i++ {
		tr = append(tr, workload.Event{At: time.Duration(i) * gap, ModelID: "mbnet", UserID: "u"})
	}
	return tr
}

// A mid-run node kill with the retry budget on loses nothing: in-flight
// activations fail over to the surviving node and every request completes.
func TestSimNodeCrashRecoveryLosesNothing(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 2)
	cfg.Nodes = 2
	cfg.Faults = FaultsSpec{
		Enabled:   true,
		CrashNode: 0,
		CrashAt:   20 * time.Second,
		RestoreAt: 40 * time.Second,
		Retries:   3,
	}
	tr := steadyTrace(300, 200*time.Millisecond)
	res := runTrace(t, cfg, tr)
	if res.Lost != 0 {
		t.Fatalf("Lost = %d, want 0 with recovery on", res.Lost)
	}
	if len(res.Requests) != len(tr) {
		t.Fatalf("completed %d of %d", len(res.Requests), len(tr))
	}
	if res.Retries == 0 {
		t.Fatal("the kill window produced no failovers — fault never bit")
	}
}

// The same kill with recovery off loses the in-flight requests — the
// availability baseline the chaos experiment measures against.
func TestSimNodeCrashWithoutRecoveryLosesRequests(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 2)
	cfg.Nodes = 2
	cfg.Faults = FaultsSpec{
		Enabled:   true,
		CrashNode: 0,
		CrashAt:   20 * time.Second,
		RestoreAt: 40 * time.Second,
		Retries:   0,
	}
	tr := steadyTrace(300, 200*time.Millisecond)
	res := runTrace(t, cfg, tr)
	if res.Lost == 0 {
		t.Fatal("recovery off must lose the killed node's in-flight requests")
	}
	if len(res.Requests)+res.Lost != len(tr) {
		t.Fatalf("completed %d + lost %d != %d", len(res.Requests), res.Lost, len(tr))
	}
}

// Injected sandbox crashes are ridden out by the retry budget, and the seeded
// draw makes the whole run reproducible: same spec, same trace, same Result.
func TestSimSandboxCrashDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := oneAction(SeSeMI, "tvm", "mbnet", 2)
		cfg.Nodes = 2
		cfg.Faults = FaultsSpec{
			Enabled:          true,
			Seed:             7,
			SandboxCrashProb: 0.2,
			Retries:          4,
		}
		return runTrace(t, cfg, steadyTrace(200, 150*time.Millisecond))
	}
	a, b := run(), run()
	if a.SandboxCrashes == 0 {
		t.Fatal("crash probability 0.2 over 200 dispatches drew no crashes")
	}
	if a.Lost != 0 {
		t.Fatalf("Lost = %d, want 0 inside the retry budget", a.Lost)
	}
	if len(a.Requests) != 200 {
		t.Fatalf("completed %d of 200", len(a.Requests))
	}
	if a.SandboxCrashes != b.SandboxCrashes || a.Retries != b.Retries ||
		a.Lost != b.Lost || a.Cold != b.Cold || a.End != b.End {
		t.Fatalf("same seed diverged: %+v vs %+v",
			[5]int{a.SandboxCrashes, a.Retries, a.Lost, a.Cold, int(a.End)},
			[5]int{b.SandboxCrashes, b.Retries, b.Lost, b.Cold, int(b.End)})
	}
}

// A key-service outage window rejects fetches for fresh principals; retries
// re-dispatch until the window lapses, so nothing is lost — while the
// resident principal (cached keys) is untouched, the brownout's
// finish-resident rule.
func TestSimKeyServiceOutageRetriedAcrossWindow(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 2)
	cfg.Faults = FaultsSpec{
		Enabled:       true,
		KSOutageAt:    10 * time.Second,
		KSOutageUntil: 12 * time.Second,
		Retries:       3,
		RetryBackoff:  500 * time.Millisecond,
	}
	tr := workload.Trace{
		// Warm the resident user before the window.
		{At: 0, ModelID: "mbnet", UserID: "resident"},
		// A fresh principal arrives mid-window: its fetch is refused, the
		// backoff ladder carries it past the window's end.
		{At: 10500 * time.Millisecond, ModelID: "mbnet", UserID: "fresh"},
		// The resident's cached keys never touch the key service.
		{At: 10600 * time.Millisecond, ModelID: "mbnet", UserID: "resident"},
	}
	res := runTrace(t, cfg, tr)
	if res.KSRejects == 0 {
		t.Fatal("the fresh principal's fetch was never refused")
	}
	if res.Lost != 0 || len(res.Requests) != len(tr) {
		t.Fatalf("lost %d, completed %d of %d", res.Lost, len(res.Requests), len(tr))
	}
	if res.Retries == 0 {
		t.Fatal("no failover recorded for the refused fetch")
	}
}
