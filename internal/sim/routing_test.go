package sim

import (
	"testing"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/workload"
)

// simRun builds and runs a simulation over the trace, failing the test on
// configuration errors.
func simRun(t *testing.T, cfg Config, tr workload.Trace) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMaxInFlightBoundSaturatesThroughput is the gateway-aware MaxInFlight
// model: with ample sandbox slots, 16 simultaneous arrivals form 8 batches;
// unbounded they run concurrently, while MaxInFlight 1 serializes the stream,
// so the run takes several times longer — throughput saturates at the
// dispatch bound, not at cluster capacity.
func TestMaxInFlightBoundSaturatesThroughput(t *testing.T) {
	build := func(maxInFlight int) Config {
		return Config{
			System:       Untrusted, // isolate queueing: no enclave/key phases
			HW:           costmodel.Native,
			Nodes:        1,
			CoresPerNode: 64,
			NodeMemory:   64 << 30,
			SandboxStart: time.Millisecond,
			Actions: []ActionSpec{{
				Name: "fn-mbnet", Framework: "tvm", Concurrency: 16,
				DefaultModel: "mbnet",
			}},
			Batch: BatchSpec{MaxBatch: 2, MaxWait: time.Millisecond, MaxInFlight: maxInFlight},
		}
	}
	var tr workload.Trace
	for i := 0; i < 16; i++ {
		tr = append(tr, workload.Event{At: 0, ModelID: "mbnet", UserID: "u"})
	}

	unbounded := simRun(t, build(0), tr)
	bounded := simRun(t, build(1), tr)
	if unbounded.Dropped != 0 || bounded.Dropped != 0 {
		t.Fatalf("drops: unbounded %d bounded %d", unbounded.Dropped, bounded.Dropped)
	}
	if unbounded.Batches != 8 || bounded.Batches != 8 {
		t.Fatalf("batches: unbounded %d bounded %d, want 8", unbounded.Batches, bounded.Batches)
	}
	// 8 batches through a 1-wide dispatch pipe take ~8 service times; the
	// unbounded run overlaps them. Well over 3x apart even with contention.
	if bounded.End < 3*unbounded.End {
		t.Fatalf("MaxInFlight=1 end %v not >= 3x unbounded end %v", bounded.End, unbounded.End)
	}
	// The bound must also hold mid-run: a second stream on the same endpoint
	// is not blocked by the first stream's bound (it skips, FIFO preserved
	// within each stream) — covered by the multi-model affinity test below.
}

// TestAffinityReducesModelSwaps mirrors the live routing experiment in the
// discrete-event harness: two models behind one endpoint on two nodes, each
// node fitting one sandbox. Indiscriminate placement ping-pongs both models
// through both enclaves (every pick hits a sandbox warm for the other model
// and reloads — Warm path); affinity homes each model on its own node, so
// after the first load everything is Hot.
func TestAffinityReducesModelSwaps(t *testing.T) {
	build := func(affinity bool) Config {
		return Config{
			System:       SeSeMI,
			HW:           costmodel.SGX2,
			Nodes:        2,
			CoresPerNode: 12,
			NodeMemory:   256 << 20,
			SandboxStart: 100 * time.Millisecond,
			KeepWarm:     10 * time.Minute,
			Actions: []ActionSpec{{
				Name: "fn", Framework: "tvm", Concurrency: 1,
				DefaultModel: "mbnet", MemoryBudget: 256 << 20,
			}},
			ModelCosts: map[string]string{"ma": "mbnet", "mb": "mbnet"},
			Affinity:   affinity,
		}
	}
	// Alternate models with enough spacing that sandboxes are idle at each
	// arrival — the indiscriminate proxy then always reuses the first idle
	// sandbox, whatever model it holds.
	var tr workload.Trace
	for i := 0; i < 100; i++ {
		m := "ma"
		if i%2 == 1 {
			m = "mb"
		}
		tr = append(tr, workload.Event{At: time.Duration(i) * 500 * time.Millisecond, ModelID: m, UserID: "u"})
	}

	plain := simRun(t, build(false), tr)
	sticky := simRun(t, build(true), tr)
	if plain.Dropped != 0 || sticky.Dropped != 0 {
		t.Fatalf("drops: plain %d sticky %d", plain.Dropped, sticky.Dropped)
	}
	// Affinity: one cold per model, everything else hot; no re-homing.
	if sticky.Warm+sticky.Cold > 4 {
		t.Fatalf("affinity run rebuilt state %d times (warm %d cold %d)", sticky.Warm+sticky.Cold, sticky.Warm, sticky.Cold)
	}
	if sticky.Rehomes != 0 {
		t.Fatalf("affinity re-homed %d times on a stable cluster", sticky.Rehomes)
	}
	// Indiscriminate placement swaps persistently: the majority of requests
	// pay a model reload.
	if plain.Warm <= 5*sticky.Warm || plain.Warm < 50 {
		t.Fatalf("indiscriminate warm count %d vs affinity %d: swap thrash not reproduced", plain.Warm, sticky.Warm)
	}
	if sticky.All.Mean() >= plain.All.Mean() {
		t.Fatalf("affinity mean latency %v not below indiscriminate %v", sticky.All.Mean(), plain.All.Mean())
	}
}

// TestAffinityRehomesOffDeadNode: when a stream's home node loses all its
// sandboxes (eviction by a memory-hungry neighbour action), the stream
// re-homes instead of stalling.
func TestAffinityRehomesOffDeadNode(t *testing.T) {
	cfg := Config{
		System:       SeSeMI,
		HW:           costmodel.SGX2,
		Nodes:        2,
		CoresPerNode: 12,
		NodeMemory:   256 << 20,
		SandboxStart: 50 * time.Millisecond,
		KeepWarm:     time.Second, // reaped quickly: the home dies between bursts
		Actions: []ActionSpec{{
			Name: "fn", Framework: "tvm", Concurrency: 1,
			DefaultModel: "mbnet", MemoryBudget: 256 << 20,
		}},
		ModelCosts: map[string]string{"ma": "mbnet"},
		Affinity:   true,
	}
	// Two bursts separated by well over KeepWarm: the home's sandbox is
	// reaped in between, so the second burst finds an empty home. It must
	// still be served (rehome or restart — not a stall).
	tr := workload.Trace{
		{At: 0, ModelID: "ma", UserID: "u"},
		{At: 30 * time.Second, ModelID: "ma", UserID: "u"},
	}
	res := simRun(t, cfg, tr)
	if res.Dropped != 0 {
		t.Fatalf("dropped %d", res.Dropped)
	}
	if got := len(res.Requests); got != 2 {
		t.Fatalf("served %d of 2", got)
	}
}
