package sim

import (
	"testing"
	"time"

	"sesemi/internal/obs"
	"sesemi/internal/workload"
)

// A cold request's phase walk must land virtual time in the obs stage
// taxonomy: enclave launch in cold_start, key provisioning in key_fetch, and
// the in-enclave load/init/exec/crypto in ecall.
func TestStageDecompositionColdPath(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 1)
	tr := workload.Trace{{At: 0, ModelID: "mbnet", UserID: "u"}}
	res := runTrace(t, cfg, tr)
	for _, st := range []obs.Stage{obs.StageColdStart, obs.StageKeyFetch, obs.StageECall} {
		if res.Stages[st] <= 0 {
			t.Errorf("stage %s empty", st)
		}
	}
	// The charged service stages fit inside the request's dispatch-to-done
	// window (cold sandbox start is deliberately outside the taxonomy).
	svc := res.Requests[0].Done - res.Requests[0].Start
	sum := res.Stages[obs.StageColdStart] + res.Stages[obs.StageKeyFetch] +
		res.Stages[obs.StageECall]
	if sum <= 0 || sum > svc+time.Millisecond {
		t.Fatalf("service stages sum %v, want within (0, %v]", sum, svc)
	}
	br := res.StageBreakdown()
	if br["cold_start"] != res.Stages[obs.StageColdStart] || len(br) < 3 {
		t.Fatalf("breakdown %v inconsistent with Stages", br)
	}
}

// Back-to-back requests on a single-slot action serialize: the second one's
// wait must accrue to the queue stage.
func TestStageDecompositionQueueWait(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 1)
	tr := workload.Trace{
		{At: 0, ModelID: "mbnet", UserID: "u"},
		{At: 0, ModelID: "mbnet", UserID: "u"},
	}
	res := runTrace(t, cfg, tr)
	if res.Stages[obs.StageQueue] <= 0 {
		t.Fatalf("queue stage %v, want > 0 for a serialized pair", res.Stages[obs.StageQueue])
	}
}
