package sim

import (
	"fmt"
	"math/rand"
	"time"

	"sesemi/internal/model"
	"sesemi/internal/rollout"
)

// Rollout mirror: the discrete-event twin of the canary rollout plane
// (internal/rollout). It shares the LIVE pick and gate logic — the splitter's
// sticky weighted Target and the pure rollout.Evaluate — on the engine's
// virtual clock, so ramp-vs-rollback outcomes (time-to-rollback, requests
// affected) replay deterministically from a (trace, spec) pair. The canary's
// misbehaviour is injected per spec (a slowdown multiplier on its modeled
// exec, a seeded app-level error rate), mirroring the bench's deliberately
// slow revision without touching the trace.
type RolloutSpec struct {
	// Enabled turns the rollout mirror on; everything below is ignored off.
	Enabled bool
	// Stable is the workload model id the ramp applies to; arrivals for it
	// are re-targeted through the splitter.
	Stable string
	// Canary is the canary's versioned model id (e.g. Stable + "@v2"). Its
	// cost lookups resolve through model.BaseID, so it shares the stable
	// revision's calibration unless skewed below.
	Canary string
	// Steps is the weight ramp in percent (default rollout.DefaultSteps).
	Steps []int
	// StepInterval is the observation window per step (default 10s).
	StepInterval time.Duration
	// MinSamples is the minimum canary window to judge (default 10).
	MinSamples int
	// SLO gates each promotion (rollout.Evaluate).
	SLO rollout.SLO
	// CanarySlowdown multiplies the canary's modeled exec stage (1 or 0 =
	// no skew) — the "bad revision" of the rollback experiments.
	CanarySlowdown float64
	// CanaryErrorRate is a seeded per-request probability that a canary
	// completion is counted as an application error in the SLO window (the
	// request still occupies serving resources — a misbehaving model, not a
	// crashing one).
	CanaryErrorRate float64
	// Seed pins the error draws (independent of Faults.Seed).
	Seed int64
}

func (r *RolloutSpec) defaults() error {
	if !r.Enabled {
		return nil
	}
	if r.Stable == "" || r.Canary == "" {
		return fmt.Errorf("sim: rollout needs Stable and Canary model ids")
	}
	if model.BaseID(r.Canary) != r.Stable {
		return fmt.Errorf("sim: canary %q is not a revision of stable %q", r.Canary, r.Stable)
	}
	if len(r.Steps) == 0 {
		r.Steps = rollout.DefaultSteps
	}
	if r.StepInterval <= 0 {
		r.StepInterval = 10 * time.Second
	}
	if r.MinSamples <= 0 {
		r.MinSamples = 10
	}
	return nil
}

// rolloutMirror is the live controller's state on the virtual clock.
type rolloutMirror struct {
	spec     RolloutSpec
	split    *rollout.Splitter
	rng      *rand.Rand
	step     int
	inFlight int // canary members arrived but not yet completed/lost/dropped
	terminal bool
}

// initRollout builds the mirror (called from New).
func (s *Simulation) initRollout() error {
	spec := &s.cfg.Rollout
	if err := spec.defaults(); err != nil {
		return err
	}
	if !spec.Enabled {
		return nil
	}
	s.roll = &rolloutMirror{
		spec:  *spec,
		split: rollout.NewSplitter(spec.Stable),
		rng:   rand.New(rand.NewSource(spec.Seed)),
	}
	return nil
}

// scheduleRollout begins the ramp at t=0 and arms the step ticks (called
// from Run, like scheduleFaults). Ticks stop at the horizon so a ramp still
// holding when the trace drains cannot keep the engine alive forever.
func (s *Simulation) scheduleRollout(horizon time.Duration) {
	r := s.roll
	if r == nil {
		return
	}
	r.split.SetCanary(r.spec.Canary, r.spec.Steps[0])
	var tick func()
	tick = func() {
		if r.terminal {
			return
		}
		s.rolloutTick()
		if !r.terminal && s.eng.Now() < horizon {
			s.eng.After(r.spec.StepInterval, tick)
		}
	}
	s.eng.After(r.spec.StepInterval, tick)
}

// rolloutTick is one controller step: snapshot the windows, run the shared
// SLO gate, and promote / hold / roll back exactly as the live controller
// would.
func (s *Simulation) rolloutTick() {
	r := s.roll
	canaryW := r.split.TakeWindow(r.spec.Canary)
	stableW := r.split.TakeWindow(r.spec.Stable)
	switch rollout.Evaluate(r.spec.SLO, canaryW, stableW, r.spec.MinSamples) {
	case rollout.Hold:
	case rollout.Promote:
		if r.step == len(r.spec.Steps)-1 {
			r.split.SetCanary(r.spec.Canary, 100)
			r.split.Promote()
			r.terminal = true
			s.res.Promoted = true
			return
		}
		r.step++
		r.split.SetCanary(r.spec.Canary, r.spec.Steps[r.step])
	case rollout.Rollback:
		// Weight to zero stops new canary traffic this instant; the drain
		// then waits for in-flight canary members (queued or executing) to
		// land — complete, fail over, or drop — before the rollback is
		// declared done, the live controller's revoke-after-drain ordering.
		r.split.SetCanary(r.spec.Canary, 0)
		r.terminal = true
		var drain func()
		drain = func() {
			if r.inFlight > 0 {
				s.eng.After(time.Millisecond, drain)
				return
			}
			s.res.RolledBack = true
			s.res.TimeToRollback = s.eng.Now()
			s.res.RequestsAffected = int(r.split.Served(r.spec.Canary))
		}
		drain()
	}
}

// rolloutTarget re-targets one arrival through the splitter (identity when
// the mirror is off or the arrival is not the ramped model). The sim's
// request streams have no tenant dimension, so stickiness keys on the user —
// a user never flaps between revisions mid-ramp.
func (s *Simulation) rolloutTarget(modelID, userID string) string {
	r := s.roll
	if r == nil || modelID != r.spec.Stable {
		return modelID
	}
	target := r.split.Target("", userID)
	if target == r.spec.Canary {
		r.inFlight++
	}
	return target
}

// rolloutExecScale is the canary's injected exec-stage multiplier (1 for
// every other model, or when no skew is configured).
func (s *Simulation) rolloutExecScale(modelID string) float64 {
	r := s.roll
	if r == nil || modelID != r.spec.Canary || r.spec.CanarySlowdown <= 0 {
		return 1
	}
	return r.spec.CanarySlowdown
}

// rolloutComplete feeds one completed member into its revision's SLO window.
func (s *Simulation) rolloutComplete(modelID string, lat time.Duration) {
	r := s.roll
	if r == nil {
		return
	}
	switch modelID {
	case r.spec.Canary:
		r.inFlight--
		failed := r.spec.CanaryErrorRate > 0 && r.rng.Float64() < r.spec.CanaryErrorRate
		r.split.Observe(modelID, lat, failed)
	case r.spec.Stable:
		r.split.Observe(modelID, lat, false)
	}
}

// rolloutLost releases a canary member that will never complete (faulted
// with the budget exhausted, or dropped at the queue timeout) and records it
// as an error observation.
func (s *Simulation) rolloutLost(modelID string) {
	r := s.roll
	if r == nil {
		return
	}
	switch modelID {
	case r.spec.Canary:
		r.inFlight--
		r.split.Observe(modelID, 0, true)
	case r.spec.Stable:
		r.split.Observe(modelID, 0, true)
	}
}
