package sim

import (
	"testing"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/workload"
)

func TestBatchFormationGroupsAndDelays(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 4)
	cfg.Batch = BatchSpec{MaxBatch: 4, MaxWait: 100 * time.Millisecond}
	// Four simultaneous arrivals fill one batch instantly; a fifth, 10 s
	// later, flushes alone on the deadline.
	tr := workload.Trace{
		{At: 0, ModelID: "mbnet", UserID: "u"},
		{At: 0, ModelID: "mbnet", UserID: "u"},
		{At: 0, ModelID: "mbnet", UserID: "u"},
		{At: 0, ModelID: "mbnet", UserID: "u"},
		{At: 10 * time.Second, ModelID: "mbnet", UserID: "u"},
	}
	res := runTrace(t, cfg, tr)
	if len(res.Requests) != 5 {
		t.Fatalf("requests %d", len(res.Requests))
	}
	if res.Batches != 2 {
		t.Fatalf("batches %d, want 2", res.Batches)
	}
	if got := res.BatchSizes.Max(); got != 4 {
		t.Fatalf("max batch %v", got)
	}
	// The straggler waited the full MaxWait before dispatch: its latency is
	// at least MaxWait + the hot path.
	stg, _ := costmodel.Stages(costmodel.SGX2, "tvm", "mbnet")
	last := res.Requests[len(res.Requests)-1]
	if last.Start-last.Arrive != cfg.Batch.MaxWait {
		t.Fatalf("straggler queued %v, want %v", last.Start-last.Arrive, cfg.Batch.MaxWait)
	}
	if lat := last.Latency(); lat < cfg.Batch.MaxWait+stg.HotPath() {
		t.Fatalf("straggler latency %v", lat)
	}
}

func TestBatchFormationDisabledByDefault(t *testing.T) {
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 1)
	tr := workload.Trace{{At: 0, ModelID: "mbnet", UserID: "u"}}
	res := runTrace(t, cfg, tr)
	if res.Batches != 0 || res.BatchSizes.Count() != 0 {
		t.Fatalf("batching ran while disabled: %d batches", res.Batches)
	}
}

func TestBatchFormationKeysPerModel(t *testing.T) {
	// Two models on one endpoint: simultaneous arrivals must not share a
	// batch, mirroring the gateway's per-(action, model) queues.
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 4)
	cfg.ModelCosts = map[string]string{"a": "mbnet", "b": "mbnet"}
	cfg.Batch = BatchSpec{MaxBatch: 2, MaxWait: 50 * time.Millisecond}
	tr := workload.Trace{
		{At: 0, ModelID: "a", UserID: "u"},
		{At: 0, ModelID: "b", UserID: "u"},
	}
	res := runTrace(t, cfg, tr)
	if res.Batches != 2 {
		t.Fatalf("batches %d, want 2 (one per model)", res.Batches)
	}
	if got := res.BatchSizes.Max(); got != 1 {
		t.Fatalf("max batch %v, want 1", got)
	}
}

// TestBatchFormationMatchesCostModel cross-checks the simulated mean
// formation delay against costmodel.BatchFormationDelay's first-order
// estimate on a steady stream.
func TestBatchFormationMatchesCostModel(t *testing.T) {
	const rate = 100.0 // rps; fill time for a batch of 8 = 70 ms
	maxBatch := 8
	maxWait := 200 * time.Millisecond
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 8)
	cfg.Batch = BatchSpec{MaxBatch: maxBatch, MaxWait: maxWait}
	tr := workload.FixedRate(rate, 10*time.Second, "mbnet", "u")
	res := runTrace(t, cfg, tr)

	var sum time.Duration
	var n int
	// Skip the cold ramp: measure steady-state formation (dispatch - arrive)
	// on the second half of the run. Queueing behind busy slots inflates the
	// wait, so compare the batch-dominated portion loosely.
	for _, r := range res.Requests {
		if r.Arrive > 5*time.Second {
			sum += r.Start - r.Arrive
			n++
		}
	}
	if n == 0 {
		t.Fatal("no steady-state requests")
	}
	measured := sum / time.Duration(n)
	want := costmodel.BatchFormationDelay(rate, maxBatch, maxWait)
	if want <= 0 {
		t.Fatalf("estimate %v", want)
	}
	// FixedRate spaces arrivals deterministically, so the measured mean wait
	// should sit within 3x of the Poisson first-order estimate.
	if measured > 3*want+50*time.Millisecond {
		t.Fatalf("measured formation %v, estimate %v", measured, want)
	}
	if res.Batches == 0 || res.BatchSizes.Mean() < 2 {
		t.Fatalf("batches=%d mean size=%v", res.Batches, res.BatchSizes.Mean())
	}
}

// TestBatchingAmortizesInvokeOverhead is the sim-side mirror of the live
// gateway experiment: with a per-activation overhead configured, batching
// must show a net latency benefit (the overhead is paid once per batch),
// not just the formation cost.
func TestBatchingAmortizesInvokeOverhead(t *testing.T) {
	trace := func() workload.Trace {
		// Warm-up request well before the burst so the burst is all-hot.
		tr := workload.Trace{{At: 0, ModelID: "mbnet", UserID: "u"}}
		for i := 0; i < 8; i++ {
			tr = append(tr, workload.Event{At: 10 * time.Second, ModelID: "mbnet", UserID: "u"})
		}
		return tr
	}

	run := func(batched bool) *Result {
		cfg := oneAction(SeSeMI, "tvm", "mbnet", 1)
		cfg.InvokeOverhead = 200 * time.Millisecond
		// Room for exactly one sandbox: the burst serializes through one
		// slot, so activation overhead is the dominant per-request cost.
		cfg.NodeMemory = 192 << 20
		if batched {
			cfg.Batch = BatchSpec{MaxBatch: 8, MaxWait: 10 * time.Millisecond}
		}
		return runTrace(t, cfg, trace())
	}

	unbatched := run(false)
	batched := run(true)
	// Concurrency 1: the 8-request burst serializes through one slot. The
	// unbatched path pays 200 ms overhead per request; batched pays it once
	// per batch, so completion of the burst must be far earlier.
	if batched.End >= unbatched.End {
		t.Fatalf("batching showed no benefit: batched end %v, unbatched end %v", batched.End, unbatched.End)
	}
	saved := unbatched.End - batched.End
	if saved < 1*time.Second { // ~7 overhead charges avoided (1.4 s), allow slack
		t.Fatalf("amortization too small: saved %v", saved)
	}
	if batched.Hot != unbatched.Hot || batched.Cold != unbatched.Cold {
		t.Fatalf("classification drift: batched %+v vs unbatched %+v",
			[2]int{batched.Cold, batched.Hot}, [2]int{unbatched.Cold, unbatched.Hot})
	}
}
