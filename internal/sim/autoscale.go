package sim

// The discrete-event mirror of the predictive autoscaler
// (internal/autoscale): the same policy functions — Holt forecast over
// windowed arrival rates, Little's-law warm target, adaptive keep-warm —
// run on the simulator's virtual clock. arrive() feeds the admission
// counts, complete() the service-time telemetry, and autoscaleStep (one
// event per Config.Autoscale.Window) issues prestart/scale-down decisions,
// so simulated ramp behaviour reproduces the live controller's ranking
// deterministically.

import (
	"sesemi/internal/autoscale"
	"sesemi/internal/costmodel"
)

// asStream returns (creating if needed) the stream's forecasting state.
func (s *Simulation) asStream(ep, model string) *asStream {
	key := ep + "\x1f" + model
	st := s.asStreams[key]
	if st == nil {
		st = &asStream{ep: ep, model: model,
			holt: autoscale.NewHolt(s.cfg.Autoscale.Alpha, s.cfg.Autoscale.Beta)}
		s.asStreams[key] = st
	}
	return st
}

// asAct returns (creating if needed) the action's control state.
func (s *Simulation) asAct(ep string) *asActState {
	ac := s.asActs[ep]
	if ac == nil {
		ac = &asActState{}
		s.asActs[ep] = ac
	}
	return ac
}

// autoscaleStep runs one control interval — the mirror of
// autoscale.Controller.Step.
func (s *Simulation) autoscaleStep() {
	cfg := s.cfg.Autoscale
	win := cfg.Window.Seconds()
	want := map[string]int{}
	wantKey := map[string]string{} // action -> stream key placing the prewarm
	best := map[string]int{}
	for key, st := range s.asStreams {
		rate := float64(st.count) / win
		st.count = 0
		st.holt.Observe(rate)
		f := st.holt.Forecast(cfg.Horizon)
		spec := s.actions[st.ep]
		if spec == nil {
			continue
		}
		target := autoscale.TargetSandboxes(f, st.svcSeconds, st.meanBatch,
			spec.Concurrency, cfg.Headroom, cfg.MaxWarm)
		want[st.ep] += target
		if target > best[st.ep] {
			best[st.ep] = target
			wantKey[st.ep] = key
		}
	}
	// MaxWarm caps the ACTION's pool (streams share it), like the live
	// controller: summed stream targets sit under one cap.
	for ep, w := range want {
		if w > cfg.MaxWarm {
			want[ep] = cfg.MaxWarm
		}
	}
	for ep, w := range want {
		spec := s.actions[ep]
		ac := s.asAct(ep)
		live, idle := 0, 0
		for _, sb := range s.boxes[ep] {
			if sb.state == sbDead {
				continue
			}
			live++
			if sb.state == sbReady && sb.inFlight == 0 {
				idle++
			}
		}
		// Scale-down: this window's warm-hit rate (dispatches that did not
		// force a sandbox start) and the pool's idle fraction adapt the
		// action's keep-warm deadline — the twin of the live controller
		// feeding AdaptKeepWarm from Cluster.ActionStats.
		dCold := ac.coldStarts - ac.prevCold
		dCompl := ac.compl - ac.prevCompl
		ac.prevCold, ac.prevCompl = ac.coldStarts, ac.compl
		warmHit := 1.0
		if dCompl > 0 {
			warmHit = 1 - float64(dCold)/float64(dCompl)
			if warmHit < 0 {
				warmHit = 0
			}
		}
		// Only a pool beyond the forecast target counts as oversized (the
		// live controller's anti-churn gate, mirrored): headroom the
		// controller provisioned must not trigger its own reaping.
		idleFrac := 0.0
		if live > w {
			idleFrac = float64(idle) / float64(live)
		}
		ac.keepWarm = autoscale.AdaptKeepWarm(ac.keepWarm, cfg.MinKeepWarm, s.cfg.KeepWarm,
			warmHit, idleFrac, cfg.WarmHitTarget, cfg.IdleTarget)
		// Scale-up: prestart toward the forecast target; never evicts.
		for live < w {
			n := s.prewarmNode(spec, wantKey[ep])
			if n == nil || !s.startPrewarmedOn(n, spec) {
				break
			}
			live++
		}
	}
}

// prewarmNode picks where proactive capacity lands: the stream's affinity
// home when routing is mirrored, else a node already hosting the action,
// else any node with room. It never evicts (the live Prewarm's rule:
// evicting idle sandboxes to prewarm would cannibalize the warm pool).
func (s *Simulation) prewarmNode(spec *ActionSpec, key string) *node {
	if s.cfg.Affinity && key != "" {
		if n := s.homeFor(key); n != nil && n.reserved+spec.MemoryBudget <= n.memory {
			return n
		}
	}
	hosting := map[*node]bool{}
	for _, sb := range s.boxes[spec.Name] {
		if sb.state != sbDead {
			hosting[sb.node] = true
		}
	}
	for _, n := range s.nodes {
		if hosting[n] && n.reserved+spec.MemoryBudget <= n.memory {
			return n
		}
	}
	for _, n := range s.nodes {
		if n.reserved+spec.MemoryBudget <= n.memory {
			return n
		}
	}
	return nil
}

// startPrewarmedOn starts one sandbox whose enclave is already built when it
// turns ready — the mirror of serverless.Cluster.Prewarm, whose instance
// factory launches the enclave during the container start. The first request
// into it pays keys and model load (Warm), not enclave creation (Cold):
// that conversion is the cold-start saving the experiment measures.
func (s *Simulation) startPrewarmedOn(n *node, spec *ActionSpec) bool {
	if n.reserved+spec.MemoryBudget > n.memory {
		return false
	}
	n.reserved += spec.MemoryBudget
	sb := &sandbox{spec: spec, node: n, state: sbStarting, born: s.eng.Now(),
		slots: make([]string, spec.Concurrency)}
	for i := 0; i < spec.Concurrency; i++ {
		sb.freeSlots = append(sb.freeSlots, i)
	}
	s.boxes[spec.Name] = append(s.boxes[spec.Name], sb)
	s.res.ColdStarts++
	s.res.Prewarmed++
	s.asAct(spec.Name).coldStarts++
	n.launching++
	d := s.cfg.SandboxStart
	if s.cfg.System != Untrusted {
		d += costmodel.EnclaveInit(s.cfg.HW, spec.EnclaveBytes, n.launching)
	}
	s.eng.After(d, func() {
		n.launching--
		if sb.state != sbStarting {
			return
		}
		sb.state = sbReady
		if s.cfg.System != Untrusted {
			sb.enclaveUp = true
			n.epcUsed += spec.EnclaveBytes
			sb.enclaveReadyAt = s.eng.Now()
		}
		sb.idleSince = s.eng.Now()
		s.dispatch(spec.Name)
	})
	return true
}
