package sim

import (
	"testing"
	"time"

	"sesemi/internal/workload"
)

// holTrace forms one batch out of a 20-step request and six single-step
// requests arriving together (after a warm-up that makes the burst all-hot).
// Under form-then-fire the shorts wait for the long member's 20 steps; under
// continuous batching they complete at their own step frames.
func holTrace() workload.Trace {
	tr := workload.Trace{{At: 0, ModelID: "mbnet", UserID: "u"}}
	burst := 10 * time.Second
	tr = append(tr, workload.Event{At: burst, ModelID: "mbnet", UserID: "long", ExecSteps: 20})
	for i := 0; i < 6; i++ {
		tr = append(tr, workload.Event{At: burst, ModelID: "mbnet", UserID: "u"})
	}
	return tr
}

func runHOL(t *testing.T, continuous bool) *Result {
	t.Helper()
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 8)
	cfg.Batch = BatchSpec{MaxBatch: 8, MaxWait: 10 * time.Millisecond, Continuous: continuous}
	return runTrace(t, cfg, holTrace())
}

func shortStats(res *Result) (maxLat time.Duration, n int) {
	for _, r := range res.Requests {
		if r.User != "u" || r.Arrive == 0 {
			continue
		}
		n++
		if lat := r.Latency(); lat > maxLat {
			maxLat = lat
		}
	}
	return maxLat, n
}

func TestContinuousBatchingUnblocksShorts(t *testing.T) {
	fire := runHOL(t, false)
	cont := runHOL(t, true)
	if len(fire.Requests) != 8 || len(cont.Requests) != 8 {
		t.Fatalf("requests: fire %d cont %d, want 8 each", len(fire.Requests), len(cont.Requests))
	}

	fireMax, fn := shortStats(fire)
	contMax, cn := shortStats(cont)
	if fn != 6 || cn != 6 {
		t.Fatalf("short counts: fire %d cont %d, want 6 each", fn, cn)
	}
	// The discipline's point: shorts stop paying for the long member's tail.
	// Sequential execution holds every short for ≥20 steps; the step loop
	// releases each at its own frame (1 step + frame overheads).
	if contMax >= fireMax/2 {
		t.Fatalf("continuous did not unblock shorts: max short latency %v vs %v form-then-fire",
			contMax, fireMax)
	}

	// The long member pays the fairness trade: preempted (20 steps over the
	// default budget of 4) and charged PreemptionOverhead, never starved.
	if cont.Preemptions == 0 {
		t.Fatal("no preemptions recorded for the 20-step member")
	}
	if cont.SchedSteps < 20 {
		t.Fatalf("SchedSteps %d, want ≥ 20 (one frame per long-member step)", cont.SchedSteps)
	}
	if fire.Preemptions != 0 || fire.SchedSteps != 0 {
		t.Fatalf("form-then-fire counted continuous overheads: %d preemptions, %d steps",
			fire.Preemptions, fire.SchedSteps)
	}
}

// TestContinuousMatchesSequentialWorkTotal pins conservation: both
// disciplines complete the same requests with the same path classification —
// continuous reshuffles completion times, it does not drop or reclassify
// work.
func TestContinuousMatchesSequentialWorkTotal(t *testing.T) {
	fire := runHOL(t, false)
	cont := runHOL(t, true)
	if fire.Cold != cont.Cold || fire.Hot+fire.Warm != cont.Hot+cont.Warm {
		t.Fatalf("classification drift: fire cold=%d warm=%d hot=%d, cont cold=%d warm=%d hot=%d",
			fire.Cold, fire.Warm, fire.Hot, cont.Cold, cont.Warm, cont.Hot)
	}
	// The long member finishes in both runs, later than any short in the
	// continuous run (budget 4 on 20 steps → 4 preempt/resume cycles).
	var longDone time.Duration
	for _, r := range cont.Requests {
		if r.User == "long" {
			longDone = r.Latency()
		}
	}
	if longDone == 0 {
		t.Fatal("long member never completed under continuous batching")
	}
	maxShort, _ := shortStats(cont)
	if longDone <= maxShort {
		t.Fatalf("long member (%v) finished before a short (%v)", longDone, maxShort)
	}
}

func TestContinuousSingleMemberFallsThrough(t *testing.T) {
	// A batch of one takes the sequential path even with Continuous on: no
	// frames, no preemptions — the step loop only pays off with company.
	cfg := oneAction(SeSeMI, "tvm", "mbnet", 4)
	cfg.Batch = BatchSpec{MaxBatch: 4, MaxWait: time.Millisecond, Continuous: true}
	tr := workload.Trace{{At: 0, ModelID: "mbnet", UserID: "u", ExecSteps: 20}}
	res := runTrace(t, cfg, tr)
	if len(res.Requests) != 1 {
		t.Fatalf("requests %d", len(res.Requests))
	}
	if res.SchedSteps != 0 || res.Preemptions != 0 {
		t.Fatalf("solo batch entered the step loop: %d steps, %d preemptions",
			res.SchedSteps, res.Preemptions)
	}
}
