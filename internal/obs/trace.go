package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"sesemi/internal/vclock"
)

// Config tunes a Tracer.
type Config struct {
	// TraceSample is the head-sampling probability in [0, 1]: the fraction
	// of requests whose finished trace is retained in the ring. The
	// decision is made at Start (head sampling) from the trace id, so one
	// request's spans either all survive or all drop. Anomalous traces
	// (shed, retry, preemption, SLO breach) are ALWAYS retained regardless.
	TraceSample float64
	// Ring is the kept-trace ring capacity (default 512). Old traces are
	// overwritten; Snapshot returns the survivors in id order.
	Ring int
	// Clock supplies monotonic timestamps (default vclock.Real). Under a
	// Manual clock spans carry virtual durations, which is what lets the
	// deterministic tests assert exact decompositions.
	Clock vclock.Clock
}

// Tracer owns trace lifecycle: Start mints a trace for a request, Finish
// folds its spans into the per-stage decomposition and retains it (sampled
// or anomalous) in a lock-light sharded ring. A nil *Tracer is valid and
// free: every method no-ops, and Start returns a nil *Trace whose methods
// also no-op — tracing-disabled costs one pointer test per call site.
type Tracer struct {
	clock     vclock.Clock
	threshold uint64 // head-sample iff mix64(id) < threshold
	seq       atomic.Uint64

	started   atomic.Uint64
	kept      atomic.Uint64
	dropped   atomic.Uint64
	anomalous atomic.Uint64

	// Per-stage decomposition over ALL finished traces (not just retained
	// ones): span nanos and counts, plus end-to-end nanos for coverage.
	stageNanos [NumStages]atomic.Int64
	stageCount [NumStages]atomic.Int64
	e2eNanos   atomic.Int64
	e2eCount   atomic.Int64

	shards [traceShards]traceShard
	pool   sync.Pool
}

const traceShards = 8

type traceShard struct {
	mu   sync.Mutex
	ring []TraceRecord
	next int
	n    int
}

// NewTracer builds a tracer. Returns nil when cfg.TraceSample < 0 — the
// explicit "tracing off" spelling, so call sites hold one nil-able pointer.
func NewTracer(cfg Config) *Tracer {
	if cfg.TraceSample < 0 {
		return nil
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 512
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	tr := &Tracer{clock: cfg.Clock}
	if cfg.TraceSample >= 1 {
		tr.threshold = ^uint64(0)
	} else {
		tr.threshold = uint64(cfg.TraceSample * float64(1<<63) * 2)
	}
	per := (cfg.Ring + traceShards - 1) / traceShards
	for i := range tr.shards {
		tr.shards[i].ring = make([]TraceRecord, per)
	}
	tr.pool.New = func() any { return new(Trace) }
	return tr
}

// mix64 is a splitmix64 finalizer: turns the sequential trace id into a
// uniform 64-bit hash, so head sampling needs no RNG state or lock.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Trace is one request's in-flight span collection. It is touched by the
// admitting goroutine, then the dispatching goroutine (handed off under the
// gateway lock), and stitched spans arrive from the invoke path — the
// internal mutex makes all of that safe and is uncontended in practice.
// A nil *Trace no-ops every method.
type Trace struct {
	id                    uint64
	action, model, tenant string
	begin                 time.Time
	head                  bool // head-sample decision, made at Start

	mu        sync.Mutex
	spans     []Span
	anomalies []string
}

// Start mints a trace for one request. The returned trace is pooled:
// Finish is its last touch.
func (tr *Tracer) Start(action, model, tenant string) *Trace {
	if tr == nil {
		return nil
	}
	id := tr.seq.Add(1)
	t := tr.pool.Get().(*Trace)
	t.id = id
	t.action, t.model, t.tenant = action, model, tenant
	t.begin = tr.clock.Now()
	t.head = mix64(id) < tr.threshold
	t.spans = t.spans[:0]
	t.anomalies = t.anomalies[:0]
	tr.started.Add(1)
	return t
}

// Now is the tracer's clock read, for call sites that bracket a stage
// themselves. Returns the zero time on a nil tracer.
func (tr *Tracer) Now() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.clock.Now()
}

// Observe records a stage spanning [start, end) in absolute clock time.
func (t *Trace) Observe(stage Stage, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, Start: start.Sub(t.begin), End: end.Sub(t.begin)})
	t.mu.Unlock()
}

// Attach grafts a remotely-measured duration as a child span ending at end
// — how wire-reported (cold_start, key_fetch, ecall) stage durations from
// the semirt envelope stitch into the gateway-side trace.
func (t *Trace) Attach(stage Stage, end time.Time, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	off := end.Sub(t.begin)
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, Start: off - d, End: off})
	t.mu.Unlock()
}

// Anomaly marks the trace anomalous (shed, retry, preempt, SLO breach...):
// it will be retained at Finish even when head sampling passed on it.
func (t *Trace) Anomaly(reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.anomalies = append(t.anomalies, reason)
	t.mu.Unlock()
}

// Sampled reports whether head sampling selected this trace. Anomalies are
// retained regardless; call sites use this to skip optional work (e.g.
// requesting wire stage measurement) for traces that will drop.
func (t *Trace) Sampled() bool { return t != nil && t.head }

// Finish seals the trace: folds its spans into the tracer's per-stage
// decomposition, retains it in the ring when head-sampled or anomalous,
// and recycles the Trace. The caller must not touch t afterwards.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	e2e := tr.clock.Now().Sub(t.begin)
	t.mu.Lock()
	spans, anomalies := t.spans, t.anomalies
	for _, s := range spans {
		tr.stageNanos[s.Stage].Add(int64(s.End - s.Start))
		tr.stageCount[s.Stage].Add(1)
	}
	tr.e2eNanos.Add(int64(e2e))
	tr.e2eCount.Add(1)
	keep := t.head || len(anomalies) > 0
	if len(anomalies) > 0 {
		tr.anomalous.Add(1)
	}
	if keep {
		rec := TraceRecord{
			ID: t.id, Action: t.action, Model: t.model, Tenant: t.tenant,
			E2E:     e2e,
			Sampled: t.head,
			Spans:   append([]Span(nil), spans...),
		}
		if len(anomalies) > 0 {
			rec.Anomalies = append([]string(nil), anomalies...)
		}
		sh := &tr.shards[t.id%traceShards]
		sh.mu.Lock()
		sh.ring[sh.next] = rec
		sh.next = (sh.next + 1) % len(sh.ring)
		if sh.n < len(sh.ring) {
			sh.n++
		}
		sh.mu.Unlock()
		tr.kept.Add(1)
	} else {
		tr.dropped.Add(1)
	}
	t.mu.Unlock()
	tr.pool.Put(t)
}

// TraceRecord is an immutable retained trace.
type TraceRecord struct {
	ID                    uint64        `json:"id"`
	Action, Model, Tenant string        `json:"-"`
	E2E                   time.Duration `json:"e2e"`
	// Sampled distinguishes head-sampled retention from anomaly-only.
	Sampled   bool     `json:"sampled"`
	Spans     []Span   `json:"spans"`
	Anomalies []string `json:"anomalies,omitempty"`
}

// StageTotals sums span durations per stage.
func (r TraceRecord) StageTotals() [NumStages]time.Duration {
	var out [NumStages]time.Duration
	for _, s := range r.Spans {
		out[s.Stage] += s.Dur()
	}
	return out
}

// Coverage is the fraction of the end-to-end latency explained by the
// trace's top-level spans — 1.0 means the stage partition is gapless.
func (r TraceRecord) Coverage() float64 {
	if r.E2E <= 0 {
		return 0
	}
	var sum time.Duration
	for st, d := range r.StageTotals() {
		if Stage(st).TopLevel() {
			sum += d
		}
	}
	return float64(sum) / float64(r.E2E)
}

// Snapshot returns the retained traces in id order.
func (tr *Tracer) Snapshot() []TraceRecord {
	if tr == nil {
		return nil
	}
	var out []TraceRecord
	for i := range tr.shards {
		sh := &tr.shards[i]
		sh.mu.Lock()
		for j := 0; j < sh.n; j++ {
			out = append(out, sh.ring[j])
		}
		sh.mu.Unlock()
	}
	sortRecords(out)
	return out
}

func sortRecords(recs []TraceRecord) {
	// Insertion sort: rings are small and nearly ordered per shard.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].ID < recs[j-1].ID; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// TracerStats are the tracer's lifetime counters.
type TracerStats struct {
	// Started counts traces minted; Kept / Dropped partition the finished
	// ones; Anomalous counts finishes carrying at least one anomaly mark.
	Started, Kept, Dropped, Anomalous uint64
}

// Stats returns the lifetime counters.
func (tr *Tracer) Stats() TracerStats {
	if tr == nil {
		return TracerStats{}
	}
	return TracerStats{
		Started:   tr.started.Load(),
		Kept:      tr.kept.Load(),
		Dropped:   tr.dropped.Load(),
		Anomalous: tr.anomalous.Load(),
	}
}

// StageStat is one row of the aggregate decomposition.
type StageStat struct {
	Stage string        `json:"stage"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total"`
	Mean  time.Duration `json:"mean"`
}

// Decomposition reports per-stage totals over every finished trace —
// sampled, dropped and anomalous alike (the aggregation is atomic counters,
// so it costs nothing to be complete). Stages never observed are omitted.
func (tr *Tracer) Decomposition() []StageStat {
	if tr == nil {
		return nil
	}
	out := make([]StageStat, 0, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		n := tr.stageCount[st].Load()
		if n == 0 {
			continue
		}
		tot := time.Duration(tr.stageNanos[st].Load())
		out = append(out, StageStat{Stage: st.String(), Count: n, Total: tot, Mean: tot / time.Duration(n)})
	}
	return out
}

// Coverage is the aggregate top-level-span share of end-to-end time across
// all finished traces (0 when none finished).
func (tr *Tracer) Coverage() float64 {
	if tr == nil || tr.e2eNanos.Load() <= 0 {
		return 0
	}
	var sum int64
	for st := Stage(0); st < NumStages; st++ {
		if st.TopLevel() {
			sum += tr.stageNanos[st].Load()
		}
	}
	return float64(sum) / float64(tr.e2eNanos.Load())
}

// RegisterMetrics exports the tracer's counters and per-stage totals on reg.
func (tr *Tracer) RegisterMetrics(reg *Registry, labels Labels) {
	if tr == nil || reg == nil {
		return
	}
	reg.CounterFunc("sesemi_trace_started_total", "Traces minted.", labels,
		func() float64 { return float64(tr.started.Load()) })
	reg.CounterFunc("sesemi_trace_kept_total", "Finished traces retained in the ring.", labels,
		func() float64 { return float64(tr.kept.Load()) })
	reg.CounterFunc("sesemi_trace_anomalous_total", "Finished traces carrying an anomaly mark.", labels,
		func() float64 { return float64(tr.anomalous.Load()) })
	for st := Stage(0); st < NumStages; st++ {
		st := st
		l := labels.With("stage", st.String())
		reg.CounterFunc("sesemi_trace_stage_seconds_total", "Per-stage time across finished traces.", l,
			func() float64 { return time.Duration(tr.stageNanos[st].Load()).Seconds() })
		reg.CounterFunc("sesemi_trace_stage_spans_total", "Per-stage span count across finished traces.", l,
			func() float64 { return float64(tr.stageCount[st].Load()) })
	}
}

// Sink collects absolute-time spans from layers that see a whole batch
// rather than one request — the serverless placement path records cold
// starts here via context, and the gateway grafts the drained spans into
// every member trace of the dispatch. A nil *Sink no-ops.
type Sink struct {
	mu    sync.Mutex
	spans []timedSpan
}

type timedSpan struct {
	stage      Stage
	start, end time.Time
}

// Observe records a stage over absolute [start, end).
func (s *Sink) Observe(stage Stage, start, end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.spans = append(s.spans, timedSpan{stage, start, end})
	s.mu.Unlock()
}

// DrainInto replays the collected spans into a trace and clears the sink.
func (s *Sink) DrainInto(t *Trace) {
	if s == nil {
		return
	}
	s.mu.Lock()
	spans := s.spans
	s.spans = nil
	s.mu.Unlock()
	for _, sp := range spans {
		t.Observe(sp.stage, sp.start, sp.end)
	}
}

// Each visits the collected spans without clearing them.
func (s *Sink) Each(fn func(stage Stage, start, end time.Time)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	spans := append([]timedSpan(nil), s.spans...)
	s.mu.Unlock()
	for _, sp := range spans {
		fn(sp.stage, sp.start, sp.end)
	}
}

type sinkKey struct{}

// NewContext returns ctx carrying the sink.
func NewContext(ctx context.Context, s *Sink) context.Context {
	return context.WithValue(ctx, sinkKey{}, s)
}

// SinkFrom extracts the sink from ctx (nil when absent — and a nil Sink is
// safe to record into, so call sites need no branch).
func SinkFrom(ctx context.Context) *Sink {
	s, _ := ctx.Value(sinkKey{}).(*Sink)
	return s
}
