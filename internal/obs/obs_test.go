package obs

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sesemi/internal/metrics"
	"sesemi/internal/vclock"
)

func TestStageNamesAndPartition(t *testing.T) {
	want := []string{"admit", "queue", "form", "dispatch", "cold_start",
		"key_fetch", "ecall", "fanout", "retry", "preempt"}
	for i, name := range want {
		if Stage(i).String() != name {
			t.Fatalf("stage %d = %q, want %q", i, Stage(i), name)
		}
	}
	top := 0
	for s := Stage(0); s < NumStages; s++ {
		if s.TopLevel() {
			top++
		}
	}
	if top != 5 {
		t.Fatalf("top-level stages %d, want 5 (admit queue form dispatch fanout)", top)
	}
}

// A contiguous stage walk under a manual clock decomposes exactly: the
// top-level spans partition the end-to-end latency with coverage 1.0.
func TestTraceDecompositionExact(t *testing.T) {
	clk := vclock.NewManual()
	tr := NewTracer(Config{TraceSample: 1, Clock: clk})
	tc := tr.Start("act", "m", "tenant-a")
	if !tc.Sampled() {
		t.Fatal("sample=1 trace not head-sampled")
	}
	walk := []struct {
		stage Stage
		d     time.Duration
	}{
		{StageAdmit, 1 * time.Millisecond},
		{StageQueue, 4 * time.Millisecond},
		{StageForm, 2 * time.Millisecond},
		{StageDispatch, 10 * time.Millisecond},
		{StageFanout, 3 * time.Millisecond},
	}
	for _, w := range walk {
		start := clk.Now()
		clk.Advance(w.d)
		tc.Observe(w.stage, start, clk.Now())
	}
	// Children inside dispatch must not perturb coverage.
	tc.Attach(StageECall, clk.Now(), 8*time.Millisecond)
	tr.Finish(tc)

	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("kept %d traces, want 1", len(recs))
	}
	r := recs[0]
	if r.E2E != 20*time.Millisecond {
		t.Fatalf("e2e %v, want 20ms", r.E2E)
	}
	tot := r.StageTotals()
	for _, w := range walk {
		if tot[w.stage] != w.d {
			t.Fatalf("stage %v total %v, want %v", w.stage, tot[w.stage], w.d)
		}
	}
	if tot[StageECall] != 8*time.Millisecond {
		t.Fatalf("attached ecall %v", tot[StageECall])
	}
	if c := r.Coverage(); c != 1.0 {
		t.Fatalf("coverage %v, want 1.0", c)
	}
	if c := tr.Coverage(); c != 1.0 {
		t.Fatalf("aggregate coverage %v, want 1.0", c)
	}
}

func TestTracerHeadSampling(t *testing.T) {
	tr := NewTracer(Config{TraceSample: 0, Ring: 64})
	for i := 0; i < 100; i++ {
		tr.Finish(tr.Start("a", "m", "t"))
	}
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("sample=0 kept %d traces", got)
	}
	// Anomalies are retained regardless of the head decision.
	tc := tr.Start("a", "m", "t")
	tc.Anomaly("shed")
	tr.Finish(tc)
	recs := tr.Snapshot()
	if len(recs) != 1 || recs[0].Anomalies[0] != "shed" || recs[0].Sampled {
		t.Fatalf("anomaly retention broken: %+v", recs)
	}
	st := tr.Stats()
	if st.Started != 101 || st.Kept != 1 || st.Dropped != 100 || st.Anomalous != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Sampling rate lands near the configured probability.
	tr = NewTracer(Config{TraceSample: 0.25, Ring: 4096})
	for i := 0; i < 4000; i++ {
		tr.Finish(tr.Start("a", "m", "t"))
	}
	kept := int(tr.Stats().Kept)
	if kept < 800 || kept > 1200 {
		t.Fatalf("sample=0.25 kept %d/4000", kept)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(Config{TraceSample: 1, Ring: 16})
	for i := 0; i < 500; i++ {
		tr.Finish(tr.Start("a", "m", "t"))
	}
	recs := tr.Snapshot()
	if len(recs) == 0 || len(recs) > 16+traceShards {
		t.Fatalf("ring kept %d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].ID < recs[i-1].ID {
			t.Fatal("snapshot not id-ordered")
		}
	}
}

// Nil tracer and nil trace are free no-ops — the disabled path.
func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	tc := tr.Start("a", "m", "t")
	tc.Observe(StageAdmit, time.Time{}, time.Time{})
	tc.Attach(StageECall, time.Time{}, time.Millisecond)
	tc.Anomaly("x")
	tr.Finish(tc)
	if tr.Snapshot() != nil || tr.Decomposition() != nil || tc.Sampled() {
		t.Fatal("nil tracer leaked state")
	}
	var sink *Sink
	sink.Observe(StageColdStart, time.Time{}, time.Time{})
	sink.DrainInto(nil)
}

func TestSinkThroughContext(t *testing.T) {
	if SinkFrom(context.Background()) != nil {
		t.Fatal("empty context produced a sink")
	}
	clk := vclock.NewManual()
	sink := &Sink{}
	ctx := NewContext(context.Background(), sink)
	start := clk.Now()
	clk.Advance(7 * time.Millisecond)
	SinkFrom(ctx).Observe(StageColdStart, start, clk.Now())

	tr := NewTracer(Config{TraceSample: 1, Clock: clk})
	tc := tr.Start("a", "m", "t")
	sink.DrainInto(tc)
	tr.Finish(tc)
	recs := tr.Snapshot()
	if len(recs) != 1 || recs[0].StageTotals()[StageColdStart] != 7*time.Millisecond {
		t.Fatalf("sink span not grafted: %+v", recs)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(Config{TraceSample: 0.5, Ring: 128})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tc := tr.Start("a", "m", "t")
				now := tr.Now()
				tc.Observe(StageQueue, now, now.Add(time.Millisecond))
				if i%10 == 0 {
					tc.Anomaly("retry")
				}
				tr.Finish(tc)
			}
		}()
	}
	wg.Wait()
	st := tr.Stats()
	if st.Started != 2400 || st.Kept+st.Dropped != 2400 {
		t.Fatalf("stats %+v", st)
	}
	_ = tr.Snapshot()
	_ = tr.Decomposition()
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("sesemi_test_requests_total", "Requests.", Labels{"tenant": "a", "model": "m"})
	c.Add(3)
	// Same name+labels returns the same handle.
	if reg.Counter("sesemi_test_requests_total", "Requests.", Labels{"model": "m", "tenant": "a"}) != c {
		t.Fatal("counter not idempotent on label order")
	}
	g := reg.Gauge("sesemi_test_depth", "Queue depth.", nil)
	g.Set(4.5)
	reg.GaugeFunc("sesemi_test_warm", "Warm sandboxes.", Labels{"node": "n0"}, func() float64 { return 2 })
	reg.CounterFunc("sesemi_test_cold_total", "Cold starts.", Labels{"node": `quo"te`}, func() float64 { return 7 })

	h := metrics.NewHistogram(1)
	h.Observe(0.5)
	h.Observe(2.5)
	reg.HistogramFunc("sesemi_test_batch", "Batch sizes.", nil, func() HistSnapshot { return HistogramSnapshot(h) })

	var lat metrics.Latency
	lat.Add(10 * time.Millisecond)
	lat.Add(20 * time.Millisecond)
	reg.SummaryFunc("sesemi_test_e2e_seconds", "E2E latency.", nil, 1e-9, lat.Snapshot)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`sesemi_test_requests_total{model="m",tenant="a"} 3`,
		`sesemi_test_depth 4.5`,
		`sesemi_test_warm{node="n0"} 2`,
		`sesemi_test_cold_total{node="quo\"te"} 7`,
		`sesemi_test_batch_bucket{le="+Inf"} 2`,
		`sesemi_test_batch_count 2`,
		`sesemi_test_e2e_seconds{quantile="0.95"} 0.02`,
		`sesemi_test_e2e_seconds_count 2`,
		"# TYPE sesemi_test_batch histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition fails its own parse check: %v\n%s", err, out)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sesemi_x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("type conflict did not panic")
		}
	}()
	reg.Gauge("sesemi_x_total", "", nil)
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no samples":    "# TYPE a counter\n",
		"untyped":       "lonely_metric 1\n",
		"bad value":     "# TYPE m counter\nm notanumber\n",
		"bad name":      "# TYPE 9bad counter\n9bad 1\n",
		"bad type":      "# TYPE m widget\nm 1\n",
		"bad comment":   "# NOPE m counter\nm 1\n",
		"unbalanced":    "# TYPE m counter\nm}x{ 1\n",
		"empty output":  "",
		"malformed typ": "# TYPE m\nm 1\n",
	}
	for name, in := range cases {
		if err := CheckExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestMountServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sesemi_up_total", "", nil).Inc()
	mux := http.NewServeMux()
	Mount(mux, reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil || res.StatusCode != 200 {
		t.Fatalf("/metrics: %v %v", err, res)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("served exposition invalid: %v", err)
	}

	res, err = srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil || res.StatusCode != 200 {
		t.Fatalf("pprof: %v %v", err, res)
	}
	res.Body.Close()
}
