package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// withExtra inserts one more label pair into an already-encoded label block
// — how bucket "le" and summary "quantile" labels join the series labels.
func withExtra(enc, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if enc == "" {
		return "{" + pair + "}"
	}
	return enc[:len(enc)-1] + "," + pair + "}"
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families and series in sorted order so
// scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		// Series order: registration order is stable, but sort for scrape
		// diffability (label sets are few per family).
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			s := f.series[key]
			switch {
			case s.counter != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, fmtFloat(s.gauge.Value()))
			case s.valueFn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, fmtFloat(s.valueFn()))
			case s.histFn != nil:
				snap := s.histFn()
				for _, b := range snap.Buckets {
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, withExtra(s.labels, "le", fmtFloat(b.Upper)), b.Count)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, withExtra(s.labels, "le", "+Inf"), snap.Count)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(snap.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, s.labels, snap.Count)
			case s.summaryFn != nil:
				sum := s.summaryFn()
				for _, q := range []struct {
					q string
					v float64
				}{{"0.5", float64(sum.P50)}, {"0.95", float64(sum.P95)}, {"0.99", float64(sum.P99)}} {
					fmt.Fprintf(bw, "%s%s %s\n", f.name, withExtra(s.labels, "quantile", q.q), fmtFloat(q.v*s.scale))
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(float64(sum.Mean)*float64(sum.Count)*s.scale))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, s.labels, sum.Count)
			}
		}
	}
	return bw.Flush()
}

// ServeHTTP makes the registry a /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// Mount wires the observability endpoints onto a mux: GET /metrics serving
// reg, and the net/http/pprof handlers under /debug/pprof/.
func Mount(mux *http.ServeMux, reg *Registry) {
	if reg != nil {
		mux.Handle("GET /metrics", reg)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CheckExposition is the minimal exposition-format parse check the obstax
// smoke gates /metrics output on: every line is a HELP/TYPE comment or a
// `name[{labels}] value` sample whose value parses as a float and whose
// family (after stripping the histogram/summary _bucket/_sum/_count
// suffixes) was declared by a preceding TYPE line.
func CheckExposition(data []byte) error {
	typed := map[string]bool{}
	samples := 0
	for n, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", n+1, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", n+1, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", n+1, fields[3])
				}
				typed[fields[2]] = true
			}
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return fmt.Errorf("line %d: unbalanced label braces", n+1)
			}
			name, rest = line[:i], strings.TrimSpace(line[j+1:])
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name, rest = line[:i], strings.TrimSpace(line[i+1:])
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", n+1, name)
		}
		val := rest
		if i := strings.IndexByte(rest, ' '); i >= 0 { // optional timestamp
			val = rest[:i]
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("line %d: sample value %q: %v", n+1, val, err)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if t := strings.TrimSuffix(name, suf); t != name && typed[t] {
				base = t
				break
			}
		}
		if !typed[base] {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", n+1, name)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	return nil
}
