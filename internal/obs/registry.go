package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sesemi/internal/metrics"
)

// Labels is one metric's label set (tenant, model, revision, shard, node...).
type Labels map[string]string

// With returns a copy of l with k=v added — the non-mutating builder the
// per-stage and per-tenant registration loops use.
func (l Labels) With(k, v string) Labels {
	out := make(Labels, len(l)+1)
	for lk, lv := range l {
		out[lk] = lv
	}
	out[k] = v
	return out
}

// encode renders the label set in Prometheus form, keys sorted, values
// escaped. Empty labels encode to "".
func (l Labels) encode() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistBucket is one cumulative bucket: Count observations ≤ Upper.
type HistBucket struct {
	Upper float64
	Count uint64
}

// HistSnapshot is a point-in-time histogram view for scrape-time export.
type HistSnapshot struct {
	Buckets []HistBucket // cumulative, ascending Upper
	Count   uint64
	Sum     float64
}

// HistogramSnapshot adapts a metrics.Histogram (per-bucket counts) into the
// cumulative form Prometheus expects — the bridge from every component's
// existing histograms into the unified registry.
func HistogramSnapshot(h *metrics.Histogram) HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	raw := h.Snapshot()
	out := HistSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: make([]HistBucket, 0, len(raw))}
	var cum uint64
	for _, b := range raw {
		cum += b.Count
		out.Buckets = append(out.Buckets, HistBucket{Upper: b.Hi, Count: cum})
	}
	return out
}

// series is one (name, labels) time series and however it is read.
type series struct {
	labels    string
	counter   *Counter
	gauge     *Gauge
	valueFn   func() float64
	histFn    func() HistSnapshot
	summaryFn func() metrics.LatencySummary
	// scale multiplies summary/gauge values at exposition (e.g. ns→s).
	scale float64
}

type family struct {
	name, help, typ string
	series          map[string]*series
	order           []string
}

// Registry is the process-wide metric namespace: named, labeled series
// grouped into families, written in Prometheus text exposition format.
// All registration methods are idempotent on (name, labels) and safe for
// concurrent use; re-registering a name under a different type panics —
// that is a programming error, not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help, typ string) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

func (f *family) get(labels Labels) (*series, bool) {
	key := labels.encode()
	s := f.series[key]
	if s != nil {
		return s, false
	}
	s = &series{labels: key, scale: 1}
	f.series[key] = s
	f.order = append(f.order, key)
	return s, true
}

// Counter returns (registering on first use) the counter for name+labels.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.family(name, help, "counter").get(labels)
	if fresh {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns (registering on first use) the gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.family(name, help, "gauge").get(labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// CounterFunc registers a scrape-time counter read — the adapter for the
// components' existing atomic Stats() counters, exported without a second
// copy of the state. fn must be monotone for the series to behave as a
// Prometheus counter.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, "counter").get(labels)
	s.valueFn = fn
}

// GaugeFunc registers a scrape-time gauge read.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, "gauge").get(labels)
	s.valueFn = fn
}

// HistogramFunc registers a scrape-time histogram read; fn typically wraps
// HistogramSnapshot over a component-owned metrics.Histogram.
func (r *Registry) HistogramFunc(name, help string, labels Labels, fn func() HistSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, "histogram").get(labels)
	s.histFn = fn
}

// SummaryFunc registers a scrape-time summary read over a sample-backed
// latency distribution; scale converts the duration values to the exported
// unit (pass 1e-9 for seconds).
func (r *Registry) SummaryFunc(name, help string, labels Labels, scale float64, fn func() metrics.LatencySummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, "summary").get(labels)
	s.summaryFn = fn
	if scale > 0 {
		s.scale = scale
	}
}
