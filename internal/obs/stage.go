// Package obs is the serving stack's observability plane: request-lifecycle
// tracing (low-overhead spans over the injected vclock, stitched across the
// gateway → serverless → semirt → keyservice hops) and a unified metrics
// registry exported in Prometheus text format. The paper's claim is
// amortization — enclave startup, key provisioning and ECall transitions
// spread across requests — and obs is what turns that from an inference over
// end-to-end histograms into a per-stage measurement.
package obs

import "time"

// Stage identifies one segment of a request's lifecycle. The enum is fixed:
// calibration (sim vs live) diffs stage-by-stage, so stages are a schema,
// not a free-form label.
type Stage uint8

const (
	// StageAdmit is admission control inside Submit: validation, quota and
	// overload checks, envelope fill, up to the enqueue.
	StageAdmit Stage = iota
	// StageQueue is time parked in the per-(action, model) queue, from
	// enqueue until a drain claims the request for a batch.
	StageQueue
	// StageForm is batch formation: from the drain until the batch payload
	// is encoded and handed to placement.
	StageForm
	// StageDispatch is the serverless invoke: placement, sandbox transit,
	// and the enclave's work. Cold start, key fetch and ECall nest inside.
	StageDispatch
	// StageColdStart is sandbox/enclave creation charged to this request's
	// dispatch (child of dispatch).
	StageColdStart
	// StageKeyFetch is the enclave's KeyService provisioning round trip
	// (child of dispatch; this is the keyservice hop of the trace).
	StageKeyFetch
	// StageECall is time inside the enclave transition serving the request's
	// batch or step frame (child of dispatch).
	StageECall
	// StageFanout is result fan-out: from the invoke's return until this
	// request's outcome is settled to its waiter.
	StageFanout
	// StageRetry is failover limbo: from a dispatch failure until the
	// request is re-queued (annotation; overlaps the next queue span).
	StageRetry
	// StagePreempt is a continuous-batching preemption: from the
	// step-boundary eviction until the member is re-queued (annotation).
	StagePreempt

	// NumStages bounds the enum for array-indexed aggregation.
	NumStages
)

var stageNames = [NumStages]string{
	"admit", "queue", "form", "dispatch", "cold_start",
	"key_fetch", "ecall", "fanout", "retry", "preempt",
}

// String returns the stage's wire/report name.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// TopLevel reports whether the stage is part of the contiguous partition of
// the request timeline (admit → queue → form → dispatch → fanout). Top-level
// span durations sum to the end-to-end latency; the remaining stages are
// children nested inside dispatch (cold_start, key_fetch, ecall) or
// annotations overlapping other stages (retry, preempt).
func (s Stage) TopLevel() bool {
	switch s {
	case StageAdmit, StageQueue, StageForm, StageDispatch, StageFanout:
		return true
	}
	return false
}

// Span is one recorded stage: [Start, End) as offsets from the trace origin.
type Span struct {
	Stage Stage         `json:"stage"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// Dur is the span's duration.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// StageDur is a stage duration measured on the far side of a wire hop — the
// semirt runtime reports (cold_start, key_fetch, ecall) per activation in
// its batch/step response envelope, and the gateway grafts them into the
// member traces as child spans of dispatch.
type StageDur struct {
	Stage Stage         `json:"s"`
	Dur   time.Duration `json:"d"`
}
