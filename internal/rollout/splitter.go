// Package rollout implements attested canary rollout for model revisions:
// a traffic splitter that ramps a canary revision under live traffic, and an
// SLO-gated controller that promotes it step by step or rolls it back
// automatically on regression (kserve's InferenceService canary machinery,
// grown an enclave dimension).
//
// The enclave twist over a plain canary rollout: every revision is its own
// enclave build with its own measurement (semirt.Config.ForRevision), so
// shifting traffic is only half the story — the keyservice measurement
// allowlist must admit the canary's measurement before it can decrypt user
// keys, and a rollback revokes it, so a bad revision loses key access
// cluster-wide in one operation even if some path still routes to it.
//
// Split decisions are sticky: the (tenant, user) pair hashes to a fixed
// percentile bucket, and a bucket is on the canary exactly when it is below
// the current weight. A monotone ramp (1 → 5 → 25 → 50 → 100) therefore
// moves each caller from stable to canary AT MOST ONCE, and a caller never
// flaps between revisions mid-ramp — one user always sees one model.
package rollout

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sesemi/internal/gateway"
	"sesemi/internal/metrics"
	"sesemi/internal/semirt"
)

// Submitter is the serving tier the splitter routes into: satisfied by both
// *gateway.Gateway and *frontier.Frontier.
type Submitter interface {
	Submit(ctx context.Context, req gateway.Request) (*gateway.Ticket, error)
}

// splitState is the immutable routing snapshot swapped atomically on every
// control-plane change, so the per-request Target path is one atomic load
// plus a hash — no lock, no contention, ≈0 steady-state overhead.
type splitState struct {
	stable string
	canary string // "" = no canary in flight
	weight uint32 // canary percent, 0..100
	pins   map[string]string
}

// Splitter routes each request to one revision of a model: the stable
// revision by default, the canary for the sticky hash buckets below the
// current weight, or a tenant's pinned revision unconditionally.
type Splitter struct {
	state atomic.Pointer[splitState]

	// mu guards the observation plane (windows, in-flight, cumulative
	// counters); the routing plane above never takes it.
	mu       sync.Mutex
	windows  map[string]*window
	inflight map[string]int
	served   map[string]uint64
	errored  map[string]uint64
}

// window is one revision's SLO observation window since the last snapshot.
type window struct {
	lat    metrics.Latency
	count  int
	errors int
}

// WindowStats is one revision's observation window, snapshotted for an SLO
// evaluation.
type WindowStats struct {
	Count  int
	Errors int
	Mean   time.Duration
	P95    time.Duration
}

// ErrorRate returns Errors/Count (0 for an empty window).
func (w WindowStats) ErrorRate() float64 {
	if w.Count == 0 {
		return 0
	}
	return float64(w.Errors) / float64(w.Count)
}

// NewSplitter creates a splitter serving only the stable revision id.
func NewSplitter(stable string) *Splitter {
	s := &Splitter{
		windows:  map[string]*window{},
		inflight: map[string]int{},
		served:   map[string]uint64{},
		errored:  map[string]uint64{},
	}
	s.state.Store(&splitState{stable: stable})
	return s
}

// Stable returns the stable revision id.
func (s *Splitter) Stable() string { return s.state.Load().stable }

// Canary returns the canary revision id ("" when none is in flight).
func (s *Splitter) Canary() string { return s.state.Load().canary }

// Weight returns the canary traffic percentage.
func (s *Splitter) Weight() int { return int(s.state.Load().weight) }

// SetCanary installs (or re-weights) the canary revision. Weight is clamped
// to [0, 100]; weight 0 keeps the canary installed but routes no traffic to
// it. An empty canary id clears the canary regardless of weight.
func (s *Splitter) SetCanary(canary string, weight int) {
	if weight < 0 {
		weight = 0
	}
	if weight > 100 {
		weight = 100
	}
	if canary == "" {
		weight = 0
	}
	for {
		old := s.state.Load()
		next := &splitState{stable: old.stable, canary: canary, weight: uint32(weight), pins: old.pins}
		if s.state.CompareAndSwap(old, next) {
			return
		}
	}
}

// Promote makes the canary the new stable revision (rollout complete) and
// clears the canary slot.
func (s *Splitter) Promote() {
	for {
		old := s.state.Load()
		if old.canary == "" {
			return
		}
		next := &splitState{stable: old.canary, pins: old.pins}
		if s.state.CompareAndSwap(old, next) {
			return
		}
	}
}

// Pin routes every request of one tenant to a fixed revision id, overriding
// the weighted split (a tenant that opted out of canaries, or an early-access
// tenant pinned onto one). An empty id unpins.
func (s *Splitter) Pin(tenant, modelID string) {
	for {
		old := s.state.Load()
		pins := make(map[string]string, len(old.pins)+1)
		for k, v := range old.pins {
			pins[k] = v
		}
		if modelID == "" {
			delete(pins, tenant)
		} else {
			pins[tenant] = modelID
		}
		next := &splitState{stable: old.stable, canary: old.canary, weight: old.weight, pins: pins}
		if s.state.CompareAndSwap(old, next) {
			return
		}
	}
}

// Target picks the revision id for one (tenant, user) caller. The decision
// must be made BEFORE the request is built: request payloads are encrypted
// under the per-model request key, so the revision choice binds the key and
// the blob, not just the route.
func (s *Splitter) Target(tenant, user string) string {
	st := s.state.Load()
	if id, ok := st.pins[tenant]; ok {
		return id
	}
	if st.canary == "" || st.weight == 0 {
		return st.stable
	}
	if st.weight >= 100 || stickyBucket(tenant, user) < st.weight {
		return st.canary
	}
	return st.stable
}

// stickyBucket hashes a caller onto a fixed percentile in [0, 100): FNV-1a
// over the separator-framed pair, finalized with the mix64 avalanche the
// frontier ring uses, so adjacent tenant/user strings land uniformly.
func stickyBucket(tenant, user string) uint32 {
	const (
		fnvOffset uint64 = 14695981039346656037
		fnvPrime  uint64 = 1099511628211
	)
	h := fnvOffset
	for _, part := range [2]string{tenant, user} {
		for i := 0; i < len(part); i++ {
			h ^= uint64(part[i])
			h *= fnvPrime
		}
		h ^= 0x1f
		h *= fnvPrime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return uint32(h % 100)
}

// Begin records one request dispatched to a revision (paired with End). The
// in-flight count is what a rollback drains to zero before revoking the
// canary's measurement — revoking earlier would strand in-flight requests
// mid-decrypt and lose them.
func (s *Splitter) Begin(modelID string) {
	s.mu.Lock()
	s.inflight[modelID]++
	s.mu.Unlock()
}

// End closes a Begin.
func (s *Splitter) End(modelID string) {
	s.mu.Lock()
	if s.inflight[modelID]--; s.inflight[modelID] <= 0 {
		delete(s.inflight, modelID)
	}
	s.mu.Unlock()
}

// InFlight returns the revision's currently dispatched request count.
func (s *Splitter) InFlight(modelID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight[modelID]
}

// Observe records one completed request into the revision's SLO window and
// cumulative counters.
func (s *Splitter) Observe(modelID string, d time.Duration, failed bool) {
	s.mu.Lock()
	w := s.windows[modelID]
	if w == nil {
		w = &window{}
		s.windows[modelID] = w
	}
	w.count++
	s.served[modelID]++
	if failed {
		w.errors++
		s.errored[modelID]++
	} else {
		w.lat.Add(d)
	}
	s.mu.Unlock()
}

// TakeWindow snapshots and resets the revision's SLO window — the
// controller's per-step read.
func (s *Splitter) TakeWindow(modelID string) WindowStats {
	s.mu.Lock()
	w := s.windows[modelID]
	delete(s.windows, modelID)
	s.mu.Unlock()
	if w == nil {
		return WindowStats{}
	}
	return WindowStats{
		Count:  w.count,
		Errors: w.errors,
		Mean:   w.lat.Mean(),
		P95:    w.lat.Percentile(95),
	}
}

// Served returns the revision's cumulative completed-request count (errors
// included) — the "requests affected" ledger of a rollback.
func (s *Splitter) Served(modelID string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served[modelID]
}

// Errored returns the revision's cumulative failed-request count.
func (s *Splitter) Errored(modelID string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errored[modelID]
}

// Do routes one caller's request through the splitter: pick the revision,
// build the (revision-bound, encrypted) request via build, submit it, wait,
// and feed the outcome back into the revision's SLO window. It is the
// closed-loop serving path the rollout bench and loadgen drive.
func (s *Splitter) Do(ctx context.Context, sub Submitter, tenant, user string,
	build func(modelID string) (gateway.Request, error)) (semirt.Response, error) {
	target := s.Target(tenant, user)
	req, err := build(target)
	if err != nil {
		return semirt.Response{}, fmt.Errorf("rollout: build request for %q: %w", target, err)
	}
	s.Begin(target)
	defer s.End(target)
	t0 := time.Now()
	tk, err := sub.Submit(ctx, req)
	if err != nil {
		s.Observe(target, 0, true)
		return semirt.Response{}, err
	}
	resp, err := tk.Wait(ctx)
	s.Observe(target, time.Since(t0), err != nil)
	return resp, err
}
