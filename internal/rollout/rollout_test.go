package rollout

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sesemi/internal/vclock"
)

func TestStickySplitMonotone(t *testing.T) {
	// Each (tenant, user) pair must move stable→canary at most once across a
	// monotone ramp, and the canary share must roughly track the weight.
	s := NewSplitter("mbnet")
	const callers = 2000
	onCanary := make([]bool, callers)
	for _, w := range []int{0, 1, 5, 25, 50, 100} {
		s.SetCanary("mbnet@v2", w)
		canaryN := 0
		for i := 0; i < callers; i++ {
			got := s.Target(fmt.Sprintf("tenant-%d", i%7), fmt.Sprintf("user-%d", i))
			switch got {
			case "mbnet@v2":
				canaryN++
				onCanary[i] = true
			case "mbnet":
				if onCanary[i] {
					t.Fatalf("caller %d flapped canary→stable at weight %d", i, w)
				}
			default:
				t.Fatalf("unexpected target %q", got)
			}
		}
		want := callers * w / 100
		slack := callers / 20 // ±5 points
		if canaryN < want-slack || canaryN > want+slack {
			t.Fatalf("weight %d%%: %d/%d on canary, want ≈%d", w, canaryN, callers, want)
		}
	}
}

func TestStickySplitDeterministic(t *testing.T) {
	s := NewSplitter("m")
	s.SetCanary("m@v2", 37)
	for i := 0; i < 100; i++ {
		a := s.Target("t1", "u1")
		if b := s.Target("t1", "u1"); b != a {
			t.Fatalf("same caller got %q then %q", a, b)
		}
	}
}

func TestPinOverridesWeight(t *testing.T) {
	s := NewSplitter("m")
	s.SetCanary("m@v2", 100)
	s.Pin("vip", "m")
	if got := s.Target("vip", "anyone"); got != "m" {
		t.Fatalf("pinned tenant got %q, want stable", got)
	}
	if got := s.Target("other", "anyone"); got != "m@v2" {
		t.Fatalf("unpinned tenant got %q, want canary at weight 100", got)
	}
	s.Pin("vip", "")
	if got := s.Target("vip", "anyone"); got != "m@v2" {
		t.Fatalf("unpinned vip got %q, want canary", got)
	}
}

func TestWindowsAndCounters(t *testing.T) {
	s := NewSplitter("m")
	s.Begin("m@v2")
	if got := s.InFlight("m@v2"); got != 1 {
		t.Fatalf("in-flight = %d, want 1", got)
	}
	s.Observe("m@v2", 10*time.Millisecond, false)
	s.Observe("m@v2", 30*time.Millisecond, false)
	s.Observe("m@v2", 0, true)
	s.End("m@v2")
	if got := s.InFlight("m@v2"); got != 0 {
		t.Fatalf("in-flight = %d, want 0", got)
	}
	w := s.TakeWindow("m@v2")
	if w.Count != 3 || w.Errors != 1 {
		t.Fatalf("window = %+v", w)
	}
	if w.Mean != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms (errors excluded from latency)", w.Mean)
	}
	if w.ErrorRate() < 0.33 || w.ErrorRate() > 0.34 {
		t.Fatalf("error rate = %v", w.ErrorRate())
	}
	if got := s.TakeWindow("m@v2"); got.Count != 0 {
		t.Fatalf("window not reset: %+v", got)
	}
	if s.Served("m@v2") != 3 || s.Errored("m@v2") != 1 {
		t.Fatalf("cumulative served=%d errored=%d", s.Served("m@v2"), s.Errored("m@v2"))
	}
}

func TestEvaluate(t *testing.T) {
	slo := SLO{MaxErrorRate: 0.05, MaxLatencyRatio: 2, MaxP95: 100 * time.Millisecond}
	ok := WindowStats{Count: 50, Mean: 10 * time.Millisecond, P95: 20 * time.Millisecond}
	stable := WindowStats{Count: 500, Mean: 10 * time.Millisecond, P95: 18 * time.Millisecond}
	cases := []struct {
		name   string
		canary WindowStats
		want   Decision
	}{
		{"promote", ok, Promote},
		{"hold-few-samples", WindowStats{Count: 5, Mean: time.Millisecond}, Hold},
		{"hold-empty", WindowStats{}, Hold},
		{"rollback-errors", WindowStats{Count: 50, Errors: 10, Mean: 10 * time.Millisecond}, Rollback},
		{"rollback-latency-ratio", WindowStats{Count: 50, Mean: 25 * time.Millisecond, P95: 30 * time.Millisecond}, Rollback},
		{"rollback-p95", WindowStats{Count: 50, Mean: 12 * time.Millisecond, P95: 150 * time.Millisecond}, Rollback},
	}
	for _, c := range cases {
		if got := Evaluate(slo, c.canary, stable, 10); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	// Latency-ratio check is skipped without a stable baseline.
	slow := WindowStats{Count: 50, Mean: 25 * time.Millisecond, P95: 30 * time.Millisecond}
	if got := Evaluate(slo, slow, WindowStats{}, 10); got != Promote {
		t.Errorf("no stable baseline: got %v, want Promote", got)
	}
}

// feed observes n requests with the given latency per revision.
func feed(s *Splitter, id string, n int, d time.Duration, errEvery int) {
	for i := 0; i < n; i++ {
		failed := errEvery > 0 && i%errEvery == 0
		s.Observe(id, d, failed)
	}
}

func TestControllerFullPromotion(t *testing.T) {
	clock := vclock.NewManual()
	s := NewSplitter("mbnet")
	c, err := NewController(Config{
		Splitter:     s,
		Canary:       "mbnet@v2",
		StepInterval: 10 * time.Second,
		MinSamples:   10,
		SLO:          SLO{MaxErrorRate: 0.05, MaxLatencyRatio: 2},
		Clock:        clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Begin()
	if s.Weight() != 1 || s.Canary() != "mbnet@v2" {
		t.Fatalf("after Begin: weight=%d canary=%q", s.Weight(), s.Canary())
	}
	for i, wantW := range []int{5, 25, 50, 100} {
		feed(s, "mbnet", 200, 10*time.Millisecond, 0)
		feed(s, "mbnet@v2", 50, 11*time.Millisecond, 0)
		clock.Advance(10 * time.Second)
		if got := c.Tick(); got != Promote {
			t.Fatalf("step %d: decision %v, want Promote", i, got)
		}
		if i < 3 && s.Weight() != wantW {
			t.Fatalf("step %d: weight %d, want %d", i, s.Weight(), wantW)
		}
	}
	// Final promote at 100%: canary becomes stable.
	feed(s, "mbnet@v2", 50, 11*time.Millisecond, 0)
	if got := c.Tick(); got != Promote {
		t.Fatalf("final step: %v, want Promote", got)
	}
	if s.Stable() != "mbnet@v2" || s.Canary() != "" {
		t.Fatalf("after promotion: stable=%q canary=%q", s.Stable(), s.Canary())
	}
	if st := c.Status(); st.Phase != PhasePromoted {
		t.Fatalf("phase = %v", st.Phase)
	}
	// Terminal: further ticks are inert.
	if got := c.Tick(); got != Hold {
		t.Fatalf("post-terminal tick = %v", got)
	}
}

func TestControllerHoldsWithoutSamples(t *testing.T) {
	clock := vclock.NewManual()
	s := NewSplitter("m")
	c, err := NewController(Config{
		Splitter: s, Canary: "m@v2", MinSamples: 10, Clock: clock,
		SLO: SLO{MaxErrorRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Begin()
	feed(s, "m@v2", 3, time.Millisecond, 0) // below MinSamples
	if got := c.Tick(); got != Hold {
		t.Fatalf("decision %v, want Hold", got)
	}
	if s.Weight() != 1 {
		t.Fatalf("weight moved to %d on hold", s.Weight())
	}
	if st := c.Status(); st.Holds != 1 || st.Phase != PhaseRamping {
		t.Fatalf("status %+v", st)
	}
}

func TestControllerRollbackRevokesAfterDrain(t *testing.T) {
	clock := vclock.NewManual()
	s := NewSplitter("mbnet")
	var (
		mu             sync.Mutex
		revoked        []string
		inFlightAtRevo = -1
	)
	c, err := NewController(Config{
		Splitter:     s,
		Canary:       "mbnet@v2",
		StepInterval: 10 * time.Second,
		MinSamples:   10,
		SLO:          SLO{MaxErrorRate: 0.05, MaxLatencyRatio: 2},
		Clock:        clock,
		Revoke: func(canary string) error {
			mu.Lock()
			defer mu.Unlock()
			revoked = append(revoked, canary)
			inFlightAtRevo = s.InFlight("mbnet@v2")
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Begin()
	// First step healthy, second step the canary is 5x slower than stable.
	feed(s, "mbnet", 200, 10*time.Millisecond, 0)
	feed(s, "mbnet@v2", 50, 11*time.Millisecond, 0)
	clock.Advance(10 * time.Second)
	if got := c.Tick(); got != Promote {
		t.Fatalf("healthy step: %v", got)
	}
	feed(s, "mbnet", 200, 10*time.Millisecond, 0)
	feed(s, "mbnet@v2", 50, 50*time.Millisecond, 0)
	clock.Advance(10 * time.Second)
	if got := c.Tick(); got != Rollback {
		t.Fatalf("slow step: %v, want Rollback", got)
	}
	if s.Weight() != 0 {
		t.Fatalf("weight %d after rollback, want 0", s.Weight())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(revoked) != 1 || revoked[0] != "mbnet@v2" {
		t.Fatalf("revoked = %v", revoked)
	}
	if inFlightAtRevo != 0 {
		t.Fatalf("revoke ran with %d canary requests in flight", inFlightAtRevo)
	}
	st := c.Status()
	if st.Phase != PhaseRolledBack {
		t.Fatalf("phase = %v", st.Phase)
	}
	if st.TimeToRollback != 20*time.Second {
		t.Fatalf("time-to-rollback = %v, want 20s of virtual time", st.TimeToRollback)
	}
	if st.RequestsAffected != 100 {
		t.Fatalf("requests affected = %d, want 100", st.RequestsAffected)
	}
	// Stable keeps serving: routing all back to stable.
	if got := s.Target("t", "u"); got != "mbnet" {
		t.Fatalf("post-rollback target %q", got)
	}
}

func TestControllerRollbackWaitsForInFlight(t *testing.T) {
	// Live-clock drain: one canary request still in flight when the breach
	// tick fires; the revoke hook must only run after it completes.
	s := NewSplitter("m")
	revokeSawInflight := make(chan int, 1)
	c, err := NewController(Config{
		Splitter:     s,
		Canary:       "m@v2",
		StepInterval: time.Second,
		MinSamples:   5,
		SLO:          SLO{MaxErrorRate: 0.05},
		Clock:        vclock.System,
		DrainTimeout: 5 * time.Second,
		DrainPoll:    time.Millisecond,
		Revoke: func(string) error {
			revokeSawInflight <- s.InFlight("m@v2")
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Begin()
	feed(s, "m@v2", 20, time.Millisecond, 2) // 50% errors → breach
	s.Begin("m@v2")                          // one straggler in flight
	done := make(chan Decision, 1)
	go func() { done <- c.Tick() }()
	time.Sleep(20 * time.Millisecond) // tick is now draining
	s.End("m@v2")                     // straggler completes
	select {
	case d := <-done:
		if d != Rollback {
			t.Fatalf("decision %v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rollback never completed")
	}
	if n := <-revokeSawInflight; n != 0 {
		t.Fatalf("revoke ran with %d in flight", n)
	}
}

func TestControllerRunLoop(t *testing.T) {
	// End-to-end Run on a real (unscaled-interval) clock with a feeder
	// goroutine supplying healthy traffic: the ramp must reach promoted.
	s := NewSplitter("m")
	c, err := NewController(Config{
		Splitter:     s,
		Canary:       "m@v2",
		Steps:        []int{10, 50, 100},
		StepInterval: 5 * time.Millisecond,
		MinSamples:   1,
		SLO:          SLO{MaxErrorRate: 0.5},
		Clock:        vclock.System,
	})
	if err != nil {
		t.Fatal(err)
	}
	stopFeed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopFeed:
				return
			default:
				s.Observe("m", time.Millisecond, false)
				s.Observe("m@v2", time.Millisecond, false)
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()
	stop := make(chan struct{})
	st := c.Run(stop)
	close(stopFeed)
	wg.Wait()
	if st.Phase != PhasePromoted {
		t.Fatalf("run ended in phase %v", st.Phase)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done not closed after Run returned")
	}
}

func TestNewControllerValidation(t *testing.T) {
	s := NewSplitter("m")
	if _, err := NewController(Config{Canary: "m@v2"}); err == nil {
		t.Fatal("missing splitter accepted")
	}
	if _, err := NewController(Config{Splitter: s}); err == nil {
		t.Fatal("missing canary accepted")
	}
	if _, err := NewController(Config{Splitter: s, Canary: "c", Steps: []int{5, 5}}); err == nil {
		t.Fatal("non-increasing steps accepted")
	}
	if _, err := NewController(Config{Splitter: s, Canary: "c", Steps: []int{0}}); err == nil {
		t.Fatal("zero step accepted")
	}
}
