package rollout

import (
	"errors"
	"fmt"
	"time"

	"sesemi/internal/vclock"
)

// Decision is the outcome of one SLO evaluation of the canary window.
type Decision int

const (
	// Hold keeps the current weight: not enough canary samples yet.
	Hold Decision = iota
	// Promote advances the ramp to the next weight step.
	Promote
	// Rollback drops the canary to weight 0 and revokes its measurement.
	Rollback
)

func (d Decision) String() string {
	switch d {
	case Hold:
		return "hold"
	case Promote:
		return "promote"
	case Rollback:
		return "rollback"
	}
	return fmt.Sprintf("decision(%d)", int(d))
}

// SLO bounds the canary's behaviour relative to the stable revision. Zero
// values disable the corresponding check.
type SLO struct {
	// MaxErrorRate bounds the canary window's error fraction (e.g. 0.02).
	MaxErrorRate float64
	// MaxLatencyRatio bounds canary mean latency as a multiple of the stable
	// window's mean (e.g. 1.5). Skipped when the stable window is empty.
	MaxLatencyRatio float64
	// MaxP95 bounds the canary window's p95 latency absolutely.
	MaxP95 time.Duration
}

// Evaluate is the pure SLO gate shared by the live controller and the sim
// mirror: judge one canary window against the stable window. Fewer than
// minSamples canary observations → Hold (never promote or roll back on
// noise); any breached bound → Rollback; otherwise Promote.
func Evaluate(slo SLO, canary, stable WindowStats, minSamples int) Decision {
	if canary.Count < minSamples || canary.Count == 0 {
		return Hold
	}
	if slo.MaxErrorRate > 0 && canary.ErrorRate() > slo.MaxErrorRate {
		return Rollback
	}
	if slo.MaxLatencyRatio > 0 && stable.Mean > 0 && canary.Mean > 0 {
		if float64(canary.Mean) > slo.MaxLatencyRatio*float64(stable.Mean) {
			return Rollback
		}
	}
	if slo.MaxP95 > 0 && canary.P95 > slo.MaxP95 {
		return Rollback
	}
	return Promote
}

// DefaultSteps is the canary weight ramp, in percent.
var DefaultSteps = []int{1, 5, 25, 50, 100}

// Config parameterizes a Controller.
type Config struct {
	// Splitter is the traffic splitter being driven. Required.
	Splitter *Splitter
	// Canary is the versioned model id being rolled out. Required.
	Canary string
	// Steps is the weight ramp in percent (default DefaultSteps). The last
	// step should be 100; passing it promotes the canary to stable.
	Steps []int
	// StepInterval is the observation window per step.
	StepInterval time.Duration
	// MinSamples is the minimum canary window size to judge (default 10).
	MinSamples int
	// SLO gates each promotion.
	SLO SLO
	// Clock defaults to vclock.System; tests inject vclock.Manual.
	Clock vclock.Clock
	// DrainTimeout bounds the wait for in-flight canary requests to finish
	// before the measurement is revoked (default 30s). In-flight requests
	// complete (or re-queue fairness-neutrally through the gateway's retry
	// path) during the drain, which is what keeps a rollback lossless.
	DrainTimeout time.Duration
	// DrainPoll is the in-flight re-check interval during a drain
	// (default 5ms).
	DrainPoll time.Duration
	// Revoke is called with the canary id after a rollback has drained —
	// the hook that revokes the revision's measurement at the keyservice so
	// it can no longer obtain user keys. Optional.
	Revoke func(canary string) error
	// Logf, when set, receives controller transitions.
	Logf func(format string, args ...any)
}

// Phase is the controller's lifecycle position.
type Phase string

const (
	PhaseIdle       Phase = "idle"
	PhaseRamping    Phase = "ramping"
	PhasePromoted   Phase = "promoted"
	PhaseRolledBack Phase = "rolledback"
)

// Status is a snapshot of the controller.
type Status struct {
	Canary string `json:"canary"`
	Phase  Phase  `json:"phase"`
	// Step is the index into Steps currently being observed (-1 before
	// Begin and after a terminal transition).
	Step   int `json:"step"`
	Weight int `json:"weight"`
	// Holds counts evaluations that lacked MinSamples.
	Holds int `json:"holds"`
	// TimeToRollback is the elapsed time from Begin to rollback completion
	// (weight 0, drained, revoked); zero unless rolled back.
	TimeToRollback time.Duration `json:"time_to_rollback"`
	// RequestsAffected is the number of requests the canary served (errors
	// included) before the rollback completed; zero unless rolled back.
	RequestsAffected uint64 `json:"requests_affected"`
	// RevokeErr records a failed Revoke hook ("" on success).
	RevokeErr string `json:"revoke_err,omitempty"`
}

// ErrDrainTimeout reports in-flight canary requests that outlived the drain
// budget; the rollback proceeds anyway (weight is already 0) but can no
// longer guarantee losslessness for the stragglers.
var ErrDrainTimeout = errors.New("rollout: canary drain timed out")

// Controller ramps a canary revision through the weight steps, gating each
// promotion on the SLO, and rolls back automatically on a breach. It is a
// synchronous state machine — Begin once, then Tick at each step boundary —
// so tests drive it deterministically on a Manual clock; Run wraps the same
// calls in a timer loop for live use.
type Controller struct {
	cfg     Config
	stable  string
	step    int
	holds   int
	began   time.Time
	status  Status
	stopped chan struct{}
}

// NewController validates and applies defaults.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Splitter == nil {
		return nil, errors.New("rollout: Config.Splitter is required")
	}
	if cfg.Canary == "" {
		return nil, errors.New("rollout: Config.Canary is required")
	}
	if len(cfg.Steps) == 0 {
		cfg.Steps = DefaultSteps
	}
	for i, s := range cfg.Steps {
		if s <= 0 || s > 100 {
			return nil, fmt.Errorf("rollout: step %d weight %d out of (0, 100]", i, s)
		}
		if i > 0 && s <= cfg.Steps[i-1] {
			return nil, fmt.Errorf("rollout: steps must increase (step %d: %d after %d)", i, s, cfg.Steps[i-1])
		}
	}
	if cfg.StepInterval <= 0 {
		cfg.StepInterval = 10 * time.Second
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 10
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.System
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.DrainPoll <= 0 {
		cfg.DrainPoll = 5 * time.Millisecond
	}
	return &Controller{
		cfg:     cfg,
		stable:  cfg.Splitter.Stable(),
		step:    -1,
		status:  Status{Canary: cfg.Canary, Phase: PhaseIdle, Step: -1},
		stopped: make(chan struct{}),
	}, nil
}

// Status returns the current snapshot. Controller methods are not
// goroutine-safe with each other (one driver owns the ramp), but Status is
// only written between Begin/Tick calls by that same driver.
func (c *Controller) Status() Status { return c.status }

// Begin starts the ramp at the first weight step.
func (c *Controller) Begin() {
	if c.step >= 0 || c.status.Phase != PhaseIdle {
		return
	}
	c.began = c.cfg.Clock.Now()
	c.step = 0
	c.apply()
	c.logf("rollout: canary %s at %d%% (step 1/%d)", c.cfg.Canary, c.cfg.Steps[0], len(c.cfg.Steps))
}

// apply pushes the current step's weight into the splitter and the status.
func (c *Controller) apply() {
	w := c.cfg.Steps[c.step]
	c.cfg.Splitter.SetCanary(c.cfg.Canary, w)
	c.status.Phase = PhaseRamping
	c.status.Step = c.step
	c.status.Weight = w
	c.status.Holds = c.holds
}

// Tick closes one observation window and applies the SLO decision. It
// returns the decision taken; after a terminal transition (promoted or
// rolled back) it returns Hold forever.
func (c *Controller) Tick() Decision {
	if c.step < 0 || c.status.Phase != PhaseRamping {
		return Hold
	}
	canaryW := c.cfg.Splitter.TakeWindow(c.cfg.Canary)
	stableW := c.cfg.Splitter.TakeWindow(c.stable)
	d := Evaluate(c.cfg.SLO, canaryW, stableW, c.cfg.MinSamples)
	switch d {
	case Hold:
		c.holds++
		c.status.Holds = c.holds
		c.logf("rollout: holding at %d%% (%d canary samples < %d)", c.cfg.Steps[c.step], canaryW.Count, c.cfg.MinSamples)
	case Promote:
		if c.step == len(c.cfg.Steps)-1 {
			c.cfg.Splitter.SetCanary(c.cfg.Canary, 100)
			c.cfg.Splitter.Promote()
			c.status.Phase = PhasePromoted
			c.status.Step = -1
			c.status.Weight = 100
			c.step = -1
			c.logf("rollout: canary %s promoted to stable", c.cfg.Canary)
			return Promote
		}
		c.step++
		c.apply()
		c.logf("rollout: canary %s promoted to %d%% (step %d/%d)", c.cfg.Canary, c.cfg.Steps[c.step], c.step+1, len(c.cfg.Steps))
	case Rollback:
		c.rollback(canaryW, stableW)
	}
	return d
}

// rollback executes the breach path in loss-safe order: stop new canary
// traffic instantly (weight 0), let in-flight canary requests drain — they
// finish or re-queue fairness-neutrally via the gateway retry path — and
// only then revoke the revision's measurement at the keyservice, so no
// request that was already admitted dies key-less.
func (c *Controller) rollback(canaryW, stableW WindowStats) {
	c.logf("rollout: SLO breach by %s (canary err %.3f mean %v p95 %v vs stable mean %v) — rolling back",
		c.cfg.Canary, canaryW.ErrorRate(), canaryW.Mean, canaryW.P95, stableW.Mean)
	c.cfg.Splitter.SetCanary(c.cfg.Canary, 0)
	deadline := c.cfg.Clock.Now().Add(c.cfg.DrainTimeout)
	for c.cfg.Splitter.InFlight(c.cfg.Canary) > 0 {
		if c.cfg.Clock.Now().After(deadline) {
			c.logf("rollout: %v (%d in flight)", ErrDrainTimeout, c.cfg.Splitter.InFlight(c.cfg.Canary))
			break
		}
		c.cfg.Clock.Sleep(c.cfg.DrainPoll)
	}
	if c.cfg.Revoke != nil {
		if err := c.cfg.Revoke(c.cfg.Canary); err != nil {
			c.status.RevokeErr = err.Error()
			c.logf("rollout: revoke %s: %v", c.cfg.Canary, err)
		}
	}
	c.status.Phase = PhaseRolledBack
	c.status.Step = -1
	c.status.Weight = 0
	c.status.TimeToRollback = c.cfg.Clock.Now().Sub(c.began)
	c.status.RequestsAffected = c.cfg.Splitter.Served(c.cfg.Canary)
	c.step = -1
	c.logf("rollout: canary %s rolled back in %v after %d requests",
		c.cfg.Canary, c.status.TimeToRollback, c.status.RequestsAffected)
}

// Run drives Begin + Tick on the configured clock until the ramp reaches a
// terminal phase or stop is closed. It returns the final status. Live
// deployments call Run in a goroutine; tests usually drive Begin/Tick
// directly instead.
func (c *Controller) Run(stop <-chan struct{}) Status {
	defer close(c.stopped)
	c.Begin()
	for c.status.Phase == PhaseRamping {
		select {
		case <-stop:
			return c.status
		case <-vclock.After(c.cfg.Clock, c.cfg.StepInterval):
		}
		c.Tick()
	}
	return c.status
}

// Done is closed when Run returns.
func (c *Controller) Done() <-chan struct{} { return c.stopped }

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
