package keyservice

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"sesemi/internal/attest"
	"sesemi/internal/enclave"
	"sesemi/internal/ratls"
	"sesemi/internal/secure"
)

// Wire protocol: after the RA-TLS handshake each record is one JSON request
// or response. Key provisioning requires the connection itself to be
// mutually attested — the enclave identity ES used in the access-control
// check is taken from the verified channel quote, never from the request
// body.

// Op names.
const (
	OpRegister          = "register"
	OpAddModelKey       = "add_model_key"
	OpGrantAccess       = "grant_access"
	OpAddReqKey         = "add_req_key"
	OpProvision         = "provision"
	OpAdmitMeasurement  = "admit_measurement"
	OpRevokeMeasurement = "revoke_measurement"
	OpMeasurementStats  = "measurement_stats"
)

// Request is one client→KeyService message.
type Request struct {
	Op string `json:"op"`
	// ID is the caller's principal id for management operations.
	ID secure.ID `json:"id,omitempty"`
	// Key is the long-term key for OpRegister.
	Key *secure.Key `json:"key,omitempty"`
	// Sealed is the AES-GCM envelope for management operations.
	Sealed []byte `json:"sealed,omitempty"`
	// UserID and ModelID parameterize OpProvision.
	UserID  secure.ID `json:"user_id,omitempty"`
	ModelID string    `json:"model_id,omitempty"`
}

// Response is one KeyService→client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// ID echoes the registered principal id for OpRegister.
	ID secure.ID `json:"id,omitempty"`
	// ModelKey and RequestKey carry provisioned keys (only ever sent over
	// mutually attested channels).
	ModelKey   *secure.Key `json:"model_key,omitempty"`
	RequestKey *secure.Key `json:"request_key,omitempty"`
	// Measurements carries the allowlist snapshot for OpMeasurementStats.
	Measurements map[string]MeasurementStat `json:"measurements,omitempty"`
}

// Server exposes a Service over a listener. Each connection is handled by
// one goroutine that enters the enclave through one TCS for the connection's
// lifetime, mirroring the implementation in §V.
type Server struct {
	svc      *Service
	enc      *enclave.Enclave
	verifier attest.Policy // verifies SeMIRT quotes for provisioning
	logf     func(format string, args ...any)
	// idleTimeout bounds how long a connection may sit between records (and
	// how long the handshake may take) before it is dropped. Each timed-out
	// connection frees its TCS, so a stalled or half-open client cannot pin
	// one of the enclave's limited threads forever. 0 disables deadlines
	// (the historical behaviour; in-process transports rely on it).
	idleTimeout time.Duration

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	conns    map[net.Conn]struct{}
	handlers sync.WaitGroup
}

// NewServer wires a launched Service to its enclave. caPublicKey is the
// attestation root used to verify connecting SeMIRT enclaves. The quote
// policy itself carries no measurement allow-list: which measurements get
// keys is decided inside the Service — by the ACM, and by the revocable
// measurement allowlist in front of it (allowlist.go).
func NewServer(svc *Service, caPublicKey []byte) (*Server, error) {
	if svc.Enclave() == nil {
		return nil, errors.New("keyservice: service not launched in an enclave")
	}
	return &Server{
		svc:      svc,
		enc:      svc.Enclave(),
		verifier: attest.Policy{CAPublicKey: caPublicKey},
		logf:     log.Printf,
		conns:    map[net.Conn]struct{}{},
	}, nil
}

// SetLogf overrides the server's logger (tests use a silent one).
func (s *Server) SetLogf(f func(string, ...any)) { s.logf = f }

// SetIdleTimeout sets the per-connection idle deadline: the handshake and
// each record read must happen within d of the previous activity, or the
// connection is closed and its TCS freed. 0 disables deadlines. Call before
// Serve.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idleTimeout = d }

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.handlers.Add(1)
		go func() {
			defer s.handlers.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting, closes active connections, and waits for in-flight
// handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.handlers.Wait()
	return err
}

// HandleConn serves one already-accepted connection (used by in-process
// transports and tests).
func (s *Server) HandleConn(conn net.Conn) { s.handleConn(conn) }

func (s *Server) handleConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// The whole connection is served inside the enclave: handshake
	// (the quote is generated in-enclave) and request processing bind one
	// TCS, as in the paper's one-thread-per-connection design.
	err := s.enc.ECall(func() error {
		s.armDeadline(conn)
		ch, err := ratls.Server(conn, ratls.Config{Quoter: s.enc})
		if err != nil {
			return fmt.Errorf("handshake: %w", err)
		}
		for {
			s.armDeadline(conn)
			var req Request
			if err := ch.RecvJSON(&req); err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
					return nil
				}
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					return fmt.Errorf("idle for %v: %w", s.idleTimeout, err)
				}
				return err
			}
			resp := s.dispatch(ch, &req)
			if err := ch.SendJSON(resp); err != nil {
				return err
			}
		}
	})
	if err != nil && s.logf != nil {
		s.logf("keyservice: connection ended: %v", err)
	}
}

// armDeadline pushes the connection's absolute deadline idleTimeout into the
// future (covering the next read AND the write that answers it); no-op when
// deadlines are disabled or the conn cannot carry them (in-process pipes).
func (s *Server) armDeadline(conn net.Conn) {
	if s.idleTimeout <= 0 {
		return
	}
	_ = conn.SetDeadline(time.Now().Add(s.idleTimeout))
}

func (s *Server) dispatch(ch *ratls.Conn, req *Request) Response {
	fail := func(err error) Response { return Response{Error: err.Error()} }
	switch req.Op {
	case OpRegister:
		if req.Key == nil {
			return fail(fmt.Errorf("%w: register without key", ErrBadRequest))
		}
		id := s.svc.UserRegistration(*req.Key)
		return Response{OK: true, ID: id}
	case OpAddModelKey:
		if err := s.svc.AddModelKey(req.ID, req.Sealed); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case OpGrantAccess:
		if err := s.svc.GrantAccess(req.ID, req.Sealed); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case OpAddReqKey:
		if err := s.svc.AddReqKey(req.ID, req.Sealed); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case OpAdmitMeasurement:
		if err := s.svc.AdmitMeasurement(req.ID, req.Sealed); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case OpRevokeMeasurement:
		if err := s.svc.RevokeMeasurement(req.ID, req.Sealed); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case OpMeasurementStats:
		return Response{OK: true, Measurements: s.svc.MeasurementStats()}
	case OpProvision:
		quote := ch.PeerQuote()
		if quote == nil {
			return fail(fmt.Errorf("%w: provisioning requires mutual attestation", ErrNotAuthorized))
		}
		// Verify the quote chain here, inside the enclave; the channel layer
		// already checked the key binding if a policy was set, but the
		// server accepts unattested management clients, so re-check fully.
		if err := s.verifier.Check(*quote, nil); err != nil {
			return fail(fmt.Errorf("%w: %v", ErrNotAuthorized, err))
		}
		km, kr, err := s.svc.KeyProvisioning(req.UserID, req.ModelID, quote.Measurement)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, ModelKey: &km, RequestKey: &kr}
	}
	return fail(fmt.Errorf("%w: unknown op %q", ErrBadRequest, req.Op))
}

// MarshalRequest and UnmarshalResponse are exported for transports that
// frame their own records.
func MarshalRequest(r Request) ([]byte, error) { return json.Marshal(r) }
func UnmarshalResponse(b []byte) (Response, error) {
	var r Response
	err := json.Unmarshal(b, &r)
	return r, err
}
