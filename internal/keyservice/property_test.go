package keyservice

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sesemi/internal/attest"
	"sesemi/internal/secure"
)

// TestProvisioningSoundnessProperty drives the service with random operation
// sequences and verifies the central security invariant of Algorithm 1:
// KEY_PROVISIONING(uid, moid, es) succeeds if and only if
//
//  1. the owner deposited a key for moid,
//  2. the owner granted ⟨moid‖es‖uid⟩, and
//  3. uid deposited a request key under ⟨moid‖es⟩,
//
// where "owner" is the principal that first registered the model.
func TestProvisioningSoundnessProperty(t *testing.T) {
	type opCode byte
	const (
		opAddModel opCode = iota
		opGrant
		opAddReq
		opCheck
		opMax
	)

	principals := []string{"p0", "p1", "p2"}
	models := []string{"m0", "m1"}
	enclaves := []attest.Measurement{{1}, {2}}

	f := func(seed int64, steps []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		svc := NewService()
		keys := map[string]secure.Key{}
		ids := map[string]secure.ID{}
		for _, p := range principals {
			k := secure.KeyFromSeed(p)
			keys[p] = k
			ids[p] = svc.UserRegistration(k)
		}
		// Shadow state for the oracle.
		modelOwner := map[string]string{}
		modelKeys := map[string]secure.Key{}
		grants := map[string]bool{}
		reqKeys := map[string]secure.Key{}
		key := func(m string, e attest.Measurement, u string) string {
			return m + "|" + e.Hex() + "|" + u
		}

		if len(steps) > 64 {
			steps = steps[:64]
		}
		for _, st := range steps {
			p := principals[rng.Intn(len(principals))]
			m := models[rng.Intn(len(models))]
			e := enclaves[rng.Intn(len(enclaves))]
			u := principals[rng.Intn(len(principals))]
			switch opCode(st) % opMax {
			case opAddModel:
				km := secure.KeyFromSeed("km" + p + m)
				sealed, err := sealFrom(keys[p], "add_model_key", addModelKeyMsg{ModelID: m, Key: km})
				if err != nil {
					return false
				}
				err = svc.AddModelKey(ids[p], sealed)
				if owner, taken := modelOwner[m]; taken && owner != p {
					if err == nil {
						t.Logf("re-key of %s by non-owner %s accepted", m, p)
						return false
					}
				} else if err != nil {
					return false
				} else {
					modelOwner[m] = p
					modelKeys[m] = km
				}
			case opGrant:
				sealed, err := sealFrom(keys[p], "grant_access", grantAccessMsg{ModelID: m, Enclave: e, UserID: ids[u]})
				if err != nil {
					return false
				}
				err = svc.GrantAccess(ids[p], sealed)
				if modelOwner[m] == p && modelOwner[m] != "" {
					if err != nil {
						return false
					}
					grants[key(m, e, u)] = true
				} else if err == nil {
					t.Logf("grant on %s by non-owner %s accepted", m, p)
					return false
				}
			case opAddReq:
				kr := secure.KeyFromSeed("kr" + p + m + e.Hex())
				sealed, err := sealFrom(keys[p], "add_req_key", addReqKeyMsg{ModelID: m, Enclave: e, Key: kr})
				if err != nil {
					return false
				}
				if err := svc.AddReqKey(ids[p], sealed); err != nil {
					return false
				}
				reqKeys[key(m, e, p)] = kr
			case opCheck:
				km, kr, err := svc.KeyProvisioning(ids[u], m, e)
				k := key(m, e, u)
				_, haveModel := modelKeys[m]
				wantOK := haveModel && grants[k] && reqKeys[k] != secure.Key{}
				if wantOK != (err == nil) {
					t.Logf("oracle mismatch for %s: want ok=%v, got err=%v", k, wantOK, err)
					return false
				}
				if err == nil {
					if !km.Equal(modelKeys[m]) || !kr.Equal(reqKeys[k]) {
						t.Logf("provisioned wrong keys for %s", k)
						return false
					}
				}
			}
		}
		// Final sweep: every (model, enclave, user) triple agrees with the
		// oracle.
		for _, m := range models {
			for _, e := range enclaves {
				for _, u := range principals {
					k := key(m, e, u)
					_, _, err := svc.KeyProvisioning(ids[u], m, e)
					_, haveModel := modelKeys[m]
					wantOK := haveModel && grants[k] && reqKeys[k] != secure.Key{}
					if wantOK != (err == nil) {
						t.Logf("final oracle mismatch for %s", k)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
