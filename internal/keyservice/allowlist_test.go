package keyservice

import (
	"errors"
	"net"
	"strings"
	"testing"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/ratls"
	"sesemi/internal/secure"
	"sesemi/internal/vclock"
)

// allowlistWorld is a launched KeyService with one owner, one user, one
// model, and two enclave identities (stable and canary) granted on it.
type allowlistWorld struct {
	t      *testing.T
	svc    *Service
	srv    *Server
	addr   string
	ca     *attest.CA
	ksES   attest.Measurement
	owner  *Client
	user   *Client
	userID secure.ID

	stable, canary attest.Measurement
	stableQ        ratls.Quoter
	canaryQ        ratls.Quoter
}

func newAllowlistWorld(t *testing.T) *allowlistWorld {
	t.Helper()
	ca, err := attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.Real{Scale: 0}
	ksKey, err := ca.Provision("ks")
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService()
	ksEnc, err := enclave.NewPlatform(costmodel.SGX2, clock, ksKey).Launch(ManifestFor(4), svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ksEnc.Destroy)
	srv, err := NewServer(svc, ca.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	w := &allowlistWorld{t: t, svc: svc, srv: srv, addr: ln.Addr().String(), ca: ca, ksES: ksEnc.Measurement()}
	dial := TCPDialer(w.addr)
	w.owner = NewClient(dial, ca.PublicKey(), ksEnc.Measurement(), secure.KeyFromSeed("al-owner"))
	t.Cleanup(func() { w.owner.Close() })
	w.user = NewClient(dial, ca.PublicKey(), ksEnc.Measurement(), secure.KeyFromSeed("al-user"))
	t.Cleanup(func() { w.user.Close() })
	if err := w.owner.Register(); err != nil {
		t.Fatal(err)
	}
	if err := w.user.Register(); err != nil {
		t.Fatal(err)
	}
	w.userID = w.user.ID()

	// Two SeMIRT identities: the stable build and the canary revision's
	// build. Each is a real enclave on its own platform so provisioning runs
	// over genuine mutual attestation.
	w.stable, w.stableQ = w.launchSemirt("stable", "mbnet")
	w.canary, w.canaryQ = w.launchSemirt("canary", "mbnet@v2")
	if w.stable == w.canary {
		t.Fatal("revision measurements must differ")
	}

	for _, es := range []attest.Measurement{w.stable, w.canary} {
		km := secure.KeyFromSeed("al-km")
		if err := w.owner.AddModelKey("mbnet", km); err != nil {
			t.Fatal(err)
		}
		if err := w.owner.GrantAccess("mbnet", es, w.userID); err != nil {
			t.Fatal(err)
		}
		if err := w.user.AddReqKey("mbnet", es, secure.KeyFromSeed("al-kr")); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// launchSemirt launches a minimal enclave whose measurement stands in for a
// SeMIRT revision build (the manifest varies by the fixed model id, exactly
// as semirt.Config.ForRevision varies it).
func (w *allowlistWorld) launchSemirt(name, fixedModel string) (attest.Measurement, ratls.Quoter) {
	w.t.Helper()
	key, err := w.ca.Provision("node-" + name)
	if err != nil {
		w.t.Fatal(err)
	}
	man := enclave.Manifest{
		Name:        "semirt-" + name,
		CodeHash:    enclave.CodeIdentity("sesemi/semirt", "v1", "fixedmodel="+fixedModel),
		TCSCount:    1,
		MemoryBytes: 1 << 20,
	}
	enc, err := enclave.NewPlatform(costmodel.SGX2, vclock.Real{Scale: 0}, key).Launch(man, nopProgram{})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(enc.Destroy)
	return enc.Measurement(), enc
}

type nopProgram struct{}

func (nopProgram) Init(*enclave.Enclave) error { return nil }

// provision runs one KEY_PROVISIONING round trip as the given enclave.
func (w *allowlistWorld) provision(q ratls.Quoter) error {
	ec := NewEnclaveClient(TCPDialer(w.addr), w.ca.PublicKey(), w.ksES, q)
	sess, err := ec.Connect()
	if err != nil {
		return err
	}
	defer sess.Close()
	_, _, err = sess.Provision(w.userID, "mbnet")
	return err
}

func TestRevokedMeasurementRejectedAndCounted(t *testing.T) {
	w := newAllowlistWorld(t)

	// Admit-all mode: both identities provision (and are counted as admits).
	if err := w.provision(w.stableQ); err != nil {
		t.Fatalf("stable pre-enforcement: %v", err)
	}
	if err := w.provision(w.canaryQ); err != nil {
		t.Fatalf("canary pre-enforcement: %v", err)
	}

	// Admit stable and canary explicitly: enforcement latches on.
	if err := w.owner.AdmitMeasurement(w.stable); err != nil {
		t.Fatal(err)
	}
	if err := w.owner.AdmitMeasurement(w.canary); err != nil {
		t.Fatal(err)
	}
	if !w.svc.Enforcing() {
		t.Fatal("enforcement should latch on after first admit")
	}
	if err := w.provision(w.canaryQ); err != nil {
		t.Fatalf("admitted canary: %v", err)
	}

	// Rollback: revoke the canary. It must be rejected immediately, the
	// stable build must keep provisioning, and the rejection must be counted.
	if err := w.owner.RevokeMeasurement(w.canary); err != nil {
		t.Fatal(err)
	}
	err := w.provision(w.canaryQ)
	if err == nil {
		t.Fatal("revoked canary still obtained keys")
	}
	if !strings.Contains(err.Error(), "not admitted") {
		t.Fatalf("want not-admitted rejection, got %v", err)
	}
	if err := w.provision(w.stableQ); err != nil {
		t.Fatalf("stable after canary revocation: %v", err)
	}

	stats, err := w.owner.MeasurementStats()
	if err != nil {
		t.Fatal(err)
	}
	canarySt := stats[w.canary.Hex()]
	if canarySt.Admitted {
		t.Fatal("canary still admitted in stats")
	}
	if canarySt.Admits != 2 || canarySt.Rejects != 1 {
		t.Fatalf("canary counters = %+v, want 2 admits / 1 reject", canarySt)
	}
	stableSt := stats[w.stable.Hex()]
	if !stableSt.Admitted || stableSt.Admits != 2 || stableSt.Rejects != 0 {
		t.Fatalf("stable counters = %+v, want admitted, 2 admits / 0 rejects", stableSt)
	}
}

func TestDirectServiceAllowlist(t *testing.T) {
	// Service-level check without the wire: ErrNotAdmitted wraps
	// ErrNotAuthorized so existing retry/shed classification keeps working.
	svc := NewService()
	es := enclave.Manifest{Name: "x", CodeHash: enclave.CodeIdentity("p", "v"), TCSCount: 1, MemoryBytes: 1 << 20}.Measure()
	if !svc.MeasurementAdmitted(es) {
		t.Fatal("admit-all mode should admit any measurement")
	}
	if err := svc.checkAdmission(es); err != nil {
		t.Fatalf("admit-all checkAdmission: %v", err)
	}
	svc.mu.Lock()
	svc.enforcing = true
	svc.mu.Unlock()
	err := svc.checkAdmission(es)
	if !errors.Is(err, ErrNotAdmitted) || !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("want ErrNotAdmitted wrapping ErrNotAuthorized, got %v", err)
	}
	st := svc.MeasurementStats()[es.Hex()]
	if st.Admits != 1 || st.Rejects != 1 {
		t.Fatalf("counters = %+v", st)
	}
}
