// Package keyservice implements SeSeMI's trust-establishment component
// (§IV-A, Algorithm 1).
//
// KeyService is an always-on enclave that bridges users and serverless
// instances: model owners and users attest it, register long-term identity
// keys, deposit model keys (K_M) and request keys (K_R), and declare an
// access-control matrix of ⟨Moid‖ES‖uid⟩ records. SeMIRT enclaves connect
// over mutually attested channels and retrieve exactly the keys the matrix
// authorizes for their measured identity ES.
//
// The Service type is the enclave program: all of its state lives "inside"
// the enclave and is reachable only through the ECall-wrapped connection
// handlers in Server.
package keyservice

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"sesemi/internal/attest"
	"sesemi/internal/enclave"
	"sesemi/internal/secure"
)

// ProgramName is the enclave program identifier; together with Version it
// determines the KeyService enclave identity E_K.
const ProgramName = "sesemi/keyservice"

// Version is the KeyService code version.
const Version = "v1"

// DefaultTCS is the number of concurrent connections (one TCS each, §V).
const DefaultTCS = 8

// DefaultMemoryBytes is the configured enclave size of KeyService; it stores
// only keys and policies, so 16 MiB suffices (Figure 16 uses a 16 MiB
// enclave for attestation benchmarks).
const DefaultMemoryBytes = 16 << 20

// ManifestFor returns the enclave manifest for a KeyService with the given
// TCS count. Clients derive the expected measurement E_K from the same
// function, offline.
func ManifestFor(tcs int) enclave.Manifest {
	if tcs <= 0 {
		tcs = DefaultTCS
	}
	return enclave.Manifest{
		Name:        "keyservice",
		CodeHash:    enclave.CodeIdentity(ProgramName, Version),
		TCSCount:    tcs,
		MemoryBytes: DefaultMemoryBytes,
	}
}

// ExpectedMeasurement returns E_K for the default configuration.
func ExpectedMeasurement() attest.Measurement {
	return ManifestFor(DefaultTCS).Measure()
}

// Service is the KeyService enclave program holding Algorithm 1's four
// stores.
type Service struct {
	mu sync.RWMutex
	// identities is KS_I: principal id -> long-term key.
	identities map[secure.ID]secure.Key
	// modelKeys is KS_M: Moid -> (owner, K_M).
	modelKeys map[string]modelKeyEntry
	// reqKeys is KS_R: Moid‖ES‖uid -> K_R.
	reqKeys map[string]secure.Key
	// acm is ACM: the set of authorized Moid‖ES‖uid records.
	acm map[string]bool
	// allowed is the enclave-measurement allowlist (allowlist.go); enforcing
	// latches to true on the first admission and never resets.
	allowed   map[string]bool
	enforcing bool
	// measurements carries per-measurement admit/reject counters.
	measurements map[string]*MeasurementStat

	enc *enclave.Enclave
}

type modelKeyEntry struct {
	owner secure.ID
	key   secure.Key
}

// NewService creates an empty KeyService program.
func NewService() *Service {
	return &Service{
		identities:   map[secure.ID]secure.Key{},
		modelKeys:    map[string]modelKeyEntry{},
		reqKeys:      map[string]secure.Key{},
		acm:          map[string]bool{},
		allowed:      map[string]bool{},
		measurements: map[string]*MeasurementStat{},
	}
}

// Init implements enclave.Program.
func (s *Service) Init(e *enclave.Enclave) error {
	s.enc = e
	return nil
}

// Enclave returns the hosting enclave (nil before launch).
func (s *Service) Enclave() *enclave.Enclave { return s.enc }

// Service errors.
var (
	ErrUnknownPrincipal = errors.New("keyservice: unknown principal")
	ErrNotAuthorized    = errors.New("keyservice: not authorized")
	ErrNotOwner         = errors.New("keyservice: principal does not own model")
	ErrBadRequest       = errors.New("keyservice: malformed request")
)

// acKey builds the Moid‖ES‖uid composite key of KS_R and ACM.
func acKey(moid string, es attest.Measurement, uid secure.ID) string {
	return moid + "\x1f" + es.Hex() + "\x1f" + string(uid)
}

// UserRegistration implements USER_REGISTRATION (Algorithm 1 lines 5-8):
// it stores the long-term key and returns the derived principal id.
func (s *Service) UserRegistration(k secure.Key) secure.ID {
	id := secure.IdentityOf(k)
	s.mu.Lock()
	s.identities[id] = k
	s.mu.Unlock()
	return id
}

// addModelKeyMsg is the plaintext of [Moid‖K_M]_{K_oid}.
type addModelKeyMsg struct {
	ModelID string     `json:"model_id"`
	Key     secure.Key `json:"key"`
}

// AddModelKey implements ADD_MODEL_KEY (lines 9-12). sealed is the owner's
// AES-GCM envelope under their long-term key.
func (s *Service) AddModelKey(oid secure.ID, sealed []byte) error {
	koid, err := s.identityKey(oid)
	if err != nil {
		return err
	}
	var msg addModelKeyMsg
	if err := openInto(koid, "add_model_key", sealed, &msg); err != nil {
		return err
	}
	if msg.ModelID == "" {
		return fmt.Errorf("%w: empty model id", ErrBadRequest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.modelKeys[msg.ModelID]; ok && cur.owner != oid {
		return fmt.Errorf("%w: model %q registered by another owner", ErrNotOwner, msg.ModelID)
	}
	s.modelKeys[msg.ModelID] = modelKeyEntry{owner: oid, key: msg.Key}
	return nil
}

// grantAccessMsg is the plaintext of [Moid‖ES‖uid]_{K_oid}.
type grantAccessMsg struct {
	ModelID string             `json:"model_id"`
	Enclave attest.Measurement `json:"enclave"`
	UserID  secure.ID          `json:"user_id"`
}

// GrantAccess implements GRANT_ACCESS (lines 13-16): the owner authorizes
// user uid to use model Moid through enclaves measuring ES.
func (s *Service) GrantAccess(oid secure.ID, sealed []byte) error {
	koid, err := s.identityKey(oid)
	if err != nil {
		return err
	}
	var msg grantAccessMsg
	if err := openInto(koid, "grant_access", sealed, &msg); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.modelKeys[msg.ModelID]
	if !ok || entry.owner != oid {
		return fmt.Errorf("%w: %q", ErrNotOwner, msg.ModelID)
	}
	s.acm[acKey(msg.ModelID, msg.Enclave, msg.UserID)] = true
	return nil
}

// addReqKeyMsg is the plaintext of [Moid‖ES‖K_R]_{K_uid}.
type addReqKeyMsg struct {
	ModelID string             `json:"model_id"`
	Enclave attest.Measurement `json:"enclave"`
	Key     secure.Key         `json:"key"`
}

// AddReqKey implements ADD_REQ_KEY (lines 17-20): user uid deposits request
// key K_R, releasable only to enclave ES running model Moid.
func (s *Service) AddReqKey(uid secure.ID, sealed []byte) error {
	kuid, err := s.identityKey(uid)
	if err != nil {
		return err
	}
	var msg addReqKeyMsg
	if err := openInto(kuid, "add_req_key", sealed, &msg); err != nil {
		return err
	}
	s.mu.Lock()
	s.reqKeys[acKey(msg.ModelID, msg.Enclave, uid)] = msg.Key
	s.mu.Unlock()
	return nil
}

// KeyProvisioning implements KEY_PROVISIONING (lines 21-26): a SeMIRT
// enclave whose verified measurement is es requests the model and request
// keys for (uid, moid). The measurement must pass the allowlist
// (allowlist.go — the admit/reject is counted either way), and both the ACM
// record and the user's deposited request key must exist.
func (s *Service) KeyProvisioning(uid secure.ID, moid string, es attest.Measurement) (km, kr secure.Key, err error) {
	if err := s.checkAdmission(es); err != nil {
		return secure.Key{}, secure.Key{}, err
	}
	k := acKey(moid, es, uid)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.acm[k] {
		return secure.Key{}, secure.Key{}, fmt.Errorf("%w: no grant for model %q user %s enclave %s",
			ErrNotAuthorized, moid, uid, es.Hex()[:8])
	}
	reqKey, ok := s.reqKeys[k]
	if !ok {
		return secure.Key{}, secure.Key{}, fmt.Errorf("%w: user %s deposited no request key", ErrNotAuthorized, uid)
	}
	entry, ok := s.modelKeys[moid]
	if !ok {
		return secure.Key{}, secure.Key{}, fmt.Errorf("%w: model %q has no key", ErrNotAuthorized, moid)
	}
	return entry.key, reqKey, nil
}

// Counts reports store sizes (for monitoring and tests).
func (s *Service) Counts() (identities, models, reqKeys, grants int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.identities), len(s.modelKeys), len(s.reqKeys), len(s.acm)
}

func (s *Service) identityKey(id secure.ID) (secure.Key, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k, ok := s.identities[id]
	if !ok {
		return secure.Key{}, fmt.Errorf("%w: %s", ErrUnknownPrincipal, id)
	}
	return k, nil
}

// openInto decrypts a management envelope and unmarshals its JSON payload.
func openInto(k secure.Key, context string, sealed []byte, v any) error {
	pt, err := secure.Open(k, secure.PurposeKeyMgmt, context, sealed)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := json.Unmarshal(pt, v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// sealFrom builds a management envelope; used by the client.
func sealFrom(k secure.Key, context string, v any) ([]byte, error) {
	pt, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return secure.Seal(k, secure.PurposeKeyMgmt, context, pt)
}
