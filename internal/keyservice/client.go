package keyservice

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"sesemi/internal/attest"
	"sesemi/internal/ratls"
	"sesemi/internal/secure"
)

// Dialer opens a transport connection to the KeyService.
type Dialer func() (net.Conn, error)

// TCPDialer dials a network address.
func TCPDialer(addr string) Dialer {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// Client is the model owner's / model user's KeyService client. It attests
// the KeyService enclave against the expected measurement E_K before
// sending anything (workflow step 1 in §III).
type Client struct {
	dial   Dialer
	policy attest.Policy
	key    secure.Key
	id     secure.ID

	mu   sync.Mutex
	conn *ratls.Conn
	raw  net.Conn
}

// NewClient creates a client for the principal holding the given long-term
// key. caPublicKey is the attestation root; expectEK is the KeyService
// measurement the principal derived offline.
func NewClient(dial Dialer, caPublicKey []byte, expectEK attest.Measurement, longTerm secure.Key) *Client {
	return &Client{
		dial: dial,
		policy: attest.Policy{
			CAPublicKey: caPublicKey,
			Allowed:     []attest.Measurement{expectEK},
		},
		key: longTerm,
		id:  secure.IdentityOf(longTerm),
	}
}

// ID returns the principal id derived from the long-term key.
func (c *Client) ID() secure.ID { return c.id }

// connect establishes (or reuses) the attested channel.
func (c *Client) connect() (*ratls.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		return c.conn, nil
	}
	raw, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("keyservice client: dial: %w", err)
	}
	ch, err := ratls.Client(raw, ratls.Config{PeerPolicy: &c.policy})
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("keyservice client: attestation: %w", err)
	}
	c.conn = ch
	c.raw = raw
	return ch, nil
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn = nil
	if c.raw != nil {
		err := c.raw.Close()
		c.raw = nil
		return err
	}
	return nil
}

// roundTrip sends one request and reads one response, serialized per client.
func (c *Client) roundTrip(req Request) (Response, error) {
	ch, err := c.connect()
	if err != nil {
		return Response{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ch.SendJSON(req); err != nil {
		c.conn = nil
		return Response{}, err
	}
	var resp Response
	if err := ch.RecvJSON(&resp); err != nil {
		c.conn = nil
		return Response{}, err
	}
	if !resp.OK {
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// Register registers the principal's long-term key (USER_REGISTRATION) and
// confirms the server derived the same id.
func (c *Client) Register() error {
	resp, err := c.roundTrip(Request{Op: OpRegister, Key: &c.key})
	if err != nil {
		return err
	}
	if resp.ID != c.id {
		return fmt.Errorf("keyservice client: server derived id %s, want %s", resp.ID, c.id)
	}
	return nil
}

// AddModelKey deposits the model decryption key K_M for a model this
// principal owns (ADD_MODEL_KEY).
func (c *Client) AddModelKey(modelID string, km secure.Key) error {
	sealed, err := sealFrom(c.key, "add_model_key", addModelKeyMsg{ModelID: modelID, Key: km})
	if err != nil {
		return err
	}
	_, err = c.roundTrip(Request{Op: OpAddModelKey, ID: c.id, Sealed: sealed})
	return err
}

// GrantAccess authorizes user uid to run model modelID inside enclaves
// measuring es (GRANT_ACCESS).
func (c *Client) GrantAccess(modelID string, es attest.Measurement, uid secure.ID) error {
	sealed, err := sealFrom(c.key, "grant_access", grantAccessMsg{ModelID: modelID, Enclave: es, UserID: uid})
	if err != nil {
		return err
	}
	_, err = c.roundTrip(Request{Op: OpGrantAccess, ID: c.id, Sealed: sealed})
	return err
}

// AddReqKey deposits the user's request key K_R, releasable only to enclave
// es running modelID (ADD_REQ_KEY).
func (c *Client) AddReqKey(modelID string, es attest.Measurement, kr secure.Key) error {
	sealed, err := sealFrom(c.key, "add_req_key", addReqKeyMsg{ModelID: modelID, Enclave: es, Key: kr})
	if err != nil {
		return err
	}
	_, err = c.roundTrip(Request{Op: OpAddReqKey, ID: c.id, Sealed: sealed})
	return err
}

// AdmitMeasurement adds an enclave measurement to the provisioning
// allowlist (ADMIT_MEASUREMENT). The first admission switches the service
// to default-deny: only admitted measurements can obtain keys after it.
func (c *Client) AdmitMeasurement(es attest.Measurement) error {
	sealed, err := sealFrom(c.key, "admit_measurement", measurementMsg{Enclave: es})
	if err != nil {
		return err
	}
	_, err = c.roundTrip(Request{Op: OpAdmitMeasurement, ID: c.id, Sealed: sealed})
	return err
}

// RevokeMeasurement strips an enclave measurement of key-provisioning
// rights (REVOKE_MEASUREMENT) — the rollback path of a canary rollout.
func (c *Client) RevokeMeasurement(es attest.Measurement) error {
	sealed, err := sealFrom(c.key, "revoke_measurement", measurementMsg{Enclave: es})
	if err != nil {
		return err
	}
	_, err = c.roundTrip(Request{Op: OpRevokeMeasurement, ID: c.id, Sealed: sealed})
	return err
}

// MeasurementStats fetches the allowlist snapshot: per-measurement admitted
// flag and admit/reject counters.
func (c *Client) MeasurementStats() (map[string]MeasurementStat, error) {
	resp, err := c.roundTrip(Request{Op: OpMeasurementStats})
	if err != nil {
		return nil, err
	}
	return resp.Measurements, nil
}

// EnclaveClient is the SeMIRT side of key provisioning: it connects with
// mutual attestation (its own quote + verification of E_K) and calls
// KEY_PROVISIONING.
type EnclaveClient struct {
	dial   Dialer
	policy attest.Policy
	quoter ratls.Quoter
}

// NewEnclaveClient builds the provisioning client used inside a SeMIRT
// enclave.
func NewEnclaveClient(dial Dialer, caPublicKey []byte, expectEK attest.Measurement, quoter ratls.Quoter) *EnclaveClient {
	return &EnclaveClient{
		dial: dial,
		policy: attest.Policy{
			CAPublicKey: caPublicKey,
			Allowed:     []attest.Measurement{expectEK},
		},
		quoter: quoter,
	}
}

// Session is an established mutually attested provisioning channel that can
// be cached across requests (SeMIRT "maintains a secure channel with
// KeyService after the first remote attestation", §IV-B).
type Session struct {
	mu   sync.Mutex
	conn *ratls.Conn
	raw  net.Conn
}

// Connect performs the mutual attestation handshake.
func (ec *EnclaveClient) Connect() (*Session, error) {
	raw, err := ec.dial()
	if err != nil {
		return nil, fmt.Errorf("provision: dial: %w", err)
	}
	ch, err := ratls.Client(raw, ratls.Config{Quoter: ec.quoter, PeerPolicy: &ec.policy})
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("provision: mutual attestation: %w", err)
	}
	return &Session{conn: ch, raw: raw}, nil
}

// Provision retrieves (K_M, K_R) for the user/model pair.
func (s *Session) Provision(uid secure.ID, modelID string) (km, kr secure.Key, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.conn.SendJSON(Request{Op: OpProvision, UserID: uid, ModelID: modelID}); err != nil {
		return secure.Key{}, secure.Key{}, err
	}
	var resp Response
	if err := s.conn.RecvJSON(&resp); err != nil {
		return secure.Key{}, secure.Key{}, err
	}
	if !resp.OK {
		return secure.Key{}, secure.Key{}, errors.New(resp.Error)
	}
	if resp.ModelKey == nil || resp.RequestKey == nil {
		return secure.Key{}, secure.Key{}, errors.New("provision: response missing keys")
	}
	return *resp.ModelKey, *resp.RequestKey, nil
}

// Close drops the session transport.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.raw != nil {
		err := s.raw.Close()
		s.raw = nil
		return err
	}
	return nil
}
