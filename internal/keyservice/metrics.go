package keyservice

// Unified-registry export of the KeyService's observable state. Everything
// here is scrape-time adaptation of counters the service already keeps —
// store sizes, allowlist mode, and the provisioning admit/reject totals whose
// movement is the observable trace of a rollout revocation. Only counts leave
// the enclave boundary, never key material or principal ids.

import "sesemi/internal/obs"

// RegisterMetrics exports the service's store sizes and allowlist counters on
// reg under the given base labels (node...).
func (s *Service) RegisterMetrics(reg *obs.Registry, labels obs.Labels) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("sesemi_keyservice_identities", "Registered principal identities (KS_I).", labels,
		func() float64 { ids, _, _, _ := s.Counts(); return float64(ids) })
	reg.GaugeFunc("sesemi_keyservice_models", "Deposited model keys (KS_M).", labels,
		func() float64 { _, models, _, _ := s.Counts(); return float64(models) })
	reg.GaugeFunc("sesemi_keyservice_req_keys", "Deposited request keys (KS_R).", labels,
		func() float64 { _, _, reqKeys, _ := s.Counts(); return float64(reqKeys) })
	reg.GaugeFunc("sesemi_keyservice_grants", "Access-control matrix records (ACM).", labels,
		func() float64 { _, _, _, grants := s.Counts(); return float64(grants) })
	reg.GaugeFunc("sesemi_keyservice_enforcing", "1 when the measurement allowlist is default-deny.", labels,
		func() float64 {
			if s.Enforcing() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("sesemi_keyservice_measurements_admitted", "Enclave measurements currently admitted.", labels,
		func() float64 {
			n := 0
			for _, st := range s.MeasurementStats() {
				if st.Admitted {
					n++
				}
			}
			return float64(n)
		})
	// Allowlist entries are never deleted, so these scrape-time sums are
	// monotone — valid Prometheus counters.
	reg.CounterFunc("sesemi_keyservice_provision_admits_total", "Provisioning attempts admitted by the allowlist.", labels,
		func() float64 {
			var n uint64
			for _, st := range s.MeasurementStats() {
				n += st.Admits
			}
			return float64(n)
		})
	reg.CounterFunc("sesemi_keyservice_provision_rejects_total", "Provisioning attempts rejected by the allowlist.", labels,
		func() float64 {
			var n uint64
			for _, st := range s.MeasurementStats() {
				n += st.Rejects
			}
			return float64(n)
		})
}
