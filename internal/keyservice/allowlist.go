package keyservice

import (
	"fmt"

	"sesemi/internal/attest"
	"sesemi/internal/secure"
)

// Measurement allowlist: the admission layer of attested canary rollout.
//
// The ACM (Algorithm 1) decides which ⟨Moid‖ES‖uid⟩ triples may be
// provisioned; the allowlist sits in front of it and decides which enclave
// measurements ES may be provisioned AT ALL. It exists for revocation speed:
// rolling back a bad model revision must strip its enclave build of key
// access in one operation, without enumerating (and deleting) every grant
// and request key deposited against it. Grants stay in place, so re-admitting
// the measurement (a fixed canary re-ramp) restores service instantly.
//
// Enforcement is opt-in but latching: a service starts in admit-all mode
// (every pre-revision deployment keeps working), the first ADMIT_MEASUREMENT
// switches it to default-deny, and it never switches back — revoking every
// admitted measurement fails closed, not open.

// ErrNotAdmitted reports a provisioning attempt by an enclave whose
// measurement is not on the allowlist (revoked, or never admitted while
// enforcement is on).
var ErrNotAdmitted = fmt.Errorf("%w: enclave measurement not admitted", ErrNotAuthorized)

// MeasurementStat is one measurement's allowlist record: whether it is
// currently admitted, and how many provisioning attempts it has had admitted
// and rejected. Rejects on a previously-admitted measurement are the
// observable trace of a rollback revocation.
type MeasurementStat struct {
	Admitted bool   `json:"admitted"`
	Admits   uint64 `json:"admits"`
	Rejects  uint64 `json:"rejects"`
}

// measurementMsg is the plaintext of [ES]_{K_pid} for admit/revoke.
type measurementMsg struct {
	Enclave attest.Measurement `json:"enclave"`
}

// AdmitMeasurement implements ADMIT_MEASUREMENT: a registered principal (the
// platform operator in this deployment model) adds an enclave measurement to
// the allowlist. The first admission turns enforcement on permanently.
func (s *Service) AdmitMeasurement(pid secure.ID, sealed []byte) error {
	es, err := s.openMeasurement(pid, "admit_measurement", sealed)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enforcing = true
	s.allowed[es.Hex()] = true
	return nil
}

// RevokeMeasurement implements REVOKE_MEASUREMENT: the measurement loses
// key-provisioning rights immediately. Grants and request keys survive, so
// re-admission restores service without re-running the owner/user workflow.
func (s *Service) RevokeMeasurement(pid secure.ID, sealed []byte) error {
	es, err := s.openMeasurement(pid, "revoke_measurement", sealed)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.allowed, es.Hex())
	return nil
}

func (s *Service) openMeasurement(pid secure.ID, context string, sealed []byte) (attest.Measurement, error) {
	kp, err := s.identityKey(pid)
	if err != nil {
		return attest.Measurement{}, err
	}
	var msg measurementMsg
	if err := openInto(kp, context, sealed, &msg); err != nil {
		return attest.Measurement{}, err
	}
	return msg.Enclave, nil
}

// MeasurementAdmitted reports whether es would pass the allowlist right now
// (always true while enforcement is off). It does not count an attempt.
func (s *Service) MeasurementAdmitted(es attest.Measurement) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.enforcing || s.allowed[es.Hex()]
}

// checkAdmission is the provisioning-path gate: it decides and counts.
// Counting happens even in admit-all mode, so /stats shows per-measurement
// provisioning traffic before any rollout policy is configured.
func (s *Service) checkAdmission(es attest.Measurement) error {
	hex := es.Hex()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.measurements[hex]
	if st == nil {
		st = &MeasurementStat{}
		s.measurements[hex] = st
	}
	if s.enforcing && !s.allowed[hex] {
		st.Rejects++
		return fmt.Errorf("%w: %s", ErrNotAdmitted, hex[:8])
	}
	st.Admits++
	return nil
}

// MeasurementStats snapshots the allowlist: every measurement that is
// admitted or has attempted provisioning, with its admit/reject counters.
func (s *Service) MeasurementStats() map[string]MeasurementStat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]MeasurementStat, len(s.measurements))
	for hex, st := range s.measurements {
		cp := *st
		cp.Admitted = !s.enforcing || s.allowed[hex]
		out[hex] = cp
	}
	for hex := range s.allowed {
		if _, ok := out[hex]; !ok {
			out[hex] = MeasurementStat{Admitted: true}
		}
	}
	return out
}

// Enforcing reports whether the allowlist is in default-deny mode.
func (s *Service) Enforcing() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.enforcing
}
