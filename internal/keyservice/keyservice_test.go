package keyservice

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/secure"
	"sesemi/internal/vclock"
)

// --- Service (Algorithm 1) unit tests ---

func newService(t *testing.T) *Service {
	t.Helper()
	return NewService()
}

func TestUserRegistrationDerivesID(t *testing.T) {
	s := newService(t)
	k := secure.KeyFromSeed("owner")
	id := s.UserRegistration(k)
	if id != secure.IdentityOf(k) {
		t.Fatalf("id %s, want SHA-256 of key", id)
	}
	ids, _, _, _ := s.Counts()
	if ids != 1 {
		t.Fatalf("identities = %d", ids)
	}
}

func seal(t *testing.T, k secure.Key, context string, v any) []byte {
	t.Helper()
	sealed, err := sealFrom(k, context, v)
	if err != nil {
		t.Fatal(err)
	}
	return sealed
}

func TestAddModelKeyHappyPath(t *testing.T) {
	s := newService(t)
	ok := secure.KeyFromSeed("owner")
	oid := s.UserRegistration(ok)
	km := secure.KeyFromSeed("model-key")
	if err := s.AddModelKey(oid, seal(t, ok, "add_model_key", addModelKeyMsg{ModelID: "m1", Key: km})); err != nil {
		t.Fatal(err)
	}
	_, models, _, _ := s.Counts()
	if models != 1 {
		t.Fatalf("models = %d", models)
	}
}

func TestAddModelKeyUnknownPrincipal(t *testing.T) {
	s := newService(t)
	k := secure.KeyFromSeed("ghost")
	err := s.AddModelKey(secure.IdentityOf(k), seal(t, k, "add_model_key", addModelKeyMsg{ModelID: "m", Key: k}))
	if !errors.Is(err, ErrUnknownPrincipal) {
		t.Fatalf("err = %v", err)
	}
}

func TestAddModelKeyWrongSealKey(t *testing.T) {
	// A registered principal cannot submit an envelope sealed with someone
	// else's key: the server decrypts with the claimed principal's key.
	s := newService(t)
	ownerKey := secure.KeyFromSeed("owner")
	oid := s.UserRegistration(ownerKey)
	attacker := secure.KeyFromSeed("attacker")
	err := s.AddModelKey(oid, seal(t, attacker, "add_model_key", addModelKeyMsg{ModelID: "m", Key: attacker}))
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

func TestCrossOperationReplayRejected(t *testing.T) {
	// An envelope sealed for add_model_key must not be accepted by
	// grant_access (context binding in the AAD).
	s := newService(t)
	ok := secure.KeyFromSeed("owner")
	oid := s.UserRegistration(ok)
	env := seal(t, ok, "add_model_key", addModelKeyMsg{ModelID: "m", Key: ok})
	if err := s.GrantAccess(oid, env); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("cross-op replay: %v", err)
	}
}

func TestModelOwnershipProtected(t *testing.T) {
	s := newService(t)
	aliceK := secure.KeyFromSeed("alice")
	bobK := secure.KeyFromSeed("bob")
	alice := s.UserRegistration(aliceK)
	bob := s.UserRegistration(bobK)
	if err := s.AddModelKey(alice, seal(t, aliceK, "add_model_key", addModelKeyMsg{ModelID: "m", Key: aliceK})); err != nil {
		t.Fatal(err)
	}
	// Bob cannot re-key Alice's model.
	err := s.AddModelKey(bob, seal(t, bobK, "add_model_key", addModelKeyMsg{ModelID: "m", Key: bobK}))
	if !errors.Is(err, ErrNotOwner) {
		t.Fatalf("re-key by non-owner: %v", err)
	}
	// Bob cannot grant access to Alice's model.
	var es attest.Measurement
	err = s.GrantAccess(bob, seal(t, bobK, "grant_access", grantAccessMsg{ModelID: "m", Enclave: es, UserID: bob}))
	if !errors.Is(err, ErrNotOwner) {
		t.Fatalf("grant by non-owner: %v", err)
	}
}

func TestKeyProvisioningFullMatrix(t *testing.T) {
	s := newService(t)
	ownerK := secure.KeyFromSeed("owner")
	userK := secure.KeyFromSeed("user")
	oid := s.UserRegistration(ownerK)
	uid := s.UserRegistration(userK)
	km := secure.KeyFromSeed("km")
	kr := secure.KeyFromSeed("kr")
	goodES := attest.Measurement{1, 2, 3}
	badES := attest.Measurement{9, 9, 9}

	if err := s.AddModelKey(oid, seal(t, ownerK, "add_model_key", addModelKeyMsg{ModelID: "m", Key: km})); err != nil {
		t.Fatal(err)
	}

	// Before any grant: denied.
	if _, _, err := s.KeyProvisioning(uid, "m", goodES); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("pre-grant: %v", err)
	}

	if err := s.GrantAccess(oid, seal(t, ownerK, "grant_access", grantAccessMsg{ModelID: "m", Enclave: goodES, UserID: uid})); err != nil {
		t.Fatal(err)
	}

	// Grant but no request key: denied (Algorithm 1 line 23 requires both).
	if _, _, err := s.KeyProvisioning(uid, "m", goodES); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("no req key: %v", err)
	}

	if err := s.AddReqKey(uid, seal(t, userK, "add_req_key", addReqKeyMsg{ModelID: "m", Enclave: goodES, Key: kr})); err != nil {
		t.Fatal(err)
	}

	gotKM, gotKR, err := s.KeyProvisioning(uid, "m", goodES)
	if err != nil {
		t.Fatal(err)
	}
	if !gotKM.Equal(km) || !gotKR.Equal(kr) {
		t.Fatal("provisioned wrong keys")
	}

	// Wrong enclave identity: denied.
	if _, _, err := s.KeyProvisioning(uid, "m", badES); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("wrong ES: %v", err)
	}
	// Wrong user: denied.
	if _, _, err := s.KeyProvisioning(oid, "m", goodES); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("wrong uid: %v", err)
	}
	// Wrong model: denied.
	if _, _, err := s.KeyProvisioning(uid, "other", goodES); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("wrong model: %v", err)
	}
}

func TestReqKeyBoundToDepositor(t *testing.T) {
	// A user's request key is stored under the *authenticated* uid, so a
	// third party cannot deposit a key on someone else's behalf.
	s := newService(t)
	userK := secure.KeyFromSeed("user")
	malloryK := secure.KeyFromSeed("mallory")
	uid := s.UserRegistration(userK)
	mallory := s.UserRegistration(malloryK)
	es := attest.Measurement{5}
	// Mallory deposits a key claiming it is for uid — it lands under
	// mallory's id because AddReqKey uses the authenticated caller.
	if err := s.AddReqKey(mallory, seal(t, malloryK, "add_req_key", addReqKeyMsg{ModelID: "m", Enclave: es, Key: malloryK})); err != nil {
		t.Fatal(err)
	}
	_, _, reqKeys, _ := s.Counts()
	if reqKeys != 1 {
		t.Fatalf("reqKeys = %d", reqKeys)
	}
	// uid still has no deposited key.
	if _, _, err := s.KeyProvisioning(uid, "m", es); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("uid unexpectedly authorized: %v", err)
	}
}

func TestManifestMeasurementStable(t *testing.T) {
	if ManifestFor(DefaultTCS).Measure() != ExpectedMeasurement() {
		t.Fatal("ExpectedMeasurement does not match default manifest")
	}
	if ManifestFor(1).Measure() == ExpectedMeasurement() {
		t.Fatal("TCS config change must change E_K")
	}
	if ManifestFor(0).Measure() != ExpectedMeasurement() {
		t.Fatal("ManifestFor(0) must default to DefaultTCS")
	}
}

// --- End-to-end over real TCP with real enclaves ---

type testbed struct {
	ca     *attest.CA
	server *Server
	addr   string
	ksEnc  *enclave.Enclave
}

func startKeyService(t *testing.T) *testbed { return startKeyServiceIdle(t, 0) }

func startKeyServiceIdle(t *testing.T, idle time.Duration) *testbed {
	t.Helper()
	ca, err := attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	key, err := ca.Provision("ks-node")
	if err != nil {
		t.Fatal(err)
	}
	platform := enclave.NewPlatform(costmodel.SGX2, vclock.Real{Scale: 0}, key)
	svc := NewService()
	enc, err := platform.Launch(ManifestFor(DefaultTCS), svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(enc.Destroy)
	srv, err := NewServer(svc, ca.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(nil)
	if idle > 0 {
		srv.SetIdleTimeout(idle)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return &testbed{ca: ca, server: srv, addr: ln.Addr().String(), ksEnc: enc}
}

func launchWorker(t *testing.T, tb *testbed, program string) *enclave.Enclave {
	t.Helper()
	key, err := tb.ca.Provision("worker-" + program)
	if err != nil {
		t.Fatal(err)
	}
	platform := enclave.NewPlatform(costmodel.SGX2, vclock.Real{Scale: 0}, key)
	e, err := platform.Launch(enclave.Manifest{
		Name:        program,
		CodeHash:    enclave.CodeIdentity(program),
		TCSCount:    2,
		MemoryBytes: 64 << 20,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Destroy)
	return e
}

// A client that connects and never speaks is dropped at the idle deadline,
// freeing its TCS — it cannot pin one of the enclave's threads forever.
func TestIdleConnectionDropped(t *testing.T) {
	tb := startKeyServiceIdle(t, 100*time.Millisecond)
	conn, err := net.Dial("tcp", tb.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing: the server must hang up on its own well before this
	// read deadline — a read error (EOF or reset) is the hang-up.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the idle connection open")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never closed the idle connection within 5s")
	}
}

func TestEndToEndProvisioning(t *testing.T) {
	tb := startKeyService(t)
	dial := TCPDialer(tb.addr)

	ownerKey := secure.KeyFromSeed("hospital")
	userKey := secure.KeyFromSeed("patient")
	owner := NewClient(dial, tb.ca.PublicKey(), tb.ksEnc.Measurement(), ownerKey)
	user := NewClient(dial, tb.ca.PublicKey(), tb.ksEnc.Measurement(), userKey)
	defer owner.Close()
	defer user.Close()

	if err := owner.Register(); err != nil {
		t.Fatal(err)
	}
	if err := user.Register(); err != nil {
		t.Fatal(err)
	}

	worker := launchWorker(t, tb, "semirt-v1")
	es := worker.Measurement()

	km := secure.KeyFromSeed("model-key")
	kr := secure.KeyFromSeed("request-key")
	if err := owner.AddModelKey("disease-model", km); err != nil {
		t.Fatal(err)
	}
	if err := owner.GrantAccess("disease-model", es, user.ID()); err != nil {
		t.Fatal(err)
	}
	if err := user.AddReqKey("disease-model", es, kr); err != nil {
		t.Fatal(err)
	}

	ec := NewEnclaveClient(dial, tb.ca.PublicKey(), tb.ksEnc.Measurement(), worker)
	sess, err := ec.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	gotKM, gotKR, err := sess.Provision(user.ID(), "disease-model")
	if err != nil {
		t.Fatal(err)
	}
	if !gotKM.Equal(km) || !gotKR.Equal(kr) {
		t.Fatal("provisioned keys differ from deposits")
	}

	// The session is reusable (SeMIRT caches it across requests).
	if _, _, err := sess.Provision(user.ID(), "disease-model"); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndWrongEnclaveDenied(t *testing.T) {
	tb := startKeyService(t)
	dial := TCPDialer(tb.addr)
	ownerKey := secure.KeyFromSeed("owner2")
	userKey := secure.KeyFromSeed("user2")
	owner := NewClient(dial, tb.ca.PublicKey(), tb.ksEnc.Measurement(), ownerKey)
	user := NewClient(dial, tb.ca.PublicKey(), tb.ksEnc.Measurement(), userKey)
	defer owner.Close()
	defer user.Close()
	if err := owner.Register(); err != nil {
		t.Fatal(err)
	}
	if err := user.Register(); err != nil {
		t.Fatal(err)
	}
	good := launchWorker(t, tb, "semirt-v1")
	evil := launchWorker(t, tb, "semirt-evil")
	if err := owner.AddModelKey("m", secure.KeyFromSeed("km2")); err != nil {
		t.Fatal(err)
	}
	if err := owner.GrantAccess("m", good.Measurement(), user.ID()); err != nil {
		t.Fatal(err)
	}
	if err := user.AddReqKey("m", good.Measurement(), secure.KeyFromSeed("kr2")); err != nil {
		t.Fatal(err)
	}
	// The evil enclave attests fine (valid platform) but its measurement is
	// not in the ACM.
	ec := NewEnclaveClient(dial, tb.ca.PublicKey(), tb.ksEnc.Measurement(), evil)
	sess, err := ec.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, _, err := sess.Provision(user.ID(), "m"); err == nil || !strings.Contains(err.Error(), "not authorized") {
		t.Fatalf("evil enclave provisioning: %v", err)
	}
}

func TestEndToEndUnattestedProvisioningDenied(t *testing.T) {
	tb := startKeyService(t)
	dial := TCPDialer(tb.addr)
	// A plain client (no quote) trying the provisioning op directly.
	userKey := secure.KeyFromSeed("sneaky")
	c := NewClient(dial, tb.ca.PublicKey(), tb.ksEnc.Measurement(), userKey)
	defer c.Close()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.roundTrip(Request{Op: OpProvision, UserID: c.ID(), ModelID: "m"})
	if err == nil || resp.OK {
		t.Fatal("unattested provisioning accepted")
	}
}

func TestClientRejectsImpostorKeyService(t *testing.T) {
	// Launch a KeyService whose code identity differs; the client's policy
	// pins the expected E_K and must refuse the handshake.
	tb := startKeyService(t)
	dial := TCPDialer(tb.addr)
	wrongEK := attest.Measurement{42}
	c := NewClient(dial, tb.ca.PublicKey(), wrongEK, secure.KeyFromSeed("pinning"))
	defer c.Close()
	if err := c.Register(); err == nil {
		t.Fatal("client accepted a KeyService with unexpected measurement")
	}
}

func TestUnknownOpRejected(t *testing.T) {
	tb := startKeyService(t)
	dial := TCPDialer(tb.addr)
	c := NewClient(dial, tb.ca.PublicKey(), tb.ksEnc.Measurement(), secure.KeyFromSeed("ops"))
	defer c.Close()
	if _, err := c.roundTrip(Request{Op: "format_disk"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}
