// Package semirt implements SeMIRT, SeSeMI's enclave runtime for serverless
// model inference (§IV-B, Algorithm 2, Figure 5).
//
// A SeMIRT instance runs inside one serverless sandbox. Its untrusted half
// (Runtime) receives requests, manages the thread pool, and performs the
// OCALLs (loading encrypted models from storage); its trusted half (program)
// holds the decrypted model, a bounded LRU of cached ⟨uid‖Moid⟩ key pairs
// (KeyCacheSize entries, so user-diverse traffic stays hot), the cached RA
// session to KeyService, and the per-thread model runtimes, and executes
// EC_MODEL_INF.
//
// Invocation paths (Figure 4):
//
//	cold — new instance: enclave creation + first key fetch + model load +
//	        runtime init + execution
//	warm — enclave exists but the wrong (or no) model is loaded
//	hot  — same model and same user's keys already cached
//
// The strong-isolation configuration of §V (sequential execution, no key
// cache, runtime cleared per request) is part of Config and therefore part
// of the enclave identity: turning it on changes the measurement that owners
// and users must authorize.
package semirt

import (
	"fmt"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
)

// ProgramName identifies the SeMIRT enclave program.
const ProgramName = "sesemi/semirt"

// Version is the SeMIRT code version.
const Version = "v1"

// Config selects the SeMIRT build. Every field is folded into the enclave
// code identity.
type Config struct {
	// Framework is the inference framework compiled in: "tvm" or "tflm".
	Framework string
	// Concurrency is the TCS count / enclave thread pool size (1-8).
	Concurrency int
	// EnclaveMemoryBytes is the configured enclave size (Appendix D).
	EnclaveMemoryBytes int64
	// DisableKeyCache forces a key refetch on every request (strong
	// isolation, Table II). It overrides KeyCacheSize to zero entries.
	DisableKeyCache bool
	// KeyCacheSize bounds the enclave's LRU of provisioned ⟨Moid‖uid‖
	// KeyService⟩ key pairs. 0 means DefaultKeyCacheSize; 1 reproduces the
	// historical single-pair cache (every user flip refetches — the
	// ablation baseline). Like every field it is part of the enclave
	// identity: users authorize how many principals' keys may be resident
	// at once.
	KeyCacheSize int
	// Sequential processes requests one at a time and clears the model
	// runtime after each request (strong isolation, Table II).
	Sequential bool
	// FixedModel pins the enclave to a single model id ("" = any model).
	FixedModel string
	// RoundOutputDigits, when positive, rounds every output value to that
	// many decimal digits before encryption — the §IV-D mitigation against
	// model-extraction attacks via high-precision confidence scores. Like
	// all settings it is part of the enclave identity, so users can verify
	// the policy is in force.
	RoundOutputDigits int
	// ModeledStages, when non-nil, additionally charges the paper-calibrated
	// stage costs on the platform clock so live runs reproduce the paper's
	// latency shapes with tiny functional models. Nil charges only real
	// compute and transport.
	ModeledStages *costmodel.StageCosts
}

// DefaultConfig returns the evaluation configuration for a framework/model
// pair at the given concurrency, with the Appendix D enclave size.
func DefaultConfig(framework, modelID string, concurrency int) (Config, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	mem, err := costmodel.EnclaveConfigBytes(framework, modelID, concurrency)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Framework:          framework,
		Concurrency:        concurrency,
		EnclaveMemoryBytes: mem,
	}, nil
}

// Validate checks the configuration. Any registered inference framework is
// accepted (Appendix E: SeMIRT is extended by implementing the four
// inference APIs and registering the framework); New verifies the name
// against the registry.
func (c Config) Validate() error {
	if c.Framework == "" {
		return fmt.Errorf("semirt: framework not set")
	}
	if c.Concurrency < 1 {
		return fmt.Errorf("semirt: concurrency %d", c.Concurrency)
	}
	if c.Sequential && c.Concurrency != 1 {
		return fmt.Errorf("semirt: sequential mode requires concurrency 1, got %d", c.Concurrency)
	}
	if c.EnclaveMemoryBytes <= 0 {
		return fmt.Errorf("semirt: enclave memory %d", c.EnclaveMemoryBytes)
	}
	if c.RoundOutputDigits < 0 || c.RoundOutputDigits > 8 {
		return fmt.Errorf("semirt: round digits %d (want 0-8)", c.RoundOutputDigits)
	}
	if c.KeyCacheSize < 0 || c.KeyCacheSize > MaxKeyCacheSize {
		return fmt.Errorf("semirt: key cache size %d (want 0-%d)", c.KeyCacheSize, MaxKeyCacheSize)
	}
	return nil
}

// DefaultKeyCacheSize is the key-pair LRU capacity when KeyCacheSize is 0 —
// sized for the many-users-per-replica serving mix, while keeping resident
// key material small (a pair is two 32-byte keys).
const DefaultKeyCacheSize = 64

// MaxKeyCacheSize bounds KeyCacheSize so a configuration cannot pin
// unbounded key material in enclave memory.
const MaxKeyCacheSize = 65536

// EffectiveKeyCacheSize resolves the configured key-cache capacity:
// 0 entries under DisableKeyCache, DefaultKeyCacheSize when unset.
func (c Config) EffectiveKeyCacheSize() int {
	if c.DisableKeyCache {
		return 0
	}
	if c.KeyCacheSize == 0 {
		return DefaultKeyCacheSize
	}
	return c.KeyCacheSize
}

// Manifest derives the enclave manifest — and therefore the measurement ES
// that owners and users authorize — from the configuration.
func (c Config) Manifest() enclave.Manifest {
	return enclave.Manifest{
		Name: "semirt-" + c.Framework,
		CodeHash: enclave.CodeIdentity(ProgramName, Version,
			"framework="+c.Framework,
			fmt.Sprintf("concurrency=%d", c.Concurrency),
			fmt.Sprintf("keycache=%t", !c.DisableKeyCache),
			fmt.Sprintf("keycachesize=%d", c.EffectiveKeyCacheSize()),
			fmt.Sprintf("sequential=%t", c.Sequential),
			"fixedmodel="+c.FixedModel,
			fmt.Sprintf("round=%d", c.RoundOutputDigits),
		),
		TCSCount:    c.Concurrency,
		MemoryBytes: c.EnclaveMemoryBytes,
	}
}

// ForRevision returns the build configuration of one model revision: the
// base configuration with FixedModel pinned to the versioned model id
// ("mbnet@v2", internal/model's revision scheme). Because FixedModel is
// folded into the enclave code identity, every revision carries its own
// measurement ES — the identity the keyservice admits before a canary can
// obtain user keys and revokes on rollback.
func (c Config) ForRevision(versionedID string) Config {
	c.FixedModel = versionedID
	return c
}

// RevisionMeasurement derives the enclave measurement of one model revision
// of this build — ForRevision + Manifest + Measure, the value rollout
// tooling admits at (and revokes from) the keyservice allowlist.
func (c Config) RevisionMeasurement(versionedID string) attest.Measurement {
	return c.ForRevision(versionedID).Manifest().Measure()
}
