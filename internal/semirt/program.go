package semirt

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sesemi/internal/enclave"
	"sesemi/internal/inference"
	"sesemi/internal/keyservice"
	"sesemi/internal/secure"
	"sesemi/internal/vclock"
)

// program is the trusted half of SeMIRT: the enclave program holding
// Algorithm 2's state. Its fields are only touched from within ECalls.
type program struct {
	cfg  Config
	fw   inference.Framework
	deps Deps
	enc  *enclave.Enclave

	// swapMu guards the loaded model: requests whose model is loaded run
	// under RLock (concurrently); switching the model takes the write lock,
	// i.e. happens "when not in use" (§IV-B). Keys are NOT under this lock
	// anymore — they live in the bounded LRU below and are copied out per
	// request, so a user flip never stalls the other TCS slots.
	swapMu  sync.RWMutex
	modelID string
	loaded  inference.LoadedModel

	// keys is the bounded LRU of provisioned ⟨Moid‖uid‖KeyService⟩ key
	// pairs (Config.KeyCacheSize entries; nil when DisableKeyCache). Misses
	// provision under a per-tag singleflight, so N concurrent requests for
	// one new principal cost one KeyService round trip.
	keys *keyCache

	// fetches counts KeyService Provision calls; wired to the runtime's
	// counter so Stats can report the key-fetch volume a cache saves.
	fetches *atomic.Uint64

	// sessMu guards the cached RA-TLS sessions, one per KeyService address
	// ("" is the deployment default). Caching per address lets one enclave
	// serve users homed on different KeyServices (§IV-D) while still
	// amortizing mutual attestation. The mutex covers session lookup and
	// establishment only; provisioning round trips run outside it (the
	// Session serializes its own wire protocol).
	sessMu   sync.Mutex
	sessions map[string]*keyservice.Session

	// brownoutUntil is the end of the current key-service brownout window
	// (Deps.KSBrownout): until then, fresh key fetches fail fast with
	// ErrKeyServiceUnavailable while cached principals keep being served.
	brownoutMu    sync.Mutex
	brownoutUntil time.Time

	// slots are the thread-local execution contexts, one per TCS.
	slots chan *rtSlot

	// seqMu serializes requests in strong-isolation mode.
	seqMu sync.Mutex
}

// rtSlot is one thread's context: its model runtime (model_rt in
// Algorithm 2) survives across hot invocations of the same model.
type rtSlot struct {
	modelID string
	rt      inference.Runtime
}

type invocationDetail struct {
	loadedModel bool
	fetchedKeys bool
	// keyFetchDur is the KeyService provisioning round-trip time when this
	// request performed one (fetchedKeys) — the key_fetch stage of a trace.
	// Zero for cache hits and singleflight waiters.
	keyFetchDur time.Duration
}

func newProgram(cfg Config, fw inference.Framework, deps Deps) *program {
	p := &program{cfg: cfg, fw: fw, deps: deps, sessions: map[string]*keyservice.Session{},
		fetches: &atomic.Uint64{}}
	if size := cfg.EffectiveKeyCacheSize(); size > 0 {
		p.keys = newKeyCache(size)
	}
	p.slots = make(chan *rtSlot, cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		p.slots <- &rtSlot{}
	}
	return p
}

// Init implements enclave.Program.
func (p *program) Init(e *enclave.Enclave) error {
	p.enc = e
	return nil
}

func (p *program) loadedModelID() string {
	p.swapMu.RLock()
	defer p.swapMu.RUnlock()
	return p.modelID
}

// cacheID builds the ⟨Moid‖uid‖KeyService⟩ key-cache tag; the KeyService
// address participates so a user homed on a different KeyService never hits
// another principal's cached keys.
func cacheID(modelID string, uid secure.ID, ksAddr string) string {
	return modelID + "\x1f" + string(uid) + "\x1f" + ksAddr
}

// modelInf is EC_MODEL_INF (Algorithm 2). It runs on a TCS (the caller is
// inside ECall).
func (p *program) modelInf(req Request) ([]byte, invocationDetail, error) {
	var detail invocationDetail
	if p.cfg.FixedModel != "" && req.ModelID != p.cfg.FixedModel {
		return nil, detail, fmt.Errorf("semirt: enclave pinned to model %q, got %q", p.cfg.FixedModel, req.ModelID)
	}
	if req.ModelID == "" || req.UserID == "" {
		return nil, detail, errors.New("semirt: request missing model or user id")
	}
	if p.cfg.Sequential {
		p.seqMu.Lock()
		defer p.seqMu.Unlock()
	}

	// Key provisioning (lines 6-8): resolve the request's key pair into
	// request-local copies — from the LRU (per-shard read path, singleflight
	// misses), or straight from the KeyService when the cache is disabled.
	// An entry evicted after this point cannot affect the request: it
	// executes with its own copies.
	km, kr, err := p.obtainKeys(req, &detail)
	if err != nil {
		return nil, detail, err
	}

	// Acquire the loaded model in read mode, switching under the write lock
	// when the request's model is not the resident one (lines 11-13).
	for {
		p.swapMu.RLock()
		if p.modelID == req.ModelID && p.loaded != nil {
			break
		}
		p.swapMu.RUnlock()
		if err := p.switchModel(req.ModelID, km, &detail); err != nil {
			return nil, detail, err
		}
	}
	sealed, err := p.execLocked(req, kr)
	p.swapMu.RUnlock()
	return sealed, detail, err
}

// obtainKeys resolves (K_M, K_R) for the request. detail.fetchedKeys is set
// only when this request performed a KeyService round trip — singleflight
// waiters and cache hits report false, preserving the historical hot/warm
// classification.
func (p *program) obtainKeys(req Request, detail *invocationDetail) (secure.Key, secure.Key, error) {
	if p.keys == nil {
		// Strong isolation: provision afresh into request-local keys. The
		// shared state is never touched, so two concurrent users cannot
		// thrash each other (the pre-LRU code ping-ponged a shared pair
		// under a retry loop here).
		t0 := p.enc.Clock().Now()
		km, kr, err := p.provision(req.UserID, req.ModelID, req.KeyService)
		if err != nil {
			return secure.Key{}, secure.Key{}, err
		}
		detail.fetchedKeys = true
		detail.keyFetchDur = p.enc.Clock().Now().Sub(t0)
		p.fetches.Add(1)
		return km, kr, nil
	}
	tag := cacheID(req.ModelID, req.UserID, req.KeyService)
	var fetchDur time.Duration
	km, kr, fetched, err := p.keys.get(tag, func() (secure.Key, secure.Key, error) {
		t0 := p.enc.Clock().Now()
		km, kr, err := p.provision(req.UserID, req.ModelID, req.KeyService)
		fetchDur = p.enc.Clock().Now().Sub(t0)
		return km, kr, err
	})
	if err != nil {
		return secure.Key{}, secure.Key{}, err
	}
	if fetched {
		detail.fetchedKeys = true
		detail.keyFetchDur = fetchDur
		p.fetches.Add(1)
	}
	return km, kr, nil
}

// execLocked runs the execution stages of EC_MODEL_INF with swapMu
// read-held, so the model cannot be swapped underneath it. kr is the
// request's own key copy.
func (p *program) execLocked(req Request, kr secure.Key) ([]byte, error) {
	// Thread-local runtime (lines 14-15).
	slot := <-p.slots
	defer func() { p.slots <- slot }()
	if slot.rt == nil || slot.modelID != p.modelID {
		if p.cfg.ModeledStages != nil {
			p.enc.Clock().Sleep(p.cfg.ModeledStages.RuntimeInit)
		}
		rt, err := p.fw.RuntimeInit(p.loaded)
		if err != nil {
			return nil, fmt.Errorf("semirt: runtime init: %w", err)
		}
		slot.rt = rt
		slot.modelID = p.modelID
	}

	// Request decryption (line 16).
	plain, err := secure.Open(kr, secure.PurposeRequest, req.ModelID, req.Payload)
	if err != nil {
		// Deterministic: the same ciphertext will never decrypt on a retry.
		return nil, fmt.Errorf("%w: request decrypt: %v", ErrBadRequest, err)
	}

	// MODEL_EXEC (line 17); the modeled execution cost scales with the
	// platform's EPC paging factor. A request is ExecSteps scheduler steps
	// long and charges every step it has not yet executed: form-then-fire
	// paths run all remaining steps here in one go, while a continuous
	// session (HandleStep) pre-pays intermediate steps frame by frame and
	// arrives with StepsDone == ExecSteps-1, so both disciplines charge the
	// same total.
	if p.cfg.ModeledStages != nil {
		steps := req.ExecSteps - req.StepsDone
		if steps < 1 {
			steps = 1
		}
		p.enc.ChargeExec(time.Duration(steps) * p.cfg.ModeledStages.ModelExec)
	}
	if err := inference.ModelExec(slot.rt, plain); err != nil {
		return nil, fmt.Errorf("semirt: exec: %w", err)
	}

	// PREPARE_OUTPUT + result encryption (lines 18-19).
	out, err := inference.PrepareOutput(slot.rt)
	if err != nil {
		return nil, err
	}
	if p.cfg.RoundOutputDigits > 0 {
		if out, err = roundOutput(out, p.cfg.RoundOutputDigits); err != nil {
			return nil, err
		}
	}
	if p.cfg.ModeledStages != nil {
		p.enc.Clock().Sleep(p.cfg.ModeledStages.RequestCrypto)
	}
	sealed, err := secure.Seal(kr, secure.PurposeResponse, req.ModelID, out)
	if err != nil {
		return nil, err
	}

	// Strong isolation: return the enclave to a model-only state (§V).
	if p.cfg.Sequential {
		slot.rt = nil
		slot.modelID = ""
	}
	return sealed, nil
}

// switchModel takes the write lock and installs the target model (Algorithm
// 2 lines 11-13) using the request's model key. On return the model may
// match (the caller re-checks under RLock).
func (p *program) switchModel(modelID string, km secure.Key, detail *invocationDetail) error {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	if p.modelID == modelID && p.loaded != nil {
		return nil
	}
	if err := p.loadModel(modelID, km); err != nil {
		// A failed load leaves no model installed.
		p.modelID = ""
		p.loaded = nil
		return err
	}
	detail.loadedModel = true
	return nil
}

// provision resolves (K_M, K_R) with the key-service fault policy wrapped
// around the actual round trip (provisionOnce): a failure is retried
// Deps.KSRetries times with exponential backoff on the fault clock; when
// the budget is exhausted the program enters brownout (Deps.KSBrownout) —
// subsequent fresh fetches fail fast with ErrKeyServiceUnavailable until the
// window passes, while cached principals are untouched (their requests never
// reach provision). With neither knob set this is exactly the historical
// single-attempt call.
func (p *program) provision(uid secure.ID, modelID, ksAddr string) (secure.Key, secure.Key, error) {
	if p.inBrownout() {
		return secure.Key{}, secure.Key{}, ErrKeyServiceUnavailable
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		km, kr, err := p.provisionOnce(uid, modelID, ksAddr)
		if err == nil {
			return km, kr, nil
		}
		lastErr = err
		if attempt >= p.deps.KSRetries {
			break
		}
		p.faultClock().Sleep(p.ksBackoff(attempt))
	}
	p.enterBrownout()
	return secure.Key{}, secure.Key{}, lastErr
}

func (p *program) ksBackoff(attempt int) time.Duration {
	base := p.deps.KSRetryBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	if attempt > 6 {
		attempt = 6 // cap the exponent: 64x base
	}
	return base << attempt
}

// faultClock is the clock recovery waits run on: the fault plane's when one
// is installed (the clock its outage windows are measured on — a backoff can
// only ride out an outage if both advance together), the enclave's
// otherwise. The enclave clock may be muted (Scale 0), which would make
// retry backoff and brownout expiry instant against a real-time outage.
func (p *program) faultClock() vclock.Clock {
	if p.deps.Faults != nil {
		return p.deps.Faults.Clock()
	}
	return p.enc.Clock()
}

func (p *program) inBrownout() bool {
	if p.deps.KSBrownout <= 0 {
		return false
	}
	p.brownoutMu.Lock()
	defer p.brownoutMu.Unlock()
	return p.faultClock().Now().Before(p.brownoutUntil)
}

func (p *program) enterBrownout() {
	if p.deps.KSBrownout <= 0 {
		return
	}
	p.brownoutMu.Lock()
	defer p.brownoutMu.Unlock()
	p.brownoutUntil = p.faultClock().Now().Add(p.deps.KSBrownout)
}

// provisionOnce retrieves (K_M, K_R) from the KeyService at ksAddr ("" = the
// deployment default) over a cached mutually attested session, establishing
// it on first use (the expensive cold key fetch of Figures 8 and 17). Only
// session lookup/establishment holds sessMu; the provisioning round trip
// itself runs outside it, so misses for different principals overlap (the
// Session serializes its own wire exchanges).
func (p *program) provisionOnce(uid secure.ID, modelID, ksAddr string) (secure.Key, secure.Key, error) {
	if p.deps.Faults.KeyServiceDown() {
		return secure.Key{}, secure.Key{}, fmt.Errorf("%w: injected outage", ErrKeyServiceUnavailable)
	}
	sess, fresh, err := p.session(ksAddr)
	if err != nil {
		return secure.Key{}, secure.Key{}, err
	}
	if p.cfg.ModeledStages != nil {
		if fresh {
			p.enc.Clock().Sleep(p.cfg.ModeledStages.KeyFetchCold)
		} else {
			p.enc.Clock().Sleep(p.cfg.ModeledStages.KeyFetchWarm)
		}
	}
	km, kr, err := sess.Provision(uid, modelID)
	if err != nil {
		// Drop a broken session so the next request re-attests.
		p.sessMu.Lock()
		if p.sessions[ksAddr] == sess {
			delete(p.sessions, ksAddr)
		}
		p.sessMu.Unlock()
		sess.Close()
		return secure.Key{}, secure.Key{}, err
	}
	return km, kr, nil
}

// session returns the cached RA-TLS session for ksAddr, attesting a fresh
// one on first use. fresh reports whether this call performed the mutual
// attestation (the cold portion of the key-fetch cost).
func (p *program) session(ksAddr string) (*keyservice.Session, bool, error) {
	p.sessMu.Lock()
	defer p.sessMu.Unlock()
	if sess := p.sessions[ksAddr]; sess != nil {
		return sess, false, nil
	}
	dial := p.deps.KSDialer
	if ksAddr != "" {
		dial = keyservice.TCPDialer(ksAddr)
	}
	ec := keyservice.NewEnclaveClient(dial, p.deps.CAPublicKey, p.deps.ExpectEK, p.enc)
	sess, err := ec.Connect()
	if err != nil {
		return nil, false, fmt.Errorf("semirt: keyservice attestation: %w", err)
	}
	p.sessions[ksAddr] = sess
	return sess, true, nil
}

// loadModel performs OC_LOAD_MODEL (fetch ciphertext into untrusted memory)
// followed by in-enclave decryption and MODEL_LOAD. Called with swapMu
// write-held; km is the requesting principal's model key.
func (p *program) loadModel(modelID string, km secure.Key) error {
	if p.cfg.ModeledStages != nil {
		p.enc.Clock().Sleep(p.cfg.ModeledStages.ModelLoad)
	}
	ciphertext, err := p.deps.Store.Get(ModelBlobName(modelID))
	if err != nil {
		return fmt.Errorf("semirt: model fetch: %w", err)
	}
	// The encrypted copy plus the decrypted model must fit the configured
	// enclave size (Appendix D's memory overhead of TEE protection).
	if need := int64(2 * len(ciphertext)); need > p.cfg.EnclaveMemoryBytes {
		return fmt.Errorf("semirt: model %q needs %d bytes, enclave configured with %d",
			modelID, need, p.cfg.EnclaveMemoryBytes)
	}
	plain, err := secure.Open(km, secure.PurposeModel, modelID, ciphertext)
	if err != nil {
		return fmt.Errorf("semirt: model decrypt: %w", err)
	}
	loaded, err := p.fw.ModelLoad(plain)
	if err != nil {
		return fmt.Errorf("semirt: model deserialize: %w", err)
	}
	p.modelID = modelID
	p.loaded = loaded
	// Invalidate thread-local runtimes built for the previous model: they
	// are rebuilt lazily per slot (slot.modelID no longer matches).
	return nil
}

func (p *program) close() {
	p.sessMu.Lock()
	for addr, sess := range p.sessions {
		sess.Close()
		delete(p.sessions, addr)
	}
	p.sessMu.Unlock()
}

// roundOutput quantizes the output tensor to the configured number of
// decimal digits (§IV-D's confidence-rounding mitigation).
func roundOutput(payload []byte, digits int) ([]byte, error) {
	t, err := inference.DecodeTensor(payload)
	if err != nil {
		return nil, err
	}
	scale := math.Pow(10, float64(digits))
	for i, v := range t.Data() {
		t.Data()[i] = float32(math.Round(float64(v)*scale) / scale)
	}
	return inference.EncodeTensor(t), nil
}

// EncryptModel is the model owner's helper: it seals serialized model bytes
// under K_M for upload (workflow step 2 in §III).
func EncryptModel(km secure.Key, modelID string, modelBytes []byte) ([]byte, error) {
	return secure.Seal(km, secure.PurposeModel, modelID, modelBytes)
}

// EncryptRequest seals a request payload under K_R.
func EncryptRequest(kr secure.Key, modelID string, tensorBytes []byte) ([]byte, error) {
	return secure.Seal(kr, secure.PurposeRequest, modelID, tensorBytes)
}

// DecryptResponse opens a response payload with K_R.
func DecryptResponse(kr secure.Key, modelID string, sealed []byte) ([]byte, error) {
	return secure.Open(kr, secure.PurposeResponse, modelID, sealed)
}
