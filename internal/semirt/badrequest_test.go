package semirt

import (
	"errors"
	"strings"
	"testing"
)

// A tampered payload is a deterministic failure: it must classify as
// ErrBadRequest locally and survive the batch wire as the same sentinel, so
// the gateway fails it fast instead of retrying identical bytes.
func TestTamperedRequestClassifiesBadRequest(t *testing.T) {
	w := newWorld(t)
	rt, err := New(mustConfig(t, "tvm", "mbnet", 1), w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())

	bad := w.requestFor("mbnet", 1)
	bad.Payload[len(bad.Payload)/2] ^= 1
	_, err = rt.Handle(bad)
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("tampered request err %v, want ErrBadRequest", err)
	}

	// Across the activation wire: encode the failure as a batch result and
	// decode it back — sentinel and detail must both survive.
	raw, err := EncodeBatchResults([]BatchResult{{Err: err}})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeBatchResponse(raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(decoded[0].Err, ErrBadRequest) {
		t.Fatalf("wire round trip lost ErrBadRequest: %v", decoded[0].Err)
	}
	if !strings.Contains(decoded[0].Err.Error(), "decrypt") {
		t.Fatalf("wire round trip lost detail: %v", decoded[0].Err)
	}
}

// A malformed activation envelope fails the whole activation with
// ErrBadRequest — there is nothing retryable about unparseable bytes.
func TestMalformedEnvelopeClassifiesBadRequest(t *testing.T) {
	w := newWorld(t)
	rt, err := New(mustConfig(t, "tvm", "mbnet", 1), w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	_, err = Instance{RT: rt}.Invoke([]byte("{not json"))
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("malformed envelope err %v, want ErrBadRequest", err)
	}
}
