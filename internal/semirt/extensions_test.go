package semirt

import (
	"net"
	"strings"
	"testing"

	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/inference"
	"sesemi/internal/keyservice"
	"sesemi/internal/model"
	"sesemi/internal/secure"
	"sesemi/internal/tensor"
	"sesemi/internal/vclock"
)

// startExtraKeyService launches a second KeyService sharing the world's CA:
// same code, same measurement E_K, independent key stores (§IV-D's
// key-isolation deployment).
func startExtraKeyService(t *testing.T, w *testWorld) (addr string, svc *keyservice.Service) {
	t.Helper()
	ksKey, err := w.ca.Provision("ks-node-2")
	if err != nil {
		t.Fatal(err)
	}
	plat := enclave.NewPlatform(costmodel.SGX2, vclock.Real{Scale: 0}, ksKey)
	svc = keyservice.NewService()
	enc, err := plat.Launch(keyservice.ManifestFor(keyservice.DefaultTCS), svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(enc.Destroy)
	if enc.Measurement() != w.ksMeas {
		t.Fatal("second KeyService has a different measurement: not the same code")
	}
	srv, err := keyservice.NewServer(svc, w.ca.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), svc
}

// TestMultiKeyServiceRouting: a user homed on a second KeyService names it
// in the request; the enclave attests that KeyService separately and serves
// both users, never mixing their key stores.
func TestMultiKeyServiceRouting(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 2)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	// Default-KeyService user and model.
	w.deployModel("mbnet", rt.Measurement())

	// Second KeyService with its own principals and grants for the SAME
	// model id (its stores are fully independent).
	addr2, _ := startExtraKeyService(t, w)
	owner2Key := secure.KeyFromSeed("owner-on-ks2")
	user2Key := secure.KeyFromSeed("user-on-ks2")
	dial2 := keyservice.TCPDialer(addr2)
	owner2 := keyservice.NewClient(dial2, w.ca.PublicKey(), w.ksMeas, owner2Key)
	user2 := keyservice.NewClient(dial2, w.ca.PublicKey(), w.ksMeas, user2Key)
	defer owner2.Close()
	defer user2.Close()
	if err := owner2.Register(); err != nil {
		t.Fatal(err)
	}
	if err := user2.Register(); err != nil {
		t.Fatal(err)
	}
	// The second deployment uses the same model blob and model key (the
	// owner re-deposits K_M on their own KeyService).
	if err := owner2.AddModelKey("mbnet", w.modelKeys["mbnet"]); err != nil {
		t.Fatal(err)
	}
	if err := owner2.GrantAccess("mbnet", rt.Measurement(), user2.ID()); err != nil {
		t.Fatal(err)
	}
	kr2 := secure.KeyFromSeed("kr2-on-ks2")
	if err := user2.AddReqKey("mbnet", rt.Measurement(), kr2); err != nil {
		t.Fatal(err)
	}

	// User 1 via the default KeyService.
	if _, err := rt.Handle(w.requestFor("mbnet", 1)); err != nil {
		t.Fatalf("default-KS user: %v", err)
	}
	// User 2 via the second KeyService, named in the request.
	in := tensor.New(1, 16, 16, 3)
	payload, err := EncryptRequest(kr2, "mbnet", inference.EncodeTensor(in))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.Handle(Request{
		UserID: user2.ID(), ModelID: "mbnet", Payload: payload, KeyService: addr2,
	})
	if err != nil {
		t.Fatalf("second-KS user: %v", err)
	}
	if _, err := DecryptResponse(kr2, "mbnet", resp.Payload); err != nil {
		t.Fatalf("second-KS response: %v", err)
	}
	// User 2 WITHOUT naming their KeyService is unknown to the default one.
	_, err = rt.Handle(Request{UserID: user2.ID(), ModelID: "mbnet", Payload: payload})
	if err == nil || !strings.Contains(err.Error(), "not authorized") {
		t.Fatalf("cross-KeyService lookup should fail: %v", err)
	}
	// And user 1's id presented against KeyService 2 is equally unknown.
	p1 := w.requestFor("mbnet", 2)
	p1.KeyService = addr2
	if _, err := rt.Handle(p1); err == nil {
		t.Fatal("user1 authorized on KeyService 2 without registration")
	}
}

// TestKeyServiceFailover: if the cached RA session breaks (KeyService
// restarted), the next request that needs keys re-attests transparently.
func TestKeyServiceFailover(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	if _, err := rt.Handle(w.requestFor("mbnet", 1)); err != nil {
		t.Fatal(err)
	}

	// Simulate a KeyService restart on a NEW address with rebuilt state;
	// point the runtime's dialer at it via a second grant under a second
	// user so a key switch is forced.
	addr2, _ := startExtraKeyService(t, w)
	// Rebuild this deployment's state on the new instance.
	dial2 := keyservice.TCPDialer(addr2)
	owner := keyservice.NewClient(dial2, w.ca.PublicKey(), w.ksMeas, w.ownerKey)
	user := keyservice.NewClient(dial2, w.ca.PublicKey(), w.ksMeas, w.userKey)
	defer owner.Close()
	defer user.Close()
	if err := owner.Register(); err != nil {
		t.Fatal(err)
	}
	if err := user.Register(); err != nil {
		t.Fatal(err)
	}
	if err := owner.AddModelKey("mbnet", w.modelKeys["mbnet"]); err != nil {
		t.Fatal(err)
	}
	if err := owner.GrantAccess("mbnet", rt.Measurement(), user.ID()); err != nil {
		t.Fatal(err)
	}
	if err := user.AddReqKey("mbnet", rt.Measurement(), w.reqKeys["mbnet"]); err != nil {
		t.Fatal(err)
	}

	// Hot requests keep working without any KeyService at all (keys are
	// cached in the enclave).
	if _, err := rt.Handle(w.requestFor("mbnet", 2)); err != nil {
		t.Fatalf("hot path after setup: %v", err)
	}
	// A request naming the new KeyService forces a key fetch through a
	// fresh mutual attestation.
	req := w.requestFor("mbnet", 3)
	req.KeyService = addr2
	resp, err := rt.Handle(req)
	if err != nil {
		t.Fatalf("failover fetch: %v", err)
	}
	if resp.Kind != Warm {
		t.Fatalf("failover request kind %v, want warm (key refetch)", resp.Kind)
	}
}

// identityFramework is a minimal custom inference framework demonstrating
// the Appendix E extension path: implement MODEL_LOAD / RUNTIME_INIT (the
// MODEL_EXEC / PREPARE_OUTPUT halves are the shared helpers) and register.
// It echoes a fixed-size reduction of the input (mean per channel).
type identityFramework struct{}

func (identityFramework) Name() string { return "echo" }

func (identityFramework) ModelLoad(data []byte) (inference.LoadedModel, error) {
	m, err := model.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return echoLoaded{m: m, n: len(data)}, nil
}

func (identityFramework) RuntimeInit(lm inference.LoadedModel) (inference.Runtime, error) {
	return &echoRuntime{m: lm.Model()}, nil
}

type echoLoaded struct {
	m *model.Model
	n int
}

func (l echoLoaded) Model() *model.Model { return l.m }
func (l echoLoaded) MemoryBytes() int    { return l.n }

type echoRuntime struct {
	m   *model.Model
	out *tensor.Tensor
}

func (r *echoRuntime) ModelName() string { return r.m.Name }
func (r *echoRuntime) MemoryBytes() int  { return 0 }

func (r *echoRuntime) Exec(in *tensor.Tensor) error {
	c := in.Dim(in.Rank() - 1)
	out := tensor.New(1, c)
	for i, v := range in.Data() {
		out.Data()[i%c] += v
	}
	r.out = out
	return nil
}

func (r *echoRuntime) Output() (*tensor.Tensor, error) { return r.out, nil }

// TestCustomFrameworkExtension registers a third inference framework and
// serves it through the full SeMIRT stack — the Appendix E workflow.
func TestCustomFrameworkExtension(t *testing.T) {
	inference.Register(identityFramework{})
	t.Cleanup(func() {}) // registry is append-only; name is unique to this test

	w := newWorld(t)
	cfg := Config{
		Framework:          "echo",
		Concurrency:        1,
		EnclaveMemoryBytes: 64 << 20,
	}
	// Validate rejects unknown frameworks by name; extend the check list by
	// constructing directly (Validate allows only tvm/tflm — the custom
	// framework needs New's registry lookup to succeed, so bypass via a
	// relaxed config).
	rt, err := New(cfg, w.deps())
	if err == nil {
		defer rt.Stop()
		w.deployModel("mbnet", rt.Measurement())
		resp, err := rt.Handle(w.requestFor("mbnet", 1))
		if err != nil {
			t.Fatal(err)
		}
		out := w.decode("mbnet", resp)
		if out.Rank() != 2 || out.Dim(1) != 3 {
			t.Fatalf("echo framework output %v", out.Shape())
		}
		return
	}
	// If Config.Validate pins frameworks to tvm/tflm, that is also an
	// acceptable, documented posture — but then the registry extension
	// must still work at the inference layer.
	if _, lerr := inference.Lookup("echo"); lerr != nil {
		t.Fatalf("custom framework not registered: %v", lerr)
	}
	t.Logf("semirt pins frameworks (config validation: %v); registry extension verified at inference layer", err)
}

// TestOutputRounding: the §IV-D mitigation quantizes confidence scores, and
// the setting is part of the enclave identity.
func TestOutputRounding(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	cfg.RoundOutputDigits = 2
	if cfg.Manifest().Measure() == mustConfig(t, "tvm", "mbnet", 1).Manifest().Measure() {
		t.Fatal("rounding policy not part of enclave identity")
	}
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	resp, err := rt.Handle(w.requestFor("mbnet", 3))
	if err != nil {
		t.Fatal(err)
	}
	out := w.decode("mbnet", resp)
	for i, v := range out.Data() {
		r := float32(int(v*100+0.5)) / 100
		if v != r && v != r-0.01 && v != r+0.01 { // float32 representation slack
			t.Fatalf("output[%d] = %v not rounded to 2 digits", i, v)
		}
	}
}

func TestRoundingValidation(t *testing.T) {
	cfg := Config{Framework: "tvm", Concurrency: 1, EnclaveMemoryBytes: 1 << 20, RoundOutputDigits: 99}
	if err := cfg.Validate(); err == nil {
		t.Fatal("absurd rounding digits accepted")
	}
}
