package semirt

import (
	"errors"
	"testing"
	"time"

	"sesemi/internal/faults"
)

// An injected sandbox crash fails the activation as a whole — instance-level,
// never per-member — and clears when the probability does.
func TestSandboxCrashInjected(t *testing.T) {
	w := newWorld(t)
	inj := faults.New(3, w.clock)
	deps := w.deps()
	deps.Faults = inj
	rt, err := New(mustConfig(t, "tvm", "mbnet", 1), deps)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())

	inj.SetSandboxCrashProb(1)
	if _, err := rt.Handle(w.requestFor("mbnet", 1)); !errors.Is(err, ErrSandboxCrash) {
		t.Fatalf("Handle under crash = %v, want ErrSandboxCrash", err)
	}
	if _, err := rt.HandleBatch([]Request{w.requestFor("mbnet", 2)}); !errors.Is(err, ErrSandboxCrash) {
		t.Fatalf("HandleBatch under crash = %v, want ErrSandboxCrash", err)
	}
	inj.SetSandboxCrashProb(0)
	if _, err := rt.Handle(w.requestFor("mbnet", 3)); err != nil {
		t.Fatalf("Handle after crash cleared: %v", err)
	}
	if st := inj.Stats(); st.SandboxCrashes != 2 {
		t.Fatalf("SandboxCrashes = %d, want 2", st.SandboxCrashes)
	}
}

// A key-service outage shorter than the retry budget's backoff is ridden out:
// the retries sleep on the enclave (Manual) clock, the window expires, the
// request succeeds.
func TestKSRetryRidesOutOutageWindow(t *testing.T) {
	w := newWorld(t)
	inj := faults.New(3, w.clock)
	deps := w.deps()
	deps.Faults = inj
	deps.KSRetries = 2
	deps.KSRetryBackoff = 10 * time.Second
	rt, err := New(mustConfig(t, "tvm", "mbnet", 1), deps)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())

	// The window must outlast the modeled pre-provision stages (slept on the
	// same Manual clock) but not the first retry backoff.
	inj.KeyServiceOutage(time.Second)
	resp, err := rt.Handle(w.requestFor("mbnet", 1))
	if err != nil {
		t.Fatalf("Handle across outage: %v", err)
	}
	if resp.Kind != Cold {
		t.Fatalf("kind = %v, want cold", resp.Kind)
	}
	if st := inj.Stats(); st.KSRejects != 1 {
		t.Fatalf("KSRejects = %d, want 1 (one failed attempt, then the window expired)", st.KSRejects)
	}
}

// Brownout is shed-new-admit, finish-resident: after provisioning fails with
// retries exhausted, fresh principals fail fast with the typed
// ErrKeyServiceUnavailable while the cached principal keeps being served; the
// window expires on the enclave clock.
func TestKSBrownoutShedsNewServesResident(t *testing.T) {
	w := newWorld(t)
	inj := faults.New(3, w.clock)
	deps := w.deps()
	deps.Faults = inj
	deps.KSBrownout = time.Minute
	rt, err := New(mustConfig(t, "tvm", "mbnet", 1), deps)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	u2 := w.newUser("second-user")
	w.grantUser(u2, "mbnet", rt.Measurement())

	// Warm the resident principal's keys, then take the key service down.
	if _, err := rt.Handle(w.requestFor("mbnet", 1)); err != nil {
		t.Fatal(err)
	}
	inj.SetKeyServiceDown(true)

	// The fresh principal's miss fails (no retries) and opens the brownout.
	if _, err := rt.Handle(w.requestAs(u2, "mbnet", 2)); !errors.Is(err, ErrKeyServiceUnavailable) {
		t.Fatalf("fresh principal during outage = %v, want ErrKeyServiceUnavailable", err)
	}
	rejectsAfterOpen := inj.Stats().KSRejects

	// Brownout: the next miss fails fast WITHOUT another key-service attempt.
	if _, err := rt.Handle(w.requestAs(u2, "mbnet", 3)); !errors.Is(err, ErrKeyServiceUnavailable) {
		t.Fatalf("fresh principal in brownout = %v, want ErrKeyServiceUnavailable", err)
	}
	if got := inj.Stats().KSRejects; got != rejectsAfterOpen {
		t.Fatalf("brownout still hit the key service: KSRejects %d -> %d", rejectsAfterOpen, got)
	}

	// Finish-resident: the cached principal is untouched by the brownout.
	if _, err := rt.Handle(w.requestFor("mbnet", 4)); err != nil {
		t.Fatalf("resident principal in brownout: %v", err)
	}

	// Recovery: outage cleared and window expired -> fresh principals served.
	inj.SetKeyServiceDown(false)
	w.clock.Advance(2 * time.Minute)
	if _, err := rt.Handle(w.requestAs(u2, "mbnet", 5)); err != nil {
		t.Fatalf("fresh principal after brownout: %v", err)
	}
}
