package semirt

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"sesemi/internal/obs"
	"sesemi/internal/vclock"
)

// Batched invocation: the serving gateway (internal/gateway) coalesces
// same-model requests and delivers them as ONE activation, so a single
// enclave entry — one ECall on one TCS — serves the whole batch. This is the
// paper's amortization argument applied to the request path: enclave
// transition, activation overhead and cache checks are paid once per batch
// instead of once per request.

// ErrDeadline reports that a batch member's envelope deadline lapsed before
// (or while) the batch was being served, so the member was shed without
// spending enclave time. DecodeBatchResponse restores it across the wire,
// so errors.Is works on both sides of a remote activation.
var ErrDeadline = errors.New("semirt: deadline exceeded")

// ErrBadRequest marks a request-shaped failure that is DETERMINISTIC: a
// malformed activation envelope or a payload that does not decrypt under the
// provisioned request key. Retrying such a request replays the exact same
// bytes against the exact same keys, so the gateway classifies it
// non-retryable and fails the caller fast instead of burning backoff and
// batch slots. It survives the activation wire (wireError) by prefix.
var ErrBadRequest = errors.New("semirt: bad request")

// BatchResult is the outcome of one request within a batch. Requests fail
// individually (bad ciphertext, unknown model) without failing the batch.
type BatchResult struct {
	// Response is valid when Err is nil.
	Response Response
	// Err is the per-request failure, nil on success.
	Err error
}

// batchOrder returns the indices of reqs stably reordered by key-cache tag
// (⟨Moid‖uid‖KeyService⟩): batch members group into per-principal runs, so
// key switches inside the enclave loop are monotone — at most one cache miss
// per distinct principal even with a size-1 cache — instead of one per
// user interleaving. Stable, so same-principal requests keep arrival order.
func batchOrder(reqs []Request) []int {
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	tags := make([]string, len(reqs))
	for i, req := range reqs {
		tags[i] = cacheID(req.ModelID, req.UserID, req.KeyService)
	}
	sort.SliceStable(order, func(a, b int) bool { return tags[order[a]] < tags[order[b]] })
	return order
}

// HandleBatch serves every request in one enclave entry and returns one
// result per request, in request order. Members are served grouped by
// principal (batchOrder) so a user-diverse batch pays one key-cache miss per
// distinct principal, not one per flip; a member whose Deadline has lapsed —
// including mid-batch, while earlier members executed — is shed with
// ErrDeadline. Only instance-level failures (the enclave cannot be launched
// or was destroyed) fail the call as a whole.
func (r *Runtime) HandleBatch(reqs []Request) ([]BatchResult, error) {
	results, _, err := r.HandleBatchStages(reqs)
	return results, err
}

// HandleBatchStages is HandleBatch plus the activation-level stage durations
// (cold_start, key_fetch, ecall) for trace stitching. Stages are measured —
// a handful of clock reads per BATCH, not per member — only when at least
// one member set Request.Trace; otherwise stages is nil and the path is
// byte-for-byte the untraced one.
func (r *Runtime) HandleBatchStages(reqs []Request) ([]BatchResult, []obs.StageDur, error) {
	if len(reqs) == 0 {
		return nil, nil, nil
	}
	traced := false
	for i := range reqs {
		if reqs[i].Trace {
			traced = true
			break
		}
	}
	var clk vclock.Clock
	var t0 time.Time
	if traced {
		clk = r.clock()
		t0 = clk.Now()
	}
	launched, err := r.ensureEnclave()
	if err != nil {
		return nil, nil, err
	}
	var stages []obs.StageDur
	if traced && launched {
		stages = append(stages, obs.StageDur{Stage: obs.StageColdStart, Dur: clk.Now().Sub(t0)})
	}
	if r.deps.Faults.SandboxCrash() {
		// Injected mid-ECall crash: an instance-level failure, like a real
		// sandbox death — the whole batch fails, never individual members.
		return nil, nil, ErrSandboxCrash
	}
	r.mu.Lock()
	enc, prog := r.enc, r.prog
	r.mu.Unlock()

	results := make([]BatchResult, len(reqs))
	var keyFetch time.Duration
	var ec0 time.Time
	if traced {
		ec0 = clk.Now()
	}
	err = enc.ECall(func() error {
		// The enclave launch is attributed to the batch's first successful
		// request (an earlier failing request must not swallow the cold
		// classification — the launch still happened and was paid for).
		coldPending := launched
		for _, i := range batchOrder(reqs) {
			req := reqs[i]
			if !req.Deadline.IsZero() && !time.Now().Before(req.Deadline) {
				results[i].Err = ErrDeadline
				continue
			}
			out, kind, err := prog.modelInf(req)
			if err != nil {
				results[i].Err = err
				continue
			}
			keyFetch += kind.keyFetchDur
			path := Hot
			switch {
			case coldPending:
				path = Cold
			case kind.loadedModel || kind.fetchedKeys:
				path = Warm
			}
			coldPending = false
			results[i].Response = Response{Payload: out, Kind: path}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if traced {
		if keyFetch > 0 {
			stages = append(stages, obs.StageDur{Stage: obs.StageKeyFetch, Dur: keyFetch})
		}
		stages = append(stages, obs.StageDur{Stage: obs.StageECall, Dur: clk.Now().Sub(ec0)})
	}
	sawCold := false
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		switch res.Response.Kind {
		case Cold:
			r.cold.Add(1)
			sawCold = true
		case Warm:
			r.warm.Add(1)
		default:
			r.hot.Add(1)
		}
	}
	if launched && !sawCold {
		// Every request failed, but the launch still happened and was paid
		// for: keep the cold counter honest.
		r.cold.Add(1)
	}
	return results, stages, nil
}

// wireEnvelope is the JSON activation payload: one request (the OpenWhisk
// /run body this repo has always used), a gateway batch, or a continuous-
// session step frame.
type wireEnvelope struct {
	Request
	Batch []Request  `json:"batch,omitempty"`
	Step  *StepFrame `json:"step,omitempty"`
}

func decodeWire(raw []byte) (wireEnvelope, error) {
	var env wireEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return wireEnvelope{}, fmt.Errorf("%w: activation payload: %v", ErrBadRequest, err)
	}
	return env, nil
}

// wireError restores typed sentinel errors carried as strings across the
// activation boundary, so errors.Is works on both sides of a remote call.
func wireError(s string) error {
	switch s {
	case ErrDeadline.Error():
		return ErrDeadline
	case ErrPreempted.Error():
		return ErrPreempted
	case ErrKeyServiceUnavailable.Error():
		return ErrKeyServiceUnavailable
	case ErrSandboxCrash.Error():
		return ErrSandboxCrash
	}
	// ErrBadRequest is always wrapped with the offending detail, so restore
	// it by prefix, keeping the detail in the message.
	if rest, ok := strings.CutPrefix(s, ErrBadRequest.Error()); ok {
		return fmt.Errorf("%w%s", ErrBadRequest, rest)
	}
	return errors.New(s)
}

// wireBatchItem is one per-request outcome on the wire.
type wireBatchItem struct {
	Payload []byte         `json:"payload,omitempty"`
	Kind    InvocationKind `json:"kind"`
	Error   string         `json:"error,omitempty"`
}

// wireBatchResponse is the activation response for a batch envelope. Stages
// carries the activation-level stage durations when the batch asked for
// tracing — the piece that lets a gateway-side trace stitch in the backend's
// cold_start / key_fetch / ecall time across the wire.
type wireBatchResponse struct {
	Batch  []wireBatchItem `json:"batch"`
	Stages []obs.StageDur  `json:"stages,omitempty"`
}

// EncodeBatch serializes requests into the batch activation envelope.
func EncodeBatch(reqs []Request) ([]byte, error) {
	if len(reqs) == 0 {
		return nil, errors.New("semirt: empty batch")
	}
	return json.Marshal(wireEnvelope{Batch: reqs})
}

// DecodeEnvelope parses an activation payload: batch is non-empty when the
// payload carried a gateway batch, otherwise req holds the single request.
// It is the request-side inverse of EncodeBatch (and of a plain
// json.Marshal(Request)); test doubles and recording wrappers use it so the
// wire shape lives in exactly one place.
func DecodeEnvelope(raw []byte) (req Request, batch []Request, err error) {
	env, err := decodeWire(raw)
	if err != nil {
		return Request{}, nil, err
	}
	return env.Request, env.Batch, nil
}

// EncodeBatchResults serializes per-request outcomes as the batch activation
// response — the inverse of DecodeBatchResponse.
func EncodeBatchResults(results []BatchResult) ([]byte, error) {
	return EncodeBatchResultsStages(results, nil)
}

// EncodeBatchResultsStages is EncodeBatchResults carrying the activation's
// measured stage durations alongside the member outcomes.
func EncodeBatchResultsStages(results []BatchResult, stages []obs.StageDur) ([]byte, error) {
	wr := wireBatchResponse{Batch: make([]wireBatchItem, len(results)), Stages: stages}
	for i, res := range results {
		if res.Err != nil {
			wr.Batch[i] = wireBatchItem{Error: res.Err.Error()}
			continue
		}
		wr.Batch[i] = wireBatchItem{Payload: res.Response.Payload, Kind: res.Response.Kind}
	}
	return json.Marshal(wr)
}

// DecodeBatchResponse parses a batch activation response into per-request
// results, which must number want (the batch size the caller sent).
func DecodeBatchResponse(raw []byte, want int) ([]BatchResult, error) {
	results, _, err := DecodeBatchResponseStages(raw, want)
	return results, err
}

// DecodeBatchResponseStages additionally returns the backend-measured stage
// durations (nil when the batch was not traced).
func DecodeBatchResponseStages(raw []byte, want int) ([]BatchResult, []obs.StageDur, error) {
	var wr wireBatchResponse
	if err := json.Unmarshal(raw, &wr); err != nil {
		return nil, nil, fmt.Errorf("semirt: batch response: %w", err)
	}
	if len(wr.Batch) != want {
		return nil, nil, fmt.Errorf("semirt: batch response has %d results, want %d", len(wr.Batch), want)
	}
	out := make([]BatchResult, len(wr.Batch))
	for i, item := range wr.Batch {
		if item.Error != "" {
			// Restore typed sentinels (ErrDeadline, ErrPreempted) across the
			// wire so callers can errors.Is-classify remote batch members.
			out[i].Err = wireError(item.Error)
			continue
		}
		out[i].Response = Response{Payload: item.Payload, Kind: item.Kind}
	}
	return out, wr.Stages, nil
}

// Instance adapts a Runtime to the serverless platform's opaque-payload
// contract (serverless.Instance): it decodes single-request and batch JSON
// envelopes and encodes the matching response shape. The integration stack,
// the gateway benchmarks and the examples all share this adapter.
type Instance struct {
	// RT is the wrapped runtime.
	RT *Runtime
}

// Invoke implements serverless.Instance.
func (in Instance) Invoke(payload []byte) ([]byte, error) {
	env, err := decodeWire(payload)
	if err != nil {
		return nil, err
	}
	if env.Step != nil {
		resp, err := in.RT.HandleStep(*env.Step)
		if err != nil {
			return nil, err
		}
		return EncodeStepResponse(resp)
	}
	if len(env.Batch) > 0 {
		results, stages, err := in.RT.HandleBatchStages(env.Batch)
		if err != nil {
			return nil, err
		}
		return EncodeBatchResultsStages(results, stages)
	}
	resp, err := in.RT.Handle(env.Request)
	if err != nil {
		return nil, err
	}
	return json.Marshal(resp)
}

// Stop implements serverless.Instance.
func (in Instance) Stop() { in.RT.Stop() }
