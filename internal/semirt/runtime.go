package semirt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sesemi/internal/attest"
	"sesemi/internal/enclave"
	"sesemi/internal/faults"
	"sesemi/internal/inference"
	"sesemi/internal/keyservice"
	"sesemi/internal/obs"
	"sesemi/internal/secure"
	"sesemi/internal/storage"
	"sesemi/internal/vclock"
)

// Fault-tolerance sentinels. Both survive the activation wire (wireError).
var (
	// ErrKeyServiceUnavailable reports that key provisioning is in brownout:
	// a recent provisioning failure exhausted its retries, so requests that
	// need a NEW key fetch are shed fast for the Deps.KSBrownout window while
	// requests whose keys are already cached keep being served
	// (shed-new-admit, finish-resident).
	ErrKeyServiceUnavailable = errors.New("semirt: key service unavailable")
	// ErrSandboxCrash reports an injected sandbox crash mid-ECall
	// (Deps.Faults): the activation fails as a whole, exactly like a real
	// sandbox death under the caller, and the gateway's retry machinery is
	// expected to re-dispatch.
	ErrSandboxCrash = errors.New("semirt: sandbox crashed")
)

// InvocationKind classifies how a request was served (Figure 4).
type InvocationKind int

const (
	// Cold: the enclave was created for this request.
	Cold InvocationKind = iota
	// Warm: the enclave existed but the model had to be loaded.
	Warm
	// Hot: model and keys were already cached.
	Hot
)

func (k InvocationKind) String() string {
	switch k {
	case Cold:
		return "cold"
	case Warm:
		return "warm"
	default:
		return "hot"
	}
}

// Request is one encrypted inference request, as delivered by the serverless
// platform.
type Request struct {
	// UserID identifies the requesting model user.
	UserID secure.ID `json:"user_id"`
	// ModelID names the target model.
	ModelID string `json:"model_id"`
	// Payload is secure.Seal(K_R, PurposeRequest, ModelID, tensor bytes).
	Payload []byte `json:"payload"`
	// KeyService optionally overrides the deployment's KeyService address.
	// §IV-D: multiple KeyServices can be deployed to isolate keys from
	// different users, "which require users to specify the address of the
	// corresponding KeyService in their requests". All KeyServices run the
	// same code and are verified against the same identity E_K.
	KeyService string `json:"key_service,omitempty"`
	// Deadline, when non-zero, is the instant the answer stops being useful.
	// HandleBatch sheds a member whose deadline has lapsed — including
	// mid-batch, while earlier members executed — with ErrDeadline instead
	// of spending enclave time on a response nobody will read. The gateway
	// threads its envelope deadline through here, so shedding continues past
	// dispatch into the backend.
	Deadline time.Time `json:"deadline"`
	// ExecSteps is the request's execution length in scheduler steps (0 and
	// 1 both mean a single step). Continuous sessions (HandleStep) run one
	// step per member per frame, so a long request interleaves with short
	// ones instead of holding the enclave for its whole duration; form-then-
	// fire paths charge all remaining steps in one go, so both disciplines
	// pay the same total execution cost.
	ExecSteps int `json:"exec_steps,omitempty"`
	// StepsDone counts steps already executed in earlier sessions. A member
	// preempted at a step boundary is re-queued by the gateway with its
	// progress here, so resumption pays only the remaining steps.
	StepsDone int `json:"steps_done,omitempty"`
	// Trace asks the runtime to measure this activation's stage durations
	// (cold_start, key_fetch, ecall) and return them in the response
	// envelope, so a gateway-side trace stitches the backend hops in. The
	// gateway sets it only for head-sampled requests — unsampled traffic
	// pays zero timing overhead on the backend.
	Trace bool `json:"trace,omitempty"`
}

// Response is the encrypted inference result.
type Response struct {
	// Payload is secure.Seal(K_R, PurposeResponse, ModelID, tensor bytes).
	Payload []byte `json:"payload"`
	// Kind reports the invocation path taken.
	Kind InvocationKind `json:"kind"`
	// Stages holds the runtime-measured stage durations (cold_start,
	// key_fetch, ecall) when the request asked for them (Request.Trace).
	Stages []obs.StageDur `json:"stages,omitempty"`
}

// Deps are the untrusted-world dependencies of a SeMIRT instance.
type Deps struct {
	// Platform hosts the enclave.
	Platform *enclave.Platform
	// Store holds encrypted models under "models/<id>".
	Store storage.Store
	// KSDialer reaches the KeyService.
	KSDialer keyservice.Dialer
	// CAPublicKey verifies the KeyService quote.
	CAPublicKey []byte
	// ExpectEK is the KeyService measurement to pin.
	ExpectEK attest.Measurement
	// Faults is the optional fault-injection plane (nil — the default — is a
	// no-op): it drives injected sandbox crashes and key-service outage
	// checks for chaos benchmarks and tests. Deliberately a dependency, not
	// Config: it must never fold into the enclave measurement.
	Faults *faults.Injector
	// KSRetries is how many times a failed KeyService provisioning round
	// trip is retried — with exponential backoff on the enclave clock —
	// before the failure surfaces (default 0: fail on the first error, the
	// historical behaviour).
	KSRetries int
	// KSRetryBackoff is the base delay between provisioning retries,
	// doubling per attempt (default 1ms).
	KSRetryBackoff time.Duration
	// KSBrownout, when positive, is the degraded-mode window entered after
	// provisioning fails with retries exhausted: for that long, requests
	// needing a fresh key fetch fail fast with ErrKeyServiceUnavailable
	// (shed-new-admit) while requests whose keys are already in the LRU keep
	// being served (finish-resident). 0 disables the mode.
	KSBrownout time.Duration
}

// ModelBlobName returns the storage key for a model's encrypted bytes.
func ModelBlobName(modelID string) string { return "models/" + modelID + ".enc" }

// Stats counts served invocations by path.
type Stats struct {
	Cold, Warm, Hot uint64
	// KeyFetches counts KeyService Provision round trips — the cold-path
	// volume the key cache amortizes away (with the LRU warm, a steady
	// multi-user stream fetches once per principal; with the single-pair
	// cache it fetched once per user flip).
	KeyFetches uint64
	// SessionSteps counts continuous-session scheduling frames (one enclave
	// entry each) — the step-loop volume costmodel.SchedulingOverhead prices.
	SessionSteps uint64
	// Preempted counts members evicted at a step boundary with ErrPreempted.
	Preempted uint64
}

// Runtime is one SeMIRT serverless instance (the sandbox contents in
// Figure 6). It is safe for concurrent use; concurrency is bounded by the
// enclave TCS count.
type Runtime struct {
	cfg  Config
	deps Deps

	fw inference.Framework

	mu      sync.Mutex
	enc     *enclave.Enclave
	prog    *program
	stopped bool

	cold, warm, hot atomic.Uint64
	// keyFetches outlives the program (Stop nils it), so the counter keeps
	// reporting after shutdown.
	keyFetches atomic.Uint64
	// sessionSteps / preempted mirror Stats: continuous-session frames
	// executed and members preempted at step boundaries.
	sessionSteps atomic.Uint64
	preempted    atomic.Uint64

	// stepMu guards the live continuous sessions. Each session is driven by
	// exactly one gateway goroutine (frames arrive strictly sequentially),
	// so the lock only covers map access, never frame execution.
	stepMu       sync.Mutex
	stepSessions map[string]*stepSession
}

// New creates an instance; the enclave is not launched until Start or the
// first request (a cold invocation).
func New(cfg Config, deps Deps) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if deps.Platform == nil || deps.Store == nil || deps.KSDialer == nil {
		return nil, errors.New("semirt: missing platform, store or KeyService dialer")
	}
	fw, err := inference.Lookup(cfg.Framework)
	if err != nil {
		return nil, err
	}
	return &Runtime{cfg: cfg, deps: deps, fw: fw}, nil
}

// Config returns the instance configuration.
func (r *Runtime) Config() Config { return r.cfg }

// Measurement returns the enclave identity ES of this configuration.
func (r *Runtime) Measurement() attest.Measurement { return r.cfg.Manifest().Measure() }

// Started reports whether the enclave is live.
func (r *Runtime) Started() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.enc != nil
}

// Start launches the enclave (idempotent). Separating Start from request
// handling lets the serverless platform pre-warm instances.
func (r *Runtime) Start() error {
	_, err := r.ensureEnclave()
	return err
}

func (r *Runtime) ensureEnclave() (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return false, errors.New("semirt: stopped")
	}
	if r.enc != nil {
		return false, nil
	}
	prog := newProgram(r.cfg, r.fw, r.deps)
	prog.fetches = &r.keyFetches
	enc, err := r.deps.Platform.Launch(r.cfg.Manifest(), prog)
	if err != nil {
		return false, fmt.Errorf("semirt: launch: %w", err)
	}
	r.enc = enc
	r.prog = prog
	return true, nil
}

// clock returns the platform clock the runtime's stage timings are taken on.
func (r *Runtime) clock() vclock.Clock { return r.deps.Platform.Clock() }

// Handle serves one request (the OpenWhisk action /run entry point). The
// calling goroutine plays the role of a libuv pool thread: it enters the
// enclave through one TCS for the duration of EC_MODEL_INF.
func (r *Runtime) Handle(req Request) (Response, error) {
	var clk vclock.Clock
	var t0 time.Time
	if req.Trace {
		clk = r.clock()
		t0 = clk.Now()
	}
	launched, err := r.ensureEnclave()
	if err != nil {
		return Response{}, err
	}
	var stages []obs.StageDur
	if req.Trace && launched {
		stages = append(stages, obs.StageDur{Stage: obs.StageColdStart, Dur: clk.Now().Sub(t0)})
	}
	if r.deps.Faults.SandboxCrash() {
		return Response{}, ErrSandboxCrash
	}
	r.mu.Lock()
	enc, prog := r.enc, r.prog
	r.mu.Unlock()

	var out []byte
	var path InvocationKind
	var detail invocationDetail
	var ec0 time.Time
	if req.Trace {
		ec0 = clk.Now()
	}
	err = enc.ECall(func() error {
		out, detail, err = prog.modelInf(req)
		if err != nil {
			return err
		}
		switch {
		case launched:
			path = Cold
		case detail.loadedModel || detail.fetchedKeys:
			// The paper's hot path requires both the same loaded model and
			// the same user's cached keys (§IV-B); anything else that reuses
			// the enclave is warm.
			path = Warm
		default:
			path = Hot
		}
		return nil
	})
	if err != nil {
		return Response{}, err
	}
	if req.Trace {
		if detail.keyFetchDur > 0 {
			stages = append(stages, obs.StageDur{Stage: obs.StageKeyFetch, Dur: detail.keyFetchDur})
		}
		stages = append(stages, obs.StageDur{Stage: obs.StageECall, Dur: clk.Now().Sub(ec0)})
	}
	switch path {
	case Cold:
		r.cold.Add(1)
	case Warm:
		r.warm.Add(1)
	default:
		r.hot.Add(1)
	}
	return Response{Payload: out, Kind: path, Stages: stages}, nil
}

// Stats returns the invocation counters.
func (r *Runtime) Stats() Stats {
	return Stats{Cold: r.cold.Load(), Warm: r.warm.Load(), Hot: r.hot.Load(),
		KeyFetches:   r.keyFetches.Load(),
		SessionSteps: r.sessionSteps.Load(),
		Preempted:    r.preempted.Load()}
}

// RegisterMetrics exports the runtime's counters as labeled series on the
// unified registry — the Stats() adapter of the observability plane. The
// registrations are scrape-time reads over the existing atomics, so the
// serving path pays nothing.
func (r *Runtime) RegisterMetrics(reg *obs.Registry, labels obs.Labels) {
	if reg == nil {
		return
	}
	invHelp := "Invocations served, by warmth path."
	reg.CounterFunc("sesemi_semirt_invocations_total", invHelp, labels.With("path", "cold"),
		func() float64 { return float64(r.cold.Load()) })
	reg.CounterFunc("sesemi_semirt_invocations_total", invHelp, labels.With("path", "warm"),
		func() float64 { return float64(r.warm.Load()) })
	reg.CounterFunc("sesemi_semirt_invocations_total", invHelp, labels.With("path", "hot"),
		func() float64 { return float64(r.hot.Load()) })
	reg.CounterFunc("sesemi_semirt_key_fetches_total", "KeyService provisioning round trips.", labels,
		func() float64 { return float64(r.keyFetches.Load()) })
	reg.CounterFunc("sesemi_semirt_session_steps_total", "Continuous-session scheduling frames executed.", labels,
		func() float64 { return float64(r.sessionSteps.Load()) })
	reg.CounterFunc("sesemi_semirt_preempted_total", "Members evicted at a step boundary.", labels,
		func() float64 { return float64(r.preempted.Load()) })
	reg.GaugeFunc("sesemi_semirt_enclave_bytes", "EPC-reserved enclave size (0 when not started).", labels,
		func() float64 { return float64(r.EnclaveMemoryBytes()) })
}

// LoadedModel reports the id of the currently loaded model ("" if none).
func (r *Runtime) LoadedModel() string {
	r.mu.Lock()
	prog := r.prog
	r.mu.Unlock()
	if prog == nil {
		return ""
	}
	return prog.loadedModelID()
}

// EnclaveMemoryBytes reports the enclave's configured (EPC-reserved) size,
// 0 if not started.
func (r *Runtime) EnclaveMemoryBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.enc == nil {
		return 0
	}
	return r.cfg.EnclaveMemoryBytes
}

// Stop destroys the enclave and closes the KeyService session.
func (r *Runtime) Stop() {
	r.stepMu.Lock()
	r.stepSessions = nil
	r.stepMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopped = true
	if r.prog != nil {
		r.prog.close()
		r.prog = nil
	}
	if r.enc != nil {
		r.enc.Destroy()
		r.enc = nil
	}
}
