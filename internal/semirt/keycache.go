package semirt

import (
	"sync"

	"sesemi/internal/secure"
)

// keyCache is the enclave's bounded LRU of provisioned key pairs, keyed by
// the ⟨Moid‖uid‖KeyService⟩ tag (cacheID). It replaces the historical
// single-pair cache: a user flip inside a user-diverse batch no longer takes
// a global write lock and refetches over the KeyService session — it reads
// its own entry on a per-shard lock, and only genuinely new principals
// provision.
//
// Design:
//
//   - Sharded: tags hash onto up to 8 shards, each with its own mutex, so
//     concurrent TCS slots serving different users never contend on one
//     lock. The capacity is split across shards — but a shard never holds
//     fewer than minShardCap entries (small caches use fewer shards, down
//     to one), so the cache stays effectively associative: colliding tags
//     only evict each other when the shard's own working set exceeds its
//     share. Capacity 1 is a single shard and reproduces the pre-LRU
//     single-pair semantics exactly.
//   - Singleflight misses: N batch members (or TCS slots) missing on the
//     same tag trigger ONE KeyService round trip; the rest wait for the
//     leader's result. Errors are not cached — every waiter of a failed
//     fetch sees the error, and the next request retries.
//   - Copy-out reads: get returns key values, not pointers, so an entry
//     evicted mid-request never invalidates the keys a request is already
//     executing with.
type keyCache struct {
	shards []keyShard
}

// keyShard is one lock's worth of the cache: a tag → entry map plus an MRU →
// LRU order slice. Shard capacities are small (≤ the configured cache size),
// so the order slice's linear touch is noise next to a key fetch.
type keyShard struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]keyPair
	order    []string // tags, most recently used first
	inflight map[string]*keyFetch
}

// keyPair is one resident entry.
type keyPair struct {
	km, kr secure.Key
}

// keyFetch is one in-flight provision shared by every concurrent miss on
// the same tag.
type keyFetch struct {
	done   chan struct{}
	km, kr secure.Key
	err    error
}

// maxKeyShards bounds shard fan-out; beyond 8 ways the shard locks are no
// longer the bottleneck (the TCS count tops out at 8).
const maxKeyShards = 8

// minShardCap is the smallest per-shard capacity: splitting a small cache
// into 1-entry shards would make it direct-mapped (two colliding tags evict
// each other forever even with total capacity to spare), so small caches
// use fewer, deeper shards instead.
const minShardCap = 8

// newKeyCache builds a cache holding up to size pairs. size < 1 is treated
// as 1.
func newKeyCache(size int) *keyCache {
	if size < 1 {
		size = 1
	}
	n := (size + minShardCap - 1) / minShardCap
	if n > maxKeyShards {
		n = maxKeyShards
	}
	c := &keyCache{shards: make([]keyShard, n)}
	base, extra := size/n, size%n
	for i := range c.shards {
		cap := base
		if i < extra {
			cap++
		}
		c.shards[i] = keyShard{
			cap:      cap,
			entries:  map[string]keyPair{},
			inflight: map[string]*keyFetch{},
		}
	}
	return c
}

// shard maps a tag to its shard (FNV-1a).
func (c *keyCache) shard(tag string) *keyShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(tag); i++ {
		h ^= uint32(tag[i])
		h *= 16777619
	}
	return &c.shards[h%uint32(len(c.shards))]
}

// get returns the tag's key pair, fetching it with fetch on a miss.
// fetched reports whether THIS call performed the fetch (singleflight
// waiters report false — they did no provisioning work, mirroring the
// historical classification where a request that found the keys installed
// by a concurrent switch counted as hot).
func (c *keyCache) get(tag string, fetch func() (km, kr secure.Key, err error)) (km, kr secure.Key, fetched bool, err error) {
	sh := c.shard(tag)
	sh.mu.Lock()
	if e, ok := sh.entries[tag]; ok {
		sh.touch(tag)
		sh.mu.Unlock()
		return e.km, e.kr, false, nil
	}
	if fl := sh.inflight[tag]; fl != nil {
		sh.mu.Unlock()
		<-fl.done
		return fl.km, fl.kr, false, fl.err
	}
	fl := &keyFetch{done: make(chan struct{})}
	sh.inflight[tag] = fl
	sh.mu.Unlock()

	fl.km, fl.kr, fl.err = fetch()

	sh.mu.Lock()
	delete(sh.inflight, tag)
	if fl.err == nil {
		sh.insert(tag, keyPair{km: fl.km, kr: fl.kr})
	}
	sh.mu.Unlock()
	close(fl.done)
	return fl.km, fl.kr, fl.err == nil, fl.err
}

// touch moves tag to the order front. Caller holds sh.mu.
func (sh *keyShard) touch(tag string) {
	for i, t := range sh.order {
		if t == tag {
			copy(sh.order[1:i+1], sh.order[:i])
			sh.order[0] = tag
			return
		}
	}
}

// insert adds (or refreshes) a resident entry, evicting the least recently
// used beyond capacity. Caller holds sh.mu.
func (sh *keyShard) insert(tag string, e keyPair) {
	if _, ok := sh.entries[tag]; ok {
		sh.entries[tag] = e
		sh.touch(tag)
		return
	}
	sh.entries[tag] = e
	sh.order = append(sh.order, "")
	copy(sh.order[1:], sh.order)
	sh.order[0] = tag
	for len(sh.order) > sh.cap {
		victim := sh.order[len(sh.order)-1]
		sh.order = sh.order[:len(sh.order)-1]
		delete(sh.entries, victim)
	}
}

// resident reports whether tag currently holds a cached pair (tests and
// stats).
func (c *keyCache) resident(tag string) bool {
	sh := c.shard(tag)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.entries[tag]
	return ok
}

// len returns the resident entry count across shards.
func (c *keyCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
