package semirt

import (
	"errors"
	"testing"
	"time"
)

func stepWorld(t *testing.T) (*testWorld, *Runtime) {
	t.Helper()
	w := newWorld(t)
	rt, err := New(mustConfig(t, "tvm", "mbnet", 2), w.deps())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	w.deployModel("mbnet", rt.Measurement())
	return w, rt
}

// TestHandleStepCompletesMembersAtOwnStep: a 1-step member batched with a
// 3-step member leaves the session at frame 1; the long member stays resident
// and finishes at frame 3. This is the live form of the sim's continuous
// discipline — no member waits for the batch.
func TestHandleStepCompletesMembersAtOwnStep(t *testing.T) {
	w, rt := stepWorld(t)
	long := w.requestFor("mbnet", 1)
	long.ExecSteps = 3
	short := w.requestFor("mbnet", 2)

	resp, err := rt.HandleStep(StepFrame{Session: "s1", Join: []StepJoin{
		{ID: 0, Req: long}, {ID: 1, Req: short}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Done) != 1 || resp.Done[0].ID != 1 || resp.Done[0].Err != nil {
		t.Fatalf("frame 1 done %+v, want short member only", resp.Done)
	}
	if resp.Active != 1 {
		t.Fatalf("frame 1 active %d, want the long member resident", resp.Active)
	}
	w.decode("mbnet", resp.Done[0].Response)

	// Frame 2 is an intermediate step: nothing leaves.
	resp, err = rt.HandleStep(StepFrame{Session: "s1"})
	if err != nil || len(resp.Done) != 0 || resp.Active != 1 {
		t.Fatalf("frame 2: %+v %v", resp, err)
	}
	// Frame 3 runs the long member's final step: full pipeline, result sealed.
	resp, err = rt.HandleStep(StepFrame{Session: "s1"})
	if err != nil || len(resp.Done) != 1 || resp.Done[0].Err != nil || resp.Active != 0 {
		t.Fatalf("frame 3: %+v %v", resp, err)
	}
	w.decode("mbnet", resp.Done[0].Response)

	st := rt.Stats()
	if st.SessionSteps != 3 {
		t.Fatalf("session steps %d, want 3", st.SessionSteps)
	}
	if st.Cold+st.Warm+st.Hot != 2 {
		t.Fatalf("served %d, want 2 (stats %+v)", st.Cold+st.Warm+st.Hot, st)
	}
}

// TestHandleStepPreemptsAndResumes: a member over its in-session budget with a
// backlog waiting is evicted with ErrPreempted carrying its progress; re-
// joining with Request.StepsDone resumes at the remaining steps, and the
// result still decrypts under the requester's key.
func TestHandleStepPreemptsAndResumes(t *testing.T) {
	w, rt := stepWorld(t)
	req := w.requestFor("mbnet", 7)
	req.ExecSteps = 5

	frame := StepFrame{Session: "s1", Join: []StepJoin{{ID: 0, Req: req}}, Budget: 2, Waiting: 3}
	resp, err := rt.HandleStep(frame)
	if err != nil || len(resp.Done) != 0 {
		t.Fatalf("frame 1: %+v %v", resp, err)
	}
	frame.Join = nil
	if resp, err = rt.HandleStep(frame); err != nil || len(resp.Done) != 0 {
		t.Fatalf("frame 2: %+v %v", resp, err)
	}
	// Third frame: inSess == Budget and 3 steps remain → evicted at the
	// boundary, before burning another step.
	resp, err = rt.HandleStep(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Done) != 1 || !resp.Done[0].Preempted || !errors.Is(resp.Done[0].Err, ErrPreempted) {
		t.Fatalf("frame 3 done %+v, want preemption", resp.Done)
	}
	if resp.Done[0].StepsDone != 2 {
		t.Fatalf("preempted with %d steps done, want 2", resp.Done[0].StepsDone)
	}
	if st := rt.Stats(); st.Preempted != 1 {
		t.Fatalf("stats preempted %d, want 1", st.Preempted)
	}

	// Resume in a fresh session: the budget is per-session (inSess resets),
	// so with no backlog the member runs its remaining 3 steps to completion.
	req.StepsDone = resp.Done[0].StepsDone
	resume := StepFrame{Session: "s2", Join: []StepJoin{{ID: 0, Req: req}}, Budget: 2}
	for i := 0; i < 2; i++ {
		if resp, err = rt.HandleStep(resume); err != nil || len(resp.Done) != 0 {
			t.Fatalf("resume frame %d: %+v %v", i+1, resp, err)
		}
		resume.Join = nil
	}
	resp, err = rt.HandleStep(resume)
	if err != nil || len(resp.Done) != 1 || resp.Done[0].Err != nil {
		t.Fatalf("resume final frame: %+v %v", resp, err)
	}
	w.decode("mbnet", resp.Done[0].Response)
}

// TestHandleStepFinalStepAlwaysFinishes: a member on its last step completes
// even when over budget with a backlog — finishing is strictly cheaper than a
// preempt/resume round trip, and fresh joiners always get their first step.
func TestHandleStepFinalStepAlwaysFinishes(t *testing.T) {
	w, rt := stepWorld(t)
	req := w.requestFor("mbnet", 1)
	req.ExecSteps = 2

	frame := StepFrame{Session: "s1", Join: []StepJoin{{ID: 0, Req: req}}, Budget: 1, Waiting: 9}
	resp, err := rt.HandleStep(frame)
	if err != nil || len(resp.Done) != 0 {
		t.Fatalf("frame 1: %+v %v", resp, err)
	}
	frame.Join = nil
	resp, err = rt.HandleStep(frame)
	if err != nil || len(resp.Done) != 1 || resp.Done[0].Err != nil {
		t.Fatalf("final frame preempted instead of finishing: %+v %v", resp, err)
	}
	w.decode("mbnet", resp.Done[0].Response)
	if st := rt.Stats(); st.Preempted != 0 {
		t.Fatalf("preempted %d, want 0", st.Preempted)
	}
}

// TestHandleStepShedsLapsedJoin: deadline shedding applies at admission and
// between steps, same as HandleBatch at formation.
func TestHandleStepShedsLapsedJoin(t *testing.T) {
	w, rt := stepWorld(t)
	lapsed := w.requestFor("mbnet", 1)
	lapsed.Deadline = time.Now().Add(-time.Second)
	live := w.requestFor("mbnet", 2)

	resp, err := rt.HandleStep(StepFrame{Session: "s1", Join: []StepJoin{
		{ID: 0, Req: lapsed}, {ID: 1, Req: live}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Done) != 2 {
		t.Fatalf("done %+v", resp.Done)
	}
	if !errors.Is(resp.Done[0].Err, ErrDeadline) {
		t.Fatalf("lapsed join err %v, want ErrDeadline", resp.Done[0].Err)
	}
	if resp.Done[1].Err != nil {
		t.Fatalf("live join failed: %v", resp.Done[1].Err)
	}
}

// TestHandleStepCloseDrainsResidents: Close on a session with members returns
// them as resumable preemptions instead of dropping them, and closing an
// unknown session is a no-op.
func TestHandleStepCloseDrainsResidents(t *testing.T) {
	w, rt := stepWorld(t)
	req := w.requestFor("mbnet", 1)
	req.ExecSteps = 4
	if _, err := rt.HandleStep(StepFrame{Session: "s1", Join: []StepJoin{{ID: 5, Req: req}}}); err != nil {
		t.Fatal(err)
	}
	resp, err := rt.HandleStep(StepFrame{Session: "s1", Close: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Done) != 1 || !resp.Done[0].Preempted || resp.Done[0].StepsDone != 1 {
		t.Fatalf("close drain %+v, want resumable preemption with 1 step done", resp.Done)
	}
	// The session is gone: a second Close is a no-op, and the id is reusable.
	if resp, err = rt.HandleStep(StepFrame{Session: "s1", Close: true}); err != nil || len(resp.Done) != 0 {
		t.Fatalf("double close: %+v %v", resp, err)
	}
}

// TestStepWireRoundTrip drives a session through Instance.Invoke — the same
// payload path a remote activation takes — and checks the typed sentinels
// survive encode/decode.
func TestStepWireRoundTrip(t *testing.T) {
	w, rt := stepWorld(t)
	inst := Instance{RT: rt}

	long := w.requestFor("mbnet", 1)
	long.ExecSteps = 6
	short := w.requestFor("mbnet", 2)
	payload, err := EncodeStepFrame(StepFrame{Session: "w1", Join: []StepJoin{
		{ID: 0, Req: long}, {ID: 1, Req: short}}, Budget: 1, Waiting: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := inst.Invoke(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeStepResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Done) != 1 || resp.Done[0].ID != 1 || resp.Done[0].Err != nil || resp.Active != 1 {
		t.Fatalf("frame 1 over the wire: %+v", resp)
	}
	w.decode("mbnet", resp.Done[0].Response)

	// Next frame preempts the long member; ErrPreempted and the progress
	// counter must come back typed through the wire.
	payload, err = EncodeStepFrame(StepFrame{Session: "w1", Budget: 1, Waiting: 1})
	if err != nil {
		t.Fatal(err)
	}
	if raw, err = inst.Invoke(payload); err != nil {
		t.Fatal(err)
	}
	if resp, err = DecodeStepResponse(raw); err != nil {
		t.Fatal(err)
	}
	if len(resp.Done) != 1 || !errors.Is(resp.Done[0].Err, ErrPreempted) || !resp.Done[0].Preempted {
		t.Fatalf("preemption lost on the wire: %+v", resp.Done)
	}
	if resp.Done[0].StepsDone != 1 {
		t.Fatalf("wire steps done %d, want 1", resp.Done[0].StepsDone)
	}

	if _, err := EncodeStepFrame(StepFrame{}); err == nil {
		t.Fatal("frame without session id encoded")
	}
}
