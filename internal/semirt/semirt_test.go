package semirt

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/keyservice"
	"sesemi/internal/model"
	"sesemi/internal/secure"
	"sesemi/internal/storage"
	"sesemi/internal/tensor"
	"sesemi/internal/vclock"
)

// testWorld is a complete single-node SeSeMI deployment: CA, KeyService,
// storage, one platform, and registered owner/user principals.
type testWorld struct {
	t      testing.TB
	ca     *attest.CA
	ksAddr string
	ksMeas attest.Measurement
	store  *storage.Memory
	plat   *enclave.Platform
	clock  *vclock.Manual

	ownerKey, userKey secure.Key
	owner, user       *keyservice.Client

	modelKeys map[string]secure.Key // modelID -> K_M
	reqKeys   map[string]secure.Key // modelID -> K_R (this user)
}

func newWorld(t testing.TB) *testWorld {
	t.Helper()
	w := &testWorld{t: t, clock: vclock.NewManual(), modelKeys: map[string]secure.Key{}, reqKeys: map[string]secure.Key{}}
	var err error
	w.ca, err = attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}

	// KeyService node.
	ksKey, err := w.ca.Provision("ks-node")
	if err != nil {
		t.Fatal(err)
	}
	ksPlat := enclave.NewPlatform(costmodel.SGX2, vclock.Real{Scale: 0}, ksKey)
	svc := keyservice.NewService()
	ksEnc, err := ksPlat.Launch(keyservice.ManifestFor(keyservice.DefaultTCS), svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ksEnc.Destroy)
	w.ksMeas = ksEnc.Measurement()
	srv, err := keyservice.NewServer(svc, w.ca.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	w.ksAddr = ln.Addr().String()

	// Worker node platform and storage.
	nodeKey, err := w.ca.Provision("worker-node")
	if err != nil {
		t.Fatal(err)
	}
	w.plat = enclave.NewPlatform(costmodel.SGX2, w.clock, nodeKey)
	w.store = storage.NewMemory(w.clock, nil)

	// Principals.
	w.ownerKey = secure.KeyFromSeed("owner")
	w.userKey = secure.KeyFromSeed("user")
	dial := keyservice.TCPDialer(w.ksAddr)
	w.owner = keyservice.NewClient(dial, w.ca.PublicKey(), w.ksMeas, w.ownerKey)
	w.user = keyservice.NewClient(dial, w.ca.PublicKey(), w.ksMeas, w.userKey)
	t.Cleanup(func() { w.owner.Close(); w.user.Close() })
	if err := w.owner.Register(); err != nil {
		t.Fatal(err)
	}
	if err := w.user.Register(); err != nil {
		t.Fatal(err)
	}
	return w
}

// deployModel encrypts and uploads a functional model and sets up keys and
// grants for the given enclave measurement.
func (w *testWorld) deployModel(modelID string, es attest.Measurement) {
	w.t.Helper()
	m, err := model.NewFunctional(strings.Split(modelID, "-")[0])
	if err != nil {
		w.t.Fatal(err)
	}
	m.Name = modelID
	data, err := model.Marshal(m)
	if err != nil {
		w.t.Fatal(err)
	}
	km := secure.KeyFromSeed("km-" + modelID)
	kr := secure.KeyFromSeed("kr-" + modelID)
	w.modelKeys[modelID] = km
	w.reqKeys[modelID] = kr
	ct, err := EncryptModel(km, modelID, data)
	if err != nil {
		w.t.Fatal(err)
	}
	if err := w.store.Put(ModelBlobName(modelID), ct); err != nil {
		w.t.Fatal(err)
	}
	if err := w.owner.AddModelKey(modelID, km); err != nil {
		w.t.Fatal(err)
	}
	if err := w.owner.GrantAccess(modelID, es, w.user.ID()); err != nil {
		w.t.Fatal(err)
	}
	if err := w.user.AddReqKey(modelID, es, kr); err != nil {
		w.t.Fatal(err)
	}
}

// extraUser is an additional registered user principal with its own
// per-model request keys (multi-user key-locality tests).
type extraUser struct {
	client  *keyservice.Client
	id      secure.ID
	reqKeys map[string]secure.Key // modelID -> K_R
}

// newUser registers another user principal.
func (w *testWorld) newUser(seed string) *extraUser {
	w.t.Helper()
	c := keyservice.NewClient(keyservice.TCPDialer(w.ksAddr), w.ca.PublicKey(), w.ksMeas,
		secure.KeyFromSeed(seed))
	w.t.Cleanup(func() { c.Close() })
	if err := c.Register(); err != nil {
		w.t.Fatal(err)
	}
	return &extraUser{client: c, id: c.ID(), reqKeys: map[string]secure.Key{}}
}

// grantUser authorizes the user on an already-deployed model under its own
// request key.
func (w *testWorld) grantUser(u *extraUser, modelID string, es attest.Measurement) {
	w.t.Helper()
	if err := w.owner.GrantAccess(modelID, es, u.id); err != nil {
		w.t.Fatal(err)
	}
	kr := secure.KeyFromSeed("kr-" + modelID + "-" + string(u.id))
	if err := u.client.AddReqKey(modelID, es, kr); err != nil {
		w.t.Fatal(err)
	}
	u.reqKeys[modelID] = kr
}

// requestAs builds an encrypted request for the model under the user's key.
func (w *testWorld) requestAs(u *extraUser, modelID string, seed int) Request {
	w.t.Helper()
	base, err := model.NewFunctional(strings.Split(modelID, "-")[0])
	if err != nil {
		w.t.Fatal(err)
	}
	in := tensor.New(base.InputShape...)
	for i := range in.Data() {
		in.Data()[i] = float32((i+seed)%17) * 0.05
	}
	payload, err := EncryptRequest(u.reqKeys[modelID], modelID, inference.EncodeTensor(in))
	if err != nil {
		w.t.Fatal(err)
	}
	return Request{UserID: u.id, ModelID: modelID, Payload: payload}
}

// decodeAs opens a response with the user's own request key — failure means
// the enclave sealed the result under some other principal's keys.
func (w *testWorld) decodeAs(u *extraUser, modelID string, resp Response) (*tensor.Tensor, error) {
	plain, err := DecryptResponse(u.reqKeys[modelID], modelID, resp.Payload)
	if err != nil {
		return nil, err
	}
	return inference.DecodeTensor(plain)
}

func (w *testWorld) deps() Deps {
	return Deps{
		Platform:    w.plat,
		Store:       w.store,
		KSDialer:    keyservice.TCPDialer(w.ksAddr),
		CAPublicKey: w.ca.PublicKey(),
		ExpectEK:    w.ksMeas,
	}
}

// requestFor builds an encrypted request for the model's input shape.
func (w *testWorld) requestFor(modelID string, seed int) Request {
	w.t.Helper()
	base, err := model.NewFunctional(strings.Split(modelID, "-")[0])
	if err != nil {
		w.t.Fatal(err)
	}
	in := tensor.New(base.InputShape...)
	for i := range in.Data() {
		in.Data()[i] = float32((i+seed)%17) * 0.05
	}
	payload, err := EncryptRequest(w.reqKeys[modelID], modelID, inference.EncodeTensor(in))
	if err != nil {
		w.t.Fatal(err)
	}
	return Request{UserID: w.user.ID(), ModelID: modelID, Payload: payload}
}

func (w *testWorld) decode(modelID string, resp Response) *tensor.Tensor {
	w.t.Helper()
	plain, err := DecryptResponse(w.reqKeys[modelID], modelID, resp.Payload)
	if err != nil {
		w.t.Fatal(err)
	}
	out, err := inference.DecodeTensor(plain)
	if err != nil {
		w.t.Fatal(err)
	}
	return out
}

func mustConfig(t testing.TB, fw, modelID string, conc int) Config {
	t.Helper()
	cfg, err := DefaultConfig(fw, strings.Split(modelID, "-")[0], conc)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestColdWarmHotClassification(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 2)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	w.deployModel("dsnet", rt.Measurement())

	r1, err := rt.Handle(w.requestFor("mbnet", 1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Kind != Cold {
		t.Fatalf("first invocation %v, want cold", r1.Kind)
	}
	r2, err := rt.Handle(w.requestFor("mbnet", 2))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Kind != Hot {
		t.Fatalf("second invocation %v, want hot", r2.Kind)
	}
	r3, err := rt.Handle(w.requestFor("dsnet", 3))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Kind != Warm {
		t.Fatalf("model switch %v, want warm", r3.Kind)
	}
	if rt.LoadedModel() != "dsnet" {
		t.Fatalf("loaded model %q", rt.LoadedModel())
	}
	st := rt.Stats()
	if st.Cold != 1 || st.Warm != 1 || st.Hot != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOutputMatchesDirectInference(t *testing.T) {
	w := newWorld(t)
	for _, fwName := range []string{"tvm", "tflm"} {
		cfg := mustConfig(t, fwName, "mbnet", 1)
		rt, err := New(cfg, w.deps())
		if err != nil {
			t.Fatal(err)
		}
		w.deployModel("mbnet", rt.Measurement())
		resp, err := rt.Handle(w.requestFor("mbnet", 5))
		if err != nil {
			t.Fatal(err)
		}
		got := w.decode("mbnet", resp)

		// Compute the expectation directly, outside any enclave.
		fw, err := inference.Lookup(fwName)
		if err != nil {
			t.Fatal(err)
		}
		m, err := model.NewFunctional("mbnet")
		if err != nil {
			t.Fatal(err)
		}
		m.Name = "mbnet"
		data, err := model.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		lm, err := fw.ModelLoad(data)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := fw.RuntimeInit(lm)
		if err != nil {
			t.Fatal(err)
		}
		in := tensor.New(m.InputShape...)
		for i := range in.Data() {
			in.Data()[i] = float32((i+5)%17) * 0.05
		}
		if err := dr.Exec(in); err != nil {
			t.Fatal(err)
		}
		want, err := dr.Output()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("%s: enclave output differs at %d", fwName, i)
			}
		}
		rt.Stop()
	}
}

func TestUnauthorizedUserDenied(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())

	// A stranger with their own request key but no grant.
	strangerKey := secure.KeyFromSeed("stranger")
	dial := keyservice.TCPDialer(w.ksAddr)
	stranger := keyservice.NewClient(dial, w.ca.PublicKey(), w.ksMeas, strangerKey)
	defer stranger.Close()
	if err := stranger.Register(); err != nil {
		t.Fatal(err)
	}
	kr := secure.KeyFromSeed("stranger-kr")
	if err := stranger.AddReqKey("mbnet", rt.Measurement(), kr); err != nil {
		t.Fatal(err)
	}
	payload, err := EncryptRequest(kr, "mbnet", inference.EncodeTensor(tensor.New(1, 16, 16, 3)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Handle(Request{UserID: stranger.ID(), ModelID: "mbnet", Payload: payload})
	if err == nil || !strings.Contains(err.Error(), "not authorized") {
		t.Fatalf("stranger served: %v", err)
	}
}

func TestWrongConfigurationEnclaveDenied(t *testing.T) {
	// The grant pins ES for concurrency 2; an enclave built with
	// concurrency 1 has a different measurement and must be refused keys.
	w := newWorld(t)
	granted := mustConfig(t, "tvm", "mbnet", 2)
	w.deployModel("mbnet", granted.Manifest().Measure())

	other := mustConfig(t, "tvm", "mbnet", 1)
	rt, err := New(other, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if _, err := rt.Handle(w.requestFor("mbnet", 1)); err == nil {
		t.Fatal("differently-configured enclave obtained keys")
	}
}

func TestTamperedModelRejected(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tflm", "dsnet", 1)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("dsnet", rt.Measurement())
	ct, err := w.store.Get(ModelBlobName("dsnet"))
	if err != nil {
		t.Fatal(err)
	}
	ct[len(ct)/2] ^= 1
	if err := w.store.Put(ModelBlobName("dsnet"), ct); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Handle(w.requestFor("dsnet", 1)); err == nil {
		t.Fatal("tampered model accepted")
	}
}

func TestTamperedRequestRejected(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	req := w.requestFor("mbnet", 1)
	req.Payload[len(req.Payload)-1] ^= 1
	if _, err := rt.Handle(req); err == nil {
		t.Fatal("tampered request accepted")
	}
}

func TestFixedModelPinning(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	cfg.FixedModel = "mbnet"
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	w.deployModel("dsnet", rt.Measurement())
	if _, err := rt.Handle(w.requestFor("mbnet", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Handle(w.requestFor("dsnet", 1)); err == nil {
		t.Fatal("pinned enclave served another model")
	}
}

func TestStrongIsolationMode(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	cfg.Concurrency = 1
	cfg.Sequential = true
	cfg.DisableKeyCache = true
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	if _, err := rt.Handle(w.requestFor("mbnet", 1)); err != nil {
		t.Fatal(err)
	}
	// Subsequent requests refetch keys, so they are warm, never hot.
	for i := 0; i < 3; i++ {
		resp, err := rt.Handle(w.requestFor("mbnet", i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind == Hot {
			t.Fatal("strong isolation produced a hot invocation")
		}
	}
	st := rt.Stats()
	if st.Hot != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSequentialRequiresConcurrencyOne(t *testing.T) {
	cfg := Config{Framework: "tvm", Concurrency: 4, Sequential: true, EnclaveMemoryBytes: 1 << 20}
	if err := cfg.Validate(); err == nil {
		t.Fatal("sequential with concurrency 4 accepted")
	}
}

func TestConcurrentHotRequests(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tflm", "mbnet", 4)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	if _, err := rt.Handle(w.requestFor("mbnet", 0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := rt.Handle(w.requestFor("mbnet", i))
			if err != nil {
				errs <- err
				return
			}
			if resp.Kind != Hot {
				errs <- fmt.Errorf("request %d: kind %v", i, resp.Kind)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Hot != 32 {
		t.Fatalf("stats %+v, want 32 hot", st)
	}
}

func TestConcurrentModelSwitching(t *testing.T) {
	// Interleaved requests for two models must all succeed and decrypt
	// correctly: the swap lock may thrash, but never corrupt state.
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "rsnet", 2)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	w.deployModel("dsnet", rt.Measurement())
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		modelID := "mbnet"
		if i%2 == 1 {
			modelID = "dsnet"
		}
		wg.Add(1)
		go func(modelID string, i int) {
			defer wg.Done()
			resp, err := rt.Handle(w.requestFor(modelID, i))
			if err != nil {
				errs <- fmt.Errorf("%s/%d: %w", modelID, i, err)
				return
			}
			out := w.decode(modelID, resp)
			var sum float64
			for _, v := range out.Data() {
				sum += float64(v)
			}
			if sum < 0.99 || sum > 1.01 {
				errs <- fmt.Errorf("%s/%d: output sum %v", modelID, i, sum)
			}
		}(modelID, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestModeledStagesCharged(t *testing.T) {
	w := newWorld(t)
	stages, err := costmodel.Stages(costmodel.SGX2, "tvm", "mbnet")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	cfg.ModeledStages = &stages
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())

	before := w.clock.TotalSlept()
	if _, err := rt.Handle(w.requestFor("mbnet", 1)); err != nil {
		t.Fatal(err)
	}
	coldCharged := w.clock.TotalSlept() - before
	// Cold ≥ enclave init + cold key fetch + model load + runtime init +
	// exec (attestation adds a little more).
	if coldCharged < stages.ColdPath() {
		t.Fatalf("cold charged %v, want >= %v", coldCharged, stages.ColdPath())
	}

	before = w.clock.TotalSlept()
	if _, err := rt.Handle(w.requestFor("mbnet", 2)); err != nil {
		t.Fatal(err)
	}
	hotCharged := w.clock.TotalSlept() - before
	if hotCharged != stages.HotPath() {
		t.Fatalf("hot charged %v, want %v", hotCharged, stages.HotPath())
	}
	if coldCharged < 10*hotCharged {
		t.Fatalf("cold/hot ratio %v/%v too small", coldCharged, hotCharged)
	}
}

func TestEnclaveTooSmallForModel(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	cfg.EnclaveMemoryBytes = 4096 // absurdly small
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	if _, err := rt.Handle(w.requestFor("mbnet", 1)); err == nil {
		t.Fatal("model accepted into undersized enclave")
	}
}

func TestMissingModelBlob(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	// Grant exists, but the blob is gone.
	req := w.requestFor("mbnet", 1)
	req.ModelID = "mbnet"
	st := w.store
	// Overwrite blob name by deploying grant for a phantom model id.
	if err := w.owner.AddModelKey("phantom", secure.KeyFromSeed("pk")); err != nil {
		t.Fatal(err)
	}
	if err := w.owner.GrantAccess("phantom", rt.Measurement(), w.user.ID()); err != nil {
		t.Fatal(err)
	}
	if err := w.user.AddReqKey("phantom", rt.Measurement(), secure.KeyFromSeed("rk")); err != nil {
		t.Fatal(err)
	}
	w.reqKeys["phantom"] = secure.KeyFromSeed("rk")
	payload, err := EncryptRequest(w.reqKeys["phantom"], "phantom", inference.EncodeTensor(tensor.New(1, 16, 16, 3)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Handle(Request{UserID: w.user.ID(), ModelID: "phantom", Payload: payload})
	if !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing blob: %v", err)
	}
	_ = st
	// After the failed load, a valid model still works (no corrupt state).
	if _, err := rt.Handle(w.requestFor("mbnet", 2)); err != nil {
		t.Fatalf("recovery after failed load: %v", err)
	}
}

func TestStopIsFinal(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	w.deployModel("mbnet", rt.Measurement())
	if _, err := rt.Handle(w.requestFor("mbnet", 1)); err != nil {
		t.Fatal(err)
	}
	rt.Stop()
	if _, err := rt.Handle(w.requestFor("mbnet", 2)); err == nil {
		t.Fatal("stopped runtime served a request")
	}
	if w.plat.Enclaves() != 0 {
		t.Fatalf("enclave leaked: %d", w.plat.Enclaves())
	}
}

func TestRequestValidation(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 1)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	if _, err := rt.Handle(Request{}); err == nil {
		t.Fatal("empty request accepted")
	}
}
