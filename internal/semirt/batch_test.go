package semirt

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestHandleBatchServesAllInOneEntry(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 2)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())

	reqs := []Request{
		w.requestFor("mbnet", 1),
		w.requestFor("mbnet", 2),
		w.requestFor("mbnet", 1),
	}
	results, err := rt.HandleBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results %d", len(results))
	}
	if results[0].Err != nil || results[0].Response.Kind != Cold {
		t.Fatalf("first %v %v", results[0].Err, results[0].Response.Kind)
	}
	for i, res := range results[1:] {
		if res.Err != nil || res.Response.Kind != Hot {
			t.Fatalf("item %d: %v %v", i+1, res.Err, res.Response.Kind)
		}
	}
	// Identical plaintexts produce identical outputs.
	a := w.decode("mbnet", results[0].Response)
	c := w.decode("mbnet", results[2].Response)
	for i := range a.Data() {
		if a.Data()[i] != c.Data()[i] {
			t.Fatal("same input gave different outputs in one batch")
		}
	}
	st := rt.Stats()
	if st.Cold != 1 || st.Hot != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHandleBatchIsolatesPerRequestFailures(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 2)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())

	bad := w.requestFor("mbnet", 3)
	bad.Payload[len(bad.Payload)/2] ^= 1
	reqs := []Request{w.requestFor("mbnet", 1), bad, w.requestFor("mbnet", 2)}
	results, err := rt.HandleBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good requests failed: %v %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "decrypt") {
		t.Fatalf("tampered request err %v", results[1].Err)
	}
}

func TestHandleBatchColdSurvivesFailedFirstRequest(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 2)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())

	// Fresh enclave, but the batch's first request is corrupt: the launch
	// must be attributed to the first successful request, not lost.
	bad := w.requestFor("mbnet", 1)
	bad.Payload[0] ^= 1
	results, err := rt.HandleBatch([]Request{bad, w.requestFor("mbnet", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("corrupt request succeeded")
	}
	if results[1].Err != nil || results[1].Response.Kind != Cold {
		t.Fatalf("second request %v %v, want cold", results[1].Err, results[1].Response.Kind)
	}
	if st := rt.Stats(); st.Cold != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHandleBatchEmpty(t *testing.T) {
	w := newWorld(t)
	rt, err := New(mustConfig(t, "tvm", "mbnet", 1), w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	results, err := rt.HandleBatch(nil)
	if err != nil || results != nil {
		t.Fatalf("empty batch: %v %v", results, err)
	}
}

func TestInstanceAdapterSingleAndBatch(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 2)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	w.deployModel("mbnet", rt.Measurement())
	inst := Instance{RT: rt}
	defer inst.Stop()

	// Single-request envelope: the original /run body.
	single, err := json.Marshal(w.requestFor("mbnet", 1))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := inst.Invoke(single)
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kind != Cold {
		t.Fatalf("kind %v", resp.Kind)
	}
	w.decode("mbnet", resp)

	// Batch envelope round trip, including a per-item failure.
	bad := w.requestFor("mbnet", 9)
	bad.Payload[0] ^= 1
	reqs := []Request{w.requestFor("mbnet", 2), bad}
	payload, err := EncodeBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = inst.Invoke(payload)
	if err != nil {
		t.Fatal(err)
	}
	results, err := DecodeBatchResponse(raw, len(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Response.Kind != Hot {
		t.Fatalf("batch item 0: %v %v", results[0].Err, results[0].Response.Kind)
	}
	w.decode("mbnet", results[0].Response)
	if results[1].Err == nil {
		t.Fatal("tampered item did not fail")
	}
	// Count mismatch is rejected.
	if _, err := DecodeBatchResponse(raw, 3); err == nil {
		t.Fatal("mismatched batch size accepted")
	}
}

func TestEncodeBatchEmptyRejected(t *testing.T) {
	if _, err := EncodeBatch(nil); err == nil {
		t.Fatal("empty batch encoded")
	}
}

// TestHandleBatchGroupsUsersIntoRuns: an interleaved two-user batch against
// the single-pair cache is served grouped by principal — one key fetch per
// user, not one per flip — while results stay in request order.
func TestHandleBatchGroupsUsersIntoRuns(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 2)
	cfg.KeyCacheSize = 1 // worst case: any flip refetches
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	alice := w.newUser("batch-alice")
	bob := w.newUser("batch-bob")
	w.grantUser(alice, "mbnet", rt.Measurement())
	w.grantUser(bob, "mbnet", rt.Measurement())

	// a, b, a, b: unsorted this costs 4 fetches on a single-pair cache;
	// grouped into runs it costs one per principal.
	owners := []*extraUser{alice, bob, alice, bob}
	reqs := make([]Request, len(owners))
	for i, u := range owners {
		reqs[i] = w.requestAs(u, "mbnet", i)
	}
	results, err := rt.HandleBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("member %d: %v", i, res.Err)
		}
		// Request order preserved: each response opens under its requester.
		if _, err := w.decodeAs(owners[i], "mbnet", res.Response); err != nil {
			t.Fatalf("member %d not sealed for its requester: %v", i, err)
		}
	}
	if st := rt.Stats(); st.KeyFetches != 2 {
		t.Fatalf("interleaved batch fetched keys %d times, want 2 (one per user run)", st.KeyFetches)
	}
}

// TestHandleBatchShedsLapsedDeadlines: a member whose deadline has passed is
// answered ErrDeadline without enclave work; the classification survives the
// wire round trip.
func TestHandleBatchShedsLapsedDeadlines(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 2)
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())

	fresh := w.requestFor("mbnet", 1)
	lapsed := w.requestFor("mbnet", 2)
	lapsed.Deadline = time.Now().Add(-time.Second)
	live := w.requestFor("mbnet", 3)
	live.Deadline = time.Now().Add(time.Hour)
	results, err := rt.HandleBatch([]Request{fresh, lapsed, live})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[1].Err, ErrDeadline) {
		t.Fatalf("lapsed member err %v, want ErrDeadline", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("live members failed: %v %v", results[0].Err, results[2].Err)
	}

	// The typed error survives EncodeBatchResults → DecodeBatchResponse.
	raw, err := EncodeBatchResults(results)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeBatchResponse(raw, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(decoded[1].Err, ErrDeadline) {
		t.Fatalf("wire round trip lost ErrDeadline: %v", decoded[1].Err)
	}
}
