package semirt

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"sesemi/internal/obs"
	"sesemi/internal/vclock"
)

// Continuous batching: instead of forming a batch once and running it to
// completion (HandleBatch), the gateway opens a session pinned to one
// sandbox and drives it with step frames. Each frame is ONE enclave entry
// that advances every resident member by one execution step; new requests
// join between frames (mid-batch admission) and members that have exhausted
// their per-session step budget while others wait are evicted at the step
// boundary with ErrPreempted, carrying their progress so a later session
// resumes them without re-paying executed steps. This closes the
// head-of-line-blocking gap of form-then-fire: a short request batched after
// a long one completes at its own step, not at the batch's.

// ErrPreempted reports that a session member was evicted at a step boundary
// to let waiting requests in. The result carries StepsDone; the gateway
// re-queues the member with its original enqueue time and the progress made,
// so re-entry keeps FIFO/DRR fairness and resumption pays only the remaining
// steps. DecodeStepResponse restores it across the wire, so errors.Is works
// on both sides of a remote activation.
var ErrPreempted = errors.New("semirt: preempted")

// maxStepSessions bounds live sessions per runtime; a gateway drives at most
// Config.MaxInFlight sessions per queue, so hitting this means leaked
// sessions (a driver that stopped stepping without sending Close).
const maxStepSessions = 64

// StepJoin admits one request into a session. The caller assigns ID (unique
// within the session); results refer back to it.
type StepJoin struct {
	ID  int     `json:"id"`
	Req Request `json:"req"`
}

// StepFrame is one scheduling step of a continuous session, delivered as an
// activation payload (EncodeStepFrame). Frames of one session MUST be sent
// sequentially by a single driver — the session protocol has no internal
// ordering.
type StepFrame struct {
	// Session names the session; the first frame for an unknown id opens it.
	Session string `json:"session"`
	// Join holds requests admitted at this step boundary.
	Join []StepJoin `json:"join,omitempty"`
	// Budget is the per-session step allowance: a member that has executed
	// Budget steps in this session is preempted at the next boundary while
	// Waiting > 0. 0 disables preemption. Members always get at least one
	// step before becoming preemptable.
	Budget int `json:"budget,omitempty"`
	// Waiting is the gateway's queue backlog behind this session; preemption
	// only fires when someone is actually waiting.
	Waiting int `json:"waiting,omitempty"`
	// Close terminates the session: any resident members are returned as
	// preempted and the session state is dropped. Join is ignored.
	Close bool `json:"close,omitempty"`
}

// StepResult is one member's outcome, reported at the step boundary where it
// completed, failed, was shed, or was preempted.
type StepResult struct {
	// ID is the StepJoin id the result answers.
	ID int
	// Response is valid when Err is nil.
	Response Response
	// Err is the member's failure: ErrPreempted (resumable — see StepsDone),
	// ErrDeadline, or a per-request execution error.
	Err error
	// Preempted marks a resumable eviction (Err == ErrPreempted).
	Preempted bool
	// StepsDone is the member's total progress, meaningful when Preempted:
	// re-submit with Request.StepsDone set to it to resume.
	StepsDone int
}

// StepResponse is the outcome of one frame.
type StepResponse struct {
	// Done holds members that left the session at this step.
	Done []StepResult
	// Active is the number of members still resident after the step.
	Active int
	// Stages holds the frame's measured stage durations (cold_start on the
	// opening frame, key_fetch, ecall) when any resident member asked for
	// tracing — the continuous-batching counterpart of the batch envelope's
	// stage report.
	Stages []obs.StageDur
}

// stepSession is a live continuous batch: the members resident in the
// enclave between frames. Exactly one driver goroutine sends its frames, so
// the struct itself needs no lock (Runtime.stepMu covers only map access).
type stepSession struct {
	members []*stepMember
	// coldPending attributes the enclave launch to the session's first
	// successful completion (same rule as HandleBatch).
	coldPending bool
	// traced marks a session with at least one Request.Trace member: frames
	// measure their stage durations until the session closes.
	traced bool
	// launchDur is the enclave launch time of the opening frame, reported
	// once on the first traced frame.
	launchDur time.Duration
}

// stepMember is one resident request. done counts executed steps across all
// sessions (resumption carries it in via Request.StepsDone); inSess counts
// only this session's steps — the preemption budget resets on re-admission.
type stepMember struct {
	id           int
	req          Request
	done, inSess int
}

// HandleStep executes one scheduling step of a continuous session: admit
// f.Join, then advance every resident member by one execution step inside a
// single enclave entry. Members finish individually — the final step runs
// the full EC_MODEL_INF (keys, model, decrypt, exec, seal) while
// intermediate steps charge one execution unit — and over-budget members are
// evicted with ErrPreempted before their step when the queue is backlogged.
// Only instance-level failures fail the call as a whole.
func (r *Runtime) HandleStep(f StepFrame) (StepResponse, error) {
	if f.Session == "" {
		return StepResponse{}, errors.New("semirt: step frame missing session id")
	}
	joinTraced := false
	for i := range f.Join {
		if f.Join[i].Req.Trace {
			joinTraced = true
			break
		}
	}
	var clk vclock.Clock
	var t0 time.Time
	if joinTraced {
		clk = r.clock()
		t0 = clk.Now()
	}
	launched, err := r.ensureEnclave()
	if err != nil {
		return StepResponse{}, err
	}
	var launchDur time.Duration
	if joinTraced && launched {
		launchDur = clk.Now().Sub(t0)
	}
	if r.deps.Faults.SandboxCrash() {
		return StepResponse{}, ErrSandboxCrash
	}
	r.mu.Lock()
	enc, prog := r.enc, r.prog
	r.mu.Unlock()

	r.stepMu.Lock()
	if r.stepSessions == nil {
		r.stepSessions = map[string]*stepSession{}
	}
	sess := r.stepSessions[f.Session]
	if sess == nil {
		if f.Close {
			// Closing an unknown (or already-closed) session is a no-op.
			r.stepMu.Unlock()
			return StepResponse{}, nil
		}
		if len(r.stepSessions) >= maxStepSessions {
			r.stepMu.Unlock()
			return StepResponse{}, errors.New("semirt: too many live step sessions")
		}
		sess = &stepSession{coldPending: launched}
		r.stepSessions[f.Session] = sess
	}
	if joinTraced {
		sess.traced = true
		if launchDur > 0 {
			sess.launchDur = launchDur
		}
	}
	traced := sess.traced
	if f.Close {
		delete(r.stepSessions, f.Session)
	}
	r.stepMu.Unlock()
	if traced && clk == nil {
		clk = r.clock()
	}

	if f.Close {
		// Defensive drain: a normal driver closes an empty session, but if
		// members remain they are returned as resumable preemptions rather
		// than silently dropped.
		var resp StepResponse
		for _, m := range sess.members {
			r.preempted.Add(1)
			resp.Done = append(resp.Done, StepResult{
				ID: m.id, Err: ErrPreempted, Preempted: true, StepsDone: m.done})
		}
		if sess.coldPending {
			// The launch happened and was paid for even though no member
			// completed: keep the cold counter honest (HandleBatch rule).
			r.cold.Add(1)
		}
		sess.members = nil
		return resp, nil
	}

	var resp StepResponse
	var keyFetch time.Duration
	var ec0 time.Time
	if traced {
		ec0 = clk.Now()
	}
	err = enc.ECall(func() error {
		now := time.Now()
		for _, j := range f.Join {
			req := j.Req
			if !req.Deadline.IsZero() && !now.Before(req.Deadline) {
				resp.Done = append(resp.Done, StepResult{ID: j.ID, Err: ErrDeadline})
				continue
			}
			sess.members = append(sess.members, &stepMember{id: j.ID, req: req, done: req.StepsDone})
		}
		keep := sess.members[:0]
		for _, m := range sess.members {
			total := m.req.ExecSteps
			if total < 1 {
				total = 1
			}
			if !m.req.Deadline.IsZero() && !now.Before(m.req.Deadline) {
				// Deadline shedding continues between steps, not just at
				// batch formation.
				resp.Done = append(resp.Done, StepResult{ID: m.id, Err: ErrDeadline})
				continue
			}
			if total-m.done > 1 && f.Budget > 0 && m.inSess >= f.Budget && f.Waiting > 0 {
				// Over budget with a backlog behind the session: evict at the
				// boundary. A member on its final step always finishes —
				// completing is cheaper than a preempt/resume round trip.
				resp.Done = append(resp.Done, StepResult{
					ID: m.id, Err: ErrPreempted, Preempted: true, StepsDone: m.done})
				continue
			}
			if total-m.done > 1 {
				// Intermediate step: one execution unit. Key and crypto work
				// belong to the final step's full EC_MODEL_INF.
				if r.cfg.ModeledStages != nil {
					enc.ChargeExec(r.cfg.ModeledStages.ModelExec)
				}
				m.done++
				m.inSess++
				keep = append(keep, m)
				continue
			}
			// Final step: the full pipeline with exactly one step left to pay.
			req := m.req
			req.StepsDone = total - 1
			out, kind, err := prog.modelInf(req)
			keyFetch += kind.keyFetchDur
			if err != nil {
				resp.Done = append(resp.Done, StepResult{ID: m.id, Err: err})
				continue
			}
			path := Hot
			switch {
			case sess.coldPending:
				path = Cold
			case kind.loadedModel || kind.fetchedKeys:
				path = Warm
			}
			sess.coldPending = false
			resp.Done = append(resp.Done, StepResult{ID: m.id, Response: Response{Payload: out, Kind: path}})
		}
		sess.members = keep
		resp.Active = len(sess.members)
		return nil
	})
	if err != nil {
		return StepResponse{}, err
	}
	if traced {
		if d := sess.launchDur; d > 0 {
			resp.Stages = append(resp.Stages, obs.StageDur{Stage: obs.StageColdStart, Dur: d})
			sess.launchDur = 0
		}
		if keyFetch > 0 {
			resp.Stages = append(resp.Stages, obs.StageDur{Stage: obs.StageKeyFetch, Dur: keyFetch})
		}
		resp.Stages = append(resp.Stages, obs.StageDur{Stage: obs.StageECall, Dur: clk.Now().Sub(ec0)})
	}
	r.sessionSteps.Add(1)
	for _, d := range resp.Done {
		switch {
		case d.Preempted:
			r.preempted.Add(1)
		case d.Err != nil:
		case d.Response.Kind == Cold:
			r.cold.Add(1)
		case d.Response.Kind == Warm:
			r.warm.Add(1)
		default:
			r.hot.Add(1)
		}
	}
	return resp, nil
}

// wireStepResult is one member outcome on the wire.
type wireStepResult struct {
	ID        int            `json:"id"`
	Payload   []byte         `json:"payload,omitempty"`
	Kind      InvocationKind `json:"kind"`
	Error     string         `json:"error,omitempty"`
	Preempted bool           `json:"preempted,omitempty"`
	StepsDone int            `json:"steps_done,omitempty"`
}

// wireStepResponse is the activation response for a step frame.
type wireStepResponse struct {
	Step   []wireStepResult `json:"step"`
	Active int              `json:"active"`
	Stages []obs.StageDur   `json:"stages,omitempty"`
}

// EncodeStepFrame serializes a step frame as an activation payload; Instance
// recognizes it next to single-request and batch envelopes.
func EncodeStepFrame(f StepFrame) ([]byte, error) {
	if f.Session == "" {
		return nil, errors.New("semirt: step frame missing session id")
	}
	return json.Marshal(wireEnvelope{Step: &f})
}

// EncodeStepResponse serializes a frame's outcome — the inverse of
// DecodeStepResponse.
func EncodeStepResponse(resp StepResponse) ([]byte, error) {
	wr := wireStepResponse{Step: make([]wireStepResult, len(resp.Done)), Active: resp.Active, Stages: resp.Stages}
	for i, d := range resp.Done {
		if d.Err != nil {
			wr.Step[i] = wireStepResult{ID: d.ID, Error: d.Err.Error(),
				Preempted: d.Preempted, StepsDone: d.StepsDone}
			continue
		}
		wr.Step[i] = wireStepResult{ID: d.ID, Payload: d.Response.Payload, Kind: d.Response.Kind}
	}
	return json.Marshal(wr)
}

// DecodeStepResponse parses a step activation response, restoring the typed
// ErrPreempted / ErrDeadline sentinels so the gateway can errors.Is-classify
// outcomes of a remote frame.
func DecodeStepResponse(raw []byte) (StepResponse, error) {
	var wr wireStepResponse
	if err := json.Unmarshal(raw, &wr); err != nil {
		return StepResponse{}, fmt.Errorf("semirt: step response: %w", err)
	}
	resp := StepResponse{Active: wr.Active, Stages: wr.Stages}
	for _, item := range wr.Step {
		d := StepResult{ID: item.ID, Preempted: item.Preempted, StepsDone: item.StepsDone}
		if item.Error != "" {
			d.Err = wireError(item.Error)
		} else {
			d.Response = Response{Payload: item.Payload, Kind: item.Kind}
		}
		resp.Done = append(resp.Done, d)
	}
	return resp, nil
}
