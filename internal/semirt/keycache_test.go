package semirt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sesemi/internal/secure"
)

func pairFor(seed string) (secure.Key, secure.Key) {
	return secure.KeyFromSeed("km-" + seed), secure.KeyFromSeed("kr-" + seed)
}

// TestKeyShardLRUEvictionOrder pins the shard-level LRU discipline: a touch
// protects an entry, inserts beyond capacity evict the least recently used.
func TestKeyShardLRUEvictionOrder(t *testing.T) {
	sh := &keyShard{cap: 2, entries: map[string]keyPair{}, inflight: map[string]*keyFetch{}}
	kmA, krA := pairFor("a")
	sh.insert("a", keyPair{km: kmA, kr: krA})
	sh.insert("b", keyPair{})
	sh.touch("a") // a is now most recent; b is the LRU victim
	sh.insert("c", keyPair{})
	if _, ok := sh.entries["b"]; ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if _, ok := sh.entries["a"]; !ok {
		t.Fatal("touched entry a was evicted")
	}
	if _, ok := sh.entries["c"]; !ok {
		t.Fatal("fresh entry c missing")
	}
	// Re-inserting a resident tag refreshes it without growing the shard.
	sh.insert("c", keyPair{km: kmA})
	if len(sh.entries) != 2 || len(sh.order) != 2 {
		t.Fatalf("entries %d order %d, want 2", len(sh.entries), len(sh.order))
	}
}

// TestKeyCacheBounded pins the cache-level capacity bound across shards.
func TestKeyCacheBounded(t *testing.T) {
	c := newKeyCache(8)
	for i := 0; i < 100; i++ {
		tag := fmt.Sprintf("tag-%d", i)
		_, _, _, err := c.get(tag, func() (secure.Key, secure.Key, error) {
			km, kr := pairFor(tag)
			return km, kr, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := c.len(); n > 8 {
		t.Fatalf("cache holds %d entries, capacity 8", n)
	}
}

// TestKeyCacheSingleflight: N concurrent misses on one tag perform exactly
// one fetch; exactly one caller reports fetched (the hot/warm attribution).
func TestKeyCacheSingleflight(t *testing.T) {
	c := newKeyCache(4)
	var calls atomic.Int32
	var fetchedCount atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	const n = 16
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			km, kr, fetched, err := c.get("shared", func() (secure.Key, secure.Key, error) {
				calls.Add(1)
				<-gate // hold the fetch open until every waiter has queued
				a, b := pairFor("shared")
				return a, b, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if fetched {
				fetchedCount.Add(1)
			}
			wantKM, wantKR := pairFor("shared")
			if km != wantKM || kr != wantKR {
				t.Error("waiter observed wrong keys")
			}
		}()
	}
	// Let the leader start and the waiters pile onto its inflight entry,
	// then release. (Timing-lenient: even if some goroutines arrive after
	// the insert, they hit the resident entry — never a second fetch.)
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d fetches for one tag, want 1 (singleflight)", got)
	}
	if got := fetchedCount.Load(); got != 1 {
		t.Fatalf("%d callers reported fetched, want exactly the leader", got)
	}
}

// TestKeyCacheFetchErrorNotCached: a failed fetch is delivered to its
// waiters but not cached — the next get retries.
func TestKeyCacheFetchErrorNotCached(t *testing.T) {
	c := newKeyCache(4)
	boom := errors.New("boom")
	_, _, _, err := c.get("t", func() (secure.Key, secure.Key, error) {
		return secure.Key{}, secure.Key{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if c.resident("t") {
		t.Fatal("error cached")
	}
	km, kr, fetched, err := c.get("t", func() (secure.Key, secure.Key, error) {
		a, b := pairFor("t")
		return a, b, nil
	})
	wantKM, wantKR := pairFor("t")
	if err != nil || !fetched || km != wantKM || kr != wantKR {
		t.Fatalf("retry: fetched=%v err=%v", fetched, err)
	}
}

// TestKeyCacheSizeOneEquivalence: KeyCacheSize 1 reproduces the historical
// single-pair behavior — two alternating users refetch on every flip (warm,
// never hot) — while the default LRU serves both hot after one fetch each.
func TestKeyCacheSizeOneEquivalence(t *testing.T) {
	w := newWorld(t)
	run := func(cacheSize int) (stats Stats, kinds []InvocationKind) {
		cfg := mustConfig(t, "tvm", "mbnet", 2)
		cfg.KeyCacheSize = cacheSize
		rt, err := New(cfg, w.deps())
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Stop()
		w.deployModel(fmt.Sprintf("mbnet-c%d", cacheSize), rt.Measurement())
		modelID := fmt.Sprintf("mbnet-c%d", cacheSize)
		alice := w.newUser(fmt.Sprintf("alice-%d", cacheSize))
		bob := w.newUser(fmt.Sprintf("bob-%d", cacheSize))
		w.grantUser(alice, modelID, rt.Measurement())
		w.grantUser(bob, modelID, rt.Measurement())
		for i := 0; i < 6; i++ {
			u := alice
			if i%2 == 1 {
				u = bob
			}
			resp, err := rt.Handle(w.requestAs(u, modelID, i))
			if err != nil {
				t.Fatal(err)
			}
			kinds = append(kinds, resp.Kind)
		}
		return rt.Stats(), kinds
	}

	stats1, kinds1 := run(1)
	// Single pair: every request provisions (6 fetches), so none after the
	// model load is ever hot.
	if stats1.KeyFetches != 6 {
		t.Fatalf("single-pair fetched %d times, want 6 (one per flip)", stats1.KeyFetches)
	}
	for i, k := range kinds1 {
		if k == Hot {
			t.Fatalf("single-pair request %d classified hot", i)
		}
	}

	statsN, kindsN := run(0) // default LRU
	// LRU: one fetch per principal, everything else hot.
	if statsN.KeyFetches != 2 {
		t.Fatalf("LRU fetched %d times, want 2 (one per user)", statsN.KeyFetches)
	}
	for i, k := range kindsN[2:] {
		if k != Hot {
			t.Fatalf("LRU request %d classified %v, want hot", i+2, k)
		}
	}
}

// TestConcurrentMultiUserBatchesKeyIsolation is the -race property test:
// concurrent user-diverse batches against a cache smaller than the user
// population (maximum eviction churn) must always seal every response under
// its own requester's keys — a decrypt under the right key that fails, or
// succeeds under another user's key, is a key-isolation break.
func TestConcurrentMultiUserBatchesKeyIsolation(t *testing.T) {
	w := newWorld(t)
	cfg := mustConfig(t, "tvm", "mbnet", 4)
	cfg.KeyCacheSize = 2 // smaller than the population: constant eviction
	rt, err := New(cfg, w.deps())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())

	const nUsers = 5
	users := make([]*extraUser, nUsers)
	for i := range users {
		users[i] = w.newUser(fmt.Sprintf("race-user-%d", i))
		w.grantUser(users[i], "mbnet", rt.Measurement())
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				// A user-diverse batch: every member a different principal,
				// phase-shifted per goroutine so evictions interleave.
				var reqs []Request
				var owners []*extraUser
				for m := 0; m < 4; m++ {
					u := users[(g+round+m)%nUsers]
					owners = append(owners, u)
					reqs = append(reqs, w.requestAs(u, "mbnet", g*100+round*10+m))
				}
				results, err := rt.HandleBatch(reqs)
				if err != nil {
					errs <- err
					return
				}
				for i, res := range results {
					if res.Err != nil {
						errs <- fmt.Errorf("member %d: %w", i, res.Err)
						continue
					}
					if _, err := w.decodeAs(owners[i], "mbnet", res.Response); err != nil {
						errs <- fmt.Errorf("member %d sealed under wrong keys: %w", i, err)
					}
					// Cross-check: another principal's key must NOT open it.
					other := owners[(i+1)%len(owners)]
					if other != owners[i] {
						if _, err := w.decodeAs(other, "mbnet", res.Response); err == nil {
							errs <- fmt.Errorf("member %d readable by another user", i)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
