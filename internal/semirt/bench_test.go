package semirt

import (
	"sync/atomic"
	"testing"
)

// BenchmarkHotPath measures the live hot path end to end: request
// decryption, real tensor inference on the functional MobileNet, result
// encryption — the work a warm SeSeMI instance does per request once the
// enclave, keys and model are cached.
func BenchmarkHotPath(b *testing.B) {
	w := newWorld(b)
	cfg, err := DefaultConfig("tvm", "mbnet", 4)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := New(cfg, w.deps())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	req := w.requestFor("mbnet", 1)
	if _, err := rt.Handle(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Handle(req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := rt.Stats()
	if st.Hot != uint64(b.N) {
		b.Fatalf("expected %d hot invocations, got %d", b.N, st.Hot)
	}
}

// BenchmarkHotPathParallel drives the same instance from many goroutines,
// bounded by the enclave's 4 TCSs.
func BenchmarkHotPathParallel(b *testing.B) {
	w := newWorld(b)
	cfg, err := DefaultConfig("tflm", "mbnet", 4)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := New(cfg, w.deps())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	w.deployModel("mbnet", rt.Measurement())
	req := w.requestFor("mbnet", 1)
	if _, err := rt.Handle(req); err != nil {
		b.Fatal(err)
	}
	var served atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := rt.Handle(req); err != nil {
				b.Fatal(err)
			}
			served.Add(1)
		}
	})
}
