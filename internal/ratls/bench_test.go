package ratls

import (
	"net"
	"testing"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/vclock"
)

// BenchmarkHandshake measures the attested-channel establishment cost
// (X25519 + quote generation + ECDSA verification), the cryptographic core
// of the cold key fetch.
func BenchmarkHandshake(b *testing.B) {
	ca, err := attest.NewCA()
	if err != nil {
		b.Fatal(err)
	}
	key, err := ca.Provision("bench-node")
	if err != nil {
		b.Fatal(err)
	}
	p := enclave.NewPlatform(costmodel.SGX2, vclock.Real{Scale: 0}, key)
	enc, err := p.Launch(enclave.Manifest{
		Name: "b", CodeHash: enclave.CodeIdentity("bench"), TCSCount: 2, MemoryBytes: 1 << 20,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer enc.Destroy()
	pol := &attest.Policy{CAPublicKey: ca.PublicKey(), Allowed: []attest.Measurement{enc.Measurement()}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cEnd, sEnd := net.Pipe()
		done := make(chan error, 1)
		go func() {
			_, err := Server(sEnd, Config{Quoter: enc})
			done <- err
		}()
		if _, err := Client(cEnd, Config{PeerPolicy: pol}); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		cEnd.Close()
		sEnd.Close()
	}
}

// BenchmarkRecordRoundTrip measures steady-state record encryption over an
// established channel.
func BenchmarkRecordRoundTrip(b *testing.B) {
	cEnd, sEnd := net.Pipe()
	defer cEnd.Close()
	defer sEnd.Close()
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Server(sEnd, Config{})
		ch <- res{c, err}
	}()
	cc, err := Client(cEnd, Config{})
	if err != nil {
		b.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		b.Fatal(sr.err)
	}
	go func() {
		for {
			msg, err := sr.c.Recv()
			if err != nil {
				return
			}
			if err := sr.c.Send(msg); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, 4096)
	b.SetBytes(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cc.Send(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := cc.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
