// Package ratls implements attested secure channels, the stand-in for the
// RA-TLS integration ([29],[58]) the paper uses between clients and
// KeyService and between KeyService and SeMIRT enclaves.
//
// The handshake is a two-message ephemeral X25519 exchange in which either
// or both sides attach an attestation quote whose report data binds the
// quote to the channel key (SHA-256 of the side's ephemeral public key), so
// a quote cannot be cut-and-pasted onto a different connection. Application
// records are protected with AES-256-GCM under direction-separated keys
// derived via HKDF from the shared secret and the handshake transcript.
//
// Verification of the peer quote happens "inside" the caller — for enclave
// endpoints that means inside the enclave program, preserving the paper's
// property that the secure channel terminates in the TCB.
package ratls

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"sesemi/internal/attest"
)

// Quoter produces attestation quotes binding report data; *enclave.Enclave
// implements it.
type Quoter interface {
	Quote(reportData []byte) (attest.Quote, error)
}

// Config controls one side of the handshake.
type Config struct {
	// Quoter attests this side. Nil means this side is unattested (ordinary
	// client code outside any enclave).
	Quoter Quoter
	// PeerPolicy validates the peer's quote. Nil skips peer validation
	// (only sensible when the peer is an ordinary client).
	PeerPolicy *attest.Policy
	// RequirePeerQuote rejects peers that present no quote even when
	// PeerPolicy is nil.
	RequirePeerQuote bool
}

// Conn is an established attested channel. It is NOT safe for concurrent
// use by multiple goroutines on the same direction.
type Conn struct {
	rw         io.ReadWriter
	send, recv cipher.AEAD
	sendSeq    uint64
	recvSeq    uint64
	peerQuote  *attest.Quote
}

// Handshake errors.
var (
	ErrNoQuote      = errors.New("ratls: peer presented no quote")
	ErrQuoteBinding = errors.New("ratls: quote not bound to channel key")
)

// maxRecord bounds record and handshake message sizes (models + margin).
const maxRecord = 512 << 20

type helloMsg struct {
	Pub   []byte        `json:"pub"`
	Quote *attest.Quote `json:"quote,omitempty"`
}

// Client performs the initiator side of the handshake.
func Client(rw io.ReadWriter, cfg Config) (*Conn, error) {
	return handshake(rw, cfg, true)
}

// Server performs the responder side of the handshake.
func Server(rw io.ReadWriter, cfg Config) (*Conn, error) {
	return handshake(rw, cfg, false)
}

func handshake(rw io.ReadWriter, cfg Config, initiator bool) (*Conn, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("ratls: keygen: %w", err)
	}
	myHello, err := buildHello(priv, cfg.Quoter)
	if err != nil {
		return nil, err
	}
	var peerRaw, myRaw []byte
	myRaw, err = json.Marshal(myHello)
	if err != nil {
		return nil, err
	}
	if initiator {
		if err := writeFrame(rw, myRaw); err != nil {
			return nil, err
		}
		peerRaw, err = readFrame(rw)
		if err != nil {
			return nil, err
		}
	} else {
		peerRaw, err = readFrame(rw)
		if err != nil {
			return nil, err
		}
		if err := writeFrame(rw, myRaw); err != nil {
			return nil, err
		}
	}
	var peerHello helloMsg
	if err := json.Unmarshal(peerRaw, &peerHello); err != nil {
		return nil, fmt.Errorf("ratls: peer hello: %w", err)
	}
	peerPub, err := ecdh.X25519().NewPublicKey(peerHello.Pub)
	if err != nil {
		return nil, fmt.Errorf("ratls: peer public key: %w", err)
	}
	if err := checkPeerQuote(cfg, peerHello); err != nil {
		return nil, err
	}
	secret, err := priv.ECDH(peerPub)
	if err != nil {
		return nil, fmt.Errorf("ratls: ecdh: %w", err)
	}
	// Transcript binds key derivation to both hellos in initiator-first
	// order so both sides derive identical keys.
	tr := sha256.New()
	if initiator {
		tr.Write(myRaw)
		tr.Write(peerRaw)
	} else {
		tr.Write(peerRaw)
		tr.Write(myRaw)
	}
	transcript := tr.Sum(nil)
	i2r, err := deriveAEAD(secret, transcript, "initiator->responder")
	if err != nil {
		return nil, err
	}
	r2i, err := deriveAEAD(secret, transcript, "responder->initiator")
	if err != nil {
		return nil, err
	}
	c := &Conn{rw: rw}
	if initiator {
		c.send, c.recv = i2r, r2i
	} else {
		c.send, c.recv = r2i, i2r
	}
	c.peerQuote = peerHello.Quote
	return c, nil
}

func buildHello(priv *ecdh.PrivateKey, q Quoter) (helloMsg, error) {
	hello := helloMsg{Pub: priv.PublicKey().Bytes()}
	if q != nil {
		quote, err := q.Quote(channelBinding(hello.Pub))
		if err != nil {
			return helloMsg{}, fmt.Errorf("ratls: quote: %w", err)
		}
		hello.Quote = &quote
	}
	return hello, nil
}

func checkPeerQuote(cfg Config, peer helloMsg) error {
	if peer.Quote == nil {
		if cfg.RequirePeerQuote || cfg.PeerPolicy != nil {
			return ErrNoQuote
		}
		return nil
	}
	if cfg.PeerPolicy == nil {
		return nil
	}
	if err := cfg.PeerPolicy.Check(*peer.Quote, channelBinding(peer.Pub)); err != nil {
		if errors.Is(err, attest.ErrBadReportData) {
			return ErrQuoteBinding
		}
		return err
	}
	return nil
}

// channelBinding computes the report data binding a quote to a channel key.
func channelBinding(pub []byte) []byte {
	sum := sha256.Sum256(append([]byte("sesemi-ratls-binding:"), pub...))
	return sum[:]
}

// deriveAEAD derives a direction key via HKDF-SHA256 and returns its GCM.
func deriveAEAD(secret, transcript []byte, label string) (cipher.AEAD, error) {
	prk := hmac.New(sha256.New, []byte("sesemi-ratls-salt"))
	prk.Write(secret)
	k := hmac.New(sha256.New, prk.Sum(nil))
	k.Write(transcript)
	k.Write([]byte(label))
	k.Write([]byte{1})
	key := k.Sum(nil)
	block, err := aes.NewCipher(key[:32])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// PeerQuote returns the quote the peer presented, or nil.
func (c *Conn) PeerQuote() *attest.Quote { return c.peerQuote }

// Send encrypts and writes one message.
func (c *Conn) Send(msg []byte) error {
	nonce := make([]byte, c.send.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], c.sendSeq)
	c.sendSeq++
	ct := c.send.Seal(nil, nonce, msg, nil)
	return writeFrame(c.rw, ct)
}

// Recv reads and decrypts one message. Replayed, reordered or tampered
// records fail authentication because the nonce is the record sequence
// number.
func (c *Conn) Recv() ([]byte, error) {
	ct, err := readFrame(c.rw)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, c.recv.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], c.recvSeq)
	c.recvSeq++
	pt, err := c.recv.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("ratls: record authentication failed: %w", err)
	}
	return pt, nil
}

// SendJSON marshals v and sends it as one record.
func (c *Conn) SendJSON(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return c.Send(data)
}

// RecvJSON receives one record and unmarshals it into v.
func (c *Conn) RecvJSON(v any) error {
	data, err := c.Recv()
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("ratls: record too large: %d", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxRecord {
		return nil, fmt.Errorf("ratls: oversized frame: %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
