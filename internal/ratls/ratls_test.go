package ratls

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"encoding/json"
	"errors"
	"net"
	"testing"

	"sesemi/internal/attest"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/vclock"
)

// testEnclave builds a live software enclave for quoting.
func testEnclave(t *testing.T, ca *attest.CA, program string) *enclave.Enclave {
	t.Helper()
	key, err := ca.Provision("node-" + program)
	if err != nil {
		t.Fatal(err)
	}
	p := enclave.NewPlatform(costmodel.SGX2, vclock.NewManual(), key)
	e, err := p.Launch(enclave.Manifest{
		Name:        program,
		CodeHash:    enclave.CodeIdentity(program),
		TCSCount:    2,
		MemoryBytes: 16 << 20,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Destroy)
	return e
}

// pipePair runs client and server handshakes over an in-memory pipe.
func pipePair(t *testing.T, ccfg, scfg Config) (*Conn, *Conn, error, error) {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	t.Cleanup(func() { cEnd.Close(); sEnd.Close() })
	type res struct {
		c   *Conn
		err error
	}
	sCh := make(chan res, 1)
	go func() {
		c, err := Server(sEnd, scfg)
		sCh <- res{c, err}
	}()
	cc, cErr := Client(cEnd, ccfg)
	sr := <-sCh
	return cc, sr.c, cErr, sr.err
}

func TestHandshakeAndEcho(t *testing.T) {
	ca, err := attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	enc := testEnclave(t, ca, "keyservice-v1")
	pol := &attest.Policy{CAPublicKey: ca.PublicKey(), Allowed: []attest.Measurement{enc.Measurement()}}
	cc, sc, cErr, sErr := pipePair(t, Config{PeerPolicy: pol}, Config{Quoter: enc})
	if cErr != nil || sErr != nil {
		t.Fatalf("handshake: client %v server %v", cErr, sErr)
	}
	msg := []byte("register-identity-key")
	done := make(chan error, 1)
	go func() {
		got, err := sc.Recv()
		if err != nil {
			done <- err
			return
		}
		if !bytes.Equal(got, msg) {
			done <- errors.New("message corrupted")
			return
		}
		done <- sc.Send(append([]byte("ack:"), got...))
	}()
	if err := cc.Send(msg); err != nil {
		t.Fatal(err)
	}
	reply, err := cc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(reply) != "ack:register-identity-key" {
		t.Fatalf("reply %q", reply)
	}
	if cc.PeerQuote() == nil {
		t.Fatal("client lost server quote")
	}
	if sc.PeerQuote() != nil {
		t.Fatal("server fabricated client quote")
	}
}

func TestClientRejectsWrongMeasurement(t *testing.T) {
	ca, err := attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	evil := testEnclave(t, ca, "evil-keyservice")
	expected := testEnclave(t, ca, "keyservice-v1")
	pol := &attest.Policy{CAPublicKey: ca.PublicKey(), Allowed: []attest.Measurement{expected.Measurement()}}
	_, _, cErr, _ := pipePair(t, Config{PeerPolicy: pol}, Config{Quoter: evil})
	if cErr == nil {
		t.Fatal("client accepted wrong enclave identity")
	}
}

func TestServerRequiresClientQuoteForMutual(t *testing.T) {
	ca, err := attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	ks := testEnclave(t, ca, "keyservice-v1")
	_, _, _, sErr := pipePair(t,
		Config{}, // unattested client
		Config{Quoter: ks, RequirePeerQuote: true})
	if !errors.Is(sErr, ErrNoQuote) {
		t.Fatalf("server error %v, want ErrNoQuote", sErr)
	}
}

func TestMutualAttestation(t *testing.T) {
	ca, err := attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	ks := testEnclave(t, ca, "keyservice-v1")
	rt := testEnclave(t, ca, "semirt-v1")
	ksPol := &attest.Policy{CAPublicKey: ca.PublicKey(), Allowed: []attest.Measurement{ks.Measurement()}}
	rtPol := &attest.Policy{CAPublicKey: ca.PublicKey(), Allowed: []attest.Measurement{rt.Measurement()}}
	cc, sc, cErr, sErr := pipePair(t,
		Config{Quoter: rt, PeerPolicy: ksPol},
		Config{Quoter: ks, PeerPolicy: rtPol, RequirePeerQuote: true})
	if cErr != nil || sErr != nil {
		t.Fatalf("mutual handshake failed: %v / %v", cErr, sErr)
	}
	if cc.PeerQuote().Measurement != ks.Measurement() {
		t.Fatal("client records wrong peer measurement")
	}
	if sc.PeerQuote().Measurement != rt.Measurement() {
		t.Fatal("server records wrong peer measurement")
	}
}

// TestQuoteNotBoundToChannelRejected splices a legitimate quote from one
// handshake into another (MITM cut-and-paste): the report-data binding must
// catch it.
func TestQuoteNotBoundToChannelRejected(t *testing.T) {
	ca, err := attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	ks := testEnclave(t, ca, "keyservice-v1")
	// Capture a valid quote bound to some other key.
	staleQuote, err := ks.Quote(channelBinding([]byte("some-other-pub")))
	if err != nil {
		t.Fatal(err)
	}
	pol := &attest.Policy{CAPublicKey: ca.PublicKey(), Allowed: []attest.Measurement{ks.Measurement()}}
	// A fake server that presents the stale quote with a fresh channel key.
	cEnd, sEnd := net.Pipe()
	defer cEnd.Close()
	defer sEnd.Close()
	go func() {
		// Read client hello, reply with mismatched quote.
		if _, err := readFrame(sEnd); err != nil {
			return
		}
		fakePriv, err := ecdh.X25519().GenerateKey(rand.Reader)
		if err != nil {
			return
		}
		hello := helloMsg{Pub: fakePriv.PublicKey().Bytes(), Quote: &staleQuote}
		raw, _ := json.Marshal(hello)
		_ = writeFrame(sEnd, raw)
	}()
	_, cErr := Client(cEnd, Config{PeerPolicy: pol})
	if !errors.Is(cErr, ErrQuoteBinding) {
		t.Fatalf("client error %v, want ErrQuoteBinding", cErr)
	}
}

// establish sets up a plain client + attested server over a pipe and returns
// both connections and both pipe ends for raw-frame injection.
func establish(t *testing.T, program string) (cc, sc *Conn, cEnd, sEnd net.Conn) {
	t.Helper()
	ca, err := attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	enc := testEnclave(t, ca, program)
	cEnd, sEnd = net.Pipe()
	t.Cleanup(func() { cEnd.Close(); sEnd.Close() })
	type res struct {
		c   *Conn
		err error
	}
	sCh := make(chan res, 1)
	go func() {
		c, err := Server(sEnd, Config{Quoter: enc})
		sCh <- res{c, err}
	}()
	cc, err = Client(cEnd, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sr := <-sCh
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	return cc, sr.c, cEnd, sEnd
}

// TestRecordTamperingDetected intercepts a record on the wire, flips one
// bit, re-injects it, and expects authentication to fail.
func TestRecordTamperingDetected(t *testing.T) {
	cc, sc, cEnd, sEnd := establish(t, "svc")
	go func() { _ = cc.Send([]byte("sensitive")) }()
	// Capture the ciphertext before the server Conn sees it.
	raw, err := readFrame(sEnd)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 1
	// Re-inject the tampered frame into the server's read stream.
	go func() { _ = writeFrame(cEnd, raw) }()
	if _, err := sc.Recv(); err == nil {
		t.Fatal("tampered record accepted")
	}
}

// TestReplayRejected: re-sending a previous ciphertext must fail because the
// record nonce is the sequence number.
func TestReplayRejected(t *testing.T) {
	cc, sc, cEnd, sEnd := establish(t, "svc2")
	go func() { _ = cc.Send([]byte("first")) }()
	frame, err := readFrame(sEnd)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver the original once (seq 0, ok), then replay it (seq 1, fail).
	go func() {
		_ = writeFrame(cEnd, frame)
		_ = writeFrame(cEnd, frame)
	}()
	if _, err := sc.Recv(); err != nil {
		t.Fatalf("original record rejected: %v", err)
	}
	if _, err := sc.Recv(); err == nil {
		t.Fatal("replayed record accepted")
	}
}

func TestJSONHelpers(t *testing.T) {
	ca, err := attest.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	enc := testEnclave(t, ca, "svc3")
	cc, sc, cErr, sErr := pipePair(t, Config{}, Config{Quoter: enc})
	if cErr != nil || sErr != nil {
		t.Fatalf("%v / %v", cErr, sErr)
	}
	type payload struct {
		Op  string `json:"op"`
		Val int    `json:"val"`
	}
	go func() {
		var p payload
		if err := sc.RecvJSON(&p); err != nil {
			return
		}
		p.Val++
		_ = sc.SendJSON(p)
	}()
	if err := cc.SendJSON(payload{Op: "inc", Val: 41}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := cc.RecvJSON(&got); err != nil {
		t.Fatal(err)
	}
	if got.Val != 42 {
		t.Fatalf("round trip %+v", got)
	}
}
