package frontier

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sesemi/internal/gateway"
	"sesemi/internal/semirt"
)

// echoInvoker answers every batched request with its own payload, counting
// how often each payload was served — the exactly-once ledger. When block is
// set, Invoke parks until it is closed (a saturated shard's backend).
type echoInvoker struct {
	mu     sync.Mutex
	served map[string]int
	calls  int
	block  chan struct{}
}

func newEchoInvoker() *echoInvoker { return &echoInvoker{served: map[string]int{}} }

func (e *echoInvoker) Invoke(ctx context.Context, _ string, payload []byte) ([]byte, error) {
	_, batch, err := semirt.DecodeEnvelope(payload)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	block := e.block
	e.mu.Unlock()
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	results := make([]semirt.BatchResult, len(batch))
	e.mu.Lock()
	e.calls++
	for i, r := range batch {
		e.served[string(r.Payload)]++
		results[i].Response = semirt.Response{Payload: r.Payload, Kind: semirt.Hot}
	}
	e.mu.Unlock()
	return semirt.EncodeBatchResults(results)
}

func (e *echoInvoker) release() {
	e.mu.Lock()
	block := e.block
	e.block = nil
	e.mu.Unlock()
	if block != nil {
		close(block)
	}
}

// homeShard resolves which shard the ring routes a key to (white box).
func homeShard(f *Frontier, action, model, tenant string) int {
	var buf [1]int
	return f.ring.Load().shardsFor(routeKey(action, model, tenant), 1, buf[:0])[0]
}

// modelHomedOn finds a model id whose (action, model, default-tenant) key
// routes to the wanted shard.
func modelHomedOn(t *testing.T, f *Frontier, action string, shard int) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		m := fmt.Sprintf("m%d", i)
		if homeShard(f, action, m, gateway.DefaultTenant) == shard {
			return m
		}
	}
	t.Fatalf("no model routes to shard %d", shard)
	return ""
}

func req(model, payload string) semirt.Request {
	return semirt.Request{UserID: "u", ModelID: model, Payload: []byte(payload)}
}

func TestRingStableAndBalanced(t *testing.T) {
	const shards, keys = 8, 4096
	a, b := newRing(shards, 64), newRing(shards, 64)
	counts := make([]int, shards)
	var buf [1]int
	for i := 0; i < keys; i++ {
		h := routeKey("act", fmt.Sprintf("model-%d", i), "tenant")
		sa := a.shardsFor(h, 1, buf[:0])[0]
		sb := b.shardsFor(h, 1, buf[:0])[0]
		if sa != sb {
			t.Fatalf("key %d routed to %d and %d on identical rings", i, sa, sb)
		}
		counts[sa]++
	}
	mean := float64(keys) / shards
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys", s)
		}
		if ratio := float64(c) / mean; ratio > 2 || ratio < 0.4 {
			t.Fatalf("shard %d holds %.2fx the mean load — virtual nodes not spreading", s, ratio)
		}
	}
}

func TestRingSpillCandidatesDistinctAndDeterministic(t *testing.T) {
	r := newRing(4, 64)
	var buf [8]int
	h := routeKey("a", "m", "t")
	c1 := append([]int(nil), r.shardsFor(h, 3, buf[:0])...)
	c2 := append([]int(nil), r.shardsFor(h, 3, buf[:0])...)
	if len(c1) != 3 {
		t.Fatalf("want 3 candidates, got %v", c1)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("candidates not deterministic: %v vs %v", c1, c2)
		}
		for j := i + 1; j < len(c1); j++ {
			if c1[i] == c1[j] {
				t.Fatalf("duplicate spill candidate in %v", c1)
			}
		}
	}
	// Asking for more shards than exist returns them all, once each.
	if all := r.shardsFor(h, 99, buf[:0]); len(all) != 4 {
		t.Fatalf("k beyond shard count returned %v", all)
	}
}

func TestSingleShardPassthrough(t *testing.T) {
	inv := newEchoInvoker()
	f := New(Config{Shards: 1}, inv)
	defer f.Close()
	resp, err := f.Do(context.Background(), "a", req("m", "hello"))
	if err != nil || string(resp.Payload) != "hello" {
		t.Fatalf("Do = %q, %v", resp.Payload, err)
	}
	if s := f.Stats(); s.Accepted != 1 || s.Served != 1 || len(s.PerShard) != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestRoutingIsShardLocal verifies the partitioning contract: every request
// for one (action, model, tenant) key lands on the same shard's backend.
func TestRoutingIsShardLocal(t *testing.T) {
	invs := []gateway.Invoker{newEchoInvoker(), newEchoInvoker(), newEchoInvoker(), newEchoInvoker()}
	f := NewPerShard(Config{Config: gateway.Config{MaxBatch: 2, MaxWait: 50 * time.Microsecond}}, invs)
	defer f.Close()
	ctx := context.Background()

	const models, perModel = 16, 8
	var wg sync.WaitGroup
	for m := 0; m < models; m++ {
		for i := 0; i < perModel; i++ {
			wg.Add(1)
			go func(m, i int) {
				defer wg.Done()
				model := fmt.Sprintf("mod%d", m)
				if _, err := f.Do(ctx, "a", req(model, fmt.Sprintf("%s-%d", model, i))); err != nil {
					t.Errorf("do: %v", err)
				}
			}(m, i)
		}
	}
	wg.Wait()
	for m := 0; m < models; m++ {
		model := fmt.Sprintf("mod%d", m)
		want := homeShard(f, "a", model, gateway.DefaultTenant)
		for s, inv := range invs {
			e := inv.(*echoInvoker)
			e.mu.Lock()
			var served int
			for p, c := range e.served {
				if len(p) > len(model) && p[:len(model)+1] == model+"-" {
					served += c
				}
			}
			e.mu.Unlock()
			if s == want && served != perModel {
				t.Fatalf("model %s: home shard %d served %d/%d", model, s, served, perModel)
			}
			if s != want && served != 0 {
				t.Fatalf("model %s leaked %d requests onto shard %d (home %d)", model, served, s, want)
			}
		}
	}
}

// TestSpillToNextRingCandidate saturates a key's home shard and verifies the
// overflow admits on the key's ring successor instead of rejecting.
func TestSpillToNextRingCandidate(t *testing.T) {
	blocked, idle := newEchoInvoker(), newEchoInvoker()
	blocked.block = make(chan struct{})
	defer blocked.release()
	f := NewPerShard(Config{
		Config: gateway.Config{MaxBatch: 1, MaxWait: time.Microsecond, MaxQueue: 1, MaxInFlight: 1},
		// Stealing off: this test isolates the admission-side spill.
		StealInterval: -1,
	}, []gateway.Invoker{blocked, idle})
	defer f.Close()
	ctx := context.Background()
	model := modelHomedOn(t, f, "a", 0)

	// First fills shard 0's dispatch slot (blocked backend), second its
	// 1-deep queue; the third trips ErrOverloaded at home and must spill.
	var tickets []*gateway.Ticket
	for i := 0; i < 2; i++ {
		tk, err := f.Submit(ctx, gateway.Request{Action: "a", Body: req(model, fmt.Sprintf("p%d", i))})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	waitFor(t, func() bool { return f.Shard(0).Backlog() == 1 })

	tk, err := f.Submit(ctx, gateway.Request{Action: "a", Body: req(model, "spilled")})
	if err != nil {
		t.Fatalf("spill submit: %v", err)
	}
	resp, err := tk.Wait(ctx)
	if err != nil || string(resp.Payload) != "spilled" {
		t.Fatalf("spilled request: %q, %v", resp.Payload, err)
	}
	if s := f.Stats(); s.Spills != 1 {
		t.Fatalf("spills = %d, want 1", s.Spills)
	}
	idle.mu.Lock()
	spillServed := idle.served["spilled"]
	idle.mu.Unlock()
	if spillServed != 1 {
		t.Fatal("spilled request was not served by the successor shard")
	}
	blocked.release()
	for i, tk := range tickets {
		if _, err := tk.Wait(ctx); err != nil {
			t.Fatalf("home-shard request %d: %v", i, err)
		}
	}
}

// TestSpillWalksDistinctSuccessorsAndTerminates saturates a key's home shard
// AND its first ring successor: admission must land on the key's SECOND
// distinct successor — never revisiting a shard, never touching a shard
// outside the SpillDepth+1 candidate set — and once every candidate is
// saturated it must return ErrOverloaded promptly instead of walking the
// ring forever. Runs under -race in CI.
func TestSpillWalksDistinctSuccessorsAndTerminates(t *testing.T) {
	const shards = 4
	invs := make([]gateway.Invoker, shards)
	echos := make([]*echoInvoker, shards)
	for i := range invs {
		e := newEchoInvoker()
		e.block = make(chan struct{})
		echos[i], invs[i] = e, e
	}
	defer func() {
		for _, e := range echos {
			e.release()
		}
	}()
	f := NewPerShard(Config{
		Config: gateway.Config{MaxBatch: 1, MaxWait: time.Microsecond,
			MaxQueue: 1, MaxInFlight: 1, TenantQuota: 1},
		SpillDepth:    2,
		StealInterval: -1, // isolate spilling
	}, invs)
	defer f.Close()
	ctx := context.Background()

	model := modelHomedOn(t, f, "a", 0)
	var buf [8]int
	cands := f.ring.Load().shardsFor(routeKey("a", model, gateway.DefaultTenant), f.cfg.SpillDepth+1, buf[:0])
	if len(cands) != 3 {
		t.Fatalf("candidates = %v, want 3 distinct", cands)
	}
	outside := -1
	for s := 0; s < shards; s++ {
		if s != cands[0] && s != cands[1] && s != cands[2] {
			outside = s
		}
	}

	// Saturate home and first successor: one request in the (blocked)
	// dispatch slot, one in the 1-deep queue. Direct shard submits keep the
	// setup independent of the spill logic under test. Distinct tenants per
	// filler sidestep TenantQuota; the spill probe uses the default tenant.
	var held []*gateway.Ticket
	for _, s := range cands[:2] {
		for i := 0; i < 2; i++ {
			tk, err := f.Shard(s).Submit(ctx, gateway.Request{
				Action: "a", Tenant: fmt.Sprintf("filler%d", i),
				Body: req(model, fmt.Sprintf("fill-%d-%d", s, i)),
			})
			if err != nil {
				t.Fatalf("saturate shard %d: %v", s, err)
			}
			held = append(held, tk)
		}
		waitFor(t, func() bool { return f.Shard(s).Backlog() == 1 })
	}

	// The probe must walk home → successor 1 → successor 2 and admit there.
	tk, err := f.Submit(ctx, gateway.Request{Action: "a", Body: req(model, "deep-spill")})
	if err != nil {
		t.Fatalf("deep spill submit: %v", err)
	}
	held = append(held, tk)
	if s := f.Stats(); s.Spills != 1 {
		t.Fatalf("spills = %d, want 1", s.Spills)
	}
	// It dispatched on the second successor (blocked slot), nowhere else.
	waitFor(t, func() bool { return f.Shard(cands[2]).Stats().Accepted == 1 })

	// Saturate the second successor's queue too: every candidate is now
	// full, so admission must fail with ErrOverloaded after the bounded walk
	// — not hang, not loop, not leak onto the non-candidate shard.
	fill, err := f.Shard(cands[2]).Submit(ctx, gateway.Request{
		Action: "a", Tenant: "filler0", Body: req(model, "fill-last"),
	})
	if err != nil {
		t.Fatalf("saturate shard %d: %v", cands[2], err)
	}
	held = append(held, fill)
	waitFor(t, func() bool { return f.Shard(cands[2]).Backlog() == 1 })
	if _, err := f.Submit(ctx, gateway.Request{Action: "a", Body: req(model, "rejected")}); !errors.Is(err, gateway.ErrOverloaded) {
		t.Fatalf("all candidates saturated: err = %v, want ErrOverloaded", err)
	}
	if st := f.Shard(outside).Stats(); st.Accepted != 0 {
		t.Fatalf("non-candidate shard %d admitted %d requests", outside, st.Accepted)
	}

	// Fairness neutrality: releasing the backends completes every held
	// request exactly once; nothing was lost or double-served by the walk.
	for _, e := range echos {
		e.release()
	}
	for i, tk := range held {
		if _, err := tk.Wait(ctx); err != nil {
			t.Fatalf("held request %d: %v", i, err)
		}
	}
	total := 0
	for _, e := range echos {
		e.mu.Lock()
		for p, c := range e.served {
			if c != 1 {
				e.mu.Unlock()
				t.Fatalf("payload %s served %d times", p, c)
			}
			total++
		}
		e.mu.Unlock()
	}
	if total != len(held) {
		t.Fatalf("served %d distinct payloads, want %d", total, len(held))
	}
	if s := f.Stats(); s.Served != uint64(len(held)) || s.Pending != 0 {
		t.Fatalf("merged accounting off: %+v", s)
	}
}

// TestStealCompletesSaturatedShardExactlyOnce is the work-stealing property
// test (run under -race in CI): every request admitted to a saturated shard
// completes exactly once — served either by the stealing shard (the stolen
// backlog) or by the home shard after it unblocks (the in-flight batches) —
// and the steal is fairness-neutral (no request is answered twice, none is
// lost, merged accounting balances).
func TestStealCompletesSaturatedShardExactlyOnce(t *testing.T) {
	blocked, idle := newEchoInvoker(), newEchoInvoker()
	blocked.block = make(chan struct{})
	defer blocked.release()
	f := NewPerShard(Config{
		Config: gateway.Config{MaxBatch: 4, MaxWait: 50 * time.Microsecond, MaxInFlight: 2,
			MaxQueue: 1024, TenantQuota: 1024},
		SpillDepth:     -1, // isolate stealing from spilling
		StealInterval:  200 * time.Microsecond,
		StealThreshold: 4,
	}, []gateway.Invoker{blocked, idle})
	defer f.Close()
	ctx := context.Background()
	model := modelHomedOn(t, f, "a", 0)

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := fmt.Sprintf("p%d", i)
			resp, err := f.Do(ctx, "a", req(model, payload))
			if err != nil {
				errs <- fmt.Errorf("request %d: %w", i, err)
				return
			}
			if string(resp.Payload) != payload {
				errs <- fmt.Errorf("request %d answered with %q", i, resp.Payload)
			}
		}(i)
	}

	// The stolen portion completes while the home backend is still blocked.
	waitFor(t, func() bool { return f.Stats().Stolen > 0 })
	waitFor(t, func() bool {
		idle.mu.Lock()
		defer idle.mu.Unlock()
		return len(idle.served) > 0
	})
	blocked.release()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Exactly once: each payload served once, across both backends.
	total := 0
	for _, e := range []*echoInvoker{blocked, idle} {
		e.mu.Lock()
		for p, c := range e.served {
			if c != 1 {
				e.mu.Unlock()
				t.Fatalf("payload %s served %d times", p, c)
			}
			total++
		}
		e.mu.Unlock()
	}
	if total != n {
		t.Fatalf("served %d distinct payloads, want %d", total, n)
	}
	s := f.Stats()
	if s.Accepted != n || s.Served != n || s.Pending != 0 {
		t.Fatalf("merged accounting off: accepted=%d served=%d pending=%d", s.Accepted, s.Served, s.Pending)
	}
	if s.Steals == 0 || s.Stolen == 0 || s.StolenOut != s.Stolen || s.StolenIn != s.Stolen {
		t.Fatalf("steal counters off: %+v", s)
	}
	// The idle shard did real work it never admitted — visible only in the
	// merged per-shard view.
	if s.PerShard[1].Served == 0 || s.PerShard[1].Accepted != 0 {
		t.Fatalf("stealing shard served=%d accepted=%d", s.PerShard[1].Served, s.PerShard[1].Accepted)
	}
}

func TestTenantSnapshotAndMetricsMerge(t *testing.T) {
	f := New(Config{Shards: 4, Config: gateway.Config{MaxBatch: 2, MaxWait: 50 * time.Microsecond}}, newEchoInvoker())
	defer f.Close()
	ctx := context.Background()

	const tenants, each = 6, 10
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		for i := 0; i < each; i++ {
			wg.Add(1)
			go func(tn, i int) {
				defer wg.Done()
				tk, err := f.Submit(ctx, gateway.Request{
					Action: "a", Tenant: fmt.Sprintf("t%d", tn),
					Body: req(fmt.Sprintf("m%d", i%4), "x"),
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if _, err := tk.Wait(ctx); err != nil {
					t.Errorf("wait: %v", err)
				}
			}(tn, i)
		}
	}
	wg.Wait()

	snap := f.TenantSnapshot()
	for tn := 0; tn < tenants; tn++ {
		tc := snap[fmt.Sprintf("t%d", tn)]
		if tc.Accepted != each || tc.Served != each {
			t.Fatalf("tenant %d merged counts: %+v", tn, tc)
		}
	}
	m := f.Metrics()
	if got := m.E2E.Count(); got != tenants*each {
		t.Fatalf("merged E2E count = %d, want %d", got, tenants*each)
	}
	var shardBatches uint64
	for _, ps := range f.Stats().PerShard {
		shardBatches += ps.Batches
	}
	if got := m.BatchSizes.Count(); got != shardBatches {
		t.Fatalf("merged batch-size count = %d, want %d", got, shardBatches)
	}
}

func TestFrontierClose(t *testing.T) {
	f := New(Config{Shards: 2}, newEchoInvoker())
	f.Close()
	f.Close() // idempotent
	if _, err := f.Do(context.Background(), "a", req("m", "x")); !errors.Is(err, gateway.ErrClosed) {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
