package frontier

// The consistent-hash ring. Each shard owns VirtualNodes points on a 64-bit
// hash circle; a request's (action, model, tenant) key hashes to a point and
// is served by the first shard clockwise from it. Virtual nodes bound the
// load spread — with V points per shard the busiest shard carries
// ≈ 1 + O(√(ln N / V)) of the mean for uniform keys (costmodel.ShardImbalance
// is the measured counterpart) — while keeping the ring small enough that a
// lookup is one binary search over a read-only slice.
//
// The ring is immutable after construction and published through an
// atomic.Pointer: the admit path loads the snapshot and searches it without
// taking any lock, which is what keeps the frontier's hot path free of
// global synchronization (the per-shard gateway mutex is the only lock a
// Submit ever takes).

import "sort"

// FNV-1a 64-bit, inlined so the admit path hashes without allocating.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime
	return h
}

// mix64 is a splitmix64-style finalizer. FNV-1a's avalanche is weak in the
// high bits for short, near-sequential inputs — both tiny vnode integers and
// tenant names like "t1"…"t1024" come out clustered on the circle, which
// shows up directly as routing imbalance (empirically: whole shards with
// zero keys at 8 shards). The finalizer spreads them uniformly.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// routeKey hashes the routing key (action, model, tenant), separator-framed
// exactly like the gateway's queue keys so "a"+"bc" and "ab"+"c" cannot
// collide.
func routeKey(action, model, tenant string) uint64 {
	h := fnvString(fnvOffset, action)
	h = fnvByte(h, 0x1f)
	h = fnvString(h, model)
	h = fnvByte(h, 0x1f)
	h = fnvString(h, tenant)
	return mix64(h)
}

// ringPoint is one virtual node: a position on the hash circle owned by a
// shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// ring is an immutable consistent-hash ring snapshot.
type ring struct {
	points []ringPoint // sorted by hash
	shards int
}

// vnodeHash positions virtual node v of shard s (mix64-finalized like every
// ring position). Build-time only; lookups never hash vnodes.
func vnodeHash(s, v int) uint64 {
	h := fnvOffset
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(uint64(s)>>(8*i)))
	}
	h = fnvByte(h, 0x1f)
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(uint64(v)>>(8*i)))
	}
	return mix64(h)
}

// newRing builds the ring for shards × vnodes points.
func newRing(shards, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, shards*vnodes), shards: shards}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by shard so the sort — and
		// therefore routing — is deterministic across processes.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// shardsFor appends up to k DISTINCT shard indices to out, walking clockwise
// from h's successor point: out[0] is the key's home shard, the rest are its
// spill candidates in ring order. Read-only over the immutable snapshot —
// safe from any goroutine without synchronization.
func (r *ring) shardsFor(h uint64, k int, out []int) []int {
	if k > r.shards {
		k = r.shards
	}
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	for n := 0; n < len(r.points) && len(out) < k; n++ {
		p := r.points[(i+n)%len(r.points)]
		dup := false
		for _, s := range out {
			if s == p.shard {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p.shard)
		}
	}
	return out
}
