// Package frontier is the horizontally sharded serving tier: N independent
// gateway.Gateway shards behind a consistent-hash router, fronting one
// backend (the serverless cluster). It is the layer that takes the gateway's
// single-instance ceiling off the system — every queue, DRR fairness,
// affinity, autoscaling and retry feature runs shard-local, and the frontier
// adds only routing, spill and stealing on top.
//
// Architecture (README "Sharded frontier"):
//
//	clients → consistent-hash ring (atomic snapshot, lock-free lookup)
//	        → shard = gateway.Gateway (own queues, DRR, affinity, retries)
//	        → shared backend cluster
//
//   - Routing: requests hash by (action, model, tenant) onto a ring with
//     bounded virtual nodes per shard, so one model's queue — and its warm
//     affinity state — lives on exactly one shard, and tenants of the same
//     queue land together (DRR fairness stays meaningful per shard).
//   - Admit path: one atomic ring-snapshot load plus the target shard's own
//     mutex. The frontier itself takes NO lock on admission; its counters
//     are atomics and its envelopes recycle through the per-shard pools.
//   - Spill (bounded re-hash): when the home shard refuses with
//     ErrOverloaded/ErrTenantOverloaded, admission retries on the next
//     distinct ring candidates (up to SpillDepth), so a hot key saturating
//     one shard borrows headroom instead of rejecting while neighbors idle.
//   - Work stealing: a pacer compares shard backlogs and moves whole
//     (action, model) queue drains from the most to the least backlogged
//     shard at dispatch boundaries (gateway.StealQueue/AcceptStolen),
//     fairness-neutrally — original enqueue times, no fresh DRR deficit.
//   - Aggregation: Stats, TenantSnapshot and Metrics merge across shards
//     (histograms via metrics.Histogram.Merge), so callers observe one
//     logical gateway.
package frontier

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sesemi/internal/gateway"
	"sesemi/internal/metrics"
	"sesemi/internal/obs"
	"sesemi/internal/semirt"
)

// Config tunes the frontier. The embedded gateway.Config applies to EVERY
// shard (shards are deliberately uniform — the ring assumes interchangeable
// capacity); remember that bounds like MaxPending and quotas are therefore
// per shard, and the frontier's aggregate capacity scales with Shards.
type Config struct {
	gateway.Config

	// Shards is the number of gateway shards (default 1 — the frontier then
	// behaves exactly like a single gateway, ring and all).
	Shards int
	// VirtualNodes is the number of ring points per shard (default 64,
	// bounded at 512). More points flatten the key distribution
	// (imbalance ≈ 1 + O(√(ln N / V))) at the cost of a larger — still
	// read-only — ring.
	VirtualNodes int
	// SpillDepth is how many ring candidates past the home shard an
	// overloaded admission retries (default 2; negative disables spilling).
	// Spill is a bounded re-hash: candidates are the key's successor shards
	// on the ring, so a given key always spills to the same shards, keeping
	// its footprint — warm state, affinity homes — bounded.
	SpillDepth int
	// StealInterval is the work-stealing pacer's cadence (default 2ms;
	// negative disables stealing). Each tick moves at most one queue drain
	// between the most and least backlogged shards.
	StealInterval time.Duration
	// StealThreshold is the minimum backlog gap (max shard − min shard, in
	// requests) before a steal fires (default 16). Below it the imbalance is
	// cheaper to serve in place than to move.
	StealThreshold int
	// StealMax caps the requests moved per steal (default 256).
	StealMax int
}

func (c *Config) defaults() {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.VirtualNodes < 1 {
		c.VirtualNodes = 64
	}
	if c.VirtualNodes > 512 {
		c.VirtualNodes = 512
	}
	if c.SpillDepth == 0 {
		c.SpillDepth = 2
	}
	if c.SpillDepth < 0 {
		c.SpillDepth = 0
	}
	if c.StealInterval == 0 {
		c.StealInterval = 2 * time.Millisecond
	}
	if c.StealThreshold < 1 {
		c.StealThreshold = 16
	}
	if c.StealMax < 1 {
		c.StealMax = 256
	}
}

// Frontier fronts N gateway shards behind the consistent-hash ring.
type Frontier struct {
	cfg    Config
	shards []*gateway.Gateway
	ring   atomic.Pointer[ring]

	spills atomic.Uint64 // admissions that landed on a non-home shard
	steals atomic.Uint64 // steal operations performed
	stolen atomic.Uint64 // requests moved by steals

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New creates a frontier whose shards all dispatch into inv (the expected
// wiring: N routing shards over one serverless cluster, which is itself
// internally sharded and thread-safe).
func New(cfg Config, inv gateway.Invoker) *Frontier {
	cfg.defaults()
	invs := make([]gateway.Invoker, cfg.Shards)
	for i := range invs {
		invs[i] = inv
	}
	return NewPerShard(cfg, invs)
}

// NewPerShard creates a frontier with one backend per shard — tests and
// split-backend deployments; len(invs) overrides cfg.Shards.
func NewPerShard(cfg Config, invs []gateway.Invoker) *Frontier {
	cfg.defaults()
	cfg.Shards = len(invs)
	f := &Frontier{cfg: cfg, stop: make(chan struct{})}
	f.shards = make([]*gateway.Gateway, cfg.Shards)
	for i := range f.shards {
		f.shards[i] = gateway.New(cfg.Config, invs[i])
	}
	f.ring.Store(newRing(cfg.Shards, cfg.VirtualNodes))
	if cfg.Shards > 1 && cfg.StealInterval > 0 {
		f.wg.Add(1)
		go f.stealLoop()
	}
	return f
}

// NumShards returns the shard count.
func (f *Frontier) NumShards() int { return len(f.shards) }

// Shard returns shard i — white-box access for tests and benchmarks.
func (f *Frontier) Shard(i int) *gateway.Gateway { return f.shards[i] }

// Submit routes one enveloped request to its home shard and returns the
// shard's Ticket. On ErrOverloaded/ErrTenantOverloaded the admission spills
// to the key's next ring candidates (bounded by SpillDepth) before giving
// up; every other admission error is the caller's answer immediately.
//
// Hot-path discipline: one atomic ring load, no frontier lock, no
// allocation beyond the shard's own admission.
func (f *Frontier) Submit(ctx context.Context, req gateway.Request) (*gateway.Ticket, error) {
	if len(f.shards) == 1 {
		return f.shards[0].Submit(ctx, req)
	}
	model := req.Model
	if model == "" {
		model = req.Body.ModelID
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = gateway.DefaultTenant
	}
	r := f.ring.Load()
	var buf [8]int
	cands := r.shardsFor(routeKey(req.Action, model, tenant), f.cfg.SpillDepth+1, buf[:0])
	var lastErr error
	for i, s := range cands {
		tk, err := f.shards[s].Submit(ctx, req)
		if err == nil {
			if i > 0 {
				f.spills.Add(1)
			}
			return tk, nil
		}
		lastErr = err
		if err != gateway.ErrOverloaded && err != gateway.ErrTenantOverloaded {
			break // not a capacity refusal: spilling cannot help
		}
	}
	return nil, lastErr
}

// Do submits and waits — the synchronous convenience mirroring gateway.Do,
// with the same withdrawn-if-still-queued ctx contract.
func (f *Frontier) Do(ctx context.Context, action string, req semirt.Request) (semirt.Response, error) {
	tk, err := f.Submit(ctx, gateway.Request{Action: action, Body: req})
	if err != nil {
		return semirt.Response{}, err
	}
	resp, err := tk.Wait(ctx)
	if err != nil && ctx.Err() != nil && err == ctx.Err() {
		tk.Cancel()
		return semirt.Response{}, ctx.Err()
	}
	return resp, err
}

// Stats is the frontier's aggregated counter snapshot: the embedded
// gateway.Stats sums every shard (a stolen request's admission counts on its
// source and its outcome on its destination, so the sums balance exactly as
// a single gateway's would), plus the frontier's own routing counters and
// the per-shard breakdown the imbalance metrics are computed from.
type Stats struct {
	gateway.Stats

	// Spills counts admissions that landed on a non-home ring candidate.
	Spills uint64
	// Steals counts steal operations; Stolen the requests they moved.
	Steals, Stolen uint64
	// PerShard is each shard's own snapshot, ring order — feed per-shard
	// Accepted (or Pending) to costmodel.ShardImbalance.
	PerShard []gateway.Stats
}

func addStats(dst *gateway.Stats, s gateway.Stats) {
	dst.Accepted += s.Accepted
	dst.Rejected += s.Rejected
	dst.TenantRejected += s.TenantRejected
	dst.Shed += s.Shed
	dst.Canceled += s.Canceled
	dst.Batches += s.Batches
	dst.Served += s.Served
	dst.Preemptions += s.Preemptions
	dst.Retries += s.Retries
	dst.BackendPanics += s.BackendPanics
	dst.StolenOut += s.StolenOut
	dst.StolenIn += s.StolenIn
	dst.Prewarmed += s.Prewarmed
	dst.Rehomes += s.Rehomes
	dst.Queues += s.Queues
	dst.Pending += s.Pending
}

// Stats returns the aggregated snapshot.
func (f *Frontier) Stats() Stats {
	out := Stats{
		Spills:   f.spills.Load(),
		Steals:   f.steals.Load(),
		Stolen:   f.stolen.Load(),
		PerShard: make([]gateway.Stats, len(f.shards)),
	}
	for i, g := range f.shards {
		out.PerShard[i] = g.Stats()
		addStats(&out.Stats, out.PerShard[i])
	}
	return out
}

// TenantSnapshot merges per-tenant accounting across shards: a tenant's
// requests may admit on one shard and serve on another (spill, steal), and
// only the merged view shows its true accepted/served balance.
func (f *Frontier) TenantSnapshot() map[string]gateway.TenantCounts {
	out := map[string]gateway.TenantCounts{}
	for _, g := range f.shards {
		for name, tc := range g.TenantSnapshot() {
			agg := out[name]
			agg.Accepted += tc.Accepted
			agg.Served += tc.Served
			agg.Rejected += tc.Rejected
			agg.Shed += tc.Shed
			agg.Canceled += tc.Canceled
			out[name] = agg
		}
	}
	return out
}

// Metrics returns the cross-shard merged distributions. Each call builds a
// fresh snapshot by folding every shard's live histograms together
// (metrics.Histogram.Merge — bucket counts add, no samples replayed); the
// shards keep observing on their own locks throughout.
func (f *Frontier) Metrics() gateway.Metrics {
	m := gateway.Metrics{
		BatchSizes: metrics.NewHistogram(1),
		QueueDepth: metrics.NewHistogram(1),
		QueueWait:  metrics.NewHistogram(0.25),
		E2E:        metrics.NewHistogram(0.25),
	}
	for _, g := range f.shards {
		gm := g.Metrics()
		m.BatchSizes.Merge(gm.BatchSizes)
		m.QueueDepth.Merge(gm.QueueDepth)
		m.QueueWait.Merge(gm.QueueWait)
		m.E2E.Merge(gm.E2E)
	}
	return m
}

// RegisterMetrics exports the frontier's routing counters and every shard's
// gateway metrics on reg. Shards register under a "shard" label so the
// per-shard imbalance stays visible; the shared tracer (Config.Tracer) is
// NOT registered here — it spans all shards, so its owner registers it once.
func (f *Frontier) RegisterMetrics(reg *obs.Registry, labels obs.Labels) {
	if reg == nil {
		return
	}
	reg.CounterFunc("sesemi_frontier_spills_total", "Admissions that landed on a non-home ring candidate.", labels,
		func() float64 { return float64(f.spills.Load()) })
	reg.CounterFunc("sesemi_frontier_steals_total", "Steal operations performed.", labels,
		func() float64 { return float64(f.steals.Load()) })
	reg.CounterFunc("sesemi_frontier_stolen_total", "Requests moved by steals.", labels,
		func() float64 { return float64(f.stolen.Load()) })
	for i, g := range f.shards {
		g.RegisterMetrics(reg, labels.With("shard", strconv.Itoa(i)))
	}
}

// Close stops the steal pacer and closes every shard (concurrently — each
// shard's Close drains its own dispatchers). Queued requests fail with
// gateway.ErrClosed, as under a single gateway.
func (f *Frontier) Close() {
	f.closeOnce.Do(func() {
		close(f.stop)
		f.wg.Wait()
		var wg sync.WaitGroup
		for _, g := range f.shards {
			wg.Add(1)
			go func(g *gateway.Gateway) {
				defer wg.Done()
				g.Close()
			}(g)
		}
		wg.Wait()
	})
}
