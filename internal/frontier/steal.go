package frontier

// The work-stealing pacer. Consistent hashing bounds imbalance for UNIFORM
// keys; a skewed workload (one hot model, one hot tenant) still piles its
// whole stream onto one shard. Spill handles the admission side of that —
// this loop handles the backlog side: at every tick it compares shard
// backlogs and, past StealThreshold, moves a whole (action, model) queue
// drain from the most to the least backlogged shard. The transfer itself is
// gateway.StealQueue/AcceptStolen — two-phase, deadlock-free, and
// fairness-neutral (original enqueue times, no fresh DRR deficit), so a
// steal changes where requests run, never when they were entitled to run.
//
// Stealing happens at dispatch boundaries by construction: StealQueue only
// exports requests that are QUEUED (never batch members in flight), and the
// destination dispatches them under its own formation rules. The pacer moves
// at most half the observed gap, so one tick cannot invert the imbalance and
// set up a ping-pong; costmodel.StealOverhead prices what the loop spends.

import "time"

func (f *Frontier) stealLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.stealOnce()
		}
	}
}

// stealOnce performs at most one rebalancing move, reporting how many
// requests it relocated. Split out of the loop for tests (and for callers
// embedding the frontier in simulated time).
func (f *Frontier) stealOnce() int {
	maxI, minI := -1, -1
	maxB, minB := -1, int(^uint(0)>>1)
	for i, g := range f.shards {
		b := g.Backlog()
		if b > maxB {
			maxB, maxI = b, i
		}
		if b < minB {
			minB, minI = b, i
		}
	}
	gap := maxB - minB
	if maxI == minI || gap < f.cfg.StealThreshold {
		return 0
	}
	want := gap / 2
	if want > f.cfg.StealMax {
		want = f.cfg.StealMax
	}
	s := f.shards[maxI].StealQueue(want)
	n := s.Count()
	if n == 0 {
		return 0
	}
	f.shards[minI].AcceptStolen(s)
	f.steals.Add(1)
	f.stolen.Add(uint64(n))
	return n
}
