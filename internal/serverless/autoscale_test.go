package serverless

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sesemi/internal/vclock"
)

// guardInstance fails the test when the sandbox lifecycle protocol is
// violated: Stop while a request is in flight, or Invoke after Stop.
type guardInstance struct {
	t       *testing.T
	active  atomic.Int32
	stopped atomic.Bool
}

func (g *guardInstance) Invoke(p []byte) ([]byte, error) {
	if g.stopped.Load() {
		g.t.Error("Invoke on a stopped instance")
	}
	g.active.Add(1)
	runtime.Gosched() // widen the window the reaper could race into
	g.active.Add(-1)
	return p, nil
}

func (g *guardInstance) Stop() {
	if g.active.Load() != 0 {
		g.t.Error("Stop while a request is in flight")
	}
	g.stopped.Store(true)
}

// TestStartReaperFollowsInjectedClock is the regression test for the reaper
// ticking on the wall clock even when the cluster was built with an injected
// clock: with a Manual clock, advancing virtual time alone must make the
// reaper fire and reclaim, with no wall-clock interval involved.
func TestStartReaperFollowsInjectedClock(t *testing.T) {
	clock := vclock.NewManual()
	c, _ := newTestCluster(clock, 1<<30, 1)
	defer c.Close()
	if err := c.Deploy(echoAction("fn", 128<<20, 1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatal(err)
	}
	stop := c.StartReaper(30 * time.Second)
	defer stop()

	// Nothing is due yet; the reaper goroutine has no wall-clock timer to
	// fire on, only virtual ones.
	if st := c.Stats(); st.Sandboxes["fn"] != 1 {
		t.Fatalf("sandboxes %v, want 1", st.Sandboxes)
	}
	// One virtual keep-warm (3 min default) makes the sandbox reapable; each
	// further tick-sized advance fires whatever timer the reaper goroutine
	// has registered by then (registration itself is asynchronous, so the
	// advance is repeated — wall time never makes the reap due, only
	// virtual time does).
	clock.Advance(3 * time.Minute)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := c.Stats(); st.Sandboxes["fn"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reaper did not fire on virtual-time advance")
		}
		clock.Advance(31 * time.Second)
		time.Sleep(time.Millisecond)
	}
}

// TestSetKeepWarmPerAction verifies the adaptive override: shrinking one
// action's deadline reaps only that action's idle sandboxes; clearing it
// restores the cluster default.
func TestSetKeepWarmPerAction(t *testing.T) {
	clock := vclock.NewManual()
	c, _ := newTestCluster(clock, 1<<30, 1)
	defer c.Close()
	for _, name := range []string{"hot", "cold"} {
		if err := c.Deploy(echoAction(name, 128<<20, 1, nil, nil)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Invoke(context.Background(), name, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetKeepWarm("cold", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if kw, _ := c.KeepWarm("cold"); kw != 10*time.Second {
		t.Fatalf("KeepWarm(cold) = %v", kw)
	}
	if kw, _ := c.KeepWarm("hot"); kw != 3*time.Minute {
		t.Fatalf("KeepWarm(hot) = %v (default must be untouched)", kw)
	}
	clock.Advance(11 * time.Second)
	if n := c.ReapIdle(); n != 1 {
		t.Fatalf("reaped %d, want only the shortened action", n)
	}
	st := c.Stats()
	if st.Sandboxes["cold"] != 0 || st.Sandboxes["hot"] != 1 {
		t.Fatalf("sandboxes %v", st.Sandboxes)
	}
	// Clearing the override restores the default deadline.
	if err := c.SetKeepWarm("cold", 0); err != nil {
		t.Fatal(err)
	}
	if kw, _ := c.KeepWarm("cold"); kw != 3*time.Minute {
		t.Fatalf("cleared KeepWarm(cold) = %v", kw)
	}
	if err := c.SetKeepWarm("ghost", time.Second); err == nil {
		t.Fatal("SetKeepWarm accepted an unknown action")
	}
}

// TestActionStatsTelemetry walks the counters the autoscaler feeds on:
// per-action cold starts, warm hits, and cumulative idle sandbox-seconds
// (open idle periods included).
func TestActionStatsTelemetry(t *testing.T) {
	clock := vclock.NewManual()
	c, _ := newTestCluster(clock, 1<<30, 1)
	defer c.Close()
	if err := c.Deploy(echoAction("fn", 128<<20, 1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatal(err)
	}
	st, err := c.ActionStats("fn")
	if err != nil {
		t.Fatal(err)
	}
	if st.ColdStarts != 1 || st.WarmHits != 0 || st.Live != 1 || st.Idle != 1 {
		t.Fatalf("after cold start: %+v", st)
	}
	// Ten idle virtual seconds show up as an open idle period.
	clock.Advance(10 * time.Second)
	if st, _ = c.ActionStats("fn"); st.IdleSeconds < 10 {
		t.Fatalf("IdleSeconds %.1f, want >= 10", st.IdleSeconds)
	}
	// A warm reuse closes the period into the cumulative counter.
	if _, err := c.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatal(err)
	}
	st, _ = c.ActionStats("fn")
	if st.WarmHits != 1 || st.ColdStarts != 1 {
		t.Fatalf("after warm reuse: %+v", st)
	}
	if st.IdleSeconds < 10 {
		t.Fatalf("closed idle period lost: %.1f", st.IdleSeconds)
	}
	if _, err := c.ActionStats("ghost"); err == nil {
		t.Fatal("ActionStats accepted an unknown action")
	}
}

// TestScaleDownNeverReapsInFlight is the scale-down safety property test:
// an aggressive autoscaler shrinking keep-warm deadlines (down to ~0) and
// reaping continuously must never destroy a sandbox with a request in
// flight, and every invocation must still be answered. Run under -race.
func TestScaleDownNeverReapsInFlight(t *testing.T) {
	clock := vclock.Real{Scale: 0} // modeled sleeps off: pure scheduling churn
	cfg := DefaultConfig()
	cfg.Clock = clock
	cfg.SandboxStart = 0
	cfg.KeepWarm = time.Hour
	var ns []*Node
	for i := 0; i < 2; i++ {
		ns = append(ns, &Node{Name: fmt.Sprintf("node-%d", i), MemoryBytes: 512 << 20})
	}
	c := NewCluster(cfg, ns...)
	defer c.Close()

	// inflightGuard fails the test if Stop ever runs while Invoke is active.
	var made []*guardInstance
	var mu sync.Mutex
	action := &Action{
		Name: "fn", MemoryBudget: 128 << 20, Concurrency: 2,
		New: func(n *Node) (Instance, error) {
			inst := &guardInstance{t: t}
			mu.Lock()
			made = append(made, inst)
			mu.Unlock()
			return inst, nil
		},
	}
	if err := c.Deploy(action); err != nil {
		t.Fatal(err)
	}

	stopScaling := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// The hostile autoscaler: keep-warm flaps between 0 and 1ns while
		// ReapIdle runs as fast as it can.
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stopScaling:
				return
			default:
			}
			_ = c.SetKeepWarm("fn", time.Duration(rng.Intn(2)))
			c.ReapIdle()
		}
	}()

	const clients, perClient = 16, 50
	var cwg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cwg.Add(1)
		go func(cl int) {
			defer cwg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := c.Invoke(context.Background(), "fn", []byte("x")); err != nil {
					t.Errorf("invoke failed under scale-down churn: %v", err)
					return
				}
			}
		}(cl)
	}
	cwg.Wait()
	close(stopScaling)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, inst := range made {
		if inst.active.Load() != 0 {
			t.Fatal("instance left with in-flight work")
		}
	}
}
