package serverless

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sesemi/internal/vclock"
)

// trackedInstance fails the test if it is stopped while an invocation is in
// flight — the observable symptom of evicting a non-idle sandbox.
type trackedInstance struct {
	t        *testing.T
	active   atomic.Int32
	stopped  atomic.Bool
	violated *atomic.Bool
}

func (ti *trackedInstance) Invoke(p []byte) ([]byte, error) {
	ti.active.Add(1)
	if ti.stopped.Load() {
		ti.violated.Store(true)
	}
	// A tiny random hold keeps invocations overlapping with the evictors.
	if rand.Intn(4) == 0 {
		time.Sleep(time.Duration(rand.Intn(50)) * time.Microsecond)
	}
	if ti.stopped.Load() {
		ti.violated.Store(true)
	}
	ti.active.Add(-1)
	return p, nil
}

func (ti *trackedInstance) Stop() {
	ti.stopped.Store(true)
	if ti.active.Load() > 0 {
		ti.violated.Store(true)
	}
}

// TestEvictionNeverKillsInFlight drives two actions across two small nodes so
// that every cold start must evict the other action's idle sandboxes, while
// invokers, prewarmers and the reaper race. Properties (checked under -race
// in CI): an in-flight sandbox is never destroyed, node memory is never
// over-reserved, and the whole tangle finishes (no deadlock across nodes).
func TestEvictionNeverKillsInFlight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clock = vclock.Real{Scale: 0}
	cfg.KeepWarm = time.Millisecond
	nodes := []*Node{
		{Name: "n0", MemoryBytes: 256 << 20},
		{Name: "n1", MemoryBytes: 256 << 20},
	}
	c := NewCluster(cfg, nodes...)
	defer c.Close()

	var violated atomic.Bool
	deploy := func(name string) {
		err := c.Deploy(&Action{
			Name:         name,
			MemoryBudget: 128 << 20,
			Concurrency:  2,
			New: func(*Node) (Instance, error) {
				return &trackedInstance{t: t, violated: &violated}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	deploy("a")
	deploy("b")

	// Each node fits two sandboxes; two actions wanting two sandboxes each
	// keep memory contended, so eviction and re-homing run constantly.
	const (
		workers    = 8
		perWorker  = 300
		reapEvery  = 73
		warmEvery  = 97
		checkEvery = 41
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			action := "a"
			if w%2 == 1 {
				action = "b"
			}
			for i := 0; i < perWorker; i++ {
				if _, err := c.Invoke(context.Background(), action, []byte{byte(i)}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				switch {
				case i%reapEvery == 0:
					c.ReapIdle()
				case i%warmEvery == 0:
					if _, err := c.Prewarm(action, 2); err != nil {
						t.Errorf("prewarm: %v", err)
						return
					}
				case i%checkEvery == 0:
					for _, n := range nodes {
						if r := n.Reserved(); r < 0 || r > n.MemoryBytes {
							t.Errorf("node %s over-reserved: %d of %d", n.Name, r, n.MemoryBytes)
							return
						}
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("deadlock: workers did not finish")
	}
	if violated.Load() {
		t.Fatal("an in-flight sandbox was stopped")
	}
	for _, n := range nodes {
		if r := n.Reserved(); r < 0 || r > n.MemoryBytes {
			t.Fatalf("node %s reservation out of bounds after run: %d", n.Name, r)
		}
	}
	st := c.Stats()
	if st.Invocations != workers*perWorker {
		t.Fatalf("invocations %d, want %d", st.Invocations, workers*perWorker)
	}
}

// TestPrewarmNeverOverReservesRacingAcquire is the regression test for the
// over-reserve window: Prewarm used to pick a node from a stale capacity read
// and reserve afterwards, so racing with acquire on the same action could
// momentarily exceed node memory. Reservation now happens under the owning
// node's lock; this hammers both paths and samples the invariant.
func TestPrewarmNeverOverReservesRacingAcquire(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clock = vclock.Real{Scale: 0}
	node := &Node{Name: "n0", MemoryBytes: 512 << 20} // fits 4 sandboxes
	c := NewCluster(cfg, node)
	defer c.Close()
	if err := c.Deploy(&Action{
		Name:         "fn",
		MemoryBudget: 128 << 20,
		Concurrency:  1,
		New:          func(*Node) (Instance, error) { return nopInst{}, nil },
	}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var over atomic.Bool
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if node.Reserved() > node.MemoryBytes {
					over.Store(true)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if w%2 == 0 {
					if _, err := c.Prewarm("fn", 2+i%3); err != nil {
						t.Errorf("prewarm: %v", err)
						return
					}
					c.ReapIdle()
				} else if _, err := c.Invoke(context.Background(), "fn", nil); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	if over.Load() {
		t.Fatalf("node over-reserved: observed > %d", node.MemoryBytes)
	}
	if r := node.Reserved(); r > node.MemoryBytes || r < 0 {
		t.Fatalf("final reservation %d out of [0, %d]", r, node.MemoryBytes)
	}
}

// TestInvokeOnPrefersHintedNode checks the placement hint end to end: with
// warm capacity on both nodes, routed invocations land on the hinted node,
// and servedOn reports the actual placement when the hint is saturated.
func TestInvokeOnPrefersHintedNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clock = vclock.Real{Scale: 0}
	nodes := []*Node{
		{Name: "n0", MemoryBytes: 256 << 20},
		{Name: "n1", MemoryBytes: 256 << 20},
	}
	c := NewCluster(cfg, nodes...)
	defer c.Close()
	var mu sync.Mutex
	perNode := map[string]int{}
	if err := c.Deploy(&Action{
		Name:         "fn",
		MemoryBudget: 128 << 20,
		Concurrency:  4,
		New: func(n *Node) (Instance, error) {
			mu.Lock()
			perNode[n.Name]++
			mu.Unlock()
			return nopInst{}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Cold start lands on the hinted node even though n0 precedes it.
	for i := 0; i < 8; i++ {
		_, servedOn, err := c.InvokeOn(context.Background(), "fn", "n1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if servedOn != "n1" {
			t.Fatalf("request %d served on %s, want n1", i, servedOn)
		}
	}
	mu.Lock()
	if perNode["n0"] != 0 || perNode["n1"] != 1 {
		t.Fatalf("sandbox placement %v, want all on n1", perNode)
	}
	mu.Unlock()
	stats := c.NodeStats("fn")
	if len(stats) != 2 || stats[1].Node != "n1" {
		t.Fatalf("node stats %+v", stats)
	}
	if stats[1].WarmHits < 7 || stats[1].ColdStarts != 1 || stats[1].Sandboxes != 1 {
		t.Fatalf("n1 stats %+v", stats[1])
	}
	if stats[0].WarmHits != 0 {
		t.Fatalf("n0 saw warm hits: %+v", stats[0])
	}
	// An unknown hint degrades to unhinted scheduling.
	if _, _, err := c.InvokeOn(context.Background(), "fn", "ghost", nil); err != nil {
		t.Fatal(err)
	}
}

type nopInst struct{}

func (nopInst) Invoke(p []byte) ([]byte, error) { return p, nil }
func (nopInst) Stop()                           {}

// TestNodeStatsReadySlots pins the ReadySlots accounting the affinity router
// ranks nodes by.
func TestNodeStatsReadySlots(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clock = vclock.Real{Scale: 0}
	node := &Node{Name: "n0", MemoryBytes: 1 << 30}
	c := NewCluster(cfg, node)
	defer c.Close()
	if err := c.Deploy(&Action{
		Name: "fn", MemoryBudget: 128 << 20, Concurrency: 3,
		New: func(*Node) (Instance, error) { return nopInst{}, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prewarm("fn", 2); err != nil {
		t.Fatal(err)
	}
	st := c.NodeStats("fn")
	if len(st) != 1 || st[0].ReadySlots != 6 || st[0].Sandboxes != 2 {
		t.Fatalf("stats %+v, want 2 sandboxes / 6 ready slots", st)
	}
	if st[0].Reserved != 256<<20 {
		t.Fatalf("reserved %d", st[0].Reserved)
	}
	if st := c.NodeStats("ghost"); len(st) != 1 || st[0].Sandboxes != 0 {
		t.Fatalf("unknown action stats %+v", st)
	}
}

// TestCrossActionMemoryWakeup is the regression test for the sharded
// scheduler's cross-action wakeup: action A blocked on memory held by action
// B must be woken when B's sandbox goes idle (and becomes evictable) — the
// property the old cluster-wide cond.Broadcast provided for free. Without
// the idle-transition notifyAllActions, A sleeps forever here.
func TestCrossActionMemoryWakeup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clock = vclock.Real{Scale: 0}
	node := &Node{Name: "n0", MemoryBytes: 128 << 20} // room for exactly one sandbox
	c := NewCluster(cfg, node)
	defer c.Close()
	block := make(chan struct{})
	if err := c.Deploy(&Action{
		Name: "b", MemoryBudget: 128 << 20, Concurrency: 1,
		New: func(*Node) (Instance, error) {
			return &echoInstance{block: block}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(echoAction("a", 128<<20, 1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	// B occupies the whole node and blocks inside its invocation.
	bDone := make(chan error, 1)
	go func() {
		_, err := c.Invoke(context.Background(), "b", nil)
		bDone <- err
	}()
	for c.Stats().Serving["b"] == 0 {
		time.Sleep(time.Millisecond)
	}
	// A needs the node's memory; it can only run by evicting B's sandbox
	// once that goes idle.
	aDone := make(chan error, 1)
	go func() {
		_, err := c.Invoke(context.Background(), "a", nil)
		aDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let A reach the wait
	close(block)                      // B completes; its sandbox idles
	if err := <-bDone; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-aDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("action a never woke after action b's sandbox went idle")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
}
