package serverless

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sesemi/internal/faults"
	"sesemi/internal/vclock"
)

// flakyInstance fails while its node's flag is set — the gray failure the
// circuit breaker (not the crash detector) must catch.
type flakyInstance struct{ fail *atomic.Bool }

func (f flakyInstance) Invoke(p []byte) ([]byte, error) {
	if f.fail != nil && f.fail.Load() {
		return nil, errors.New("flaky: boom")
	}
	return p, nil
}
func (f flakyInstance) Stop() {}

// An invoke routed to a crashed node fails with the typed ErrNodeDown, the
// node's sandboxes are torn down, and subsequent demand rebuilds on the
// surviving node; restoring the node makes it placeable again.
func TestNodeCrashFailsTypedAndFailsOver(t *testing.T) {
	inj := faults.New(1, vclock.NewManual())
	cfg := DefaultConfig()
	cfg.Clock = vclock.Real{Scale: 0}
	cfg.Faults = inj
	nodes := []*Node{
		{Name: "n0", MemoryBytes: 256 << 20},
		{Name: "n1", MemoryBytes: 256 << 20},
	}
	c := NewCluster(cfg, nodes...)
	defer c.Close()
	if err := c.Deploy(echoAction("fn", 128<<20, 2, nil, nil)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Warm a sandbox on n0.
	if _, on, err := c.InvokeOn(ctx, "fn", "n0", []byte("x")); err != nil || on != "n0" {
		t.Fatalf("warmup: on=%q err=%v", on, err)
	}

	inj.CrashNode("n0")
	// A request already placed on n0 (it holds the only warm sandbox, but the
	// crashed node is no longer placeable, so acquire lands elsewhere — force
	// the failure by invoking through the still-claimed path): simulate the
	// in-flight case via a fresh invoke that must NOT land on n0.
	out, on, err := c.InvokeOn(ctx, "fn", "n0", []byte("y"))
	if err != nil {
		t.Fatalf("failover invoke: %v", err)
	}
	if on == "n0" {
		t.Fatalf("request served on crashed node (out=%q)", out)
	}
	if st := c.Stats(); st.Sandboxes["fn"] == 0 {
		t.Fatal("no capacity rebuilt after crash")
	}

	inj.RestoreNode("n0")
	if _, on, err := c.InvokeOn(ctx, "fn", "n0", []byte("z")); err != nil || on != "n0" {
		t.Fatalf("post-restore hinted invoke: on=%q err=%v", on, err)
	}
}

// The mid-flight variant: the fault plane crashes the node while the request
// already holds its slot, so the invoke itself must surface ErrNodeDown and
// tear the node down.
func TestNodeCrashMidFlightReturnsErrNodeDown(t *testing.T) {
	inj := faults.New(1, vclock.NewManual())
	cfg := DefaultConfig()
	cfg.Clock = vclock.Real{Scale: 0}
	cfg.Faults = inj
	n0 := &Node{Name: "n0", MemoryBytes: 256 << 20}
	c := NewCluster(cfg, n0)
	defer c.Close()
	release := make(chan struct{})
	var made []*echoInstance
	var mu sync.Mutex
	a := echoAction("fn", 128<<20, 2, &made, &mu)
	if err := c.Deploy(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "fn", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	made[0].block = release
	mu.Unlock()

	done := make(chan error, 1)
	go func() {
		_, _, err := c.InvokeOn(context.Background(), "fn", "n0", []byte("x"))
		done <- err
	}()
	// Wait until the request is inside Invoke, then crash the node under it.
	deadline := time.Now().Add(2 * time.Second)
	for made[0].calls.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// The in-process call completes, but the node died under it: the response
	// was never delivered, so the invoke must fail with the typed sentinel —
	// this is what the gateway's retry path re-dispatches.
	inj.CrashNode("n0")
	close(release)
	if err := <-done; !errors.Is(err, ErrNodeDown) {
		t.Fatalf("in-flight invoke: err = %v, want ErrNodeDown", err)
	}
	// With the only node crashed, acquire cannot place anywhere — bound it.
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer shortCancel()
	_, _, err := c.InvokeOn(shortCtx, "fn", "n0", []byte("y"))
	if err == nil {
		t.Fatal("invoke on crashed single-node cluster succeeded")
	}
	// With one node and it crashed, acquire may block forever; a deadline ctx
	// surfaces that as DeadlineExceeded — but a claim that won the race before
	// failNode swept must fail with the typed sentinel.
	if !errors.Is(err, ErrNodeDown) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

// Three consecutive instance failures open the node's breaker: hinted
// placement skips it, the health score drops, and after the cooldown a single
// half-open probe re-closes the breaker once the node recovers.
func TestBreakerOpensSkipsAndRecloses(t *testing.T) {
	clock := vclock.NewManual()
	cfg := DefaultConfig()
	cfg.Clock = clock
	cfg.SandboxStart = 0
	cfg.BreakerFailures = 3
	cfg.BreakerCooldown = 2 * time.Second
	nodes := []*Node{
		{Name: "n0", MemoryBytes: 256 << 20},
		{Name: "n1", MemoryBytes: 256 << 20},
	}
	c := NewCluster(cfg, nodes...)
	defer c.Close()
	var fail0 atomic.Bool
	err := c.Deploy(&Action{
		Name: "fn", MemoryBudget: 128 << 20, Concurrency: 2,
		New: func(n *Node) (Instance, error) {
			if n.Name == "n0" {
				return flakyInstance{fail: &fail0}, nil
			}
			return flakyInstance{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, on, err := c.InvokeOn(ctx, "fn", "n0", nil); err != nil || on != "n0" {
		t.Fatalf("warmup: on=%q err=%v", on, err)
	}

	fail0.Store(true)
	for i := 0; i < 3; i++ {
		if _, on, err := c.InvokeOn(ctx, "fn", "n0", nil); err == nil || on != "n0" {
			t.Fatalf("failure %d: on=%q err=%v", i, on, err)
		}
	}
	var n0stat NodeStat
	for _, st := range c.NodeStats("fn") {
		if st.Node == "n0" {
			n0stat = st
		}
	}
	if !n0stat.BreakerOpen {
		t.Fatal("breaker not open after 3 consecutive failures")
	}
	if n0stat.Health >= 0.6 {
		t.Fatalf("health = %.2f after 3 failures, want < 0.6", n0stat.Health)
	}

	// While open, hinted invokes are served elsewhere — no more failures.
	for i := 0; i < 4; i++ {
		if _, on, err := c.InvokeOn(ctx, "fn", "n0", nil); err != nil || on == "n0" {
			t.Fatalf("breaker-open invoke %d: on=%q err=%v", i, on, err)
		}
	}

	// Cooldown expires, node recovers: the half-open probe lands on n0,
	// succeeds, and closes the breaker.
	fail0.Store(false)
	clock.Advance(3 * time.Second)
	if _, on, err := c.InvokeOn(ctx, "fn", "n0", nil); err != nil || on != "n0" {
		t.Fatalf("probe invoke: on=%q err=%v", on, err)
	}
	for _, st := range c.NodeStats("fn") {
		if st.Node == "n0" && st.BreakerOpen {
			t.Fatal("breaker still open after successful probe")
		}
	}
}

// A failed half-open probe re-opens the breaker for another full cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := vclock.NewManual()
	cfg := DefaultConfig()
	cfg.Clock = clock
	cfg.SandboxStart = 0
	cfg.BreakerFailures = 2
	cfg.BreakerCooldown = time.Second
	nodes := []*Node{
		{Name: "n0", MemoryBytes: 256 << 20},
		{Name: "n1", MemoryBytes: 256 << 20},
	}
	c := NewCluster(cfg, nodes...)
	defer c.Close()
	var fail0 atomic.Bool
	err := c.Deploy(&Action{
		Name: "fn", MemoryBudget: 128 << 20, Concurrency: 2,
		New: func(n *Node) (Instance, error) {
			if n.Name == "n0" {
				return flakyInstance{fail: &fail0}, nil
			}
			return flakyInstance{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := c.InvokeOn(ctx, "fn", "n0", nil); err != nil {
		t.Fatal(err)
	}
	fail0.Store(true)
	for i := 0; i < 2; i++ {
		if _, _, err := c.InvokeOn(ctx, "fn", "n0", nil); err == nil {
			t.Fatalf("failure %d unexpectedly succeeded", i)
		}
	}
	clock.Advance(1500 * time.Millisecond)
	// The probe is admitted, fails, and re-opens: exactly one hinted invoke
	// reaches n0, the rest are served on n1.
	onN0 := 0
	for i := 0; i < 4; i++ {
		_, on, err := c.InvokeOn(ctx, "fn", "n0", nil)
		if on == "n0" {
			onN0++
			if err == nil {
				t.Fatal("probe on still-broken node succeeded")
			}
		} else if err != nil {
			t.Fatalf("failover invoke %d: %v", i, err)
		}
	}
	if onN0 != 1 {
		t.Fatalf("%d invokes reached the broken node within one cooldown, want exactly the probe", onN0)
	}
}

// Satellite: Cluster.Close racing in-flight OpenSession/Invoke while the
// fault plane crashes and restores nodes. Properties (run under -race in CI):
// no double-release of a sandbox slot, every request either completes or
// fails with a typed error (ErrClosed / ErrNodeDown / ctx), and the tangle
// terminates.
func TestCloseRacesInvokesDuringNodeCrashes(t *testing.T) {
	inj := faults.New(99, vclock.Real{Scale: 0})
	cfg := DefaultConfig()
	cfg.Clock = vclock.Real{Scale: 0}
	cfg.Faults = inj
	cfg.BreakerCooldown = time.Millisecond
	nodes := []*Node{
		{Name: "n0", MemoryBytes: 512 << 20},
		{Name: "n1", MemoryBytes: 512 << 20},
	}
	c := NewCluster(cfg, nodes...)
	if err := c.Deploy(echoAction("fn", 128<<20, 4, nil, nil)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	var completed, typedFail, untypedFail atomic.Int64
	classify := func(err error) {
		switch {
		case err == nil:
			completed.Add(1)
		case errors.Is(err, ErrClosed), errors.Is(err, ErrNodeDown),
			errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			typedFail.Add(1)
		default:
			untypedFail.Add(1)
		}
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 60; i++ {
				hint := fmt.Sprintf("n%d", rng.Intn(2))
				if rng.Intn(3) == 0 {
					sess, err := c.OpenSession(ctx, "fn", hint)
					if err != nil {
						classify(err)
						continue
					}
					_, err = sess.Step([]byte("s"))
					sess.Close()
					classify(err)
					continue
				}
				_, _, err := c.InvokeOn(ctx, "fn", hint, []byte("p"))
				classify(err)
			}
		}(g)
	}
	// The chaos goroutine flaps nodes while requests run.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 30; i++ {
			name := fmt.Sprintf("n%d", rng.Intn(2))
			inj.CrashNode(name)
			time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
			inj.RestoreNode(name)
			time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
		}
	}()
	time.Sleep(2 * time.Millisecond)
	c.Close() // races the in-flight invokes and the chaos schedule
	wg.Wait()
	<-chaosDone

	if untypedFail.Load() > 0 {
		t.Fatalf("%d requests failed without a typed error", untypedFail.Load())
	}
	if total := completed.Load() + typedFail.Load(); total != 8*60 {
		t.Fatalf("lost requests: %d accounted of %d", total, 8*60)
	}
}
