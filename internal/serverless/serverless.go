// Package serverless is an OpenWhisk-like serverless platform: a controller
// (proxy) that schedules function invocations onto per-node invokers, which
// run actions inside sandbox instances (containers).
//
// It reproduces the OpenWhisk behaviours the paper's evaluation depends on
// (§VI, Appendix F):
//
//   - memory-only scheduling: a sandbox occupies its action's configured
//     memory budget on a node; nodes have an invoker memory limit;
//   - placement prefers a node that already hosts sandboxes of the action;
//   - keep-warm: idle sandboxes linger for a configurable timeout
//     (3 minutes in the paper) before being reclaimed;
//   - per-sandbox concurrency: an action may allow multiple in-flight
//     requests per sandbox (how SeMIRT's multi-TCS enclaves are driven);
//   - cold-start cost: starting a sandbox charges a modeled container
//     start latency before the action instance is created;
//   - eviction: when no node has room, idle sandboxes (least recently used
//     first) are reclaimed to make space.
//
// Scheduling is sharded for concurrency (README "Scheduling & locality"):
// there is no cluster-wide mutex. Each node owns a lock over its memory
// reservations and the sandboxes it hosts; each action owns a placement lock
// that serializes cold-start/eviction decisions for that action only; and the
// hot path — claiming a slot in an already-warm sandbox — is lock-free: it
// CAS-claims a slot from an atomic per-action snapshot of ready sandboxes, so
// hundreds of concurrent clients do not convoy on any mutex.
//
// The same Cluster type backs the live servers in cmd/ and the functional
// integration tests; the large-scale experiments replay its scheduling
// policy inside the discrete-event harness.
package serverless

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sesemi/internal/faults"
	"sesemi/internal/obs"
	"sesemi/internal/vclock"
)

// Instance is a running action runtime inside a sandbox.
type Instance interface {
	// Invoke handles one request payload and returns the response payload.
	Invoke(payload []byte) ([]byte, error)
	// Stop releases the instance's resources (e.g. destroys its enclave).
	Stop()
}

// InstanceFactory creates the action runtime for a new sandbox on a node.
type InstanceFactory func(node *Node) (Instance, error)

// Action is a deployed function.
type Action struct {
	// Name is the action identifier (its endpoint).
	Name string
	// MemoryBudget is the container memory limit; the paper provisions the
	// smallest multiple of 128 MiB that fits the enclave (Appendix F).
	MemoryBudget int64
	// Concurrency is the max in-flight requests per sandbox.
	Concurrency int
	// New creates the runtime inside a fresh sandbox.
	New InstanceFactory
}

// Node is one invoker machine. Its lock covers only this node's reservations
// and hosted sandboxes — scheduling on one node never blocks another.
type Node struct {
	// Name identifies the node.
	Name string
	// MemoryBytes is the invoker memory available for sandboxes.
	MemoryBytes int64
	// Extra carries node-local substrate (e.g. the *enclave.Platform);
	// instance factories type-assert it.
	Extra any

	mu        sync.Mutex
	reserved  int64
	sandboxes map[string][]*Sandbox // action name -> sandboxes hosted here

	// Locality counters: warmHits counts acquires served by an
	// already-ready sandbox on this node; coldStarts counts sandboxes
	// started here.
	warmHits   atomic.Uint64
	coldStarts atomic.Uint64

	// Circuit breaker + health scoring, fed by per-invoke outcomes
	// (noteNodeOutcome). brkState is one of brkClosed/brkOpen/brkHalfOpen;
	// brkStamp is the clock nanos of the last open/half-open transition (the
	// cooldown anchor); brkFails counts consecutive failures; health holds
	// math.Float64bits of the invoke-success EWMA (0 means "no sample yet",
	// read as 1.0 — Float64bits(1.0) is nonzero, so the encoding is
	// unambiguous: a sampled EWMA never reaches exactly +0).
	brkState atomic.Int32
	brkStamp atomic.Int64
	brkFails atomic.Int32
	health   atomic.Uint64
}

const (
	brkClosed int32 = iota
	brkOpen
	brkHalfOpen
)

// healthAlpha is the EWMA weight of each invoke outcome in the node's health
// score: ~13 consecutive failures take a perfect node below 0.02.
const healthAlpha = 0.25

// noteHealth folds one invoke outcome into the node's health EWMA.
func (n *Node) noteHealth(ok bool) {
	for {
		old := n.health.Load()
		h := 1.0
		if old != 0 {
			h = math.Float64frombits(old)
		}
		x := 0.0
		if ok {
			x = 1.0
		}
		h = (1-healthAlpha)*h + healthAlpha*x
		if n.health.CompareAndSwap(old, math.Float64bits(h)) {
			return
		}
	}
}

// Health is the node's invoke-success EWMA in [0, 1]; a node that has never
// served an invoke scores 1.
func (n *Node) Health() float64 {
	bits := n.health.Load()
	if bits == 0 {
		return 1
	}
	return math.Float64frombits(bits)
}

// Reserved returns the memory currently reserved on the node.
func (n *Node) Reserved() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reserved
}

// removeLocked unlinks sb from the node's hosting list. Caller holds n.mu.
func (n *Node) removeLocked(sb *Sandbox) {
	list := n.sandboxes[sb.action.Name]
	for i, s := range list {
		if s == sb {
			n.sandboxes[sb.action.Name] = append(list[:i], list[i+1:]...)
			break
		}
	}
}

const (
	sandboxStarting int32 = iota
	sandboxReady
	sandboxDying // claimed for destruction, idleness being verified
	sandboxDead
)

// Sandbox is one container instance of an action on a node. Its state and
// in-flight count are atomics so the ready fast path can claim a slot without
// holding any lock; state transitions to/from dead happen under the owning
// node's lock.
type Sandbox struct {
	action *Action
	as     *actionState
	node   *Node
	inst   Instance

	state    atomic.Int32
	inFlight atomic.Int32
	lastUsed atomic.Int64 // clock nanos
	born     time.Time
}

// tryClaim reserves one slot if the sandbox is ready and has spare
// concurrency, additionally reporting whether the claim ended an idle period
// (the sandbox had nothing in flight). The claim/undo protocol pairs with the
// evictors' dying CAS: an evictor first CASes ready→dying and only destroys
// after re-reading inFlight == 0, so either the evictor observes our
// increment and reverts, or we observe its dying state and undo — a slot is
// never claimed in a sandbox that gets destroyed.
func (sb *Sandbox) tryClaim(max int32) (ok, wasIdle bool) {
	if sb.state.Load() != sandboxReady {
		return false, false
	}
	n := sb.inFlight.Add(1)
	if n > max {
		sb.inFlight.Add(-1)
		return false, false
	}
	if sb.state.Load() != sandboxReady {
		sb.inFlight.Add(-1)
		return false, false
	}
	return true, n == 1
}

// Config tunes the cluster.
type Config struct {
	// KeepWarm is how long an idle sandbox is kept before reclamation
	// ("container unused timeout", 3 minutes in Table V).
	KeepWarm time.Duration
	// SandboxStart is the modeled container start latency (image pull is
	// assumed cached, as in the paper's warmed-up clusters).
	SandboxStart time.Duration
	// InvokeOverhead is the modeled per-activation platform overhead — the
	// controller → invoker → action-proxy hop every OpenWhisk activation
	// pays. It is charged while the request holds its sandbox slot, so it
	// bounds per-slot activation throughput; a batching front-end
	// (internal/gateway) amortizes it across a whole batch. Zero disables it.
	InvokeOverhead time.Duration
	// Clock injects time; nil means the system clock.
	Clock vclock.Clock
	// Faults, when non-nil, is the fault-injection plane: node crashes and
	// latency spikes are applied per invoke and crashed nodes are skipped by
	// placement. Nil (the default) injects nothing and costs one nil check.
	Faults *faults.Injector
	// BreakerFailures is how many consecutive invoke failures on a node open
	// its circuit breaker (default 3). While open, the node is skipped by
	// InvokeOn/PrewarmOn placement; after BreakerCooldown a single half-open
	// probe is admitted — success closes the breaker, failure re-opens it.
	BreakerFailures int
	// BreakerCooldown is the open-breaker backoff before a half-open probe
	// (default 2s).
	BreakerCooldown time.Duration
}

// DefaultConfig mirrors the paper's Table V settings.
func DefaultConfig() Config {
	return Config{KeepWarm: 3 * time.Minute, SandboxStart: 500 * time.Millisecond}
}

// actionState is the per-action scheduling shard.
type actionState struct {
	a *Action

	// count is live sandboxes (starting + ready); starting counts only
	// those still starting. Both are maintained by whoever performs the
	// state transition.
	count    atomic.Int32
	starting atomic.Int32
	// Autoscaling telemetry: warmHits counts slot claims served by an
	// already-ready sandbox of this action; coldStarts counts sandboxes
	// started for it; idleNanos accrues sandbox idle time (closed idle
	// periods — a claim ending one, or an idle sandbox being destroyed).
	warmHits   atomic.Uint64
	coldStarts atomic.Uint64
	idleNanos  atomic.Int64
	// keepWarm, when positive, overrides Config.KeepWarm for this action —
	// the scale-down lever an autoscaler adapts from warm-hit/idle telemetry.
	keepWarm atomic.Int64
	// waiters counts acquires currently between registration and claim;
	// releases skip the notification machinery when it is zero.
	waiters atomic.Int32
	// ready is the lock-free fast path: a snapshot of the action's ready
	// sandboxes across all nodes. nil means stale — the next placement
	// rebuilds it under startMu. Entries are validated by tryClaim, so a
	// stale snapshot is safe, merely slower.
	ready atomic.Pointer[[]*Sandbox]
	// notifyCh is closed and replaced whenever capacity may have appeared
	// (slot release, sandbox ready, sandbox destroyed, start failure).
	notifyCh atomic.Pointer[chan struct{}]
	// startMu serializes placement decisions (cold starts, eviction) for
	// this action. It is never held during the slow container start itself.
	startMu sync.Mutex
}

func newActionState(a *Action) *actionState {
	as := &actionState{a: a}
	ch := make(chan struct{})
	as.notifyCh.Store(&ch)
	return as
}

// notify wakes every waiter. Safe for concurrent use: each caller closes
// exactly the channel it swapped out.
func (as *actionState) notify() {
	ch := make(chan struct{})
	old := as.notifyCh.Swap(&ch)
	close(*old)
}

func (as *actionState) notifyIfWaiters() {
	if as.waiters.Load() > 0 {
		as.notify()
	}
}

// Cluster is the platform controller.
type Cluster struct {
	cfg   Config
	clock vclock.Clock
	nodes []*Node

	amu     sync.RWMutex
	actions map[string]*actionState

	closed   atomic.Bool
	closedCh chan struct{}

	// waiters is the cluster-wide registered-waiter count (the sum of every
	// action's waiters). A slot release that idles a sandbox makes it
	// evictable — capacity for ANY action — so it must wake other actions'
	// waiters too; this counter lets that cross-action notify be skipped on
	// the contended-free hot path.
	waiters atomic.Int32

	// lifetime counters
	coldStarts  atomic.Uint64
	invocations atomic.Uint64
	evictions   atomic.Uint64
	nodeFails   atomic.Uint64

	// orphans holds instances of crash-killed sandboxes that still had
	// requests in flight — stopping them mid-call would race the call, so
	// they are parked here and stopped at Close.
	orphanMu sync.Mutex
	orphans  []Instance
}

// Errors returned by the cluster.
var (
	ErrUnknownAction = errors.New("serverless: unknown action")
	ErrClosed        = errors.New("serverless: cluster closed")
	// ErrNodeDown reports an invoke routed to a node the fault plane has
	// crashed. The request's slot is released and the node's sandboxes are
	// torn down, so a retrying caller lands on healthy capacity.
	ErrNodeDown = errors.New("serverless: node down")
)

// NewCluster creates a controller over the given invoker nodes.
func NewCluster(cfg Config, nodes ...*Node) *Cluster {
	if cfg.Clock == nil {
		cfg.Clock = vclock.System
	}
	for _, n := range nodes {
		n.mu.Lock()
		if n.sandboxes == nil {
			n.sandboxes = map[string][]*Sandbox{}
		}
		n.mu.Unlock()
	}
	return &Cluster{
		cfg:      cfg,
		clock:    cfg.Clock,
		nodes:    nodes,
		actions:  map[string]*actionState{},
		closedCh: make(chan struct{}),
	}
}

// Deploy registers an action.
func (c *Cluster) Deploy(a *Action) error {
	if a.Name == "" || a.New == nil {
		return errors.New("serverless: action needs a name and a factory")
	}
	if a.MemoryBudget <= 0 {
		return fmt.Errorf("serverless: action %q: memory budget %d", a.Name, a.MemoryBudget)
	}
	if a.Concurrency < 1 {
		a.Concurrency = 1
	}
	c.amu.Lock()
	defer c.amu.Unlock()
	if _, dup := c.actions[a.Name]; dup {
		return fmt.Errorf("serverless: action %q already deployed", a.Name)
	}
	c.actions[a.Name] = newActionState(a)
	return nil
}

// Actions lists deployed action names.
func (c *Cluster) Actions() []string {
	c.amu.RLock()
	defer c.amu.RUnlock()
	names := make([]string, 0, len(c.actions))
	for n := range c.actions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (c *Cluster) actionState(action string) (*actionState, error) {
	c.amu.RLock()
	as := c.actions[action]
	c.amu.RUnlock()
	if as == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAction, action)
	}
	return as, nil
}

func (c *Cluster) nodeByName(name string) *Node {
	if name == "" {
		return nil
	}
	for _, n := range c.nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Invoke routes one request to a sandbox of the action, starting one if
// needed (and evicting idle sandboxes when memory is tight). It blocks while
// the cluster is saturated, until ctx is done.
func (c *Cluster) Invoke(ctx context.Context, action string, payload []byte) ([]byte, error) {
	out, _, err := c.InvokeOn(ctx, action, "", payload)
	return out, err
}

// InvokeOn is Invoke with a placement hint: ready sandboxes on the hinted
// node are preferred, and a cold start lands there while it has room. The
// hint is advisory — when the hinted node is saturated the request is served
// wherever capacity exists — and servedOn reports the node that actually
// served it, so an affinity router (internal/gateway) can detect off-home
// dispatch and re-home. An empty or unknown hint behaves exactly like Invoke.
func (c *Cluster) InvokeOn(ctx context.Context, action, node string, payload []byte) (out []byte, servedOn string, err error) {
	sb, err := c.acquire(ctx, action, node)
	if err != nil {
		return nil, "", err
	}
	c.clock.Sleep(c.cfg.InvokeOverhead)
	out, err = c.invokeSandbox(sb, payload)
	sb.lastUsed.Store(c.clock.Now().UnixNano())
	if sb.inFlight.Add(-1) == 0 {
		// The sandbox went idle: it is now an eviction candidate, i.e.
		// capacity for EVERY action, not just this one. The old global
		// scheduler's cond.Broadcast had this property; the sharded one must
		// reproduce it or a foreign action blocked on memory sleeps forever.
		if c.waiters.Load() > 0 {
			c.notifyAllActions()
		}
	} else {
		sb.as.notifyIfWaiters()
	}
	return out, sb.node.Name, err
}

// Session is a pinned claim on one sandbox slot: every Step reaches the same
// sandbox — and therefore the same enclave — which is what lets a continuous
// gateway batch admit members and preempt between execution steps without
// re-entering placement. The slot stays counted in the sandbox's in-flight
// total until Close, so the evictor can never reap a sandbox with a live
// session.
type Session struct {
	c      *Cluster
	sb     *Sandbox
	closed atomic.Bool
}

// ErrSessionClosed reports a Step on a closed session.
var ErrSessionClosed = errors.New("serverless: session closed")

// OpenSession claims one slot of a sandbox for the action — preferring the
// hinted node, exactly like InvokeOn — and returns a session pinned to it.
// The per-activation InvokeOverhead is charged once here: that is the
// amortization a continuous session buys, N step frames entering the sandbox
// for one activation's platform overhead.
func (c *Cluster) OpenSession(ctx context.Context, action, node string) (*Session, error) {
	sb, err := c.acquire(ctx, action, node)
	if err != nil {
		return nil, err
	}
	c.clock.Sleep(c.cfg.InvokeOverhead)
	return &Session{c: c, sb: sb}, nil
}

// Node reports the node serving this session.
func (s *Session) Node() string { return s.sb.node.Name }

// Step delivers one opaque frame to the pinned sandbox's instance.
func (s *Session) Step(payload []byte) ([]byte, error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	out, err := s.c.invokeSandbox(s.sb, payload)
	s.sb.lastUsed.Store(s.c.clock.Now().UnixNano())
	return out, err
}

// invokeSandbox runs one instance call with the fault plane applied and feeds
// the node's health score and circuit breaker from the outcome. An invoke on
// a crashed node fails with ErrNodeDown and tears the node's sandboxes down,
// so retried demand rebuilds on healthy capacity. The down check repeats
// after the call: a node that died mid-execution never delivered its
// response, so a completed in-process Invoke must not count as one.
func (c *Cluster) invokeSandbox(sb *Sandbox, payload []byte) ([]byte, error) {
	if d := c.cfg.Faults.NodeDelay(sb.node.Name); d > 0 {
		c.clock.Sleep(d)
	}
	var out []byte
	var err error
	if c.cfg.Faults.NodeDown(sb.node.Name) {
		err = fmt.Errorf("%w: %s", ErrNodeDown, sb.node.Name)
		c.failNode(sb.node)
	} else {
		out, err = sb.inst.Invoke(payload)
		if err == nil && c.cfg.Faults.NodeDown(sb.node.Name) {
			out, err = nil, fmt.Errorf("%w: %s (mid-invoke)", ErrNodeDown, sb.node.Name)
			c.failNode(sb.node)
		}
	}
	c.noteNodeOutcome(sb.node, err == nil)
	return out, err
}

func (c *Cluster) breakerFailures() int {
	if c.cfg.BreakerFailures > 0 {
		return c.cfg.BreakerFailures
	}
	return 3
}

func (c *Cluster) breakerCooldown() time.Duration {
	if c.cfg.BreakerCooldown > 0 {
		return c.cfg.BreakerCooldown
	}
	return 2 * time.Second
}

// noteNodeOutcome folds one invoke outcome into the node's health EWMA and
// circuit breaker. A success closes the breaker outright (a half-open probe
// succeeded, or the node recovered on its own); the breakerFailures-th
// consecutive failure — or any failure while probing — opens it and stamps
// the cooldown anchor.
func (c *Cluster) noteNodeOutcome(n *Node, ok bool) {
	n.noteHealth(ok)
	if ok {
		n.brkFails.Store(0)
		n.brkState.Store(brkClosed)
		return
	}
	fails := n.brkFails.Add(1)
	if n.brkState.Load() != brkClosed || int(fails) >= c.breakerFailures() {
		n.brkStamp.Store(c.clock.Now().UnixNano())
		n.brkState.Store(brkOpen)
	}
}

// nodeAvailable reports whether placement may target n. A node the fault
// plane has crashed is never available; a node with an open breaker is
// skipped until its cooldown expires, after which exactly one caller wins the
// CAS into half-open and is admitted as the probe (its invoke outcome then
// closes or re-opens the breaker; the stamp reset bounds a probe that never
// lands to one cooldown). This is the filter every placement rung —
// claimFrom, tryReserve, evictAndReserve — consults.
func (c *Cluster) nodeAvailable(n *Node) bool {
	if c.cfg.Faults.NodeCrashed(n.Name) {
		return false
	}
	st := n.brkState.Load()
	if st == brkClosed {
		return true
	}
	if c.clock.Now().UnixNano()-n.brkStamp.Load() < int64(c.breakerCooldown()) {
		return false
	}
	if n.brkState.CompareAndSwap(st, brkHalfOpen) {
		n.brkStamp.Store(c.clock.Now().UnixNano())
		return true
	}
	return false
}

// failNode tears down every sandbox on a crashed node (Close's sweep, scoped
// to one node): demand must rebuild on healthy nodes, and the downed node's
// warm state is gone. Idle instances are stopped here; in-flight ones are
// parked on the orphan list and stopped at Close — stopping them mid-call
// would race the call. Starting sandboxes are marked dead and their starter's
// finalize owns the instance cleanup, exactly as under a racing Close.
func (c *Cluster) failNode(n *Node) {
	var stops []Instance
	var affected []*actionState
	now := c.clock.Now().UnixNano()
	n.mu.Lock()
	for _, sbs := range n.sandboxes {
		for _, sb := range sbs {
			st := sb.state.Load()
			if st == sandboxDead {
				continue
			}
			if st == sandboxReady && sb.inFlight.Load() == 0 {
				accrueIdle(sb, now)
			}
			sb.state.Store(sandboxDead)
			n.reserved -= sb.action.MemoryBudget
			sb.as.count.Add(-1)
			affected = append(affected, sb.as)
			if st == sandboxStarting {
				sb.as.starting.Add(-1)
				continue
			}
			if sb.inst == nil {
				continue
			}
			if sb.inFlight.Load() == 0 {
				stops = append(stops, sb.inst)
			} else {
				c.orphanMu.Lock()
				c.orphans = append(c.orphans, sb.inst)
				c.orphanMu.Unlock()
			}
		}
	}
	killed := len(affected)
	n.sandboxes = map[string][]*Sandbox{}
	n.mu.Unlock()
	if killed == 0 {
		return
	}
	c.nodeFails.Add(1)
	for _, as := range affected {
		as.ready.Store(nil)
	}
	for _, inst := range stops {
		inst.Stop()
	}
	c.notifyAllActions()
}

// Close releases the pinned slot (idempotent). The release replicates
// InvokeOn's tail: an idle sandbox is capacity for every action, not just
// this one, so cluster-wide waiters must be notified.
func (s *Session) Close() {
	if s.closed.Swap(true) {
		return
	}
	sb, c := s.sb, s.c
	sb.lastUsed.Store(c.clock.Now().UnixNano())
	if sb.inFlight.Add(-1) == 0 {
		if c.waiters.Load() > 0 {
			c.notifyAllActions()
		}
	} else {
		sb.as.notifyIfWaiters()
	}
}

// acquire finds or creates a sandbox with spare concurrency and reserves one
// slot in it.
func (c *Cluster) acquire(ctx context.Context, action, hint string) (*Sandbox, error) {
	as, err := c.actionState(action)
	if err != nil {
		return nil, err
	}
	hintNode := c.nodeByName(hint)
	for {
		if c.closed.Load() {
			return nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Register as a waiter BEFORE attempting, and capture the current
		// notification channel: any capacity that appears after this point
		// either is visible to the attempts below or closes ch.
		// Fast path first, without touching the waiter count: the common
		// case claims a warm slot with a handful of atomic ops.
		if sb := c.claimReady(as, hintNode); sb != nil {
			c.invocations.Add(1)
			return sb, nil
		}
		// Register as a waiter (per-action and cluster-wide) and retry before
		// sleeping: releases skip notification when no waiter is registered,
		// so capacity freed between the miss above and the registration is
		// only visible to a re-claim made after it. Stay registered through
		// the select — deregistering earlier would lose the wakeup.
		as.waiters.Add(1)
		c.waiters.Add(1)
		ch := *as.notifyCh.Load()
		sb := c.claimReady(as, hintNode)
		if sb == nil {
			sb, err = c.place(ctx, as, hintNode)
		}
		if err != nil || sb != nil {
			as.waiters.Add(-1)
			c.waiters.Add(-1)
			if err != nil {
				return nil, err
			}
			c.invocations.Add(1)
			return sb, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
		case <-c.closedCh:
		}
		as.waiters.Add(-1)
		c.waiters.Add(-1)
	}
}

// claimReady is the lock-free fast path: claim a slot from the action's
// ready-sandbox snapshot. A hinted claim is restricted to the hinted node —
// whether to spill off-home (and disturb warm state other streams built
// elsewhere) is a slow-path decision in place, made only after the home's
// options are exhausted. Returns nil when the snapshot is stale or has no
// claimable slot.
func (c *Cluster) claimReady(as *actionState, hint *Node) *Sandbox {
	p := as.ready.Load()
	if p == nil {
		return nil
	}
	snap := *p
	max := int32(as.a.Concurrency)
	return c.claimFrom(snap, hint, max)
}

// claimFrom claims a slot among snapshot entries (restricted to node only
// when only != nil), first fit. Snapshots are built busiest-first, so first
// fit approximates the bin-packing preference for the busiest sandbox with a
// spare slot while letting the hot path stop at the first claim instead of
// scanning the whole pool. A successful claim is a warm hit (node- and
// action-level); a claim that ends an idle period closes it into the
// action's idle-seconds telemetry.
func (c *Cluster) claimFrom(snap []*Sandbox, only *Node, max int32) *Sandbox {
	for _, sb := range snap {
		if only != nil && sb.node != only {
			continue
		}
		if !c.nodeAvailable(sb.node) {
			continue
		}
		ok, wasIdle := sb.tryClaim(max)
		if !ok {
			continue
		}
		sb.node.warmHits.Add(1)
		sb.as.warmHits.Add(1)
		if wasIdle {
			// lastUsed is read AFTER the idle-ending claim: the releaser
			// stores lastUsed before decrementing inFlight, so having
			// observed inFlight go 0→1 guarantees the store is visible —
			// reading earlier could misattribute a whole busy period as
			// idle. Only the claimer that ends the period accrues it.
			if idle := c.clock.Now().UnixNano() - sb.lastUsed.Load(); idle > 0 {
				sb.as.idleNanos.Add(idle)
			}
		}
		return sb
	}
	return nil
}

// place is the slow path: under the action's placement lock, rebuild the
// ready snapshot and retry the claim; otherwise reserve memory on a node and
// start a new sandbox there. Returns (nil, nil) when the caller should wait
// for capacity.
//
// A hinted placement walks a locality-first ladder: ready slot on the home,
// then a cold start on the home while it has room, then wait for home
// sandboxes that are already starting (warm capacity is imminent — spilling
// off-home now would trample warm state other streams built elsewhere), and
// only then the unhinted ladder: any ready slot, any node with room,
// eviction.
func (c *Cluster) place(ctx context.Context, as *actionState, hint *Node) (*Sandbox, error) {
	if hint != nil && !c.nodeAvailable(hint) {
		// A hint pointing at a crashed or breaker-open node is void: walking
		// its locality rungs would only wait on capacity that cannot serve.
		hint = nil
	}
	as.startMu.Lock()
	if c.closed.Load() {
		as.startMu.Unlock()
		return nil, ErrClosed
	}
	snap := c.rebuildSnapshot(as)
	max := int32(as.a.Concurrency)
	if hint != nil {
		if sb := c.claimFrom(snap, hint, max); sb != nil {
			as.startMu.Unlock()
			return sb, nil
		}
		if c.tryReserve(hint, as.a.MemoryBudget) {
			sb := c.registerStarting(as, hint, 1)
			as.startMu.Unlock()
			if err := c.confirmOpenOrAbort(sb); err != nil {
				return nil, err
			}
			return c.startSandboxTraced(ctx, sb)
		}
		if c.startingOn(hint, as) > 0 {
			as.startMu.Unlock()
			return nil, nil
		}
	}
	if sb := c.claimFrom(snap, nil, max); sb != nil {
		as.startMu.Unlock()
		return sb, nil
	}
	// Sandboxes already starting absorb pending demand: if their spare
	// slots cover every current waiter, wait for them instead of starting
	// more. (Start failures notify, so absorbed waiters always re-place.)
	if st := as.starting.Load(); st > 0 && int(st)*as.a.Concurrency >= int(as.waiters.Load()) {
		as.startMu.Unlock()
		return nil, nil
	}
	node := c.reserveNode(as, hint, true)
	if node == nil {
		as.startMu.Unlock()
		return nil, nil
	}
	sb := c.registerStarting(as, node, 1)
	as.startMu.Unlock()
	if err := c.confirmOpenOrAbort(sb); err != nil {
		return nil, err
	}
	return c.startSandboxTraced(ctx, sb)
}

// startSandboxTraced wraps the cold start with the placement-level span: if
// the invoking context carries an obs.Sink (the gateway's traced-dispatch
// collector), the container start + instance factory time is recorded as a
// cold_start span and stitched into every member trace of the dispatch.
func (c *Cluster) startSandboxTraced(ctx context.Context, sb *Sandbox) (*Sandbox, error) {
	sink := obs.SinkFrom(ctx)
	if sink == nil {
		return c.startSandbox(sb)
	}
	t0 := c.clock.Now()
	out, err := c.startSandbox(sb)
	if err == nil && out != nil {
		sink.Observe(obs.StageColdStart, t0, c.clock.Now())
	}
	return out, err
}

// confirmOpenOrAbort is the post-registration closed re-check. Close() does
// not take the per-action placement locks, so a placement can pass its
// closed check, lose the CPU, and register a starting sandbox on a node
// Close has already swept — a resurrected sandbox whose instance would never
// be stopped and whose reservation would never be released. Re-checking
// after registration closes the window: reading closed==false here proves
// the registration happened before Close's sweep (which then owns the
// cleanup); reading true aborts, with the starting→dead transition under
// the node lock deciding exactly-once bookkeeping between this and Close.
func (c *Cluster) confirmOpenOrAbort(sb *Sandbox) error {
	if !c.closed.Load() {
		return nil
	}
	n := sb.node
	n.mu.Lock()
	if sb.state.Load() == sandboxStarting {
		sb.state.Store(sandboxDead)
		n.reserved -= sb.action.MemoryBudget
		n.removeLocked(sb)
		n.mu.Unlock()
		sb.as.count.Add(-1)
		sb.as.starting.Add(-1)
		return ErrClosed
	}
	n.mu.Unlock() // Close's sweep saw it and already cleaned up
	return ErrClosed
}

// rebuildSnapshot refreshes the action's ready snapshot from the per-node
// hosting lists. Caller holds as.startMu.
func (c *Cluster) rebuildSnapshot(as *actionState) []*Sandbox {
	snap := make([]*Sandbox, 0, as.count.Load())
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, sb := range n.sandboxes[as.a.Name] {
			if sb.state.Load() == sandboxReady {
				snap = append(snap, sb)
			}
		}
		n.mu.Unlock()
	}
	// Busiest first: first-fit claims then pack requests into the fewest
	// sandboxes (the snapshot's ordering is advisory — tryClaim revalidates).
	sort.Slice(snap, func(i, j int) bool { return snap[i].inFlight.Load() > snap[j].inFlight.Load() })
	as.ready.Store(&snap)
	return snap
}

// startingOn counts the action's starting sandboxes on node n.
func (c *Cluster) startingOn(n *Node, as *actionState) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	starting := 0
	for _, sb := range n.sandboxes[as.a.Name] {
		if sb.state.Load() == sandboxStarting {
			starting++
		}
	}
	return starting
}

// reserveNode picks a node for a new sandbox of the action and reserves the
// memory budget on it — check and reservation are atomic under the node's
// lock, so racing placements can never over-reserve a node. Preference
// order: the hinted node, nodes already hosting the action, any node with
// room, then (when evict) a node where reclaiming idle sandboxes frees
// enough. Caller holds as.startMu.
func (c *Cluster) reserveNode(as *actionState, hint *Node, evict bool) *Node {
	budget := as.a.MemoryBudget
	if hint != nil && c.tryReserve(hint, budget) {
		return hint
	}
	for _, n := range c.nodes {
		if n == hint || !c.nodeAvailable(n) {
			continue
		}
		n.mu.Lock()
		hosting := len(n.sandboxes[as.a.Name]) > 0
		if hosting && n.reserved+budget <= n.MemoryBytes {
			n.reserved += budget
			n.mu.Unlock()
			return n
		}
		n.mu.Unlock()
	}
	for _, n := range c.nodes {
		if n != hint && c.tryReserve(n, budget) {
			return n
		}
	}
	if !evict {
		return nil
	}
	if hint != nil && c.evictAndReserve(hint, budget) {
		return hint
	}
	for _, n := range c.nodes {
		if n != hint && c.evictAndReserve(n, budget) {
			return n
		}
	}
	return nil
}

func (c *Cluster) tryReserve(n *Node, budget int64) bool {
	if !c.nodeAvailable(n) {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.reserved+budget > n.MemoryBytes {
		return false
	}
	n.reserved += budget
	return true
}

// evictAndReserve destroys idle sandboxes on node n (least recently used
// first) until budget bytes fit, then reserves them — all under the node's
// lock, so the freed memory cannot be stolen by a racing placement. It evicts
// nothing if even reclaiming every idle sandbox would not fit. In-flight
// sandboxes are never victims: candidates are claimed with a ready→dying CAS
// and destroyed only if still idle.
func (c *Cluster) evictAndReserve(n *Node, budget int64) bool {
	if !c.nodeAvailable(n) {
		return false
	}
	var stops []Instance
	var victims []*Sandbox
	ok := func() bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.reserved+budget <= n.MemoryBytes {
			n.reserved += budget
			return true
		}
		var idle []*Sandbox
		var reclaimable int64
		for _, sbs := range n.sandboxes {
			for _, sb := range sbs {
				if sb.state.Load() == sandboxReady && sb.inFlight.Load() == 0 {
					idle = append(idle, sb)
					reclaimable += sb.action.MemoryBudget
				}
			}
		}
		if n.reserved-reclaimable+budget > n.MemoryBytes {
			return false
		}
		sort.Slice(idle, func(i, j int) bool { return idle[i].lastUsed.Load() < idle[j].lastUsed.Load() })
		for _, sb := range idle {
			if n.reserved+budget <= n.MemoryBytes {
				break
			}
			if !sb.state.CompareAndSwap(sandboxReady, sandboxDying) {
				continue
			}
			if sb.inFlight.Load() != 0 {
				// Claimed by the lock-free fast path since we collected it.
				sb.state.Store(sandboxReady)
				continue
			}
			sb.state.Store(sandboxDead)
			n.reserved -= sb.action.MemoryBudget
			n.removeLocked(sb)
			victims = append(victims, sb)
			if sb.inst != nil {
				stops = append(stops, sb.inst)
			}
		}
		if n.reserved+budget > n.MemoryBytes {
			return false
		}
		n.reserved += budget
		return true
	}()
	now := c.clock.Now().UnixNano()
	for _, sb := range victims {
		accrueIdle(sb, now)
		sb.as.count.Add(-1)
		sb.as.ready.Store(nil)
		c.evictions.Add(1)
	}
	for _, inst := range stops {
		inst.Stop()
	}
	if len(victims) > 0 {
		c.notifyAllActions()
	}
	return ok
}

// accrueIdle closes an idle sandbox's final idle period into its action's
// telemetry — the destruction-path counterpart of claimFrom's accounting.
func accrueIdle(sb *Sandbox, nowNanos int64) {
	if idle := nowNanos - sb.lastUsed.Load(); idle > 0 {
		sb.as.idleNanos.Add(idle)
	}
}

// registerStarting creates a starting sandbox on a node whose memory is
// already reserved, linking it into the node's hosting list. claimed pre-books
// slots for the creator (1 from acquire, 0 from Prewarm).
func (c *Cluster) registerStarting(as *actionState, n *Node, claimed int32) *Sandbox {
	sb := &Sandbox{action: as.a, as: as, node: n, born: c.clock.Now()}
	sb.state.Store(sandboxStarting)
	sb.inFlight.Store(claimed)
	n.mu.Lock()
	n.sandboxes[as.a.Name] = append(n.sandboxes[as.a.Name], sb)
	n.mu.Unlock()
	as.count.Add(1)
	as.starting.Add(1)
	return sb
}

// startSandbox runs the slow part of a cold start — the modeled container
// start plus the instance factory — without holding any scheduling lock, then
// finalizes the sandbox under its node's lock. The starting→ready (or, on
// failure / racing Close, →dead) transition is performed exactly once; its
// performer owns the bookkeeping.
func (c *Cluster) startSandbox(sb *Sandbox) (*Sandbox, error) {
	as, n := sb.as, sb.node
	var inst Instance
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serverless: instance factory panicked: %v", r)
			}
		}()
		c.clock.Sleep(c.cfg.SandboxStart)
		inst, err = as.a.New(n)
	}()
	n.mu.Lock()
	if sb.state.Load() == sandboxDead {
		// Close destroyed the sandbox while it was starting (and already
		// released its reservation and counts): don't resurrect it, and
		// don't orphan the instance we just built.
		n.mu.Unlock()
		if inst != nil {
			inst.Stop()
		}
		as.notify()
		return nil, ErrClosed
	}
	if err != nil {
		sb.state.Store(sandboxDead)
		n.reserved -= as.a.MemoryBudget
		n.removeLocked(sb)
		n.mu.Unlock()
		as.count.Add(-1)
		as.starting.Add(-1)
		// The failed start released node memory — capacity for ANY action —
		// and absorbed waiters of this action must re-place, so the wakeup
		// is unconditional and cluster-wide.
		c.notifyAllActions()
		return nil, fmt.Errorf("serverless: start %q on %q: %w", as.a.Name, n.Name, err)
	}
	sb.inst = inst
	sb.lastUsed.Store(c.clock.Now().UnixNano())
	sb.state.Store(sandboxReady)
	n.mu.Unlock()
	as.starting.Add(-1)
	as.ready.Store(nil) // membership changed: next placement rebuilds
	n.coldStarts.Add(1)
	as.coldStarts.Add(1)
	c.coldStarts.Add(1)
	as.notify()
	return sb, nil
}

// Prewarm ensures up to want sandboxes of the action exist (starting or
// ready) without dispatching a request — the warm-capacity hook a front-end
// scheduler drives from queue depth. It starts sandboxes only while a node
// has spare memory (it never evicts, and never blocks waiting for capacity)
// and returns how many sandboxes it started; on full nodes that can be 0.
// Memory is reserved under the owning node's lock, so racing with acquire on
// the same action can never over-reserve a node.
func (c *Cluster) Prewarm(action string, want int) (int, error) {
	return c.PrewarmOn(action, "", want)
}

// PrewarmOn is Prewarm with a placement hint: new sandboxes are reserved on
// the hinted node first (falling back to the usual placement order when it
// is full), so a locality-aware front-end can land warm capacity on the
// node its affinity router will dispatch the action's batches to. An empty
// or unknown node name means no preference.
func (c *Cluster) PrewarmOn(action, node string, want int) (int, error) {
	as, err := c.actionState(action)
	if err != nil {
		return 0, err
	}
	hint := c.nodeByName(node)
	deficit := want - int(as.count.Load())
	if deficit <= 0 {
		return 0, nil
	}
	// Container starts are independent: run them concurrently so warm
	// capacity arrives in ~one SandboxStart, not deficit of them. Each
	// goroutine re-checks the live count under the placement lock, so the
	// target is not overshot.
	var wg sync.WaitGroup
	var mu sync.Mutex
	started := 0
	var firstErr error
	for i := 0; i < deficit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			as.startMu.Lock()
			if c.closed.Load() || int(as.count.Load()) >= want {
				as.startMu.Unlock()
				return
			}
			// Never evict for warm capacity: evicting idle sandboxes to
			// prewarm would cannibalize the warm pool this call is building.
			n := c.reserveNode(as, hint, false)
			if n == nil {
				as.startMu.Unlock()
				return
			}
			sb := c.registerStarting(as, n, 0)
			as.startMu.Unlock()
			if c.confirmOpenOrAbort(sb) != nil {
				return // racing Close: registration aborted
			}
			_, err := c.startSandbox(sb)
			mu.Lock()
			switch {
			case err == nil:
				started++
			case !errors.Is(err, ErrClosed) && firstErr == nil:
				firstErr = err
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return started, firstErr
}

// notifyAllActions wakes waiters of every action — memory freed on a node can
// unblock any of them.
func (c *Cluster) notifyAllActions() {
	c.amu.RLock()
	defer c.amu.RUnlock()
	for _, as := range c.actions {
		as.notify()
	}
}

// ReapIdle destroys sandboxes idle past their keep-warm deadline — the
// action's adaptive override (SetKeepWarm) when set, Config.KeepWarm
// otherwise — and returns how many were reclaimed. Call it periodically
// (StartReaper does).
func (c *Cluster) ReapIdle() int {
	now := c.clock.Now().UnixNano()
	reaped := 0
	var stops []Instance
	var victims []*Sandbox
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, sbs := range n.sandboxes {
			for _, sb := range append([]*Sandbox(nil), sbs...) {
				cutoff := now - int64(c.effectiveKeepWarm(sb.as))
				if sb.state.Load() != sandboxReady || sb.inFlight.Load() != 0 || sb.lastUsed.Load() > cutoff {
					continue
				}
				if !sb.state.CompareAndSwap(sandboxReady, sandboxDying) {
					continue
				}
				if sb.inFlight.Load() != 0 {
					sb.state.Store(sandboxReady)
					continue
				}
				sb.state.Store(sandboxDead)
				n.reserved -= sb.action.MemoryBudget
				n.removeLocked(sb)
				victims = append(victims, sb)
				if sb.inst != nil {
					stops = append(stops, sb.inst)
				}
				reaped++
			}
		}
		n.mu.Unlock()
	}
	for _, sb := range victims {
		accrueIdle(sb, now)
		sb.as.count.Add(-1)
		sb.as.ready.Store(nil)
	}
	for _, inst := range stops {
		inst.Stop()
	}
	if reaped > 0 {
		c.notifyAllActions()
	}
	return reaped
}

// effectiveKeepWarm is the action's reaping deadline: its adaptive override
// when set, the cluster default otherwise.
func (c *Cluster) effectiveKeepWarm(as *actionState) time.Duration {
	if kw := as.keepWarm.Load(); kw > 0 {
		return time.Duration(kw)
	}
	return c.cfg.KeepWarm
}

// SetKeepWarm overrides the action's keep-warm deadline — the scale-down
// lever an autoscaler drives from warm-hit and idle telemetry. d <= 0
// restores Config.KeepWarm. The override applies from the next ReapIdle; it
// never destroys anything by itself, and an in-flight sandbox is never a
// reaping victim regardless of how short the deadline gets.
func (c *Cluster) SetKeepWarm(action string, d time.Duration) error {
	as, err := c.actionState(action)
	if err != nil {
		return err
	}
	if d < 0 {
		d = 0
	}
	as.keepWarm.Store(int64(d))
	return nil
}

// KeepWarm reports the action's effective keep-warm deadline.
func (c *Cluster) KeepWarm(action string) (time.Duration, error) {
	as, err := c.actionState(action)
	if err != nil {
		return 0, err
	}
	return c.effectiveKeepWarm(as), nil
}

// StartReaper runs ReapIdle on an interval of the cluster's clock until the
// returned function is called (or the cluster closes). With the default
// system clock that is a wall-clock interval; with an injected clock
// (vclock.Manual) the ticks follow virtual time, so sim-time tests drive
// reaping deterministically by advancing the clock.
func (c *Cluster) StartReaper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		// The pre-clock implementation's time.NewTicker panicked here; keep
		// the loud failure — a zero interval would busy-spin the reap loop.
		panic("serverless: StartReaper interval must be positive")
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-vclock.After(c.clock, interval):
				c.ReapIdle()
			case <-done:
				return
			case <-c.closedCh:
				return
			}
		}
	}()
	return func() { close(done) }
}

// Stats is a snapshot of cluster state.
type Stats struct {
	// Sandboxes counts live sandboxes per action.
	Sandboxes map[string]int
	// Serving counts sandboxes with at least one in-flight request.
	Serving map[string]int
	// MemoryReserved is the total reserved bytes across nodes.
	MemoryReserved int64
	// ColdStarts, Invocations and Evictions are lifetime counters.
	ColdStarts, Invocations, Evictions uint64
	// NodeFailures counts node-crash teardowns (failNode sweeps that killed
	// at least one sandbox).
	NodeFailures uint64
}

// Stats returns a snapshot.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Sandboxes:   map[string]int{},
		Serving:     map[string]int{},
		ColdStarts:   c.coldStarts.Load(),
		Invocations:  c.invocations.Load(),
		Evictions:    c.evictions.Load(),
		NodeFailures: c.nodeFails.Load(),
	}
	for _, n := range c.nodes {
		n.mu.Lock()
		for name, sbs := range n.sandboxes {
			for _, sb := range sbs {
				if sb.state.Load() == sandboxDead {
					continue
				}
				st.Sandboxes[name]++
				if sb.inFlight.Load() > 0 {
					st.Serving[name]++
				}
			}
		}
		st.MemoryReserved += n.reserved
		n.mu.Unlock()
	}
	return st
}

// RegisterMetrics exports the cluster's lifetime counters and per-node
// health on the unified registry. Per-node series carry a "node" label on
// top of the caller's labels; everything is a scrape-time read over state
// the cluster already maintains.
func (c *Cluster) RegisterMetrics(reg *obs.Registry, labels obs.Labels) {
	if reg == nil {
		return
	}
	reg.CounterFunc("sesemi_cluster_invocations_total", "Sandbox slots acquired.", labels,
		func() float64 { return float64(c.invocations.Load()) })
	reg.CounterFunc("sesemi_cluster_cold_starts_total", "Sandboxes started.", labels,
		func() float64 { return float64(c.coldStarts.Load()) })
	reg.CounterFunc("sesemi_cluster_evictions_total", "Idle sandboxes evicted.", labels,
		func() float64 { return float64(c.evictions.Load()) })
	reg.CounterFunc("sesemi_cluster_node_failures_total", "Node-crash teardowns.", labels,
		func() float64 { return float64(c.nodeFails.Load()) })
	reg.GaugeFunc("sesemi_cluster_memory_reserved_bytes", "Reserved container memory across nodes.", labels,
		func() float64 { return float64(c.Stats().MemoryReserved) })
	for _, n := range c.nodes {
		n := n
		l := labels.With("node", n.Name)
		reg.GaugeFunc("sesemi_cluster_node_health", "Node invoke-success EWMA in [0, 1].", l,
			func() float64 { return n.Health() })
		reg.CounterFunc("sesemi_cluster_node_warm_hits_total", "Acquires served warm on this node.", l,
			func() float64 { return float64(n.warmHits.Load()) })
		reg.CounterFunc("sesemi_cluster_node_cold_starts_total", "Sandboxes started on this node.", l,
			func() float64 { return float64(n.coldStarts.Load()) })
	}
}

// NodeStat is one node's scheduling snapshot for an action — what an
// affinity router needs to pick and keep a home node.
type NodeStat struct {
	// Node is the node name (the InvokeOn hint).
	Node string
	// Capacity and Reserved are the node's invoker memory and current
	// reservation in bytes.
	Capacity, Reserved int64
	// Sandboxes is the node's live sandbox count for the action;
	// ReadySlots is the spare concurrency across its ready sandboxes.
	Sandboxes, ReadySlots int
	// WarmHits counts acquires served by a ready sandbox on this node;
	// ColdStarts counts sandboxes started here (all actions).
	WarmHits, ColdStarts uint64
	// Health is the node's invoke-success EWMA in [0, 1] (1 = healthy).
	Health float64
	// BreakerOpen reports whether the node's circuit breaker currently
	// refuses placement (open, or half-open with a probe in flight).
	BreakerOpen bool
}

// NodeStats returns per-node scheduling state for the action, in node order.
func (c *Cluster) NodeStats(action string) []NodeStat {
	c.amu.RLock()
	as := c.actions[action]
	c.amu.RUnlock()
	out := make([]NodeStat, 0, len(c.nodes))
	for _, n := range c.nodes {
		st := NodeStat{
			Node:        n.Name,
			Capacity:    n.MemoryBytes,
			WarmHits:    n.warmHits.Load(),
			ColdStarts:  n.coldStarts.Load(),
			Health:      n.Health(),
			BreakerOpen: n.brkState.Load() != brkClosed,
		}
		n.mu.Lock()
		st.Reserved = n.reserved
		if as != nil {
			for _, sb := range n.sandboxes[action] {
				s := sb.state.Load()
				if s == sandboxDead {
					continue
				}
				st.Sandboxes++
				if s == sandboxReady {
					if spare := as.a.Concurrency - int(sb.inFlight.Load()); spare > 0 {
						st.ReadySlots += spare
					}
				}
			}
		}
		n.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// ActionStats is one action's autoscaling telemetry: the warm-pool shape an
// arrival-rate forecaster sizes against, and the warm-hit/idle signals a
// scale-down policy adapts the keep-warm deadline from.
type ActionStats struct {
	// Live counts the action's sandboxes (starting + ready); Starting only
	// those still starting; Idle the ready ones with nothing in flight.
	Live, Starting, Idle int
	// InFlight is the action's in-flight request count across sandboxes.
	InFlight int
	// WarmHits counts slot claims served by an already-ready sandbox;
	// ColdStarts counts sandboxes started for the action (prewarmed ones
	// included). Both are lifetime counters.
	WarmHits, ColdStarts uint64
	// IdleSeconds is the cumulative idle sandbox-seconds the action has
	// accrued — closed idle periods plus the open ones of currently idle
	// sandboxes. The enclave-memory squatting a scale-down policy shrinks.
	IdleSeconds float64
	// KeepWarm is the action's effective keep-warm deadline.
	KeepWarm time.Duration
}

// ActionStats returns the action's telemetry snapshot.
func (c *Cluster) ActionStats(action string) (ActionStats, error) {
	as, err := c.actionState(action)
	if err != nil {
		return ActionStats{}, err
	}
	now := c.clock.Now().UnixNano()
	st := ActionStats{
		WarmHits:   as.warmHits.Load(),
		ColdStarts: as.coldStarts.Load(),
		KeepWarm:   c.effectiveKeepWarm(as),
	}
	idleNanos := as.idleNanos.Load()
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, sb := range n.sandboxes[action] {
			state := sb.state.Load()
			if state == sandboxDead {
				continue
			}
			st.Live++
			if state == sandboxStarting {
				st.Starting++
			}
			inFlight := int(sb.inFlight.Load())
			st.InFlight += inFlight
			if state == sandboxReady && inFlight == 0 {
				st.Idle++
				if open := now - sb.lastUsed.Load(); open > 0 {
					idleNanos += open
				}
			}
		}
		n.mu.Unlock()
	}
	st.IdleSeconds = float64(idleNanos) / float64(time.Second)
	return st, nil
}

// Close destroys all sandboxes and refuses further invocations.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	close(c.closedCh)
	now := c.clock.Now().UnixNano()
	var stops []Instance
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, sbs := range n.sandboxes {
			for _, sb := range sbs {
				st := sb.state.Load()
				if st == sandboxDead {
					continue
				}
				if st == sandboxReady && sb.inFlight.Load() == 0 {
					accrueIdle(sb, now)
				}
				sb.state.Store(sandboxDead)
				n.reserved -= sb.action.MemoryBudget
				sb.as.count.Add(-1)
				if st == sandboxStarting {
					// The starter's finalize will observe dead: it stops the
					// instance it built and performs no further bookkeeping,
					// so the starting count is settled here.
					sb.as.starting.Add(-1)
					continue
				}
				if sb.inst != nil {
					stops = append(stops, sb.inst)
				}
			}
		}
		n.sandboxes = map[string][]*Sandbox{}
		n.mu.Unlock()
	}
	c.amu.RLock()
	for _, as := range c.actions {
		as.ready.Store(nil)
	}
	c.amu.RUnlock()
	for _, inst := range stops {
		inst.Stop()
	}
	// Crash-killed instances that were in flight at fail time were parked
	// rather than stopped; their calls have long returned by teardown.
	c.orphanMu.Lock()
	orphans := c.orphans
	c.orphans = nil
	c.orphanMu.Unlock()
	for _, inst := range orphans {
		inst.Stop()
	}
	c.notifyAllActions()
}
