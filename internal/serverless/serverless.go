// Package serverless is an OpenWhisk-like serverless platform: a controller
// (proxy) that schedules function invocations onto per-node invokers, which
// run actions inside sandbox instances (containers).
//
// It reproduces the OpenWhisk behaviours the paper's evaluation depends on
// (§VI, Appendix F):
//
//   - memory-only scheduling: a sandbox occupies its action's configured
//     memory budget on a node; nodes have an invoker memory limit;
//   - placement prefers a node that already hosts sandboxes of the action;
//   - keep-warm: idle sandboxes linger for a configurable timeout
//     (3 minutes in the paper) before being reclaimed;
//   - per-sandbox concurrency: an action may allow multiple in-flight
//     requests per sandbox (how SeMIRT's multi-TCS enclaves are driven);
//   - cold-start cost: starting a sandbox charges a modeled container
//     start latency before the action instance is created;
//   - eviction: when no node has room, idle sandboxes (least recently used
//     first) are reclaimed to make space.
//
// The same Cluster type backs the live servers in cmd/ and the functional
// integration tests; the large-scale experiments replay its scheduling
// policy inside the discrete-event harness.
package serverless

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sesemi/internal/vclock"
)

// Instance is a running action runtime inside a sandbox.
type Instance interface {
	// Invoke handles one request payload and returns the response payload.
	Invoke(payload []byte) ([]byte, error)
	// Stop releases the instance's resources (e.g. destroys its enclave).
	Stop()
}

// InstanceFactory creates the action runtime for a new sandbox on a node.
type InstanceFactory func(node *Node) (Instance, error)

// Action is a deployed function.
type Action struct {
	// Name is the action identifier (its endpoint).
	Name string
	// MemoryBudget is the container memory limit; the paper provisions the
	// smallest multiple of 128 MiB that fits the enclave (Appendix F).
	MemoryBudget int64
	// Concurrency is the max in-flight requests per sandbox.
	Concurrency int
	// New creates the runtime inside a fresh sandbox.
	New InstanceFactory
}

// Node is one invoker machine.
type Node struct {
	// Name identifies the node.
	Name string
	// MemoryBytes is the invoker memory available for sandboxes.
	MemoryBytes int64
	// Extra carries node-local substrate (e.g. the *enclave.Platform);
	// instance factories type-assert it.
	Extra any

	mu       sync.Mutex
	reserved int64
}

func (n *Node) reserve(b int64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.reserved+b > n.MemoryBytes {
		return false
	}
	n.reserved += b
	return true
}

func (n *Node) release(b int64) {
	n.mu.Lock()
	n.reserved -= b
	n.mu.Unlock()
}

// Reserved returns the memory currently reserved on the node.
func (n *Node) Reserved() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reserved
}

type sandboxState int

const (
	sandboxStarting sandboxState = iota
	sandboxReady
	sandboxDead
)

// Sandbox is one container instance of an action on a node.
type Sandbox struct {
	action   *Action
	node     *Node
	inst     Instance
	state    sandboxState
	inFlight int
	lastUsed time.Time
	born     time.Time
}

// Config tunes the cluster.
type Config struct {
	// KeepWarm is how long an idle sandbox is kept before reclamation
	// ("container unused timeout", 3 minutes in Table V).
	KeepWarm time.Duration
	// SandboxStart is the modeled container start latency (image pull is
	// assumed cached, as in the paper's warmed-up clusters).
	SandboxStart time.Duration
	// InvokeOverhead is the modeled per-activation platform overhead — the
	// controller → invoker → action-proxy hop every OpenWhisk activation
	// pays. It is charged while the request holds its sandbox slot, so it
	// bounds per-slot activation throughput; a batching front-end
	// (internal/gateway) amortizes it across a whole batch. Zero disables it.
	InvokeOverhead time.Duration
	// Clock injects time; nil means the system clock.
	Clock vclock.Clock
}

// DefaultConfig mirrors the paper's Table V settings.
func DefaultConfig() Config {
	return Config{KeepWarm: 3 * time.Minute, SandboxStart: 500 * time.Millisecond}
}

// Cluster is the platform controller.
type Cluster struct {
	cfg   Config
	clock vclock.Clock
	nodes []*Node

	mu        sync.Mutex
	cond      *sync.Cond
	actions   map[string]*Action
	sandboxes map[string][]*Sandbox // action name -> instances
	closed    bool

	// counters
	coldStarts  uint64
	invocations uint64
	evictions   uint64
}

// Errors returned by the cluster.
var (
	ErrUnknownAction = errors.New("serverless: unknown action")
	ErrClosed        = errors.New("serverless: cluster closed")
)

// NewCluster creates a controller over the given invoker nodes.
func NewCluster(cfg Config, nodes ...*Node) *Cluster {
	if cfg.Clock == nil {
		cfg.Clock = vclock.System
	}
	c := &Cluster{
		cfg:       cfg,
		clock:     cfg.Clock,
		nodes:     nodes,
		actions:   map[string]*Action{},
		sandboxes: map[string][]*Sandbox{},
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Deploy registers an action.
func (c *Cluster) Deploy(a *Action) error {
	if a.Name == "" || a.New == nil {
		return errors.New("serverless: action needs a name and a factory")
	}
	if a.MemoryBudget <= 0 {
		return fmt.Errorf("serverless: action %q: memory budget %d", a.Name, a.MemoryBudget)
	}
	if a.Concurrency < 1 {
		a.Concurrency = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.actions[a.Name]; dup {
		return fmt.Errorf("serverless: action %q already deployed", a.Name)
	}
	c.actions[a.Name] = a
	return nil
}

// Actions lists deployed action names.
func (c *Cluster) Actions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.actions))
	for n := range c.actions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Invoke routes one request to a sandbox of the action, starting one if
// needed (and evicting idle sandboxes when memory is tight). It blocks while
// the cluster is saturated, until ctx is done.
func (c *Cluster) Invoke(ctx context.Context, action string, payload []byte) ([]byte, error) {
	sb, err := c.acquire(ctx, action)
	if err != nil {
		return nil, err
	}
	c.clock.Sleep(c.cfg.InvokeOverhead)
	out, err := sb.inst.Invoke(payload)
	c.mu.Lock()
	sb.inFlight--
	sb.lastUsed = c.clock.Now()
	c.cond.Broadcast()
	c.mu.Unlock()
	return out, err
}

// Prewarm ensures up to want sandboxes of the action exist (starting or
// ready) without dispatching a request — the warm-capacity hook a front-end
// scheduler drives from queue depth. It starts sandboxes only while a node
// has spare memory (it never evicts, and never blocks waiting for capacity)
// and returns how many sandboxes it started; on full nodes that can be 0.
func (c *Cluster) Prewarm(action string, want int) (int, error) {
	c.mu.Lock()
	a, ok := c.actions[action]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownAction, action)
	}
	deficit := want - len(c.sandboxes[action])
	c.mu.Unlock()
	if deficit <= 0 {
		return 0, nil
	}
	// Container starts are independent: run them concurrently so warm
	// capacity arrives in ~one SandboxStart, not deficit of them. Each
	// goroutine re-checks the count under the lock (startSandboxLocked
	// registers the starting sandbox before dropping it), so the target is
	// not overshot.
	var wg sync.WaitGroup
	var mu sync.Mutex
	started := 0
	var firstErr error
	for i := 0; i < deficit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.mu.Lock()
			if c.closed || len(c.sandboxes[action]) >= want {
				c.mu.Unlock()
				return
			}
			// Never evict for warm capacity: evicting idle sandboxes to
			// prewarm would cannibalize the warm pool this call is building.
			var node *Node
			for _, n := range c.nodes {
				if n.Reserved()+a.MemoryBudget <= n.MemoryBytes {
					node = n
					break
				}
			}
			if node == nil {
				c.mu.Unlock()
				return
			}
			_, err := c.startSandboxLocked(a, node)
			if err == nil {
				c.coldStarts++
			}
			c.mu.Unlock()
			mu.Lock()
			switch {
			case err == nil:
				started++
			case !errors.Is(err, ErrClosed) && firstErr == nil:
				firstErr = err
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return started, firstErr
}

// acquire finds or creates a sandbox with spare concurrency and reserves one
// slot in it.
func (c *Cluster) acquire(ctx context.Context, action string) (*Sandbox, error) {
	// Wake waiters when the context dies.
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		defer stop()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.actions[action]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAction, action)
	}
	for {
		if c.closed {
			return nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// 1. A ready sandbox with spare concurrency.
		if sb := c.pickReadyLocked(a); sb != nil {
			sb.inFlight++
			c.invocations++
			return sb, nil
		}
		// 2. Start a new sandbox if some node has (or can make) room.
		if node := c.pickNodeLocked(a); node != nil {
			sb, err := c.startSandboxLocked(a, node)
			if err != nil {
				return nil, err
			}
			sb.inFlight++
			c.invocations++
			c.coldStarts++
			return sb, nil
		}
		// 3. Saturated: wait for capacity.
		c.cond.Wait()
	}
}

// pickReadyLocked prefers the busiest sandbox that still has a free slot
// (bin-packing keeps the sandbox count low).
func (c *Cluster) pickReadyLocked(a *Action) *Sandbox {
	var best *Sandbox
	for _, sb := range c.sandboxes[a.Name] {
		if sb.state != sandboxReady || sb.inFlight >= a.Concurrency {
			continue
		}
		if best == nil || sb.inFlight > best.inFlight {
			best = sb
		}
	}
	return best
}

// pickNodeLocked selects a node for a new sandbox: first a node already
// hosting this action with room, then any node with room, then a node where
// evicting idle sandboxes (LRU first) frees enough memory.
func (c *Cluster) pickNodeLocked(a *Action) *Node {
	hosting := map[*Node]bool{}
	for _, sb := range c.sandboxes[a.Name] {
		if sb.state != sandboxDead {
			hosting[sb.node] = true
		}
	}
	for _, n := range c.nodes {
		if hosting[n] && n.Reserved()+a.MemoryBudget <= n.MemoryBytes {
			return n
		}
	}
	for _, n := range c.nodes {
		if n.Reserved()+a.MemoryBudget <= n.MemoryBytes {
			return n
		}
	}
	for _, n := range c.nodes {
		if c.evictForLocked(n, a.MemoryBudget) {
			return n
		}
	}
	return nil
}

// evictForLocked destroys idle sandboxes on node n (least recently used
// first) until need bytes fit. Returns false without evicting anything if
// even evicting every idle sandbox would not fit.
func (c *Cluster) evictForLocked(n *Node, need int64) bool {
	var idle []*Sandbox
	var reclaimable int64
	for _, sbs := range c.sandboxes {
		for _, sb := range sbs {
			if sb.node == n && sb.state == sandboxReady && sb.inFlight == 0 {
				idle = append(idle, sb)
				reclaimable += sb.action.MemoryBudget
			}
		}
	}
	if n.Reserved()-reclaimable+need > n.MemoryBytes {
		return false
	}
	sort.Slice(idle, func(i, j int) bool { return idle[i].lastUsed.Before(idle[j].lastUsed) })
	for _, sb := range idle {
		if n.Reserved()+need <= n.MemoryBytes {
			break
		}
		c.destroyLocked(sb)
		c.evictions++
	}
	return n.Reserved()+need <= n.MemoryBytes
}

// startSandboxLocked reserves memory and creates the instance. It releases
// the cluster lock during the (slow) container start and instance creation.
func (c *Cluster) startSandboxLocked(a *Action, node *Node) (*Sandbox, error) {
	if !node.reserve(a.MemoryBudget) {
		return nil, fmt.Errorf("serverless: node %q lost capacity", node.Name)
	}
	sb := &Sandbox{action: a, node: node, state: sandboxStarting, born: c.clock.Now()}
	c.sandboxes[a.Name] = append(c.sandboxes[a.Name], sb)
	c.mu.Unlock()
	var inst Instance
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serverless: instance factory panicked: %v", r)
			}
		}()
		c.clock.Sleep(c.cfg.SandboxStart)
		inst, err = a.New(node)
	}()
	c.mu.Lock()
	if sb.state == sandboxDead {
		// Close destroyed the sandbox while the lock was dropped (and
		// already released its reservation): don't resurrect it, and don't
		// orphan the instance we just built.
		if inst != nil {
			inst.Stop()
		}
		c.cond.Broadcast()
		return nil, ErrClosed
	}
	if err != nil {
		sb.state = sandboxDead
		node.release(a.MemoryBudget)
		c.removeLocked(sb)
		c.cond.Broadcast()
		return nil, fmt.Errorf("serverless: start %q on %q: %w", a.Name, node.Name, err)
	}
	sb.inst = inst
	sb.state = sandboxReady
	sb.lastUsed = c.clock.Now()
	c.cond.Broadcast()
	return sb, nil
}

func (c *Cluster) destroyLocked(sb *Sandbox) {
	if sb.state == sandboxDead {
		return
	}
	sb.state = sandboxDead
	sb.node.release(sb.action.MemoryBudget)
	c.removeLocked(sb)
	if sb.inst != nil {
		// Stop outside the lock would be safer for slow Stops, but instance
		// Stop implementations here only free simulated resources.
		sb.inst.Stop()
	}
}

func (c *Cluster) removeLocked(sb *Sandbox) {
	list := c.sandboxes[sb.action.Name]
	for i, s := range list {
		if s == sb {
			c.sandboxes[sb.action.Name] = append(list[:i], list[i+1:]...)
			break
		}
	}
}

// ReapIdle destroys sandboxes idle past the keep-warm timeout and returns
// how many were reclaimed. Call it periodically (StartReaper does).
func (c *Cluster) ReapIdle() int {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var victims []*Sandbox
	for _, sbs := range c.sandboxes {
		for _, sb := range sbs {
			if sb.state == sandboxReady && sb.inFlight == 0 && now.Sub(sb.lastUsed) >= c.cfg.KeepWarm {
				victims = append(victims, sb)
			}
		}
	}
	for _, sb := range victims {
		c.destroyLocked(sb)
	}
	if len(victims) > 0 {
		c.cond.Broadcast()
	}
	return len(victims)
}

// StartReaper runs ReapIdle on a wall-clock interval until the returned
// function is called.
func (c *Cluster) StartReaper(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.ReapIdle()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// Stats is a snapshot of cluster state.
type Stats struct {
	// Sandboxes counts live sandboxes per action.
	Sandboxes map[string]int
	// Serving counts sandboxes with at least one in-flight request.
	Serving map[string]int
	// MemoryReserved is the total reserved bytes across nodes.
	MemoryReserved int64
	// ColdStarts, Invocations and Evictions are lifetime counters.
	ColdStarts, Invocations, Evictions uint64
}

// Stats returns a snapshot.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Sandboxes:   map[string]int{},
		Serving:     map[string]int{},
		ColdStarts:  c.coldStarts,
		Invocations: c.invocations,
		Evictions:   c.evictions,
	}
	for name, sbs := range c.sandboxes {
		for _, sb := range sbs {
			if sb.state == sandboxDead {
				continue
			}
			st.Sandboxes[name]++
			if sb.inFlight > 0 {
				st.Serving[name]++
			}
		}
	}
	for _, n := range c.nodes {
		st.MemoryReserved += n.Reserved()
	}
	return st
}

// Close destroys all sandboxes and refuses further invocations.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, sbs := range c.sandboxes {
		for _, sb := range append([]*Sandbox(nil), sbs...) {
			c.destroyLocked(sb)
		}
	}
	c.cond.Broadcast()
}
