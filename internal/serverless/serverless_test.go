package serverless

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sesemi/internal/vclock"
)

// echoInstance counts invocations and echoes payloads.
type echoInstance struct {
	node    *Node
	stopped atomic.Bool
	calls   atomic.Int64
	block   chan struct{} // if non-nil, Invoke blocks until closed
}

func (e *echoInstance) Invoke(p []byte) ([]byte, error) {
	e.calls.Add(1)
	if e.block != nil {
		<-e.block
	}
	return append([]byte("echo:"), p...), nil
}

func (e *echoInstance) Stop() { e.stopped.Store(true) }

func newTestCluster(clock vclock.Clock, nodeMem int64, nodes int) (*Cluster, []*Node) {
	var ns []*Node
	for i := 0; i < nodes; i++ {
		ns = append(ns, &Node{Name: fmt.Sprintf("node-%d", i), MemoryBytes: nodeMem})
	}
	cfg := DefaultConfig()
	cfg.Clock = clock
	cfg.SandboxStart = 10 * time.Millisecond
	return NewCluster(cfg, ns...), ns
}

func echoAction(name string, mem int64, conc int, made *[]*echoInstance, mu *sync.Mutex) *Action {
	return &Action{
		Name:         name,
		MemoryBudget: mem,
		Concurrency:  conc,
		New: func(n *Node) (Instance, error) {
			inst := &echoInstance{node: n}
			if mu != nil {
				mu.Lock()
				*made = append(*made, inst)
				mu.Unlock()
			}
			return inst, nil
		},
	}
}

func TestDeployAndInvoke(t *testing.T) {
	c, _ := newTestCluster(vclock.NewManual(), 1<<30, 1)
	defer c.Close()
	if err := c.Deploy(echoAction("fn", 128<<20, 1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	out, err := c.Invoke(context.Background(), "fn", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hi" {
		t.Fatalf("out %q", out)
	}
	st := c.Stats()
	if st.ColdStarts != 1 || st.Invocations != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDeployValidation(t *testing.T) {
	c, _ := newTestCluster(vclock.NewManual(), 1<<30, 1)
	defer c.Close()
	if err := c.Deploy(&Action{Name: "", New: func(*Node) (Instance, error) { return nil, nil }}); err == nil {
		t.Fatal("accepted unnamed action")
	}
	if err := c.Deploy(&Action{Name: "x", MemoryBudget: 1 << 20, New: nil}); err == nil {
		t.Fatal("accepted action without factory")
	}
	a := echoAction("dup", 1<<20, 1, nil, nil)
	if err := c.Deploy(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(a); err == nil {
		t.Fatal("accepted duplicate deployment")
	}
}

func TestInvokeUnknownAction(t *testing.T) {
	c, _ := newTestCluster(vclock.NewManual(), 1<<30, 1)
	defer c.Close()
	if _, err := c.Invoke(context.Background(), "ghost", nil); !errors.Is(err, ErrUnknownAction) {
		t.Fatalf("err = %v", err)
	}
}

func TestWarmReuseAvoidsColdStart(t *testing.T) {
	c, _ := newTestCluster(vclock.NewManual(), 1<<30, 1)
	defer c.Close()
	var made []*echoInstance
	var mu sync.Mutex
	if err := c.Deploy(echoAction("fn", 128<<20, 1, &made, &mu)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Invoke(context.Background(), "fn", nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(made) != 1 {
		t.Fatalf("%d sandboxes for sequential requests, want 1", len(made))
	}
	if st := c.Stats(); st.ColdStarts != 1 {
		t.Fatalf("cold starts %d", st.ColdStarts)
	}
}

func TestConcurrencyPerSandbox(t *testing.T) {
	// With per-sandbox concurrency 4, four parallel requests fit one
	// sandbox.
	c, _ := newTestCluster(vclock.NewManual(), 1<<30, 1)
	defer c.Close()
	var made []*echoInstance
	var mu sync.Mutex
	a := &Action{
		Name: "fn", MemoryBudget: 128 << 20, Concurrency: 4,
		New: func(n *Node) (Instance, error) {
			inst := &echoInstance{node: n, block: make(chan struct{})}
			mu.Lock()
			made = append(made, inst)
			mu.Unlock()
			return inst, nil
		},
	}
	if err := c.Deploy(a); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Invoke(context.Background(), "fn", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	// Wait until all four are in flight in one sandbox.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(made)
		var calls int64
		if n > 0 {
			calls = made[0].calls.Load()
		}
		mu.Unlock()
		if n == 1 && calls == 4 {
			break
		}
		if n > 1 {
			t.Fatalf("%d sandboxes, want 1", n)
		}
		select {
		case <-deadline:
			t.Fatalf("stuck: %d sandboxes, %d calls", n, calls)
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	close(made[0].block)
	mu.Unlock()
	wg.Wait()
}

func TestScaleOutWhenBusy(t *testing.T) {
	// Concurrency 1: two parallel requests need two sandboxes.
	c, _ := newTestCluster(vclock.NewManual(), 1<<30, 1)
	defer c.Close()
	var made []*echoInstance
	var mu sync.Mutex
	a := &Action{
		Name: "fn", MemoryBudget: 128 << 20, Concurrency: 1,
		New: func(n *Node) (Instance, error) {
			inst := &echoInstance{node: n, block: make(chan struct{})}
			mu.Lock()
			made = append(made, inst)
			mu.Unlock()
			return inst, nil
		},
	}
	if err := c.Deploy(a); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Invoke(context.Background(), "fn", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(made)
		mu.Unlock()
		if n == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("expected 2 sandboxes, got %d", n)
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	for _, inst := range made {
		close(inst.block)
	}
	mu.Unlock()
	wg.Wait()
	if st := c.Stats(); st.Sandboxes["fn"] != 2 {
		t.Fatalf("sandboxes %+v", st.Sandboxes)
	}
}

func TestMemoryBasedSchedulingAcrossNodes(t *testing.T) {
	// Node memory fits exactly one sandbox; the second sandbox must go to
	// the second node.
	c, nodes := newTestCluster(vclock.NewManual(), 256<<20, 2)
	defer c.Close()
	var made []*echoInstance
	var mu sync.Mutex
	a := &Action{
		Name: "fn", MemoryBudget: 256 << 20, Concurrency: 1,
		New: func(n *Node) (Instance, error) {
			inst := &echoInstance{node: n, block: make(chan struct{})}
			mu.Lock()
			made = append(made, inst)
			mu.Unlock()
			return inst, nil
		},
	}
	if err := c.Deploy(a); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Invoke(context.Background(), "fn", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(made)
		mu.Unlock()
		if n == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("second sandbox never started")
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	if made[0].node == made[1].node {
		t.Fatal("both sandboxes on one node despite memory limit")
	}
	for _, inst := range made {
		close(inst.block)
	}
	mu.Unlock()
	wg.Wait()
	if nodes[0].Reserved() != 256<<20 || nodes[1].Reserved() != 256<<20 {
		t.Fatalf("reservations %d/%d", nodes[0].Reserved(), nodes[1].Reserved())
	}
}

func TestSaturationBlocksUntilFree(t *testing.T) {
	c, _ := newTestCluster(vclock.NewManual(), 128<<20, 1)
	defer c.Close()
	block := make(chan struct{})
	a := &Action{
		Name: "fn", MemoryBudget: 128 << 20, Concurrency: 1,
		New: func(n *Node) (Instance, error) {
			return &echoInstance{node: n, block: block}, nil
		},
	}
	if err := c.Deploy(a); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() {
		_, err := c.Invoke(context.Background(), "fn", nil)
		first <- err
	}()
	second := make(chan error, 1)
	go func() {
		_, err := c.Invoke(context.Background(), "fn", nil)
		second <- err
	}()
	select {
	case err := <-second:
		t.Fatalf("second request completed while saturated: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}
}

func TestSaturationRespectsContext(t *testing.T) {
	c, _ := newTestCluster(vclock.NewManual(), 128<<20, 1)
	defer c.Close()
	block := make(chan struct{})
	defer close(block)
	a := &Action{
		Name: "fn", MemoryBudget: 128 << 20, Concurrency: 1,
		New: func(n *Node) (Instance, error) {
			return &echoInstance{node: n, block: block}, nil
		},
	}
	if err := c.Deploy(a); err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = c.Invoke(context.Background(), "fn", nil) }()
	time.Sleep(30 * time.Millisecond) // let the first request occupy the node
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.Invoke(ctx, "fn", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestEvictionMakesRoom(t *testing.T) {
	// One node, room for one sandbox. An idle sandbox of action A must be
	// evicted to start action B.
	c, _ := newTestCluster(vclock.NewManual(), 128<<20, 1)
	defer c.Close()
	var aInst []*echoInstance
	var mu sync.Mutex
	if err := c.Deploy(echoAction("a", 128<<20, 1, &aInst, &mu)); err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(echoAction("b", 128<<20, 1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "b", nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	stopped := aInst[0].stopped.Load()
	mu.Unlock()
	if !stopped {
		t.Fatal("idle sandbox of action a was not evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions %d", st.Evictions)
	}
	if st.Sandboxes["a"] != 0 || st.Sandboxes["b"] != 1 {
		t.Fatalf("sandboxes %+v", st.Sandboxes)
	}
}

func TestKeepWarmReaping(t *testing.T) {
	clock := vclock.NewManual()
	c, nodes := newTestCluster(clock, 1<<30, 1)
	defer c.Close()
	var made []*echoInstance
	var mu sync.Mutex
	if err := c.Deploy(echoAction("fn", 128<<20, 1, &made, &mu)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatal(err)
	}
	if n := c.ReapIdle(); n != 0 {
		t.Fatalf("reaped %d before timeout", n)
	}
	clock.Advance(2 * time.Minute)
	if n := c.ReapIdle(); n != 0 {
		t.Fatalf("reaped %d at 2min (keep-warm is 3min)", n)
	}
	clock.Advance(90 * time.Second)
	if n := c.ReapIdle(); n != 1 {
		t.Fatalf("reaped %d after timeout, want 1", n)
	}
	if nodes[0].Reserved() != 0 {
		t.Fatalf("memory not released: %d", nodes[0].Reserved())
	}
	mu.Lock()
	if !made[0].stopped.Load() {
		t.Fatal("reaped instance not stopped")
	}
	mu.Unlock()
}

func TestFactoryErrorPropagates(t *testing.T) {
	c, nodes := newTestCluster(vclock.NewManual(), 1<<30, 1)
	defer c.Close()
	boom := &Action{
		Name: "boom", MemoryBudget: 128 << 20, Concurrency: 1,
		New: func(*Node) (Instance, error) { return nil, errors.New("no enclave for you") },
	}
	if err := c.Deploy(boom); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "boom", nil); err == nil {
		t.Fatal("factory error swallowed")
	}
	if nodes[0].Reserved() != 0 {
		t.Fatalf("failed start leaked memory: %d", nodes[0].Reserved())
	}
	if st := c.Stats(); st.Sandboxes["boom"] != 0 {
		t.Fatalf("dead sandbox still listed: %+v", st.Sandboxes)
	}
}

func TestFactoryPanicContained(t *testing.T) {
	c, nodes := newTestCluster(vclock.NewManual(), 1<<30, 1)
	defer c.Close()
	a := &Action{
		Name: "panic", MemoryBudget: 128 << 20, Concurrency: 1,
		New: func(*Node) (Instance, error) { panic("factory bug") },
	}
	if err := c.Deploy(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "panic", nil); err == nil {
		t.Fatal("panic swallowed")
	}
	if nodes[0].Reserved() != 0 {
		t.Fatal("panicked start leaked memory")
	}
}

func TestCloseStopsEverything(t *testing.T) {
	c, _ := newTestCluster(vclock.NewManual(), 1<<30, 1)
	var made []*echoInstance
	var mu sync.Mutex
	if err := c.Deploy(echoAction("fn", 128<<20, 1, &made, &mu)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke(context.Background(), "fn", nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	mu.Lock()
	if !made[0].stopped.Load() {
		t.Fatal("Close did not stop instances")
	}
	mu.Unlock()
	if _, err := c.Invoke(context.Background(), "fn", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close invoke: %v", err)
	}
}

func TestManyParallelInvocations(t *testing.T) {
	c, _ := newTestCluster(vclock.Real{Scale: 0}, 8<<30, 4)
	defer c.Close()
	if err := c.Deploy(echoAction("fn", 128<<20, 4, nil, nil)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := c.Invoke(context.Background(), "fn", []byte{byte(i)})
			if err != nil {
				errs <- err
				return
			}
			if len(out) != 6 || out[5] != byte(i) {
				errs <- fmt.Errorf("wrong payload for %d", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Invocations != 100 {
		t.Fatalf("invocations %d", st.Invocations)
	}
}

func TestPrewarmStartsWarmCapacity(t *testing.T) {
	clock := vclock.NewManual()
	c, ns := newTestCluster(clock, 1<<30, 2)
	defer c.Close()
	var made []*echoInstance
	var mu sync.Mutex
	if err := c.Deploy(echoAction("fn", 256<<20, 2, &made, &mu)); err != nil {
		t.Fatal(err)
	}
	started, err := c.Prewarm("fn", 3)
	if err != nil {
		t.Fatal(err)
	}
	if started != 3 {
		t.Fatalf("started %d, want 3", started)
	}
	st := c.Stats()
	if st.Sandboxes["fn"] != 3 || st.ColdStarts != 3 || st.Invocations != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Idempotent: warm capacity already satisfied.
	if started, _ = c.Prewarm("fn", 3); started != 0 {
		t.Fatalf("re-prewarm started %d", started)
	}
	// An invocation now hits a warm sandbox: no further cold starts.
	if _, err := c.Invoke(context.Background(), "fn", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if st = c.Stats(); st.ColdStarts != 3 {
		t.Fatalf("cold starts after invoke %d", st.ColdStarts)
	}
	_ = ns
}

func TestPrewarmBoundedByMemory(t *testing.T) {
	clock := vclock.NewManual()
	c, _ := newTestCluster(clock, 512<<20, 1)
	defer c.Close()
	if err := c.Deploy(echoAction("fn", 256<<20, 1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	// Node fits two sandboxes; asking for five stops at capacity, no error.
	started, err := c.Prewarm("fn", 5)
	if err != nil {
		t.Fatal(err)
	}
	if started != 2 {
		t.Fatalf("started %d, want 2", started)
	}
	if _, err := c.Prewarm("nope", 1); !errors.Is(err, ErrUnknownAction) {
		t.Fatalf("unknown action err %v", err)
	}
}

func TestPrewarmOnPrefersHintedNode(t *testing.T) {
	clock := vclock.NewManual()
	c, _ := newTestCluster(clock, 1<<30, 4)
	defer c.Close()
	if err := c.Deploy(echoAction("fn", 256<<20, 1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	// With a hint, every sandbox the node can fit lands on it — first-fit
	// would have put them all on node-0.
	started, err := c.PrewarmOn("fn", "node-2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if started != 3 {
		t.Fatalf("started %d, want 3", started)
	}
	for _, st := range c.NodeStats("fn") {
		want := 0
		if st.Node == "node-2" {
			want = 3
		}
		if st.ReadySlots != want {
			t.Fatalf("node %s has %d ready slots, want %d", st.Node, st.ReadySlots, want)
		}
	}
	// A full hinted node spills to the rest of the cluster instead of
	// failing: node-2 fits 4 sandboxes total, so asking for 6 spreads.
	started, err = c.PrewarmOn("fn", "node-2", 6)
	if err != nil {
		t.Fatal(err)
	}
	if started != 3 {
		t.Fatalf("second prewarm started %d, want 3", started)
	}
	// An unknown hint degrades to plain Prewarm.
	if _, err := c.PrewarmOn("fn", "no-such-node", 6); err != nil {
		t.Fatal(err)
	}
}

func TestInvokeOverheadCharged(t *testing.T) {
	clock := vclock.NewManual()
	var ns []*Node
	ns = append(ns, &Node{Name: "n0", MemoryBytes: 1 << 30})
	cfg := DefaultConfig()
	cfg.Clock = clock
	cfg.SandboxStart = 0
	cfg.InvokeOverhead = 7 * time.Millisecond
	c := NewCluster(cfg, ns...)
	defer c.Close()
	if err := c.Deploy(echoAction("fn", 128<<20, 1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	if _, err := c.Invoke(context.Background(), "fn", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := clock.Now().Sub(before); d != 7*time.Millisecond {
		t.Fatalf("charged %v, want 7ms", d)
	}
}

func TestCloseDuringSandboxStartDoesNotResurrect(t *testing.T) {
	clock := vclock.NewManual()
	var ns []*Node
	ns = append(ns, &Node{Name: "n0", MemoryBytes: 1 << 30})
	cfg := DefaultConfig()
	cfg.Clock = clock
	cfg.SandboxStart = 0
	c := NewCluster(cfg, ns...)

	factoryEntered := make(chan struct{})
	factoryRelease := make(chan struct{})
	var made []*echoInstance
	var mu sync.Mutex
	err := c.Deploy(&Action{
		Name:         "fn",
		MemoryBudget: 128 << 20,
		Concurrency:  1,
		New: func(n *Node) (Instance, error) {
			close(factoryEntered)
			<-factoryRelease
			inst := &echoInstance{node: n}
			mu.Lock()
			made = append(made, inst)
			mu.Unlock()
			return inst, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.Invoke(context.Background(), "fn", []byte("x"))
		errc <- err
	}()
	<-factoryEntered
	go c.Close() // destroys the starting sandbox while the factory runs
	// Close runs independently of the factory (the lock is dropped during
	// the start window); wait for the observable destruction before letting
	// the factory finish, so the race is deterministic.
	for c.Stats().Sandboxes["fn"] != 0 {
		time.Sleep(time.Millisecond)
	}
	close(factoryRelease)
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("invoke err %v, want ErrClosed", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(made) != 1 {
		t.Fatalf("instances made %d", len(made))
	}
	if !made[0].stopped.Load() {
		t.Fatal("instance built during Close was never stopped")
	}
	if ns[0].Reserved() != 0 {
		t.Fatalf("reservation leaked: %d", ns[0].Reserved())
	}
	if st := c.Stats(); st.Sandboxes["fn"] != 0 {
		t.Fatalf("resurrected sandbox: %+v", st)
	}
}
