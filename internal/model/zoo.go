package model

import "fmt"

// MB is the unit used for the paper's Table I sizes (mebibytes).
const MB = 1 << 20

// Spec describes one of the paper's evaluation models (Table I).
type Spec struct {
	// ID is the short identifier used throughout the paper: mbnet, rsnet, dsnet.
	ID string
	// Arch is the architecture family used by the synthetic builder.
	Arch string
	// FullName is the paper's model name.
	FullName string
	// ModelBytes is the serialized model size (Table I "Model size").
	ModelBytes int
	// TVMBufferBytes is the runtime buffer the TVM-style executor allocates
	// (Table I "TVM buffer size"): it contains copies of the model data.
	TVMBufferBytes int
	// TFLMBufferBytes is the runtime arena the TFLM-style interpreter
	// allocates (Table I "TFLM buffer size"): intermediate data only.
	TFLMBufferBytes int
}

// Lambda returns the runtime-buffer-to-model-size ratio λ used in Figure 10
// for the given framework ("tvm" or "tflm").
func (s Spec) Lambda(framework string) float64 {
	switch framework {
	case "tvm":
		return float64(s.TVMBufferBytes) / float64(s.ModelBytes)
	case "tflm":
		return float64(s.TFLMBufferBytes) / float64(s.ModelBytes)
	}
	return 0
}

// BufferBytes returns the runtime buffer size for the given framework.
func (s Spec) BufferBytes(framework string) int {
	if framework == "tvm" {
		return s.TVMBufferBytes
	}
	return s.TFLMBufferBytes
}

// Zoo lists the three models of the paper's evaluation, with the exact
// Table I sizes.
var Zoo = map[string]Spec{
	"mbnet": {
		ID: "mbnet", Arch: "mobilenet", FullName: "MobileNet v1",
		ModelBytes:      17 * MB,
		TVMBufferBytes:  30 * MB,
		TFLMBufferBytes: 5 * MB,
	},
	"rsnet": {
		ID: "rsnet", Arch: "resnet", FullName: "ResNet101 v2",
		ModelBytes:      170 * MB,
		TVMBufferBytes:  205 * MB,
		TFLMBufferBytes: 24 * MB,
	},
	"dsnet": {
		ID: "dsnet", Arch: "densenet", FullName: "DenseNet121",
		ModelBytes:      44 * MB,
		TVMBufferBytes:  55 * MB,
		TFLMBufferBytes: 12 * MB,
	},
}

// ZooIDs returns the model identifiers in the paper's presentation order.
func ZooIDs() []string { return []string{"mbnet", "rsnet", "dsnet"} }

// NewFunctional builds the small runnable variant of a zoo model, suitable
// for real inference in tests and examples.
func NewFunctional(id string) (*Model, error) {
	spec, ok := Zoo[id]
	if !ok {
		return nil, fmt.Errorf("model: unknown zoo id %q", id)
	}
	cfg := DefaultConfig()
	cfg.Seed = int64(len(id)) * 7919
	return Build(spec.Arch, id, cfg)
}

// NewSized builds the functional variant of a zoo model padded with ballast
// so its serialized form is exactly target bytes. Use spec.ModelBytes for a
// paper-exact payload, or a smaller target for fast integration tests.
func NewSized(id string, target int) (*Model, error) {
	m, err := NewFunctional(id)
	if err != nil {
		return nil, err
	}
	if err := PadToSize(m, target); err != nil {
		return nil, err
	}
	return m, nil
}

// NewPaperSize builds the zoo model at the exact Table I size. Note that the
// large models allocate the full payload (up to 170 MB for rsnet).
func NewPaperSize(id string) (*Model, error) {
	spec, ok := Zoo[id]
	if !ok {
		return nil, fmt.Errorf("model: unknown zoo id %q", id)
	}
	return NewSized(id, spec.ModelBytes)
}
