package model

import "testing"

func TestVersionedSplit(t *testing.T) {
	cases := []struct {
		moid, rev string
		want      string
	}{
		{"mbnet", "", "mbnet"},
		{"mbnet", "v2", "mbnet@v2"},
		{"rsnet", "2026-08-08", "rsnet@2026-08-08"},
	}
	for _, c := range cases {
		if got := Versioned(c.moid, c.rev); got != c.want {
			t.Errorf("Versioned(%q, %q) = %q, want %q", c.moid, c.rev, got, c.want)
		}
		base, rev := SplitRevision(c.want)
		if base != c.moid || rev != c.rev {
			t.Errorf("SplitRevision(%q) = (%q, %q), want (%q, %q)", c.want, base, rev, c.moid, c.rev)
		}
	}
}

func TestSplitRevisionFirstSeparatorWins(t *testing.T) {
	base, rev := SplitRevision("mbnet@v2@hotfix")
	if base != "mbnet" || rev != "v2@hotfix" {
		t.Fatalf("got (%q, %q)", base, rev)
	}
}

func TestBaseIDAndRevision(t *testing.T) {
	if got := BaseID("mbnet@v3"); got != "mbnet" {
		t.Fatalf("BaseID = %q", got)
	}
	if got := BaseID("mbnet"); got != "mbnet" {
		t.Fatalf("BaseID unversioned = %q", got)
	}
	if got := Revision("mbnet@v3"); got != "v3" {
		t.Fatalf("Revision = %q", got)
	}
	if got := Revision("mbnet"); got != "" {
		t.Fatalf("Revision unversioned = %q", got)
	}
}

func TestVersionedRoundTripsThroughZooLookup(t *testing.T) {
	// A versioned id of a zoo model must resolve to a valid zoo entry via
	// BaseID — the contract the cost model and runtime config rely on.
	for _, id := range ZooIDs() {
		v := Versioned(id, "canary")
		if _, ok := Zoo[BaseID(v)]; !ok {
			t.Fatalf("zoo lookup failed for %q via %q", v, BaseID(v))
		}
	}
}
