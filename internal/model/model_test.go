package model

import (
	"bytes"
	"strings"
	"testing"

	"sesemi/internal/tensor"
)

func TestBuildersProduceValidGraphs(t *testing.T) {
	cfg := DefaultConfig()
	for _, arch := range []string{"mobilenet", "resnet", "densenet"} {
		m, err := Build(arch, arch+"-test", cfg)
		if err != nil {
			t.Fatalf("Build(%s): %v", arch, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Validate(%s): %v", arch, err)
		}
		shapes, err := m.InferShapes()
		if err != nil {
			t.Fatalf("InferShapes(%s): %v", arch, err)
		}
		out := shapes[m.OutputLayer()]
		if len(out) != 2 || out[1] != cfg.NumClasses {
			t.Fatalf("%s output shape %v, want [1 %d]", arch, out, cfg.NumClasses)
		}
		if m.ParamCount() == 0 {
			t.Fatalf("%s has no parameters", arch)
		}
	}
}

func TestBuildUnknownArch(t *testing.T) {
	if _, err := Build("transformer", "x", DefaultConfig()); err == nil {
		t.Fatal("Build accepted unknown architecture")
	}
}

func TestBuildersDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := BuildMobileNet("m", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMobileNet("m", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("same seed produced different serialized models")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	m, err := BuildResNet("rt", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Ballast = []byte("0123456789")
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.Arch != m.Arch || got.NumClasses != m.NumClasses {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if len(got.Layers) != len(m.Layers) {
		t.Fatalf("layer count %d, want %d", len(got.Layers), len(m.Layers))
	}
	if !bytes.Equal(got.Ballast, m.Ballast) {
		t.Fatal("ballast corrupted")
	}
	// spot-check a weight tensor
	for i := range m.Layers {
		for role, w := range m.Layers[i].Weights {
			g := got.Layers[i].Weights[role]
			if g == nil || g.Len() != w.Len() {
				t.Fatalf("layer %d weight %s lost", i, role)
			}
			for j := range w.Data() {
				if g.Data()[j] != w.Data()[j] {
					t.Fatalf("weight value mismatch at layer %d %s[%d]", i, role, j)
				}
			}
		}
	}
}

func TestSerializedSizeMatchesMarshal(t *testing.T) {
	m, err := BuildDenseNet("sz", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Ballast = make([]byte, 1234)
	want, err := SerializedSize(m)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != want {
		t.Fatalf("SerializedSize = %d, Marshal = %d", want, len(data))
	}
}

func TestUnmarshalRejectsTampering(t *testing.T) {
	m, err := BuildMobileNet("tamper", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 5, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xFF
		if _, err := Unmarshal(bad); err == nil {
			t.Fatalf("Unmarshal accepted tampered byte at offset %d", off)
		}
	}
	if _, err := Unmarshal(data[:8]); err == nil {
		t.Fatal("Unmarshal accepted truncated data")
	}
}

func TestPadToSizeExact(t *testing.T) {
	for _, target := range []int{64 * 1024, 100*1024 + 1, 1 << 20} {
		m, err := NewSized("mbnet", target)
		if err != nil {
			t.Fatalf("NewSized(%d): %v", target, err)
		}
		data, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != target {
			t.Fatalf("padded size %d, want %d", len(data), target)
		}
	}
}

func TestPadToSizeTooSmall(t *testing.T) {
	m, err := NewFunctional("mbnet")
	if err != nil {
		t.Fatal(err)
	}
	if err := PadToSize(m, 16); err == nil {
		t.Fatal("PadToSize accepted impossible target")
	}
}

func TestZooSpecsMatchTable1(t *testing.T) {
	cases := []struct {
		id                     string
		model, tvmBuf, tflmBuf int
	}{
		{"mbnet", 17 * MB, 30 * MB, 5 * MB},
		{"rsnet", 170 * MB, 205 * MB, 24 * MB},
		{"dsnet", 44 * MB, 55 * MB, 12 * MB},
	}
	for _, c := range cases {
		s, ok := Zoo[c.id]
		if !ok {
			t.Fatalf("zoo missing %s", c.id)
		}
		if s.ModelBytes != c.model || s.TVMBufferBytes != c.tvmBuf || s.TFLMBufferBytes != c.tflmBuf {
			t.Fatalf("%s sizes %d/%d/%d, want %d/%d/%d", c.id,
				s.ModelBytes, s.TVMBufferBytes, s.TFLMBufferBytes, c.model, c.tvmBuf, c.tflmBuf)
		}
	}
}

func TestZooLambdaMatchesFigure10(t *testing.T) {
	// λ values printed in Figure 10 of the paper. Note: the figure legend
	// says λ=1.77 for DSNET/TVM, but Table I (55 MB / 44 MB) implies 1.25;
	// the other five legend values match Table I exactly, so we take Table I
	// as ground truth and record the discrepancy in EXPERIMENTS.md.
	want := map[string]map[string]float64{
		"mbnet": {"tvm": 1.76, "tflm": 0.29},
		"rsnet": {"tvm": 1.21, "tflm": 0.14},
		"dsnet": {"tvm": 1.25, "tflm": 0.28},
	}
	for id, fw := range want {
		for f, lambda := range fw {
			got := Zoo[id].Lambda(f)
			if got < lambda-0.05 || got > lambda+0.05 {
				t.Errorf("λ(%s,%s) = %.3f, want ≈ %.2f", id, f, got, lambda)
			}
		}
	}
}

func TestNewFunctionalRunsShapes(t *testing.T) {
	for _, id := range ZooIDs() {
		m, err := NewFunctional(id)
		if err != nil {
			t.Fatalf("NewFunctional(%s): %v", id, err)
		}
		if _, err := m.InferShapes(); err != nil {
			t.Fatalf("InferShapes(%s): %v", id, err)
		}
	}
}

func TestValidateCatchesBrokenGraphs(t *testing.T) {
	mk := func(mut func(*Model)) error {
		m, err := BuildMobileNet("v", DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		mut(m)
		return m.Validate()
	}
	if err := mk(func(m *Model) { m.Layers[2].Inputs = []string{"nonexistent"} }); err == nil {
		t.Fatal("accepted unknown input reference")
	}
	if err := mk(func(m *Model) { m.Layers[3].Name = m.Layers[1].Name }); err == nil {
		t.Fatal("accepted duplicate layer name")
	}
	if err := mk(func(m *Model) { m.Layers[0].Weights = nil }); err == nil {
		t.Fatal("accepted conv without weights")
	}
	if err := mk(func(m *Model) { m.Layers = nil }); err == nil {
		t.Fatal("accepted empty model")
	}
	if err := mk(func(m *Model) { m.Layers[1].Op = "warp" }); err == nil {
		t.Fatal("accepted unknown op")
	}
}

func TestOutShapeErrors(t *testing.T) {
	l := Layer{Op: OpAdd, Inputs: []string{"a", "b"}}
	if _, err := l.OutShape([][]int{{1, 2, 2, 3}, {1, 2, 2, 4}}); err == nil {
		t.Fatal("Add accepted mismatched shapes")
	}
	d := Layer{Op: OpDense, Weights: map[string]*tensor.Tensor{WeightMain: tensor.New(8, 4)}}
	if _, err := d.OutShape([][]int{{1, 9}}); err == nil {
		t.Fatal("Dense accepted mismatched inner dim")
	}
}

func TestDeterministicBytesStable(t *testing.T) {
	a := deterministicBytes(100, "seed")
	b := deterministicBytes(100, "seed")
	c := deterministicBytes(100, "other")
	if !bytes.Equal(a, b) {
		t.Fatal("deterministicBytes not deterministic")
	}
	if bytes.Equal(a, c) {
		t.Fatal("deterministicBytes ignores seed")
	}
}

func TestWeightBytesCountsAllRoles(t *testing.T) {
	m := &Model{
		Name:       "w",
		InputShape: []int{1, 4},
		NumClasses: 2,
		Layers: []Layer{{
			Name: "d", Op: OpDense, Inputs: []string{InputName},
			Weights: map[string]*tensor.Tensor{
				WeightMain: tensor.New(4, 2),
				WeightBias: tensor.New(2),
			},
		}},
	}
	if got := m.WeightBytes(); got != 4*(8+2) {
		t.Fatalf("WeightBytes = %d, want 40", got)
	}
}

func TestUnmarshalRejectsHostileHeader(t *testing.T) {
	// A header claiming a huge weight shape must fail cleanly, not OOM.
	m := &Model{
		Name:       "h",
		InputShape: []int{1, 4},
		NumClasses: 2,
		Layers: []Layer{{
			Name: "d", Op: OpDense, Inputs: []string{InputName},
			Weights: map[string]*tensor.Tensor{WeightMain: tensor.New(4, 2)},
		}},
	}
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	idx := strings.Index(s, `"shape":[4,2]`)
	if idx < 0 {
		t.Skip("header layout changed; update test")
	}
	// Corrupting the header also breaks the CRC, which is the first line of
	// defence; verify the error is reported.
	bad := []byte(strings.Replace(s, `"shape":[4,2]`, `"shape":[4,3]`, 1))
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("accepted model with forged header")
	}
}
