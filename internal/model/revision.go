package model

import "strings"

// Model revisions.
//
// A revision is an immutable, individually deployable build of a model:
// "mbnet@v2" is revision "v2" of base model "mbnet". The versioned id is the
// identity everywhere keys, blobs, and traffic routing are concerned — the
// keyservice stores K_M/K_R per versioned id, storage names the encrypted
// blob by it, and the gateway splitter picks one per request — while cost
// and architecture lookups (the model zoo, the cost model) resolve the base
// id, because a revision is the same network retrained or re-exported, not a
// different architecture class.
//
// The empty revision denotes the base (unversioned) deployment, so every
// pre-revision id remains valid: Versioned(id, "") == id and
// SplitRevision(id) == (id, "") for ids without a separator.

// RevisionSep separates the base model id from its revision.
const RevisionSep = "@"

// Versioned joins a base model id and a revision into the versioned id.
// An empty revision returns the base id unchanged.
func Versioned(moid, rev string) string {
	if rev == "" {
		return moid
	}
	return moid + RevisionSep + rev
}

// SplitRevision splits a (possibly versioned) model id into its base id and
// revision. Ids without a separator have an empty revision. Only the first
// separator splits, so a revision string may itself contain "@".
func SplitRevision(id string) (base, rev string) {
	if i := strings.Index(id, RevisionSep); i >= 0 {
		return id[:i], id[i+len(RevisionSep):]
	}
	return id, ""
}

// BaseID strips the revision from a model id: the key for zoo and cost-model
// lookups shared by all revisions of one model.
func BaseID(id string) string {
	base, _ := SplitRevision(id)
	return base
}

// Revision returns the revision component of a model id ("" for the base
// deployment).
func Revision(id string) string {
	_, rev := SplitRevision(id)
	return rev
}
