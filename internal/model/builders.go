package model

import (
	"fmt"
	"math/rand"

	"sesemi/internal/tensor"
)

// Config controls the synthetic model builders. The defaults produce small
// "functional" models that run real inference quickly; the zoo scales them
// with ballast to the paper's Table I byte sizes.
type Config struct {
	// Input spatial size (square) and channels.
	InputSize     int
	InputChannels int
	// NumClasses is the output dimensionality.
	NumClasses int
	// Width scales channel counts (1 = base).
	Width int
	// Blocks controls depth (number of main blocks / stages).
	Blocks int
	// Seed makes weight generation deterministic.
	Seed int64
}

// DefaultConfig returns a small functional configuration used by tests and
// examples: a 16x16x3 input, 10 classes.
func DefaultConfig() Config {
	return Config{InputSize: 16, InputChannels: 3, NumClasses: 10, Width: 4, Blocks: 3, Seed: 1}
}

type builder struct {
	m    *Model
	rng  *rand.Rand
	last string
	n    int
	err  error
}

func newBuilder(name, arch string, cfg Config) *builder {
	return &builder{
		m: &Model{
			Name:       name,
			Arch:       arch,
			InputShape: []int{1, cfg.InputSize, cfg.InputSize, cfg.InputChannels},
			NumClasses: cfg.NumClasses,
		},
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		last: InputName,
	}
}

func (b *builder) randTensor(shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	// He-style initialization keeps activations in a sane range so softmax
	// outputs are meaningful in examples.
	fanIn := 1
	for _, d := range shape[:len(shape)-1] {
		fanIn *= d
	}
	std := 1.0
	if fanIn > 0 {
		std = 1.0 / float64(fanIn)
	}
	for i := range t.Data() {
		t.Data()[i] = float32(b.rng.NormFloat64() * std * 2)
	}
	return t
}

func (b *builder) add(l Layer) string {
	b.n++
	if l.Name == "" {
		l.Name = fmt.Sprintf("%s_%d", l.Op, b.n)
	}
	if len(l.Inputs) == 0 {
		l.Inputs = []string{b.last}
	}
	b.m.Layers = append(b.m.Layers, l)
	b.last = l.Name
	return l.Name
}

func (b *builder) conv(out, kernel, stride int, pad tensor.Padding, inCh int) string {
	return b.add(Layer{
		Op: OpConv2D, Kernel: kernel, Stride: stride, Pad: pad,
		Weights: map[string]*tensor.Tensor{
			WeightMain: b.randTensor(kernel, kernel, inCh, out),
			WeightBias: b.randTensor(out),
		},
	})
}

func (b *builder) dwconv(ch, kernel, stride int) string {
	return b.add(Layer{
		Op: OpDepthwiseConv2D, Kernel: kernel, Stride: stride, Pad: tensor.Same,
		Weights: map[string]*tensor.Tensor{
			WeightMain: b.randTensor(kernel, kernel, ch),
			WeightBias: b.randTensor(ch),
		},
	})
}

func (b *builder) bn(ch int) string {
	scale := tensor.New(ch)
	scale.Fill(1)
	return b.add(Layer{
		Op: OpBatchNorm,
		Weights: map[string]*tensor.Tensor{
			WeightScale: scale,
			WeightShift: b.randTensor(ch),
		},
	})
}

func (b *builder) relu() string  { return b.add(Layer{Op: OpReLU}) }
func (b *builder) relu6() string { return b.add(Layer{Op: OpReLU6}) }

func (b *builder) head(featCh int, classes int) {
	b.add(Layer{Op: OpGlobalAvgPool})
	b.add(Layer{
		Op: OpDense,
		Weights: map[string]*tensor.Tensor{
			WeightMain: b.randTensor(featCh, classes),
			WeightBias: b.randTensor(classes),
		},
	})
	b.add(Layer{Op: OpSoftmax})
}

func (b *builder) finish() (*Model, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.m.Validate(); err != nil {
		return nil, err
	}
	if _, err := b.m.InferShapes(); err != nil {
		return nil, err
	}
	return b.m, nil
}

// BuildMobileNet builds a MobileNetV1-style model: a stem convolution
// followed by depthwise-separable blocks (dwconv 3x3 + pointwise conv 1x1,
// ReLU6 activations), global average pooling and a classifier.
func BuildMobileNet(name string, cfg Config) (*Model, error) {
	b := newBuilder(name, "mobilenet", cfg)
	ch := 2 * cfg.Width
	b.conv(ch, 3, 2, tensor.Same, cfg.InputChannels)
	b.relu6()
	for i := 0; i < cfg.Blocks; i++ {
		stride := 1
		outCh := ch
		if i%2 == 1 {
			stride, outCh = 2, ch*2
		}
		b.dwconv(ch, 3, stride)
		b.relu6()
		b.conv(outCh, 1, 1, tensor.Same, ch)
		b.relu6()
		ch = outCh
	}
	b.head(ch, cfg.NumClasses)
	return b.finish()
}

// BuildResNet builds a ResNetV2-style model: a stem convolution followed by
// pre-activation residual blocks (BN-ReLU-Conv ×2 with identity or projection
// shortcuts), global average pooling and a classifier.
func BuildResNet(name string, cfg Config) (*Model, error) {
	b := newBuilder(name, "resnet", cfg)
	ch := 4 * cfg.Width
	b.conv(ch, 3, 1, tensor.Same, cfg.InputChannels)
	for i := 0; i < cfg.Blocks; i++ {
		stride := 1
		outCh := ch
		if i > 0 && i%2 == 0 {
			stride, outCh = 2, ch*2
		}
		blockIn := b.last
		b.bn(ch)
		b.relu()
		b.conv(outCh, 3, stride, tensor.Same, ch)
		b.bn(outCh)
		b.relu()
		b.conv(outCh, 3, 1, tensor.Same, outCh)
		mainOut := b.last
		short := blockIn
		if stride != 1 || outCh != ch {
			// projection shortcut
			b.last = blockIn
			short = b.conv(outCh, 1, stride, tensor.Same, ch)
		}
		b.add(Layer{Op: OpAdd, Inputs: []string{mainOut, short}})
		ch = outCh
	}
	b.bn(ch)
	b.relu()
	b.head(ch, cfg.NumClasses)
	return b.finish()
}

// BuildDenseNet builds a DenseNet-style model: dense blocks in which every
// layer's output is concatenated to its input features, separated by 1x1
// transition convolutions with average pooling.
func BuildDenseNet(name string, cfg Config) (*Model, error) {
	b := newBuilder(name, "densenet", cfg)
	growth := 2 * cfg.Width
	ch := 2 * growth
	b.conv(ch, 3, 1, tensor.Same, cfg.InputChannels)
	for blk := 0; blk < cfg.Blocks; blk++ {
		layersPerBlock := 2
		for i := 0; i < layersPerBlock; i++ {
			in := b.last
			b.bn(ch)
			b.relu()
			b.conv(growth, 3, 1, tensor.Same, ch)
			grown := b.last
			b.add(Layer{Op: OpConcat, Inputs: []string{in, grown}})
			ch += growth
		}
		if blk != cfg.Blocks-1 {
			// transition: 1x1 conv halving channels + 2x2 avg pool
			ch = ch / 2
			b.conv(ch, 1, 1, tensor.Same, ch*2)
			b.add(Layer{Op: OpAvgPool, Kernel: 2, Stride: 2, Pad: tensor.Valid})
		}
	}
	b.bn(ch)
	b.relu()
	b.head(ch, cfg.NumClasses)
	return b.finish()
}

// Build dispatches on architecture family name.
func Build(arch, name string, cfg Config) (*Model, error) {
	switch arch {
	case "mobilenet":
		return BuildMobileNet(name, cfg)
	case "resnet":
		return BuildResNet(name, cfg)
	case "densenet":
		return BuildDenseNet(name, cfg)
	}
	return nil, fmt.Errorf("model: unknown architecture %q", arch)
}

// PadToSize appends deterministic ballast so that Marshal(m) is exactly
// target bytes. It fails if the model is already larger than target.
func PadToSize(m *Model, target int) error {
	m.Ballast = nil
	base, err := SerializedSize(m)
	if err != nil {
		return err
	}
	if base > target {
		return fmt.Errorf("model: serialized size %d exceeds target %d", base, target)
	}
	need := target - base
	// Changing BallastLen in the JSON header can change the header length by
	// a few digits; iterate until exact.
	for i := 0; i < 8; i++ {
		m.Ballast = deterministicBytes(need, m.Name)
		got, err := SerializedSize(m)
		if err != nil {
			return err
		}
		if got == target {
			return nil
		}
		need += target - got
		if need < 0 {
			return fmt.Errorf("model: cannot pad to %d (undershoot)", target)
		}
	}
	return fmt.Errorf("model: padding did not converge to %d", target)
}

// deterministicBytes produces a reproducible pseudorandom payload so model
// bytes (and hence ciphertexts and hashes) are stable across runs.
func deterministicBytes(n int, seed string) []byte {
	var s int64 = 1469598103934665603
	for _, c := range seed {
		s = s*1099511628211 + int64(c)
	}
	rng := rand.New(rand.NewSource(s))
	b := make([]byte, n)
	// rand.Read on math/rand never errors.
	rng.Read(b)
	return b
}
