// Package model defines the model format exchanged between model owners,
// cloud storage, and the SeMIRT enclave runtime.
//
// A model is a DAG of layers over the kernels in internal/tensor, plus an
// optional "ballast" payload used by the synthetic paper-scale models to
// reproduce the exact on-disk sizes of Table I (MobileNetV1 17 MB,
// ResNet101V2 170 MB, DenseNet121 44 MB) without shipping real weights. The
// ballast is loaded, decrypted and held in enclave memory like real weights,
// so every size-dependent code path (download, AES-GCM decryption, EPC
// accounting) sees true byte volumes.
package model

import (
	"errors"
	"fmt"

	"sesemi/internal/tensor"
)

// OpType identifies a layer operation.
type OpType string

// Supported layer operations.
const (
	OpConv2D          OpType = "conv2d"
	OpDepthwiseConv2D OpType = "dwconv2d"
	OpDense           OpType = "dense"
	OpBatchNorm       OpType = "batchnorm"
	OpReLU            OpType = "relu"
	OpReLU6           OpType = "relu6"
	OpMaxPool         OpType = "maxpool"
	OpAvgPool         OpType = "avgpool"
	OpGlobalAvgPool   OpType = "gap"
	OpSoftmax         OpType = "softmax"
	OpAdd             OpType = "add"
	OpConcat          OpType = "concat"
	OpFlatten         OpType = "flatten"
)

// InputName is the reserved layer-input reference for the graph input.
const InputName = "input"

// Weight tensor roles within a layer.
const (
	WeightMain  = "w"
	WeightBias  = "bias"
	WeightScale = "scale"
	WeightShift = "shift"
)

// Layer is one node of the model graph.
type Layer struct {
	// Name uniquely identifies the layer inside the model.
	Name string
	// Op selects the kernel.
	Op OpType
	// Inputs lists producing layer names, or InputName for the graph input.
	Inputs []string
	// Kernel is the spatial kernel size for conv/pool ops.
	Kernel int
	// Stride is the spatial stride for conv/pool ops.
	Stride int
	// Pad selects the padding mode for conv/pool ops.
	Pad tensor.Padding
	// Weights maps weight roles to tensors (WeightMain, WeightBias, ...).
	Weights map[string]*tensor.Tensor
}

// Model is a complete, executable model.
type Model struct {
	// Name is the human-readable model identifier, e.g. "mbnet".
	Name string
	// Arch records the architecture family ("mobilenet", "resnet", "densenet").
	Arch string
	// InputShape is the NHWC input shape (batch dimension included).
	InputShape []int
	// NumClasses is the size of the output distribution.
	NumClasses int
	// Layers are topologically ordered (each input precedes its consumers).
	Layers []Layer
	// Ballast is an opaque payload that pads the serialized model to a
	// target size. It is carried through load/decrypt like weights.
	Ballast []byte
}

// Errors returned by validation and shape inference.
var (
	ErrUnknownInput = errors.New("model: layer references unknown input")
	ErrDuplicate    = errors.New("model: duplicate layer name")
	ErrBadGraph     = errors.New("model: malformed graph")
)

// Validate checks the structural integrity of the graph: unique names,
// topological order, known op types, and weight presence.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("%w: no layers", ErrBadGraph)
	}
	if len(m.InputShape) != 4 && len(m.InputShape) != 2 {
		return fmt.Errorf("%w: input shape %v", ErrBadGraph, m.InputShape)
	}
	seen := map[string]bool{InputName: true}
	for i, l := range m.Layers {
		if l.Name == "" || l.Name == InputName {
			return fmt.Errorf("%w: layer %d has reserved or empty name %q", ErrBadGraph, i, l.Name)
		}
		if seen[l.Name] {
			return fmt.Errorf("%w: %q", ErrDuplicate, l.Name)
		}
		if len(l.Inputs) == 0 {
			return fmt.Errorf("%w: layer %q has no inputs", ErrBadGraph, l.Name)
		}
		for _, in := range l.Inputs {
			if !seen[in] {
				return fmt.Errorf("%w: %q wants %q", ErrUnknownInput, l.Name, in)
			}
		}
		if err := l.validateOp(); err != nil {
			return err
		}
		seen[l.Name] = true
	}
	return nil
}

func (l *Layer) validateOp() error {
	needW := func(roles ...string) error {
		for _, r := range roles {
			if l.Weights[r] == nil {
				return fmt.Errorf("%w: layer %q (%s) missing weight %q", ErrBadGraph, l.Name, l.Op, r)
			}
		}
		return nil
	}
	switch l.Op {
	case OpConv2D, OpDepthwiseConv2D, OpDense:
		if err := needW(WeightMain); err != nil {
			return err
		}
	case OpBatchNorm:
		if err := needW(WeightScale, WeightShift); err != nil {
			return err
		}
	case OpMaxPool, OpAvgPool:
		if l.Kernel <= 0 || l.Stride <= 0 {
			return fmt.Errorf("%w: pool layer %q kernel/stride", ErrBadGraph, l.Name)
		}
	case OpAdd:
		if len(l.Inputs) != 2 {
			return fmt.Errorf("%w: add layer %q wants 2 inputs", ErrBadGraph, l.Name)
		}
	case OpConcat:
		if len(l.Inputs) < 2 {
			return fmt.Errorf("%w: concat layer %q wants >=2 inputs", ErrBadGraph, l.Name)
		}
	case OpReLU, OpReLU6, OpGlobalAvgPool, OpSoftmax, OpFlatten:
		// no weights, single input
	default:
		return fmt.Errorf("%w: unknown op %q in layer %q", ErrBadGraph, l.Op, l.Name)
	}
	if l.Op == OpConv2D || l.Op == OpDepthwiseConv2D {
		if l.Stride <= 0 {
			return fmt.Errorf("%w: conv layer %q stride %d", ErrBadGraph, l.Name, l.Stride)
		}
	}
	return nil
}

// OutShape computes the output shape of layer l given its input shapes.
func (l *Layer) OutShape(ins [][]int) ([]int, error) {
	in := ins[0]
	switch l.Op {
	case OpConv2D:
		w := l.Weights[WeightMain]
		return tensor.ConvShape(in, w.Dim(0), w.Dim(1), w.Dim(3), l.Stride, l.Pad), nil
	case OpDepthwiseConv2D:
		w := l.Weights[WeightMain]
		s := tensor.ConvShape(in, w.Dim(0), w.Dim(1), in[3], l.Stride, l.Pad)
		return s, nil
	case OpDense:
		w := l.Weights[WeightMain]
		if len(in) != 2 || in[1] != w.Dim(0) {
			return nil, fmt.Errorf("%w: dense %q input %v vs weight %v", tensor.ErrShape, l.Name, in, w.Shape())
		}
		return []int{in[0], w.Dim(1)}, nil
	case OpMaxPool, OpAvgPool:
		return tensor.ConvShape(in, l.Kernel, l.Kernel, in[3], l.Stride, l.Pad), nil
	case OpGlobalAvgPool:
		return []int{in[0], in[3]}, nil
	case OpFlatten:
		n := 1
		for _, d := range in[1:] {
			n *= d
		}
		return []int{in[0], n}, nil
	case OpAdd:
		if !intsEq(ins[0], ins[1]) {
			return nil, fmt.Errorf("%w: add %q inputs %v vs %v", tensor.ErrShape, l.Name, ins[0], ins[1])
		}
		return in, nil
	case OpConcat:
		c := 0
		for _, s := range ins {
			if len(s) != 4 || s[0] != in[0] || s[1] != in[1] || s[2] != in[2] {
				return nil, fmt.Errorf("%w: concat %q input %v", tensor.ErrShape, l.Name, s)
			}
			c += s[3]
		}
		return []int{in[0], in[1], in[2], c}, nil
	case OpBatchNorm, OpReLU, OpReLU6, OpSoftmax:
		return in, nil
	}
	return nil, fmt.Errorf("model: OutShape for unknown op %q", l.Op)
}

// InferShapes returns the output shape of every layer, keyed by layer name,
// including InputName.
func (m *Model) InferShapes() (map[string][]int, error) {
	shapes := map[string][]int{InputName: m.InputShape}
	for i := range m.Layers {
		l := &m.Layers[i]
		ins := make([][]int, len(l.Inputs))
		for j, name := range l.Inputs {
			s, ok := shapes[name]
			if !ok {
				return nil, fmt.Errorf("%w: %q wants %q", ErrUnknownInput, l.Name, name)
			}
			ins[j] = s
		}
		out, err := l.OutShape(ins)
		if err != nil {
			return nil, err
		}
		shapes[l.Name] = out
	}
	return shapes, nil
}

// OutputLayer returns the name of the final layer (the model output).
func (m *Model) OutputLayer() string {
	return m.Layers[len(m.Layers)-1].Name
}

// WeightBytes returns the total weight payload size in bytes (excluding
// ballast).
func (m *Model) WeightBytes() int {
	n := 0
	for i := range m.Layers {
		for _, w := range m.Layers[i].Weights {
			n += w.SizeBytes()
		}
	}
	return n
}

// ParamCount returns the number of trainable parameters.
func (m *Model) ParamCount() int {
	n := 0
	for i := range m.Layers {
		for _, w := range m.Layers[i].Weights {
			n += w.Len()
		}
	}
	return n
}

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
