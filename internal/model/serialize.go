package model

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"sesemi/internal/tensor"
)

// Serialized model layout (all integers little-endian):
//
//	magic   [4]byte  "SSMI"
//	version uint32   currently 1
//	hdrLen  uint32   length of the JSON header
//	header  []byte   JSON (wireModel below)
//	weights []byte   float32 payloads in header order
//	ballast []byte   opaque padding (length in header)
//	crc     uint32   CRC-32 (IEEE) of everything before it
//
// The format is self-describing and integrity-checked so that tampering with
// a stored (encrypted) model is detected after decryption even before the
// graph is validated.

var magic = [4]byte{'S', 'S', 'M', 'I'}

const formatVersion = 1

type wireWeight struct {
	Role  string `json:"role"`
	Shape []int  `json:"shape"`
}

type wireLayer struct {
	Name    string       `json:"name"`
	Op      OpType       `json:"op"`
	Inputs  []string     `json:"inputs"`
	Kernel  int          `json:"kernel,omitempty"`
	Stride  int          `json:"stride,omitempty"`
	Pad     int          `json:"pad,omitempty"`
	Weights []wireWeight `json:"weights,omitempty"`
}

type wireModel struct {
	Name       string      `json:"name"`
	Arch       string      `json:"arch"`
	InputShape []int       `json:"input_shape"`
	NumClasses int         `json:"num_classes"`
	Layers     []wireLayer `json:"layers"`
	BallastLen int         `json:"ballast_len"`
}

// ErrFormat reports a malformed serialized model.
var ErrFormat = fmt.Errorf("model: bad serialized format")

// Marshal serializes the model to the SSMI binary format.
func Marshal(m *Model) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	wm := wireModel{
		Name:       m.Name,
		Arch:       m.Arch,
		InputShape: m.InputShape,
		NumClasses: m.NumClasses,
		BallastLen: len(m.Ballast),
	}
	var weightOrder []*tensor.Tensor
	for i := range m.Layers {
		l := &m.Layers[i]
		wl := wireLayer{
			Name:   l.Name,
			Op:     l.Op,
			Inputs: l.Inputs,
			Kernel: l.Kernel,
			Stride: l.Stride,
			Pad:    int(l.Pad),
		}
		for _, role := range []string{WeightMain, WeightBias, WeightScale, WeightShift} {
			if w := l.Weights[role]; w != nil {
				wl.Weights = append(wl.Weights, wireWeight{Role: role, Shape: w.Shape()})
				weightOrder = append(weightOrder, w)
			}
		}
		wm.Layers = append(wm.Layers, wl)
	}
	hdr, err := json.Marshal(wm)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], formatVersion)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(hdr)))
	buf.Write(u32[:])
	buf.Write(hdr)
	for _, w := range weightOrder {
		for _, v := range w.Data() {
			binary.LittleEndian.PutUint32(u32[:], math.Float32bits(v))
			buf.Write(u32[:])
		}
	}
	buf.Write(m.Ballast)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(u32[:])
	return buf.Bytes(), nil
}

// Unmarshal parses a serialized model and validates its integrity and graph.
func Unmarshal(data []byte) (*Model, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("%w: too short (%d bytes)", ErrFormat, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFormat)
	}
	if !bytes.Equal(body[:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.LittleEndian.Uint32(body[4:8]); v != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	hdrLen := int(binary.LittleEndian.Uint32(body[8:12]))
	if 12+hdrLen > len(body) {
		return nil, fmt.Errorf("%w: header length %d overruns payload", ErrFormat, hdrLen)
	}
	var wm wireModel
	if err := json.Unmarshal(body[12:12+hdrLen], &wm); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	r := bytes.NewReader(body[12+hdrLen:])
	m := &Model{
		Name:       wm.Name,
		Arch:       wm.Arch,
		InputShape: wm.InputShape,
		NumClasses: wm.NumClasses,
	}
	for _, wl := range wm.Layers {
		l := Layer{
			Name:   wl.Name,
			Op:     wl.Op,
			Inputs: wl.Inputs,
			Kernel: wl.Kernel,
			Stride: wl.Stride,
			Pad:    tensor.Padding(wl.Pad),
		}
		if len(wl.Weights) > 0 {
			l.Weights = make(map[string]*tensor.Tensor, len(wl.Weights))
		}
		for _, ww := range wl.Weights {
			n := 1
			for _, d := range ww.Shape {
				if d <= 0 {
					return nil, fmt.Errorf("%w: weight shape %v", ErrFormat, ww.Shape)
				}
				n *= d
			}
			raw := make([]byte, 4*n)
			if _, err := io.ReadFull(r, raw); err != nil {
				return nil, fmt.Errorf("%w: truncated weights for %s/%s", ErrFormat, wl.Name, ww.Role)
			}
			vals := make([]float32, n)
			for i := range vals {
				vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
			}
			t, err := tensor.FromSlice(vals, ww.Shape...)
			if err != nil {
				return nil, err
			}
			l.Weights[ww.Role] = t
		}
		m.Layers = append(m.Layers, l)
	}
	if wm.BallastLen > 0 {
		m.Ballast = make([]byte, wm.BallastLen)
		if _, err := io.ReadFull(r, m.Ballast); err != nil {
			return nil, fmt.Errorf("%w: truncated ballast", ErrFormat)
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, r.Len())
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// SerializedSize returns the exact size Marshal would produce, without
// building the payload.
func SerializedSize(m *Model) (int, error) {
	wm := wireModel{
		Name:       m.Name,
		Arch:       m.Arch,
		InputShape: m.InputShape,
		NumClasses: m.NumClasses,
		BallastLen: len(m.Ballast),
	}
	for i := range m.Layers {
		l := &m.Layers[i]
		wl := wireLayer{Name: l.Name, Op: l.Op, Inputs: l.Inputs, Kernel: l.Kernel, Stride: l.Stride, Pad: int(l.Pad)}
		for _, role := range []string{WeightMain, WeightBias, WeightScale, WeightShift} {
			if w := l.Weights[role]; w != nil {
				wl.Weights = append(wl.Weights, wireWeight{Role: role, Shape: w.Shape()})
			}
		}
		wm.Layers = append(wm.Layers, wl)
	}
	hdr, err := json.Marshal(wm)
	if err != nil {
		return 0, err
	}
	return 12 + len(hdr) + 4*m.ParamCount() + len(m.Ballast) + 4, nil
}
