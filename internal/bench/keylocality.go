package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/gateway"
	"sesemi/internal/metrics"
	"sesemi/internal/semirt"
)

// ---------- Key locality experiment: LRU key cache + user-aware batching ----------
//
// The enclave historically cached exactly ONE (model, user, KeyService) key
// pair, so a user-diverse batch refetched keys over the KeyService session
// on nearly every member — the hottest remaining per-request cost once
// batching (PR 1), routing (PR 2) and fairness (PR 3) removed the others.
// This experiment measures what the bounded LRU key cache
// (semirt.Config.KeyCacheSize) and user-aware batch ordering
// (gateway.Config.GroupUsers + HandleBatch's tag ordering) recover on a
// Zipf-distributed multi-user stream, and verifies the single-user hot path
// did not regress.
//
// Key fetches are charged at their modeled cost (LiveWorldConfig.
// KeyFetchCost, default 20 ms — a fraction of the paper's 170 ms warm
// refetch, chosen so full runs stay fast while the fetch still dominates the
// flip) and counted at the enclave (semirt Stats.KeyFetches), so the
// latency claim comes with the mechanism visible: fewer fetches, not a
// side effect.

// KeyLocalityRunResult is one cache configuration's measured outcome.
type KeyLocalityRunResult struct {
	GatewayRunResult
	// Users is the distinct user-principal population of the run.
	Users int `json:"users"`
	// CacheSize is the enclave key-cache capacity (0 = cache disabled).
	CacheSize int `json:"cache_size"`
	// Grouped reports whether the gateway formed user-affinity runs.
	Grouped bool `json:"grouped"`
	// KeyFetches counts KeyService provisioning round trips across every
	// enclave of the run (world warm-up included: one fetch).
	KeyFetches uint64 `json:"key_fetches"`
	// HotRate is the fraction of responses served fully hot.
	HotRate float64 `json:"hot_rate"`
}

// KeyLocalitySnapshot is the BENCH_keylocality.json payload.
type KeyLocalitySnapshot struct {
	Clients      int     `json:"clients"`
	PerClient    int     `json:"requests_per_client"`
	Users        int     `json:"users"`
	Skew         float64 `json:"user_skew"`
	MaxBatch     int     `json:"max_batch"`
	CacheSize    int     `json:"lru_cache_size"`
	KeyFetchCost string  `json:"key_fetch_cost"`

	// SinglePair is the pre-LRU baseline (KeyCacheSize 1, no grouping);
	// LRU widens the cache; LRUGrouped adds user-affinity batch grouping.
	SinglePair KeyLocalityRunResult `json:"single_pair"`
	LRU        KeyLocalityRunResult `json:"lru"`
	LRUGrouped KeyLocalityRunResult `json:"lru_grouped"`

	// Sweep is the users × cache-size × grouping grid (empty in smoke runs).
	Sweep []KeyLocalityRunResult `json:"sweep,omitempty"`

	// SoloSingle/SoloLRU are single-user runs under both cache builds: the
	// no-regression guard for the hot path the LRU must not slow down.
	SoloSingle KeyLocalityRunResult `json:"solo_single_pair"`
	SoloLRU    KeyLocalityRunResult `json:"solo_lru"`

	// MeanSpeedup is SinglePair mean latency over LRUGrouped's (target ≥2x);
	// KeyFetchReduction the same ratio over enclave key fetches.
	MeanSpeedup       float64 `json:"mean_speedup"`
	KeyFetchReduction float64 `json:"key_fetch_reduction"`
	// SoloThroughputRatio is SoloLRU RPS over SoloSingle's (target ≥0.95).
	SoloThroughputRatio float64 `json:"solo_throughput_ratio"`

	// Analytic cross-checks: steady-state LRU hit rate at this population,
	// and expected per-batch key switches under both cache sizes
	// (costmodel.KeyCacheHitRate / ExpectedKeySwitches, uniform-population
	// conservative bounds).
	EstimatedHitRateLRU     float64 `json:"estimated_hit_rate_lru"`
	EstimatedSwitchesSingle float64 `json:"estimated_switches_single"`
	EstimatedSwitchesLRU    float64 `json:"estimated_switches_lru"`
}

// KeyLocalityBenchConfig sizes the comparison.
type KeyLocalityBenchConfig struct {
	// Clients is the closed-loop client count (default 64).
	Clients int
	// PerClient is requests per client (default 16).
	PerClient int
	// Users is the user-principal population (default 16, the ISSUE's
	// 16-user Zipf stream).
	Users int
	// Skew is the Zipf skew s over users (>1; default 1.2).
	Skew float64
	// MaxBatch is the gateway batch bound (default 8).
	MaxBatch int
	// CacheSize is the LRU capacity under test (default
	// semirt.DefaultKeyCacheSize).
	CacheSize int
	// KeyFetchCost is the modeled provisioning latency (default 20 ms).
	KeyFetchCost time.Duration
	// SweepUsers × SweepCaches define the sweep grid (each cache size runs
	// grouped and ungrouped). Leave both nil to skip the sweep (smoke).
	SweepUsers  []int
	SweepCaches []int
}

func (c *KeyLocalityBenchConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 64
	}
	if c.PerClient <= 0 {
		c.PerClient = 16
	}
	if c.Users <= 0 {
		c.Users = 16
	}
	if c.Skew <= 1 {
		c.Skew = 1.2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.CacheSize <= 0 {
		c.CacheSize = semirt.DefaultKeyCacheSize
	}
	if c.KeyFetchCost <= 0 {
		c.KeyFetchCost = 20 * time.Millisecond
	}
}

// KeyLocalitySmokeConfig is the tiny CI configuration: headline runs only,
// no sweep.
func KeyLocalitySmokeConfig() KeyLocalityBenchConfig {
	return KeyLocalityBenchConfig{
		Clients: 8, PerClient: 4, Users: 4,
		MaxBatch: 4, KeyFetchCost: 2 * time.Millisecond,
	}
}

// runKeyLocalityMode drives one cache configuration on a fresh world:
// closed-loop clients drawing their user per request from a Zipf over the
// population, submitting through the gateway with the user-affinity hint.
func runKeyLocalityMode(cfg KeyLocalityBenchConfig, mode string, users, cacheSize int, grouped bool) (KeyLocalityRunResult, error) {
	w, err := NewLiveWorld(LiveWorldConfig{
		Users:        users,
		KeyFetchCost: cfg.KeyFetchCost,
		KeyCacheSize: cacheSize,
		Gateway: gateway.Config{
			MaxBatch:     cfg.MaxBatch,
			MaxWait:      4 * time.Millisecond,
			MaxQueue:     4096,
			MaxInFlight:  8,
			PrewarmDepth: 32,
			GroupUsers:   grouped,
		},
	})
	if err != nil {
		return KeyLocalityRunResult{}, err
	}
	defer w.Close()

	var lat metrics.Latency
	var mu sync.Mutex
	errs, hot := 0, 0
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1 + c)))
			var zipf *rand.Zipf
			if users > 1 {
				zipf = rand.NewZipf(rng, cfg.Skew, 1, uint64(users-1))
			}
			for i := 0; i < cfg.PerClient; i++ {
				u := 0
				if zipf != nil {
					u = int(zipf.Uint64())
				}
				t0 := time.Now()
				resp, err := w.DoGatewayUser(context.Background(), u, c*cfg.PerClient+i)
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					errs++
				} else {
					lat.Add(d)
					if resp.Kind == semirt.Hot {
						hot++
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	n := cfg.Clients * cfg.PerClient
	res := KeyLocalityRunResult{
		GatewayRunResult: GatewayRunResult{
			Mode:     mode,
			Requests: n,
			Errors:   errs,
			Seconds:  elapsed.Seconds(),
			RPS:      float64(n-errs) / elapsed.Seconds(),
			MeanMs:   float64(lat.Mean()) / 1e6,
			P50Ms:    float64(lat.Percentile(50)) / 1e6,
			P95Ms:    float64(lat.Percentile(95)) / 1e6,
			P99Ms:    float64(lat.Percentile(99)) / 1e6,
		},
		Users:      users,
		CacheSize:  cacheSize,
		Grouped:    grouped,
		KeyFetches: w.KeyFetches(),
	}
	gwStats := w.Gateway.Stats()
	res.Batches = gwStats.Batches
	res.MeanBatch = w.Gateway.Metrics().BatchSizes.Mean()
	if served := n - errs; served > 0 {
		res.HotRate = float64(hot) / float64(served)
	}
	return res, nil
}

// RunKeyLocalityBench measures the cache configurations on identical fresh
// deployments and assembles the snapshot.
func RunKeyLocalityBench(cfg KeyLocalityBenchConfig) (*KeyLocalitySnapshot, error) {
	cfg.defaults()
	snap := &KeyLocalitySnapshot{
		Clients:      cfg.Clients,
		PerClient:    cfg.PerClient,
		Users:        cfg.Users,
		Skew:         cfg.Skew,
		MaxBatch:     cfg.MaxBatch,
		CacheSize:    cfg.CacheSize,
		KeyFetchCost: cfg.KeyFetchCost.String(),
	}
	var err error
	if snap.SinglePair, err = runKeyLocalityMode(cfg, "single-pair", cfg.Users, 1, false); err != nil {
		return nil, err
	}
	if snap.LRU, err = runKeyLocalityMode(cfg, "lru", cfg.Users, cfg.CacheSize, false); err != nil {
		return nil, err
	}
	if snap.LRUGrouped, err = runKeyLocalityMode(cfg, "lru+group", cfg.Users, cfg.CacheSize, true); err != nil {
		return nil, err
	}
	if snap.SoloSingle, err = runKeyLocalityMode(cfg, "solo/single-pair", 1, 1, false); err != nil {
		return nil, err
	}
	if snap.SoloLRU, err = runKeyLocalityMode(cfg, "solo/lru", 1, cfg.CacheSize, true); err != nil {
		return nil, err
	}
	for _, u := range cfg.SweepUsers {
		for _, cs := range cfg.SweepCaches {
			for _, grouped := range []bool{false, true} {
				mode := fmt.Sprintf("u%d/c%d", u, cs)
				if grouped {
					mode += "/group"
				}
				r, err := runKeyLocalityMode(cfg, mode, u, cs, grouped)
				if err != nil {
					return nil, err
				}
				snap.Sweep = append(snap.Sweep, r)
			}
		}
	}

	if snap.LRUGrouped.MeanMs > 0 {
		snap.MeanSpeedup = snap.SinglePair.MeanMs / snap.LRUGrouped.MeanMs
	}
	if snap.LRUGrouped.KeyFetches > 0 {
		snap.KeyFetchReduction = float64(snap.SinglePair.KeyFetches) / float64(snap.LRUGrouped.KeyFetches)
	}
	if snap.SoloSingle.RPS > 0 {
		snap.SoloThroughputRatio = snap.SoloLRU.RPS / snap.SoloSingle.RPS
	}
	snap.EstimatedHitRateLRU = costmodel.KeyCacheHitRate(cfg.Users, cfg.CacheSize)
	snap.EstimatedSwitchesSingle = costmodel.ExpectedKeySwitches(cfg.MaxBatch, cfg.Users, 1)
	snap.EstimatedSwitchesLRU = costmodel.ExpectedKeySwitches(cfg.MaxBatch, cfg.Users, cfg.CacheSize)
	return snap, nil
}

// WriteKeyLocalitySnapshot runs the comparison and writes
// BENCH_keylocality.json.
func WriteKeyLocalitySnapshot(path string, cfg KeyLocalityBenchConfig) (*KeyLocalitySnapshot, error) {
	snap, err := RunKeyLocalityBench(cfg)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, err
	}
	return snap, os.WriteFile(path, append(data, '\n'), 0o644)
}

func printKeyLocalityRun(w io.Writer, r KeyLocalityRunResult) {
	fmt.Fprintf(w, "%-18s %6d req %4d err %7.0f req/s  mean %7.1fms  p99 %8.1fms  hot %5.1f%%  %5d key fetches\n",
		r.Mode, r.Requests, r.Errors, r.RPS, r.MeanMs, r.P99Ms, 100*r.HotRate, r.KeyFetches)
}

func runKeyLocalityExperiment(w io.Writer) error {
	header(w, "Key locality: LRU key cache + user-aware batch ordering (16-user Zipf stream)")
	snap, err := RunKeyLocalityBench(KeyLocalityBenchConfig{
		SweepUsers:  []int{4, 16},
		SweepCaches: []int{1, 4, 64},
	})
	if err != nil {
		return err
	}
	printKeyLocalityRun(w, snap.SinglePair)
	printKeyLocalityRun(w, snap.LRU)
	printKeyLocalityRun(w, snap.LRUGrouped)
	printKeyLocalityRun(w, snap.SoloSingle)
	printKeyLocalityRun(w, snap.SoloLRU)
	for _, r := range snap.Sweep {
		printKeyLocalityRun(w, r)
	}
	fmt.Fprintf(w, "mean speedup lru+group over single-pair: %.2fx (target ≥2x); key fetches %.0fx fewer\n",
		snap.MeanSpeedup, snap.KeyFetchReduction)
	fmt.Fprintf(w, "solo throughput lru/single: %.2f (target ≥0.95)\n", snap.SoloThroughputRatio)
	fmt.Fprintf(w, "analytic: LRU hit rate %.2f, per-batch switches single %.1f → lru %.1f\n",
		snap.EstimatedHitRateLRU, snap.EstimatedSwitchesSingle, snap.EstimatedSwitchesLRU)
	return nil
}

func init() {
	register(Experiment{
		ID:    "keylocality",
		Title: "Key locality: enclave LRU key cache + user-aware batch ordering",
		Run:   runKeyLocalityExperiment,
	})
}
