package bench

import (
	"bytes"
	"testing"
	"time"

	"sesemi/internal/gateway"
	"sesemi/internal/obs"
)

// A fully-sampled world must stitch every hop's spans into one trace per
// request whose top-level stages tile the end-to-end latency — the 5%
// coverage bar the obstax experiment gates, asserted here at test scale.
func TestStitchedTraceCoverage(t *testing.T) {
	w, err := NewLiveWorld(LiveWorldConfig{
		TraceSample: 1,
		Gateway: gateway.Config{
			MaxBatch:     4,
			MaxWait:      2 * time.Millisecond,
			MaxQueue:     1024,
			MaxInFlight:  8,
			PrewarmDepth: 32,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const clients, perClient = 4, 8
	res := ClosedLoop("trace", clients, perClient, w.DoGateway)
	if res.Errors != 0 {
		t.Fatalf("errors %d", res.Errors)
	}
	tr := w.Tracer
	if tr == nil {
		t.Fatal("TraceSample=1 did not arm the world's tracer")
	}
	st := tr.Stats()
	if want := uint64(clients * perClient); st.Started != want || st.Kept != want {
		t.Fatalf("stats %+v, want %d started and kept at sample 1", st, want)
	}
	if cov := tr.Coverage(); cov < 0.95 || cov > 1.05 {
		t.Fatalf("top-level coverage %.3f, want within 5%% of e2e", cov)
	}
	seen := map[string]bool{}
	for _, row := range tr.Decomposition() {
		seen[row.Stage] = true
	}
	for _, want := range []string{"admit", "queue", "dispatch", "fanout"} {
		if !seen[want] {
			t.Errorf("decomposition missing top-level stage %q (have %v)", want, seen)
		}
	}

	// The world's registry carries the trace series and the exposition parses.
	var buf bytes.Buffer
	w.Registry.WritePrometheus(&buf)
	if err := obs.CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("sesemi_trace_started_total")) {
		t.Error("exposition missing sesemi_trace_started_total")
	}
}

// The historical zero-overhead configuration: TraceSample 0 leaves the
// tracer off while the registry keeps serving the metric plane.
func TestTraceOffByDefault(t *testing.T) {
	w, err := NewLiveWorld(LiveWorldConfig{
		Gateway: gateway.Config{
			MaxBatch:     2,
			MaxWait:      2 * time.Millisecond,
			MaxQueue:     256,
			MaxInFlight:  4,
			PrewarmDepth: 8,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Tracer != nil {
		t.Fatal("tracer armed without TraceSample")
	}
	res := ClosedLoop("off", 2, 4, w.DoGateway)
	if res.Errors != 0 {
		t.Fatalf("errors %d", res.Errors)
	}
	var buf bytes.Buffer
	w.Registry.WritePrometheus(&buf)
	if err := obs.CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition: %v", err)
	}
}
