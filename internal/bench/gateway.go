package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"sesemi/internal/attest"
	"sesemi/internal/autoscale"
	"sesemi/internal/costmodel"
	"sesemi/internal/enclave"
	"sesemi/internal/faults"
	"sesemi/internal/frontier"
	"sesemi/internal/gateway"
	"sesemi/internal/inference"
	_ "sesemi/internal/inference/tinytflm"
	_ "sesemi/internal/inference/tinytvm"
	"sesemi/internal/keyservice"
	"sesemi/internal/metrics"
	"sesemi/internal/model"
	"sesemi/internal/obs"
	"sesemi/internal/secure"
	"sesemi/internal/semirt"
	"sesemi/internal/serverless"
	"sesemi/internal/storage"
	"sesemi/internal/tensor"
	"sesemi/internal/vclock"
	"sesemi/internal/workload"
)

// ---------- Live serving world (cluster + KeyService + gateway) ----------

// LiveWorld is a complete in-process SeSeMI deployment — KeyService over
// loopback TCP, a serverless cluster of SGX2 platforms running SeMIRT
// actions, and a serving gateway in front — used by the gateway and routing
// experiments, the gateway benchmarks, and loadgen's -local mode.
type LiveWorld struct {
	Cluster *serverless.Cluster
	Gateway *gateway.Gateway
	// Frontier is the sharded gateway tier over the same cluster (nil unless
	// LiveWorldConfig.Shards > 1). The plain Gateway stays available — the
	// frontier's shards are their own gateway instances.
	Frontier *frontier.Frontier
	// Autoscaler is the predictive controller wired between the gateway and
	// the cluster (nil unless LiveWorldConfig.Autoscale is set).
	Autoscaler *autoscale.Controller
	// Tracer is the deployment-wide request tracer (nil unless
	// LiveWorldConfig.TraceSample > 0); Registry is the unified metrics
	// registry every world carries — gateway (or frontier), key service and
	// tracer series are pre-registered, ready for obs.Mount.
	Tracer   *obs.Tracer
	Registry *obs.Registry
	// Action is the single deployed endpoint; Model its default model id.
	Action, Model string
	// Models lists every deployed model id (Models[0] == Model). All models
	// share the one action — the multi-model endpoint whose enclaves swap
	// state when consecutive requests target different models.
	Models []string

	// reqKeys and userID are user 0's credentials (the single-user surface
	// every pre-keylocality experiment drives).
	reqKeys map[string]secure.Key
	userID  secure.ID
	// userIDs and userKeys hold every deployed user principal's identity and
	// per-model request keys (LiveWorldConfig.Users of them; index 0 is the
	// legacy single user).
	userIDs  []secure.ID
	userKeys []map[string]secure.Key
	shape    []int
	closers  []func()

	// rtMu/runtimes track every SeMIRT runtime the cluster instantiated, so
	// experiments can aggregate enclave-level counters (key fetches) that
	// never cross the activation wire.
	rtMu     sync.Mutex
	runtimes []*semirt.Runtime
}

// LiveWorldConfig shapes the deployment.
type LiveWorldConfig struct {
	// Nodes is the invoker count (default 1).
	Nodes int
	// NodeMemory bounds sandboxes per node (default 512 MiB: two 256 MiB
	// sandboxes, so warm capacity is genuinely scarce).
	NodeMemory int64
	// Concurrency is TCSs per SeMIRT enclave (default 4).
	Concurrency int
	// Models is how many model ids to deploy on the single action (default
	// 1). The first is "mbnet"; the rest are functional clones ("m1", "m2",
	// …) with their own keys and blobs, so a multi-model serving mix is real:
	// an enclave switching models pays decrypt + load + runtime init.
	Models int
	// ModelPadBytes, when positive, pads every deployed model blob to this
	// serialized size, making the model-swap penalty (and therefore routing
	// locality) proportional to a configurable model size.
	ModelPadBytes int
	// ExtraModels deploys additional model ids identically to the clones —
	// each with its own keys, blob and grants. The rollout experiment uses
	// it to deploy a canary revision ("mbnet@v2") alongside its stable base.
	ExtraModels []string
	// Users is how many user principals to register and grant on every
	// model (default 1). Each gets its own request keys, so a user-diverse
	// stream exercises the enclave's key cache for real: serving a user not
	// resident in the cache pays a KeyService provisioning round trip.
	Users int
	// KeyFetchCost, when positive, charges the modeled key provisioning
	// latency (cold and warm alike) on the platform's wall clock, making the
	// key-fetch path cost what the paper measures instead of a bare loopback
	// round trip. It also unmutes the platform clock, so modeled enclave
	// launch/attestation sleeps apply to cold paths.
	KeyFetchCost time.Duration
	// ExecCost, when positive, charges a modeled model-execution latency per
	// request on the platform clock (which it unmutes, like KeyFetchCost) —
	// so batches occupy sandbox slots for realistic service times and warm
	// capacity is genuinely scarce at load (the autoscale experiment's
	// pressure source).
	ExecCost time.Duration
	// SandboxStart is the modeled container start latency charged on the
	// cluster clock (0 = free starts, the historical bench behaviour). The
	// cost every cold start pays and prewarming hides.
	SandboxStart time.Duration
	// KeepWarm overrides the cluster's idle-sandbox deadline (0 = the
	// 3-minute paper default).
	KeepWarm time.Duration
	// ReaperInterval, when positive, runs Cluster.ReapIdle on this cadence
	// for the world's lifetime — required for keep-warm (fixed or adaptive)
	// to actually reclaim memory during a run.
	ReaperInterval time.Duration
	// StartEnclave launches each runtime's enclave inside the sandbox start
	// (semirt.Runtime.Start) instead of lazily on the first request — the
	// OpenWhisk prewarm semantics the autoscale experiment measures, where
	// a prewarmed sandbox serves its first request warm, not cold.
	StartEnclave bool
	// Autoscale, when non-nil, wires a predictive autoscale.Controller
	// between the gateway and the cluster (gateway.Config.Autoscaler is set
	// automatically) and runs its control loop for the world's lifetime.
	Autoscale *autoscale.Config
	// KeyCacheSize sets semirt.Config.KeyCacheSize (0 = the live default,
	// 1 = the historical single-pair cache).
	KeyCacheSize int
	// DisableKeyCache sets semirt.Config.DisableKeyCache.
	DisableKeyCache bool
	// InvokeOverhead is the modeled per-activation platform overhead charged
	// on the wall clock while a request holds its slot (default 2 ms — the
	// controller/invoker/action-proxy hop of an OpenWhisk activation, which
	// batching amortizes).
	InvokeOverhead time.Duration
	// Faults, when non-nil, wires the fault-injection plane into both layers
	// of the deployment: the cluster consults it per node dispatch
	// (serverless.Config.Faults) and every SeMIRT runtime per activation
	// (semirt.Deps.Faults). The chaos experiment drives it mid-run.
	Faults *faults.Injector
	// KSRetries / KSRetryBackoff / KSBrownout pass through to semirt.Deps:
	// the runtime-side key-service retry budget and brownout window.
	KSRetries      int
	KSRetryBackoff time.Duration
	KSBrownout     time.Duration
	// TraceSample, when positive, arms request-lifecycle tracing across the
	// deployment: a shared obs.Tracer head-sampling this fraction of requests
	// (anomalies always retained) is wired into the gateway (and frontier
	// shards), and LiveWorld.Tracer/Registry expose the decomposition. Zero
	// leaves tracing off — the historical zero-overhead configuration.
	TraceSample float64
	// Gateway tunes the front-end; zero values take gateway defaults.
	Gateway gateway.Config
	// Shards, when > 1, additionally builds a sharded frontier
	// (internal/frontier) of that many gateway shards over the same cluster;
	// FrontierConfig tunes its routing/spill/steal knobs (the embedded
	// gateway.Config and Shards are filled from this struct).
	Shards         int
	FrontierConfig frontier.Config
}

// NewLiveWorld builds the deployment, deploys one functional mbnet model and
// one action, and warms one sandbox.
func NewLiveWorld(cfg LiveWorldConfig) (*LiveWorld, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.NodeMemory <= 0 {
		cfg.NodeMemory = 512 << 20
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.InvokeOverhead == 0 {
		cfg.InvokeOverhead = 2 * time.Millisecond
	}
	if cfg.Models <= 0 {
		cfg.Models = 1
	}
	if cfg.Users <= 0 {
		cfg.Users = 1
	}
	w := &LiveWorld{Action: "fn-mbnet", Model: "mbnet"}
	w.Models = append(w.Models, "mbnet")
	for i := 1; i < cfg.Models; i++ {
		w.Models = append(w.Models, fmt.Sprintf("m%d", i))
	}
	w.Models = append(w.Models, cfg.ExtraModels...)
	fail := func(err error) (*LiveWorld, error) {
		w.Close()
		return nil, err
	}

	ca, err := attest.NewCA()
	if err != nil {
		return fail(err)
	}
	// Platform sleeps are disabled (Scale 0): modeled TEE latencies are not
	// the subject here. The cluster clock runs at Scale 1 so InvokeOverhead
	// is charged for real — it is what the gateway amortizes. The
	// keylocality experiment instead charges the modeled key-fetch cost
	// (KeyFetchCost) and the autoscale experiment the modeled execution
	// cost (ExecCost), which need the platform clock live.
	platClock := vclock.Real{Scale: 0}
	if cfg.KeyFetchCost > 0 || cfg.ExecCost > 0 {
		platClock = vclock.Real{Scale: 1}
	}

	ksKey, err := ca.Provision("ks")
	if err != nil {
		return fail(err)
	}
	svc := keyservice.NewService()
	ksEnc, err := enclave.NewPlatform(costmodel.SGX2, platClock, ksKey).
		Launch(keyservice.ManifestFor(64), svc)
	if err != nil {
		return fail(err)
	}
	w.closers = append(w.closers, ksEnc.Destroy)
	srv, err := keyservice.NewServer(svc, ca.PublicKey())
	if err != nil {
		return fail(err)
	}
	srv.SetLogf(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	go func() { _ = srv.Serve(ln) }()
	w.closers = append(w.closers, func() { _ = srv.Close() })
	ksAddr := ln.Addr().String()

	store := storage.NewMemory(platClock, nil)
	var nodes []*serverless.Node
	for i := 0; i < cfg.Nodes; i++ {
		key, err := ca.Provision(fmt.Sprintf("node-%d", i))
		if err != nil {
			return fail(err)
		}
		nodes = append(nodes, &serverless.Node{
			Name:        fmt.Sprintf("node-%d", i),
			MemoryBytes: cfg.NodeMemory,
			Extra:       enclave.NewPlatform(costmodel.SGX2, platClock, key),
		})
	}
	ccfg := serverless.DefaultConfig()
	ccfg.Clock = vclock.Real{Scale: 1}
	ccfg.Faults = cfg.Faults
	ccfg.SandboxStart = cfg.SandboxStart
	if cfg.KeepWarm > 0 {
		ccfg.KeepWarm = cfg.KeepWarm
	}
	ccfg.InvokeOverhead = cfg.InvokeOverhead
	w.Cluster = serverless.NewCluster(ccfg, nodes...)
	w.closers = append(w.closers, w.Cluster.Close)

	// Principals, model, grants. User 0 keeps the historical "bench-user"
	// seed; additional principals (a multi-user serving mix) get their own
	// long-term keys and per-model request keys.
	dial := keyservice.TCPDialer(ksAddr)
	owner := keyservice.NewClient(dial, ca.PublicKey(), ksEnc.Measurement(), secure.KeyFromSeed("bench-owner"))
	w.closers = append(w.closers, func() { owner.Close() })
	if err := owner.Register(); err != nil {
		return fail(err)
	}
	var users []*keyservice.Client
	for u := 0; u < cfg.Users; u++ {
		seed := "bench-user"
		if u > 0 {
			seed = fmt.Sprintf("bench-user-%d", u)
		}
		uc := keyservice.NewClient(dial, ca.PublicKey(), ksEnc.Measurement(), secure.KeyFromSeed(seed))
		w.closers = append(w.closers, func() { uc.Close() })
		if err := uc.Register(); err != nil {
			return fail(err)
		}
		users = append(users, uc)
		w.userIDs = append(w.userIDs, uc.ID())
		w.userKeys = append(w.userKeys, map[string]secure.Key{})
	}
	scfg, err := semirt.DefaultConfig("tvm", w.Model, cfg.Concurrency)
	if err != nil {
		return fail(err)
	}
	scfg.KeyCacheSize = cfg.KeyCacheSize
	scfg.DisableKeyCache = cfg.DisableKeyCache
	if cfg.KeyFetchCost > 0 || cfg.ExecCost > 0 {
		scfg.ModeledStages = &costmodel.StageCosts{
			KeyFetchCold: cfg.KeyFetchCost,
			KeyFetchWarm: cfg.KeyFetchCost,
			ModelExec:    cfg.ExecCost,
		}
	}
	m, err := model.NewFunctional(w.Model)
	if err != nil {
		return fail(err)
	}
	if cfg.ModelPadBytes > 0 {
		if err := model.PadToSize(m, cfg.ModelPadBytes); err != nil {
			return fail(err)
		}
	}
	w.shape = m.InputShape
	data, err := model.Marshal(m)
	if err != nil {
		return fail(err)
	}
	es := scfg.Manifest().Measure()
	w.userID = users[0].ID()
	// Every model id is the same functional network under its own keys and
	// blob — what matters to the serving stack is that they are distinct
	// models: an enclave switching between them refetches keys, re-decrypts
	// and reloads. Every user principal is granted on every model with its
	// own request key, so a user flip is a genuinely different key pair.
	for _, id := range w.Models {
		km := secure.KeyFromSeed("bench-km-" + id)
		ct, err := semirt.EncryptModel(km, id, data)
		if err != nil {
			return fail(err)
		}
		if err := store.Put(semirt.ModelBlobName(id), ct); err != nil {
			return fail(err)
		}
		if err := owner.AddModelKey(id, km); err != nil {
			return fail(err)
		}
		for u, uc := range users {
			if err := owner.GrantAccess(id, es, uc.ID()); err != nil {
				return fail(err)
			}
			seed := "bench-kr-" + id
			if u > 0 {
				seed = fmt.Sprintf("bench-kr-%s-u%d", id, u)
			}
			kr := secure.KeyFromSeed(seed)
			if err := uc.AddReqKey(id, es, kr); err != nil {
				return fail(err)
			}
			w.userKeys[u][id] = kr
		}
	}
	w.reqKeys = w.userKeys[0]

	err = w.Cluster.Deploy(&serverless.Action{
		Name:         w.Action,
		MemoryBudget: 256 << 20,
		Concurrency:  scfg.Concurrency,
		New: func(n *serverless.Node) (serverless.Instance, error) {
			rt, err := semirt.New(scfg, semirt.Deps{
				Platform:       n.Extra.(*enclave.Platform),
				Store:          store,
				KSDialer:       keyservice.TCPDialer(ksAddr),
				CAPublicKey:    ca.PublicKey(),
				ExpectEK:       ksEnc.Measurement(),
				Faults:         cfg.Faults,
				KSRetries:      cfg.KSRetries,
				KSRetryBackoff: cfg.KSRetryBackoff,
				KSBrownout:     cfg.KSBrownout,
			})
			if err != nil {
				return nil, err
			}
			if cfg.StartEnclave {
				// Launch the enclave as part of the sandbox start, so a
				// prewarmed sandbox serves its first request warm — the
				// OpenWhisk prewarm semantics (Runtime.Start's purpose).
				if err := rt.Start(); err != nil {
					rt.Stop()
					return nil, err
				}
			}
			w.rtMu.Lock()
			w.runtimes = append(w.runtimes, rt)
			w.rtMu.Unlock()
			return semirt.Instance{RT: rt}, nil
		},
	})
	if err != nil {
		return fail(err)
	}

	if cfg.Autoscale != nil {
		w.Autoscaler = autoscale.New(*cfg.Autoscale, w.Cluster)
		cfg.Gateway.Autoscaler = w.Autoscaler
		w.Autoscaler.Start()
		w.closers = append(w.closers, w.Autoscaler.Stop)
	}
	if cfg.ReaperInterval > 0 {
		w.closers = append(w.closers, w.Cluster.StartReaper(cfg.ReaperInterval))
	}
	if cfg.TraceSample > 0 {
		// One tracer shared by the gateway and every frontier shard, so a
		// stolen or spilled request's spans land in the same decomposition.
		w.Tracer = obs.NewTracer(obs.Config{TraceSample: cfg.TraceSample})
		cfg.Gateway.Tracer = w.Tracer
	}
	w.Gateway = gateway.New(cfg.Gateway, w.Cluster)
	w.closers = append(w.closers, w.Gateway.Close)
	if cfg.Shards > 1 {
		fcfg := cfg.FrontierConfig
		fcfg.Config = cfg.Gateway
		fcfg.Shards = cfg.Shards
		w.Frontier = frontier.New(fcfg, w.Cluster)
		w.closers = append(w.closers, w.Frontier.Close)
	}
	w.Registry = obs.NewRegistry()
	if w.Frontier != nil {
		w.Frontier.RegisterMetrics(w.Registry, nil)
	} else {
		w.Gateway.RegisterMetrics(w.Registry, nil)
	}
	svc.RegisterMetrics(w.Registry, nil)
	w.Tracer.RegisterMetrics(w.Registry, nil)

	// Warm one sandbox end to end so both access paths start hot.
	if _, err := w.DoDirect(context.Background(), 0); err != nil {
		return fail(err)
	}
	return w, nil
}

// Request builds one encrypted request for the default model (seed varies
// the input tensor).
func (w *LiveWorld) Request(seed int) (semirt.Request, error) {
	return w.RequestFor(w.Model, seed)
}

// RequestFor builds one encrypted request for a deployed model id (as
// user 0).
func (w *LiveWorld) RequestFor(modelID string, seed int) (semirt.Request, error) {
	return w.RequestForUser(0, modelID, seed)
}

// Users returns the number of deployed user principals.
func (w *LiveWorld) Users() int { return len(w.userIDs) }

// RequestForUser builds one encrypted request for a deployed model id under
// user u's request key.
func (w *LiveWorld) RequestForUser(u int, modelID string, seed int) (semirt.Request, error) {
	if u < 0 || u >= len(w.userKeys) {
		return semirt.Request{}, fmt.Errorf("bench: user %d not deployed (%d users)", u, len(w.userKeys))
	}
	kr, ok := w.userKeys[u][modelID]
	if !ok {
		return semirt.Request{}, fmt.Errorf("bench: model %q not deployed", modelID)
	}
	in := tensor.New(w.shape...)
	for i := range in.Data() {
		in.Data()[i] = float32((i+seed)%13) * 0.06
	}
	payload, err := semirt.EncryptRequest(kr, modelID, inference.EncodeTensor(in))
	if err != nil {
		return semirt.Request{}, err
	}
	return semirt.Request{UserID: w.userIDs[u], ModelID: modelID, Payload: payload}, nil
}

// DoGatewayUser sends one request through the gateway as user u, carrying
// the user-affinity grouping hint so a GroupUsers gateway can form
// same-user runs.
func (w *LiveWorld) DoGatewayUser(ctx context.Context, u int, seed int) (semirt.Response, error) {
	req, err := w.RequestForUser(u, w.Model, seed)
	if err != nil {
		return semirt.Response{}, err
	}
	tk, err := w.Gateway.Submit(ctx, gateway.Request{
		Action: w.Action,
		Hints:  gateway.Hints{User: string(req.UserID)},
		Body:   req,
	})
	if err != nil {
		return semirt.Response{}, err
	}
	return tk.Wait(ctx)
}

// KeyFetches sums KeyService provisioning round trips across every SeMIRT
// runtime the world's cluster instantiated — the enclave-level counter the
// key cache exists to shrink.
func (w *LiveWorld) KeyFetches() uint64 {
	w.rtMu.Lock()
	defer w.rtMu.Unlock()
	var n uint64
	for _, rt := range w.runtimes {
		n += rt.Stats().KeyFetches
	}
	return n
}

// SessionStats sums the continuous-batching counters across every SeMIRT
// runtime the world's cluster instantiated: scheduling frames executed
// (enclave re-entries a continuous session pays per step) and members
// preempted at a step boundary. Both feed the BLIS-style overhead
// decomposition in the HOL snapshot.
func (w *LiveWorld) SessionStats() (steps, preempted uint64) {
	w.rtMu.Lock()
	defer w.rtMu.Unlock()
	for _, rt := range w.runtimes {
		st := rt.Stats()
		steps += st.SessionSteps
		preempted += st.Preempted
	}
	return steps, preempted
}

// DoDirect sends one request straight through Cluster.Invoke (the unbatched
// baseline path).
func (w *LiveWorld) DoDirect(ctx context.Context, seed int) (semirt.Response, error) {
	return w.DoDirectFor(ctx, w.Model, seed)
}

// DoDirectFor is DoDirect for a specific model id.
func (w *LiveWorld) DoDirectFor(ctx context.Context, modelID string, seed int) (semirt.Response, error) {
	req, err := w.RequestFor(modelID, seed)
	if err != nil {
		return semirt.Response{}, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return semirt.Response{}, err
	}
	raw, err := w.Cluster.Invoke(ctx, w.Action, body)
	if err != nil {
		return semirt.Response{}, err
	}
	var resp semirt.Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return semirt.Response{}, err
	}
	return resp, nil
}

// DoGateway sends one request through the batching gateway.
func (w *LiveWorld) DoGateway(ctx context.Context, seed int) (semirt.Response, error) {
	return w.DoGatewayFor(ctx, w.Model, seed)
}

// DoGatewayFor is DoGateway for a specific model id.
func (w *LiveWorld) DoGatewayFor(ctx context.Context, modelID string, seed int) (semirt.Response, error) {
	req, err := w.RequestFor(modelID, seed)
	if err != nil {
		return semirt.Response{}, err
	}
	return w.Gateway.Do(ctx, w.Action, req)
}

// DoGatewayAs sends one request through the gateway under a serving API v2
// envelope: tenant-attributed, with an optional deadline. An empty tenant
// rides the default tenant (the FIFO-equivalent baseline the fairness
// experiment measures against).
func (w *LiveWorld) DoGatewayAs(ctx context.Context, tenant string, deadline time.Time, seed int) (semirt.Response, error) {
	req, err := w.Request(seed)
	if err != nil {
		return semirt.Response{}, err
	}
	tk, err := w.Gateway.Submit(ctx, gateway.Request{
		Action: w.Action, Tenant: tenant, Deadline: deadline, Body: req,
	})
	if err != nil {
		return semirt.Response{}, err
	}
	return tk.Wait(ctx)
}

// DoFrontierAs sends one request through the sharded frontier under a
// tenant: the frontier routes it by (action, model, tenant) to its home
// shard, spilling on overload. Requires LiveWorldConfig.Shards > 1.
func (w *LiveWorld) DoFrontierAs(ctx context.Context, tenant, modelID string, seed int) (semirt.Response, error) {
	req, err := w.RequestFor(modelID, seed)
	if err != nil {
		return semirt.Response{}, err
	}
	tk, err := w.Frontier.Submit(ctx, gateway.Request{
		Action: w.Action, Tenant: tenant, Body: req,
	})
	if err != nil {
		return semirt.Response{}, err
	}
	return tk.Wait(ctx)
}

// Decrypt opens a response payload for the default model.
func (w *LiveWorld) Decrypt(resp semirt.Response) ([]byte, error) {
	return semirt.DecryptResponse(w.reqKeys[w.Model], w.Model, resp.Payload)
}

// Close tears the deployment down.
func (w *LiveWorld) Close() {
	for i := len(w.closers) - 1; i >= 0; i-- {
		w.closers[i]()
	}
	w.closers = nil
}

// ---------- Gateway experiment: batched vs unbatched serving ----------

// GatewayRunResult is one access path's measured outcome.
type GatewayRunResult struct {
	Mode      string  `json:"mode"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Seconds   float64 `json:"seconds"`
	RPS       float64 `json:"rps"`
	MeanMs    float64 `json:"mean_ms"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Batches   uint64  `json:"batches,omitempty"`
	MeanBatch float64 `json:"mean_batch,omitempty"`
}

// GatewaySnapshot is the BENCH_gateway.json payload: the serving-path
// comparison that seeds the repo's performance trajectory.
type GatewaySnapshot struct {
	Clients        int              `json:"clients"`
	PerClient      int              `json:"requests_per_client"`
	MaxBatch       int              `json:"max_batch"`
	InvokeOverhead string           `json:"invoke_overhead"`
	Unbatched      GatewayRunResult `json:"unbatched"`
	Batched        GatewayRunResult `json:"batched"`
	Speedup        float64          `json:"speedup"`
	// EstimatedFormationMs is costmodel.BatchFormationDelay at the measured
	// offered rate — the sim-side estimate the measurement is compared to.
	EstimatedFormationMs float64 `json:"estimated_formation_ms"`
}

// GatewayBenchConfig sizes the comparison run.
type GatewayBenchConfig struct {
	// Clients is the closed-loop client count (default 64).
	Clients int
	// PerClient is requests per client (default 16).
	PerClient int
	// MaxBatch is the gateway batch bound (default 8).
	MaxBatch int
	// InvokeOverhead overrides the live world's default when positive.
	InvokeOverhead time.Duration
}

func (c *GatewayBenchConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 64
	}
	if c.PerClient <= 0 {
		c.PerClient = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.InvokeOverhead <= 0 {
		// Conservative stand-in for the measured OpenWhisk activation path
		// (≈10-30 ms in production deployments).
		c.InvokeOverhead = 5 * time.Millisecond
	}
}

// ClosedLoop drives clients×perClient requests through do (closed loop:
// each client issues its next request as soon as the previous returns) and
// aggregates throughput and latency. loadgen -local and the gateway
// experiment share it.
func ClosedLoop(mode string, clients, perClient int, do func(ctx context.Context, seed int) (semirt.Response, error)) GatewayRunResult {
	var lat metrics.Latency
	var mu sync.Mutex
	errs := 0
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				_, err := do(context.Background(), c*perClient+i)
				d := time.Since(t0)
				if err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					continue
				}
				lat.Add(d)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	n := clients * perClient
	s := lat.Snapshot()
	return GatewayRunResult{
		Mode:     mode,
		Requests: n,
		Errors:   errs,
		Seconds:  elapsed.Seconds(),
		RPS:      float64(n-errs) / elapsed.Seconds(),
		MeanMs:   float64(s.Mean) / 1e6,
		P50Ms:    float64(s.P50) / 1e6,
		P95Ms:    float64(s.P95) / 1e6,
		P99Ms:    float64(s.P99) / 1e6,
	}
}

// RunGatewayBench measures unbatched Cluster.Invoke against the batching
// gateway on the same live deployment and returns the comparison.
func RunGatewayBench(cfg GatewayBenchConfig) (*GatewaySnapshot, error) {
	cfg.defaults()
	build := func() (*LiveWorld, error) {
		return NewLiveWorld(LiveWorldConfig{
			InvokeOverhead: cfg.InvokeOverhead,
			Gateway: gateway.Config{
				MaxBatch:     cfg.MaxBatch,
				MaxWait:      4 * time.Millisecond,
				MaxQueue:     4096,
				MaxInFlight:  8,
				PrewarmDepth: 32,
			},
		})
	}
	// Separate worlds per mode so sandbox state from one run cannot warm the
	// other's.
	wu, err := build()
	if err != nil {
		return nil, err
	}
	unbatched := ClosedLoop("unbatched", cfg.Clients, cfg.PerClient, wu.DoDirect)
	wu.Close()

	wb, err := build()
	if err != nil {
		return nil, err
	}
	batched := ClosedLoop("gateway", cfg.Clients, cfg.PerClient, wb.DoGateway)
	gwStats := wb.Gateway.Stats()
	gwMetrics := wb.Gateway.Metrics()
	batched.Batches = gwStats.Batches
	batched.MeanBatch = gwMetrics.BatchSizes.Mean()
	wb.Close()

	speedup := 0.0 // 0 signals "no valid baseline" (keeps the JSON finite)
	if unbatched.RPS > 0 {
		speedup = batched.RPS / unbatched.RPS
	}
	snap := &GatewaySnapshot{
		Clients:        cfg.Clients,
		PerClient:      cfg.PerClient,
		MaxBatch:       cfg.MaxBatch,
		InvokeOverhead: cfg.InvokeOverhead.String(),
		Unbatched:      unbatched,
		Batched:        batched,
		Speedup:        speedup,
		EstimatedFormationMs: float64(costmodel.BatchFormationDelay(
			batched.RPS, cfg.MaxBatch, 4*time.Millisecond)) / 1e6,
	}
	return snap, nil
}

// WriteGatewaySnapshot runs the comparison and writes BENCH_gateway.json.
func WriteGatewaySnapshot(path string, cfg GatewayBenchConfig) (*GatewaySnapshot, error) {
	snap, err := RunGatewayBench(cfg)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, err
	}
	return snap, os.WriteFile(path, append(data, '\n'), 0o644)
}

func printGatewayRun(w io.Writer, r GatewayRunResult) {
	fmt.Fprintf(w, "%-10s %6d req %4d err %8.0f req/s  mean %6.1fms  p50 %6.1fms  p95 %6.1fms  p99 %6.1fms",
		r.Mode, r.Requests, r.Errors, r.RPS, r.MeanMs, r.P50Ms, r.P95Ms, r.P99Ms)
	if r.Batches > 0 {
		fmt.Fprintf(w, "  (%d batches, mean %.1f)", r.Batches, r.MeanBatch)
	}
	fmt.Fprintln(w)
}

func runGatewayExperiment(w io.Writer) error {
	header(w, "Gateway: batched vs unbatched serving (64 closed-loop clients)")
	snap, err := RunGatewayBench(GatewayBenchConfig{})
	if err != nil {
		return err
	}
	printGatewayRun(w, snap.Unbatched)
	printGatewayRun(w, snap.Batched)
	fmt.Fprintf(w, "speedup: %.2fx (MaxBatch=%d, per-activation overhead %s)\n",
		snap.Speedup, snap.MaxBatch, snap.InvokeOverhead)
	fmt.Fprintf(w, "batch formation estimate at measured rate: %.2f ms\n", snap.EstimatedFormationMs)
	return nil
}

func init() {
	register(Experiment{
		ID:    "gateway",
		Title: "Gateway: per-model batching vs direct Cluster.Invoke",
		Run:   runGatewayExperiment,
	})
}

// OpenLoopGateway replays a workload trace against the live world's gateway
// at the trace's own arrival times (loadgen -local), routing each event to
// its own model id. It returns the latency distribution, per-kind counts,
// and the failure count.
func OpenLoopGateway(w *LiveWorld, tr workload.Trace) (*metrics.Latency, map[string]int, int) {
	lat := &metrics.Latency{}
	perKind := map[string]int{}
	var mu sync.Mutex
	fails := 0
	var wg sync.WaitGroup
	start := time.Now()
	for i := range tr {
		ev := tr[i]
		time.Sleep(time.Until(start.Add(ev.At)))
		wg.Add(1)
		go func(ev workload.Event, seed int) {
			defer wg.Done()
			t0 := time.Now()
			var resp semirt.Response
			var err error
			if ev.ExecSteps > 1 {
				// A long event carries its step count into the enclave
				// request — the heavy tail loadgen's -exec-tail marks.
				var req semirt.Request
				if req, err = w.RequestFor(ev.ModelID, seed); err == nil {
					req.ExecSteps = ev.ExecSteps
					resp, err = w.Gateway.Do(context.Background(), w.Action, req)
				}
			} else {
				resp, err = w.DoGatewayFor(context.Background(), ev.ModelID, seed)
			}
			d := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fails++
				return
			}
			lat.Add(d)
			perKind[resp.Kind.String()]++
		}(ev, i)
	}
	wg.Wait()
	return lat, perKind, fails
}
