package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/faults"
	"sesemi/internal/gateway"
	"sesemi/internal/semirt"
)

// ---------- Chaos experiment: fault injection vs the recovery plane ----------
//
// The same closed-loop population runs three times on identical fresh
// two-node worlds:
//
//	fault-free  — no injector: the baseline goodput everything is judged
//	              against
//	recovery    — mid-run node crash + key-service outage + a sandbox-crash
//	              coin, with the full recovery plane armed (gateway retries,
//	              breaker-aware placement, runtime KS retries + brownout)
//	no-recovery — the identical fault schedule with every retry budget zeroed,
//	              so each fault surfaces to a caller as a lost request
//
// At one third of the run the injector crashes node-0 and takes the
// KeyService down for a window — so the failover cold start on node-1 lands
// inside the outage, the compound failure the recovery plane exists for. At
// one half node-0 comes back and the cluster re-absorbs it. Throughout,
// every activation flips a seeded coin for a sandbox crash mid-ECall.
//
// The headline numbers: requests lost with recovery on (target 0 — faults
// become latency, not errors), goodput under faults vs fault-free (target
// ≥ 0.8x), and the loss the identical schedule inflicts with recovery off
// (must be visible, or the injector proved nothing).

// ChaosRun is one run's measured outcome plus the fault/recovery counters
// the three planes kept.
type ChaosRun struct {
	GatewayRunResult
	// Lost is requests that surfaced an error to their caller (== Errors;
	// the closed loop never cancels, so every error is a genuine loss).
	Lost int `json:"lost"`
	// Retries is the gateway's fairness-neutral re-queue count.
	Retries uint64 `json:"retries,omitempty"`
	// BackendPanics counts dispatch-path panics converted to typed errors.
	BackendPanics uint64 `json:"backend_panics,omitempty"`
	// NodeFailures is the cluster's node-crash teardown sweeps.
	NodeFailures uint64 `json:"node_failures,omitempty"`
	// SandboxCrashes / KSRejects are the injector's own hit counts.
	SandboxCrashes uint64 `json:"sandbox_crashes,omitempty"`
	KSRejects      uint64 `json:"ks_rejects,omitempty"`
}

// ChaosSnapshot is the BENCH_chaos.json payload.
type ChaosSnapshot struct {
	Clients          int     `json:"clients"`
	PerClient        int     `json:"requests_per_client"`
	ExecCost         string  `json:"exec_cost"`
	MaxBatch         int     `json:"max_batch"`
	Seed             int64   `json:"seed"`
	SandboxCrashProb float64 `json:"sandbox_crash_prob"`
	KSOutage         string  `json:"ks_outage"`
	MaxRetries       int     `json:"max_retries"`
	RetryBackoff     string  `json:"retry_backoff"`
	KSRetries        int     `json:"ks_retries"`
	KSRetryBackoff   string  `json:"ks_retry_backoff"`

	FaultFree  ChaosRun `json:"fault_free"`
	Recovery   ChaosRun `json:"faults_with_recovery"`
	NoRecovery ChaosRun `json:"faults_no_recovery"`

	// LostWithRecovery restates Recovery.Lost (target 0: with the recovery
	// plane armed, faults must become latency, never errors).
	LostWithRecovery int `json:"lost_with_recovery"`
	// LostNoRecovery restates NoRecovery.Lost (must be > 0, or the schedule
	// wasn't severe enough to prove anything).
	LostNoRecovery int `json:"lost_no_recovery"`
	// GoodputRatio is Recovery.RPS over FaultFree.RPS (target ≥ 0.8: a node
	// lost for a third of the run plus a KS outage may cost a fifth of the
	// goodput, not more).
	GoodputRatio float64 `json:"goodput_ratio"`
	// EstRetryOverheadMs is costmodel.RetryOverhead for a request that burns
	// the whole gateway budget — the worst-case added latency a retried
	// request pays waiting out backoff.
	EstRetryOverheadMs float64 `json:"est_retry_overhead_ms"`
	// EstAvailability is costmodel.AvailabilityUnderFaults with the
	// no-recovery loss rate as the per-attempt failure probability and the
	// recovery run's attempt budget — the analytic prediction the measured
	// LostWithRecovery == 0 should agree with.
	EstAvailability float64 `json:"est_availability"`
}

// ChaosBenchConfig sizes the experiment.
type ChaosBenchConfig struct {
	// Clients is the closed-loop client count (default 16).
	Clients int
	// PerClient is requests per client (default 96: the run must be long
	// enough that the one-time recovery transients — failover, node-0's
	// post-restore rebuild — amortize the way they would in production).
	PerClient int
	// ExecCost is the modeled per-request execution latency (default 3 ms),
	// so requests genuinely occupy slots and a crashed node's in-flight work
	// is real.
	ExecCost time.Duration
	// MaxBatch is the gateway batch bound (default 4).
	MaxBatch int
	// Seed feeds the injector's deterministic coin (default 1).
	Seed int64
	// SandboxCrashProb is the per-activation mid-ECall crash probability for
	// the two injected runs (default 0.05).
	SandboxCrashProb float64
	// KSOutage is how long the KeyService refuses provisioning after the
	// node crash (default 100 ms — inside the runtime's retry budget).
	KSOutage time.Duration
	// MaxRetries / RetryBackoff are the gateway budget for the recovery run
	// (defaults 3 and 1 ms; the no-recovery run forces both to zero).
	MaxRetries   int
	RetryBackoff time.Duration
	// KSRetries / KSRetryBackoff / KSBrownout are the runtime-side
	// key-service budget for the recovery run (defaults 3, 50 ms, 250 ms —
	// three 50 ms waits ride out the default 100 ms outage).
	KSRetries      int
	KSRetryBackoff time.Duration
	KSBrownout     time.Duration
}

func (c *ChaosBenchConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.PerClient <= 0 {
		c.PerClient = 96
	}
	if c.ExecCost <= 0 {
		c.ExecCost = 3 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SandboxCrashProb <= 0 {
		c.SandboxCrashProb = 0.05
	}
	if c.KSOutage <= 0 {
		c.KSOutage = 100 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.KSRetries <= 0 {
		c.KSRetries = 3
	}
	if c.KSRetryBackoff <= 0 {
		c.KSRetryBackoff = 50 * time.Millisecond
	}
	if c.KSBrownout <= 0 {
		c.KSBrownout = 250 * time.Millisecond
	}
}

// ChaosSmokeConfig is the tiny CI configuration. The crash coin is hotter so
// the no-recovery run still loses something at this scale.
func ChaosSmokeConfig() ChaosBenchConfig {
	return ChaosBenchConfig{
		Clients: 8, PerClient: 8, ExecCost: 2 * time.Millisecond,
		SandboxCrashProb: 0.05,
	}
}

// runChaosMode drives the population against a fresh two-node world. inject
// arms the fault schedule; recovery arms the retry/failover plane.
func runChaosMode(cfg ChaosBenchConfig, mode string, inject, recovery bool) (ChaosRun, error) {
	var inj *faults.Injector
	if inject {
		inj = faults.New(cfg.Seed, nil)
		inj.SetSandboxCrashProb(cfg.SandboxCrashProb)
	}
	wcfg := LiveWorldConfig{
		Nodes:        2,
		ExecCost:     cfg.ExecCost,
		StartEnclave: true,
		Faults:       inj,
		Gateway: gateway.Config{
			MaxBatch:     cfg.MaxBatch,
			MaxWait:      2 * time.Millisecond,
			MaxQueue:     4096,
			MaxInFlight:  8,
			PrewarmDepth: 32,
		},
	}
	if recovery {
		wcfg.Gateway.MaxRetries = cfg.MaxRetries
		wcfg.Gateway.RetryBackoff = cfg.RetryBackoff
		wcfg.KSRetries = cfg.KSRetries
		wcfg.KSRetryBackoff = cfg.KSRetryBackoff
		wcfg.KSBrownout = cfg.KSBrownout
	}
	w, err := NewLiveWorld(wcfg)
	if err != nil {
		return ChaosRun{}, err
	}
	defer w.Close()
	// Warm the full capacity (two sandboxes per node) before the clock
	// starts: the experiment measures fault recovery, not cold-start
	// placement, and failover must land on warm capacity — the crashed
	// node's share of the work moves, it doesn't wait out an enclave launch.
	if _, err := w.Cluster.Prewarm(w.Action, 4); err != nil {
		return ChaosRun{}, err
	}

	// The fault schedule is triggered by served-request count, not wall
	// time, so it lands at the same fraction of every run regardless of
	// machine speed: crash + outage at one third, restore at one half.
	total := cfg.Clients * cfg.PerClient
	var served atomic.Int64
	var crash, restore sync.Once
	do := func(ctx context.Context, seed int) (semirt.Response, error) {
		if inj != nil {
			switch served.Add(1) {
			case int64(total / 3):
				crash.Do(func() {
					inj.CrashNode("node-0")
					inj.KeyServiceOutage(cfg.KSOutage)
				})
			case int64(total / 2):
				restore.Do(func() {
					// The flap: the node comes back while the KeyService is
					// down again, so rebuilding node-0's enclaves means
					// provisioning into the outage — retried to success with
					// the recovery plane, failed cold starts without.
					inj.RestoreNode("node-0")
					inj.KeyServiceOutage(cfg.KSOutage)
				})
			}
		}
		return w.DoGateway(ctx, seed)
	}
	res := ClosedLoop(mode, cfg.Clients, cfg.PerClient, do)

	run := ChaosRun{GatewayRunResult: res, Lost: res.Errors}
	gs := w.Gateway.Stats()
	run.Retries = gs.Retries
	run.BackendPanics = gs.BackendPanics
	run.NodeFailures = w.Cluster.Stats().NodeFailures
	if inj != nil {
		is := inj.Stats()
		run.SandboxCrashes = is.SandboxCrashes
		run.KSRejects = is.KSRejects
	}
	return run, nil
}

// RunChaosBench measures the three runs and assembles the snapshot.
func RunChaosBench(cfg ChaosBenchConfig) (*ChaosSnapshot, error) {
	cfg.defaults()
	snap := &ChaosSnapshot{
		Clients:          cfg.Clients,
		PerClient:        cfg.PerClient,
		ExecCost:         cfg.ExecCost.String(),
		MaxBatch:         cfg.MaxBatch,
		Seed:             cfg.Seed,
		SandboxCrashProb: cfg.SandboxCrashProb,
		KSOutage:         cfg.KSOutage.String(),
		MaxRetries:       cfg.MaxRetries,
		RetryBackoff:     cfg.RetryBackoff.String(),
		KSRetries:        cfg.KSRetries,
		KSRetryBackoff:   cfg.KSRetryBackoff.String(),
	}
	var err error
	if snap.FaultFree, err = runChaosMode(cfg, "fault-free", false, true); err != nil {
		return nil, err
	}
	if snap.Recovery, err = runChaosMode(cfg, "faults+recovery", true, true); err != nil {
		return nil, err
	}
	if snap.NoRecovery, err = runChaosMode(cfg, "faults-no-recovery", true, false); err != nil {
		return nil, err
	}
	snap.LostWithRecovery = snap.Recovery.Lost
	snap.LostNoRecovery = snap.NoRecovery.Lost
	if snap.FaultFree.RPS > 0 {
		snap.GoodputRatio = snap.Recovery.RPS / snap.FaultFree.RPS
	}
	// The gateway caps the backoff exponent at 6 doublings of the base.
	snap.EstRetryOverheadMs = float64(costmodel.RetryOverhead(
		cfg.MaxRetries, cfg.RetryBackoff, cfg.RetryBackoff<<6)) / 1e6
	if n := snap.NoRecovery.Requests; n > 0 {
		p := float64(snap.NoRecovery.Lost) / float64(n)
		snap.EstAvailability = costmodel.AvailabilityUnderFaults(p, cfg.MaxRetries+1)
	}
	return snap, nil
}

// WriteChaosSnapshot runs the experiment and writes BENCH_chaos.json.
func WriteChaosSnapshot(path string, cfg ChaosBenchConfig) (*ChaosSnapshot, error) {
	snap, err := RunChaosBench(cfg)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, err
	}
	return snap, os.WriteFile(path, append(data, '\n'), 0o644)
}

func printChaosRun(w io.Writer, r ChaosRun) {
	fmt.Fprintf(w, "%-20s %5d req %3d lost %7.0f req/s  p99 %7.1fms (mean %6.1f)",
		r.Mode, r.Requests, r.Lost, r.RPS, r.P99Ms, r.MeanMs)
	if r.Retries+r.NodeFailures+r.SandboxCrashes+r.KSRejects > 0 {
		fmt.Fprintf(w, "  (%d retries, %d node failures, %d sandbox crashes, %d ks rejects)",
			r.Retries, r.NodeFailures, r.SandboxCrashes, r.KSRejects)
	}
	fmt.Fprintln(w)
}

func runChaosExperiment(w io.Writer) error {
	header(w, "Chaos: node crash + KS outage + sandbox crashes, recovery on vs off")
	snap, err := RunChaosBench(ChaosBenchConfig{})
	if err != nil {
		return err
	}
	printChaosRun(w, snap.FaultFree)
	printChaosRun(w, snap.Recovery)
	printChaosRun(w, snap.NoRecovery)
	fmt.Fprintf(w, "lost with recovery: %d (target 0)  goodput ratio: %.2f (target ≥ 0.8)  lost without recovery: %d\n",
		snap.LostWithRecovery, snap.GoodputRatio, snap.LostNoRecovery)
	fmt.Fprintf(w, "worst-case retry wait %.1f ms; predicted availability at %d attempts: %.4f\n",
		snap.EstRetryOverheadMs, snap.MaxRetries+1, snap.EstAvailability)
	return nil
}

func init() {
	register(Experiment{
		ID:    "chaos",
		Title: "Fault injection: recovery plane on vs off",
		Run:   runChaosExperiment,
	})
}
