package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/gateway"
	"sesemi/internal/rollout"
	"sesemi/internal/semirt"
	"sesemi/internal/sim"
	"sesemi/internal/workload"
)

// ---------- Rollout experiment: attested canary ramp vs a bad revision ----------
//
// Three measurements back the canary-rollout claim:
//
//	overhead — the revision splitter sits on EVERY request's submit path, so
//	           its cost is measured head-to-head: the same closed loop with
//	           and without the splitter (weight 0: pure routing tax). Target
//	           ≥ 0.97x the no-splitter baseline.
//	live     — a real LiveWorld ramp of a deliberately slow canary revision
//	           ("mbnet@v2", deployed with its own keys and blob): the
//	           controller promotes on healthy windows and must catch the
//	           slow build at a low ramp weight, drain it, and revoke its
//	           measurement — with zero lost requests.
//	sim      — the deterministic twin (sim.Config.Rollout): exact
//	           time-to-rollback and requests-affected for a seeded slow
//	           canary, plus a healthy ramp promoting end to end.
//
// The enclave twist that motivates the ordering: rolling back an attested
// revision revokes its measurement at the KeyService, which kills key release
// for that build CLUSTER-WIDE. So the rollback is weight-zero first, drain
// in-flight second, revoke last — and "zero lost requests" is the gate.

// RolloutLiveRun is the live ramp's outcome.
type RolloutLiveRun struct {
	// Requests / Errors aggregate every closed-loop window of the ramp.
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Windows is how many observation windows ran before the terminal phase.
	Windows int `json:"windows"`
	// Phase is the controller's terminal phase ("promoted"/"rolledback").
	Phase string `json:"phase"`
	// WeightAtBreach is the ramp weight when the gate tripped (rollback runs).
	WeightAtBreach int `json:"weight_at_breach,omitempty"`
	// TimeToRollbackMs is wall time from Begin to rollback-complete (weight
	// zeroed, in-flight drained, measurement revoked).
	TimeToRollbackMs float64 `json:"time_to_rollback_ms,omitempty"`
	// RequestsAffected is how many requests the canary served before the
	// rollback completed.
	RequestsAffected uint64 `json:"requests_affected,omitempty"`
	// Revoked reports that the rollback invoked the measurement-revocation
	// hook for the canary (the keyservice allowlist path).
	Revoked bool `json:"revoked,omitempty"`
}

// RolloutSimRun is one deterministic sim outcome.
type RolloutSimRun struct {
	Promoted         bool    `json:"promoted,omitempty"`
	RolledBack       bool    `json:"rolled_back,omitempty"`
	TimeToRollbackMs float64 `json:"time_to_rollback_ms,omitempty"`
	RequestsAffected int     `json:"requests_affected,omitempty"`
	Lost             int     `json:"lost"`
	Dropped          int     `json:"dropped"`
}

// RolloutSnapshot is the BENCH_rollout.json payload.
type RolloutSnapshot struct {
	Clients       int     `json:"clients"`
	PerClient     int     `json:"requests_per_client"`
	Users         int     `json:"users"`
	Steps         []int   `json:"steps"`
	PerWindow     int     `json:"requests_per_window"`
	CanaryExtraMs float64 `json:"canary_extra_ms"`
	SLORatio      float64 `json:"slo_latency_ratio"`

	// Baseline vs Splitter is the steady-state overhead comparison.
	Baseline                GatewayRunResult `json:"baseline"`
	Splitter                GatewayRunResult `json:"splitter"`
	SplitterThroughputRatio float64          `json:"splitter_throughput_ratio"`

	// Live is the real-deployment ramp of the slow canary.
	Live RolloutLiveRun `json:"live_rollback"`

	// SimRollback / SimHealthy are the deterministic mirror outcomes.
	SimRollback RolloutSimRun `json:"sim_rollback"`
	SimHealthy  RolloutSimRun `json:"sim_healthy"`

	// EstSplitterOverheadUs is costmodel.SplitterOverhead for the splitter
	// run's request count at ~100ns per routing decision.
	EstSplitterOverheadUs float64 `json:"est_splitter_overhead_us"`
	// EstTimeToRollbackMs is costmodel.TimeToRollback for the sim's
	// parameters — the analytic bound the measured sim value sits under.
	EstTimeToRollbackMs float64 `json:"est_time_to_rollback_ms"`
	// EstRequestsAffected is costmodel.RequestsAffected at the sim's arrival
	// rate, first-step weight and detection window.
	EstRequestsAffected int `json:"est_requests_affected"`
}

// RolloutBenchConfig sizes the experiment.
type RolloutBenchConfig struct {
	// Clients / PerClient size the overhead comparison's closed loop
	// (defaults 16 / 150).
	Clients   int
	PerClient int
	// Users is the caller population (default 32) — the sticky hash spreads
	// canary share across callers, so it needs a population to spread over.
	Users int
	// Steps is the ramp (default {25, 50, 100}: the first step must be
	// likely to catch at least one sticky caller at this population size).
	Steps []int
	// PerWindow is requests per client per observation window in the live
	// ramp (default 8).
	PerWindow int
	// CanaryExtra is the injected per-request slowdown of the canary
	// revision (default 15ms against a ~2ms stable request).
	CanaryExtra time.Duration
	// SLORatio is the canary/stable mean-latency gate (default 2).
	SLORatio float64
	// MinSamples is the minimum canary window to judge (default 5).
	MinSamples int
}

func (c *RolloutBenchConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.PerClient <= 0 {
		c.PerClient = 150
	}
	if c.Users <= 0 {
		c.Users = 32
	}
	if len(c.Steps) == 0 {
		c.Steps = []int{25, 50, 100}
	}
	if c.PerWindow <= 0 {
		c.PerWindow = 8
	}
	if c.CanaryExtra <= 0 {
		c.CanaryExtra = 15 * time.Millisecond
	}
	if c.SLORatio <= 0 {
		c.SLORatio = 2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
}

// RolloutSmokeConfig is the tiny CI configuration: the gate is the live
// rollback (slow canary caught, drained, revoked, nothing lost), not the
// throughput ratio, which is too noisy at this scale.
func RolloutSmokeConfig() RolloutBenchConfig {
	return RolloutBenchConfig{Clients: 8, PerClient: 24, Users: 16, PerWindow: 6}
}

const canaryRevision = "mbnet@v2"

// slowSubmitter injects the canary's misbehaviour: requests targeting the
// slow revision pay extra latency at the dispatch boundary, as a slower
// model build would. Everything else passes through to the gateway.
type slowSubmitter struct {
	g      *gateway.Gateway
	slowID string
	extra  time.Duration
}

func (s slowSubmitter) Submit(ctx context.Context, req gateway.Request) (*gateway.Ticket, error) {
	if s.extra > 0 && req.Body.ModelID == s.slowID {
		time.Sleep(s.extra)
	}
	return s.g.Submit(ctx, req)
}

// newRolloutWorld builds a world with the canary revision deployed beside
// its stable base (own keys, own blob) and enough user principals for the
// sticky split to spread over.
func newRolloutWorld(users int) (*LiveWorld, error) {
	return NewLiveWorld(LiveWorldConfig{
		Users:       users,
		ExtraModels: []string{canaryRevision},
		Gateway: gateway.Config{
			MaxBatch:     4,
			MaxWait:      2 * time.Millisecond,
			MaxQueue:     4096,
			MaxInFlight:  8,
			PrewarmDepth: 32,
		},
	})
}

// splitDo issues one request through the splitter: pick the revision, build
// the encrypted request for it, submit, observe.
func splitDo(ctx context.Context, w *LiveWorld, split *rollout.Splitter, sub rollout.Submitter, u, seed int) (semirt.Response, error) {
	return split.Do(ctx, sub, "", "u"+strconv.Itoa(u),
		func(modelID string) (gateway.Request, error) {
			req, err := w.RequestForUser(u, modelID, seed)
			if err != nil {
				return gateway.Request{}, err
			}
			return gateway.Request{
				Action: w.Action,
				Hints:  gateway.Hints{User: string(req.UserID)},
				Body:   req,
			}, nil
		})
}

// runRolloutOverhead measures the splitter's routing tax: the identical
// closed loop straight at the gateway vs through Splitter.Do (canary parked
// at weight 0, so every request still routes to stable — the comparison
// isolates the hash + snapshot + window bookkeeping).
func runRolloutOverhead(cfg RolloutBenchConfig) (base, spl GatewayRunResult, err error) {
	w, err := newRolloutWorld(cfg.Users)
	if err != nil {
		return base, spl, err
	}
	defer w.Close()
	base = ClosedLoop("no-splitter", cfg.Clients, cfg.PerClient, func(ctx context.Context, seed int) (semirt.Response, error) {
		return w.DoGatewayUser(ctx, seed%cfg.Users, seed)
	})
	split := rollout.NewSplitter(w.Model)
	split.SetCanary(canaryRevision, 0)
	spl = ClosedLoop("splitter", cfg.Clients, cfg.PerClient, func(ctx context.Context, seed int) (semirt.Response, error) {
		return splitDo(ctx, w, split, w.Gateway, seed%cfg.Users, seed)
	})
	return base, spl, nil
}

// runRolloutLive ramps the deliberately slow canary on a real deployment.
// The controller is driven synchronously: one closed-loop observation window
// of traffic, then one Tick — the timer loop's behaviour without its timing
// jitter, so the smoke gate is deterministic.
func runRolloutLive(cfg RolloutBenchConfig) (RolloutLiveRun, error) {
	w, err := newRolloutWorld(cfg.Users)
	if err != nil {
		return RolloutLiveRun{}, err
	}
	defer w.Close()

	split := rollout.NewSplitter(w.Model)
	var revoked []string
	ctrl, err := rollout.NewController(rollout.Config{
		Splitter:   split,
		Canary:     canaryRevision,
		Steps:      cfg.Steps,
		MinSamples: cfg.MinSamples,
		SLO:        rollout.SLO{MaxLatencyRatio: cfg.SLORatio},
		Revoke: func(canary string) error {
			revoked = append(revoked, canary)
			return nil
		},
	})
	if err != nil {
		return RolloutLiveRun{}, err
	}
	sub := slowSubmitter{g: w.Gateway, slowID: canaryRevision, extra: cfg.CanaryExtra}

	run := RolloutLiveRun{}
	ctrl.Begin()
	weight := split.Weight()
	// Bound the ramp: every healthy window promotes one step, so steps+3
	// windows is promote-or-breach with slack for held (thin) windows.
	for wnd := 0; wnd < len(cfg.Steps)+3; wnd++ {
		select {
		case <-ctrl.Done():
		default:
		}
		if st := ctrl.Status(); st.Phase != rollout.PhaseRamping {
			break
		}
		weight = split.Weight()
		res := ClosedLoop("window", cfg.Clients, cfg.PerWindow, func(ctx context.Context, seed int) (semirt.Response, error) {
			return splitDo(ctx, w, split, sub, seed%cfg.Users, seed)
		})
		run.Requests += res.Requests
		run.Errors += res.Errors
		run.Windows++
		ctrl.Tick()
	}
	st := ctrl.Status()
	run.Phase = string(st.Phase)
	if st.Phase == rollout.PhaseRolledBack {
		run.WeightAtBreach = weight
		run.TimeToRollbackMs = float64(st.TimeToRollback) / 1e6
		run.RequestsAffected = st.RequestsAffected
		run.Revoked = len(revoked) == 1 && revoked[0] == canaryRevision
	}
	return run, nil
}

// rolloutSimSpec is the deterministic mirror configuration shared by the
// rollback and healthy sim runs (internal/sim's rollout tests use the same
// shape).
func rolloutSimSpec(slowdown float64) (sim.Config, workload.Trace) {
	cfg := sim.Config{
		System:       sim.SeSeMI,
		HW:           costmodel.SGX2,
		Nodes:        1,
		CoresPerNode: costmodel.Cores,
		Actions: []sim.ActionSpec{{
			Name: "fn", Framework: "tvm", Concurrency: 4, DefaultModel: "mbnet",
		}},
		Rollout: sim.RolloutSpec{
			Enabled:        true,
			Stable:         "mbnet",
			Canary:         canaryRevision,
			Steps:          []int{25, 50, 100},
			StepInterval:   10 * time.Second,
			MinSamples:     3,
			SLO:            rollout.SLO{MaxErrorRate: 0.1, MaxLatencyRatio: 3},
			CanarySlowdown: slowdown,
		},
	}
	const users, periods = 8, 40
	var tr workload.Trace
	for p := 0; p < periods; p++ {
		for u := 0; u < users; u++ {
			at := time.Duration(p)*time.Second + time.Duration(u)*time.Second/users
			tr = append(tr, workload.Event{At: at, ModelID: "mbnet", UserID: "u" + strconv.Itoa(u)})
		}
	}
	return cfg, tr
}

func runRolloutSim(slowdown float64) (RolloutSimRun, error) {
	cfg, tr := rolloutSimSpec(slowdown)
	s, err := sim.New(cfg)
	if err != nil {
		return RolloutSimRun{}, err
	}
	res, err := s.Run(tr)
	if err != nil {
		return RolloutSimRun{}, err
	}
	return RolloutSimRun{
		Promoted:         res.Promoted,
		RolledBack:       res.RolledBack,
		TimeToRollbackMs: float64(res.TimeToRollback) / 1e6,
		RequestsAffected: res.RequestsAffected,
		Lost:             res.Lost,
		Dropped:          res.Dropped,
	}, nil
}

// RunRolloutBench measures all three planes and assembles the snapshot.
func RunRolloutBench(cfg RolloutBenchConfig) (*RolloutSnapshot, error) {
	cfg.defaults()
	snap := &RolloutSnapshot{
		Clients:       cfg.Clients,
		PerClient:     cfg.PerClient,
		Users:         cfg.Users,
		Steps:         cfg.Steps,
		PerWindow:     cfg.PerWindow,
		CanaryExtraMs: float64(cfg.CanaryExtra) / 1e6,
		SLORatio:      cfg.SLORatio,
	}
	var err error
	if snap.Baseline, snap.Splitter, err = runRolloutOverhead(cfg); err != nil {
		return nil, err
	}
	if snap.Baseline.RPS > 0 {
		snap.SplitterThroughputRatio = snap.Splitter.RPS / snap.Baseline.RPS
	}
	if snap.Live, err = runRolloutLive(cfg); err != nil {
		return nil, err
	}
	if snap.SimRollback, err = runRolloutSim(8); err != nil {
		return nil, err
	}
	if snap.SimHealthy, err = runRolloutSim(0); err != nil {
		return nil, err
	}
	snap.EstSplitterOverheadUs = float64(costmodel.SplitterOverhead(
		snap.Splitter.Requests, 100*time.Nanosecond)) / 1e3
	// Sim parameters: cold starts blur the first 10s window, so detection
	// takes two; ~2 sticky canary callers in flight at ~550ms per slowed
	// serve when the gate trips.
	snap.EstTimeToRollbackMs = float64(costmodel.TimeToRollback(
		2, 10*time.Second, 2, 550*time.Millisecond, 30*time.Second)) / 1e6
	// The first window runs at the 25% step, the second at 50% after a
	// blurred promote — the bound is the sum of both windows' shares.
	snap.EstRequestsAffected = costmodel.RequestsAffected(8, 25, 10*time.Second) +
		costmodel.RequestsAffected(8, 50, 10*time.Second)
	return snap, nil
}

// WriteRolloutSnapshot runs the experiment and writes BENCH_rollout.json.
func WriteRolloutSnapshot(path string, cfg RolloutBenchConfig) (*RolloutSnapshot, error) {
	snap, err := RunRolloutBench(cfg)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, err
	}
	return snap, os.WriteFile(path, append(data, '\n'), 0o644)
}

func runRolloutExperiment(w io.Writer) error {
	header(w, "Rollout: attested canary ramp, SLO gate, auto-rollback")
	snap, err := RunRolloutBench(RolloutBenchConfig{})
	if err != nil {
		return err
	}
	printGatewayRun(w, snap.Baseline)
	printGatewayRun(w, snap.Splitter)
	fmt.Fprintf(w, "splitter throughput ratio: %.3f (target ≥ 0.97), est. routing tax %.1fµs over %d requests\n",
		snap.SplitterThroughputRatio, snap.EstSplitterOverheadUs, snap.Splitter.Requests)
	fmt.Fprintf(w, "live ramp: %s after %d windows, %d requests, %d errors; weight at breach %d%%, rollback in %.0fms, %d canary requests affected, revoked=%v\n",
		snap.Live.Phase, snap.Live.Windows, snap.Live.Requests, snap.Live.Errors,
		snap.Live.WeightAtBreach, snap.Live.TimeToRollbackMs, snap.Live.RequestsAffected, snap.Live.Revoked)
	fmt.Fprintf(w, "sim slow canary: rolled_back=%v in %.0fms (est ≤ %.0fms), %d affected (est ≤ %d), lost %d, dropped %d\n",
		snap.SimRollback.RolledBack, snap.SimRollback.TimeToRollbackMs, snap.EstTimeToRollbackMs,
		snap.SimRollback.RequestsAffected, snap.EstRequestsAffected, snap.SimRollback.Lost, snap.SimRollback.Dropped)
	fmt.Fprintf(w, "sim healthy canary: promoted=%v, lost %d, dropped %d\n",
		snap.SimHealthy.Promoted, snap.SimHealthy.Lost, snap.SimHealthy.Dropped)
	return nil
}

func init() {
	register(Experiment{
		ID:    "rollout",
		Title: "Canary rollout: SLO-guarded ramp with auto-rollback",
		Run:   runRolloutExperiment,
	})
}
