package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"sesemi/internal/autoscale"
	"sesemi/internal/costmodel"
	"sesemi/internal/gateway"
	"sesemi/internal/metrics"
	"sesemi/internal/semirt"
	"sesemi/internal/workload"
)

// ---------- Autoscale experiment: forecast-driven prewarm vs reactive ----------
//
// The gateway's historical warm-capacity policy is reactive at both ends:
// prewarming triggers from instantaneous queue depth (capacity starts after
// requests have already queued) and the only scale-down is the fixed
// keep-warm expiry. This experiment replays bursty (MMPP), diurnal and
// steady open-loop traces through both controllers on identical live
// deployments — container starts, enclave launches and execution all
// charged at modeled cost — and measures what the predictive controller
// (internal/autoscale: Holt forecast → Little's-law prewarm target →
// adaptive keep-warm) recovers: requests stop waiting behind demand-driven
// sandbox starts during ramps (fewer demand cold starts, lower ramp p99),
// and idle sandboxes stop squatting the full fixed deadline between bursts
// (fewer idle sandbox-seconds).

// AutoscaleRunResult is one (controller, trace) cell's measured outcome.
type AutoscaleRunResult struct {
	GatewayRunResult
	// RampP99Ms is the p99 over requests arriving during rising-rate halves
	// of the diurnal trace (0 for other traces) — tail latency where the
	// reactive controller is still provisioning.
	RampP99Ms float64 `json:"ramp_p99_ms,omitempty"`
	// ColdStarts counts sandbox starts during the run (the world's warm-up
	// excluded); Prewarmed the proactive ones (controller forecast or depth
	// trigger); DemandStarts the difference — starts some request queued
	// behind, the cost prewarming exists to hide.
	ColdStarts   uint64 `json:"cold_starts"`
	Prewarmed    uint64 `json:"prewarmed"`
	DemandStarts uint64 `json:"demand_starts"`
	// IdleSandboxSeconds is the action's cumulative idle accrual during the
	// run (serverless.ActionStats.IdleSeconds delta) — warm-pool memory
	// squatting.
	IdleSandboxSeconds float64 `json:"idle_sandbox_seconds"`
	// WarmRate is the fraction of responses served without any enclave
	// state rebuild beyond keys/model (Kind hot or warm; cold means the
	// request itself launched the enclave).
	WarmRate float64 `json:"warm_rate"`
	// KeepWarmEnd is the action's effective keep-warm deadline at the end of
	// the run — the adaptive override's resting point under this trace.
	KeepWarmEnd string `json:"keep_warm_end"`
	// ForecastError is the controller's relative one-step forecast error
	// (predictive runs only; costmodel.ForecastError's live counterpart).
	ForecastError float64 `json:"forecast_error,omitempty"`
}

// AutoscaleSnapshot is the BENCH_autoscale.json payload.
type AutoscaleSnapshot struct {
	Nodes        int    `json:"nodes"`
	Concurrency  int    `json:"concurrency"`
	MaxBatch     int    `json:"max_batch"`
	SandboxStart string `json:"sandbox_start"`
	KeepWarm     string `json:"keep_warm"`
	ExecCost     string `json:"exec_cost"`
	Window       string `json:"forecast_window"`

	// Burst is the MMPP trace (sudden rate switches), Diurnal the sinusoidal
	// ramp trace, Steady the fixed-rate control. Reactive = depth-triggered
	// prewarm + fixed keep-warm; Predictive = the autoscale controller.
	BurstReactive     AutoscaleRunResult `json:"burst_reactive"`
	BurstPredictive   AutoscaleRunResult `json:"burst_predictive"`
	DiurnalReactive   AutoscaleRunResult `json:"diurnal_reactive"`
	DiurnalPredictive AutoscaleRunResult `json:"diurnal_predictive"`
	SteadyReactive    AutoscaleRunResult `json:"steady_reactive"`
	SteadyPredictive  AutoscaleRunResult `json:"steady_predictive"`

	// DemandStartReduction is reactive demand starts over predictive's
	// across the two bursty traces (higher = more cold starts hidden);
	// RampP99Ratio is reactive ramp p99 over predictive's on the diurnal
	// trace; IdleRatio is predictive idle sandbox-seconds over reactive's
	// across the bursty traces (≤ 1 means scale-down paid for the
	// headroom); SteadyThroughputRatio is predictive RPS over reactive's on
	// the steady trace (target ≥ 0.95).
	DemandStartReduction  float64 `json:"demand_start_reduction"`
	RampP99Ratio          float64 `json:"ramp_p99_ratio"`
	IdleRatio             float64 `json:"idle_ratio"`
	SteadyThroughputRatio float64 `json:"steady_throughput_ratio"`

	// Analytic cross-checks: cold starts one rate step converts at this
	// sandbox start (costmodel.ColdStartsAvoided) and the steady-state idle
	// accrual per second of a right-sized pool (costmodel.IdleSandboxSeconds).
	EstColdStartsAvoidedPerStep float64 `json:"est_cold_starts_avoided_per_step"`
	EstIdlePerSecond            float64 `json:"est_idle_per_second"`
}

// AutoscaleBenchConfig sizes the comparison.
type AutoscaleBenchConfig struct {
	// Nodes is the invoker count (default 1); Concurrency the slots per
	// sandbox (default 2).
	Nodes, Concurrency int
	// MaxBatch is the gateway batch bound (default 4).
	MaxBatch int
	// SandboxStart is the modeled container start latency (default 800ms —
	// between the paper's 500ms container start and its ~1s enclave chain).
	SandboxStart time.Duration
	// KeepWarm is the fixed idle deadline the reactive baseline holds and
	// the adaptive deadline's ceiling (default 3s — compressed from the
	// paper's 3min so scale-down is observable in a bench-sized run).
	KeepWarm time.Duration
	// ExecCost is the modeled per-request execution latency (default 150ms).
	ExecCost time.Duration
	// KeyFetchCost is the modeled key provisioning latency (default 10ms).
	KeyFetchCost time.Duration
	// Window is the controller's forecast window (default 250ms).
	Window time.Duration
	// PeakRate / TroughRate shape the bursty traces in rps (defaults 40/4);
	// SteadyRate the control trace (default 20).
	PeakRate, TroughRate, SteadyRate float64
	// BurstDuration, DiurnalPeriod, DiurnalDuration, SteadyDuration size the
	// traces (defaults 36s, 16s, 48s, 12s).
	BurstDuration, DiurnalPeriod, DiurnalDuration, SteadyDuration time.Duration
	// Seed makes the traces reproducible (default 7).
	Seed int64
}

func (c *AutoscaleBenchConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4
	}
	if c.SandboxStart <= 0 {
		c.SandboxStart = 800 * time.Millisecond
	}
	if c.KeepWarm <= 0 {
		c.KeepWarm = 3 * time.Second
	}
	if c.ExecCost <= 0 {
		c.ExecCost = 150 * time.Millisecond
	}
	if c.KeyFetchCost <= 0 {
		c.KeyFetchCost = 10 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 250 * time.Millisecond
	}
	if c.PeakRate <= 0 {
		c.PeakRate = 40
	}
	if c.TroughRate <= 0 {
		c.TroughRate = 4
	}
	if c.SteadyRate <= 0 {
		c.SteadyRate = 20
	}
	if c.BurstDuration <= 0 {
		c.BurstDuration = 36 * time.Second
	}
	if c.DiurnalPeriod <= 0 {
		c.DiurnalPeriod = 16 * time.Second
	}
	if c.DiurnalDuration <= 0 {
		c.DiurnalDuration = 48 * time.Second
	}
	if c.SteadyDuration <= 0 {
		c.SteadyDuration = 12 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
}

// AutoscaleSmokeConfig is the tiny CI configuration.
func AutoscaleSmokeConfig() AutoscaleBenchConfig {
	return AutoscaleBenchConfig{
		SandboxStart: 100 * time.Millisecond,
		KeepWarm:     2 * time.Second,
		ExecCost:     20 * time.Millisecond,
		KeyFetchCost: 2 * time.Millisecond,
		Window:       100 * time.Millisecond,
		PeakRate:     24, TroughRate: 3, SteadyRate: 12,
		BurstDuration: 4 * time.Second, DiurnalPeriod: 3 * time.Second,
		DiurnalDuration: 6 * time.Second, SteadyDuration: 3 * time.Second,
	}
}

// autoscaleWorld builds one controller's deployment.
func (c AutoscaleBenchConfig) world(predictive bool) (*LiveWorld, error) {
	wc := LiveWorldConfig{
		Nodes:          c.Nodes,
		NodeMemory:     2 << 30, // eight 256 MiB sandboxes per node
		Concurrency:    c.Concurrency,
		KeyFetchCost:   c.KeyFetchCost,
		ExecCost:       c.ExecCost,
		SandboxStart:   c.SandboxStart,
		KeepWarm:       c.KeepWarm,
		ReaperInterval: c.KeepWarm / 8,
		StartEnclave:   true,
		Gateway: gateway.Config{
			MaxBatch:    c.MaxBatch,
			MaxWait:     4 * time.Millisecond,
			MaxQueue:    8192,
			MaxInFlight: 16,
		},
	}
	if predictive {
		minKW := c.KeepWarm / 4
		if minKW < 4*c.Window {
			minKW = 4 * c.Window
		}
		wc.Autoscale = &autoscale.Config{
			Window:          c.Window,
			Horizon:         4,
			Headroom:        1,
			MaxWarm:         8,
			SlotsPerSandbox: c.Concurrency,
			MinKeepWarm:     minKW,
			MaxKeepWarm:     c.KeepWarm,
		}
	} else {
		// The reactive baseline: depth-triggered prewarm, fixed keep-warm.
		wc.Gateway.PrewarmDepth = 2 * c.MaxBatch
		wc.Gateway.PrewarmMax = 8
	}
	return NewLiveWorld(wc)
}

// runAutoscaleTrace replays tr open-loop through the world's gateway at the
// trace's own arrival times, recording per-request latency (and separately
// the requests ramp() selects), plus the warm/cold response split.
func runAutoscaleTrace(w *LiveWorld, tr workload.Trace, ramp func(time.Duration) bool) (lat, rampLat *metrics.Latency, warm, errs int) {
	lat, rampLat = &metrics.Latency{}, &metrics.Latency{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := range tr {
		ev := tr[i]
		time.Sleep(time.Until(start.Add(ev.At)))
		wg.Add(1)
		go func(at time.Duration, seed int) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := w.DoGateway(context.Background(), seed)
			d := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			lat.Add(d)
			if ramp != nil && ramp(at) {
				rampLat.Add(d)
			}
			if resp.Kind != semirt.Cold {
				warm++
			}
		}(ev.At, i)
	}
	wg.Wait()
	return lat, rampLat, warm, errs
}

// runAutoscaleMode measures one (controller, trace) cell on a fresh world.
func runAutoscaleMode(cfg AutoscaleBenchConfig, mode string, predictive bool, tr workload.Trace, ramp func(time.Duration) bool) (AutoscaleRunResult, error) {
	w, err := cfg.world(predictive)
	if err != nil {
		return AutoscaleRunResult{}, err
	}
	defer w.Close()
	base, err := w.Cluster.ActionStats(w.Action)
	if err != nil {
		return AutoscaleRunResult{}, err
	}
	start := time.Now()
	lat, rampLat, warm, errs := runAutoscaleTrace(w, tr, ramp)
	elapsed := time.Since(start)
	st, err := w.Cluster.ActionStats(w.Action)
	if err != nil {
		return AutoscaleRunResult{}, err
	}
	gwStats := w.Gateway.Stats()
	res := AutoscaleRunResult{
		GatewayRunResult: GatewayRunResult{
			Mode:      mode,
			Requests:  len(tr),
			Errors:    errs,
			Seconds:   elapsed.Seconds(),
			RPS:       float64(len(tr)-errs) / elapsed.Seconds(),
			MeanMs:    float64(lat.Mean()) / 1e6,
			P50Ms:     float64(lat.Percentile(50)) / 1e6,
			P95Ms:     float64(lat.Percentile(95)) / 1e6,
			P99Ms:     float64(lat.Percentile(99)) / 1e6,
			Batches:   gwStats.Batches,
			MeanBatch: w.Gateway.Metrics().BatchSizes.Mean(),
		},
		ColdStarts:         st.ColdStarts - base.ColdStarts,
		IdleSandboxSeconds: st.IdleSeconds - base.IdleSeconds,
		KeepWarmEnd:        st.KeepWarm.String(),
	}
	if rampLat.Count() > 0 {
		res.RampP99Ms = float64(rampLat.Percentile(99)) / 1e6
	}
	if served := len(tr) - errs; served > 0 {
		res.WarmRate = float64(warm) / float64(served)
	}
	if predictive {
		as := w.Autoscaler.Stats()
		res.Prewarmed = as.Prewarmed
		if as.MeanRate > 0 {
			res.ForecastError = as.ForecastMAE / as.MeanRate
		}
	} else {
		res.Prewarmed = gwStats.Prewarmed
	}
	if res.ColdStarts > res.Prewarmed {
		res.DemandStarts = res.ColdStarts - res.Prewarmed
	}
	return res, nil
}

// RunAutoscaleBench measures both controllers on the three traces and
// assembles the snapshot.
func RunAutoscaleBench(cfg AutoscaleBenchConfig) (*AutoscaleSnapshot, error) {
	cfg.defaults()
	snap := &AutoscaleSnapshot{
		Nodes:        cfg.Nodes,
		Concurrency:  cfg.Concurrency,
		MaxBatch:     cfg.MaxBatch,
		SandboxStart: cfg.SandboxStart.String(),
		KeepWarm:     cfg.KeepWarm.String(),
		ExecCost:     cfg.ExecCost.String(),
		Window:       cfg.Window.String(),
	}
	burst := workload.MMPP(cfg.Seed, []float64{cfg.TroughRate, cfg.PeakRate},
		cfg.BurstDuration/6, cfg.BurstDuration, "mbnet", "u")
	diurnal := workload.Diurnal(cfg.Seed, cfg.PeakRate, cfg.TroughRate,
		cfg.DiurnalPeriod, cfg.DiurnalDuration, "mbnet", "u")
	steady := workload.FixedRate(cfg.SteadyRate, cfg.SteadyDuration, "mbnet", "u")
	// Rising-rate halves of the sinusoid ([0, period/2) mod period) are the
	// ramps the diurnal p99 is scored over.
	ramp := func(at time.Duration) bool { return at%cfg.DiurnalPeriod < cfg.DiurnalPeriod/2 }

	var err error
	if snap.BurstReactive, err = runAutoscaleMode(cfg, "burst/reactive", false, burst, nil); err != nil {
		return nil, err
	}
	if snap.BurstPredictive, err = runAutoscaleMode(cfg, "burst/predictive", true, burst, nil); err != nil {
		return nil, err
	}
	if snap.DiurnalReactive, err = runAutoscaleMode(cfg, "diurnal/reactive", false, diurnal, ramp); err != nil {
		return nil, err
	}
	if snap.DiurnalPredictive, err = runAutoscaleMode(cfg, "diurnal/predictive", true, diurnal, ramp); err != nil {
		return nil, err
	}
	if snap.SteadyReactive, err = runAutoscaleMode(cfg, "steady/reactive", false, steady, nil); err != nil {
		return nil, err
	}
	if snap.SteadyPredictive, err = runAutoscaleMode(cfg, "steady/predictive", true, steady, nil); err != nil {
		return nil, err
	}

	if d := snap.BurstPredictive.DemandStarts + snap.DiurnalPredictive.DemandStarts; d > 0 {
		snap.DemandStartReduction = float64(snap.BurstReactive.DemandStarts+snap.DiurnalReactive.DemandStarts) / float64(d)
	}
	if snap.DiurnalPredictive.RampP99Ms > 0 {
		snap.RampP99Ratio = snap.DiurnalReactive.RampP99Ms / snap.DiurnalPredictive.RampP99Ms
	}
	if r := snap.BurstReactive.IdleSandboxSeconds + snap.DiurnalReactive.IdleSandboxSeconds; r > 0 {
		snap.IdleRatio = (snap.BurstPredictive.IdleSandboxSeconds + snap.DiurnalPredictive.IdleSandboxSeconds) / r
	}
	if snap.SteadyReactive.RPS > 0 {
		snap.SteadyThroughputRatio = snap.SteadyPredictive.RPS / snap.SteadyReactive.RPS
	}
	snap.EstColdStartsAvoidedPerStep = costmodel.ColdStartsAvoided(
		cfg.PeakRate-cfg.TroughRate, cfg.SandboxStart, cfg.Concurrency*cfg.MaxBatch)
	pool := int(cfg.PeakRate * cfg.ExecCost.Seconds() / float64(cfg.Concurrency))
	if pool < 1 {
		pool = 1
	}
	snap.EstIdlePerSecond = costmodel.IdleSandboxSeconds(pool, cfg.PeakRate/float64(cfg.MaxBatch), cfg.KeepWarm)
	return snap, nil
}

// WriteAutoscaleSnapshot runs the comparison and writes BENCH_autoscale.json.
func WriteAutoscaleSnapshot(path string, cfg AutoscaleBenchConfig) (*AutoscaleSnapshot, error) {
	snap, err := RunAutoscaleBench(cfg)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return nil, err
	}
	return snap, os.WriteFile(path, append(data, '\n'), 0o644)
}

func printAutoscaleRun(w io.Writer, r AutoscaleRunResult) {
	fmt.Fprintf(w, "%-20s %6d req %4d err  mean %7.1fms  p99 %8.1fms", r.Mode, r.Requests, r.Errors, r.MeanMs, r.P99Ms)
	if r.RampP99Ms > 0 {
		fmt.Fprintf(w, "  ramp-p99 %7.1fms", r.RampP99Ms)
	}
	fmt.Fprintf(w, "  starts %2d (%d demand)  idle %6.1fs  kw %s\n",
		r.ColdStarts, r.DemandStarts, r.IdleSandboxSeconds, r.KeepWarmEnd)
}

func runAutoscaleExperiment(w io.Writer) error {
	header(w, "Autoscale: forecast-driven prewarm + adaptive keep-warm vs reactive depth trigger")
	snap, err := RunAutoscaleBench(AutoscaleBenchConfig{})
	if err != nil {
		return err
	}
	printAutoscaleRun(w, snap.BurstReactive)
	printAutoscaleRun(w, snap.BurstPredictive)
	printAutoscaleRun(w, snap.DiurnalReactive)
	printAutoscaleRun(w, snap.DiurnalPredictive)
	printAutoscaleRun(w, snap.SteadyReactive)
	printAutoscaleRun(w, snap.SteadyPredictive)
	fmt.Fprintf(w, "demand cold starts: %.1fx fewer; ramp p99: %.2fx lower; idle sandbox-seconds ratio %.2f\n",
		snap.DemandStartReduction, snap.RampP99Ratio, snap.IdleRatio)
	fmt.Fprintf(w, "steady throughput predictive/reactive: %.2f (target ≥0.95)\n", snap.SteadyThroughputRatio)
	fmt.Fprintf(w, "analytic: %.1f cold starts avoided per rate step, %.2f idle sandbox-seconds/s at peak\n",
		snap.EstColdStartsAvoidedPerStep, snap.EstIdlePerSecond)
	return nil
}

func init() {
	register(Experiment{
		ID:    "autoscale",
		Title: "Autoscale: predictive prewarm + telemetry-driven scale-down vs reactive",
		Run:   runAutoscaleExperiment,
	})
}
