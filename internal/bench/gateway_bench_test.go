package bench

import (
	"context"
	"testing"
	"time"

	"sesemi/internal/gateway"
)

// BenchmarkGatewayThroughput measures requests/sec through the batching
// gateway at 64 closed-loop clients and reports the speedup over direct
// (unbatched) Cluster.Invoke on an identical deployment.
func BenchmarkGatewayThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snap, err := RunGatewayBench(GatewayBenchConfig{Clients: 64, PerClient: 8, MaxBatch: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(snap.Batched.RPS, "req/s")
		b.ReportMetric(snap.Speedup, "speedup")
	}
}

// BenchmarkGatewayLatency measures per-request E2E latency through the
// gateway (closed loop, 64 clients) and reports mean and p95.
func BenchmarkGatewayLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snap, err := RunGatewayBench(GatewayBenchConfig{Clients: 64, PerClient: 8, MaxBatch: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(snap.Batched.MeanMs, "mean-ms")
		b.ReportMetric(snap.Batched.P95Ms, "p95-ms")
	}
}

// TestGatewayBatchingSpeedup is the acceptance gate: with MaxBatch=8 and 64
// concurrent clients, the gateway must deliver at least 2x the requests/sec
// of unbatched Cluster.Invoke. The deployment bounds warm slots (one node,
// two sandboxes), so slot time — where the per-activation overhead is
// charged — is the contended resource batching amortizes.
func TestGatewayBatchingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("live timing comparison")
	}
	if raceEnabled {
		t.Skip("race-detector overhead dwarfs the modeled activation costs")
	}
	snap, err := RunGatewayBench(GatewayBenchConfig{Clients: 64, PerClient: 16, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Speedup < 2 {
		// Wall-clock comparison on a possibly loaded machine: one retry
		// before failing (typical speedup is 3-4x, so a genuine regression
		// still fails).
		t.Logf("speedup %.2fx below gate; retrying once", snap.Speedup)
		if snap, err = RunGatewayBench(GatewayBenchConfig{Clients: 64, PerClient: 16, MaxBatch: 8}); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("unbatched %.0f req/s, gateway %.0f req/s, speedup %.2fx (mean batch %.1f)",
		snap.Unbatched.RPS, snap.Batched.RPS, snap.Speedup, snap.Batched.MeanBatch)
	if snap.Unbatched.Errors != 0 || snap.Batched.Errors != 0 {
		t.Fatalf("errors: unbatched %d batched %d", snap.Unbatched.Errors, snap.Batched.Errors)
	}
	if snap.Speedup < 2 {
		t.Fatalf("speedup %.2fx < 2x", snap.Speedup)
	}
	if snap.Batched.MeanBatch < 2 {
		t.Fatalf("mean batch %.1f: batching did not engage", snap.Batched.MeanBatch)
	}
}

// TestLiveWorldGatewayCorrectness checks the gateway path end to end on the
// live world: responses decrypt and the batch envelope reaches the enclave.
func TestLiveWorldGatewayCorrectness(t *testing.T) {
	w, err := NewLiveWorld(LiveWorldConfig{Gateway: gateway.Config{MaxBatch: 4, MaxWait: 2 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	resp, err := w.DoGateway(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Decrypt(resp); err != nil {
		t.Fatal(err)
	}
	direct, err := w.DoDirect(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.Decrypt(resp)
	b, _ := w.Decrypt(direct)
	if string(a) != string(b) {
		t.Fatal("gateway and direct paths disagree on the same input")
	}
}
