//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in. Wall-clock
// assertions (the gateway speedup gate) are skipped under -race: detector
// overhead dwarfs the modeled per-activation costs being measured.
const raceEnabled = false
