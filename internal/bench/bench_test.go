package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must have an experiment.
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18",
		"ablation-interval", "ablation-keycache",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].ModelMB != 17 || rows[1].ModelMB != 170 || rows[2].ModelMB != 44 {
		t.Fatalf("model sizes %v %v %v", rows[0].ModelMB, rows[1].ModelMB, rows[2].ModelMB)
	}
}

func TestFigure8Shares(t *testing.T) {
	rows, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.EnclaveInit + r.KeyFetch + r.ModelLoad + r.RuntimeInit + r.ModelExec
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: shares sum to %.3f", r.Combo, sum)
		}
		if strings.HasPrefix(r.Combo, "tvm") && r.EnclaveInit+r.KeyFetch < 0.6 {
			t.Errorf("%s: init+keyfetch %.2f, paper >0.6", r.Combo, r.EnclaveInit+r.KeyFetch)
		}
	}
}

func TestFigure9Ordering(t *testing.T) {
	rows, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.Hot <= r.Warm && r.Warm < r.Cold) {
			t.Errorf("%s: hot %v warm %v cold %v out of order", r.Combo, r.Hot, r.Warm, r.Cold)
		}
		if r.UntrustedReuse > r.Untrusted {
			t.Errorf("%s: untrusted reuse slower than untrusted", r.Combo)
		}
	}
}

func TestFigure10HighestSaving(t *testing.T) {
	rows, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	var best float64
	var bestWho string
	for _, r := range rows {
		if r.SavingAt[8] > best {
			best = r.SavingAt[8]
			bestWho = r.Framework + "-" + r.Model
		}
	}
	if bestWho != "tflm-rsnet" {
		t.Errorf("highest saving is %s, paper says TFLM-RSNET", bestWho)
	}
}

func TestTable2Factor(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		f := float64(r.With) / float64(r.Without)
		if f <= 1 {
			t.Errorf("%s: isolation factor %.2f <= 1", r.Model, f)
		}
		if r.Model == "mbnet" && (f < 2.5 || f > 5) {
			t.Errorf("mbnet isolation factor %.2f, paper ≈4x", f)
		}
	}
}

func TestFigure11Knee(t *testing.T) {
	pts, err := Figure11SGX2("tvm", "rsnet", 32)
	if err != nil {
		t.Fatal(err)
	}
	at12 := pts[11].Latency.Seconds()
	at24 := pts[23].Latency.Seconds()
	if ratio := at24 / at12; ratio < 1.7 {
		t.Errorf("24/12 ratio %.2f: no processor-sharing knee", ratio)
	}
	// SGX1: TVM hits the EPC wall before TFLM.
	tvm, err := Figure11SGX1("tvm", 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	tflm, err := Figure11SGX1("tflm", 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	tvmBlowup := tvm[15].Latency.Seconds() / tvm[0].Latency.Seconds()
	tflmBlowup := tflm[15].Latency.Seconds() / tflm[0].Latency.Seconds()
	if tvmBlowup <= tflmBlowup {
		t.Errorf("TVM EPC blowup %.2f <= TFLM %.2f; paper: TVM reaches the limit first", tvmBlowup, tflmBlowup)
	}
}

// TestFigure12Crossover: SeSeMI sustains the RSNET load where Iso-reuse
// saturates (Figure 12b shows Iso-reuse falling over at a lower rate).
func TestFigure12Crossover(t *testing.T) {
	rates := []float64{1, 3, 5}
	ses, err := Figure12(sim.SeSeMI, costmodel.SGX2, "tvm", "rsnet", rates)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := Figure12(sim.IsoReuse, costmodel.SGX2, "tvm", "rsnet", rates)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := Figure12(sim.Native, costmodel.SGX2, "tvm", "rsnet", rates)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rates {
		if ses[i].P95 > iso[i].P95 {
			t.Errorf("rate %.0f: SeSeMI p95 %v > Iso-reuse %v", rates[i], ses[i].P95, iso[i].P95)
		}
		if iso[i].P95 > nat[i].P95 {
			t.Errorf("rate %.0f: Iso-reuse p95 %v > Native %v", rates[i], iso[i].P95, nat[i].P95)
		}
	}
	// At 5 rps SeSeMI must still be comfortable (sub-second hot path).
	if ses[2].P95 > 3*time.Second {
		t.Errorf("SeSeMI p95 at 5 rps = %v, expected low", ses[2].P95)
	}
}

// TestFigure13Shapes: SeSeMI beats Iso-reuse by a large margin on DSNET
// (paper: 0.64 s vs 3.35 s, an 81% improvement) and Native is worst.
func TestFigure13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("MMPP simulation in -short mode")
	}
	ses, err := Figure13(sim.SeSeMI, "dsnet", 1)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := Figure13(sim.IsoReuse, "dsnet", 1)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := Figure13(sim.Native, "dsnet", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(ses.Mean < iso.Mean && iso.Mean < nat.Mean) {
		t.Fatalf("ordering: SeSeMI %v, Iso-reuse %v, Native %v", ses.Mean, iso.Mean, nat.Mean)
	}
	improvement := 1 - ses.Mean.Seconds()/iso.Mean.Seconds()
	if improvement < 0.4 {
		t.Errorf("SeSeMI improvement over Iso-reuse %.0f%%, paper 81%%", 100*improvement)
	}
	if ses.Hot == 0 {
		t.Error("SeSeMI served no hot invocations under MMPP")
	}
}

// TestFigure14CostReduction: 4 threads per enclave cut GB-s cost by roughly
// half (paper: 59% DSNET, 48% RSNET).
func TestFigure14CostReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("MMPP simulation in -short mode")
	}
	for modelID, paper := range map[string]float64{"dsnet": 0.59, "rsnet": 0.48} {
		rows, err := Figure14(modelID)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("rows %d", len(rows))
		}
		saving := 1 - rows[1].GBSeconds/rows[0].GBSeconds
		if saving < paper-0.3 || saving > paper+0.3 {
			t.Errorf("%s: cost reduction %.0f%%, paper %.0f%%", modelID, 100*saving, 100*paper)
		}
	}
}

// TestTable3AllInOneWorst: the All-in-one deployment interferes on the
// Poisson streams (paper: >16% worse than the others).
func TestTable3AllInOneWorst(t *testing.T) {
	aio, err := RunPacker(AllInOne)
	if err != nil {
		t.Fatal(err)
	}
	oto, err := RunPacker(OneToOne)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := RunPacker(Packer)
	if err != nil {
		t.Fatal(err)
	}
	if aio.PoissonAvg <= oto.PoissonAvg || aio.PoissonAvg <= pk.PoissonAvg {
		t.Errorf("All-in-one %v not worst (One-to-one %v, FnPacker %v)",
			aio.PoissonAvg, oto.PoissonAvg, pk.PoissonAvg)
	}
	// FnPacker within ~20% of One-to-one (paper: 1466ms vs 1456ms).
	diff := pk.PoissonAvg.Seconds()/oto.PoissonAvg.Seconds() - 1
	if diff > 0.2 {
		t.Errorf("FnPacker %.0f%% worse than One-to-one", 100*diff)
	}
}

// TestTable4SessionColdStarts: in session 1, One-to-one pays cold starts
// for m2-m4 while FnPacker reuses its pool for m3, m4.
func TestTable4SessionColdStarts(t *testing.T) {
	oto, err := RunPacker(OneToOne)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := RunPacker(Packer)
	if err != nil {
		t.Fatal(err)
	}
	s1 := "session-1"
	// One-to-one: m2 is dramatically slower than m0 (cold vs warm pool).
	if oto.SessionLatency[s1]["m2"] < 3*oto.SessionLatency[s1]["m0"] {
		t.Errorf("One-to-one session1 m2 %v vs m0 %v: expected cold-start blowup",
			oto.SessionLatency[s1]["m2"], oto.SessionLatency[s1]["m0"])
	}
	// FnPacker: m3 and m4 avoid the cold start (paper: 2008/2045 ms vs
	// One-to-one 9752/9923 ms).
	for _, m := range []string{"m3", "m4"} {
		if pk.SessionLatency[s1][m] >= oto.SessionLatency[s1][m] {
			t.Errorf("FnPacker session1 %s %v >= One-to-one %v",
				m, pk.SessionLatency[s1][m], oto.SessionLatency[s1][m])
		}
	}
	// Session 2 reuses session-1 sandboxes in both deployments.
	s2 := "session-2"
	for _, m := range []string{"m2", "m3", "m4"} {
		if oto.SessionLatency[s2][m] > oto.SessionLatency[s1][m] {
			t.Errorf("One-to-one session2 %s slower than session1", m)
		}
	}
}

func TestAblationExclusiveInterval(t *testing.T) {
	res, err := AblationExclusiveInterval([]time.Duration{time.Second, 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for iv, lat := range res {
		if lat <= 0 {
			t.Errorf("interval %v: empty latency", iv)
		}
	}
}

// TestAllExperimentsRun executes every registered harness end to end.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}
