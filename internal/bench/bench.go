// Package bench contains one harness per table and figure of the paper's
// evaluation (§VI and the appendix). Each harness regenerates the artifact's
// rows/series — workload, parameter sweep, baselines and all — and prints
// them in the paper's layout. cmd/sesemi-bench and the top-level
// bench_test.go both drive this package, and EXPERIMENTS.md records the
// paper-vs-measured comparison.
package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one runnable artifact reproduction.
type Experiment struct {
	// ID is the short name used on the command line (e.g. "fig9").
	ID string
	// Title describes the paper artifact.
	Title string
	// Run regenerates the artifact, printing to w.
	Run func(w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
