package bench

import (
	"fmt"
	"io"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/model"
)

// ---------- Table I: models for the evaluation ----------

// Table1Row is one model's size line.
type Table1Row struct {
	Name                         string
	ModelMB, TVMBufMB, TFLMBufMB float64
	LambdaTVM, LambdaTFLM        float64
}

// Table1 computes the model/buffer sizes.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, id := range model.ZooIDs() {
		s := model.Zoo[id]
		rows = append(rows, Table1Row{
			Name:       s.FullName,
			ModelMB:    float64(s.ModelBytes) / model.MB,
			TVMBufMB:   float64(s.TVMBufferBytes) / model.MB,
			TFLMBufMB:  float64(s.TFLMBufferBytes) / model.MB,
			LambdaTVM:  s.Lambda("tvm"),
			LambdaTFLM: s.Lambda("tflm"),
		})
	}
	return rows
}

func runTable1(w io.Writer) error {
	header(w, "Table I: Models for the evaluation")
	fmt.Fprintf(w, "%-14s %10s %14s %15s %8s %8s\n", "Name", "Model size", "TVM buffer", "TFLM buffer", "λ(tvm)", "λ(tflm)")
	for _, r := range Table1() {
		fmt.Fprintf(w, "%-14s %8.0fMB %12.0fMB %13.0fMB %8.2f %8.2f\n",
			r.Name, r.ModelMB, r.TVMBufMB, r.TFLMBufMB, r.LambdaTVM, r.LambdaTFLM)
	}
	return nil
}

// ---------- Figure 8: latency ratio of serving stages ----------

// StageRatios is the cold-path share of each serving stage.
type StageRatios struct {
	Combo                                                    string
	EnclaveInit, KeyFetch, ModelLoad, RuntimeInit, ModelExec float64
}

// Figure8 computes the cold-invocation stage shares per combination.
func Figure8() ([]StageRatios, error) {
	var out []StageRatios
	for _, c := range costmodel.Combos() {
		s, err := costmodel.Stages(costmodel.SGX2, c.Framework, c.Model)
		if err != nil {
			return nil, err
		}
		total := s.ColdPath().Seconds()
		out = append(out, StageRatios{
			Combo:       fmt.Sprintf("%s-%s", c.Framework, c.Model),
			EnclaveInit: s.EnclaveInit.Seconds() / total,
			KeyFetch:    s.KeyFetchCold.Seconds() / total,
			ModelLoad:   s.ModelLoad.Seconds() / total,
			RuntimeInit: s.RuntimeInit.Seconds() / total,
			ModelExec:   (s.ModelExec + s.RequestCrypto).Seconds() / total,
		})
	}
	return out, nil
}

func runFigure8(w io.Writer) error {
	header(w, "Figure 8: Latency ratio of serving stages (cold invocation)")
	rows, err := Figure8()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %9s %9s %9s %9s %9s\n", "combo", "enclave", "keyfetch", "load", "rt-init", "exec")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			r.Combo, 100*r.EnclaveInit, 100*r.KeyFetch, 100*r.ModelLoad, 100*r.RuntimeInit, 100*r.ModelExec)
	}
	return nil
}

// ---------- Figure 9: execution time under different invocations ----------

// InvocationTimes holds Figure 9's five bars for one combination.
type InvocationTimes struct {
	Combo                                      string
	Hot, Warm, Cold, Untrusted, UntrustedReuse time.Duration
}

// Figure9 computes the five invocation-path latencies per combination.
func Figure9() ([]InvocationTimes, error) {
	var out []InvocationTimes
	for _, c := range costmodel.Combos() {
		sgx, err := costmodel.Stages(costmodel.SGX2, c.Framework, c.Model)
		if err != nil {
			return nil, err
		}
		nat, err := costmodel.Stages(costmodel.Native, c.Framework, c.Model)
		if err != nil {
			return nil, err
		}
		out = append(out, InvocationTimes{
			Combo:          fmt.Sprintf("%s-%s", c.Framework, c.Model),
			Hot:            sgx.HotPath(),
			Warm:           sgx.WarmPath(),
			Cold:           sgx.ColdPath(),
			Untrusted:      nat.ModelLoad + nat.RuntimeInit + nat.ModelExec,
			UntrustedReuse: nat.ModelExec,
		})
	}
	return out, nil
}

func runFigure9(w io.Writer) error {
	header(w, "Figure 9: Execution time under different invocations")
	rows, err := Figure9()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %8s %8s %8s %10s %14s\n", "combo", "hot", "warm", "cold", "untrusted", "untrusted(reuse)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7.2fs %7.2fs %7.2fs %9.2fs %13.2fs\n",
			r.Combo, r.Hot.Seconds(), r.Warm.Seconds(), r.Cold.Seconds(),
			r.Untrusted.Seconds(), r.UntrustedReuse.Seconds())
	}
	for _, r := range rows {
		if r.Combo == "tvm-mbnet" {
			fmt.Fprintf(w, "TVM-MBNET speedups: hot %.0fx, warm %.0fx over cold (paper: 21x, 11x)\n",
				r.Cold.Seconds()/r.Hot.Seconds(), r.Cold.Seconds()/r.Warm.Seconds())
		}
	}
	return nil
}

// ---------- Figure 10: enclave memory saving ----------

// MemorySaving is one framework/model saving curve.
type MemorySaving struct {
	Framework, Model string
	Lambda           float64
	// SavingAt maps concurrency (2,4,8) to the saving ratio.
	SavingAt map[int]float64
}

// Figure10 computes the memory-saving ratios.
func Figure10() ([]MemorySaving, error) {
	var out []MemorySaving
	for _, fw := range []string{"tvm", "tflm"} {
		for _, id := range model.ZooIDs() {
			ms := MemorySaving{Framework: fw, Model: id, Lambda: model.Zoo[id].Lambda(fw), SavingAt: map[int]float64{}}
			for _, n := range []int{2, 4, 8} {
				sv, err := costmodel.MemorySavingRatio(fw, id, n)
				if err != nil {
					return nil, err
				}
				ms.SavingAt[n] = sv
			}
			out = append(out, ms)
		}
	}
	return out, nil
}

func runFigure10(w io.Writer) error {
	header(w, "Figure 10: Enclave memory saving (1 enclave, n threads vs n enclaves)")
	rows, err := Figure10()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %-7s %7s %8s %8s %8s\n", "fw", "model", "λ", "n=2", "n=4", "n=8")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-7s %7.2f %7.1f%% %7.1f%% %7.1f%%\n",
			r.Framework, r.Model, r.Lambda, 100*r.SavingAt[2], 100*r.SavingAt[4], 100*r.SavingAt[8])
	}
	return nil
}

// ---------- Table II: strong isolation overhead ----------

// IsolationRow compares hot-path latency with and without strong isolation.
type IsolationRow struct {
	Model         string
	Without, With time.Duration
}

// Table2 computes the strong-isolation overhead for the TVM models.
func Table2() ([]IsolationRow, error) {
	var out []IsolationRow
	for _, id := range model.ZooIDs() {
		s, err := costmodel.Stages(costmodel.SGX2, "tvm", id)
		if err != nil {
			return nil, err
		}
		out = append(out, IsolationRow{Model: id, Without: s.HotPath(), With: s.IsolatedHotPath()})
	}
	return out, nil
}

func runTable2(w io.Writer) error {
	header(w, "Table II: Overhead of stronger isolation on hot invocations")
	rows, err := Table2()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %12s %12s %8s\n", "model (TVM)", "without", "with", "factor")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10.2fms %10.2fms %7.2fx\n",
			r.Model, float64(r.Without.Microseconds())/1000, float64(r.With.Microseconds())/1000,
			float64(r.With)/float64(r.Without))
	}
	return nil
}

// ---------- Figure 11: latency vs concurrent requests ----------

// ConcurrencyPoint is one (n, latency) sample.
type ConcurrencyPoint struct {
	Concurrent int
	Latency    time.Duration
}

// Figure11SGX2 sweeps concurrency on an SGX2 node for the given combination
// (EPC is never the bottleneck; the knee is the 12-core CPU).
func Figure11SGX2(framework, modelID string, maxN int) ([]ConcurrencyPoint, error) {
	s, err := costmodel.Stages(costmodel.SGX2, framework, modelID)
	if err != nil {
		return nil, err
	}
	var out []ConcurrencyPoint
	for n := 1; n <= maxN; n++ {
		lat := costmodel.ExecUnderLoad(s.ModelExec, n, costmodel.Cores)
		out = append(out, ConcurrencyPoint{Concurrent: n, Latency: lat + s.RequestCrypto})
	}
	return out, nil
}

// Figure11SGX1 sweeps concurrency for MBNET on an SGX1 node where the EPC
// (128 MiB) binds: threadsPerEnclave requests share one enclave, so total
// enclave memory grows with ceil(n/threads).
func Figure11SGX1(framework string, threadsPerEnclave, maxN int) ([]ConcurrencyPoint, error) {
	s, err := costmodel.Stages(costmodel.SGX1, framework, "mbnet")
	if err != nil {
		return nil, err
	}
	perEnclave, err := costmodel.EnclaveConfigBytes(framework, "mbnet", threadsPerEnclave)
	if err != nil {
		return nil, err
	}
	ws, err := costmodel.ExecWorkingSet(framework, "mbnet", threadsPerEnclave)
	if err != nil {
		return nil, err
	}
	var out []ConcurrencyPoint
	for n := 1; n <= maxN; n++ {
		enclaves := (n + threadsPerEnclave - 1) / threadsPerEnclave
		resident := int64(enclaves) * perEnclave
		lat := costmodel.ExecUnderLoad(s.ModelExec, n, 10) +
			costmodel.PagingDelay(ws, n, resident, costmodel.SGX1.EPCBytes())
		out = append(out, ConcurrencyPoint{Concurrent: n, Latency: lat + s.RequestCrypto})
	}
	return out, nil
}

func runFigure11(w io.Writer) error {
	header(w, "Figure 11a: Latency vs concurrent requests (SGX2, knee at 12 cores)")
	combos := []struct{ fw, m string }{
		{"tvm", "mbnet"}, {"tvm", "rsnet"}, {"tvm", "dsnet"}, {"tflm", "mbnet"}, {"tflm", "dsnet"},
	}
	fmt.Fprintf(w, "%-12s", "n")
	for _, c := range combos {
		fmt.Fprintf(w, " %12s", c.fw+"-"+c.m)
	}
	fmt.Fprintln(w)
	series := make([][]ConcurrencyPoint, len(combos))
	for i, c := range combos {
		pts, err := Figure11SGX2(c.fw, c.m, 32)
		if err != nil {
			return err
		}
		series[i] = pts
	}
	for _, n := range []int{1, 4, 8, 12, 16, 24, 32} {
		fmt.Fprintf(w, "%-12d", n)
		for i := range combos {
			fmt.Fprintf(w, " %11.2fs", series[i][n-1].Latency.Seconds())
		}
		fmt.Fprintln(w)
	}

	header(w, "Figure 11b: MBNET latency vs concurrency on SGX1 (EPC 128 MiB binds)")
	fmt.Fprintf(w, "%-6s %10s %10s %10s %10s\n", "n", "TVM-1", "TVM-4", "TFLM-1", "TFLM-4")
	tvm1, err := Figure11SGX1("tvm", 1, 16)
	if err != nil {
		return err
	}
	tvm4, err := Figure11SGX1("tvm", 4, 16)
	if err != nil {
		return err
	}
	tflm1, err := Figure11SGX1("tflm", 1, 16)
	if err != nil {
		return err
	}
	tflm4, err := Figure11SGX1("tflm", 4, 16)
	if err != nil {
		return err
	}
	for _, n := range []int{1, 2, 4, 8, 12, 16} {
		fmt.Fprintf(w, "%-6d %9.2fs %9.2fs %9.2fs %9.2fs\n", n,
			tvm1[n-1].Latency.Seconds(), tvm4[n-1].Latency.Seconds(),
			tflm1[n-1].Latency.Seconds(), tflm4[n-1].Latency.Seconds())
	}
	return nil
}

// ---------- Figures 15-18: appendix micro-benchmarks ----------

func runFigure15(w io.Writer) error {
	header(w, "Figure 15: Enclave initialization overhead (avg per enclave)")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "#enclaves", "sgx2/128MB", "sgx2/256MB", "sgx1/128MB", "sgx1/256MB")
	for _, n := range []int{1, 2, 4, 8, 16} {
		fmt.Fprintf(w, "%-10d %11.2fs %11.2fs %11.2fs %11.2fs\n", n,
			costmodel.EnclaveInit(costmodel.SGX2, 128<<20, n).Seconds(),
			costmodel.EnclaveInit(costmodel.SGX2, 256<<20, n).Seconds(),
			costmodel.EnclaveInit(costmodel.SGX1, 128<<20, n).Seconds(),
			costmodel.EnclaveInit(costmodel.SGX1, 256<<20, n).Seconds())
	}
	return nil
}

func runFigure16(w io.Writer) error {
	header(w, "Figure 16: Remote attestation overhead")
	fmt.Fprintf(w, "%-10s %14s %14s\n", "#enclaves", "sgx2 (ECDSA)", "sgx1 (EPID)")
	for _, n := range []int{1, 2, 4, 8, 16} {
		fmt.Fprintf(w, "%-10d %13.2fs %13.2fs\n", n,
			costmodel.ECDSAAttestation(n).Seconds(),
			costmodel.EPIDAttestation(n).Seconds())
	}
	return nil
}

// Breakdown is one stage-decomposition row (Figures 17 and 18).
type Breakdown struct {
	Combo                                               string
	EnclaveInit, KeyFetch, ModelLoad, RuntimeInit, Exec time.Duration
}

// Figure17 returns the SGX2 per-stage execution breakdown.
func Figure17() ([]Breakdown, error) {
	var out []Breakdown
	for _, c := range costmodel.Combos() {
		s, err := costmodel.Stages(costmodel.SGX2, c.Framework, c.Model)
		if err != nil {
			return nil, err
		}
		out = append(out, Breakdown{
			Combo:       fmt.Sprintf("%s-%s", c.Framework, c.Model),
			EnclaveInit: s.EnclaveInit, KeyFetch: s.KeyFetchCold,
			ModelLoad: s.ModelLoad, RuntimeInit: s.RuntimeInit, Exec: s.ModelExec,
		})
	}
	return out, nil
}

// Figure18 returns the no-TEE per-stage breakdown.
func Figure18() ([]Breakdown, error) {
	var out []Breakdown
	for _, c := range costmodel.Combos() {
		s, err := costmodel.Stages(costmodel.Native, c.Framework, c.Model)
		if err != nil {
			return nil, err
		}
		out = append(out, Breakdown{
			Combo:     fmt.Sprintf("%s-%s", c.Framework, c.Model),
			ModelLoad: s.ModelLoad, RuntimeInit: s.RuntimeInit, Exec: s.ModelExec,
		})
	}
	return out, nil
}

func runFigure17(w io.Writer) error {
	header(w, "Figure 17: Execution time breakdown inside SGX2")
	rows, err := Figure17()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %12s %10s %11s %12s %12s\n", "combo", "enclave init", "key fetch", "model load", "runtime init", "model exec")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %11.3fs %9.3fs %10.4fs %11.4fs %11.3fs\n",
			r.Combo, r.EnclaveInit.Seconds(), r.KeyFetch.Seconds(),
			r.ModelLoad.Seconds(), r.RuntimeInit.Seconds(), r.Exec.Seconds())
	}
	return nil
}

func runFigure18(w io.Writer) error {
	header(w, "Figure 18: Execution time breakdown outside SGX")
	rows, err := Figure18()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %11s %12s %12s\n", "combo", "model load", "runtime init", "model exec")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10.4fs %11.5fs %11.3fs\n",
			r.Combo, r.ModelLoad.Seconds(), r.RuntimeInit.Seconds(), r.Exec.Seconds())
	}
	return nil
}

func init() {
	register(Experiment{ID: "table1", Title: "Table I: model sizes", Run: runTable1})
	register(Experiment{ID: "fig8", Title: "Figure 8: stage latency ratios", Run: runFigure8})
	register(Experiment{ID: "fig9", Title: "Figure 9: invocation paths", Run: runFigure9})
	register(Experiment{ID: "fig10", Title: "Figure 10: memory saving", Run: runFigure10})
	register(Experiment{ID: "table2", Title: "Table II: isolation overhead", Run: runTable2})
	register(Experiment{ID: "fig11", Title: "Figure 11: concurrency scaling", Run: runFigure11})
	register(Experiment{ID: "fig15", Title: "Figure 15: enclave init overhead", Run: runFigure15})
	register(Experiment{ID: "fig16", Title: "Figure 16: attestation overhead", Run: runFigure16})
	register(Experiment{ID: "fig17", Title: "Figure 17: SGX2 breakdown", Run: runFigure17})
	register(Experiment{ID: "fig18", Title: "Figure 18: native breakdown", Run: runFigure18})
}
