package bench

import (
	"testing"
	"time"

	"sesemi/internal/workload"
)

// TestAutoscaleSteadyWarmHitNotBelowReactive is the live half of the
// scale-down safety property (the -race in-flight half lives in
// internal/serverless): on a steady trace, an active autoscaler — adaptive
// keep-warm included — must serve every request and must not push the
// action's warm-hit rate below the reactive baseline's by more than noise.
// Scale-down may only reap capacity the forecast no longer wants; a steady
// stream's pool is always wanted.
func TestAutoscaleSteadyWarmHitNotBelowReactive(t *testing.T) {
	cfg := AutoscaleSmokeConfig()
	cfg.defaults()
	tr := workload.FixedRate(cfg.SteadyRate, 3*time.Second, "mbnet", "u")

	warmHit := func(predictive bool) (float64, int) {
		w, err := cfg.world(predictive)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		_, _, _, errs := runAutoscaleTrace(w, tr, nil)
		st, err := w.Cluster.ActionStats(w.Action)
		if err != nil {
			t.Fatal(err)
		}
		total := float64(st.WarmHits + st.ColdStarts)
		if total == 0 {
			t.Fatal("no claims recorded")
		}
		return float64(st.WarmHits) / total, errs
	}

	reactive, rerrs := warmHit(false)
	predictive, perrs := warmHit(true)
	if rerrs != 0 || perrs != 0 {
		t.Fatalf("errors on a steady trace: reactive %d, predictive %d", rerrs, perrs)
	}
	if predictive < reactive-0.15 {
		t.Fatalf("steady warm-hit rate dropped under the autoscaler: predictive %.2f vs reactive %.2f",
			predictive, reactive)
	}
	t.Logf("steady warm-hit: reactive %.2f, predictive %.2f", reactive, predictive)
}

// TestAutoscaleSmoke keeps the experiment binary from rotting: the tiny
// configuration must run both controllers on all three traces end to end.
func TestAutoscaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	snap, err := RunAutoscaleBench(AutoscaleSmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []AutoscaleRunResult{
		snap.BurstReactive, snap.BurstPredictive,
		snap.DiurnalReactive, snap.DiurnalPredictive,
		snap.SteadyReactive, snap.SteadyPredictive,
	} {
		if r.Requests == 0 || r.Errors == r.Requests {
			t.Fatalf("%s: degenerate run %+v", r.Mode, r)
		}
	}
	if snap.BurstPredictive.Prewarmed == 0 && snap.DiurnalPredictive.Prewarmed == 0 {
		t.Fatal("predictive controller never prewarmed on either bursty trace")
	}
	if snap.SteadyThroughputRatio < 0.9 {
		t.Fatalf("steady throughput ratio %.2f", snap.SteadyThroughputRatio)
	}
}
