package bench

import (
	"fmt"
	"io"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/fnpacker"
	"sesemi/internal/metrics"
	"sesemi/internal/sim"
	"sesemi/internal/workload"
)

// The FnPacker evaluation (§VI-D) serves five TVM-RSNET deployments m0..m4.
// m0 and m1 receive Poisson traffic at 2 rps for 8 minutes; two interactive
// sessions (around minute 4 and minute 6) query m0..m4 sequentially.

var packerModels = []string{"m0", "m1", "m2", "m3", "m4"}

func packerAliases() map[string]string {
	a := map[string]string{}
	for _, m := range packerModels {
		a[m] = "rsnet"
	}
	return a
}

// packerTrace is the open-loop part of the workload: two Poisson streams at
// 2 rps plus the first query of each interactive session. The sessions are
// closed-loop ("a set of models are sequentially queried"): each follow-up
// query is injected when the previous response arrives, with a short think
// time.
func packerTrace() workload.Trace {
	poisson := workload.Merge(
		workload.Poisson(5, 2, 8*time.Minute, "m0", "poisson-user-0"),
		workload.Poisson(6, 2, 8*time.Minute, "m1", "poisson-user-1"),
	)
	starts := workload.Trace{
		{At: 4 * time.Minute, ModelID: packerModels[0], UserID: "session-1"},
		{At: 6 * time.Minute, ModelID: packerModels[0], UserID: "session-2"},
	}
	return workload.Merge(poisson, starts)
}

// sessionThink is the gap between a session response and the next query.
const sessionThink = 2 * time.Second

// chainSessions wires the closed-loop session follow-ups into a simulation.
func chainSessions(s *sim.Simulation) {
	next := map[string]int{"session-1": 1, "session-2": 1}
	s.SetOnComplete(func(r sim.RequestResult) {
		i, ok := next[r.User]
		if !ok || i >= len(packerModels) {
			return
		}
		next[r.User] = i + 1
		s.Inject(workload.Event{
			At:      r.Done + sessionThink,
			ModelID: packerModels[i],
			UserID:  r.User,
		})
	})
}

// PackerStrategy names the three §VI-D deployments.
type PackerStrategy string

const (
	// AllInOne deploys one endpoint serving every model.
	AllInOne PackerStrategy = "All-in-one"
	// OneToOne deploys one endpoint per model.
	OneToOne PackerStrategy = "One-to-one"
	// Packer deploys a 5-endpoint Fnpool routed by the FnPacker scheduler.
	Packer PackerStrategy = "FnPacker"
)

// PackerRun aggregates one strategy's run.
type PackerRun struct {
	Strategy PackerStrategy
	// PoissonAvg is Table III: the average latency of the two Poisson
	// streams (m0, m1).
	PoissonAvg time.Duration
	// SessionLatency is Table IV: session user -> model -> latency.
	SessionLatency map[string]map[string]time.Duration
	// Cold counts sandbox-level cold invocations.
	Cold int
}

// RunPacker executes the §VI-D workload under one deployment strategy.
func RunPacker(strategy PackerStrategy) (*PackerRun, error) {
	var actions []sim.ActionSpec
	var route fnpacker.Strategy
	mkSpec := func(name string) sim.ActionSpec {
		return sim.ActionSpec{Name: name, Framework: "tvm", Concurrency: 1, DefaultModel: "rsnet"}
	}
	var endpoints []string
	switch strategy {
	case AllInOne:
		actions = []sim.ActionSpec{mkSpec("fn-all")}
		route = fnpacker.AllInOne{Endpoint: "fn-all"}
	case OneToOne:
		for _, m := range packerModels {
			actions = append(actions, mkSpec("fn-"+m))
		}
		route = fnpacker.OneToOne{EndpointFor: func(m string) string { return "fn-" + m }}
	case Packer:
		for i := range packerModels {
			name := fmt.Sprintf("pool-%d", i)
			actions = append(actions, mkSpec(name))
			endpoints = append(endpoints, name)
		}
	default:
		return nil, fmt.Errorf("bench: unknown strategy %q", strategy)
	}
	cfg := sim.Config{
		System:       sim.SeSeMI,
		HW:           costmodel.SGX2,
		Nodes:        8,
		CoresPerNode: costmodel.Cores,
		Actions:      actions,
		ModelCosts:   packerAliases(),
		Route:        route,
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if strategy == Packer {
		sched, err := fnpacker.NewScheduler(s.EngineClock(), fnpacker.DefaultExclusiveInterval, endpoints...)
		if err != nil {
			return nil, err
		}
		if err := s.SetRoute(sched); err != nil {
			return nil, err
		}
	}
	chainSessions(s)
	res, err := s.Run(packerTrace())
	if err != nil {
		return nil, err
	}
	run := &PackerRun{
		Strategy:       strategy,
		SessionLatency: map[string]map[string]time.Duration{},
		Cold:           res.Cold,
	}
	var poisson metrics.Latency
	for _, r := range res.Requests {
		switch r.User {
		case "poisson-user-0", "poisson-user-1":
			poisson.Add(r.Latency())
		case "session-1", "session-2":
			if run.SessionLatency[r.User] == nil {
				run.SessionLatency[r.User] = map[string]time.Duration{}
			}
			run.SessionLatency[r.User][r.Model] = r.Latency()
		}
	}
	run.PoissonAvg = poisson.Mean()
	return run, nil
}

func runTable3(w io.Writer) error {
	header(w, "Table III: Latency of models with Poisson traffic (m0,m1 @ 2 rps)")
	fmt.Fprintf(w, "%-14s %16s %8s\n", "strategy", "avg latency", "colds")
	for _, st := range []PackerStrategy{AllInOne, OneToOne, Packer} {
		run, err := RunPacker(st)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %14.0fms %8d\n", run.Strategy, float64(run.PoissonAvg.Milliseconds()), run.Cold)
	}
	return nil
}

func runTable4(w io.Writer) error {
	header(w, "Table IV: Latency of serving interactive queries (ms)")
	runs := map[PackerStrategy]*PackerRun{}
	for _, st := range []PackerStrategy{AllInOne, OneToOne, Packer} {
		run, err := RunPacker(st)
		if err != nil {
			return err
		}
		runs[st] = run
	}
	for _, sess := range []string{"session-1", "session-2"} {
		fmt.Fprintf(w, "%s:\n", sess)
		fmt.Fprintf(w, "  %-7s %12s %12s %12s\n", "model", "All-in-one", "One-to-one", "FnPacker")
		for _, m := range packerModels {
			fmt.Fprintf(w, "  %-7s %12.0f %12.0f %12.0f\n", m,
				float64(runs[AllInOne].SessionLatency[sess][m].Milliseconds()),
				float64(runs[OneToOne].SessionLatency[sess][m].Milliseconds()),
				float64(runs[Packer].SessionLatency[sess][m].Milliseconds()))
		}
	}
	return nil
}

// ---------- Ablations (DESIGN.md §6) ----------

// AblationExclusiveInterval sweeps FnPacker's exclusivity interval and
// reports the Poisson-stream average latency at each setting.
func AblationExclusiveInterval(intervals []time.Duration) (map[time.Duration]time.Duration, error) {
	out := map[time.Duration]time.Duration{}
	for _, iv := range intervals {
		var actions []sim.ActionSpec
		var endpoints []string
		for i := range packerModels {
			name := fmt.Sprintf("pool-%d", i)
			actions = append(actions, sim.ActionSpec{Name: name, Framework: "tvm", Concurrency: 1, DefaultModel: "rsnet"})
			endpoints = append(endpoints, name)
		}
		cfg := sim.Config{
			System: sim.SeSeMI, HW: costmodel.SGX2, Nodes: 8,
			Actions: actions, ModelCosts: packerAliases(),
		}
		s, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		sched, err := fnpacker.NewScheduler(s.EngineClock(), iv, endpoints...)
		if err != nil {
			return nil, err
		}
		if err := s.SetRoute(sched); err != nil {
			return nil, err
		}
		chainSessions(s)
		res, err := s.Run(packerTrace())
		if err != nil {
			return nil, err
		}
		var poisson metrics.Latency
		for _, r := range res.Requests {
			if r.User == "poisson-user-0" || r.User == "poisson-user-1" {
				poisson.Add(r.Latency())
			}
		}
		out[iv] = poisson.Mean()
	}
	return out, nil
}

func runAblationInterval(w io.Writer) error {
	header(w, "Ablation: FnPacker exclusivity interval vs Poisson avg latency")
	intervals := []time.Duration{time.Second, 5 * time.Second, 10 * time.Second, 30 * time.Second, 2 * time.Minute}
	res, err := AblationExclusiveInterval(intervals)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %14s\n", "interval", "avg latency")
	for _, iv := range intervals {
		fmt.Fprintf(w, "%-12s %12.0fms\n", iv, float64(res[iv].Milliseconds()))
	}
	return nil
}

// KeyCacheAblation is one key-cache build's simulated outcome on the
// multi-user stream.
type KeyCacheAblation struct {
	// Mode names the build: "off" (strong isolation, every request
	// refetches), "single" (the historical one-pair cache), "lru" (the
	// bounded LRU, default capacity).
	Mode string
	// Mean is the stream's mean end-to-end latency.
	Mean time.Duration
	// KeyFetches counts provisioning round trips over the run.
	KeyFetches int
}

// AblationKeyCache compares SeMIRT's key-cache builds — disabled, the
// historical single pair, and the bounded LRU — under an interleaved
// eight-user stream on one model: the multi-user serving mix where the
// single-pair design collapses to per-flip refetches (Algorithm 2
// lines 6-10, widened).
func AblationKeyCache() ([]KeyCacheAblation, error) {
	const users = 8
	mk := func(mode string, cacheSize int, disable bool) (KeyCacheAblation, error) {
		cfg := sim.Config{
			System: sim.SeSeMI, HW: costmodel.SGX2, Nodes: 1,
			Actions:         []sim.ActionSpec{{Name: "fn", Framework: "tvm", Concurrency: 1, DefaultModel: "mbnet"}},
			KeyCacheSize:    cacheSize,
			DisableKeyCache: disable,
		}
		s, err := sim.New(cfg)
		if err != nil {
			return KeyCacheAblation{}, err
		}
		// Eight users, one steady stream each, phase-shifted so arrivals
		// interleave users — the cache-hostile ordering a shared model
		// replica actually sees.
		var streams []workload.Trace
		for u := 0; u < users; u++ {
			tr := workload.FixedRate(0.25, 60*time.Second, "mbnet", fmt.Sprintf("user-%d", u))
			for i := range tr {
				tr[i].At += time.Duration(u) * 500 * time.Millisecond
			}
			streams = append(streams, tr)
		}
		res, err := s.Run(workload.Merge(streams...))
		if err != nil {
			return KeyCacheAblation{}, err
		}
		return KeyCacheAblation{Mode: mode, Mean: res.All.Mean(), KeyFetches: res.KeyFetches}, nil
	}
	off, err := mk("off", 0, true)
	if err != nil {
		return nil, err
	}
	single, err := mk("single", 1, false)
	if err != nil {
		return nil, err
	}
	lru, err := mk("lru", 0, false)
	if err != nil {
		return nil, err
	}
	return []KeyCacheAblation{off, single, lru}, nil
}

func runAblationKeyCache(w io.Writer) error {
	header(w, "Ablation: SeMIRT key cache off / single-pair / LRU (8-user stream, TVM-MBNET)")
	runs, err := AblationKeyCache()
	if err != nil {
		return err
	}
	for _, r := range runs {
		fmt.Fprintf(w, "%-8s %8.0fms mean  %5d key fetches\n",
			r.Mode, float64(r.Mean.Milliseconds()), r.KeyFetches)
	}
	return nil
}

func init() {
	register(Experiment{ID: "table3", Title: "Table III: FnPacker Poisson traffic", Run: runTable3})
	register(Experiment{ID: "table4", Title: "Table IV: interactive sessions", Run: runTable4})
	register(Experiment{ID: "ablation-interval", Title: "Ablation: exclusivity interval", Run: runAblationInterval})
	register(Experiment{ID: "ablation-keycache", Title: "Ablation: key cache", Run: runAblationKeyCache})
}
