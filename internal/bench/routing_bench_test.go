package bench

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"sesemi/internal/serverless"
	"sesemi/internal/vclock"
)

// nopInstance is a zero-work action runtime: invoking it measures nothing but
// the scheduler itself.
type nopInstance struct{}

func (nopInstance) Invoke(p []byte) ([]byte, error) { return p, nil }
func (nopInstance) Stop()                           {}

// newContentionCluster builds a cluster whose only cost is scheduling: no-op
// instances, zero modeled latencies, and enough prewarmed sandboxes that every
// acquire finds a ready slot. Scheduler overhead is the whole benchmark.
func newContentionCluster(b *testing.B, nodes, sandboxesPerNode, concurrency int) *serverless.Cluster {
	b.Helper()
	var ns []*serverless.Node
	for i := 0; i < nodes; i++ {
		ns = append(ns, &serverless.Node{
			Name:        fmt.Sprintf("node-%d", i),
			MemoryBytes: int64(sandboxesPerNode) * (256 << 20),
		})
	}
	cfg := serverless.Config{Clock: vclock.Real{Scale: 0}}
	c := serverless.NewCluster(cfg, ns...)
	err := c.Deploy(&serverless.Action{
		Name:         "fn",
		MemoryBudget: 256 << 20,
		Concurrency:  concurrency,
		New:          func(*serverless.Node) (serverless.Instance, error) { return nopInstance{}, nil },
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Prewarm("fn", nodes*sandboxesPerNode); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkRoutingContention measures raw scheduling throughput —
// Cluster.Invoke on a fully warm pool of no-op sandboxes — as the closed-loop
// client count grows. A scheduler serialized behind one cluster-wide mutex
// plateaus (or degrades) past a handful of clients; the sharded scheduler with
// the lock-free ready fast path should keep scaling until the machine runs out
// of cores. Run with -benchtime=1x in CI as a smoke test; run longer locally
// for numbers.
func BenchmarkRoutingContention(b *testing.B) {
	const perClient = 2000
	for _, clients := range []int{1, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			c := newContentionCluster(b, 4, 16, 64)
			defer c.Close()
			ctx := context.Background()
			// Warm the path once so the first measured invoke is not a claim
			// of a never-used sandbox list.
			if _, err := c.Invoke(ctx, "fn", nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				start := make(chan struct{})
				for cl := 0; cl < clients; cl++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						<-start
						for r := 0; r < perClient; r++ {
							if _, err := c.Invoke(ctx, "fn", nil); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				close(start)
				wg.Wait()
			}
			b.StopTimer()
			total := float64(b.N) * float64(clients) * perClient
			b.ReportMetric(total/b.Elapsed().Seconds(), "invokes/s")
			b.ReportMetric(0, "ns/op") // invokes/s is the meaningful metric
		})
	}
}

// TestAffinityRoutingSpeedup is the acceptance gate for locality-aware batch
// routing: on a 4-node / 4-model deployment the affinity gateway must deliver
// at least 1.3x the requests/sec of the affinity-less gateway, with a
// warm-hit rate of at least 80%. (The committed BENCH_routing.json records
// ~4.6x and ~99.8% at the full 256-client scale; the gate runs a smaller
// configuration to stay fast.)
func TestAffinityRoutingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("live timing comparison")
	}
	if raceEnabled {
		t.Skip("race-detector overhead dwarfs the modeled activation costs")
	}
	cfg := RoutingBenchConfig{Clients: 64, PerClient: 8}
	snap, err := RunRoutingBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if snap.AffinitySpeedup < 1.3 {
		// Wall-clock comparison on a possibly loaded machine: one retry
		// before failing (typical speedup is 3-5x, so a genuine regression
		// still fails).
		t.Logf("affinity speedup %.2fx below gate; retrying once", snap.AffinitySpeedup)
		if snap, err = RunRoutingBench(cfg); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("gateway %.0f req/s, +affinity %.0f req/s, %.2fx (warm-hit %.1f%%, %d rehomes)",
		snap.Gateway.RPS, snap.Affinity.RPS, snap.AffinitySpeedup, 100*snap.Affinity.HotRate, snap.Affinity.Rehomes)
	if snap.Gateway.Errors != 0 || snap.Affinity.Errors != 0 {
		t.Fatalf("errors: gateway %d affinity %d", snap.Gateway.Errors, snap.Affinity.Errors)
	}
	if snap.AffinitySpeedup < 1.3 {
		t.Fatalf("affinity speedup %.2fx < 1.3x", snap.AffinitySpeedup)
	}
	if snap.Affinity.HotRate < 0.8 {
		t.Fatalf("warm-hit rate %.2f < 0.8", snap.Affinity.HotRate)
	}
}
