package bench

import (
	"testing"

	"sesemi/internal/rollout"
)

// The rollout experiment's CI contract, in-process: the deliberately slow
// canary must be rolled back with zero lost requests and its measurement
// revoked, the healthy mirror must promote, and the splitter must not tax
// steady-state throughput.
func TestRolloutSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock experiment")
	}
	snap, err := RunRolloutBench(RolloutSmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Live.Phase != string(rollout.PhaseRolledBack) {
		t.Fatalf("live ramp ended %q, want rolled back", snap.Live.Phase)
	}
	if !snap.Live.Revoked {
		t.Fatal("rollback did not revoke the canary measurement")
	}
	if snap.Live.Errors != 0 {
		t.Fatalf("%d requests lost during the live ramp", snap.Live.Errors)
	}
	if !snap.SimRollback.RolledBack || snap.SimRollback.Lost != 0 || snap.SimRollback.Dropped != 0 {
		t.Fatalf("sim rollback: %+v", snap.SimRollback)
	}
	if !snap.SimHealthy.Promoted {
		t.Fatalf("sim healthy canary not promoted: %+v", snap.SimHealthy)
	}
	// The smoke config is small enough for scheduler noise, so gate looser
	// than the committed snapshot's 0.97.
	if snap.SplitterThroughputRatio < 0.8 {
		t.Fatalf("splitter throughput ratio %.2f", snap.SplitterThroughputRatio)
	}
}
