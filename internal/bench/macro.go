package bench

import (
	"fmt"
	"io"
	"time"

	"sesemi/internal/costmodel"
	"sesemi/internal/metrics"
	"sesemi/internal/sim"
	"sesemi/internal/workload"
)

// ---------- Figure 12: single-node throughput/latency ----------

// ThroughputPoint is one (rate, p95) sample for one system.
type ThroughputPoint struct {
	Rate float64
	P95  time.Duration
	// Served is the fraction of requests completed within the run horizon;
	// a saturated system leaves a growing queue behind.
	Served float64
}

// Figure12 sweeps the offered rate on a single warmed node and reports the
// p95 latency per system. Requests arriving in the first warmup window are
// excluded from the percentile, mirroring the paper's warm-up protocol.
func Figure12(system sim.System, hw costmodel.HW, framework, modelID string, rates []float64) ([]ThroughputPoint, error) {
	const duration = 90 * time.Second
	const warmup = 20 * time.Second
	var out []ThroughputPoint
	for _, rate := range rates {
		cfg := sim.Config{
			System:       system,
			HW:           hw,
			Nodes:        1,
			CoresPerNode: costmodel.Cores,
			Actions: []sim.ActionSpec{{
				Name: "fn", Framework: framework, Concurrency: 1, DefaultModel: modelID,
			}},
		}
		if hw == costmodel.SGX1 {
			cfg.CoresPerNode = 10 // Xeon W-1290P
		}
		s, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		tr := workload.Poisson(11, rate, duration, modelID, "u")
		res, err := s.Run(tr)
		if err != nil {
			return nil, err
		}
		var lat metrics.Latency
		steady := 0
		for _, r := range res.Requests {
			if r.Arrive >= warmup {
				lat.Add(r.Latency())
				steady++
			}
		}
		want := tr.CountInWindow(warmup, duration)
		served := 1.0
		if want > 0 {
			served = float64(steady) / float64(want)
		}
		out = append(out, ThroughputPoint{Rate: rate, P95: lat.Percentile(95), Served: served})
	}
	return out, nil
}

func runFigure12(w io.Writer) error {
	type panel struct {
		title     string
		hw        costmodel.HW
		framework string
		modelID   string
		rates     []float64
		systems   []sim.System
	}
	panels := []panel{
		{"Figure 12a: TVM-MBNET (SGX2)", costmodel.SGX2, "tvm", "mbnet",
			[]float64{30, 35, 40, 45, 50}, []sim.System{sim.SeSeMI, sim.IsoReuse}},
		{"Figure 12b: TVM-RSNET (SGX2)", costmodel.SGX2, "tvm", "rsnet",
			[]float64{1, 2, 3, 4, 5, 6}, []sim.System{sim.SeSeMI, sim.IsoReuse, sim.Native}},
		{"Figure 12c: TVM-MBNET (SGX1)", costmodel.SGX1, "tvm", "mbnet",
			[]float64{2, 5, 8, 11, 14, 16}, []sim.System{sim.SeSeMI, sim.IsoReuse, sim.Native}},
		{"Figure 12d: TFLM-MBNET (SGX1)", costmodel.SGX1, "tflm", "mbnet",
			[]float64{2, 5, 8, 11, 14, 16}, []sim.System{sim.SeSeMI, sim.IsoReuse, sim.Native}},
	}
	for _, p := range panels {
		header(w, p.title+" — p95 latency vs request rate")
		fmt.Fprintf(w, "%-8s", "rps")
		for _, sys := range p.systems {
			fmt.Fprintf(w, " %18s", sys)
		}
		fmt.Fprintln(w)
		series := map[sim.System][]ThroughputPoint{}
		for _, sys := range p.systems {
			pts, err := Figure12(sys, p.hw, p.framework, p.modelID, p.rates)
			if err != nil {
				return err
			}
			series[sys] = pts
		}
		for i, rate := range p.rates {
			fmt.Fprintf(w, "%-8.0f", rate)
			for _, sys := range p.systems {
				pt := series[sys][i]
				mark := ""
				if pt.Served < 0.95 {
					mark = "*" // saturated: queue growing
				}
				fmt.Fprintf(w, " %16.3fs%1s", pt.P95.Seconds(), mark)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "(* = saturated: <95% of offered requests completed in the horizon)")
	}
	return nil
}

// ---------- Figure 13: MMPP multi-node latency over time ----------

// MMPPResult is one system's run under the MMPP workload.
type MMPPResult struct {
	System sim.System
	Mean   time.Duration
	P95    time.Duration
	// Series is the 30 s-bucketed average latency (seconds).
	Series []metrics.Bucket
	// Cold, Warm, Hot count invocation paths.
	Cold, Warm, Hot int
}

// mmppTrace is the §VI-C workload: mean rate alternating 20 and 40 rps for
// 900 s, preceded by a 60 s warm-up at 20 rps (excluded from stats by the
// caller via the offset).
func mmppTrace(seed int64, modelID string) workload.Trace {
	warm := workload.Poisson(seed, 20, 60*time.Second, modelID, "u")
	main := workload.MMPP(seed+1, []float64{20, 40}, 90*time.Second, 900*time.Second, modelID, "u")
	for i := range main {
		main[i].At += 60 * time.Second
	}
	return workload.Merge(warm, main)
}

// Figure13 runs the MMPP workload on an 8-node cluster for one system.
// Concurrency per enclave is chosen so a node's TCS total matches its cores
// (§VI-C configures invoker memory to that effect).
func Figure13(system sim.System, modelID string, concurrency int) (*MMPPResult, error) {
	spec := sim.ActionSpec{
		Name: "fn", Framework: "tvm", Concurrency: concurrency, DefaultModel: modelID,
	}
	cfg := sim.Config{
		System:       system,
		HW:           costmodel.SGX2,
		Nodes:        8,
		CoresPerNode: costmodel.Cores,
		// Invoker memory capped so TCS-per-node ≤ cores (Appendix F): each
		// sandbox holds `concurrency` TCSs.
		NodeMemory: int64(costmodel.Cores/concurrency) * costmodel.ContainerMemoryBudget(mustEnclaveBytes("tvm", modelID, concurrency)),
		Actions:    []sim.ActionSpec{spec},
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := s.Run(mmppTrace(97, modelID))
	if err != nil {
		return nil, err
	}
	out := &MMPPResult{System: system, Cold: res.Cold, Warm: res.Warm, Hot: res.Hot}
	var lat metrics.Latency
	for _, r := range res.Requests {
		if r.Arrive >= 60*time.Second { // drop warm-up
			lat.Add(r.Latency())
		}
	}
	out.Mean = lat.Mean()
	out.P95 = lat.Percentile(95)
	out.Series = res.LatencySeries.Buckets()
	return out, nil
}

func mustEnclaveBytes(fw, modelID string, conc int) int64 {
	b, err := costmodel.EnclaveConfigBytes(fw, modelID, conc)
	if err != nil {
		panic(err)
	}
	return b
}

func runFigure13(w io.Writer) error {
	for _, modelID := range []string{"dsnet", "rsnet"} {
		header(w, fmt.Sprintf("Figure 13: 8-node MMPP (20↔40 rps, 900 s), TVM-%s", modelID))
		fmt.Fprintf(w, "%-10s %12s %12s %8s %8s %8s\n", "system", "avg latency", "p95", "cold", "warm", "hot")
		for _, sys := range []sim.System{sim.SeSeMI, sim.IsoReuse, sim.Native} {
			r, err := Figure13(sys, modelID, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %11.2fs %11.2fs %8d %8d %8d\n",
				r.System, r.Mean.Seconds(), r.P95.Seconds(), r.Cold, r.Warm, r.Hot)
		}
	}
	// Latency-over-time series for DSNET (the Figure 13b panel).
	header(w, "Figure 13b series: avg latency per 30 s bucket, TVM-DSNET")
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "t(s)", "SeSeMI", "Iso-reuse", "Native")
	series := map[sim.System][]metrics.Bucket{}
	for _, sys := range []sim.System{sim.SeSeMI, sim.IsoReuse, sim.Native} {
		r, err := Figure13(sys, "dsnet", 1)
		if err != nil {
			return err
		}
		series[sys] = r.Series
	}
	for i := 0; i < 32; i++ {
		at := time.Duration(i) * 30 * time.Second
		fmt.Fprintf(w, "%-8.0f", at.Seconds())
		for _, sys := range []sim.System{sim.SeSeMI, sim.IsoReuse, sim.Native} {
			v := 0.0
			for _, b := range series[sys] {
				if b.Start == at {
					v = b.Mean()
					break
				}
			}
			fmt.Fprintf(w, " %9.2fs", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ---------- Figure 14: memory usage and GB-s cost under MMPP ----------

// CostResult is one TVM-n configuration's cost under the MMPP workload.
type CostResult struct {
	Label       string
	Concurrency int
	// GBSeconds is the billing integral.
	GBSeconds float64
	// PeakSandboxes and PeakMemoryGB summarize the Figure 14 panels.
	PeakSandboxes int
	PeakMemoryGB  float64
}

// Figure14 compares one thread vs four threads per enclave for a model.
// Memory budgets follow §VI-C: 256/384 MiB for DSNET-1/-4 and 768/1536 MiB
// for RSNET-1/-4.
func Figure14(modelID string) ([]CostResult, error) {
	budgets := map[string]map[int]int64{
		"dsnet": {1: 256 << 20, 4: 384 << 20},
		"rsnet": {1: 768 << 20, 4: 1536 << 20},
	}
	var out []CostResult
	for _, conc := range []int{1, 4} {
		spec := sim.ActionSpec{
			Name: "fn", Framework: "tvm", Concurrency: conc, DefaultModel: modelID,
			MemoryBudget: budgets[modelID][conc],
		}
		cfg := sim.Config{
			System:       sim.SeSeMI,
			HW:           costmodel.SGX2,
			Nodes:        8,
			CoresPerNode: costmodel.Cores,
			NodeMemory:   int64(costmodel.Cores/conc) * spec.MemoryBudget,
			Actions:      []sim.ActionSpec{spec},
		}
		s, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := s.Run(mmppTrace(97, modelID))
		if err != nil {
			return nil, err
		}
		cr := CostResult{
			Label:       fmt.Sprintf("TVM-%s-%d", modelID, conc),
			Concurrency: conc,
			GBSeconds:   res.GBSeconds,
		}
		for _, b := range res.SandboxSeries.Buckets() {
			if int(b.Max) > cr.PeakSandboxes {
				cr.PeakSandboxes = int(b.Max)
			}
		}
		for _, b := range res.MemorySeries.Buckets() {
			if gb := b.Max / 1e9; gb > cr.PeakMemoryGB {
				cr.PeakMemoryGB = gb
			}
		}
		out = append(out, cr)
	}
	return out, nil
}

func runFigure14(w io.Writer) error {
	for _, modelID := range []string{"dsnet", "rsnet"} {
		header(w, fmt.Sprintf("Figure 14: memory cost under MMPP, TVM-%s (1 vs 4 threads/enclave)", modelID))
		rows, err := Figure14(modelID)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %14s %14s %12s\n", "config", "GB-seconds", "peak sandboxes", "peak mem")
		for _, r := range rows {
			fmt.Fprintf(w, "%-14s %14.0f %14d %10.2fGB\n", r.Label, r.GBSeconds, r.PeakSandboxes, r.PeakMemoryGB)
		}
		if len(rows) == 2 && rows[0].GBSeconds > 0 {
			saving := 1 - rows[1].GBSeconds/rows[0].GBSeconds
			paper := map[string]float64{"dsnet": 0.59, "rsnet": 0.48}[modelID]
			fmt.Fprintf(w, "cost reduction with 4 threads: %.0f%% (paper: %.0f%%)\n", 100*saving, 100*paper)
		}
	}
	return nil
}

func init() {
	register(Experiment{ID: "fig12", Title: "Figure 12: p95 latency vs request rate", Run: runFigure12})
	register(Experiment{ID: "fig13", Title: "Figure 13: MMPP latency over time", Run: runFigure13})
	register(Experiment{ID: "fig14", Title: "Figure 14: memory usage and cost", Run: runFigure14})
}
